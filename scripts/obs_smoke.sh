#!/usr/bin/env sh
# Observability smoke test: builds the binaries, starts a loopback
# cluster with one worker exporting -metrics-addr and -trace-json,
# mines corpus B over it, scrapes the worker's Prometheus endpoint
# while the session's recorder is still live, and validates both the
# scrape and the JSON trace (via pmihp-trace, which schema-checks every
# line). Artifacts land in $OUT_DIR (default ./obs-smoke) so CI can
# upload them.
#
# Usage: scripts/obs_smoke.sh [out_dir]
set -eu
cd "$(dirname "$0")/.."

out="${1:-obs-smoke}"
mkdir -p "$out"

echo "== build"
go build -o "$out/pmihp-mine" ./cmd/pmihp-mine
go build -o "$out/pmihp-node" ./cmd/pmihp-node
go build -o "$out/pmihp-trace" ./cmd/pmihp-trace

cleanup() {
    [ -n "${n0_pid:-}" ] && kill "$n0_pid" 2>/dev/null || true
    [ -n "${n1_pid:-}" ] && kill "$n1_pid" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== start workers"
"$out/pmihp-node" -listen 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -trace-json "$out/node0-trace.jsonl" >"$out/node0.out" 2>&1 &
n0_pid=$!
"$out/pmihp-node" -listen 127.0.0.1:0 >"$out/node1.out" 2>&1 &
n1_pid=$!

# Wait for both announcements (the daemons bind ephemeral ports).
for i in $(seq 1 50); do
    grep -q 'listening on' "$out/node0.out" 2>/dev/null &&
        grep -q 'listening on' "$out/node1.out" 2>/dev/null && break
    sleep 0.1
done
a0=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$out/node0.out" | head -1)
a1=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$out/node1.out" | head -1)
m0=$(sed -n 's|.*metrics on http://\([0-9.:]*\)/metrics.*|\1|p' "$out/node0.out" | head -1)
[ -n "$a0" ] && [ -n "$a1" ] && [ -n "$m0" ] || {
    echo "workers failed to announce"; cat "$out/node0.out" "$out/node1.out"; exit 1; }

echo "== mine on cluster $a0,$a1 (worker metrics at $m0)"
"$out/pmihp-mine" -cluster "$a0,$a1" -corpus b -scale small \
    -minsup-count 2 -maxk 3 -rules 0 -top 3 \
    -trace-json "$out/coord-trace.jsonl" | tee "$out/mine.out"

echo "== scrape worker metrics"
scrape_ok=0
for i in $(seq 1 50); do
    if curl -fsS "http://$m0/metrics" >"$out/metrics.prom" 2>/dev/null; then
        scrape_ok=1
        break
    fi
    sleep 0.1
done
[ "$scrape_ok" = 1 ] || { echo "metrics endpoint unreachable"; exit 1; }

echo "== validate Prometheus text"
for metric in pmihp_passes_total pmihp_candidates_total pmihp_pass_current \
    pmihp_span_seconds_total pmihp_wire_bytes_total; do
    grep -q "^$metric" "$out/metrics.prom" ||
        { echo "scrape missing $metric"; cat "$out/metrics.prom"; exit 1; }
done
curl -fsS "http://$m0/snapshot" >"$out/snapshot.json"
grep -q '"passes"' "$out/snapshot.json" ||
    { echo "/snapshot missing pass totals"; cat "$out/snapshot.json"; exit 1; }

echo "== validate traces against the event schema"
"$out/pmihp-trace" "$out/node0-trace.jsonl"
"$out/pmihp-trace" -json "$out/node0-trace.jsonl" >"$out/node0-summary.json"
passes=$("$out/pmihp-trace" "$out/node0-trace.jsonl" | sed -n 's/.*events, \([0-9]*\) passes.*/\1/p')
[ "${passes:-0}" -gt 0 ] || { echo "worker trace recorded no passes"; exit 1; }

echo "== ok: worker trace replayed $passes passes, artifacts in $out/"

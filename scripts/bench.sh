#!/usr/bin/env sh
# Verification + benchmark gate. Runs the static checks, the full test
# suite under the race detector (which exercises the sharded counting
# kernels via the IntraNodeWorkers>1 equivalence tests), then the E1-E9
# benchmark harness, failing if any workload's wall-clock or held memory
# (bytes_held) regresses more than 20% against the committed baseline or
# any simulated time drifts. A baseline written before the current report
# schema lacks bytes_held; pmihp-bench then prints a notice, skips the
# sim-seconds drift and memory checks, and gates on wall-clock only —
# regenerate BENCH_baseline.json to restore the full gate. Workloads added
# since the baseline was written (e.g. E9Dense) also only get a notice:
# they run ungated until the baseline is regenerated, so adding a
# benchmark never fails the gate by itself.
#
# Usage: scripts/bench.sh [baseline.json]
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_baseline.json}"
rev="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== go test -race"
go test -race ./...
echo "== benchmark harness (rev $rev, baseline $baseline)"
if [ -f "$baseline" ]; then
    go run ./cmd/pmihp-bench -benchjson "BENCH_${rev}.json" -rev "$rev" -scale small -baseline "$baseline" -v
else
    echo "no baseline at $baseline; writing fresh report only"
    go run ./cmd/pmihp-bench -benchjson "BENCH_${rev}.json" -rev "$rev" -scale small -v
fi

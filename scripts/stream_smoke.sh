#!/usr/bin/env sh
# Streaming smoke test: replays a preset corpus through the incremental
# windowed miner (pmihp-mine -stream) with the equivalence gate on —
# every step's frequent sets must be byte-identical to a from-scratch
# mine of the same window — including a scripted crash-and-resume
# through the PMCK stream checkpoint. A second replay publishes each
# step's rules into a live pmihp-serve over /admin/swap and checks the
# daemon walked through one generation per step. Artifacts land in
# $OUT_DIR (default ./stream-smoke) so CI can upload them.
#
# Usage: scripts/stream_smoke.sh [out_dir]
set -eu
cd "$(dirname "$0")/.."

out="${1:-stream-smoke}"
mkdir -p "$out"

echo "== build"
go build -o "$out/pmihp-mine" ./cmd/pmihp-mine
go build -o "$out/pmihp-serve" ./cmd/pmihp-serve

echo "== replay with equivalence gate and crash-resume at step 4"
"$out/pmihp-mine" -corpus b -scale small -minsup-count 3 -maxk 3 \
    -stream -stream-window 3 -stream-verify 2 \
    -stream-checkpoint "$out/stream.ckpt" -stream-crash-step 4 \
    -stream-json "$out/stream-report.json" | tee "$out/stream.out"
grep -q 'verified equivalent to from-scratch' "$out/stream.out" ||
    { echo "replay did not report verification"; exit 1; }
grep -q '"allEquivalent": *true' "$out/stream-report.json" ||
    { echo "equivalence gate failed"; cat "$out/stream-report.json"; exit 1; }
grep -q '"resumedFromCheckpoint": *true' "$out/stream-report.json" ||
    { echo "crash step never resumed from checkpoint"; exit 1; }

echo "== replay with day decay, equivalence vs weighted from-scratch"
"$out/pmihp-mine" -corpus b -scale small -minsup-count 3 -maxk 3 \
    -stream -stream-window 4 -stream-decay 0.8 -stream-verify 2 \
    -stream-json "$out/decay-report.json" | tee "$out/decay.out"
grep -q '"allEquivalent": *true' "$out/decay-report.json" ||
    { echo "decay equivalence gate failed"; cat "$out/decay-report.json"; exit 1; }

echo "== seed a rule export for the serve daemon"
"$out/pmihp-mine" -corpus b -scale small -minsup-count 3 -maxk 3 \
    -minconf 0.5 -rules 0 -top 0 -rules-out "$out/rules.json" >/dev/null
[ -s "$out/rules.json" ] || { echo "rules export is empty"; exit 1; }

cleanup() {
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== start pmihp-serve"
"$out/pmihp-serve" -rules "$out/rules.json" -addr 127.0.0.1:0 \
    -replicas 2 -deadline 2s >"$out/serve.out" 2>&1 &
serve_pid=$!
for i in $(seq 1 50); do
    grep -q 'serving on http://' "$out/serve.out" 2>/dev/null && break
    sleep 0.1
done
base=$(sed -n 's|.*serving on \(http://[0-9.:]*\).*|\1|p' "$out/serve.out" | head -1)
[ -n "$base" ] || { echo "daemon never announced"; cat "$out/serve.out"; exit 1; }

echo "== stream replay publishing each step into $base"
"$out/pmihp-mine" -corpus b -scale small -minsup-count 3 -maxk 3 \
    -stream -stream-window 3 -stream-verify 0 -stream-serve "$base" \
    -stream-json "$out/publish-report.json" | tee "$out/publish.out"
steps=$(grep -c '"step":' "$out/publish-report.json")
[ "$steps" -gt 0 ] || { echo "publish replay ran no steps"; exit 1; }

# Initial load is generation 1; every step that mined rules swaps one
# more (quiet windows keep the previous generation live).
published=$(grep -o '"rules": *[0-9]*' "$out/publish-report.json" |
    grep -cv '"rules": *0$' || true)
[ "$published" -gt 0 ] || { echo "no step published any rules"; exit 1; }
want=$((published + 1))
curl -fsS "$base/healthz" >"$out/healthz.json"
grep -q "\"generation\": *$want" "$out/healthz.json" ||
    { echo "daemon generation is not $want after $steps published steps"
      cat "$out/healthz.json"; exit 1; }

echo "== ok: incremental mining equivalent, resumed, and published; artifacts in $out/"

#!/usr/bin/env sh
# Multi-tenant scheduler smoke test: boots a worker pool, registers real
# pmihp-node processes into it with -pool, and drives it through the
# elastic scheduler's whole surface —
#
#   1. two concurrent tenant sessions sharing the pool, each verified
#      byte-identical to a single-process reference mine;
#   2. a session admitted on 2 logical nodes that scales up mid-run
#      (-grow 4) at the checkpoint barrier, again byte-identical;
#   3. the static-vs-elastic comparison on the skewed preset at 8 nodes
#      (pmihp-bench -sched-compare), which must show the elastic
#      scheduler beating static partitioning on both the deterministic
#      imbalance ratio and the modeled makespan, with identical
#      itemsets.
#
# Artifacts land in $OUT_DIR (default ./sched-smoke) so CI can upload
# them.
#
# Usage: scripts/sched_smoke.sh [out_dir]
set -eu
cd "$(dirname "$0")/.."

out="${1:-sched-smoke}"
mkdir -p "$out"

echo "== build"
go build -o "$out/pmihp-mine" ./cmd/pmihp-mine
go build -o "$out/pmihp-node" ./cmd/pmihp-node
go build -o "$out/pmihp-bench" ./cmd/pmihp-bench

node_pids=""
cleanup() {
    for pid in $node_pids; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT INT TERM

# The pool must be listening before workers can register, and the mine
# process IS the pool, so: start it first on a fixed port with
# -pool-wait, then point the workers at it.
pool_addr=127.0.0.1:19710

echo "== multi-tenant: 2 concurrent sessions on a 4-worker pool"
"$out/pmihp-mine" -pool-listen "$pool_addr" -pool-wait 4 \
    -sessions 2 -nodes 2 -corpus skewed -scale small -minsup-count 2 \
    -rules 0 -top 0 >"$out/tenants.out" 2>&1 &
mine_pid=$!
for i in 1 2 3 4; do
    "$out/pmihp-node" -pool "$pool_addr" >"$out/node$i.out" 2>&1 &
    node_pids="$node_pids $!"
done
wait "$mine_pid" || { echo "multi-tenant run failed"; cat "$out/tenants.out"; exit 1; }
grep -q 'all 2 sessions byte-identical' "$out/tenants.out" ||
    { echo "sessions were not verified identical"; cat "$out/tenants.out"; exit 1; }
grep -q 'session 2: admitted #2' "$out/tenants.out" ||
    { echo "admission was not FIFO"; cat "$out/tenants.out"; exit 1; }

echo "== elastic: one session growing 2 -> 4 nodes mid-run"
"$out/pmihp-mine" -pool-listen "$pool_addr" -pool-wait 4 \
    -sessions 1 -nodes 2 -grow 4 -corpus skewed -scale small -minsup-count 2 \
    -rules 0 -top 0 >"$out/grow.out" 2>&1 ||
    { echo "elastic grow run failed"; cat "$out/grow.out"; exit 1; }
grep -q 'byte-identical to the single-process reference' "$out/grow.out" ||
    { echo "grown session was not verified identical"; cat "$out/grow.out"; exit 1; }
grep -q '4 final nodes.*resizes 1' "$out/grow.out" ||
    { echo "session did not resize to 4 nodes"; cat "$out/grow.out"; exit 1; }

echo "== skewed preset: elastic scheduler vs static 8-node partitioning"
"$out/pmihp-bench" -sched-compare -scale small -v \
    -sched-report "$out/sched-compare.json" >"$out/sched-compare.out" 2>&1 ||
    { echo "sched-compare gate failed"; cat "$out/sched-compare.out"; exit 1; }
cat "$out/sched-compare.out"
grep -q '"identical": *true' "$out/sched-compare.json" ||
    { echo "comparison itemsets differ"; exit 1; }

echo "== ok: multi-tenant sessions identical, mid-run scale-up applied, elastic beats static on skew; artifacts in $out/"

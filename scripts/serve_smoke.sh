#!/usr/bin/env sh
# Serving smoke test: builds the binaries, mines a small rule set and
# exports it with pmihp-mine -rules-out, starts pmihp-serve on a
# loopback ephemeral port, drives a short Zipf load burst through both
# cache phases with pmihp-bench -serve-load (which exits nonzero on any
# request error), exercises a hot swap over /admin/swap, and scrapes
# /metrics for the serving gauge families. Artifacts land in $OUT_DIR
# (default ./serve-smoke) so CI can upload them.
#
# Usage: scripts/serve_smoke.sh [out_dir]
set -eu
cd "$(dirname "$0")/.."

out="${1:-serve-smoke}"
mkdir -p "$out"

echo "== build"
go build -o "$out/pmihp-mine" ./cmd/pmihp-mine
go build -o "$out/pmihp-serve" ./cmd/pmihp-serve
go build -o "$out/pmihp-bench" ./cmd/pmihp-bench

echo "== mine and export rules"
"$out/pmihp-mine" -corpus b -scale small -minsup-count 3 -maxk 3 \
    -minconf 0.5 -rules 0 -top 0 -rules-out "$out/rules.json" | tee "$out/mine.out"
[ -s "$out/rules.json" ] || { echo "rules export is empty"; exit 1; }

cleanup() {
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== start pmihp-serve"
"$out/pmihp-serve" -rules "$out/rules.json" -addr 127.0.0.1:0 \
    -replicas 2 -deadline 2s >"$out/serve.out" 2>&1 &
serve_pid=$!
for i in $(seq 1 50); do
    grep -q 'serving on http://' "$out/serve.out" 2>/dev/null && break
    sleep 0.1
done
base=$(sed -n 's|.*serving on \(http://[0-9.:]*\).*|\1|p' "$out/serve.out" | head -1)
[ -n "$base" ] || { echo "daemon never announced"; cat "$out/serve.out"; exit 1; }

echo "== health and a hand query at $base"
curl -fsS "$base/healthz" >"$out/healthz.json"
grep -q '"status": *"ok"' "$out/healthz.json" ||
    { echo "healthz not ok"; cat "$out/healthz.json"; exit 1; }
head_word=$(curl -fsS "$base/admin/heads?limit=1" |
    sed -n 's/.*"word": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$head_word" ] || { echo "no heads served"; exit 1; }
curl -fsS "$base/expand?q=$head_word&limit=3" >"$out/expand.json"
grep -q '"generation"' "$out/expand.json" ||
    { echo "expand envelope malformed"; cat "$out/expand.json"; exit 1; }

echo "== load burst (cold + warm, zero errors required)"
"$out/pmihp-bench" -serve-load "$base" -serve-clients 4 -serve-requests 500 \
    -serve-report "$out/load-report.json" | tee "$out/load.out"
grep -q '"errors": *0' "$out/load-report.json" ||
    { echo "load report counted errors"; cat "$out/load-report.json"; exit 1; }

echo "== hot swap under a fresh generation"
rules_abs="$(cd "$out" && pwd)/rules.json"
curl -fsS -X POST "$base/admin/swap?path=$rules_abs" >"$out/swap.json"
grep -q '"generation": *2' "$out/swap.json" ||
    { echo "swap did not advance the generation"; cat "$out/swap.json"; exit 1; }
curl -fsS "$base/expand?q=$head_word&limit=3" | grep -q '"generation": *2' ||
    { echo "queries still on the old generation"; exit 1; }

echo "== scrape serving metrics"
curl -fsS "$base/metrics" >"$out/metrics.prom"
for metric in pmihp_serve_queries_total pmihp_serve_generation_id \
    pmihp_serve_index_bytes_held pmihp_serve_cache_hits_total \
    pmihp_serve_latency_p99_seconds pmihp_serve_qps; do
    grep -q "^$metric" "$out/metrics.prom" ||
        { echo "scrape missing $metric"; cat "$out/metrics.prom"; exit 1; }
done
grep -q '^pmihp_serve_generation_id 2$' "$out/metrics.prom" ||
    { echo "metrics show a stale generation"; exit 1; }

echo "== ok: served, swapped, and load-tested; artifacts in $out/"

module pmihp

go 1.22

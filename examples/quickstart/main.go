// Quickstart: generate a small synthetic news corpus, mine frequent word
// sets with PMIHP on four simulated nodes, and print the strongest
// association rules.
package main

import (
	"fmt"
	"log"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/text"
)

func main() {
	// 1. A corpus: ~100 documents over 8 publication days.
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	db, vocab := text.ToDB(docs, nil)
	fmt.Printf("corpus: %d documents, %d distinct words\n", db.Len(), vocab.Size())

	// 2. Mine with PMIHP: words co-occurring in at least 3 documents,
	//    itemsets up to size 3, four asynchronous miner nodes.
	result, err := core.MinePMIHP(db,
		core.PMIHPConfig{Nodes: 4},
		mining.Options{MinSupCount: 3, MaxK: 3},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets: %d (simulated cluster time %.1fs)\n",
		len(result.Result.Frequent), result.TotalSeconds)

	// 3. Rules at 60% confidence.
	rs := rules.Generate(result.Result.Frequent, db.Len(), 0.60)
	fmt.Printf("rules at minconf 0.60: %d; strongest:\n", len(rs))
	for i, r := range rs {
		if i >= 8 {
			break
		}
		fmt.Println("  ", r.Render(vocab.Word))
	}
}

// Queryexpand demonstrates the paper's motivating application (§1): using
// association rules B ⇒ C between words as a statistical thesaurus, so a
// search for C also retrieves documents that mention only B.
//
// It mines rules from a synthetic news corpus, builds an inverted index,
// picks a handful of bursty topic words, and shows how many extra documents
// the rule-based expansion reaches for each.
package main

import (
	"fmt"
	"log"
	"sort"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/search"
	"pmihp/internal/text"
)

func main() {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	db, vocab := text.ToDB(docs, nil)

	// Mine pairwise rules at low support — the paper argues document
	// retrieval needs low minimum support levels (§3).
	result, err := core.MinePMIHP(db,
		core.PMIHPConfig{Nodes: 4},
		mining.Options{MinSupCount: 3, MaxK: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	rs := rules.Generate(result.Result.Frequent, db.Len(), 0.60)
	fmt.Printf("mined %d rules (minconf 0.60) from %d documents\n\n", len(rs), db.Len())

	idx := search.Build(db, vocab)
	exp := search.NewExpander(rs, vocab)

	// Query the most expandable words: consequents with many strong rules.
	byConsequent := map[string]int{}
	for _, r := range rs {
		if len(r.Consequent) == 1 && len(r.Antecedent) == 1 {
			byConsequent[vocab.Word(r.Consequent[0])]++
		}
	}
	var queries []string
	for w := range byConsequent {
		queries = append(queries, w)
	}
	sort.Slice(queries, func(i, j int) bool {
		if byConsequent[queries[i]] != byConsequent[queries[j]] {
			return byConsequent[queries[i]] > byConsequent[queries[j]]
		}
		return queries[i] < queries[j]
	})
	if len(queries) > 5 {
		queries = queries[:5]
	}

	for _, q := range queries {
		direct := idx.Postings(q)
		all, extra := exp.ExpandedSearch(idx, 4, q)
		fmt.Printf("query %q: %d direct hits, %d after expansion (+%d via thesaurus)\n",
			q, len(direct), len(all), len(extra))
		for _, e := range exp.Expand(4, q) {
			for _, t := range e.Terms {
				fmt.Printf("    expanded with %q  [%s]\n", t.Word, t.Rule.Render(vocab.Word))
			}
		}
	}
}

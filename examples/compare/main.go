// Compare runs every implemented miner — Apriori, DHP, FP-Growth, MIHP,
// Count Distribution and PMIHP — over the same corpus at several minimum
// support levels, verifying they all find the same frequent itemsets and
// contrasting their simulated costs (a miniature of Figures 4 and 5).
package main

import (
	"errors"
	"fmt"
	"log"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/text"
)

func main() {
	docs := corpus.MustGenerate(corpus.CorpusA(corpus.Small))
	db, _ := text.ToDB(docs, nil)
	st := db.ComputeStats()
	fmt.Printf("corpus: %d docs, %d distinct words\n\n", st.Docs, st.UniqueItems)

	for _, minsup := range []float64{0.08, 0.05, 0.03} {
		opts := mining.Options{MinSupFrac: minsup, MaxK: 4}
		fmt.Printf("minsup %.1f%% (count %d):\n", minsup*100, db.MinSupCount(minsup))

		type entry struct {
			name string
			run  func() (*mining.Result, error)
		}
		seq := []entry{
			{"apriori", func() (*mining.Result, error) { return apriori.Mine(db, opts) }},
			{"dhp", func() (*mining.Result, error) { return dhp.Mine(db, opts) }},
			{"fpgrowth", func() (*mining.Result, error) { return fpgrowth.Mine(db, opts) }},
			{"mihp", func() (*mining.Result, error) { return core.MineMIHP(db, opts) }},
			{"cd(4)", func() (*mining.Result, error) {
				r, err := countdist.Mine(db, countdist.Config{Nodes: 4}, opts)
				if r == nil {
					return nil, err
				}
				return r.Result, err
			}},
			{"pmihp(4)", func() (*mining.Result, error) {
				r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, opts)
				if r == nil {
					return nil, err
				}
				return r.Result, err
			}},
		}

		var reference *mining.Result
		for _, e := range seq {
			r, err := e.run()
			if errors.Is(err, mining.ErrMemoryExceeded) {
				fmt.Printf("  %-9s OOM\n", e.name)
				continue
			}
			if err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
			status := ""
			if reference == nil {
				reference = r
				status = "(reference)"
			} else if ok, diff := mining.SameFrequentSets(reference, r); !ok {
				status = "MISMATCH: " + diff
			} else {
				status = "identical frequent sets"
			}
			fmt.Printf("  %-9s %8.1fs simulated, %7d candidates, %6d frequent  %s\n",
				e.name, r.Metrics.Work.Seconds(), r.Metrics.Candidates(), len(r.Frequent), status)
		}
		fmt.Println()
	}
}

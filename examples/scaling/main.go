// Scaling runs PMIHP on 1, 2, 4 and 8 simulated workstation nodes over the
// same corpus and prints the total execution time, speedup, and per-node
// candidate counts — a miniature of the paper's Figures 6, 7 and 10, and a
// demonstration of where the superlinear speedup comes from (fewer
// candidate itemsets per node as the chronologically skewed corpus is
// spread across more nodes).
package main

import (
	"fmt"
	"log"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/text"
)

func main() {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	db, _ := text.ToDB(docs, nil)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}

	fmt.Println("nodes  time(s)  speedup  cand2/node  cand3/node  poll msgs")
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		run, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: n}, opts)
		if err != nil {
			log.Fatal(err)
		}
		if n == 1 {
			base = run.TotalSeconds
		}
		msgs := 0
		for _, nd := range run.Nodes {
			msgs += nd.Metrics.MessagesSent
		}
		fmt.Printf("%5d  %7.1f  %6.2fx  %10.0f  %10.0f  %9d\n",
			n, run.TotalSeconds, base/run.TotalSeconds,
			run.AvgCandidates(2), run.AvgCandidates(3), msgs)
	}
	fmt.Println("\nSuperlinear speedup appears once per-node candidate counts fall")
	fmt.Println("below the single-node count divided by the node count.")
}

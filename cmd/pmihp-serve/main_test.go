package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const testRulesJSON = `[
  {"antecedent":["stock"],"consequent":["market"],"support":12,"confidence":0.8},
  {"antecedent":["trade"],"consequent":["market"],"support":9,"confidence":0.75},
  {"antecedent":["market"],"consequent":["stock"],"support":12,"confidence":0.7}
]`

func writeRules(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(path, []byte(testRulesJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFlagsValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                            // neither source
		{"-rules", "r.json", "-mine"}, // both sources
		{"-bogus"},                    // unknown flag
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
	o, err := parseFlags([]string{"-rules", "r.json", "-replicas", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if o.rules != "r.json" || o.replicas != 2 || o.deadline != 100*time.Millisecond {
		t.Fatalf("parsed %+v", o)
	}
}

func TestLoadInitialErrors(t *testing.T) {
	if _, _, err := loadInitial(&options{rules: "/does/not/exist.json"}, io.Discard); err == nil {
		t.Fatal("missing rules file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not rules"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadInitial(&options{rules: bad}, io.Discard); err == nil {
		t.Fatal("malformed rules file accepted")
	}
	if _, _, err := loadInitial(&options{mine: true, corpusID: "nope", scale: "small"}, io.Discard); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

// syncWriter collects daemon output so the test can discover the bound
// address from the startup line.
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// baseURL waits for the "serving on http://..." line and extracts it.
func (w *syncWriter) baseURL(t *testing.T) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		out := w.String()
		if i := strings.Index(out, "serving on http://"); i >= 0 {
			rest := out[i+len("serving on "):]
			return strings.Fields(rest)[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced its address; output:\n%s", w.String())
	return ""
}

// TestRunServesAndShutsDown boots the daemon on a free port from a rules
// export, exercises the query surface end to end over real HTTP, then
// cancels the context and requires a clean shutdown.
func TestRunServesAndShutsDown(t *testing.T) {
	path := writeRules(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-rules", path, "-addr", "127.0.0.1:0", "-replicas", "2"}, &out, ctx)
	}()
	base := out.baseURL(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/expand?q=market&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var eb struct {
		Generation int64           `json:"generation"`
		Expansions json.RawMessage `json:"expansions"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("expand body %s: %v", body, err)
	}
	if eb.Generation != 1 || !strings.Contains(string(eb.Expansions), `"stock"`) {
		t.Fatalf("expand body %s", body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "pmihp_serve_queries_total") {
		t.Fatalf("metrics missing serve gauges:\n%s", metrics)
	}

	// Swap over HTTP with a shrunk rule set; the daemon must advance the
	// generation without restarting.
	resp, err = http.Post(base+"/admin/swap", "application/json",
		strings.NewReader(`[{"antecedent":["bond"],"consequent":["yield"],"support":5,"confidence":0.9}]`))
	if err != nil {
		t.Fatal(err)
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(swapBody), `"generation": 2`) &&
		!strings.Contains(string(swapBody), `"generation":2`) {
		t.Fatalf("swap = %d: %s", resp.StatusCode, swapBody)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("missing shutdown line in output:\n%s", out.String())
	}
}

// TestRunMineOnStart boots with -mine (no export file) and checks a
// mined generation is announced and served.
func TestRunMineOnStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-mine", "-corpus", "b", "-scale", "small",
			"-minsup-count", "3", "-maxk", "3", "-minconf", "0.5",
			"-addr", "127.0.0.1:0", "-replicas", "1"}, &out, ctx)
	}()
	base := out.baseURL(t)

	resp, err := http.Get(base + "/admin/heads?limit=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heads = %d: %s", resp.StatusCode, body)
	}
	var hb struct {
		Heads []struct {
			Word  string `json:"word"`
			Rules int    `json:"rules"`
		} `json:"heads"`
	}
	if err := json.Unmarshal(body, &hb); err != nil || len(hb.Heads) == 0 {
		t.Fatalf("heads body %s: %v", body, err)
	}
	resp, err = http.Get(base + fmt.Sprintf("/expand?q=%s", hb.Heads[0].Word))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expand mined head = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "mined") {
		t.Fatalf("missing mine line:\n%s", out.String())
	}
}

// Command pmihp-serve is the online rule-serving daemon: it loads a
// mined rule set (a pmihp-mine -rules-out JSON export, or mines one at
// startup from a corpus preset) into a compact immutable index and
// answers query-expansion and association queries over HTTP, with
// sharded read replicas, per-query deadlines, an LRU + singleflight
// cache per replica, and hot-swappable rule-set generations.
//
// Usage:
//
//	pmihp-mine -corpus b -minsup-count 3 -maxk 3 -rules-out rules.json
//	pmihp-serve -rules rules.json -addr :8397
//	curl 'localhost:8397/expand?q=market&limit=5'
//	curl 'localhost:8397/rules?head=market'
//	curl -X POST 'localhost:8397/admin/swap?path=/abs/new-rules.json'
//	kill -HUP <pid>          # reload and swap the -rules file in place
//
// Or mine at startup without an export file:
//
//	pmihp-serve -mine -corpus b -scale small -minsup-count 3 -minconf 0.6
//
// The /metrics and /snapshot endpoints expose QPS, latency quantiles,
// cache hit rates, the live generation id, and the index's bytes_held
// through the internal/obs exposition used by every other binary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/rules"
	"pmihp/internal/serve"
	"pmihp/internal/text"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-serve:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set.
type options struct {
	addr     string
	rules    string
	mine     bool
	corpusID string
	scale    string
	minsup   float64
	minsupC  int
	maxK     int
	nodes    int
	minConf  float64
	replicas int
	cache    int
	deadline time.Duration
	limit    int
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("pmihp-serve", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8397", "listen address (host:0 picks a free port)")
	fs.StringVar(&o.rules, "rules", "", "serve this rules JSON export (pmihp-mine -rules-out); SIGHUP reloads it")
	fs.BoolVar(&o.mine, "mine", false, "mine the rule set at startup from a corpus preset instead of -rules")
	fs.StringVar(&o.corpusID, "corpus", "b", "corpus preset for -mine: a, b, c, dense, or skewed")
	fs.StringVar(&o.scale, "scale", "small", "corpus scale for -mine: small, harness, paper")
	fs.Float64Var(&o.minsup, "minsup", 0.02, "minimum support fraction for -mine")
	fs.IntVar(&o.minsupC, "minsup-count", 0, "absolute minimum support count for -mine (overrides -minsup)")
	fs.IntVar(&o.maxK, "maxk", 3, "largest itemset size for -mine (0 = unbounded)")
	fs.IntVar(&o.nodes, "nodes", 4, "simulated nodes for the -mine run")
	fs.Float64Var(&o.minConf, "minconf", 0.6, "minimum rule confidence for -mine")
	fs.IntVar(&o.replicas, "replicas", 0, "read replicas / cache shards (0 = GOMAXPROCS)")
	fs.IntVar(&o.cache, "cache", 0, "per-replica LRU entries (0 = default 4096, negative = disable)")
	fs.DurationVar(&o.deadline, "deadline", 100*time.Millisecond, "per-query deadline (0 = none)")
	fs.IntVar(&o.limit, "limit", 0, "default per-word term limit when a query passes none (0 = server default 10)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if (o.rules == "") == !o.mine {
		return nil, fmt.Errorf("exactly one of -rules or -mine is required")
	}
	return o, nil
}

// mineRules mines the corpus preset and generates its rule set in word
// form, with the vocabulary resolved — the same path pmihp-mine
// -rules-out takes, inlined for export-free startup.
func mineRules(o *options, out io.Writer) ([]rules.WordRule, string, error) {
	sc, err := corpus.ParseScale(o.scale)
	if err != nil {
		return nil, "", err
	}
	var cfg corpus.Config
	switch o.corpusID {
	case "a":
		cfg = corpus.CorpusA(sc)
	case "b":
		cfg = corpus.CorpusB(sc)
	case "c":
		cfg = corpus.CorpusC(sc)
	case "d", "dense":
		cfg = corpus.CorpusDense(sc)
	case "s", "skewed":
		cfg = corpus.CorpusSkewed(sc)
	default:
		return nil, "", fmt.Errorf("unknown corpus %q (want a, b, c, dense, or skewed)", o.corpusID)
	}
	docs, err := corpus.Generate(cfg)
	if err != nil {
		return nil, "", err
	}
	db, vocab := text.ToDB(docs, nil)
	result, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: o.nodes},
		mining.Options{MinSupFrac: o.minsup, MinSupCount: o.minsupC, MaxK: o.maxK})
	if err != nil {
		return nil, "", err
	}
	rs := rules.Generate(result.Result.Frequent, db.Len(), o.minConf)
	source := fmt.Sprintf("mined %s (%s) at startup: %d rules at minconf %.2f", cfg.Name, sc, len(rs), o.minConf)
	fmt.Fprintln(out, source)
	return rules.ToWordRules(rs, vocab.Word), source, nil
}

// loadInitial builds the first generation's rule set from the flags.
func loadInitial(o *options, out io.Writer) ([]rules.WordRule, string, error) {
	if o.mine {
		return mineRules(o, out)
	}
	f, err := os.Open(o.rules)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	ws, err := rules.ParseJSON(f)
	if err != nil {
		return nil, "", err
	}
	return ws, o.rules, nil
}

// run starts the daemon and blocks until the context is canceled (nil
// uses a signal context: SIGINT/SIGTERM stop, SIGHUP reloads -rules).
func run(args []string, out io.Writer, ctx context.Context) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	ws, source, err := loadInitial(o, out)
	if err != nil {
		return err
	}

	srv := serve.NewServer(serve.Config{
		Replicas:     o.replicas,
		CacheSize:    o.cache,
		Deadline:     o.deadline,
		DefaultLimit: o.limit,
	})
	g, err := srv.Swap(ws, source)
	if err != nil {
		return err
	}
	st := g.Index.Stats()
	fmt.Fprintf(out, "generation %d: %d rules, %d heads, %d words, %.1f KiB held\n",
		g.ID, st.Rules, st.Heads, st.Words, float64(st.BytesHeld)/1024)

	rec := obs.New(obs.Config{})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", o.addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(rec)}
	fmt.Fprintf(out, "serving on http://%s (endpoints: /expand /rules /healthz /admin/swap /admin/heads /metrics)\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	if ctx == nil {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	for {
		select {
		case <-hup:
			if o.rules == "" {
				fmt.Fprintln(out, "SIGHUP ignored: no -rules file to reload")
				continue
			}
			g, err := srv.SwapFromFile(o.rules)
			if err != nil {
				fmt.Fprintf(out, "SIGHUP reload failed, keeping generation %d: %v\n", srv.Generation().ID, err)
				continue
			}
			fmt.Fprintf(out, "SIGHUP: swapped in generation %d from %s (%d rules)\n", g.ID, o.rules, g.Index.Stats().Rules)
		case err := <-errc:
			return fmt.Errorf("http server: %w", err)
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutdownCtx); err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
			fmt.Fprintln(out, "shut down")
			return nil
		}
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/distmine"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/sched"
	"pmihp/internal/txdb"
)

// schedFlags carries the scheduler-mode flag values into runSched.
type schedFlags struct {
	listen   string // pool listen address
	wait     int    // workers to wait for before submitting
	sessions int    // concurrent sessions
	nodes    int    // logical nodes per session at admission
	growTo   int    // mid-run elastic scale-up target (0 = none)
	cluster  distmine.ClusterConfig
}

// runSched is pmihp-mine's multi-tenant scheduler mode: it boots a
// worker pool (pmihp-node processes register with -pool), waits for the
// requested quorum, then submits -sessions concurrent mining sessions
// over the same corpus through one sched.Scheduler. Every session's
// frequent list is checked byte-for-byte against an in-process
// core.MinePMIHP reference — including sessions that resized mid-run —
// so a passing exit code certifies multi-tenancy did not change a
// single answer. Returns the first session's result for the standard
// report tail.
func runSched(out io.Writer, db *txdb.DB, opts mining.Options, f schedFlags) (*mining.Result, error) {
	pool := sched.NewPool(sched.PoolOptions{Logf: f.cluster.Logf})
	ln, err := net.Listen("tcp", f.listen)
	if err != nil {
		return nil, fmt.Errorf("scheduler pool: %w", err)
	}
	go pool.Serve(ln)
	defer pool.Close()
	fmt.Fprintf(out, "scheduler pool listening on %s\n", ln.Addr().String())

	if f.wait > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		err := pool.WaitMembers(ctx, f.wait)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("waiting for %d pool workers: %w", f.wait, err)
		}
		fmt.Fprintf(out, "pool quorum reached: %d workers\n", len(pool.Members()))
	}

	// The answer every session must reproduce exactly. The reference node
	// count is irrelevant: PMIHP's output is partition-independent.
	ref, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 1}, opts)
	if err != nil {
		return nil, fmt.Errorf("reference mine: %w", err)
	}

	s := sched.NewScheduler(sched.SchedulerOptions{Pool: pool, Cluster: f.cluster, Logf: f.cluster.Logf})
	defer s.Close()

	type outcome struct {
		sess *sched.Session
		res  *distmine.Result
		err  error
		wall time.Duration
	}
	outcomes := make([]outcome, f.sessions)
	var wg sync.WaitGroup
	for i := 0; i < f.sessions; i++ {
		sess, err := s.Submit(sched.SessionRequest{
			DB:     db,
			Opts:   opts,
			Nodes:  f.nodes,
			GrowTo: f.growTo,
			Label:  fmt.Sprintf("session-%d", i+1),
		})
		if err != nil {
			return nil, err
		}
		outcomes[i].sess = sess
		wg.Add(1)
		go func(o *outcome) {
			defer wg.Done()
			<-o.sess.Admitted()
			start := time.Now()
			o.res, o.err = o.sess.Wait()
			o.wall = time.Since(start)
		}(&outcomes[i])
	}
	wg.Wait()

	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			return nil, fmt.Errorf("session %d: %w", i+1, o.err)
		}
		if msg := frequentMismatch(ref.Result.Frequent, o.res.Frequent); msg != "" {
			return nil, fmt.Errorf("session %d: result differs from reference: %s", i+1, msg)
		}
		fmt.Fprintf(out, "session %d: admitted #%d, %d final nodes, wall %6.2fs, imbalance %.3f, resizes %d, failovers %d\n",
			i+1, o.sess.AdmitOrder(), len(o.res.Nodes), o.wall.Seconds(),
			o.res.Imbalance, o.res.Metrics.ElasticResizes, o.res.Metrics.Failovers)
	}
	fmt.Fprintf(out, "all %d sessions byte-identical to the single-process reference\n", f.sessions)

	first := outcomes[0].res
	return &mining.Result{Frequent: first.Frequent, Metrics: first.Metrics}, nil
}

// frequentMismatch reports the first difference between two frequent
// lists ("" when identical).
func frequentMismatch(want, got []itemset.Counted) string {
	if len(want) != len(got) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !want[i].Set.Equal(got[i].Set) || want[i].Count != got[i].Count {
			return fmt.Sprintf("entry %d: %v/%d, want %v/%d",
				i, got[i].Set, got[i].Count, want[i].Set, want[i].Count)
		}
	}
	return ""
}

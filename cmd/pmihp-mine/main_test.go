package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmihp/internal/distmine"
	"pmihp/internal/rules"
	"pmihp/internal/streammine"
)

func TestRunMissingCorpusFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.txt")
	err := run([]string{"-in", path}, &strings.Builder{})
	if err == nil {
		t.Fatal("expected an error for a missing corpus file")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the file: %v", err)
	}
}

func TestRunEmptyCorpusFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", path}, &strings.Builder{})
	if err == nil {
		t.Fatal("expected an error for an empty corpus")
	}
	if !strings.Contains(err.Error(), "no documents") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRunPresetCorpus(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-corpus", "b", "-scale", "small", "-algo", "pmihp", "-minsup-count", "2", "-maxk", "3", "-rules", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "frequent itemsets found") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

// TestRunRulesOut exports the mined rule set and checks the file parses
// back into the exact canonical set pmihp-serve would build from — even
// with -rules 0, since the export alone forces rule generation.
func TestRunRulesOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	var out strings.Builder
	err := run([]string{"-corpus", "b", "-scale", "small", "-minsup-count", "3", "-maxk", "3",
		"-rules", "0", "-minconf", "0.5", "-rules-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") || !strings.Contains(out.String(), path) {
		t.Fatalf("missing export line:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ws, err := rules.ParseJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("export contains no rules")
	}
	for i := 1; i < len(ws); i++ {
		if rules.CanonWord(ws[i-1], ws[i]) > 0 {
			t.Fatalf("export not in canonical order at %d", i)
		}
	}

	// An unwritable path must fail loudly, not export silently.
	err = run([]string{"-corpus", "b", "-scale", "small", "-minsup-count", "3", "-maxk", "3",
		"-rules", "0", "-rules-out", filepath.Join(t.TempDir(), "no", "such", "dir.json")}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "rules export") {
		t.Fatalf("expected export error, got %v", err)
	}
}

func TestRunClusterAndSpawnExclusive(t *testing.T) {
	err := run([]string{"-cluster", "x:1", "-spawn", "2"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("expected mutual-exclusion error, got %v", err)
	}
}

func TestRunClusterMode(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		d := distmine.NewDaemon(distmine.DaemonOptions{})
		go d.Serve(ln)
		addrs[i] = ln.Addr().String()
	}
	var out strings.Builder
	err := run([]string{
		"-cluster", strings.Join(addrs, ","),
		"-corpus", "b", "-scale", "small", "-minsup-count", "2", "-maxk", "3", "-rules", "0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cluster of 2 nodes") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

// TestRunStream replays a preset corpus through the incremental windowed
// miner with the per-step equivalence gate on, a checkpoint, and a
// scripted crash-and-resume, and checks the JSON report parses back with
// every step verified equivalent.
func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "stream.json")
	var out strings.Builder
	err := run([]string{"-corpus", "b", "-scale", "small", "-minsup-count", "3", "-maxk", "3",
		"-stream", "-stream-window", "3", "-stream-verify", "2",
		"-stream-checkpoint", filepath.Join(dir, "stream.ckpt"), "-stream-crash-step", "4",
		"-stream-json", reportPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified equivalent to from-scratch") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var report streammine.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if !report.AllEquivalent || len(report.Steps) != 8 {
		t.Fatalf("report: %+v", report)
	}
	resumed := false
	for _, sr := range report.Steps {
		if !sr.Verified || !sr.Equivalent {
			t.Fatalf("step %d not verified equivalent", sr.Step)
		}
		resumed = resumed || sr.Resumed
	}
	if !resumed {
		t.Fatal("no step resumed from the checkpoint")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pmihp/internal/mining"
	"pmihp/internal/streammine"
	"pmihp/internal/text"
)

// streamFlags carries the -stream* flag values into the replay runner.
type streamFlags struct {
	window     int
	batchDays  int
	decay      float64
	verify     int
	serveURL   string
	checkpoint string
	crashStep  int
	jsonOut    string
	opts       mining.Options
	minConf    float64
}

// runStream replays the corpus through the incremental windowed miner
// (internal/streammine), one batch of days per step, optionally proving
// every step byte-identical to a from-scratch mine, publishing each
// generation to a serve daemon, and writing the JSON report.
func runStream(out io.Writer, docs []text.Document, label string, f streamFlags) error {
	cfg := streammine.ReplayConfig{
		WindowDays:     f.window,
		Decay:          f.decay,
		Opts:           f.opts,
		BatchDays:      f.batchDays,
		MinConf:        f.minConf,
		VerifyNodes:    f.verify,
		CheckpointPath: f.checkpoint,
		CrashAfterStep: f.crashStep,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	}
	if f.serveURL != "" {
		cfg.Publish = streammine.NewSwapPublisher(nil, f.serveURL)
	}
	fmt.Fprintf(out, "streaming %s: %d docs, window %d days, %d day(s)/batch, decay %v, verify x%d\n",
		label, len(docs), f.window, f.batchDays, f.decay, f.verify)

	report, err := streammine.Replay(docs, cfg)
	if report != nil && f.jsonOut != "" {
		w := out
		var file *os.File
		if f.jsonOut != "-" {
			var ferr error
			file, ferr = os.Create(f.jsonOut)
			if ferr != nil {
				return fmt.Errorf("creating stream report: %w", ferr)
			}
			defer file.Close()
			w = file
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(report); jerr != nil {
			return fmt.Errorf("writing stream report: %w", jerr)
		}
		if file != nil {
			fmt.Fprintf(out, "wrote stream report to %s\n", f.jsonOut)
		}
	}
	if err != nil {
		return err
	}
	verified := 0
	for _, sr := range report.Steps {
		if sr.Verified {
			verified++
		}
	}
	fmt.Fprintf(out, "stream replay done: %d steps, %d verified equivalent to from-scratch\n",
		len(report.Steps), verified)
	if f.verify > 0 && !report.AllEquivalent {
		return fmt.Errorf("stream replay diverged from from-scratch mining")
	}
	return nil
}

// Command pmihp-mine runs any of the implemented miners over a synthetic
// corpus preset and prints frequent itemsets, association rules, and run
// metrics. It can also act as the coordinator of a real multi-process
// cluster of pmihp-node workers.
//
// Usage:
//
//	pmihp-mine -algo pmihp -corpus b -scale small -minsup 0.02 -nodes 8 -rules 20
//	pmihp-mine -algo mihp -corpus a -minsup-count 5 -top 25
//	pmihp-mine -corpus b -minsup-count 3 -rules-out rules.json   # export for pmihp-serve
//	pmihp-mine -in docs.txt -algo pmihp -minsup-count 2       # line-format file
//	pmihp-mine -trec wsj_0401 -algo mihp -minsup 0.02         # TREC markup
//	pmihp-mine -spawn 4 -node-bin ./pmihp-node -minsup-count 2   # real 4-process cluster
//	pmihp-mine -cluster host1:9001,host2:9001 -minsup-count 2    # pre-started daemons
//	pmihp-mine -stream -stream-window 3 -minsup-count 3 -maxk 3  # windowed stream replay
//	pmihp-mine -pool-listen 127.0.0.1:0 -pool-wait 4 -sessions 2 -nodes 2 -grow 4  # multi-tenant scheduler
//
// Algorithms: apriori, dhp, fpgrowth, mihp, ihp, cd, dd, pmihp.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/datadist"
	"pmihp/internal/dhp"
	"pmihp/internal/distmine"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/trec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-mine:", err)
		os.Exit(1)
	}
}

// resolveDenseThreshold maps the -dense-threshold flag onto the library's
// Options.DenseThreshold encoding: negative means "not set" (the zero
// Options value selects mining.DefaultDenseThreshold), an explicit 0 means
// every posting list becomes a bitmap, and any positive value — including
// "inf", which disables bitmaps — passes through.
func resolveDenseThreshold(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return mining.DenseThresholdAll
	default:
		return v
	}
}

// printSchedule reports how a simulated parallel run's work landed on
// its nodes: total time, per-node busy/idle split, and the pass
// imbalance ratio (max busy x nodes / total busy, 1.0 when perfectly
// balanced) — the same figure the /metrics endpoint exports as
// pmihp_pass_imbalance_ratio.
func printSchedule(out io.Writer, nodes int, pr *core.ParallelResult) {
	fmt.Fprintf(out, "simulated total time on %d nodes: %.1fs\n", nodes, pr.TotalSeconds)
	var maxBusy, sumBusy float64
	for _, n := range pr.Nodes {
		busy := n.Metrics.Work.Seconds()
		if maxBusy < busy {
			maxBusy = busy
		}
		sumBusy += busy
		idle := pr.TotalSeconds - busy
		if idle < 0 {
			idle = 0
		}
		fmt.Fprintf(out, "  node %2d: %d docs, busy %7.2fs, idle %7.2fs\n", n.Node, n.Docs, busy, idle)
	}
	if sumBusy > 0 {
		fmt.Fprintf(out, "pass imbalance ratio: %.3f (1.0 = perfectly balanced)\n",
			maxBusy*float64(len(pr.Nodes))/sumBusy)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pmihp-mine", flag.ContinueOnError)
	var (
		algo         = fs.String("algo", "pmihp", "apriori | dhp | fpgrowth | mihp | ihp | cd | dd | pmihp")
		corpusID     = fs.String("corpus", "b", "corpus preset: a, b, c, dense, or skewed")
		scale        = fs.String("scale", "small", "corpus scale: small, harness, paper")
		inFile       = fs.String("in", "", "mine a line-format documents file instead of a preset")
		trecFile     = fs.String("trec", "", "mine a TREC-markup file instead of a preset")
		minsup       = fs.Float64("minsup", 0.02, "minimum support fraction")
		minsupCount  = fs.Int("minsup-count", 0, "absolute minimum support count (overrides -minsup)")
		maxK         = fs.Int("maxk", 0, "largest itemset size to mine (0 = unbounded)")
		denseTh      = fs.Float64("dense-threshold", -1, "posting density cutoff: words in at least this fraction of the TID span get bitmap posting lists (0 = all bitmaps, >1 or inf = all compressed, -1 = library default 1/16); layout only — never changes results or simulated time")
		partitioner  = fs.String("partitioner", "count", "database-to-node split: count (equal document counts, the paper's) | work (equal estimated counting work); placement only — never changes the frequent itemsets")
		stragglerLag = fs.Int("straggler-lag", 0, "cluster runs: re-host a live node's partitions to peers when its pass progress lags the fleet by this many passes (0 = disabled)")
		nodes        = fs.Int("nodes", 4, "simulated nodes for cd/dd/pmihp")
		cluster      = fs.String("cluster", "", "comma-separated pmihp-node addresses: mine on a real multi-process cluster")
		spawn        = fs.Int("spawn", 0, "spawn N local pmihp-node worker processes and mine on them")
		poolListen   = fs.String("pool-listen", "", "scheduler mode: boot a worker pool on this address (pmihp-node workers register with -pool) and mine -sessions concurrent sessions through it")
		poolWait     = fs.Int("pool-wait", 0, "scheduler mode: wait for this many workers to join the pool before submitting sessions (0 = don't wait)")
		sessions     = fs.Int("sessions", 1, "scheduler mode: concurrent sessions to submit; each is verified byte-identical to a single-process reference")
		growTo       = fs.Int("grow", 0, "scheduler mode: elastically scale each session from -nodes up to this many logical nodes at the first checkpoint barrier (0 = no mid-run resize)")
		nodeBin      = fs.String("node-bin", "pmihp-node", "pmihp-node binary for -spawn")
		heartbeat    = fs.Duration("heartbeat", 0, "cluster heartbeat interval (0 = 500ms); timeout is 6x the interval")
		failPolicy   = fs.String("failure-policy", "abort", "on worker death: abort | reassign")
		ckptDir      = fs.String("checkpoint-dir", "", "persist per-pass session checkpoints into this directory")
		top          = fs.Int("top", 15, "frequent itemsets to print")
		nRules       = fs.Int("rules", 10, "association rules to print (0 to skip)")
		minConf      = fs.Float64("minconf", 0.75, "minimum rule confidence")
		rulesOut     = fs.String("rules-out", "", "export the full rule set (at -minconf) as JSON to this file, for pmihp-serve")
		stream       = fs.Bool("stream", false, "replay the corpus as a live day stream through the incremental windowed miner")
		streamWindow = fs.Int("stream-window", 3, "sliding window width in days for -stream (0 = unbounded)")
		streamBatch  = fs.Int("stream-batch-days", 1, "days ingested per -stream step")
		streamDecay  = fs.Float64("stream-decay", 0, "exponential day-decay weight in (0, 1] for -stream (0 = off)")
		streamVerify = fs.Int("stream-verify", 2, "per-step equivalence gate for -stream: re-mine each window from scratch on this many nodes and require byte-identical results (0 = off)")
		streamServe  = fs.String("stream-serve", "", "POST each -stream generation's rules to this pmihp-serve base URL's /admin/swap")
		streamCkpt   = fs.String("stream-checkpoint", "", "persist the -stream miner's state to this PMCK file after every step")
		streamCrash  = fs.Int("stream-crash-step", 0, "simulate a crash after this -stream step and resume from -stream-checkpoint (0 = never)")
		streamJSON   = fs.String("stream-json", "", "write the -stream replay report as JSON to this file (\"-\" = stdout)")
		metricsAddr  = fs.String("metrics-addr", "", "serve live metrics on this address (/metrics, /snapshot, /debug/pprof)")
		traceJSON    = fs.String("trace-json", "", "write per-pass/span/poll events as JSON lines to this file")
		linger       = fs.Duration("metrics-linger", 0, "keep the -metrics-addr endpoint up this long after mining finishes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cluster != "" && *spawn > 0 {
		return fmt.Errorf("-cluster and -spawn are mutually exclusive")
	}
	if *poolListen != "" && (*cluster != "" || *spawn > 0) {
		return fmt.Errorf("-pool-listen is mutually exclusive with -cluster and -spawn")
	}

	var docs []text.Document
	label := ""
	switch {
	case *inFile != "":
		var err error
		docs, err = text.LoadDocuments(*inFile)
		if err != nil {
			return fmt.Errorf("loading %s: %w", *inFile, err)
		}
		label = *inFile
	case *trecFile != "":
		var err error
		docs, err = trec.ParseFile(*trecFile, nil)
		if err != nil {
			return fmt.Errorf("loading %s: %w", *trecFile, err)
		}
		label = *trecFile
	default:
		sc, err := corpus.ParseScale(*scale)
		if err != nil {
			return err
		}
		var cfg corpus.Config
		switch *corpusID {
		case "a":
			cfg = corpus.CorpusA(sc)
		case "b":
			cfg = corpus.CorpusB(sc)
		case "c":
			cfg = corpus.CorpusC(sc)
		case "d", "dense":
			cfg = corpus.CorpusDense(sc)
		case "s", "skewed":
			cfg = corpus.CorpusSkewed(sc)
		default:
			return fmt.Errorf("unknown corpus %q (want a, b, c, dense, or skewed)", *corpusID)
		}
		docs, err = corpus.Generate(cfg)
		if err != nil {
			return err
		}
		label = fmt.Sprintf("%s (%s)", cfg.Name, sc)
	}
	if len(docs) == 0 {
		return fmt.Errorf("corpus %s contains no documents", label)
	}

	if *stream {
		return runStream(out, docs, label, streamFlags{
			window: *streamWindow, batchDays: *streamBatch, decay: *streamDecay,
			verify: *streamVerify, serveURL: *streamServe, checkpoint: *streamCkpt,
			crashStep: *streamCrash, jsonOut: *streamJSON,
			opts:    mining.Options{MinSupFrac: *minsup, MinSupCount: *minsupCount, MaxK: *maxK},
			minConf: *minConf,
		})
	}

	db, vocab := text.ToDB(docs, nil)
	st := db.ComputeStats()
	fmt.Fprintf(out, "corpus %s: %d docs, %d unique words, mean %.0f words/doc\n",
		label, st.Docs, st.UniqueItems, st.MeanLen)

	part, err := mining.ParsePartitioner(*partitioner)
	if err != nil {
		return err
	}
	opts := mining.Options{MinSupFrac: *minsup, MinSupCount: *minsupCount, MaxK: *maxK,
		DenseThreshold: resolveDenseThreshold(*denseTh), Partitioner: part}

	// Observability is opt-in and out-of-band: the recorder taps pass,
	// span, and poll events without influencing the mining itself.
	var rec *obs.Recorder
	var traceFile *os.File
	if *metricsAddr != "" || *traceJSON != "" {
		var obsCfg obs.Config
		if *traceJSON != "" {
			f, ferr := os.Create(*traceJSON)
			if ferr != nil {
				return fmt.Errorf("creating trace file: %w", ferr)
			}
			traceFile = f
			obsCfg.Writer = f
		}
		rec = obs.New(obsCfg)
		if *metricsAddr != "" {
			bound, stop, serr := obs.Serve(*metricsAddr, rec)
			if serr != nil {
				return fmt.Errorf("metrics endpoint: %w", serr)
			}
			fmt.Fprintf(out, "metrics endpoint on http://%s/metrics\n", bound)
			defer func() {
				if *linger > 0 {
					fmt.Fprintf(out, "metrics endpoint lingering %v\n", *linger)
					time.Sleep(*linger)
				}
				stop()
			}()
		}
	}
	opts.Obs = rec

	var result *mining.Result
	switch {
	case *poolListen != "":
		policy, perr := distmine.ParseFailurePolicy(*failPolicy)
		if perr != nil {
			return perr
		}
		result, err = runSched(out, db, opts, schedFlags{
			listen:   *poolListen,
			wait:     *poolWait,
			sessions: *sessions,
			nodes:    *nodes,
			growTo:   *growTo,
			cluster: distmine.ClusterConfig{
				FailurePolicy:      policy,
				HeartbeatInterval:  *heartbeat,
				CheckpointDir:      *ckptDir,
				StragglerLagPasses: *stragglerLag,
				Logf:               log.New(os.Stderr, "", 0).Printf,
				Obs:                rec,
			},
		})
	case *cluster != "" || *spawn > 0:
		policy, perr := distmine.ParseFailurePolicy(*failPolicy)
		if perr != nil {
			return perr
		}
		cfg := distmine.ClusterConfig{
			FailurePolicy:      policy,
			HeartbeatInterval:  *heartbeat,
			CheckpointDir:      *ckptDir,
			StragglerLagPasses: *stragglerLag,
			Logf:               log.New(os.Stderr, "", 0).Printf,
			Obs:                rec,
		}
		addrs := strings.Split(*cluster, ",")
		if *spawn > 0 {
			spawner := distmine.NewSpawner(*nodeBin, os.Stderr)
			defer spawner.Stop()
			addrs, err = spawner.SpawnN(*spawn)
			if err != nil {
				return err
			}
			if policy == distmine.FailurePolicyReassign {
				cfg.Respawn = spawner.Spawn
			}
			fmt.Fprintf(out, "spawned %d pmihp-node workers: %s\n", *spawn, strings.Join(addrs, ", "))
		}
		cfg.Addrs = addrs
		var res *distmine.Result
		res, err = distmine.MineCluster(db, cfg, opts)
		if res != nil {
			result = &mining.Result{Frequent: res.Frequent, Metrics: res.Metrics}
			fmt.Fprintf(out, "cluster of %d nodes: %d wire messages, %d bytes, %d retries\n",
				len(addrs), res.Metrics.WireMessagesSent, res.Metrics.WireBytesSent, res.Metrics.WireRetries)
		}
	default:
		switch *algo {
		case "apriori":
			result, err = apriori.Mine(db, opts)
		case "dhp":
			result, err = dhp.Mine(db, opts)
		case "fpgrowth":
			result, err = fpgrowth.Mine(db, opts)
		case "mihp":
			result, err = core.MineMIHP(db, opts)
		case "ihp":
			result, err = core.MineIHP(db, opts)
		case "cd":
			var pr *core.ParallelResult
			pr, err = countdist.Mine(db, countdist.Config{Nodes: *nodes}, opts)
			if pr != nil {
				result = pr.Result
				printSchedule(out, *nodes, pr)
			}
		case "dd":
			var pr *core.ParallelResult
			pr, err = datadist.Mine(db, datadist.Config{Nodes: *nodes}, opts)
			if pr != nil {
				result = pr.Result
				printSchedule(out, *nodes, pr)
			}
		case "pmihp":
			var pr *core.ParallelResult
			pr, err = core.MinePMIHP(db, core.PMIHPConfig{Nodes: *nodes}, opts)
			if pr != nil {
				result = pr.Result
				printSchedule(out, *nodes, pr)
			}
		default:
			return fmt.Errorf("unknown algorithm %q", *algo)
		}
		if err != nil {
			err = fmt.Errorf("%s: %w", *algo, err)
		}
	}
	if err != nil {
		return err
	}
	if traceFile != nil {
		if werr := rec.Err(); werr != nil {
			fmt.Fprintf(os.Stderr, "pmihp-mine: trace truncated: %v\n", werr)
		}
		if cerr := traceFile.Close(); cerr != nil {
			return fmt.Errorf("closing trace file: %w", cerr)
		}
		fmt.Fprintf(out, "wrote observability trace to %s\n", *traceJSON)
	}

	fmt.Fprintf(out, "%s\n", result.Metrics.String())
	byK := result.CountByK()
	fmt.Fprintf(out, "frequent itemsets found: %d total", len(result.Frequent))
	for k := 1; ; k++ {
		n, ok := byK[k]
		if !ok {
			break
		}
		fmt.Fprintf(out, ", %d of size %d", n, k)
	}
	fmt.Fprintln(out)

	fmt.Fprintf(out, "\ntop %d frequent itemsets (size >= 2):\n", *top)
	printed := 0
	for _, c := range result.Frequent {
		if len(c.Set) < 2 {
			continue
		}
		fmt.Fprintf(out, "  %5d  %v\n", c.Count, vocab.Words(c.Set))
		printed++
		if printed >= *top {
			break
		}
	}

	if *nRules > 0 || *rulesOut != "" {
		rs := rules.Generate(result.Frequent, db.Len(), *minConf)
		if *nRules > 0 {
			fmt.Fprintf(out, "\n%d rules at minconf %.2f; top %d:\n", len(rs), *minConf, *nRules)
			for i, r := range rs {
				if i >= *nRules {
					break
				}
				fmt.Fprintf(out, "  %s\n", r.Render(vocab.Word))
			}
		}
		if *rulesOut != "" {
			f, ferr := os.Create(*rulesOut)
			if ferr != nil {
				return fmt.Errorf("creating rules export: %w", ferr)
			}
			werr := rules.WriteJSON(f, rs, vocab.Word)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("writing rules export: %w", werr)
			}
			fmt.Fprintf(out, "wrote %d rules (minconf %.2f) to %s\n", len(rs), *minConf, *rulesOut)
		}
	}
	return nil
}

// Command pmihp-mine runs any of the implemented miners over a synthetic
// corpus preset and prints frequent itemsets, association rules, and run
// metrics.
//
// Usage:
//
//	pmihp-mine -algo pmihp -corpus b -scale small -minsup 0.02 -nodes 8 -rules 20
//	pmihp-mine -algo mihp -corpus a -minsup-count 5 -top 25
//	pmihp-mine -in docs.txt -algo pmihp -minsup-count 2       # line-format file
//	pmihp-mine -trec wsj_0401 -algo mihp -minsup 0.02         # TREC markup
//
// Algorithms: apriori, dhp, fpgrowth, mihp, ihp, cd, pmihp.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/datadist"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/trec"
)

func main() {
	var (
		algo        = flag.String("algo", "pmihp", "apriori | dhp | fpgrowth | mihp | ihp | cd | dd | pmihp")
		corpusID    = flag.String("corpus", "b", "corpus preset: a, b, or c")
		scale       = flag.String("scale", "small", "corpus scale: small, harness, paper")
		inFile      = flag.String("in", "", "mine a line-format documents file instead of a preset")
		trecFile    = flag.String("trec", "", "mine a TREC-markup file instead of a preset")
		minsup      = flag.Float64("minsup", 0.02, "minimum support fraction")
		minsupCount = flag.Int("minsup-count", 0, "absolute minimum support count (overrides -minsup)")
		maxK        = flag.Int("maxk", 0, "largest itemset size to mine (0 = unbounded)")
		nodes       = flag.Int("nodes", 4, "simulated nodes for cd/pmihp")
		top         = flag.Int("top", 15, "frequent itemsets to print")
		nRules      = flag.Int("rules", 10, "association rules to print (0 to skip)")
		minConf     = flag.Float64("minconf", 0.75, "minimum rule confidence")
	)
	flag.Parse()

	var docs []text.Document
	label := ""
	switch {
	case *inFile != "":
		var err error
		docs, err = text.LoadDocuments(*inFile)
		if err != nil {
			fail(err)
		}
		label = *inFile
	case *trecFile != "":
		var err error
		docs, err = trec.ParseFile(*trecFile, nil)
		if err != nil {
			fail(err)
		}
		label = *trecFile
	default:
		sc, err := corpus.ParseScale(*scale)
		if err != nil {
			fail(err)
		}
		var cfg corpus.Config
		switch *corpusID {
		case "a":
			cfg = corpus.CorpusA(sc)
		case "b":
			cfg = corpus.CorpusB(sc)
		case "c":
			cfg = corpus.CorpusC(sc)
		default:
			fail(fmt.Errorf("unknown corpus %q (want a, b, or c)", *corpusID))
		}
		docs, err = corpus.Generate(cfg)
		if err != nil {
			fail(err)
		}
		label = fmt.Sprintf("%s (%s)", cfg.Name, sc)
	}

	db, vocab := text.ToDB(docs, nil)
	st := db.ComputeStats()
	fmt.Printf("corpus %s: %d docs, %d unique words, mean %.0f words/doc\n",
		label, st.Docs, st.UniqueItems, st.MeanLen)

	opts := mining.Options{MinSupFrac: *minsup, MinSupCount: *minsupCount, MaxK: *maxK}
	var result *mining.Result
	var err error
	switch *algo {
	case "apriori":
		result, err = apriori.Mine(db, opts)
	case "dhp":
		result, err = dhp.Mine(db, opts)
	case "fpgrowth":
		result, err = fpgrowth.Mine(db, opts)
	case "mihp":
		result, err = core.MineMIHP(db, opts)
	case "ihp":
		result, err = core.MineIHP(db, opts)
	case "cd":
		var pr *core.ParallelResult
		pr, err = countdist.Mine(db, countdist.Config{Nodes: *nodes}, opts)
		if pr != nil {
			result = pr.Result
			fmt.Printf("simulated total time on %d nodes: %.1fs\n", *nodes, pr.TotalSeconds)
		}
	case "dd":
		var pr *core.ParallelResult
		pr, err = datadist.Mine(db, datadist.Config{Nodes: *nodes}, opts)
		if pr != nil {
			result = pr.Result
			fmt.Printf("simulated total time on %d nodes: %.1fs\n", *nodes, pr.TotalSeconds)
		}
	case "pmihp":
		var pr *core.ParallelResult
		pr, err = core.MinePMIHP(db, core.PMIHPConfig{Nodes: *nodes}, opts)
		if pr != nil {
			result = pr.Result
			fmt.Printf("simulated total time on %d nodes: %.1fs\n", *nodes, pr.TotalSeconds)
		}
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fail(fmt.Errorf("%s: %w", *algo, err))
	}

	fmt.Printf("%s\n", result.Metrics.String())
	byK := result.CountByK()
	fmt.Printf("frequent itemsets found: %d total", len(result.Frequent))
	for k := 1; ; k++ {
		n, ok := byK[k]
		if !ok {
			break
		}
		fmt.Printf(", %d of size %d", n, k)
	}
	fmt.Println()

	fmt.Printf("\ntop %d frequent itemsets (size >= 2):\n", *top)
	printed := 0
	for _, c := range result.Frequent {
		if len(c.Set) < 2 {
			continue
		}
		fmt.Printf("  %5d  %v\n", c.Count, vocab.Words(c.Set))
		printed++
		if printed >= *top {
			break
		}
	}

	if *nRules > 0 {
		rs := rules.Generate(result.Frequent, db.Len(), *minConf)
		fmt.Printf("\n%d rules at minconf %.2f; top %d:\n", len(rs), *minConf, *nRules)
		for i, r := range rs {
			if i >= *nRules {
				break
			}
			fmt.Printf("  %s\n", r.Render(vocab.Word))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pmihp-mine:", err)
	os.Exit(1)
}

// Command pmihp-trace validates and replays an observability trace
// written by pmihp-mine/pmihp-node's -trace-json flag. Every line is
// checked against the event schema; a malformed trace fails with a
// line-attributed error and a non-zero exit, which is what CI's smoke
// job relies on. On success it prints the replayed totals — the same
// Summary the /snapshot endpoint serves.
//
// Usage:
//
//	pmihp-trace trace.jsonl          # human-readable totals
//	pmihp-trace -json trace.jsonl    # totals as one JSON object
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"pmihp/internal/obs"
)

func main() {
	jsonOut := false
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: pmihp-trace [-json] trace.jsonl")
		os.Exit(2)
	}
	events, err := obs.ReadTraceFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmihp-trace: %v\n", err)
		os.Exit(1)
	}
	sum := obs.Summarize(events)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "pmihp-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%d events, %d passes\n", len(events), sum.Passes)
	ks := make([]int, 0, len(sum.CandidatesByK))
	for k := range sum.CandidatesByK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("  k=%d: %d candidates mined, %d poll-served\n", k, sum.CandidatesByK[k], sum.PolledByK[k])
	}
	fmt.Printf("pruned: %d THT, %d subset; trimmed %d items, pruned %d transactions\n",
		sum.PrunedTHT, sum.PrunedSubset, sum.TrimmedItems, sum.PrunedTx)
	fmt.Printf("scan %.3fs, exchange %.3fs, %d wire bytes\n", sum.ScanSeconds, sum.ExchangeSeconds, sum.WireBytes)
	names := make([]string, 0, len(sum.SpanSeconds))
	for name := range sum.SpanSeconds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  span %-22s %.3fs\n", name, sum.SpanSeconds[name])
	}
}

// Command corpusgen generates a synthetic news corpus preset and reports
// its statistics, optionally dumping the documents as one-line word lists
// (TID, day, then the distinct content words) for external tools.
//
// Usage:
//
//	corpusgen -corpus b -scale harness
//	corpusgen -corpus a -scale small -dump | head
//	corpusgen -docs 500 -vocab 5000 -days 10 -skew 0.4 -seed 7
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmihp/internal/corpus"
	"pmihp/internal/text"
)

func main() {
	var (
		corpusID = flag.String("corpus", "b", "corpus preset: a, b, c, dense, or skewed (ignored when -docs > 0)")
		scale    = flag.String("scale", "small", "corpus scale: small, harness, paper")
		dump     = flag.Bool("dump", false, "write documents to stdout (tid day word word ...)")
		out      = flag.String("out", "", "write documents to a file in the line format (day word word ...)")

		docs   = flag.Int("docs", 0, "custom corpus: number of documents (enables custom mode)")
		vocab  = flag.Int("vocab", 5000, "custom corpus: vocabulary size")
		days   = flag.Int("days", 10, "custom corpus: publication days")
		docLen = flag.Float64("doclen", 80, "custom corpus: mean distinct words per document")
		skew   = flag.Float64("skew", 0.3, "custom corpus: chronological topic skew in [0,1]")
		seed   = flag.Int64("seed", 1, "custom corpus: PRNG seed")
	)
	flag.Parse()

	var cfg corpus.Config
	if *docs > 0 {
		cfg = corpus.Config{
			Name: "custom", Docs: *docs, Days: *days, VocabSize: *vocab,
			DocLenMean: *docLen, DocLenSigma: 0.5, ZipfS: 1.1,
			TopicsPerDay: 8, TopicWords: 50, Skew: *skew, Seed: *seed,
		}
	} else {
		sc, err := corpus.ParseScale(*scale)
		if err != nil {
			fail(err)
		}
		switch *corpusID {
		case "a":
			cfg = corpus.CorpusA(sc)
		case "b":
			cfg = corpus.CorpusB(sc)
		case "c":
			cfg = corpus.CorpusC(sc)
		case "d", "dense":
			cfg = corpus.CorpusDense(sc)
		case "s", "skewed":
			cfg = corpus.CorpusSkewed(sc)
		default:
			fail(fmt.Errorf("unknown corpus %q", *corpusID))
		}
	}

	generated, err := corpus.Generate(cfg)
	if err != nil {
		fail(err)
	}
	db, _ := text.ToDB(generated, nil)
	st := db.ComputeStats()
	fmt.Fprintf(os.Stderr, "corpus %s: %d docs over %d days, %d unique words, %d word occurrences\n",
		cfg.Name, st.Docs, st.Days, st.UniqueItems, st.TotalItems)
	fmt.Fprintf(os.Stderr, "mean %.1f distinct words/doc, median %.0f docs/day\n",
		st.MeanLen, st.MedianDocsDay)
	fmt.Fprintf(os.Stderr, "density: max df %d over TID span %d (%.3f); %d words dense at the default posting threshold\n",
		st.MaxDF, st.TIDSpan, st.MaxDensity, st.DenseItems)

	if *out != "" {
		if err := text.SaveDocuments(*out, generated); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for i, d := range generated {
			fmt.Fprintf(w, "%d %d %s\n", i, d.Day, strings.Join(d.Words, " "))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}

// Command pmihp-bench regenerates the paper's tables and figures (and the
// ablations in DESIGN.md) from the synthetic corpora.
//
// Usage:
//
//	pmihp-bench -list
//	pmihp-bench -exp e1 [-scale small|harness|paper] [-v]
//	pmihp-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmihp/internal/corpus"
	"pmihp/internal/experiments"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = flag.String("scale", "harness", "corpus scale: small, harness, or paper")
		list    = flag.Bool("list", false, "list experiments and exit")
		verbose = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "pmihp-bench: -exp required (or -list); e.g. -exp e1")
		os.Exit(2)
	}

	sc, err := corpus.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		os.Exit(2)
	}
	params := experiments.Params{Scale: sc}
	if *verbose {
		params.Log = os.Stderr
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		out, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmihp-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s\n\n%s\n(real time %.1fs)\n\n", e.ID, e.Title, out, time.Since(start).Seconds())
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmihp-bench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}

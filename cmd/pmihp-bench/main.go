// Command pmihp-bench regenerates the paper's tables and figures (and the
// ablations in DESIGN.md) from the synthetic corpora.
//
// Usage:
//
//	pmihp-bench -list
//	pmihp-bench -exp e1 [-scale small|harness|paper] [-v]
//	pmihp-bench -exp all
//	pmihp-bench -benchjson BENCH_dev.json [-rev dev] [-baseline BENCH_baseline.json]
//	pmihp-bench -crossover
//	pmihp-bench -exp e3 -cpuprofile cpu.prof -memprofile mem.prof
//	pmihp-bench -serve-load http://127.0.0.1:8397 -serve-report load.json
//
// The -benchjson mode runs the E1–E9 benchmark workloads under the standard
// Go benchmark driver and writes ns/op, allocs/op, bytes held, and simulated
// seconds per figure as JSON. With -baseline it exits nonzero when any
// workload's wall-clock or held memory regresses by more than 20% or any
// simulated time drifts; baselines written before the current report schema
// are compared on wall-clock only, with a notice.
//
// The -serve-load mode drives a running pmihp-serve daemon with concurrent
// clients issuing Zipf-distributed /expand queries, a cold-cache phase and
// then a warm-cache replay of the same sequence, and prints QPS, latency
// quantiles, and error counts per phase; -serve-report writes the full JSON
// report. It exits nonzero when any request errors out.
//
// The -crossover mode sweeps posting-list density and times one pair
// intersection under the all-compressed and all-bitmap layouts, reporting
// the density where the bitmap kernel starts winning on this machine — a
// tuning report for the -dense-threshold flag, not a gated check.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole run
// (any mode), for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pmihp/internal/benchharness"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/experiments"
)

// main delegates to realMain so deferred profile writers run before exit.
func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		expID      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale      = flag.String("scale", "harness", "corpus scale: small, harness, or paper")
		list       = flag.Bool("list", false, "list experiments and exit")
		verbose    = flag.Bool("v", false, "log progress to stderr")
		benchJSON  = flag.String("benchjson", "", "run the benchmark harness and write results to this JSON file")
		rev        = flag.String("rev", "dev", "revision label recorded in -benchjson output")
		baseline   = flag.String("baseline", "", "baseline JSON to compare -benchjson results against")
		crossover  = flag.Bool("crossover", false, "sweep posting density and report the block/bitmap kernel crossover")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")

		serveLoad   = flag.String("serve-load", "", "load-test the pmihp-serve daemon at this base URL")
		serveClient = flag.Int("serve-clients", 8, "concurrent clients for -serve-load")
		serveReqs   = flag.Int("serve-requests", 2000, "requests per phase for -serve-load")
		serveZipfS  = flag.Float64("serve-zipf-s", 1.2, "Zipf s parameter for -serve-load head selection (> 1)")
		serveLimit  = flag.Int("serve-limit", 5, "per-word term limit sent with -serve-load queries")
		serveSeed   = flag.Int64("serve-seed", 1, "deterministic request-sequence seed for -serve-load")
		serveReport = flag.String("serve-report", "", "write the -serve-load JSON report to this file")

		schedCompare = flag.Bool("sched-compare", false, "run the static-vs-elastic scheduler comparison on the skewed corpus and print the JSON report")
		schedReport  = flag.String("sched-report", "", "also write the -sched-compare JSON report to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
			}
		}()
	}

	if *serveLoad != "" {
		return runServeLoad(benchharness.LoadConfig{
			BaseURL:  strings.TrimRight(*serveLoad, "/"),
			Clients:  *serveClient,
			Requests: *serveReqs,
			Limit:    *serveLimit,
			ZipfS:    *serveZipfS,
			Seed:     *serveSeed,
		}, *serveReport)
	}
	if *crossover {
		core.KernelCrossover(os.Stdout, 0)
		return 0
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	sc, err := corpus.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 2
	}

	if *schedCompare {
		return runSchedCompare(sc, *schedReport, *verbose)
	}
	if *benchJSON != "" {
		return runBenchHarness(*benchJSON, *rev, *baseline, sc, *verbose)
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "pmihp-bench: -exp required (or -list, -benchjson); e.g. -exp e1")
		return 2
	}
	params := experiments.Params{Scale: sc}
	if *verbose {
		params.Log = os.Stderr
	}

	run := func(e experiments.Experiment) bool {
		start := time.Now()
		out, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmihp-bench: %s: %v\n", e.ID, err)
			return false
		}
		fmt.Printf("== %s: %s\n\n%s\n(real time %.1fs)\n\n", e.ID, e.Title, out, time.Since(start).Seconds())
		return true
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			if !run(e) {
				return 1
			}
		}
		return 0
	}
	e, ok := experiments.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmihp-bench: unknown experiment %q (use -list)\n", *expID)
		return 2
	}
	if !run(e) {
		return 1
	}
	return 0
}

// runSchedCompare runs the static-vs-elastic scheduler experiment on the
// skewed corpus, prints the JSON report, and fails if either arm's
// itemsets differ from the single-process reference or the elastic arm
// does not improve the imbalance ratio.
func runSchedCompare(sc corpus.Scale, reportPath string, verbose bool) int {
	var log io.Writer
	if verbose {
		log = os.Stderr
	}
	rep, err := benchharness.RunSchedCompare(sc, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 1
	}
	if err := rep.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 1
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pmihp-bench:", werr)
			return 1
		}
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "pmihp-bench: sched-compare itemsets differ from the reference")
		return 1
	}
	if rep.Elastic.Resizes == 0 {
		fmt.Fprintln(os.Stderr, "pmihp-bench: sched-compare elastic arm never resized")
		return 1
	}
	if rep.Elastic.Imbalance >= rep.Static.Imbalance {
		fmt.Fprintf(os.Stderr, "pmihp-bench: sched-compare elastic imbalance %.3f did not beat static %.3f\n",
			rep.Elastic.Imbalance, rep.Static.Imbalance)
		return 1
	}
	if rep.Elastic.MaxBusySeconds >= rep.Static.MaxBusySeconds {
		fmt.Fprintf(os.Stderr, "pmihp-bench: sched-compare elastic modeled makespan %.3fs did not beat static %.3fs\n",
			rep.Elastic.MaxBusySeconds, rep.Static.MaxBusySeconds)
		return 1
	}
	return 0
}

// runServeLoad drives the daemon through the cold/warm load phases,
// optionally writes the JSON report, and fails on any request error.
func runServeLoad(cfg benchharness.LoadConfig, reportPath string) int {
	rep, err := benchharness.RunLoad(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 1
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pmihp-bench:", werr)
			return 1
		}
		fmt.Printf("wrote %s\n", reportPath)
	}
	if rep.Cold.Errors+rep.Warm.Errors > 0 {
		fmt.Fprintf(os.Stderr, "pmihp-bench: serve-load saw %d errors\n", rep.Cold.Errors+rep.Warm.Errors)
		return 1
	}
	return 0
}

// runBenchHarness measures the E1–E9 workloads, writes the JSON report, and
// (when a baseline is given) fails on wall-clock or held-memory regressions
// beyond 20% or any simulated-time drift.
func runBenchHarness(path, rev, baselinePath string, sc corpus.Scale, verbose bool) int {
	var log io.Writer
	if verbose {
		log = os.Stderr
	}
	rep, err := benchharness.Run(rev, sc, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 1
	}
	if err := rep.WriteJSON(path); err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d workloads, rev %s, scale %s)\n", path, len(rep.Workloads), rep.Rev, rep.Scale)
	if baselinePath == "" {
		return 0
	}
	base, err := benchharness.ReadJSON(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		return 1
	}
	if missing := benchharness.MissingFromBase(base, rep); len(missing) > 0 {
		fmt.Printf("note: baseline %s predates %d workload(s) — %s — which therefore ran ungated; regenerate the baseline to gate them\n",
			baselinePath, len(missing), strings.Join(missing, ", "))
	}
	if base.SchemaVersion < benchharness.SchemaVersion {
		fmt.Printf("note: baseline %s has schema v%d (current v%d); skipping simulated-seconds drift and bytes_held checks, comparing wall-clock only — regenerate the baseline to restore them\n",
			baselinePath, base.SchemaVersion, benchharness.SchemaVersion)
	}
	if bad := benchharness.Compare(base, rep, 0.20); len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "pmihp-bench: regressions vs", baselinePath)
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		return 1
	}
	fmt.Printf("no regressions vs %s\n", baselinePath)
	return 0
}

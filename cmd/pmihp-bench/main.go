// Command pmihp-bench regenerates the paper's tables and figures (and the
// ablations in DESIGN.md) from the synthetic corpora.
//
// Usage:
//
//	pmihp-bench -list
//	pmihp-bench -exp e1 [-scale small|harness|paper] [-v]
//	pmihp-bench -exp all
//	pmihp-bench -benchjson BENCH_dev.json [-rev dev] [-baseline BENCH_baseline.json]
//
// The -benchjson mode runs the E1–E9 benchmark workloads under the standard
// Go benchmark driver and writes ns/op, allocs/op, and simulated seconds per
// figure as JSON. With -baseline it exits nonzero when any workload's
// wall-clock regresses by more than 20% or any simulated time drifts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pmihp/internal/benchharness"
	"pmihp/internal/corpus"
	"pmihp/internal/experiments"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale     = flag.String("scale", "harness", "corpus scale: small, harness, or paper")
		list      = flag.Bool("list", false, "list experiments and exit")
		verbose   = flag.Bool("v", false, "log progress to stderr")
		benchJSON = flag.String("benchjson", "", "run the benchmark harness and write results to this JSON file")
		rev       = flag.String("rev", "dev", "revision label recorded in -benchjson output")
		baseline  = flag.String("baseline", "", "baseline JSON to compare -benchjson results against")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := corpus.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		os.Exit(2)
	}

	if *benchJSON != "" {
		runBenchHarness(*benchJSON, *rev, *baseline, sc, *verbose)
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "pmihp-bench: -exp required (or -list, -benchjson); e.g. -exp e1")
		os.Exit(2)
	}
	params := experiments.Params{Scale: sc}
	if *verbose {
		params.Log = os.Stderr
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		out, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmihp-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s\n\n%s\n(real time %.1fs)\n\n", e.ID, e.Title, out, time.Since(start).Seconds())
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmihp-bench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}

// runBenchHarness measures the E1–E9 workloads, writes the JSON report, and
// (when a baseline is given) fails on wall-clock regressions beyond 20% or
// any simulated-time drift.
func runBenchHarness(path, rev, baselinePath string, sc corpus.Scale, verbose bool) {
	var log io.Writer
	if verbose {
		log = os.Stderr
	}
	rep, err := benchharness.Run(rev, sc, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(path); err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d workloads, rev %s, scale %s)\n", path, len(rep.Workloads), rep.Rev, rep.Scale)
	if baselinePath == "" {
		return
	}
	base, err := benchharness.ReadJSON(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmihp-bench:", err)
		os.Exit(1)
	}
	if bad := benchharness.Compare(base, rep, 0.20); len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "pmihp-bench: regressions vs", baselinePath)
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		os.Exit(1)
	}
	fmt.Printf("no regressions vs %s\n", baselinePath)
}

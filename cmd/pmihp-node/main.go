// Command pmihp-node is a PMIHP cluster worker: a daemon that serves
// mining sessions driven by a pmihp-mine coordinator. It announces its
// bound address on stdout ("pmihp-node listening on HOST:PORT") so
// spawners can start it on an ephemeral port, then serves until killed.
//
// Usage:
//
//	pmihp-node [-listen 127.0.0.1:0] [-metrics-addr 127.0.0.1:9090] [-trace-json node.jsonl] [-v]
//	pmihp-node -pool 127.0.0.1:9100 -capacity 67108864   # register in a scheduler pool
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"pmihp/internal/distmine"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/sched"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
	pool := flag.String("pool", "", "register with the scheduler pool at this address and serve sessions leased through it")
	capacity := flag.Int64("capacity", 0, "session bytes admission control may reserve against this worker when pooled (0 = unlimited)")
	heartbeat := flag.Duration("heartbeat", 0, "control-plane heartbeat interval when a session's Init does not set one (0 = 500ms)")
	denseTh := flag.Float64("dense-threshold", -1, "override the coordinator's posting density cutoff on this node (0 = all bitmaps, >1 or inf = all compressed, -1 = use the session's); layout only — results and simulated charges are identical either way")
	partitioner := flag.String("partitioner", "", "only serve sessions partitioned by this policy (count | work); partitions arrive pre-cut from the coordinator, so this is a guard, not an override (empty = serve any)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address (/metrics, /snapshot, /debug/pprof)")
	traceJSON := flag.String("trace-json", "", "write hosted nodes' pass/span/poll events as JSON lines to this file")
	verbose := flag.Bool("v", false, "log session lifecycle to stderr")
	flag.Parse()

	opt := distmine.DaemonOptions{HeartbeatInterval: *heartbeat}
	if *partitioner != "" {
		p, err := mining.ParsePartitioner(*partitioner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmihp-node: %v\n", err)
			os.Exit(1)
		}
		opt.RequirePartitioner = &p
	}
	if *denseTh >= 0 {
		// DenseThresholdOverride applies when positive; the flag's explicit
		// 0 ("every list a bitmap") maps to the positive all-bitmap sentinel.
		opt.DenseThresholdOverride = *denseTh
		if *denseTh == 0 {
			opt.DenseThresholdOverride = mining.DenseThresholdAll
		}
	}
	if *verbose {
		logger := log.New(os.Stderr, "", log.LstdFlags)
		opt.Logf = logger.Printf
	}
	if *metricsAddr != "" || *traceJSON != "" {
		var cfg obs.Config
		if *traceJSON != "" {
			// The daemon serves sessions until killed, so the trace file is
			// written line-by-line and never needs a final flush.
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmihp-node: creating trace file: %v\n", err)
				os.Exit(1)
			}
			cfg.Writer = f
		}
		opt.Obs = obs.New(cfg)
		if *metricsAddr != "" {
			bound, _, err := obs.Serve(*metricsAddr, opt.Obs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmihp-node: metrics endpoint: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("pmihp-node metrics on http://%s/metrics\n", bound)
		}
	}
	d := distmine.NewDaemon(opt)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmihp-node: %v\n", err)
		os.Exit(1)
	}
	announce := log.New(os.Stdout, "", 0)
	announce.Printf("pmihp-node listening on %s", ln.Addr().String())
	if *pool != "" {
		// The membership heartbeats and rejoins in the background for the
		// daemon's whole lifetime; it dies with the process, so the pool's
		// heartbeat timeout is what deregisters a killed worker. The
		// initial join retries for a while so workers and the pool can be
		// started in any order.
		join := sched.JoinOptions{CapacityBytes: *capacity}
		if *verbose {
			join.Logf = log.New(os.Stderr, "", log.LstdFlags).Printf
		}
		var jerr error
		for attempt := 0; attempt < 40; attempt++ {
			if _, jerr = sched.Join(*pool, ln.Addr().String(), join); jerr == nil {
				break
			}
			time.Sleep(500 * time.Millisecond)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "pmihp-node: %v\n", jerr)
			os.Exit(1)
		}
		announce.Printf("pmihp-node joined pool %s", *pool)
	}
	if err := d.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "pmihp-node: %v\n", err)
		os.Exit(1)
	}
}

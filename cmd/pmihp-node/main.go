// Command pmihp-node is a PMIHP cluster worker: a daemon that serves
// mining sessions driven by a pmihp-mine coordinator. It announces its
// bound address on stdout ("pmihp-node listening on HOST:PORT") so
// spawners can start it on an ephemeral port, then serves until killed.
//
// Usage:
//
//	pmihp-node [-listen 127.0.0.1:0] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pmihp/internal/distmine"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
	heartbeat := flag.Duration("heartbeat", 0, "control-plane heartbeat interval when a session's Init does not set one (0 = 500ms)")
	verbose := flag.Bool("v", false, "log session lifecycle to stderr")
	flag.Parse()

	opt := distmine.DaemonOptions{HeartbeatInterval: *heartbeat}
	if *verbose {
		logger := log.New(os.Stderr, "", log.LstdFlags)
		opt.Logf = logger.Printf
	}
	d := distmine.NewDaemon(opt)
	announce := log.New(os.Stdout, "", 0)
	if err := d.ListenAndServe(*listen, announce); err != nil {
		fmt.Fprintf(os.Stderr, "pmihp-node: %v\n", err)
		os.Exit(1)
	}
}

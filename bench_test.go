// Benchmarks regenerating the workload behind every figure of the paper's
// evaluation, at the Small corpus scale so single iterations stay fast.
// cmd/pmihp-bench runs the same experiments at harness or paper scale with
// full table output; these testing.B entry points make the per-figure
// workloads measurable with `go test -bench`.
package pmihp

import (
	"sync"
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

var (
	benchOnce sync.Once
	benchA    *txdb.DB
	benchB    *txdb.DB
	benchC    *txdb.DB
)

func benchDBs(b *testing.B) (dbA, dbB, dbC *txdb.DB) {
	b.Helper()
	benchOnce.Do(func() {
		docsA := corpus.MustGenerate(corpus.CorpusA(corpus.Small))
		benchA, _ = text.ToDB(docsA, nil)
		docsB := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
		benchB, _ = text.ToDB(docsB, nil)
		docsC := corpus.MustGenerate(corpus.CorpusC(corpus.Small))
		benchC, _ = text.ToDB(docsC, nil)
	})
	return benchA, benchB, benchC
}

// ---- Figure 4 (E1): sequential miners on Corpus A, low minimum support ----

func BenchmarkE1Fig4_Apriori(b *testing.B) {
	dbA, _, _ := benchDBs(b)
	opts := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apriori.Mine(dbA, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Fig4_DHP(b *testing.B) {
	dbA, _, _ := benchDBs(b)
	opts := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dhp.Mine(dbA, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Fig4_FPGrowth(b *testing.B) {
	dbA, _, _ := benchDBs(b)
	opts := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fpgrowth.Mine(dbA, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Fig4_MIHP(b *testing.B) {
	dbA, _, _ := benchDBs(b)
	opts := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MineMIHP(dbA, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 5 (E2): parallel miners on Corpus A, 8 nodes ----

func BenchmarkE2Fig5_CountDistribution(b *testing.B) {
	dbA, _, _ := benchDBs(b)
	opts := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := countdist.Mine(dbA, countdist.Config{Nodes: 8}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Fig5_PMIHP(b *testing.B) {
	dbA, _, _ := benchDBs(b)
	opts := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinePMIHP(dbA, core.PMIHPConfig{Nodes: 8}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 6/7/9/10 (E3/E4/E6/E7): PMIHP node scaling on Corpus B ----

func benchScaling(b *testing.B, nodes int) {
	_, dbB, _ := benchDBs(b)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.MinePMIHP(dbB, core.PMIHPConfig{Nodes: nodes}, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalSeconds, "sim-s")
		b.ReportMetric(r.AvgCandidates(2), "cand2/node")
	}
}

func BenchmarkE3Fig6_PMIHP1(b *testing.B) { benchScaling(b, 1) }
func BenchmarkE3Fig6_PMIHP2(b *testing.B) { benchScaling(b, 2) }
func BenchmarkE3Fig6_PMIHP4(b *testing.B) { benchScaling(b, 4) }
func BenchmarkE3Fig6_PMIHP8(b *testing.B) { benchScaling(b, 8) }

// ---- Figure 8 (E5): deferred global support counting ----

func BenchmarkE5Fig8_DeferredPolling(b *testing.B) {
	_, dbB, _ := benchDBs(b)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.MinePMIHP(dbB, core.PMIHPConfig{Nodes: 4, Mode: core.Deferred}, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GlobalCountSeconds, "globalcnt-s")
	}
}

// ---- Figure 11 (E8): candidate 3-itemsets, Apriori reference ----

func BenchmarkE8Fig11_AprioriC3(b *testing.B) {
	_, dbB, _ := benchDBs(b)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := apriori.Mine(dbB, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Metrics.CandidatesByK[3]), "cand3")
	}
}

// ---- §3 closing experiment (E9): 8-week corpus, 2-itemsets ----

func BenchmarkE9EightWeek_PMIHP1(b *testing.B) {
	_, _, dbC := benchDBs(b)
	opts := mining.Options{MinSupCount: 2, MaxK: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinePMIHP(dbC, core.PMIHPConfig{Nodes: 1}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9EightWeek_PMIHP8(b *testing.B) {
	_, _, dbC := benchDBs(b)
	opts := mining.Options{MinSupCount: 2, MaxK: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinePMIHP(dbC, core.PMIHPConfig{Nodes: 8}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Supporting micro-benchmarks for the hot substrates ----

func BenchmarkRuleGeneration(b *testing.B) {
	_, dbB, _ := benchDBs(b)
	res, err := core.MineMIHP(dbB, mining.Options{MinSupCount: 4, MaxK: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.Generate(res.Frequent, dbB.Len(), 0.8)
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := corpus.CorpusB(corpus.Small)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

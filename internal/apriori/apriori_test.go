package apriori

import (
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func smallDB(t testing.TB) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(corpus.CorpusB(corpus.Small))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

func TestMatchesBruteForce(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	cfg.Docs, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 60, 500, 40, 18
	docs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	for _, minsup := range []float64{0.10, 0.05} {
		opts := mining.Options{MinSupFrac: minsup}
		want := mining.BruteForce(db, opts)
		got, err := Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := mining.SameFrequentSets(want, got); !ok {
			t.Fatalf("minsup=%g: %s", minsup, diff)
		}
	}
}

func TestKnownTinyAnswer(t *testing.T) {
	db := txdb.New([]txdb.Transaction{
		{TID: 0, Items: itemset.New(1, 3, 4)},
		{TID: 1, Items: itemset.New(2, 3, 5)},
		{TID: 2, Items: itemset.New(1, 2, 3, 5)},
		{TID: 3, Items: itemset.New(2, 5)},
	}, 6)
	// The classic Agrawal & Srikant example: at minsup count 2, the only
	// frequent 3-itemset is {2, 3, 5}.
	r, err := Mine(db, mining.Options{MinSupCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	f3 := r.FrequentOfSize(3)
	if len(f3) != 1 || !f3[0].Set.Equal(itemset.New(2, 3, 5)) || f3[0].Count != 2 {
		t.Fatalf("frequent 3-itemsets = %v", f3)
	}
}

func TestMaxK(t *testing.T) {
	db := smallDB(t)
	r, err := Mine(db, mining.Options{MinSupCount: 3, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Frequent {
		if len(c.Set) > 2 {
			t.Fatalf("MaxK violated: %v", c.Set)
		}
	}
}

func TestMemoryBudgetOOM(t *testing.T) {
	db := smallDB(t)
	// A budget of a few KB cannot hold the conceptual C2.
	_, err := Mine(db, mining.Options{MinSupFrac: 0.05, MemoryBudget: 4096})
	if !mining.IsMemoryErr(err) {
		t.Fatalf("expected memory error, got %v", err)
	}
	// A generous budget runs fine.
	if _, err := Mine(db, mining.Options{MinSupFrac: 0.05, MaxK: 3, MemoryBudget: 1 << 30}); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

func TestOOMThresholdMovesWithSupport(t *testing.T) {
	// The paper's key memory observation: the candidate footprint grows as
	// the minimum support drops, so a budget that admits a high support
	// level fails a lower one.
	db := smallDB(t)
	high, err := Mine(db, mining.Options{MinSupFrac: 0.12, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Mine(db, mining.Options{MinSupFrac: 0.04, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if low.Metrics.PeakCandidateBytes <= high.Metrics.PeakCandidateBytes {
		t.Fatalf("candidate memory did not grow: %d vs %d",
			low.Metrics.PeakCandidateBytes, high.Metrics.PeakCandidateBytes)
	}
	budget := (low.Metrics.PeakCandidateBytes + high.Metrics.PeakCandidateBytes) / 2
	if _, err := Mine(db, mining.Options{MinSupFrac: 0.12, MaxK: 2, MemoryBudget: budget}); err != nil {
		t.Fatalf("high support failed under mid budget: %v", err)
	}
	if _, err := Mine(db, mining.Options{MinSupFrac: 0.04, MaxK: 2, MemoryBudget: budget}); !mining.IsMemoryErr(err) {
		t.Fatalf("low support should OOM under mid budget, got %v", err)
	}
}

func TestConceptualC2Accounting(t *testing.T) {
	db := smallDB(t)
	r, err := Mine(db, mining.Options{MinSupCount: 5, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	f1 := len(r.FrequentOfSize(1))
	wantC2 := f1 * (f1 - 1) / 2
	if r.Metrics.CandidatesByK[2] != wantC2 {
		t.Fatalf("C2 accounting = %d, want C(%d,2) = %d", r.Metrics.CandidatesByK[2], f1, wantC2)
	}
}

// Package apriori implements the classic sequential Apriori algorithm
// (Agrawal & Srikant, VLDB 1994) — the baseline the paper measures MIHP
// against in Figure 4 and the foundation of the Count Distribution parallel
// baseline.
//
// Candidate 2-itemsets are conceptually the full self-join of the frequent
// items; with text databases that set is enormous (the paper reports ~82
// million candidate 2-itemsets on the 8-day WSJ sample), which is exactly
// why Apriori exhausts memory at low support levels. We account candidate
// memory and generation work for the full C2 — reproducing the paper's OOM
// behaviour under Options.MemoryBudget — while physically counting only the
// pairs that occur in the database (pairs occurring zero times cannot become
// frequent, so the mining output is identical).
package apriori

import (
	"pmihp/internal/hashtree"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Mine runs Apriori over the database and returns every frequent itemset.
// It returns mining.ErrMemoryExceeded when the candidate set outgrows
// opts.MemoryBudget (partial metrics are still returned in the result).
func Mine(db *txdb.DB, opts mining.Options) (*mining.Result, error) {
	opts = opts.WithDefaults()
	minCount := opts.MinCount(db.Len())
	res := &mining.Result{Metrics: mining.NewMetrics("apriori")}
	m := &res.Metrics

	// Pass 1: count items.
	counts := db.ItemCounts()
	m.Passes++
	total := 0
	db.Each(func(t *txdb.Transaction) { total += len(t.Items) })
	m.Work.Charge(int64(total), mining.CostScanItem)

	frequent := make([]bool, db.NumItems())
	var f1 []itemset.Item
	for it, c := range counts {
		if c >= minCount {
			frequent[it] = true
			f1 = append(f1, itemset.Item(it))
			res.Frequent = append(res.Frequent, itemset.Counted{
				Set: itemset.Itemset{itemset.Item(it)}, Count: c,
			})
		}
	}
	m.AddCandidates(1, db.NumItems())
	if opts.MaxK == 1 || len(f1) < 2 {
		itemset.SortCounted(res.Frequent)
		return res, nil
	}

	// Pass 2: conceptually all pairs of frequent items.
	nPairs := len(f1) * (len(f1) - 1) / 2
	m.AddCandidates(2, nPairs)
	m.Work.Charge(int64(nPairs), mining.CostCandidateGen)
	m.NoteCandidateBytes(mining.CandidateBytes(2, nPairs))
	if opts.MemoryBudget > 0 && m.PeakCandidateBytes > opts.MemoryBudget {
		return res, mining.ErrMemoryExceeded
	}

	pairCounts := make(map[uint64]int)
	m.Passes++
	buf := make(itemset.Itemset, 0, 256)
	db.Each(func(t *txdb.Transaction) {
		m.Work.Charge(int64(len(t.Items)), mining.CostScanItem)
		buf = buf[:0]
		for _, it := range t.Items {
			if frequent[it] {
				buf = append(buf, it)
			}
		}
		for i := 0; i < len(buf); i++ {
			for j := i + 1; j < len(buf); j++ {
				pairCounts[pairKey(buf[i], buf[j])]++
			}
		}
		n := len(buf)
		m.Work.Charge(mining.Pass2TreeCharge(n, nPairs), 1)
		m.Work.Charge(int64(n*(n-1)/2), mining.CostCandidateHit)
	})

	var prev []itemset.Itemset
	for key, c := range pairCounts {
		if c >= minCount {
			pair := pairFromKey(key)
			res.Frequent = append(res.Frequent, itemset.Counted{Set: pair, Count: c})
			prev = append(prev, pair)
		}
	}
	itemset.Sort(prev)

	// Passes k >= 3: prefix join + subset pruning + hash-tree counting.
	for k := 3; len(prev) >= 2 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		cands, potential, prunedSub := genNext(k, prev)
		m.Work.Charge(int64(potential), mining.CostCandidateGen)
		m.PrunedBySubset += int64(prunedSub)
		if len(cands) == 0 {
			break
		}
		m.AddCandidates(k, len(cands))
		m.NoteCandidateBytes(mining.CandidateBytes(k, len(cands)))
		if opts.MemoryBudget > 0 && m.PeakCandidateBytes > opts.MemoryBudget {
			itemset.SortCounted(res.Frequent)
			return res, mining.ErrMemoryExceeded
		}

		tree := hashtree.Build(k, cands)
		m.Work.Charge(int64(len(cands)), mining.CostTreeInsert)
		m.Passes++
		db.Each(func(t *txdb.Transaction) {
			m.Work.Charge(int64(len(t.Items)), mining.CostScanItem)
			hits := tree.CountTx(t.Items)
			m.Work.Charge(int64(hits), mining.CostCandidateHit)
		})
		m.Work.Charge(tree.WalkCost(), 1)

		prev = prev[:0]
		for i := 0; i < tree.Len(); i++ {
			if c := tree.Count(i); c >= minCount {
				res.Frequent = append(res.Frequent, itemset.Counted{Set: tree.Candidate(i), Count: c})
				prev = append(prev, tree.Candidate(i))
			}
		}
		itemset.Sort(prev)
	}

	m.NoteHeldBytes(db.MemBytes() + m.PeakCandidateBytes)
	itemset.SortCounted(res.Frequent)
	return res, nil
}

// pairKey packs two items (a < b) into one comparable key.
func pairKey(a, b itemset.Item) uint64 { return uint64(a)<<32 | uint64(b) }

func pairFromKey(key uint64) itemset.Itemset {
	return itemset.Itemset{itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)}
}

// genNext generates the candidate k-itemsets from the frequent
// (k-1)-itemsets, using the packed-pair fast path for k=3.
func genNext(k int, prev []itemset.Itemset) (cands []itemset.Itemset, potential, pruned int) {
	if k == 3 {
		return mining.Gen3(prev, mining.PairTableOf(prev))
	}
	return mining.AprioriGen(prev, itemset.SetOf(prev...))
}

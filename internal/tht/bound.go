package tht

import (
	"math/bits"

	"pmihp/internal/itemset"
)

// Threshold-bounded evaluation of the IHP upper bound. All entry points
// answer "does GetMaxPossibleCount(x) reach threshold?" while examining as
// little of the tables as possible:
//
//   - without occupancy masks, the slot-minimum sum is accumulated with an
//     early exit once it reaches the threshold;
//   - with masks (see mask.go), the intersection of the items' occupancy
//     masks is computed first: an empty intersection proves a zero bound, a
//     popcount at or above the threshold proves the bound reaches it (every
//     intersecting slot contributes at least one), and otherwise only the
//     few intersecting slots are summed.
//
// The masked path makes the evaluation cost proportional to the number of
// slots where the items actually co-hash rather than to the table size —
// which is what keeps the paper's claim that "the sizes of the partitions
// and THT are not critical for the overall performance" true in the cost
// model as well (ablation A3).

// BoundReaches reports whether the IHP upper bound for the itemset reaches
// threshold. slots is the number of table slots (or mask words, charged at
// the same rate) examined. A false result proves MaxPossible(x) < threshold.
func (l *Local) BoundReaches(x itemset.Itemset, threshold int) (reaches bool, slots int) {
	sum, cost := l.boundUpTo(x, threshold)
	return sum >= threshold, cost
}

// boundUpTo accumulates the slot-minimum sum until it reaches stop, and
// returns the (possibly truncated) sum with the evaluation cost.
func (l *Local) boundUpTo(x itemset.Itemset, stop int) (sum, cost int) {
	if len(x) == 0 || stop <= 0 {
		return 0, 0
	}
	rows := make([][]uint32, len(x))
	for i, it := range x {
		rows[i] = l.counts[it]
		if rows[i] == nil {
			return 0, 0
		}
	}
	if l.masks != nil {
		var scratch [16]uint64
		inter, words, ok := l.intersection(x, scratch[:0])
		cost += words
		if !ok {
			return 0, cost
		}
		pc := 0
		for _, w := range inter {
			pc += bits.OnesCount64(w)
		}
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		// Fewer intersecting slots than the threshold: sum exactly those.
		for wi, w := range inter {
			for ; w != 0; w &= w - 1 {
				j := wi*64 + bits.TrailingZeros64(w)
				cost++
				min := rows[0][j]
				for i := 1; i < len(rows) && min > 0; i++ {
					if rows[i][j] < min {
						min = rows[i][j]
					}
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	// Maskless path: linear scan with early exit.
	for j := 0; j < l.entries; j++ {
		cost++
		min := rows[0][j]
		for i := 1; i < len(rows) && min > 0; i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// intersection ANDs the occupancy masks of the itemset's members into buf.
// ok is false when an item has no mask (no row) or the intersection is
// provably empty part-way through.
func (l *Local) intersection(x itemset.Itemset, buf []uint64) (inter []uint64, words int, ok bool) {
	for i, it := range x {
		m := l.masks[it]
		if m == nil {
			return nil, words, false
		}
		if i == 0 {
			buf = append(buf, m...)
			continue
		}
		any := uint64(0)
		for j := range buf {
			buf[j] &= m[j]
			any |= buf[j]
		}
		words += len(buf)
		if any == 0 {
			return nil, words, false
		}
	}
	return buf, words, true
}

// BoundReaches is the cascaded-table analogue: per-segment partial sums
// accumulate across segments and evaluation stops as soon as the running
// total reaches threshold.
func (g *Global) BoundReaches(x itemset.Itemset, threshold int) (reaches bool, slots int) {
	sum, total := 0, 0
	for _, seg := range g.segments {
		s, n := seg.boundUpTo(x, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// PairBoundReaches is the cascaded pair bound.
func (g *Global) PairBoundReaches(a, b itemset.Item, threshold int) (reaches bool, slots int) {
	sum, total := 0, 0
	for _, seg := range g.segments {
		s, n := seg.pairBoundUpTo(a, b, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// PairBoundReachesItems evaluates the local pair bound by item id, taking
// the masked fast path when masks are built.
func (l *Local) PairBoundReachesItems(a, b itemset.Item, threshold int) (reaches bool, slots int) {
	sum, cost := l.pairBoundUpTo(a, b, threshold)
	return sum >= threshold, cost
}

// pairBoundUpTo is boundUpTo specialized for a pair, avoiding per-call
// slice allocation in the pass-2 generation hot loop.
func (l *Local) pairBoundUpTo(a, b itemset.Item, stop int) (sum, cost int) {
	if stop <= 0 {
		return 0, 0
	}
	rowA, rowB := l.counts[a], l.counts[b]
	if rowA == nil || rowB == nil {
		return 0, 0
	}
	if l.masks != nil {
		ma, mb := l.masks[a], l.masks[b]
		pc := 0
		for j := range ma {
			pc += bits.OnesCount64(ma[j] & mb[j])
		}
		cost += len(ma)
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		for wi := range ma {
			for w := ma[wi] & mb[wi]; w != 0; w &= w - 1 {
				j := wi*64 + bits.TrailingZeros64(w)
				cost++
				min := rowA[j]
				if rowB[j] < min {
					min = rowB[j]
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	for j := range rowA {
		cost++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// PairBoundReaches evaluates the pair bound over two pre-fetched rows
// (maskless; retained for callers holding raw rows).
func PairBoundReaches(rowA, rowB []uint32, threshold int) (reaches bool, slots int) {
	if rowA == nil || rowB == nil {
		return threshold <= 0, 0
	}
	sum := 0
	for j := range rowA {
		slots++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= threshold {
			return true, slots
		}
	}
	return false, slots
}

package tht

import (
	"math/bits"

	"pmihp/internal/itemset"
)

// Threshold-bounded evaluation of the IHP upper bound. All entry points
// answer "does GetMaxPossibleCount(x) reach threshold?" while examining as
// little of the tables as possible:
//
//   - without occupancy masks, the slot-minimum sum is accumulated with an
//     early exit once it reaches the threshold;
//   - with masks (see mask.go), the intersection of the items' occupancy
//     masks is computed first: an empty intersection proves a zero bound, a
//     popcount at or above the threshold proves the bound reaches it (every
//     intersecting slot contributes at least one), and otherwise only the
//     few intersecting slots are summed.
//
// The masked path makes the evaluation cost proportional to the number of
// slots where the items actually co-hash rather than to the table size —
// which is what keeps the paper's claim that "the sizes of the partitions
// and THT are not critical for the overall performance" true in the cost
// model as well (ablation A3). Every path is allocation-free for itemsets
// up to maxStackItems: row pointers and intersection scratch live in stack
// arrays, because these evaluations run once per candidate.

// BoundReaches reports whether the IHP upper bound for the itemset reaches
// threshold. slots is the number of table slots (or mask words, charged at
// the same rate) examined. A false result proves MaxPossible(x) < threshold.
func (l *Local) BoundReaches(x itemset.Itemset, threshold int) (reaches bool, slots int) {
	sum, cost := l.boundUpTo(x, threshold)
	return sum >= threshold, cost
}

// boundUpTo accumulates the slot-minimum sum until it reaches stop, and
// returns the (possibly truncated) sum with the evaluation cost.
func (l *Local) boundUpTo(x itemset.Itemset, stop int) (sum, cost int) {
	if len(x) == 0 || stop <= 0 {
		return 0, 0
	}
	var rowsBuf [maxStackItems][]uint32
	rows, ok := l.fetchRows(x, &rowsBuf)
	if !ok {
		return 0, 0
	}
	if l.masksBuilt {
		var scratch [16]uint64
		inter, words, ok := l.intersection(x, scratch[:0])
		cost += words
		if !ok {
			return 0, cost
		}
		pc := 0
		for _, w := range inter {
			pc += bits.OnesCount64(w)
		}
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		// Fewer intersecting slots than the threshold: sum exactly those.
		for wi, w := range inter {
			for ; w != 0; w &= w - 1 {
				j := wi*64 + bits.TrailingZeros64(w)
				cost++
				min := rows[0][j]
				for i := 1; i < len(rows) && min > 0; i++ {
					if rows[i][j] < min {
						min = rows[i][j]
					}
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	// Maskless path: linear scan with early exit.
	for j := 0; j < l.entries; j++ {
		cost++
		min := rows[0][j]
		for i := 1; i < len(rows) && min > 0; i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// intersection ANDs the occupancy masks of the itemset's members into buf.
// ok is false when an item has no mask (no row) or the intersection is
// provably empty part-way through.
func (l *Local) intersection(x itemset.Itemset, buf []uint64) (inter []uint64, words int, ok bool) {
	for i, it := range x {
		m := l.mask(it)
		if m == nil {
			return nil, words, false
		}
		if i == 0 {
			buf = append(buf, m...)
			continue
		}
		any := uint64(0)
		for j := range buf {
			buf[j] &= m[j]
			any |= buf[j]
		}
		words += len(buf)
		if any == 0 {
			return nil, words, false
		}
	}
	return buf, words, true
}

// positiveBound reports whether the IHP bound for x is positive, charging
// exactly what BoundReaches(x, 1) charges: with masks, the intersection
// word counts; without, the linear scan up to the first positive slot. It
// exists so PollPeers can classify a whole batch itemset against every
// segment without fetching counter rows or allocating.
func (l *Local) positiveBound(x itemset.Itemset) (positive bool, cost int) {
	if len(x) == 0 {
		return false, 0
	}
	for _, it := range x {
		if l.Row(it) == nil {
			return false, 0
		}
	}
	if l.masksBuilt {
		var scratch [16]uint64
		_, words, ok := l.intersection(x, scratch[:0])
		// A non-empty intersection has a slot where every member co-hashes,
		// so the bound is at least 1 (rows only ever grow).
		return ok, words
	}
	var rowsBuf [maxStackItems][]uint32
	rows, _ := l.fetchRows(x, &rowsBuf)
	for j := 0; j < l.entries; j++ {
		cost++
		min := rows[0][j]
		for i := 1; i < len(rows) && min > 0; i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		if min > 0 {
			return true, cost
		}
	}
	return false, cost
}

// BoundReaches is the cascaded-table analogue: per-segment partial sums
// accumulate across segments and evaluation stops as soon as the running
// total reaches threshold.
func (g *Global) BoundReaches(x itemset.Itemset, threshold int) (reaches bool, slots int) {
	sum, total := 0, 0
	for _, seg := range g.segments {
		s, n := seg.boundUpTo(x, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// PollPeers appends to buf the segments other than self whose IHP bound for
// x is positive — the peers PMIHP must poll for the itemset — and returns
// the extended slice with the total slot cost. It is the batch-classification
// kernel behind flush: one call replaces a BoundReaches(x, 1) per peer,
// with identical slot charges but no row fetches or allocations.
func (g *Global) PollPeers(x itemset.Itemset, self int, buf []int) (peers []int, slots int) {
	peers = buf[:0]
	for p, seg := range g.segments {
		if p == self {
			continue
		}
		ok, cost := seg.positiveBound(x)
		slots += cost
		if ok {
			peers = append(peers, p)
		}
	}
	return peers, slots
}

// PairBoundReaches is the cascaded pair bound.
func (g *Global) PairBoundReaches(a, b itemset.Item, threshold int) (reaches bool, slots int) {
	sum, total := 0, 0
	for _, seg := range g.segments {
		s, n := seg.pairBoundUpTo(a, b, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// PairBoundReachesItems evaluates the local pair bound by item id, taking
// the masked fast path when masks are built.
func (l *Local) PairBoundReachesItems(a, b itemset.Item, threshold int) (reaches bool, slots int) {
	sum, cost := l.pairBoundUpTo(a, b, threshold)
	return sum >= threshold, cost
}

// PairBoundReachesRows is PairBoundReachesItems over pre-fetched rows and
// masks (as returned by Row and Mask; masks nil when not built), with
// identical results and slot charges. Pass 2 scans one item against every
// larger frequent item, so hoisting the first item's row and mask fetches
// out of that loop matters.
func (l *Local) PairBoundReachesRows(rowA []uint32, ma []uint64, rowB []uint32, mb []uint64, threshold int) (reaches bool, slots int) {
	sum, cost := l.pairBoundUpToRows(rowA, ma, rowB, mb, threshold)
	return sum >= threshold, cost
}

// pairBoundUpTo is boundUpTo specialized for a pair, avoiding per-call
// slice allocation in the pass-2 generation hot loop.
func (l *Local) pairBoundUpTo(a, b itemset.Item, stop int) (sum, cost int) {
	if stop <= 0 {
		return 0, 0
	}
	var ma, mb []uint64
	if l.masksBuilt {
		ma, mb = l.mask(a), l.mask(b)
	}
	return l.pairBoundUpToRows(l.Row(a), ma, l.Row(b), mb, stop)
}

func (l *Local) pairBoundUpToRows(rowA []uint32, ma []uint64, rowB []uint32, mb []uint64, stop int) (sum, cost int) {
	if stop <= 0 {
		return 0, 0
	}
	if rowA == nil || rowB == nil {
		return 0, 0
	}
	if ma != nil && mb != nil {
		pc := 0
		for j := range ma {
			pc += bits.OnesCount64(ma[j] & mb[j])
		}
		cost += len(ma)
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		for wi := range ma {
			for w := ma[wi] & mb[wi]; w != 0; w &= w - 1 {
				j := wi*64 + bits.TrailingZeros64(w)
				cost++
				min := rowA[j]
				if rowB[j] < min {
					min = rowB[j]
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	for j := range rowA {
		cost++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// PairBoundReaches evaluates the pair bound over two pre-fetched rows
// (maskless; retained for callers holding raw rows).
func PairBoundReaches(rowA, rowB []uint32, threshold int) (reaches bool, slots int) {
	if rowA == nil || rowB == nil {
		return threshold <= 0, 0
	}
	sum := 0
	for j := range rowA {
		slots++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= threshold {
			return true, slots
		}
	}
	return false, slots
}

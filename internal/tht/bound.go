package tht

import (
	"math/bits"

	"pmihp/internal/itemset"
)

// Threshold-bounded evaluation of the IHP upper bound. All entry points
// answer "does GetMaxPossibleCount(x) reach threshold?" while examining as
// little of the tables as possible:
//
//   - without occupancy masks, the slot-minimum sum is accumulated with an
//     early exit once it reaches the threshold;
//   - with masks (see mask.go), the intersection of the items' occupancy
//     masks is computed first: an empty intersection proves a zero bound, a
//     popcount at or above the threshold proves the bound reaches it (every
//     intersecting slot contributes at least one), and otherwise only the
//     few intersecting slots are summed.
//
// The masked path makes the evaluation cost proportional to the number of
// slots where the items actually co-hash rather than to the table size —
// which is what keeps the paper's claim that "the sizes of the partitions
// and THT are not critical for the overall performance" true in the cost
// model as well (ablation A3). Every path is allocation-free for itemsets
// up to maxStackItems: row pointers and intersection scratch live in stack
// arrays, because these evaluations run once per candidate.

// BoundReaches reports whether the IHP upper bound for the itemset reaches
// threshold. slots is the number of table slots (or mask words, charged at
// the same rate) examined. A false result proves MaxPossible(x) < threshold.
func (l *Local) BoundReaches(x itemset.Itemset, threshold int) (reaches bool, slots int) {
	sum, cost := l.boundUpTo(x, threshold)
	return sum >= threshold, cost
}

// boundUpTo accumulates the slot-minimum sum until it reaches stop, and
// returns the (possibly truncated) sum with the evaluation cost.
func (l *Local) boundUpTo(x itemset.Itemset, stop int) (sum, cost int) {
	if len(x) == 0 || stop <= 0 {
		return 0, 0
	}
	var rowsBuf [maxStackItems][]uint32
	rows, ok := l.fetchRows(x, &rowsBuf)
	if !ok {
		return 0, 0
	}
	if l.masksBuilt {
		var scratch [16]uint64
		inter, words, ok := l.intersection(x, scratch[:0])
		cost += words
		if !ok {
			return 0, cost
		}
		pc := 0
		for _, w := range inter {
			pc += bits.OnesCount64(w)
		}
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		// Fewer intersecting slots than the threshold: sum exactly those.
		for wi, w := range inter {
			for ; w != 0; w &= w - 1 {
				j := wi*64 + bits.TrailingZeros64(w)
				cost++
				min := rows[0][j]
				for i := 1; i < len(rows) && min > 0; i++ {
					if rows[i][j] < min {
						min = rows[i][j]
					}
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	// Maskless path: linear scan with early exit.
	for j := 0; j < l.entries; j++ {
		cost++
		min := rows[0][j]
		for i := 1; i < len(rows) && min > 0; i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// intersection ANDs the occupancy masks of the itemset's members into buf.
// ok is false when an item has no mask (no row) or the intersection is
// provably empty part-way through. A saturated member (every slot occupied
// — a stopword-grade item) is the identity of the AND chain: the
// accumulator only ever holds in-range slot bits, so the member's mask
// memory is never read. The word charge is the same either way.
func (l *Local) intersection(x itemset.Itemset, buf []uint64) (inter []uint64, words int, ok bool) {
	w := l.maskWords()
	sat := int32(l.entries)
	for i, it := range x {
		r := l.rowIndex(it)
		if r < 0 {
			return nil, words, false
		}
		if i == 0 {
			buf = append(buf, l.maskData[int(r)*w:(int(r)+1)*w]...)
			continue
		}
		words += len(buf)
		if l.occ[r] == sat {
			// buf stays non-empty: it held at least one bit after the last
			// checked AND (and every live row's own mask is non-empty).
			continue
		}
		m := l.maskData[int(r)*w : (int(r)+1)*w]
		any := uint64(0)
		for j := range buf {
			buf[j] &= m[j]
			any |= buf[j]
		}
		if any == 0 {
			return nil, words, false
		}
	}
	return buf, words, true
}

// positiveBound reports whether the IHP bound for x is positive, charging
// exactly what BoundReaches(x, 1) charges: with masks, the intersection
// word counts; without, the linear scan up to the first positive slot. It
// exists so PollPeers can classify a whole batch itemset against every
// segment without fetching counter rows or allocating.
func (l *Local) positiveBound(x itemset.Itemset) (positive bool, cost int) {
	if len(x) == 0 {
		return false, 0
	}
	for _, it := range x {
		if l.Row(it) == nil {
			return false, 0
		}
	}
	if l.masksBuilt {
		var scratch [16]uint64
		_, words, ok := l.intersection(x, scratch[:0])
		// A non-empty intersection has a slot where every member co-hashes,
		// so the bound is at least 1 (rows only ever grow).
		return ok, words
	}
	var rowsBuf [maxStackItems][]uint32
	rows, _ := l.fetchRows(x, &rowsBuf)
	for j := 0; j < l.entries; j++ {
		cost++
		min := rows[0][j]
		for i := 1; i < len(rows) && min > 0; i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		if min > 0 {
			return true, cost
		}
	}
	return false, cost
}

// BoundReaches is the cascaded-table analogue: per-segment partial sums
// accumulate across segments and evaluation stops as soon as the running
// total reaches threshold.
func (g *Global) BoundReaches(x itemset.Itemset, threshold int) (reaches bool, slots int) {
	sum, total := 0, 0
	for _, seg := range g.segments {
		s, n := seg.boundUpTo(x, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// PollPeers appends to buf the segments other than self whose IHP bound for
// x is positive — the peers PMIHP must poll for the itemset — and returns
// the extended slice with the total slot cost. It is the batch-classification
// kernel behind flush: one call replaces a BoundReaches(x, 1) per peer,
// with identical slot charges but no row fetches or allocations.
func (g *Global) PollPeers(x itemset.Itemset, self int, buf []int) (peers []int, slots int) {
	peers = buf[:0]
	for p, seg := range g.segments {
		if p == self {
			continue
		}
		ok, cost := seg.positiveBound(x)
		slots += cost
		if ok {
			peers = append(peers, p)
		}
	}
	return peers, slots
}

// PairBoundReaches is the cascaded pair bound.
func (g *Global) PairBoundReaches(a, b itemset.Item, threshold int) (reaches bool, slots int) {
	sum, total := 0, 0
	for _, seg := range g.segments {
		s, n := seg.pairBoundUpTo(a, b, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// rowIndex returns the matrix row number of an item, or -1 when absent.
func (l *Local) rowIndex(it itemset.Item) int32 {
	if int(it) >= len(l.rowIdx) {
		return -1
	}
	return l.rowIdx[it]
}

// pairBoundIdx is pairBoundUpToRows addressed by matrix row numbers, with
// identical results and slot charges. Counter-row slices are materialized
// only on the partial-popcount path — in the masked low-support regime most
// pairs resolve from the two mask words alone, so the common case touches
// no counter memory and builds no slice headers at all.
func (l *Local) pairBoundIdx(ra, rb int32, stop int) (sum, cost int) {
	if stop <= 0 || ra < 0 || rb < 0 {
		return 0, 0
	}
	if l.fast1 {
		m := l.maskData[ra] & l.maskData[rb]
		if m == 0 {
			return 0, 1
		}
		if pc := bits.OnesCount64(m); pc >= stop {
			return stop, 1
		}
		sum, cost = l.pairSumBits(ra, rb, m, stop)
		return sum, cost + 1
	}
	h := l.entries
	if l.masksBuilt {
		w := l.mw
		cost += w
		// A saturated row's mask is the AND identity, so the pair's
		// co-occupancy popcount is just the other row's occupancy counter —
		// no mask memory is read. The charge stays w words, exactly what
		// the scan below would have cost.
		pc := 0
		switch sat := int32(h); {
		case l.occ[ra] == sat:
			pc = int(l.occ[rb])
		case l.occ[rb] == sat:
			pc = int(l.occ[ra])
		default:
			ma := l.maskData[int(ra)*w : (int(ra)+1)*w]
			mb := l.maskData[int(rb)*w : (int(rb)+1)*w]
			for j := range ma {
				pc += bits.OnesCount64(ma[j] & mb[j])
			}
		}
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		ma := l.maskData[int(ra)*w : (int(ra)+1)*w]
		mb := l.maskData[int(rb)*w : (int(rb)+1)*w]
		rowA := l.data[int(ra)*h : (int(ra)+1)*h]
		rowB := l.data[int(rb)*h : (int(rb)+1)*h]
		for wi := range ma {
			for wv := ma[wi] & mb[wi]; wv != 0; wv &= wv - 1 {
				j := wi*64 + bits.TrailingZeros64(wv)
				cost++
				min := rowA[j]
				if rowB[j] < min {
					min = rowB[j]
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	rowA := l.data[int(ra)*h : (int(ra)+1)*h]
	rowB := l.data[int(rb)*h : (int(rb)+1)*h]
	for j := range rowA {
		cost++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// pairSumBits sums min(rowA[j], rowB[j]) over the slots set in the mask
// word m (the partial-popcount path of a single-word table), charging one
// slot per examined bit and stopping at stop.
func (l *Local) pairSumBits(ra, rb int32, m uint64, stop int) (sum, cost int) {
	h := l.entries
	rowA := l.data[int(ra)*h : (int(ra)+1)*h]
	rowB := l.data[int(rb)*h : (int(rb)+1)*h]
	for ; m != 0; m &= m - 1 {
		j := bits.TrailingZeros64(m)
		cost++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// PairScan answers pair-bound queries over a fixed ascending item universe
// (a mining run's globally frequent items) with every row lookup resolved
// up front: per segment, the matrix row number of each universe position.
// Row indexes stay valid until the next Retain, so a scan is built once per
// run, after the post-pass-1 Retain, and reused for every partition.
type PairScan struct {
	g    *Global
	rows [][]int32 // [segment][pos] row number of universe[pos], -1 absent
	ra   []int32   // hoisted row numbers of the current outer item
}

// NewPairScan resolves the universe's row numbers across every segment.
func (g *Global) NewPairScan(universe []itemset.Item) *PairScan {
	ps := &PairScan{
		g:    g,
		rows: make([][]int32, len(g.segments)),
		ra:   make([]int32, len(g.segments)),
	}
	for p, seg := range g.segments {
		rows := make([]int32, len(universe))
		for i, it := range universe {
			rows[i] = seg.rowIndex(it)
		}
		ps.rows[p] = rows
	}
	return ps
}

// Fork returns a scan sharing this scan's resolved row tables but with a
// private hoist register, so concurrent workers can Hoist different outer
// items over the same universe. Forks stay valid exactly as long as the
// parent (until the next Retain).
func (ps *PairScan) Fork() *PairScan {
	return &PairScan{g: ps.g, rows: ps.rows, ra: make([]int32, len(ps.ra))}
}

// Present reports whether the item at universe position pos has a row in
// segment p.
func (ps *PairScan) Present(p, pos int) bool { return ps.rows[p][pos] >= 0 }

// Hoist fixes the outer item of subsequent Seg/BoundReaches calls by
// universe position.
func (ps *PairScan) Hoist(aPos int) {
	for p := range ps.rows {
		ps.ra[p] = ps.rows[p][aPos]
	}
}

// SegScan is a PairScan pinned to one segment with the hoisted outer item
// resolved, so the per-pair call carries no segment indirections. Re-take
// after each Hoist.
type SegScan struct {
	l    *Local
	rows []int32
	ra   int32
}

// Seg pins the scan to segment p and the currently hoisted outer item.
func (ps *PairScan) Seg(p int) SegScan {
	return SegScan{l: ps.g.segments[p], rows: ps.rows[p], ra: ps.ra[p]}
}

// BoundReaches evaluates the segment's pair bound between the hoisted item
// and universe position bPos, with the results and slot charges of
// PairBoundReachesRows over the same rows.
func (s SegScan) BoundReaches(bPos, threshold int) (reaches bool, slots int) {
	sum, cost := s.l.pairBoundIdx(s.ra, s.rows[bPos], threshold)
	return sum >= threshold, cost
}

// BoundReaches evaluates the cascaded pair bound between the hoisted item
// and universe position bPos, with the results and slot charges of
// Global.PairBoundReaches. Single-word segments resolve in the loop body
// without a call; wider geometries fall back to pairBoundIdx.
func (ps *PairScan) BoundReaches(bPos, threshold int) (reaches bool, slots int) {
	if threshold <= 0 {
		return true, 0
	}
	sum, total := 0, 0
	for p, seg := range ps.g.segments {
		ra, rb := ps.ra[p], ps.rows[p][bPos]
		if ra < 0 || rb < 0 {
			continue
		}
		if seg.fast1 {
			m := seg.maskData[ra] & seg.maskData[rb]
			total++
			if m == 0 {
				continue
			}
			stop := threshold - sum
			if pc := bits.OnesCount64(m); pc >= stop {
				return true, total
			}
			s, n := seg.pairSumBits(ra, rb, m, stop)
			sum += s
			total += n
			if sum >= threshold {
				return true, total
			}
			continue
		}
		s, n := seg.pairBoundIdx(ra, rb, threshold-sum)
		sum += s
		total += n
		if sum >= threshold {
			return true, total
		}
	}
	return false, total
}

// PairBoundReachesItems evaluates the local pair bound by item id, taking
// the masked fast path when masks are built.
func (l *Local) PairBoundReachesItems(a, b itemset.Item, threshold int) (reaches bool, slots int) {
	sum, cost := l.pairBoundUpTo(a, b, threshold)
	return sum >= threshold, cost
}

// PairBoundReachesRows is PairBoundReachesItems over pre-fetched rows and
// masks (as returned by Row and Mask; masks nil when not built), with
// identical results and slot charges. Pass 2 scans one item against every
// larger frequent item, so hoisting the first item's row and mask fetches
// out of that loop matters.
func (l *Local) PairBoundReachesRows(rowA []uint32, ma []uint64, rowB []uint32, mb []uint64, threshold int) (reaches bool, slots int) {
	sum, cost := l.pairBoundUpToRows(rowA, ma, rowB, mb, threshold)
	return sum >= threshold, cost
}

// pairBoundUpTo is boundUpTo specialized for a pair, avoiding per-call
// slice allocation in the pass-2 generation hot loop.
func (l *Local) pairBoundUpTo(a, b itemset.Item, stop int) (sum, cost int) {
	if stop <= 0 {
		return 0, 0
	}
	var ma, mb []uint64
	if l.masksBuilt {
		ma, mb = l.mask(a), l.mask(b)
	}
	return l.pairBoundUpToRows(l.Row(a), ma, l.Row(b), mb, stop)
}

func (l *Local) pairBoundUpToRows(rowA []uint32, ma []uint64, rowB []uint32, mb []uint64, stop int) (sum, cost int) {
	if stop <= 0 {
		return 0, 0
	}
	if rowA == nil || rowB == nil {
		return 0, 0
	}
	if ma != nil && mb != nil {
		pc := 0
		for j := range ma {
			pc += bits.OnesCount64(ma[j] & mb[j])
		}
		cost += len(ma)
		if pc == 0 {
			return 0, cost
		}
		if pc >= stop {
			return stop, cost
		}
		for wi := range ma {
			for w := ma[wi] & mb[wi]; w != 0; w &= w - 1 {
				j := wi*64 + bits.TrailingZeros64(w)
				cost++
				min := rowA[j]
				if rowB[j] < min {
					min = rowB[j]
				}
				sum += int(min)
				if sum >= stop {
					return sum, cost
				}
			}
		}
		return sum, cost
	}
	for j := range rowA {
		cost++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= stop {
			return sum, cost
		}
	}
	return sum, cost
}

// PairBoundReaches evaluates the pair bound over two pre-fetched rows
// (maskless; retained for callers holding raw rows).
func PairBoundReaches(rowA, rowB []uint32, threshold int) (reaches bool, slots int) {
	if rowA == nil || rowB == nil {
		return threshold <= 0, 0
	}
	sum := 0
	for j := range rowA {
		slots++
		min := rowA[j]
		if rowB[j] < min {
			min = rowB[j]
		}
		sum += int(min)
		if sum >= threshold {
			return true, slots
		}
	}
	return false, slots
}

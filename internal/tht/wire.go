package tht

import (
	"encoding/binary"
	"fmt"

	"pmihp/internal/itemset"
)

// Wire form of a Local, used by the TCP transport's THT exchange. The
// encoding carries exactly what a receiving node needs to rebuild the
// segment for cascade bounds: the geometry and the counter rows. Masks
// are never shipped — the receiver rebuilds them after its own Retain,
// matching Clone's contract.
//
// Layout (little-endian):
//
//	u32 entries
//	u32 numItems   (row-index width; item ids are below this)
//	u32 rows
//	rows × { u32 item, entries × u32 counters }

// AppendWire appends the wire encoding of the table set to b.
func (l *Local) AppendWire(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(l.entries))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(l.rowIdx)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(l.rowItem)))
	for r, it := range l.rowItem {
		b = binary.LittleEndian.AppendUint32(b, uint32(it))
		for _, c := range l.data[r*l.entries : (r+1)*l.entries] {
			b = binary.LittleEndian.AppendUint32(b, c)
		}
	}
	return b
}

// DecodeWire rebuilds a Local from its wire encoding. Every length is
// validated against the remaining payload before allocation, so corrupt
// input produces an error, never a panic or an outsized allocation.
func DecodeWire(b []byte) (*Local, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("tht: wire header truncated: %d bytes", len(b))
	}
	entries := int(binary.LittleEndian.Uint32(b[0:]))
	numItems := int(binary.LittleEndian.Uint32(b[4:]))
	rows := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	if entries <= 0 {
		return nil, fmt.Errorf("tht: wire table with %d entries", entries)
	}
	rowBytes := 4 * (1 + entries)
	if rows < 0 || numItems < 0 || rows > numItems || len(b) != rows*rowBytes {
		return nil, fmt.Errorf("tht: wire body is %d bytes, want %d rows × %d", len(b), rows, rowBytes)
	}
	l := NewLocalSized(entries, numItems)
	l.rowItem = make([]itemset.Item, rows)
	l.data = make([]uint32, rows*entries)
	for r := 0; r < rows; r++ {
		it := itemset.Item(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if int(it) >= numItems {
			return nil, fmt.Errorf("tht: wire row %d for item %d outside index width %d", r, it, numItems)
		}
		if l.rowIdx[it] >= 0 {
			return nil, fmt.Errorf("tht: wire carries item %d twice", it)
		}
		l.rowItem[r] = it
		l.rowIdx[it] = int32(r)
		row := l.data[r*entries : (r+1)*entries]
		for j := range row {
			row[j] = binary.LittleEndian.Uint32(b)
			b = b[4:]
		}
	}
	return l, nil
}

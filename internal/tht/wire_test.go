package tht

import (
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

func buildWireFixture(t *testing.T) *Local {
	t.Helper()
	db := txdb.New([]txdb.Transaction{
		{TID: 0, Items: itemset.Itemset{0, 2, 5}},
		{TID: 1, Items: itemset.Itemset{2, 5, 9}},
		{TID: 2, Items: itemset.Itemset{0, 9}},
		{TID: 3, Items: itemset.Itemset{5}},
	}, 10)
	l, _ := BuildLocal(db, 7)
	return l
}

func TestWireRoundTrip(t *testing.T) {
	l := buildWireFixture(t)
	got, err := DecodeWire(l.AppendWire(nil))
	if err != nil {
		t.Fatalf("DecodeWire: %v", err)
	}
	if got.Entries() != l.Entries() || got.NumItems() != l.NumItems() {
		t.Fatalf("geometry: got %d/%d want %d/%d", got.Entries(), got.NumItems(), l.Entries(), l.NumItems())
	}
	for _, it := range []itemset.Item{0, 2, 5, 9, 3} {
		a, b := l.Row(it), got.Row(it)
		if len(a) != len(b) {
			t.Fatalf("item %d: row lengths %d vs %d", it, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("item %d slot %d: %d vs %d", it, j, a[j], b[j])
			}
		}
	}
	// Bounds must agree — that is what the cascade consumes.
	for _, x := range []itemset.Itemset{{0, 5}, {2, 9}, {0, 2, 5}, {3, 5}} {
		if a, b := l.MaxPossible(x), got.MaxPossible(x); a != b {
			t.Fatalf("MaxPossible(%v): %d vs %d", x, a, b)
		}
	}
}

func TestWireRoundTripAfterRetain(t *testing.T) {
	l := buildWireFixture(t)
	l.Retain(func(it itemset.Item) bool { return it == 2 || it == 5 })
	got, err := DecodeWire(l.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(0) != nil || got.Row(9) != nil {
		t.Fatal("dropped rows survived the round trip")
	}
	if got.MaxPossible(itemset.Itemset{2, 5}) != l.MaxPossible(itemset.Itemset{2, 5}) {
		t.Fatal("bound mismatch after Retain round trip")
	}
	// The receiver builds masks itself, like pmihp does after Retain.
	got.BuildMasks()
	if got.MaxPossible(itemset.Itemset{2, 5}) != l.MaxPossible(itemset.Itemset{2, 5}) {
		t.Fatal("bound changed by BuildMasks")
	}
}

func TestDecodeWireRejectsCorruption(t *testing.T) {
	l := buildWireFixture(t)
	enc := l.AppendWire(nil)
	for cut := 0; cut < len(enc); cut += 3 {
		if _, err := DecodeWire(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	if _, err := DecodeWire(append(append([]byte{}, enc...), 1, 2, 3, 4)); err == nil {
		t.Fatal("trailing bytes decoded")
	}
	// A hostile row count must not cause a huge allocation or a panic.
	bad := append([]byte{}, enc...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := DecodeWire(bad); err == nil {
		t.Fatal("absurd row count decoded")
	}
	// Zero entries is invalid geometry.
	zero := append([]byte{}, enc...)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0
	if _, err := DecodeWire(zero); err == nil {
		t.Fatal("zero-entry table decoded")
	}
}

package tht

import (
	"math/rand"
	"testing"

	"pmihp/internal/itemset"
)

// TestBuildLocalShardsMatchesSerial: the sharded pass-1 build must produce a
// table and count vector identical to the serial build for every worker
// count.
func TestBuildLocalShardsMatchesSerial(t *testing.T) {
	db := makeDB(7, 300, 500, 40)
	want, wantCounts := BuildLocal(db, 16)
	for _, workers := range []int{2, 3, 8, 64} {
		got, gotCounts := BuildLocalShards(db, 16, workers)
		if got.Entries() != want.Entries() || got.NumItems() != want.NumItems() {
			t.Fatalf("workers=%d: geometry %d/%d, want %d/%d",
				workers, got.Entries(), got.NumItems(), want.Entries(), want.NumItems())
		}
		for it := 0; it < db.NumItems(); it++ {
			if gotCounts[it] != wantCounts[it] {
				t.Fatalf("workers=%d: count[%d] = %d, want %d", workers, it, gotCounts[it], wantCounts[it])
			}
			wr, gr := want.Row(itemset.Item(it)), got.Row(itemset.Item(it))
			if (wr == nil) != (gr == nil) {
				t.Fatalf("workers=%d: row presence mismatch for item %d", workers, it)
			}
			for j := range wr {
				if wr[j] != gr[j] {
					t.Fatalf("workers=%d: row[%d][%d] = %d, want %d", workers, it, j, gr[j], wr[j])
				}
			}
		}
	}
}

// TestPollPeersMatchesPerPeerBounds: PollPeers must select exactly the peers
// a per-peer BoundReaches(x, 1) loop selects, with the same total slot
// charge, with and without masks.
func TestPollPeersMatchesPerPeerBounds(t *testing.T) {
	for _, masks := range []bool{false, true} {
		locals := make([]*Local, 4)
		for s := range locals {
			locals[s], _ = BuildLocal(makeDB(int64(s+11), 60, 300, 25), 8)
			locals[s].Retain(func(it itemset.Item) bool { return it%3 != 0 })
			if masks {
				locals[s].BuildMasks()
			}
		}
		g := NewGlobal(locals)
		rng := rand.New(rand.NewSource(5))
		var buf []int
		for trial := 0; trial < 300; trial++ {
			k := 1 + rng.Intn(3)
			raw := make([]uint32, k)
			for j := range raw {
				raw[j] = uint32(rng.Intn(300))
			}
			x := itemset.New(raw...)
			self := rng.Intn(4)

			var wantPeers []int
			wantSlots := 0
			for p := 0; p < g.NumSegments(); p++ {
				if p == self {
					continue
				}
				ok, slots := g.Segment(p).BoundReaches(x, 1)
				wantSlots += slots
				if ok {
					wantPeers = append(wantPeers, p)
				}
			}

			gotPeers, gotSlots := g.PollPeers(x, self, buf)
			buf = gotPeers
			if gotSlots != wantSlots {
				t.Fatalf("masks=%v x=%v self=%d: slots %d, want %d", masks, x, self, gotSlots, wantSlots)
			}
			if len(gotPeers) != len(wantPeers) {
				t.Fatalf("masks=%v x=%v self=%d: peers %v, want %v", masks, x, self, gotPeers, wantPeers)
			}
			for i := range gotPeers {
				if gotPeers[i] != wantPeers[i] {
					t.Fatalf("masks=%v x=%v self=%d: peers %v, want %v", masks, x, self, gotPeers, wantPeers)
				}
			}
		}
	}
}

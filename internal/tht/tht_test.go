package tht

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

// makeDB builds a deterministic random database for bound-property tests.
func makeDB(seed int64, docs, vocab, docLen int) *txdb.DB {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]txdb.Transaction, docs)
	for i := range txs {
		seen := map[itemset.Item]struct{}{}
		for len(seen) < docLen {
			seen[itemset.Item(rng.Intn(vocab))] = struct{}{}
		}
		items := make(itemset.Itemset, 0, docLen)
		for it := range seen {
			items = append(items, it)
		}
		txs[i] = txdb.Transaction{TID: txdb.TID(i), Items: itemset.New(items...)}
	}
	return txdb.New(txs, vocab)
}

func support(db *txdb.DB, x itemset.Itemset) int {
	n := 0
	db.Each(func(t *txdb.Transaction) {
		if x.SubsetOf(t.Items) {
			n++
		}
	})
	return n
}

// TestMaxPossibleIsUpperBound is the central IHP soundness property: the
// bound never undershoots the true support, for any itemset and table size.
func TestMaxPossibleIsUpperBound(t *testing.T) {
	for _, entries := range []int{1, 3, 16, 50, 400} {
		db := makeDB(int64(entries), 80, 120, 12)
		local, counts := BuildLocal(db, entries)
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 300; trial++ {
			k := 1 + rng.Intn(3)
			raw := make([]uint32, k)
			for j := range raw {
				raw[j] = uint32(rng.Intn(120))
			}
			x := itemset.New(raw...)
			bound := local.MaxPossible(x)
			sup := support(db, x)
			if bound < sup {
				t.Fatalf("entries=%d: MaxPossible(%v)=%d < support %d", entries, x, bound, sup)
			}
			if len(x) == 1 && bound != counts[x[0]] {
				t.Fatalf("1-itemset bound %d != count %d", bound, counts[x[0]])
			}
		}
	}
}

// TestBoundReachesAgreesWithMaxPossible: the early-exit decision must equal
// the full bound comparison, with and without masks.
func TestBoundReachesAgreesWithMaxPossible(t *testing.T) {
	db := makeDB(5, 60, 100, 10)
	for _, withMasks := range []bool{false, true} {
		local, _ := BuildLocal(db, 32)
		if withMasks {
			local.BuildMasks()
		}
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 500; trial++ {
			k := 1 + rng.Intn(3)
			raw := make([]uint32, k)
			for j := range raw {
				raw[j] = uint32(rng.Intn(100))
			}
			x := itemset.New(raw...)
			threshold := 1 + rng.Intn(6)
			want := local.MaxPossible(x) >= threshold
			got, _ := local.BoundReaches(x, threshold)
			if got != want {
				t.Fatalf("masks=%v: BoundReaches(%v, %d) = %v, MaxPossible = %d",
					withMasks, x, threshold, got, local.MaxPossible(x))
			}
		}
	}
}

// TestCascadeEqualsSplitSum: the global bound over a split database equals
// the sum of per-segment bounds, and still upper-bounds the global support.
func TestCascadeBoundSound(t *testing.T) {
	db := makeDB(21, 100, 90, 10)
	parts := db.SplitChronological(4)
	locals := make([]*Local, 4)
	for i, p := range parts {
		locals[i], _ = BuildLocal(p, 16)
		locals[i].BuildMasks()
	}
	g := NewGlobal(locals)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 400; trial++ {
		k := 1 + rng.Intn(3)
		raw := make([]uint32, k)
		for j := range raw {
			raw[j] = uint32(rng.Intn(90))
		}
		x := itemset.New(raw...)
		sum := 0
		for _, l := range locals {
			sum += l.MaxPossible(x)
		}
		if got := g.MaxPossible(x); got != sum {
			t.Fatalf("cascade MaxPossible(%v) = %d, segment sum %d", x, got, sum)
		}
		if sup := support(db, x); g.MaxPossible(x) < sup {
			t.Fatalf("cascade bound %d < support %d for %v", g.MaxPossible(x), sup, x)
		}
		threshold := 1 + rng.Intn(5)
		want := sum >= threshold
		if got, _ := g.BoundReaches(x, threshold); got != want {
			t.Fatalf("cascade BoundReaches(%v, %d) = %v, want %v", x, threshold, got, want)
		}
		if k == 2 {
			if got, _ := g.PairBoundReaches(x[0], x[1], threshold); got != want {
				t.Fatalf("cascade PairBoundReaches(%v, %d) = %v, want %v", x, threshold, got, want)
			}
		}
	}
}

// TestPositivePeers: a peer whose local database contains the itemset must
// always be reported.
func TestPositivePeersComplete(t *testing.T) {
	db := makeDB(77, 120, 80, 9)
	parts := db.SplitChronological(4)
	locals := make([]*Local, 4)
	for i, p := range parts {
		locals[i], _ = BuildLocal(p, 8)
	}
	g := NewGlobal(locals)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a, b := uint32(rng.Intn(80)), uint32(rng.Intn(80))
		if a == b {
			continue
		}
		x := itemset.New(a, b)
		peers := g.PositivePeers(x, 0)
		reported := map[int]bool{}
		for _, p := range peers {
			reported[p] = true
		}
		for i := 1; i < 4; i++ {
			if support(parts[i], x) > 0 && !reported[i] {
				t.Fatalf("peer %d holds %v but was not reported", i, x)
			}
		}
	}
}

func TestRetainDropsRowsAndMasks(t *testing.T) {
	db := makeDB(8, 30, 40, 6)
	local, _ := BuildLocal(db, 8)
	local.BuildMasks()
	local.Retain(func(it itemset.Item) bool { return it%2 == 0 })
	for it := itemset.Item(0); it < 40; it++ {
		row, mask := local.Row(it), local.Mask(it)
		if it%2 == 0 {
			continue
		}
		if row != nil || mask != nil {
			t.Fatalf("odd item %d retained (row=%v mask=%v)", it, row != nil, mask != nil)
		}
	}
	// Dropped items bound any superset at zero.
	if got := local.MaxPossible(itemset.New(1, 2)); got != 0 {
		t.Fatalf("bound with dropped item = %d", got)
	}
}

func TestMasksStayInSyncAfterAdd(t *testing.T) {
	l := NewLocal(16)
	l.BuildMasks()
	l.AddOccurrence(5, 3)
	inter, _ := l.MasksIntersect(itemset.New(5))
	if !inter {
		t.Fatal("mask not set by AddOccurrence after BuildMasks")
	}
	ok, _ := l.BoundReaches(itemset.New(5), 1)
	if !ok {
		t.Fatal("bound lost occurrence")
	}
}

func TestCloneIndependent(t *testing.T) {
	l := NewLocal(4)
	l.AddOccurrence(1, 0)
	c := l.Clone()
	c.AddOccurrence(1, 0)
	if l.MaxPossible(itemset.New(1)) != 1 || c.MaxPossible(itemset.New(1)) != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestBytesAccounting(t *testing.T) {
	l := NewLocal(10)
	if l.Bytes() != 0 {
		t.Fatal("empty table has bytes")
	}
	l.AddOccurrence(1, 0)
	l.AddOccurrence(2, 0)
	if l.Bytes() != 2*(4+40) {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
}

func TestPairMasksIntersectMatchesSlow(t *testing.T) {
	f := func(aBits, bBits [4]uint64) bool {
		a, b := aBits[:], bBits[:]
		want := false
		for i := range a {
			if a[i]&b[i] != 0 {
				want = true
			}
		}
		got, _ := PairMasksIntersect(a, b)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewLocalPanicsOnBadEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLocal(0) should panic")
		}
	}()
	NewLocal(0)
}

func TestMasklessBoundPaths(t *testing.T) {
	// Exercise the linear-scan fallbacks (no BuildMasks call).
	db := makeDB(9, 50, 60, 8)
	local, _ := BuildLocal(db, 16)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b := uint32(rng.Intn(60)), uint32(rng.Intn(60))
		if a == b {
			continue
		}
		threshold := 1 + rng.Intn(4)
		want := local.MaxPossible(itemset.New(a, b)) >= threshold
		got, _ := local.PairBoundReachesItems(a, b, threshold)
		if got != want {
			t.Fatalf("maskless pair bound (%d,%d,%d) = %v", a, b, threshold, got)
		}
		gotFree, _ := PairBoundReaches(local.Row(a), local.Row(b), threshold)
		if a != b && gotFree != want {
			t.Fatalf("free pair bound (%d,%d,%d) = %v", a, b, threshold, gotFree)
		}
	}
	// Missing rows bound at zero in every entry point.
	if ok, _ := local.PairBoundReachesItems(999, 1, 1); ok {
		t.Fatal("missing row admitted")
	}
	if ok, _ := local.BoundReaches(itemset.New(999), 1); ok {
		t.Fatal("missing row admitted by BoundReaches")
	}
	if ok, _ := PairBoundReaches(nil, local.Row(1), 1); ok {
		t.Fatal("nil row admitted")
	}
}

func TestGlobalAccessors(t *testing.T) {
	db := makeDB(4, 40, 30, 6)
	parts := db.SplitChronological(2)
	l0, _ := BuildLocal(parts[0], 8)
	l1, _ := BuildLocal(parts[1], 8)
	g := NewGlobal([]*Local{l0, l1})
	if g.NumSegments() != 2 || g.Segment(1) != l1 {
		t.Fatal("segment accessors wrong")
	}
	if l0.Entries() != 8 || l0.NumItems() == 0 {
		t.Fatal("local accessors wrong")
	}
	g.Retain(func(it itemset.Item) bool { return false })
	if l0.NumItems() != 0 || l1.NumItems() != 0 {
		t.Fatal("global Retain did not drop rows")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewGlobal with no segments should panic")
		}
	}()
	NewGlobal(nil)
}

func TestSegmentMaxMatchesPerSegment(t *testing.T) {
	db := makeDB(13, 60, 40, 7)
	parts := db.SplitChronological(3)
	locals := make([]*Local, 3)
	for i, p := range parts {
		locals[i], _ = BuildLocal(p, 8)
	}
	g := NewGlobal(locals)
	x := itemset.New(3, 7)
	sm := g.SegmentMax(x)
	for i, l := range locals {
		if sm[i] != l.MaxPossible(x) {
			t.Fatalf("SegmentMax[%d] = %d, want %d", i, sm[i], l.MaxPossible(x))
		}
	}
}

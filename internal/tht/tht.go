// Package tht implements the TID Hash Tables of the Inverted Hashing and
// Pruning technique (Holt & Chung, IPL 2002; section 2.2 of the IPDPS 2004
// paper).
//
// A THT for an item is a small array of counters: entry j holds the number
// of transactions whose TID hashes to j and that contain the item. For a
// candidate itemset x, summing over entries the minimum counter among x's
// items yields an upper bound on x's support (GetMaxPossibleCount in the
// paper); candidates whose bound is below the minimum support are pruned
// without a counting scan.
//
// In the parallel algorithm the global THT of an item is the *linear
// cascade* (concatenation) of the per-node local THTs rather than an
// entrywise sum. The cascade is deliberately lossless across nodes: it both
// tightens the bound and reveals exactly which peers can possibly contain an
// itemset, which drives the polling step of PMIHP.
//
// Tables are stored as one row-major counter matrix: all rows live in a
// single []uint32 with stride Entries, addressed through a dense item→row
// index. The bound evaluations that run once per candidate pair cost an
// array index instead of a map probe, consecutive rows share cache lines,
// and dropping pruned rows (Retain) compacts the matrix in place, so the
// resident table size tracks the live vocabulary, not the initial one.
package tht

import (
	"fmt"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Local is the TID hash table set of one processing node: one counter row
// of Entries slots per item that occurs in the node's local database, all
// rows backed by a single row-major matrix.
type Local struct {
	entries int
	mw      int // maskWords(entries), cached: fetches run once per candidate pair
	// rowIdx[it] is the row number of item it in data, or -1 when the item
	// has no table. The index is grown on demand to the largest item seen.
	rowIdx []int32
	// rowItem[r] is the item owning row r — the inverse of rowIdx, in row
	// order, which is what lets Retain compact the matrix front-to-back.
	rowItem []itemset.Item
	// data is the counter matrix: row r is data[r*entries : (r+1)*entries].
	data []uint32
	// maskData is the occupancy-mask matrix (stride maskWords), row-aligned
	// with data; only meaningful after BuildMasks (masksBuilt).
	maskData   []uint64
	masksBuilt bool
	// occ[r] is the number of occupied slots of row r (the popcount of its
	// mask), maintained alongside maskData. A saturated row — every slot
	// occupied, the THT signature of a stopword-grade item — lets pair
	// bounds and mask intersections answer popcount queries from this
	// counter without reading the row's mask memory (bound.go); charges
	// are unaffected.
	occ []int32
	// fast1 marks the single-mask-word geometry (entries <= 64, the
	// per-node table of a wide cluster), where pair bounds open-code the
	// one-word mask test.
	fast1 bool
}

// rowChunk is the minimum matrix growth, in rows, so the build scan
// reallocates the backing a handful of times instead of once per item.
const rowChunk = 256

// NewLocal returns an empty Local with the given number of hash entries per
// item. The paper uses 400 entries for the global table, i.e. 400/N per node
// on N nodes.
func NewLocal(entries int) *Local {
	if entries <= 0 {
		panic(fmt.Sprintf("tht: NewLocal(%d)", entries))
	}
	return &Local{entries: entries, mw: (entries + 63) / 64}
}

// NewLocalSized returns an empty Local pre-sized for item ids below
// numItems, so the build scan never grows the row index.
func NewLocalSized(entries, numItems int) *Local {
	l := NewLocal(entries)
	l.rowIdx = make([]int32, numItems)
	for i := range l.rowIdx {
		l.rowIdx[i] = -1
	}
	return l
}

// Entries returns the number of hash slots per item.
func (l *Local) Entries() int { return l.entries }

// NumItems returns the number of items that currently have a table.
func (l *Local) NumItems() int { return len(l.rowItem) }

// hash maps a TID to a slot. TIDs are assigned sequentially in document
// order, so modulo hashing spreads them uniformly.
func (l *Local) hash(tid txdb.TID) int { return int(tid) % l.entries }

// ensureItem grows the row index to cover item it.
func (l *Local) ensureItem(it itemset.Item) {
	if int(it) >= len(l.rowIdx) {
		idx := make([]int32, int(it)+1)
		copy(idx, l.rowIdx)
		for i := len(l.rowIdx); i < len(idx); i++ {
			idx[i] = -1
		}
		l.rowIdx = idx
	}
}

// addRow appends a zeroed row for item it to the matrix and returns its row
// number. Growth is amortized (doubling, at least rowChunk rows); existing
// row slices handed out by Row stay valid only until the next growth, which
// is why rows are only added during build scans and shard merges.
func (l *Local) addRow(it itemset.Item) int32 {
	r := int32(len(l.rowItem))
	l.rowItem = append(l.rowItem, it)
	l.rowIdx[it] = r
	h := l.entries
	need := len(l.data) + h
	if cap(l.data) >= need {
		// Re-slicing within capacity may expose a stale region truncated by
		// Retain; zero it explicitly.
		l.data = l.data[:need]
		clear(l.data[need-h:])
	} else {
		newCap := 2 * cap(l.data)
		if min := rowChunk * h; newCap < min {
			newCap = min
		}
		if newCap < need {
			newCap = need
		}
		nd := make([]uint32, need, newCap)
		copy(nd, l.data)
		l.data = nd
	}
	if l.masksBuilt {
		w := l.maskWords()
		mneed := len(l.maskData) + w
		if cap(l.maskData) >= mneed {
			l.maskData = l.maskData[:mneed]
			clear(l.maskData[mneed-w:])
		} else {
			nm := make([]uint64, mneed, 2*mneed)
			copy(nm, l.maskData)
			l.maskData = nm
		}
		l.occ = append(l.occ, 0)
	}
	return r
}

// AddOccurrence records that the transaction with the given TID contains the
// item. It is called while counting 1-itemsets during the first pass.
func (l *Local) AddOccurrence(it itemset.Item, tid txdb.TID) {
	l.ensureItem(it)
	r := l.rowIdx[it]
	if r < 0 {
		r = l.addRow(it)
	}
	j := l.hash(tid)
	l.data[int(r)*l.entries+j]++
	if l.masksBuilt {
		p := &l.maskData[int(r)*l.maskWords()+j/64]
		bit := uint64(1) << (j % 64)
		if *p&bit == 0 {
			*p |= bit
			l.occ[r]++
		}
	}
}

// BuildLocal scans a database once and returns the completed Local alongside
// the per-item occurrence counts (support of each 1-itemset).
func BuildLocal(db *txdb.DB, entries int) (*Local, []int) {
	return BuildLocalShards(db, entries, 1)
}

// newLocalFromCounts returns a Local whose matrix is exactly sized for the
// items with a positive count, rows in item order. The counters are zero;
// the caller fills them.
func newLocalFromCounts(entries int, counts []int) *Local {
	l := NewLocalSized(entries, len(counts))
	rows := 0
	for _, c := range counts {
		if c > 0 {
			rows++
		}
	}
	l.rowItem = make([]itemset.Item, 0, rows)
	l.data = make([]uint32, rows*entries)
	for it, c := range counts {
		if c > 0 {
			l.rowIdx[it] = int32(len(l.rowItem))
			l.rowItem = append(l.rowItem, itemset.Item(it))
		}
	}
	return l
}

// BuildLocalShards is BuildLocal with the scan sharded across up to workers
// goroutines. Each shard builds a private table over a contiguous
// transaction range; the shards merge by entrywise summation, so the result
// is identical to the serial build for every worker count. The scan walks
// the database's CSR arrays directly in two passes — item counts first, then
// counter fills into an exactly-sized matrix, so the build never grows (and
// never re-copies) the backing. The hash slot — a function of the TID alone
// — is computed once per transaction, not once per occurrence.
func BuildLocalShards(db *txdb.DB, entries, workers int) (*Local, []int) {
	n := db.Len()
	numItems := db.NumItems()
	items, offsets, tids := db.CSR()
	build := func(lo, hi int) (*Local, []int) {
		counts := make([]int, numItems)
		for _, it := range items[offsets[lo]:offsets[hi]] {
			counts[it]++
		}
		l := newLocalFromCounts(entries, counts)
		for i := lo; i < hi; i++ {
			j := l.hash(tids[i])
			for _, it := range items[offsets[i]:offsets[i+1]] {
				l.data[int(l.rowIdx[it])*entries+j]++
			}
		}
		return l, counts
	}
	// Each shard allocates and fills a whole Local for its range, so the
	// build uses the static one-range-per-shard partition: the chunk-queue
	// scheduler would construct (and merge) one table per chunk.
	shards := mining.NumStatic(n, workers)
	if shards <= 1 {
		return build(0, n)
	}
	locals := make([]*Local, shards)
	countsByShard := make([][]int, shards)
	mining.RunStatic(n, workers, func(s, lo, hi int) {
		locals[s], countsByShard[s] = build(lo, hi)
	})
	counts := countsByShard[0]
	for s := 1; s < shards; s++ {
		for it, c := range countsByShard[s] {
			counts[it] += c
		}
	}
	// The union matrix is exactly sized from the merged counts, so folding
	// the shard tables in never adds a row.
	merged := newLocalFromCounts(entries, counts)
	for _, l := range locals {
		merged.addFrom(l)
	}
	return merged, counts
}

// addFrom folds another table of the same geometry into l by entrywise
// summation (the shard merge of BuildLocalShards).
func (l *Local) addFrom(o *Local) {
	if o.entries != l.entries {
		panic("tht: addFrom entry mismatch")
	}
	h := l.entries
	for r, it := range o.rowItem {
		src := o.data[r*h : (r+1)*h]
		l.ensureItem(it)
		dr := l.rowIdx[it]
		if dr < 0 {
			dr = l.addRow(it)
		}
		dst := l.data[int(dr)*h : int(dr)*h+h]
		for j, c := range src {
			dst[j] += c
		}
	}
}

// Row returns the counter array of an item, or nil when the item has no
// table (never occurred, or its table was dropped). The returned slice
// aliases the matrix and stays valid until the next addRow growth or Retain
// compaction.
func (l *Local) Row(it itemset.Item) []uint32 {
	if int(it) >= len(l.rowIdx) {
		return nil
	}
	r := l.rowIdx[it]
	if r < 0 {
		return nil
	}
	lo := int(r) * l.entries
	return l.data[lo : lo+l.entries : lo+l.entries]
}

// mask returns the occupancy mask row of an item (nil when absent).
func (l *Local) mask(it itemset.Item) []uint64 {
	if int(it) >= len(l.rowIdx) {
		return nil
	}
	r := l.rowIdx[it]
	if r < 0 {
		return nil
	}
	w := l.maskWords()
	lo := int(r) * w
	return l.maskData[lo : lo+w : lo+w]
}

// Retain drops the table of every item for which keep returns false —
// "after the first pass we can remove the THTs of the items which are not
// contained in the set of frequent 1-itemsets", and more generally after
// pass k for items in no frequent k-itemset. Surviving rows are compacted
// to the front of the matrix and the backing truncated, so a pruned
// vocabulary actually shrinks the resident table.
func (l *Local) Retain(keep func(itemset.Item) bool) {
	h := l.entries
	w := l.maskWords()
	next := 0
	for r, it := range l.rowItem {
		if !keep(it) {
			l.rowIdx[it] = -1
			continue
		}
		if next != r {
			copy(l.data[next*h:(next+1)*h], l.data[r*h:(r+1)*h])
			if l.masksBuilt {
				copy(l.maskData[next*w:(next+1)*w], l.maskData[r*w:(r+1)*w])
				l.occ[next] = l.occ[r]
			}
			l.rowIdx[it] = int32(next)
			l.rowItem[next] = it
		}
		next++
	}
	l.rowItem = l.rowItem[:next]
	l.data = l.data[:next*h]
	if l.masksBuilt {
		l.maskData = l.maskData[:next*w]
		l.occ = l.occ[:next]
	}
}

// MaxPossible returns the IHP upper bound on the local support of the
// itemset: the sum over slots of the minimum counter among the itemset's
// items. An item without a table bounds the count at zero.
func (l *Local) MaxPossible(x itemset.Itemset) int {
	if len(x) == 0 {
		return 0
	}
	var rowsBuf [maxStackItems][]uint32
	rows, ok := l.fetchRows(x, &rowsBuf)
	if !ok {
		return 0
	}
	total := 0
	for j := 0; j < l.entries; j++ {
		min := rows[0][j]
		for i := 1; i < len(rows); i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		total += int(min)
	}
	return total
}

// maxStackItems is the itemset size up to which bound evaluations keep their
// row pointers in a stack array instead of allocating.
const maxStackItems = 8

// fetchRows gathers the counter rows of x into buf (or a fresh slice for
// oversized itemsets); ok is false when any item has no table.
func (l *Local) fetchRows(x itemset.Itemset, buf *[maxStackItems][]uint32) (rows [][]uint32, ok bool) {
	if len(x) <= maxStackItems {
		rows = buf[:len(x)]
	} else {
		rows = make([][]uint32, len(x))
	}
	for i, it := range x {
		rows[i] = l.Row(it)
		if rows[i] == nil {
			return nil, false
		}
	}
	return rows, true
}

// Bytes approximates the wire size of the table set when exchanged between
// nodes (4 bytes per slot plus a 4-byte item id per row). Used by the
// cluster cost model.
func (l *Local) Bytes() int { return len(l.rowItem) * (4 + 4*l.entries) }

// MemBytes returns the resident size of the matrix and its indexes.
func (l *Local) MemBytes() int64 {
	return int64(4*len(l.rowIdx)) + int64(4*len(l.rowItem)) +
		int64(4*len(l.data)) + int64(8*len(l.maskData)) + int64(4*len(l.occ))
}

// Clone returns a deep copy (exchanged tables must not alias the sender's).
// Masks are not cloned; the receiver rebuilds them after its own Retain.
func (l *Local) Clone() *Local {
	c := NewLocal(l.entries)
	c.rowIdx = append([]int32(nil), l.rowIdx...)
	c.rowItem = append([]itemset.Item(nil), l.rowItem...)
	c.data = append([]uint32(nil), l.data...)
	return c
}

// Global is the cascaded global THT view of one node: the local THTs of all
// nodes in node order. Segment p corresponds to processing node p.
type Global struct {
	segments []*Local
}

// NewGlobal assembles the cascade from per-node locals, in node order.
func NewGlobal(segments []*Local) *Global {
	if len(segments) == 0 {
		panic("tht: NewGlobal with no segments")
	}
	return &Global{segments: segments}
}

// NumSegments returns the number of nodes contributing to the cascade.
func (g *Global) NumSegments() int { return len(g.segments) }

// MemBytes returns the resident size of the whole cascade — every
// segment's matrix and indexes. An observability gauge: the per-node
// metrics accounting charges only the node's own segment (the other
// segments are shared views in-process and remote tables on a cluster).
func (g *Global) MemBytes() int64 {
	var b int64
	for _, seg := range g.segments {
		b += seg.MemBytes()
	}
	return b
}

// Segment returns node p's contribution.
func (g *Global) Segment(p int) *Local { return g.segments[p] }

// MaxPossible returns the IHP upper bound on the *global* support of the
// itemset: the bound of the cascaded table, which equals the sum of the
// per-segment bounds.
func (g *Global) MaxPossible(x itemset.Itemset) int {
	total := 0
	for _, seg := range g.segments {
		total += seg.MaxPossible(x)
	}
	return total
}

// SegmentMax returns the per-segment upper bounds for the itemset, indexed
// by node. A zero at node p proves node p's local database cannot contain
// the itemset, so p need not be polled.
func (g *Global) SegmentMax(x itemset.Itemset) []int {
	out := make([]int, len(g.segments))
	for p, seg := range g.segments {
		out[p] = seg.MaxPossible(x)
	}
	return out
}

// PositivePeers returns the nodes (other than self) whose segment bound for
// the itemset is positive — exactly the peers PMIHP polls for local support
// counts.
func (g *Global) PositivePeers(x itemset.Itemset, self int) []int {
	var peers []int
	for p, seg := range g.segments {
		if p == self {
			continue
		}
		if seg.MaxPossible(x) > 0 {
			peers = append(peers, p)
		}
	}
	return peers
}

// Retain drops per-item rows across every segment.
func (g *Global) Retain(keep func(itemset.Item) bool) {
	for _, seg := range g.segments {
		seg.Retain(keep)
	}
}

// Package tht implements the TID Hash Tables of the Inverted Hashing and
// Pruning technique (Holt & Chung, IPL 2002; section 2.2 of the IPDPS 2004
// paper).
//
// A THT for an item is a small array of counters: entry j holds the number
// of transactions whose TID hashes to j and that contain the item. For a
// candidate itemset x, summing over entries the minimum counter among x's
// items yields an upper bound on x's support (GetMaxPossibleCount in the
// paper); candidates whose bound is below the minimum support are pruned
// without a counting scan.
//
// In the parallel algorithm the global THT of an item is the *linear
// cascade* (concatenation) of the per-node local THTs rather than an
// entrywise sum. The cascade is deliberately lossless across nodes: it both
// tightens the bound and reveals exactly which peers can possibly contain an
// itemset, which drives the polling step of PMIHP.
//
// Tables are stored densely: per-item counter rows and occupancy masks live
// in slices indexed by item id, so the bound evaluations that run once per
// candidate pair cost an array index instead of a map probe. (The map-backed
// representation put mapaccess at the top of every mining profile.)
package tht

import (
	"fmt"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Local is the TID hash table set of one processing node: one counter array
// of Entries slots per item that occurs in the node's local database.
type Local struct {
	entries int
	// rows[it] is the counter array of item it, nil when the item has no
	// table. The slice is grown on demand to the largest item seen.
	rows [][]uint32
	// maskRows[it] is the occupancy mask of item it; only meaningful after
	// BuildMasks (masksBuilt).
	maskRows   [][]uint64
	masksBuilt bool
	nItems     int // number of non-nil rows

	// rowSlab backs counter rows in chunks of rowSlabChunk rows, so the
	// build scan allocates once per chunk instead of once per item. Chunks
	// are abandoned (not grown) when full, keeping handed-out rows valid.
	rowSlab []uint32
}

// rowSlabChunk is the number of counter rows carved per slab chunk.
const rowSlabChunk = 256

// newRow carves a zeroed counter row from the slab.
func (l *Local) newRow() []uint32 {
	if cap(l.rowSlab)-len(l.rowSlab) < l.entries {
		l.rowSlab = make([]uint32, 0, rowSlabChunk*l.entries)
	}
	n := len(l.rowSlab)
	l.rowSlab = l.rowSlab[:n+l.entries]
	return l.rowSlab[n : n+l.entries : n+l.entries]
}

// NewLocal returns an empty Local with the given number of hash entries per
// item. The paper uses 400 entries for the global table, i.e. 400/N per node
// on N nodes.
func NewLocal(entries int) *Local {
	if entries <= 0 {
		panic(fmt.Sprintf("tht: NewLocal(%d)", entries))
	}
	return &Local{entries: entries}
}

// NewLocalSized returns an empty Local pre-sized for item ids below
// numItems, so the build scan never grows the row index.
func NewLocalSized(entries, numItems int) *Local {
	l := NewLocal(entries)
	l.rows = make([][]uint32, numItems)
	return l
}

// Entries returns the number of hash slots per item.
func (l *Local) Entries() int { return l.entries }

// NumItems returns the number of items that currently have a table.
func (l *Local) NumItems() int { return l.nItems }

// hash maps a TID to a slot. TIDs are assigned sequentially in document
// order, so modulo hashing spreads them uniformly.
func (l *Local) hash(tid txdb.TID) int { return int(tid) % l.entries }

// ensureItem grows the row index to cover item it.
func (l *Local) ensureItem(it itemset.Item) {
	if int(it) >= len(l.rows) {
		rows := make([][]uint32, int(it)+1)
		copy(rows, l.rows)
		l.rows = rows
		if l.masksBuilt {
			masks := make([][]uint64, int(it)+1)
			copy(masks, l.maskRows)
			l.maskRows = masks
		}
	}
}

// AddOccurrence records that the transaction with the given TID contains the
// item. It is called while counting 1-itemsets during the first pass.
func (l *Local) AddOccurrence(it itemset.Item, tid txdb.TID) {
	l.ensureItem(it)
	row := l.rows[it]
	if row == nil {
		row = l.newRow()
		l.rows[it] = row
		l.nItems++
	}
	j := l.hash(tid)
	row[j]++
	if l.masksBuilt {
		m := l.maskRows[it]
		if m == nil {
			m = make([]uint64, l.maskWords())
			l.maskRows[it] = m
		}
		m[j/64] |= 1 << (j % 64)
	}
}

// BuildLocal scans a database once and returns the completed Local alongside
// the per-item occurrence counts (support of each 1-itemset).
func BuildLocal(db *txdb.DB, entries int) (*Local, []int) {
	return BuildLocalShards(db, entries, 1)
}

// BuildLocalShards is BuildLocal with the scan sharded across up to workers
// goroutines. Each shard builds a private table over a contiguous
// transaction range; the shards merge by entrywise summation, so the result
// is identical to the serial build for every worker count.
func BuildLocalShards(db *txdb.DB, entries, workers int) (*Local, []int) {
	n := db.Len()
	shards := mining.NumShards(n, workers)
	if shards <= 1 {
		l := NewLocalSized(entries, db.NumItems())
		counts := make([]int, db.NumItems())
		db.Each(func(t *txdb.Transaction) {
			for _, it := range t.Items {
				counts[it]++
				l.AddOccurrence(it, t.TID)
			}
		})
		return l, counts
	}
	locals := make([]*Local, shards)
	countsByShard := make([][]int, shards)
	mining.RunShards(n, workers, func(s, lo, hi int) {
		l := NewLocalSized(entries, db.NumItems())
		counts := make([]int, db.NumItems())
		for i := lo; i < hi; i++ {
			t := db.Tx(i)
			for _, it := range t.Items {
				counts[it]++
				l.AddOccurrence(it, t.TID)
			}
		}
		locals[s], countsByShard[s] = l, counts
	})
	merged, counts := locals[0], countsByShard[0]
	for s := 1; s < shards; s++ {
		merged.addFrom(locals[s])
		for it, c := range countsByShard[s] {
			counts[it] += c
		}
	}
	return merged, counts
}

// addFrom folds another table of the same geometry into l by entrywise
// summation (the shard merge of BuildLocalShards).
func (l *Local) addFrom(o *Local) {
	if o.entries != l.entries {
		panic("tht: addFrom entry mismatch")
	}
	for it, row := range o.rows {
		if row == nil {
			continue
		}
		dst := l.rows[it]
		if dst == nil {
			l.ensureItem(itemset.Item(it))
			dst = l.newRow()
			l.rows[it] = dst
			l.nItems++
		}
		for j, c := range row {
			dst[j] += c
		}
	}
}

// Row returns the counter array of an item, or nil when the item has no
// table (never occurred, or its table was dropped). The returned slice is
// owned by the table.
func (l *Local) Row(it itemset.Item) []uint32 {
	if int(it) >= len(l.rows) {
		return nil
	}
	return l.rows[it]
}

// mask returns the occupancy mask row of an item (nil when absent).
func (l *Local) mask(it itemset.Item) []uint64 {
	if int(it) >= len(l.maskRows) {
		return nil
	}
	return l.maskRows[it]
}

// Retain drops the table of every item for which keep returns false —
// "after the first pass we can remove the THTs of the items which are not
// contained in the set of frequent 1-itemsets", and more generally after
// pass k for items in no frequent k-itemset.
func (l *Local) Retain(keep func(itemset.Item) bool) {
	for it := range l.rows {
		if l.rows[it] != nil && !keep(itemset.Item(it)) {
			l.rows[it] = nil
			l.nItems--
			if it < len(l.maskRows) {
				l.maskRows[it] = nil
			}
		}
	}
}

// MaxPossible returns the IHP upper bound on the local support of the
// itemset: the sum over slots of the minimum counter among the itemset's
// items. An item without a table bounds the count at zero.
func (l *Local) MaxPossible(x itemset.Itemset) int {
	if len(x) == 0 {
		return 0
	}
	var rowsBuf [maxStackItems][]uint32
	rows, ok := l.fetchRows(x, &rowsBuf)
	if !ok {
		return 0
	}
	total := 0
	for j := 0; j < l.entries; j++ {
		min := rows[0][j]
		for i := 1; i < len(rows); i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		total += int(min)
	}
	return total
}

// maxStackItems is the itemset size up to which bound evaluations keep their
// row pointers in a stack array instead of allocating.
const maxStackItems = 8

// fetchRows gathers the counter rows of x into buf (or a fresh slice for
// oversized itemsets); ok is false when any item has no table.
func (l *Local) fetchRows(x itemset.Itemset, buf *[maxStackItems][]uint32) (rows [][]uint32, ok bool) {
	if len(x) <= maxStackItems {
		rows = buf[:len(x)]
	} else {
		rows = make([][]uint32, len(x))
	}
	for i, it := range x {
		rows[i] = l.Row(it)
		if rows[i] == nil {
			return nil, false
		}
	}
	return rows, true
}

// Bytes approximates the wire size of the table set when exchanged between
// nodes (4 bytes per slot plus a 4-byte item id per row). Used by the
// cluster cost model.
func (l *Local) Bytes() int { return l.nItems * (4 + 4*l.entries) }

// Clone returns a deep copy (exchanged tables must not alias the sender's).
func (l *Local) Clone() *Local {
	c := NewLocal(l.entries)
	c.rows = make([][]uint32, len(l.rows))
	for it, row := range l.rows {
		if row == nil {
			continue
		}
		r := make([]uint32, len(row))
		copy(r, row)
		c.rows[it] = r
		c.nItems++
	}
	return c
}

// Global is the cascaded global THT view of one node: the local THTs of all
// nodes in node order. Segment p corresponds to processing node p.
type Global struct {
	segments []*Local
}

// NewGlobal assembles the cascade from per-node locals, in node order.
func NewGlobal(segments []*Local) *Global {
	if len(segments) == 0 {
		panic("tht: NewGlobal with no segments")
	}
	return &Global{segments: segments}
}

// NumSegments returns the number of nodes contributing to the cascade.
func (g *Global) NumSegments() int { return len(g.segments) }

// Segment returns node p's contribution.
func (g *Global) Segment(p int) *Local { return g.segments[p] }

// MaxPossible returns the IHP upper bound on the *global* support of the
// itemset: the bound of the cascaded table, which equals the sum of the
// per-segment bounds.
func (g *Global) MaxPossible(x itemset.Itemset) int {
	total := 0
	for _, seg := range g.segments {
		total += seg.MaxPossible(x)
	}
	return total
}

// SegmentMax returns the per-segment upper bounds for the itemset, indexed
// by node. A zero at node p proves node p's local database cannot contain
// the itemset, so p need not be polled.
func (g *Global) SegmentMax(x itemset.Itemset) []int {
	out := make([]int, len(g.segments))
	for p, seg := range g.segments {
		out[p] = seg.MaxPossible(x)
	}
	return out
}

// PositivePeers returns the nodes (other than self) whose segment bound for
// the itemset is positive — exactly the peers PMIHP polls for local support
// counts.
func (g *Global) PositivePeers(x itemset.Itemset, self int) []int {
	var peers []int
	for p, seg := range g.segments {
		if p == self {
			continue
		}
		if seg.MaxPossible(x) > 0 {
			peers = append(peers, p)
		}
	}
	return peers
}

// Retain drops per-item rows across every segment.
func (g *Global) Retain(keep func(itemset.Item) bool) {
	for _, seg := range g.segments {
		seg.Retain(keep)
	}
}

// Package tht implements the TID Hash Tables of the Inverted Hashing and
// Pruning technique (Holt & Chung, IPL 2002; section 2.2 of the IPDPS 2004
// paper).
//
// A THT for an item is a small array of counters: entry j holds the number
// of transactions whose TID hashes to j and that contain the item. For a
// candidate itemset x, summing over entries the minimum counter among x's
// items yields an upper bound on x's support (GetMaxPossibleCount in the
// paper); candidates whose bound is below the minimum support are pruned
// without a counting scan.
//
// In the parallel algorithm the global THT of an item is the *linear
// cascade* (concatenation) of the per-node local THTs rather than an
// entrywise sum. The cascade is deliberately lossless across nodes: it both
// tightens the bound and reveals exactly which peers can possibly contain an
// itemset, which drives the polling step of PMIHP.
package tht

import (
	"fmt"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

// Local is the TID hash table set of one processing node: one counter array
// of Entries slots per item that occurs in the node's local database.
type Local struct {
	entries int
	counts  map[itemset.Item][]uint32
	masks   map[itemset.Item][]uint64 // occupancy masks, see mask.go
}

// NewLocal returns an empty Local with the given number of hash entries per
// item. The paper uses 400 entries for the global table, i.e. 400/N per node
// on N nodes.
func NewLocal(entries int) *Local {
	if entries <= 0 {
		panic(fmt.Sprintf("tht: NewLocal(%d)", entries))
	}
	return &Local{entries: entries, counts: make(map[itemset.Item][]uint32)}
}

// Entries returns the number of hash slots per item.
func (l *Local) Entries() int { return l.entries }

// NumItems returns the number of items that currently have a table.
func (l *Local) NumItems() int { return len(l.counts) }

// hash maps a TID to a slot. TIDs are assigned sequentially in document
// order, so modulo hashing spreads them uniformly.
func (l *Local) hash(tid txdb.TID) int { return int(tid) % l.entries }

// AddOccurrence records that the transaction with the given TID contains the
// item. It is called while counting 1-itemsets during the first pass.
func (l *Local) AddOccurrence(it itemset.Item, tid txdb.TID) {
	row := l.counts[it]
	if row == nil {
		row = make([]uint32, l.entries)
		l.counts[it] = row
	}
	j := l.hash(tid)
	row[j]++
	if l.masks != nil {
		m := l.masks[it]
		if m == nil {
			m = make([]uint64, l.maskWords())
			l.masks[it] = m
		}
		m[j/64] |= 1 << (j % 64)
	}
}

// BuildLocal scans a database once and returns the completed Local alongside
// the per-item occurrence counts (support of each 1-itemset).
func BuildLocal(db *txdb.DB, entries int) (*Local, []int) {
	l := NewLocal(entries)
	counts := make([]int, db.NumItems())
	db.Each(func(t *txdb.Transaction) {
		for _, it := range t.Items {
			counts[it]++
			l.AddOccurrence(it, t.TID)
		}
	})
	return l, counts
}

// Row returns the counter array of an item, or nil when the item has no
// table (never occurred, or its table was dropped). The returned slice is
// owned by the table.
func (l *Local) Row(it itemset.Item) []uint32 { return l.counts[it] }

// Retain drops the table of every item for which keep returns false —
// "after the first pass we can remove the THTs of the items which are not
// contained in the set of frequent 1-itemsets", and more generally after
// pass k for items in no frequent k-itemset.
func (l *Local) Retain(keep func(itemset.Item) bool) {
	for it := range l.counts {
		if !keep(it) {
			delete(l.counts, it)
			delete(l.masks, it)
		}
	}
}

// MaxPossible returns the IHP upper bound on the local support of the
// itemset: the sum over slots of the minimum counter among the itemset's
// items. An item without a table bounds the count at zero.
func (l *Local) MaxPossible(x itemset.Itemset) int {
	if len(x) == 0 {
		return 0
	}
	rows := make([][]uint32, len(x))
	for i, it := range x {
		rows[i] = l.counts[it]
		if rows[i] == nil {
			return 0
		}
	}
	total := 0
	for j := 0; j < l.entries; j++ {
		min := rows[0][j]
		for i := 1; i < len(rows); i++ {
			if rows[i][j] < min {
				min = rows[i][j]
			}
		}
		total += int(min)
	}
	return total
}

// Bytes approximates the wire size of the table set when exchanged between
// nodes (4 bytes per slot plus a 4-byte item id per row). Used by the
// cluster cost model.
func (l *Local) Bytes() int { return len(l.counts) * (4 + 4*l.entries) }

// Clone returns a deep copy (exchanged tables must not alias the sender's).
func (l *Local) Clone() *Local {
	c := NewLocal(l.entries)
	for it, row := range l.counts {
		r := make([]uint32, len(row))
		copy(r, row)
		c.counts[it] = r
	}
	return c
}

// Global is the cascaded global THT view of one node: the local THTs of all
// nodes in node order. Segment p corresponds to processing node p.
type Global struct {
	segments []*Local
}

// NewGlobal assembles the cascade from per-node locals, in node order.
func NewGlobal(segments []*Local) *Global {
	if len(segments) == 0 {
		panic("tht: NewGlobal with no segments")
	}
	return &Global{segments: segments}
}

// NumSegments returns the number of nodes contributing to the cascade.
func (g *Global) NumSegments() int { return len(g.segments) }

// Segment returns node p's contribution.
func (g *Global) Segment(p int) *Local { return g.segments[p] }

// MaxPossible returns the IHP upper bound on the *global* support of the
// itemset: the bound of the cascaded table, which equals the sum of the
// per-segment bounds.
func (g *Global) MaxPossible(x itemset.Itemset) int {
	total := 0
	for _, seg := range g.segments {
		total += seg.MaxPossible(x)
	}
	return total
}

// SegmentMax returns the per-segment upper bounds for the itemset, indexed
// by node. A zero at node p proves node p's local database cannot contain
// the itemset, so p need not be polled.
func (g *Global) SegmentMax(x itemset.Itemset) []int {
	out := make([]int, len(g.segments))
	for p, seg := range g.segments {
		out[p] = seg.MaxPossible(x)
	}
	return out
}

// PositivePeers returns the nodes (other than self) whose segment bound for
// the itemset is positive — exactly the peers PMIHP polls for local support
// counts.
func (g *Global) PositivePeers(x itemset.Itemset, self int) []int {
	var peers []int
	for p, seg := range g.segments {
		if p == self {
			continue
		}
		if seg.MaxPossible(x) > 0 {
			peers = append(peers, p)
		}
	}
	return peers
}

// Retain drops per-item rows across every segment.
func (g *Global) Retain(keep func(itemset.Item) bool) {
	for _, seg := range g.segments {
		seg.Retain(keep)
	}
}

package tht

import "pmihp/internal/itemset"

// Per-item occupancy bitmasks over the THT slots. Intersecting the masks of
// an itemset's members decides "can the IHP bound be nonzero at all?" in a
// handful of word operations instead of a full slot scan — the decisive
// fast path when the pruning threshold is 1 or 2 (the low-support regime the
// paper targets), where most candidate pairs never co-hash at all. The mask
// is an implementation device for the same table the paper defines; work
// charging for mask words uses the same CostTHTSlot rate as slot scans.

// maskWords returns the number of 64-bit words covering the slot space.
func (l *Local) maskWords() int { return l.mw }

// BuildMasks materializes the occupancy masks for every current row. Call
// after Retain; AddOccurrence after BuildMasks keeps masks in sync.
func (l *Local) BuildMasks() {
	w := l.maskWords()
	h := l.entries
	// One flat mask matrix, row-aligned with the counter matrix: built once
	// per run, right after Retain, when the live row count is known.
	l.maskData = make([]uint64, len(l.rowItem)*w)
	l.occ = make([]int32, len(l.rowItem))
	l.masksBuilt = true
	l.fast1 = w == 1
	for r := range l.rowItem {
		row := l.data[r*h : (r+1)*h]
		mask := l.maskData[r*w : (r+1)*w]
		n := int32(0)
		for j, c := range row {
			if c > 0 {
				mask[j/64] |= 1 << (j % 64)
				n++
			}
		}
		l.occ[r] = n
	}
}

// HasMasks reports whether BuildMasks has been called.
func (l *Local) HasMasks() bool { return l.masksBuilt }

// Mask returns the occupancy mask of an item (nil when masks are not built
// or the item has no row).
func (l *Local) Mask(it itemset.Item) []uint64 {
	if !l.masksBuilt {
		return nil
	}
	return l.mask(it)
}

// MasksIntersect reports whether every item of x has a row and the rows
// share at least one occupied slot, along with the number of mask words
// examined (charged at the slot rate). When masks are not built it returns
// intersect=true, words=0 so callers fall through to the slot scan.
func (l *Local) MasksIntersect(x itemset.Itemset) (intersect bool, words int) {
	if !l.masksBuilt {
		return true, 0
	}
	w := l.maskWords()
	var acc []uint64
	for _, it := range x {
		m := l.mask(it)
		if m == nil {
			return false, words
		}
		if acc == nil {
			acc = append(acc[:0:0], m...)
			continue
		}
		any := uint64(0)
		for j := 0; j < w; j++ {
			acc[j] &= m[j]
			any |= acc[j]
		}
		words += w
		if any == 0 {
			return false, words
		}
	}
	return true, words
}

// PairMasksIntersect is MasksIntersect for two pre-fetched masks.
func PairMasksIntersect(a, b []uint64) (intersect bool, words int) {
	if a == nil || b == nil {
		return true, 0
	}
	for j := range a {
		if a[j]&b[j] != 0 {
			return true, j + 1
		}
	}
	return false, len(a)
}

package tht

import (
	"testing"

	"pmihp/internal/itemset"
)

func benchLocal(b *testing.B, entries int, masks bool) *Local {
	b.Helper()
	db := makeDB(1, 400, 2000, 60)
	l, _ := BuildLocal(db, entries)
	if masks {
		l.BuildMasks()
	}
	return l
}

func BenchmarkPairBoundMasked(b *testing.B) {
	l := benchLocal(b, 400, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := itemset.Item(i % 2000)
		c := itemset.Item((i*7 + 1) % 2000)
		if a != c {
			l.PairBoundReachesItems(a, c, 2)
		}
	}
}

func BenchmarkPairBoundMaskless(b *testing.B) {
	l := benchLocal(b, 400, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := itemset.Item(i % 2000)
		c := itemset.Item((i*7 + 1) % 2000)
		if a != c {
			l.PairBoundReachesItems(a, c, 2)
		}
	}
}

func BenchmarkTripleBoundMasked(b *testing.B) {
	l := benchLocal(b, 400, true)
	x := make(itemset.Itemset, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x[:0]
		x = append(x, itemset.Item(i%1900), itemset.Item(i%1900+50), itemset.Item(i%1900+90))
		l.BoundReaches(x, 2)
	}
}

func BenchmarkBuildLocal(b *testing.B) {
	db := makeDB(1, 400, 2000, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildLocal(db, 400)
	}
}

// BenchmarkPollPeers measures the batch peer-classification kernel behind
// PMIHP's flush: one PollPeers call versus a BoundReaches(x, 1) per peer
// with per-call row fetches.
func BenchmarkPollPeers(b *testing.B) {
	locals := make([]*Local, 8)
	for s := range locals {
		l, _ := BuildLocal(makeDB(int64(s+1), 50, 2000, 60), 50)
		l.BuildMasks()
		locals[s] = l
	}
	g := NewGlobal(locals)
	x := itemset.New(3, 11, 42)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peers, _ := g.PollPeers(x, 0, buf)
		buf = peers
	}
}

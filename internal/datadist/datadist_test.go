package datadist

import (
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func smallDB(t testing.TB) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(corpus.CorpusB(corpus.Small))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

func TestMatchesApriori(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.06, MaxK: 4}
	want, err := apriori.Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		got, err := Mine(db, Config{Nodes: nodes}, opts)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if ok, diff := mining.SameFrequentSets(want, got.Result); !ok {
			t.Fatalf("nodes=%d: %s", nodes, diff)
		}
	}
}

// TestMemoryShareBelowCD is DD's defining property: its per-node candidate
// memory is roughly 1/N of Count Distribution's.
func TestMemoryShareBelowCD(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.05, MaxK: 2}
	cd, err := countdist.Mine(db, countdist.Config{Nodes: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := Mine(db, Config{Nodes: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cdPeak := cd.Nodes[0].Metrics.PeakCandidateBytes
	ddPeak := dd.Nodes[0].Metrics.PeakCandidateBytes
	if ddPeak*2 >= cdPeak {
		t.Fatalf("DD peak %d not well below CD peak %d", ddPeak, cdPeak)
	}
	// And a budget that kills CD admits DD.
	budget := (ddPeak + cdPeak) / 2
	bopts := opts
	bopts.MemoryBudget = budget
	if _, err := countdist.Mine(db, countdist.Config{Nodes: 4}, bopts); !mining.IsMemoryErr(err) {
		t.Fatalf("CD should OOM at %d, got %v", budget, err)
	}
	if _, err := Mine(db, Config{Nodes: 4}, bopts); err != nil {
		t.Fatalf("DD should run at %d: %v", budget, err)
	}
}

// TestShipsDatabaseEveryPass is DD's defining cost: from pass 2 on, every
// node broadcasts its local partition to all peers, so total traffic is at
// least (counting passes beyond the first) × (N-1) × database size.
func TestShipsDatabaseEveryPass(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.05, MaxK: 3}
	dd, err := Mine(db, Config{Nodes: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	items := 0
	db.Each(func(tx *txdb.Transaction) { items += len(tx.Items) })
	dbBytes := int64(4*items + 8*db.Len())

	total := int64(0)
	for i := range dd.Nodes {
		total += dd.Nodes[i].Metrics.BytesSent
	}
	passes := dd.Nodes[0].Metrics.Passes
	if passes < 2 {
		t.Fatalf("run too shallow: %d passes", passes)
	}
	wantAtLeast := int64(passes-1) * 3 * dbBytes // (N-1)=3 transfers of each byte
	if total < wantAtLeast {
		t.Fatalf("DD traffic %d below the per-pass broadcast floor %d", total, wantAtLeast)
	}
}

func TestRejectsZeroNodes(t *testing.T) {
	if _, err := Mine(smallDB(t), Config{}, mining.Options{MinSupFrac: 0.1}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestMaxK1AndDegenerate(t *testing.T) {
	db := smallDB(t)
	r, err := Mine(db, Config{Nodes: 2}, mining.Options{MinSupCount: 3, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Result.Frequent {
		if len(c.Set) != 1 {
			t.Fatalf("MaxK=1 emitted %v", c.Set)
		}
	}
	r, err = Mine(db, Config{Nodes: 3}, mining.Options{MinSupCount: db.Len() + 1})
	if err != nil || len(r.Result.Frequent) != 0 {
		t.Fatalf("nothing-frequent case: %d itemsets, %v", len(r.Result.Frequent), err)
	}
}

func TestDeepPassesAgree(t *testing.T) {
	// Push past k=3 so the generic-generation branch runs.
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.05}
	want, err := apriori.Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(db, Config{Nodes: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(want, got.Result); !ok {
		t.Fatal(diff)
	}
}

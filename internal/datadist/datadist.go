// Package datadist implements the Data Distribution algorithm — the second
// parallel Apriori of Agrawal & Shafer (TKDE 1996), the paper's reference
// [2] alongside Count Distribution. Where CD replicates the entire
// candidate set at every node (memory-bound), Data Distribution partitions
// the candidates round-robin across nodes, so each node holds only |C_k|/N
// of them — but must then count its share against the *entire* database,
// which every node broadcasts its local partition to make possible.
//
// DD therefore trades CD's memory wall for a communication wall: it
// survives lower minimum support levels than CD before exhausting memory,
// but ships the whole database around the cluster every pass. On text
// databases both walls stand well before PMIHP's (the A11 ablation), which
// is why the paper's authors compare against CD, the stronger baseline.
package datadist

import (
	"fmt"

	"pmihp/internal/cluster"
	"pmihp/internal/core"
	"pmihp/internal/hashtree"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Config configures a Data Distribution run.
type Config struct {
	Nodes int
	Net   cluster.NetParams // zero value selects FastEthernet
}

// Mine runs Data Distribution over the database split chronologically
// across cfg.Nodes nodes. Memory accounting covers each node's candidate
// share; mining.ErrMemoryExceeded is returned when that share outgrows
// opts.MemoryBudget.
func Mine(db *txdb.DB, cfg Config, opts mining.Options) (*core.ParallelResult, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("datadist: need at least one node, got %d", cfg.Nodes)
	}
	opts = opts.WithDefaults()
	if cfg.Net == (cluster.NetParams{}) {
		cfg.Net = cluster.FastEthernet
	}
	n := cfg.Nodes
	minCount := opts.MinCount(db.Len())
	parts := db.SplitChronological(n)
	fabric := cluster.New(n, cfg.Net)

	// Per-node database sizes in bytes, for the data broadcast each pass.
	// TotalItems is an O(1) CSR offset read — no transaction scan needed.
	partBytes := make([]int64, n)
	for i, p := range parts {
		partBytes[i] = int64(4*p.TotalItems() + 8*p.Len())
	}
	totalItems := db.TotalItems()

	metrics := make([]mining.Metrics, n)
	for i := range metrics {
		metrics[i] = mining.NewMetrics("dd-node")
	}
	res := &mining.Result{Metrics: mining.NewMetrics("datadist")}
	out := &core.ParallelResult{Result: res}
	finish := func(err error) (*core.ParallelResult, error) {
		itemset.SortCounted(res.Frequent)
		out.Nodes = make([]core.NodeReport, n)
		for i := range metrics {
			msgs, bytes := fabric.Stats(i).Snapshot()
			metrics[i].MessagesSent = msgs
			metrics[i].BytesSent = bytes
			out.Nodes[i] = core.NodeReport{
				Node:    i,
				Docs:    parts[i].Len(),
				Metrics: metrics[i],
				Seconds: fabric.Clock(i).Now(),
			}
			res.Metrics.Merge(&metrics[i])
		}
		res.Metrics.Algorithm = "datadist"
		out.TotalSeconds = fabric.MaxClock()
		return out, err
	}

	// broadcastData models every node shipping its local partition to all
	// peers — the per-pass cost DD pays so nodes can count their candidate
	// shares over the full database. Each point-to-point transfer charges
	// sender and receiver; the closing barrier makes it a collective.
	broadcastData := func() {
		fabric.Barrier()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j != i {
					fabric.ChargeSend(i, j, partBytes[i])
				}
			}
		}
		fabric.Barrier()
	}

	// Pass 1: local item counts, all-reduced (same as CD).
	globalCounts := make([]int, db.NumItems())
	for i := 0; i < n; i++ {
		m := &metrics[i]
		m.Passes++
		items := 0
		parts[i].Each(func(t *txdb.Transaction) {
			items += len(t.Items)
			for _, it := range t.Items {
				globalCounts[it]++
			}
		})
		m.Work.Charge(int64(items), mining.CostScanItem)
		fabric.Clock(i).AdvanceWork(m.Work.Units)
		m.AddCandidates(1, db.NumItems())
	}
	fabric.AllReduce(int64(4 * db.NumItems()))

	frequent := make([]bool, db.NumItems())
	var f1 []itemset.Item
	for it, c := range globalCounts {
		if c >= minCount {
			frequent[it] = true
			f1 = append(f1, itemset.Item(it))
			res.Frequent = append(res.Frequent, itemset.Counted{
				Set: itemset.Itemset{itemset.Item(it)}, Count: c,
			})
		}
	}
	if opts.MaxK == 1 || len(f1) < 2 {
		return finish(nil)
	}

	// Pass 2: each node owns every n-th conceptual candidate pair and
	// counts it over the full (broadcast) database.
	nPairs := len(f1) * (len(f1) - 1) / 2
	shareBytes := mining.CandidateBytes(2, nPairs/n+1)
	for i := range metrics {
		m := &metrics[i]
		m.AddCandidates(2, nPairs/n+1)
		// Generation enumerates the full join at every node (ownership is
		// decided per candidate), like CD.
		m.Work.Charge(int64(nPairs), mining.CostCandidateGen)
		m.NoteCandidateBytes(shareBytes)
		fabric.Clock(i).AdvanceWork(int64(nPairs) * mining.CostCandidateGen)
	}
	if opts.MemoryBudget > 0 && shareBytes > opts.MemoryBudget {
		return finish(mining.ErrMemoryExceeded)
	}
	broadcastData()

	pairCounts := make(map[uint64]int)
	buf := make(itemset.Itemset, 0, 256)
	before := make([]int64, n)
	for i := range metrics {
		before[i] = metrics[i].Work.Units
	}
	// Physically counted once; each node is charged for scanning the full
	// database against its 1/n candidate share.
	db.Each(func(t *txdb.Transaction) {
		buf = buf[:0]
		for _, it := range t.Items {
			if frequent[it] {
				buf = append(buf, it)
			}
		}
		for a := 0; a < len(buf); a++ {
			for b := a + 1; b < len(buf); b++ {
				pairCounts[uint64(buf[a])<<32|uint64(buf[b])]++
			}
		}
		l := len(buf)
		for i := range metrics {
			metrics[i].Work.Charge(mining.Pass2TreeCharge(l, nPairs/n+1), 1)
			metrics[i].Work.Charge(int64(l*(l-1)/2)/int64(n)+1, mining.CostCandidateHit)
		}
	})
	for i := range metrics {
		m := &metrics[i]
		m.Passes++
		m.Work.Charge(int64(totalItems), mining.CostScanItem)
		fabric.Clock(i).AdvanceWork(m.Work.Units - before[i])
	}

	var prev []itemset.Itemset
	for key, c := range pairCounts {
		if c >= minCount {
			pair := itemset.Itemset{itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)}
			res.Frequent = append(res.Frequent, itemset.Counted{Set: pair, Count: c})
			prev = append(prev, pair)
		}
	}
	itemset.Sort(prev)
	// Frequent shares are exchanged so every node can generate the next
	// candidate set.
	fabric.AllGather(int64(12 * (len(prev)/n + 1)))

	// Passes k >= 3.
	for k := 3; len(prev) >= 2 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		cands, potential, prunedSub := genNext(k, prev)
		if len(cands) == 0 {
			break
		}
		share := len(cands)/n + 1
		shareBytes := mining.CandidateBytes(k, share)
		for i := range metrics {
			m := &metrics[i]
			m.AddCandidates(k, share)
			m.Work.Charge(int64(potential), mining.CostCandidateGen)
			m.Work.Charge(int64(share), mining.CostTreeInsert)
			m.PrunedBySubset += int64(prunedSub)
			m.NoteCandidateBytes(shareBytes)
			fabric.Clock(i).AdvanceWork(int64(potential)*mining.CostCandidateGen + int64(share)*mining.CostTreeInsert)
		}
		if opts.MemoryBudget > 0 && shareBytes > opts.MemoryBudget {
			return finish(mining.ErrMemoryExceeded)
		}
		broadcastData()

		tree := hashtree.Build(k, cands)
		hits := int64(0)
		db.Each(func(t *txdb.Transaction) {
			hits += int64(tree.CountTx(t.Items))
		})
		for i := range metrics {
			m := &metrics[i]
			m.Passes++
			before := m.Work.Units
			m.Work.Charge(int64(totalItems), mining.CostScanItem)
			m.Work.Charge(tree.WalkCost()/int64(n)+1, 1)
			m.Work.Charge(hits/int64(n)+1, mining.CostCandidateHit)
			fabric.Clock(i).AdvanceWork(m.Work.Units - before)
		}

		prev = prev[:0]
		for i := 0; i < tree.Len(); i++ {
			if c := tree.Count(i); c >= minCount {
				res.Frequent = append(res.Frequent, itemset.Counted{Set: tree.Candidate(i), Count: c})
				prev = append(prev, tree.Candidate(i))
			}
		}
		itemset.Sort(prev)
		fabric.AllGather(int64((4*k + 8) * (len(prev)/n + 1)))
	}
	return finish(nil)
}

// genNext mirrors the candidate generation of the other Apriori-family
// miners (packed-pair fast path for k=3).
func genNext(k int, prev []itemset.Itemset) (cands []itemset.Itemset, potential, pruned int) {
	if k == 3 {
		return mining.Gen3(prev, mining.PairTableOf(prev))
	}
	return mining.AprioriGen(prev, itemset.SetOf(prev...))
}

// Package dhp implements the Direct Hashing and Pruning algorithm (Park,
// Chen & Yu, TKDE 1997). DHP augments Apriori with (a) a hash filter: while
// counting k-itemsets, all (k+1)-itemsets of each transaction are hashed
// into a bucket array, and a candidate of the next pass is kept only if its
// bucket count reaches the minimum support; and (b) the full-strength
// transaction trimming and pruning rule that MIHP adopts in weakened form.
//
// The paper cites DHP as one of the algorithms that are "ineffective in
// mining association rules in the text databases": with documents as
// transactions the number of hashed 2-itemsets per transaction is in the
// thousands, so the buckets saturate and stop discriminating. The bucket
// accounting below shows precisely that effect.
package dhp

import (
	"pmihp/internal/hashtree"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// NumBuckets is the size of the per-pass hash filter. The original paper
// sizes it to available memory; this default is proportionate to the text
// workloads used in the experiments.
const NumBuckets = 1 << 20

func bucketOfPair(a, b itemset.Item) int {
	return int((uint64(a)*2654435761 + uint64(b)) % NumBuckets)
}

func bucketOfSet(s itemset.Itemset) int {
	h := uint64(14695981039346656037)
	for _, it := range s {
		h = (h ^ uint64(it)) * 1099511628211
	}
	return int(h % NumBuckets)
}

// Mine runs DHP over the database.
func Mine(db *txdb.DB, opts mining.Options) (*mining.Result, error) {
	opts = opts.WithDefaults()
	minCount := opts.MinCount(db.Len())
	res := &mining.Result{Metrics: mining.NewMetrics("dhp")}
	m := &res.Metrics

	// Pass 1: item counts plus the H2 bucket filter over all 2-itemsets of
	// every transaction.
	counts := db.ItemCounts()
	m.Passes++
	h2 := make([]int32, NumBuckets)
	h2Valid := true
	db.Each(func(t *txdb.Transaction) {
		m.Work.Charge(int64(len(t.Items)), mining.CostScanItem)
		l := len(t.Items)
		if l*(l-1)/2 > maxHashedSubsets {
			h2Valid = false
			return
		}
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				h2[bucketOfPair(t.Items[i], t.Items[j])]++
			}
		}
		m.Work.Charge(int64(l*(l-1)/2), mining.CostBucket)
	})

	frequent := make([]bool, db.NumItems())
	var f1 []itemset.Item
	for it, c := range counts {
		if c >= minCount {
			frequent[it] = true
			f1 = append(f1, itemset.Item(it))
			res.Frequent = append(res.Frequent, itemset.Counted{
				Set: itemset.Itemset{itemset.Item(it)}, Count: c,
			})
		}
	}
	if opts.MaxK == 1 || len(f1) < 2 {
		itemset.SortCounted(res.Frequent)
		return res, nil
	}

	// C2: frequent pairs surviving the bucket filter (when it is valid).
	var c2 []uint64
	c2Index := make(map[uint64]int32)
	for i := 0; i < len(f1); i++ {
		for j := i + 1; j < len(f1); j++ {
			m.Work.Charge(1, mining.CostBucket)
			if !h2Valid || h2[bucketOfPair(f1[i], f1[j])] >= int32(minCount) {
				key := uint64(f1[i])<<32 | uint64(f1[j])
				c2Index[key] = int32(len(c2))
				c2 = append(c2, key)
			} else {
				m.PrunedByBucket++
			}
		}
	}
	h2 = nil
	m.AddCandidates(2, len(c2))
	m.Work.Charge(int64(len(c2)), mining.CostCandidateGen)
	m.NoteCandidateBytes(mining.CandidateBytes(2, len(c2)) + NumBuckets*4)
	if opts.MemoryBudget > 0 && m.PeakCandidateBytes > opts.MemoryBudget {
		return res, mining.ErrMemoryExceeded
	}

	// Pass 2: count C2, hash 3-itemsets, trim/prune transactions.
	work := txdb.NewWork(db)
	c2Counts := make([]int32, len(c2))
	h3 := make([]int32, NumBuckets)
	h3Valid := true
	m.Passes++
	hits := make(map[itemset.Item]int32)
	work.EachIndexed(func(ti int, _ txdb.TID, items itemset.Itemset) {
		m.Work.Charge(int64(len(items)), mining.CostScanItem)
		fit := make(itemset.Itemset, 0, len(items))
		for _, it := range items {
			if frequent[it] {
				fit = append(fit, it)
			}
		}
		clearHits(hits)
		matched := 0
		m.Work.Charge(mining.Pass2TreeCharge(len(fit), len(c2)), 1)
		for i := 0; i < len(fit); i++ {
			for j := i + 1; j < len(fit); j++ {
				if idx, ok := c2Index[uint64(fit[i])<<32|uint64(fit[j])]; ok {
					c2Counts[idx]++
					m.Work.Charge(1, mining.CostCandidateHit)
					matched++
					hits[fit[i]]++
					hits[fit[j]]++
				}
			}
		}
		// Hash the 3-itemsets of the (trimmed) transaction into H3.
		kept := make(itemset.Itemset, 0, len(fit))
		for _, it := range fit {
			if opts.DisableTrimming || hits[it] >= 2 {
				kept = append(kept, it)
			} else {
				m.TrimmedItems++
			}
		}
		if !opts.DisableTrimming && (matched < 2 || len(kept) < 3) {
			work.Prune(ti)
			m.PrunedTx++
			return
		}
		work.Trim(ti, kept)
		if !hashSubsets(kept, 3, h3, maxHashedSubsets) {
			h3Valid = false
		} else {
			n := len(kept)
			m.Work.Charge(int64(n*(n-1)*(n-2)/6), mining.CostBucket)
		}
	})
	if !h3Valid {
		h3 = nil
	}

	var prev []itemset.Itemset
	for i, key := range c2 {
		if int(c2Counts[i]) >= minCount {
			pair := itemset.Itemset{itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)}
			res.Frequent = append(res.Frequent, itemset.Counted{Set: pair, Count: int(c2Counts[i])})
			prev = append(prev, pair)
		}
	}
	itemset.Sort(prev)

	// Passes k >= 3: prefix join + subset pruning + bucket pruning + trees.
	bucket := h3
	for k := 3; len(prev) >= 2 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		cands, potential, prunedSub := genNext(k, prev)
		m.Work.Charge(int64(potential), mining.CostCandidateGen)
		m.PrunedBySubset += int64(prunedSub)
		if bucket != nil {
			kept := cands[:0]
			for _, c := range cands {
				m.Work.Charge(1, mining.CostBucket)
				if bucket[bucketOfSet(c)] >= int32(minCount) {
					kept = append(kept, c)
				} else {
					m.PrunedByBucket++
				}
			}
			cands = kept
		}
		if len(cands) == 0 {
			break
		}
		m.AddCandidates(k, len(cands))
		m.NoteCandidateBytes(mining.CandidateBytes(k, len(cands)))
		if opts.MemoryBudget > 0 && m.PeakCandidateBytes > opts.MemoryBudget {
			itemset.SortCounted(res.Frequent)
			return res, mining.ErrMemoryExceeded
		}

		tree := hashtree.Build(k, cands)
		m.Work.Charge(int64(len(cands)), mining.CostTreeInsert)
		m.Passes++
		next := make([]int32, NumBuckets)
		nextValid := true
		work.EachIndexed(func(ti int, _ txdb.TID, items itemset.Itemset) {
			m.Work.Charge(int64(len(items)), mining.CostScanItem)
			clearHits(hits)
			matched := 0
			tree.VisitTx(items, func(c int) {
				tree.Counts()[c]++
				m.Work.Charge(1, mining.CostCandidateHit)
				matched++
				for _, it := range tree.Candidate(c) {
					hits[it]++
				}
			})
			if opts.DisableTrimming {
				return
			}
			if matched < k {
				work.Prune(ti)
				m.PrunedTx++
				return
			}
			kept := make(itemset.Itemset, 0, len(items))
			for _, it := range items {
				if hits[it] >= int32(k) {
					kept = append(kept, it)
				} else {
					m.TrimmedItems++
				}
			}
			if len(kept) < k+1 {
				work.Prune(ti)
				m.PrunedTx++
				return
			}
			work.Trim(ti, kept)
			if !hashSubsets(kept, k+1, next, maxHashedSubsets) {
				nextValid = false
			}
		})
		m.Work.Charge(tree.WalkCost(), 1)
		if !nextValid {
			next = nil
		}
		bucket = next

		prev = prev[:0]
		for i := 0; i < tree.Len(); i++ {
			if c := tree.Count(i); c >= minCount {
				res.Frequent = append(res.Frequent, itemset.Counted{Set: tree.Candidate(i), Count: c})
				prev = append(prev, tree.Candidate(i))
			}
		}
		itemset.Sort(prev)
	}

	m.NoteHeldBytes(db.MemBytes() + m.PeakCandidateBytes)
	itemset.SortCounted(res.Frequent)
	return res, nil
}

func bucketHash3(a, b, c itemset.Item) int {
	return bucketOfSet(itemset.Itemset{a, b, c})
}

// hashSubsets hashes every k-subset of items into the bucket array and
// reports whether it enumerated completely. Bucket counts must upper-bound
// true supports for the filter to be sound, so when a long text transaction
// would produce more than maxSubsets subsets the enumeration is skipped and
// the caller must invalidate the bucket array (this is precisely the regime
// in which the paper calls DHP ineffective for text: the filter either
// saturates or becomes intractable to build).
func hashSubsets(items itemset.Itemset, k int, bucket []int32, maxSubsets int) bool {
	if len(items) < k {
		return true
	}
	if !binomialAtMost(len(items), k, maxSubsets) {
		return false
	}
	var rec func(start int, cur itemset.Itemset)
	rec = func(start int, cur itemset.Itemset) {
		if len(cur) == k {
			bucket[bucketOfSet(cur)]++
			return
		}
		for i := start; i <= len(items)-(k-len(cur)); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, make(itemset.Itemset, 0, k))
	return true
}

// maxHashedSubsets bounds the per-transaction filter-build effort.
const maxHashedSubsets = 20000

// binomialAtMost reports whether C(n, k) <= limit without overflow.
func binomialAtMost(n, k, limit int) bool {
	if k > n {
		return true
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > limit {
			return false
		}
	}
	return true
}

func clearHits(m map[itemset.Item]int32) {
	for k := range m {
		delete(m, k)
	}
}

// genNext generates the candidate k-itemsets from the frequent
// (k-1)-itemsets, using the packed-pair fast path for k=3.
func genNext(k int, prev []itemset.Itemset) (cands []itemset.Itemset, potential, pruned int) {
	if k == 3 {
		return mining.Gen3(prev, mining.PairTableOf(prev))
	}
	return mining.AprioriGen(prev, itemset.SetOf(prev...))
}

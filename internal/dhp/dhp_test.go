package dhp

import (
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func smallDB(t testing.TB) *txdb.DB {
	t.Helper()
	cfg := corpus.CorpusB(corpus.Small)
	docs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

func TestMatchesApriori(t *testing.T) {
	db := smallDB(t)
	for _, minsup := range []float64{0.10, 0.06, 0.04} {
		opts := mining.Options{MinSupFrac: minsup, MaxK: 4}
		want, err := apriori.Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := mining.SameFrequentSets(want, got); !ok {
			t.Fatalf("minsup=%g: %s", minsup, diff)
		}
	}
}

func TestBucketPruningActuallyPrunes(t *testing.T) {
	// Short transactions keep the filters valid; the bucket counts must
	// remove candidate pairs relative to Apriori's full C2.
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.08, MaxK: 2}
	ap, err := apriori.Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dh.Metrics.PrunedByBucket == 0 {
		t.Fatal("DHP pruned nothing")
	}
	if dh.Metrics.CandidatesByK[2] >= ap.Metrics.CandidatesByK[2] {
		t.Fatalf("DHP candidate C2 (%d) not smaller than Apriori's (%d)",
			dh.Metrics.CandidatesByK[2], ap.Metrics.CandidatesByK[2])
	}
}

func TestTrimmingOffSameAnswer(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.06, MaxK: 3}
	on, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableTrimming = true
	off, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(on, off); !ok {
		t.Fatalf("trimming changed the answer: %s", diff)
	}
}

func TestMemoryBudget(t *testing.T) {
	db := smallDB(t)
	_, err := Mine(db, mining.Options{MinSupFrac: 0.04, MemoryBudget: 1})
	if !mining.IsMemoryErr(err) {
		t.Fatalf("expected memory error, got %v", err)
	}
}

func TestLongTransactionsInvalidateFilterNotAnswer(t *testing.T) {
	// A transaction whose pair count exceeds maxHashedSubsets must disable
	// the filter, not corrupt the result.
	var items []itemset.Item
	for i := 0; i < 250; i++ { // C(250,2) > maxHashedSubsets
		items = append(items, itemset.Item(i))
	}
	txs := []txdb.Transaction{
		{TID: 0, Items: itemset.New(items...)},
		{TID: 1, Items: itemset.New(items[:100]...)},
		{TID: 2, Items: itemset.New(items[50:150]...)},
	}
	db := txdb.New(txs, 300)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	want, err := apriori.Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(want, got); !ok {
		t.Fatal(diff)
	}
}

func TestHashSubsetsCompleteness(t *testing.T) {
	bucket := make([]int32, NumBuckets)
	items := itemset.New(1, 5, 9, 12)
	if !hashSubsets(items, 3, bucket, 100) {
		t.Fatal("small enumeration refused")
	}
	// C(4,3) = 4 subsets hashed.
	total := int32(0)
	for _, c := range bucket {
		total += c
	}
	if total != 4 {
		t.Fatalf("hashed %d subsets, want 4", total)
	}
	// Refusal for oversized transactions.
	big := make([]itemset.Item, 100)
	for i := range big {
		big[i] = itemset.Item(i)
	}
	if hashSubsets(itemset.New(big...), 3, bucket, 1000) {
		t.Fatal("oversized enumeration accepted")
	}
}

func TestBinomialAtMost(t *testing.T) {
	cases := []struct {
		n, k, limit int
		want        bool
	}{
		{10, 3, 120, true},
		{10, 3, 119, false},
		{5, 9, 1, true}, // k > n: zero subsets
		{100, 3, 100000, false},
	}
	for _, c := range cases {
		if got := binomialAtMost(c.n, c.k, c.limit); got != c.want {
			t.Errorf("binomialAtMost(%d,%d,%d) = %v", c.n, c.k, c.limit, got)
		}
	}
}

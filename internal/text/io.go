package text

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The documents line format: one document per line, "day word word ...".
// It is the interchange format between corpusgen, pmihp-mine and external
// tools — trivially greppable and diffable, and loss-free for preprocessed
// documents (which are just day-stamped word sets).

// WriteDocuments writes documents in the line format.
func WriteDocuments(w io.Writer, docs []Document) error {
	bw := bufio.NewWriter(w)
	for i := range docs {
		if _, err := fmt.Fprintf(bw, "%d %s\n", docs[i].Day, strings.Join(docs[i].Words, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDocuments reads documents in the line format. Word lists are
// normalized (sorted, deduplicated, lowercased) so hand-edited files are
// accepted.
func ReadDocuments(r io.Reader) ([]Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var docs []Document
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		day, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("text: line %d: bad day %q", lineNo, fields[0])
		}
		seen := make(map[string]struct{}, len(fields)-1)
		words := make([]string, 0, len(fields)-1)
		for _, w := range fields[1:] {
			w = strings.ToLower(w)
			if _, dup := seen[w]; !dup {
				seen[w] = struct{}{}
				words = append(words, w)
			}
		}
		sortStrings(words)
		docs = append(docs, Document{Day: day, Words: words})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return docs, nil
}

// SaveDocuments writes the line format to a file.
func SaveDocuments(path string, docs []Document) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDocuments(f, docs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDocuments reads the line format from a file.
func LoadDocuments(path string) ([]Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDocuments(f)
}

package text

// The paper removes stop words with "a stop-word list from Fox [8]"
// (C. Fox, "Lexical Analysis and Stoplists", 1992). The original 421-word
// list is not redistributable here, so we embed an equivalent general-English
// function-word list of comparable size and coverage. Substituting one
// standard English stoplist for another only changes which closed-class,
// very-high-frequency words are excluded; the open-class word frequency
// profile the experiments depend on is unaffected (see DESIGN.md §2).

var stopWords = [...]string{
	"about", "above", "across", "after", "afterwards", "again", "against",
	"all", "almost", "alone", "along", "already", "also", "although",
	"always", "am", "among", "amongst", "an", "and", "another", "any",
	"anybody", "anyhow", "anyone", "anything", "anyway", "anywhere", "are",
	"area", "areas", "around", "as", "ask", "asked", "asking", "asks", "at",
	"away", "back", "backed", "backing", "backs", "be", "became", "because",
	"become", "becomes", "been", "before", "beforehand", "began", "behind",
	"being", "beings", "below", "beside", "besides", "best", "better",
	"between", "beyond", "big", "both", "but", "by", "came", "can", "cannot",
	"case", "cases", "certain", "certainly", "clear", "clearly", "come",
	"could", "did", "differ", "different", "differently", "do", "does",
	"done", "down", "downed", "downing", "downs", "during", "each", "early",
	"either", "else", "elsewhere", "end", "ended", "ending", "ends",
	"enough", "even", "evenly", "ever", "every", "everybody", "everyone",
	"everything", "everywhere", "except", "face", "faces", "fact", "facts",
	"far", "felt", "few", "find", "finds", "first", "for", "former",
	"formerly", "forth", "four", "from", "full", "fully", "further",
	"furthered", "furthering", "furthers", "gave", "general", "generally",
	"get", "gets", "give", "given", "gives", "go", "going", "good", "goods",
	"got", "great", "greater", "greatest", "group", "grouped", "grouping",
	"groups", "had", "has", "have", "having", "he", "hence", "her", "here",
	"hereafter", "hereby", "herein", "hereupon", "hers", "herself", "high",
	"higher", "highest", "him", "himself", "his", "how", "however", "if",
	"important", "in", "indeed", "interest", "interested", "interesting",
	"interests", "into", "is", "it", "its", "itself", "just", "keep",
	"keeps", "kind", "knew", "know", "known", "knows", "large", "largely",
	"last", "later", "latest", "latter", "latterly", "least", "less", "let",
	"lets", "like", "likely", "long", "longer", "longest", "made", "make",
	"making", "man", "many", "may", "me", "meanwhile", "member", "members",
	"men", "might", "more", "moreover", "most", "mostly", "mr", "mrs",
	"much", "must", "my", "myself", "namely", "necessary", "need", "needed",
	"needing", "needs", "neither", "never", "nevertheless", "new", "newer",
	"newest", "next", "no", "nobody", "non", "none", "nonetheless", "noone",
	"nor", "not", "nothing", "now", "nowhere", "number", "numbers", "of",
	"off", "often", "old", "older", "oldest", "on", "once", "one", "only",
	"onto", "open", "opened", "opening", "opens", "or", "order", "ordered",
	"ordering", "orders", "other", "others", "otherwise", "our", "ours",
	"ourselves", "out", "over", "own", "part", "parted", "parting", "parts",
	"per", "perhaps", "place", "places", "point", "pointed", "pointing",
	"points", "possible", "present", "presented", "presenting", "presents",
	"problem", "problems", "put", "puts", "quite", "rather", "really",
	"right", "room", "rooms", "said", "same", "saw", "say", "says", "second",
	"seconds", "see", "seem", "seemed", "seeming", "seems", "sees",
	"several", "shall", "she", "should", "show", "showed", "showing",
	"shows", "side", "sides", "since", "small", "smaller", "smallest", "so",
	"some", "somebody", "somehow", "someone", "something", "sometime",
	"sometimes", "somewhere", "state", "states", "still", "such", "sure",
	"take", "taken", "than", "that", "the", "their", "theirs", "them",
	"themselves", "then", "thence", "there", "thereafter", "thereby",
	"therefore", "therein", "thereupon", "these", "they", "thing", "things",
	"think", "thinks", "this", "those", "though", "thought", "thoughts",
	"three", "through", "throughout", "thus", "to", "today", "together",
	"too", "took", "toward", "towards", "turn", "turned", "turning", "turns",
	"two", "under", "until", "up", "upon", "us", "use", "used", "uses",
	"very", "via", "want", "wanted", "wanting", "wants", "was", "way",
	"ways", "we", "well", "wells", "went", "were", "what", "whatever",
	"when", "whence", "whenever", "where", "whereafter", "whereas",
	"whereby", "wherein", "whereupon", "wherever", "whether", "which",
	"while", "whither", "who", "whoever", "whole", "whom", "whose", "why",
	"will", "with", "within", "without", "work", "worked", "working",
	"works", "would", "year", "years", "yet", "you", "young", "younger",
	"youngest", "your", "yours", "yourself", "yourselves",
}

var stopSet = func() map[string]struct{} {
	m := make(map[string]struct{}, len(stopWords))
	for _, w := range stopWords {
		m[w] = struct{}{}
	}
	return m
}()

// IsStopWord reports whether the (already lowercased) word is on the
// embedded stoplist.
func IsStopWord(w string) bool {
	_, ok := stopSet[w]
	return ok
}

// StopWordCount returns the size of the embedded stoplist.
func StopWordCount() int { return len(stopWords) }

package text

import (
	"sort"
	"testing"

	"pmihp/internal/itemset"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"IBM's Q3 earnings rose 4.5%", []string{"ibm", "earnings", "rose"}},
		{"", nil},
		{"a b c", nil}, // single letters dropped
		{"Co-operate re-enter", []string{"co", "operate", "re", "enter"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"trailing word", []string{"trailing", "word"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "would", "whereas"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"market", "stock", "federal", "earnings"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
	if StopWordCount() < 300 {
		t.Fatalf("stoplist suspiciously small: %d", StopWordCount())
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("The market and the bank would trade the stock")
	want := []string{"market", "bank", "trade", "stock"}
	if len(got) != len(want) {
		t.Fatalf("ContentWords = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ContentWords = %v, want %v", got, want)
		}
	}
}

func TestDistinctContentWords(t *testing.T) {
	got := DistinctContentWords("Bank bank BANK market market the the")
	want := []string{"bank", "market"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("DistinctContentWords = %v", got)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("result not sorted")
	}
}

func TestVocabularyLexicalOrder(t *testing.T) {
	docs := []Document{
		{Day: 0, Words: []string{"beta", "delta"}},
		{Day: 1, Words: []string{"alpha", "delta", "gamma"}},
	}
	v := BuildVocabulary(docs)
	if v.Size() != 4 {
		t.Fatalf("Size = %d", v.Size())
	}
	// Ids must follow lexical order of words — the invariant the Multipass
	// partitioning relies on.
	prev := ""
	for id := itemset.Item(0); int(id) < v.Size(); id++ {
		w := v.Word(id)
		if w <= prev {
			t.Fatalf("vocabulary not lexically ordered: %q after %q", w, prev)
		}
		prev = w
		back, ok := v.ID(w)
		if !ok || back != id {
			t.Fatalf("round trip failed for %q", w)
		}
	}
	if _, ok := v.ID("missing"); ok {
		t.Fatal("unknown word resolved")
	}
}

func TestToDB(t *testing.T) {
	docs := []Document{
		{Day: 0, Words: []string{"beta", "delta"}},
		{Day: 1, Words: []string{"alpha", "delta", "gamma"}},
	}
	db, vocab := ToDB(docs, nil)
	if db.Len() != 2 || db.NumItems() != vocab.Size() {
		t.Fatalf("db %d docs, %d items", db.Len(), db.NumItems())
	}
	tx := db.Tx(1)
	if tx.TID != 1 || tx.Day != 1 || len(tx.Items) != 3 {
		t.Fatalf("tx = %+v", tx)
	}
	if !tx.Items.Valid() {
		t.Fatal("transaction items not sorted")
	}
	words := vocab.Words(tx.Items)
	if words[0] != "alpha" || words[1] != "delta" || words[2] != "gamma" {
		t.Fatalf("Words = %v", words)
	}
}

func TestToDBWithSharedVocab(t *testing.T) {
	train := []Document{{Words: []string{"alpha", "beta"}}}
	_, vocab := ToDB(train, nil)
	// New docs with unknown words: unknowns are dropped, knowns resolve to
	// the shared vocabulary ids.
	db, v2 := ToDB([]Document{{Words: []string{"alpha", "zeta"}}}, vocab)
	if v2 != vocab {
		t.Fatal("vocab not reused")
	}
	if got := db.Tx(0).Items; len(got) != 1 || vocab.Word(got[0]) != "alpha" {
		t.Fatalf("items = %v", got)
	}
}

func TestPrepareDocument(t *testing.T) {
	d := PrepareDocument(3, "The Bank reported the bank earnings")
	if d.Day != 3 {
		t.Fatalf("Day = %d", d.Day)
	}
	if len(d.Words) != 3 { // bank, earnings, reported
		t.Fatalf("Words = %v", d.Words)
	}
}

package text

import (
	"sort"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

// Vocabulary maps words to item identifiers. Identifiers are assigned in
// lexical word order so that the numeric order of items is the lexical
// order the Multipass partitioning relies on ("assume without loss of
// generality that the frequent 1-itemsets are ordered lexically").
type Vocabulary struct {
	words []string
	ids   map[string]itemset.Item
}

// BuildVocabulary assigns ids to the distinct words of the corpus, in
// lexical order.
func BuildVocabulary(docs []Document) *Vocabulary {
	seen := make(map[string]struct{})
	for i := range docs {
		for _, w := range docs[i].Words {
			seen[w] = struct{}{}
		}
	}
	words := make([]string, 0, len(seen))
	for w := range seen {
		words = append(words, w)
	}
	sort.Strings(words)
	ids := make(map[string]itemset.Item, len(words))
	for i, w := range words {
		ids[w] = itemset.Item(i)
	}
	return &Vocabulary{words: words, ids: ids}
}

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.words) }

// ID returns the item id of a word; ok is false for unknown words.
func (v *Vocabulary) ID(word string) (itemset.Item, bool) {
	id, ok := v.ids[word]
	return id, ok
}

// Word returns the word with the given item id.
func (v *Vocabulary) Word(id itemset.Item) string { return v.words[id] }

// Words renders an itemset as its word forms.
func (v *Vocabulary) Words(s itemset.Itemset) []string {
	out := make([]string, len(s))
	for i, it := range s {
		out[i] = v.words[it]
	}
	return out
}

// Document is a preprocessed document: its publication day and the sorted
// distinct content words it contains.
type Document struct {
	Day   int
	Words []string
}

// PrepareDocument preprocesses a raw document body: tokenize, monocase,
// stop-filter, deduplicate, sort.
func PrepareDocument(day int, body string) Document {
	return Document{Day: day, Words: DistinctContentWords(body)}
}

// ToDB converts preprocessed documents into a transaction database using
// (and if nil, building) a vocabulary. TIDs are assigned sequentially in
// document order. It returns the database and the vocabulary used.
func ToDB(docs []Document, vocab *Vocabulary) (*txdb.DB, *Vocabulary) {
	if vocab == nil {
		vocab = BuildVocabulary(docs)
	}
	txs := make([]txdb.Transaction, len(docs))
	for i := range docs {
		items := make(itemset.Itemset, 0, len(docs[i].Words))
		for _, w := range docs[i].Words {
			if id, ok := vocab.ID(w); ok {
				items = append(items, id)
			}
		}
		// Words are sorted lexically and ids are assigned in lexical order,
		// so items are already sorted; assert the invariant cheaply.
		if !items.Valid() {
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		}
		txs[i] = txdb.Transaction{TID: txdb.TID(i), Day: docs[i].Day, Items: items}
	}
	return txdb.New(txs, vocab.Size()), vocab
}

// Package text turns raw documents into the transactions the miners
// consume, following the paper's preprocessing: words are monocased, not
// stemmed, and filtered through a Fox-style stop-word list; each document
// becomes the set of its distinct remaining words.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits a document into lowercase word tokens. A token is a
// maximal run of letters (digits and punctuation separate tokens); the paper
// monocases but does not stem, and neither do we. Tokens shorter than
// MinTokenLen are discarded.
func Tokenize(doc string) []string {
	var tokens []string
	start := -1
	flush := func(end int) {
		if start >= 0 && end-start >= MinTokenLen {
			tokens = append(tokens, strings.ToLower(doc[start:end]))
		}
		start = -1
	}
	for i, r := range doc {
		if unicode.IsLetter(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(doc))
	return tokens
}

// MinTokenLen is the minimum length of a token kept by Tokenize. Single
// letters carry no content and behave as noise in association mining.
const MinTokenLen = 2

// ContentWords tokenizes a document and removes stop words, returning the
// content words in document order (with duplicates preserved).
func ContentWords(doc string) []string {
	toks := Tokenize(doc)
	out := toks[:0]
	for _, t := range toks {
		if !IsStopWord(t) {
			out = append(out, t)
		}
	}
	return out
}

// DistinctContentWords returns the sorted distinct content words of a
// document — the word set that becomes the document's transaction.
func DistinctContentWords(doc string) []string {
	words := ContentWords(doc)
	seen := make(map[string]struct{}, len(words))
	out := words[:0]
	for _, w := range words {
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	sortStrings(out)
	return out
}

// sortStrings is an insertion sort adequate for per-document word lists;
// documents have hundreds of distinct words at most.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package text

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestDocumentsRoundTrip(t *testing.T) {
	docs := []Document{
		{Day: 0, Words: []string{"bank", "market"}},
		{Day: 1, Words: []string{"bond", "rates", "report"}},
		{Day: 1, Words: []string{"zebra"}},
	}
	var buf bytes.Buffer
	if err := WriteDocuments(&buf, docs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocuments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(docs) {
		t.Fatalf("got %d docs", len(got))
	}
	for i := range docs {
		if got[i].Day != docs[i].Day || len(got[i].Words) != len(docs[i].Words) {
			t.Fatalf("doc %d: %+v vs %+v", i, got[i], docs[i])
		}
		for j := range docs[i].Words {
			if got[i].Words[j] != docs[i].Words[j] {
				t.Fatalf("doc %d word %d: %q vs %q", i, j, got[i].Words[j], docs[i].Words[j])
			}
		}
	}
}

func TestReadDocumentsNormalizes(t *testing.T) {
	in := "0 Market BANK market\n\n# comment\n2 zeta alpha\n"
	got, err := ReadDocuments(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d docs", len(got))
	}
	if len(got[0].Words) != 2 || got[0].Words[0] != "bank" || got[0].Words[1] != "market" {
		t.Fatalf("doc 0 words = %v", got[0].Words)
	}
	if got[1].Words[0] != "alpha" {
		t.Fatalf("doc 1 not sorted: %v", got[1].Words)
	}
}

func TestReadDocumentsBadDay(t *testing.T) {
	if _, err := ReadDocuments(strings.NewReader("notaday word\n")); err == nil {
		t.Fatal("bad day accepted")
	}
}

func TestSaveLoadDocuments(t *testing.T) {
	docs := []Document{{Day: 3, Words: []string{"alpha", "beta"}}}
	path := filepath.Join(t.TempDir(), "docs.txt")
	if err := SaveDocuments(path, docs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDocuments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Day != 3 {
		t.Fatalf("round trip = %+v", got)
	}
}

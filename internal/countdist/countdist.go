// Package countdist implements the Count Distribution algorithm (Agrawal &
// Shafer, TKDE 1996) — the parallel Apriori baseline the paper compares
// PMIHP against in Figure 5.
//
// Count Distribution partitions the database across the nodes; in every
// pass all nodes generate the *same* candidate set, count it against their
// local partitions, and all-reduce the count vector so each node can derive
// the identical frequent set for the next pass. The per-pass synchronization
// and the fully replicated candidate sets are exactly the overheads PMIHP
// avoids; both are charged faithfully here (candidate generation work and
// candidate memory are paid at every node).
package countdist

import (
	"fmt"
	"time"

	"pmihp/internal/cluster"
	"pmihp/internal/core"
	"pmihp/internal/hashtree"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/txdb"
)

// Config configures a Count Distribution run.
type Config struct {
	Nodes int
	Net   cluster.NetParams // zero value selects FastEthernet
}

// Mine runs Count Distribution over the database split chronologically
// across cfg.Nodes nodes. It returns mining.ErrMemoryExceeded when the
// replicated candidate set outgrows opts.MemoryBudget at any node, which is
// the regime where the paper could not run CD below 2% support.
func Mine(db *txdb.DB, cfg Config, opts mining.Options) (*core.ParallelResult, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("countdist: need at least one node, got %d", cfg.Nodes)
	}
	opts = opts.WithDefaults()
	if cfg.Net == (cluster.NetParams{}) {
		cfg.Net = cluster.FastEthernet
	}
	n := cfg.Nodes
	minCount := opts.MinCount(db.Len())
	parts := db.SplitChronological(n)
	fabric := cluster.New(n, cfg.Net)

	metrics := make([]mining.Metrics, n)
	for i := range metrics {
		metrics[i] = mining.NewMetrics("cd-node")
	}

	// Observability: one pass event per node per counting pass. The
	// all-reduce is one shared collective, so its modeled time and payload
	// attach to node 0's event only — trace replays then reconcile with
	// ExchangeSecondsByPass instead of multiplying it by n. scanSec is
	// only allocated when a recorder is live.
	var scanSec []float64
	if opts.Obs.Enabled() {
		scanSec = make([]float64, n)
	}
	scanStart := func(i int) time.Time {
		if scanSec != nil {
			return time.Now()
		}
		return time.Time{}
	}
	scanEnd := func(i int, t0 time.Time) {
		if scanSec != nil {
			scanSec[i] = time.Since(t0).Seconds()
		}
	}
	emitPass := func(k, candidates int, exch float64, wireBytes int64) {
		r := opts.Obs
		if !r.Enabled() {
			return
		}
		for i := 0; i < n; i++ {
			ev := obs.PassEvent{
				Node: i, Partition: -1, K: k,
				Candidates:  candidates,
				ScanSeconds: scanSec[i],
			}
			if i == 0 {
				ev.ExchangeSeconds = exch
				ev.WireBytes = wireBytes
			}
			r.Pass(ev)
		}
	}
	res := &mining.Result{Metrics: mining.NewMetrics("countdist")}
	out := &core.ParallelResult{Result: res}
	finish := func(err error) (*core.ParallelResult, error) {
		itemset.SortCounted(res.Frequent)
		out.Nodes = make([]core.NodeReport, n)
		for i := range metrics {
			metrics[i].NoteHeldBytes(parts[i].MemBytes() + metrics[i].PeakCandidateBytes)
			msgs, bytes := fabric.Stats(i).Snapshot()
			metrics[i].MessagesSent = msgs
			metrics[i].BytesSent = bytes
			out.Nodes[i] = core.NodeReport{
				Node:    i,
				Docs:    parts[i].Len(),
				Metrics: metrics[i],
				Seconds: fabric.Clock(i).Now(),
			}
			res.Metrics.Merge(&metrics[i])
		}
		res.Metrics.Algorithm = "countdist"
		out.TotalSeconds = fabric.MaxClock()
		return out, err
	}

	// Pass 1: local item counts, then all-reduce.
	globalCounts := make([]int, db.NumItems())
	for i := 0; i < n; i++ {
		m := &metrics[i]
		m.Passes++
		items := 0
		t0 := scanStart(i)
		parts[i].Each(func(t *txdb.Transaction) {
			items += len(t.Items)
			for _, it := range t.Items {
				globalCounts[it]++
			}
		})
		scanEnd(i, t0)
		m.Work.Charge(int64(items), mining.CostScanItem)
		fabric.Clock(i).AdvanceWork(m.Work.Units)
		m.AddCandidates(1, db.NumItems())
	}
	out.ExchangeSecondsByPass = append(out.ExchangeSecondsByPass, fabric.AllReduce(int64(4*db.NumItems())))
	emitPass(1, db.NumItems(), out.ExchangeSecondsByPass[0], int64(4*db.NumItems()))

	frequent := make([]bool, db.NumItems())
	var f1 []itemset.Item
	for it, c := range globalCounts {
		if c >= minCount {
			frequent[it] = true
			f1 = append(f1, itemset.Item(it))
			res.Frequent = append(res.Frequent, itemset.Counted{
				Set: itemset.Itemset{itemset.Item(it)}, Count: c,
			})
		}
	}
	if opts.MaxK == 1 || len(f1) < 2 {
		return finish(nil)
	}

	// Pass 2: the replicated candidate set is conceptually all pairs of
	// frequent items at every node (see internal/apriori for why counting
	// is physically sparse).
	nPairs := len(f1) * (len(f1) - 1) / 2
	candBytes := mining.CandidateBytes(2, nPairs)
	for i := range metrics {
		m := &metrics[i]
		m.AddCandidates(2, nPairs)
		m.Work.Charge(int64(nPairs), mining.CostCandidateGen)
		m.NoteCandidateBytes(candBytes)
		fabric.Clock(i).AdvanceWork(int64(nPairs) * mining.CostCandidateGen)
	}
	if opts.MemoryBudget > 0 && candBytes > opts.MemoryBudget {
		return finish(mining.ErrMemoryExceeded)
	}

	pairCounts := make(map[uint64]int)
	distinctPairs := make(map[uint64]struct{})
	for i := 0; i < n; i++ {
		m := &metrics[i]
		m.Passes++
		before := m.Work.Units
		t0 := scanStart(i)
		buf := make(itemset.Itemset, 0, 256)
		parts[i].Each(func(t *txdb.Transaction) {
			m.Work.Charge(int64(len(t.Items)), mining.CostScanItem)
			buf = buf[:0]
			for _, it := range t.Items {
				if frequent[it] {
					buf = append(buf, it)
				}
			}
			for a := 0; a < len(buf); a++ {
				for b := a + 1; b < len(buf); b++ {
					key := uint64(buf[a])<<32 | uint64(buf[b])
					pairCounts[key]++
					distinctPairs[key] = struct{}{}
				}
			}
			l := len(buf)
			m.Work.Charge(mining.Pass2TreeCharge(l, nPairs), 1)
			m.Work.Charge(int64(l*(l-1)/2), mining.CostCandidateHit)
		})
		scanEnd(i, t0)
		fabric.Clock(i).AdvanceWork(m.Work.Units - before)
	}
	// The count vector over the replicated candidate set is all-reduced.
	out.ExchangeSecondsByPass = append(out.ExchangeSecondsByPass, fabric.AllReduce(int64(4*nPairs)))
	emitPass(2, nPairs, out.ExchangeSecondsByPass[1], int64(4*nPairs))

	var prev []itemset.Itemset
	for key, c := range pairCounts {
		if c >= minCount {
			pair := itemset.Itemset{itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)}
			res.Frequent = append(res.Frequent, itemset.Counted{Set: pair, Count: c})
			prev = append(prev, pair)
		}
	}
	itemset.Sort(prev)

	// Passes k >= 3.
	for k := 3; len(prev) >= 2 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		cands, potential, prunedSub := genNext(k, prev)
		if len(cands) == 0 {
			break
		}
		candBytes := mining.CandidateBytes(k, len(cands))
		for i := range metrics {
			m := &metrics[i]
			m.AddCandidates(k, len(cands))
			m.Work.Charge(int64(potential), mining.CostCandidateGen)
			m.Work.Charge(int64(len(cands)), mining.CostTreeInsert)
			m.PrunedBySubset += int64(prunedSub)
			m.NoteCandidateBytes(candBytes)
			fabric.Clock(i).AdvanceWork(int64(potential)*mining.CostCandidateGen + int64(len(cands))*mining.CostTreeInsert)
		}
		if opts.MemoryBudget > 0 && candBytes > opts.MemoryBudget {
			return finish(mining.ErrMemoryExceeded)
		}

		total := make([]int, len(cands))
		for i := 0; i < n; i++ {
			m := &metrics[i]
			m.Passes++
			before := m.Work.Units
			t0 := scanStart(i)
			tree := hashtree.Build(k, cands)
			parts[i].Each(func(t *txdb.Transaction) {
				m.Work.Charge(int64(len(t.Items)), mining.CostScanItem)
				hits := tree.CountTx(t.Items)
				m.Work.Charge(int64(hits), mining.CostCandidateHit)
			})
			scanEnd(i, t0)
			m.Work.Charge(tree.WalkCost(), 1)
			for c, v := range tree.Counts() {
				total[c] += v
			}
			fabric.Clock(i).AdvanceWork(m.Work.Units - before)
		}
		out.ExchangeSecondsByPass = append(out.ExchangeSecondsByPass, fabric.AllReduce(int64(4*len(cands))))
		emitPass(k, len(cands), out.ExchangeSecondsByPass[len(out.ExchangeSecondsByPass)-1], int64(4*len(cands)))

		prev = prev[:0]
		for i, c := range total {
			if c >= minCount {
				res.Frequent = append(res.Frequent, itemset.Counted{Set: cands[i], Count: c})
				prev = append(prev, cands[i])
			}
		}
		itemset.Sort(prev)
	}
	return finish(nil)
}

// genNext generates the candidate k-itemsets from the frequent
// (k-1)-itemsets, using the packed-pair fast path for k=3.
func genNext(k int, prev []itemset.Itemset) (cands []itemset.Itemset, potential, pruned int) {
	if k == 3 {
		return mining.Gen3(prev, mining.PairTableOf(prev))
	}
	return mining.AprioriGen(prev, itemset.SetOf(prev...))
}

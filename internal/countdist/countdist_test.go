package countdist

import (
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func smallDB(t testing.TB) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(corpus.CorpusB(corpus.Small))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

// TestMatchesApriori is the defining property of Count Distribution: on any
// node count it computes exactly the sequential Apriori answer.
func TestMatchesApriori(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.06, MaxK: 4}
	want, err := apriori.Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 3, 4, 8} {
		got, err := Mine(db, Config{Nodes: nodes}, opts)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if ok, diff := mining.SameFrequentSets(want, got.Result); !ok {
			t.Fatalf("nodes=%d: %s", nodes, diff)
		}
	}
}

func TestCandidatesReplicatedAtEveryNode(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.06, MaxK: 3}
	r, err := Mine(db, Config{Nodes: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every node counts the same candidate set — the redundancy the paper
	// criticizes.
	first := r.Nodes[0].Metrics.CandidatesByK
	for _, n := range r.Nodes[1:] {
		for k, v := range first {
			if n.Metrics.CandidatesByK[k] != v {
				t.Fatalf("node %d counts %d k=%d candidates, node 0 counts %d",
					n.Node, n.Metrics.CandidatesByK[k], k, v)
			}
		}
	}
}

func TestMemoryBudgetOOM(t *testing.T) {
	db := smallDB(t)
	_, err := Mine(db, Config{Nodes: 4}, mining.Options{MinSupFrac: 0.04, MemoryBudget: 1000})
	if !mining.IsMemoryErr(err) {
		t.Fatalf("expected memory error, got %v", err)
	}
}

func TestSimulatedTimeScalesDown(t *testing.T) {
	db := smallDB(t)
	opts := mining.Options{MinSupFrac: 0.05, MaxK: 3}
	t1, err := Mine(db, Config{Nodes: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Mine(db, Config{Nodes: 8}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t8.TotalSeconds >= t1.TotalSeconds {
		t.Fatalf("8 nodes (%.2fs) not faster than 1 (%.2fs)", t8.TotalSeconds, t1.TotalSeconds)
	}
	// CD's speedup cannot be superlinear: the candidate generation work is
	// replicated at every node.
	if sp := t1.TotalSeconds / t8.TotalSeconds; sp > 8 {
		t.Fatalf("CD speedup %.1f is superlinear", sp)
	}
}

func TestRejectsZeroNodes(t *testing.T) {
	db := smallDB(t)
	if _, err := Mine(db, Config{}, mining.Options{MinSupFrac: 0.1}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestMaxK1AndDegenerate(t *testing.T) {
	db := smallDB(t)
	r, err := Mine(db, Config{Nodes: 2}, mining.Options{MinSupCount: 3, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Result.Frequent {
		if len(c.Set) != 1 {
			t.Fatalf("MaxK=1 emitted %v", c.Set)
		}
	}
	// Threshold above every count: nothing frequent, no error.
	r, err = Mine(db, Config{Nodes: 2}, mining.Options{MinSupCount: db.Len() + 1})
	if err != nil || len(r.Result.Frequent) != 0 {
		t.Fatalf("nothing-frequent case: %d itemsets, %v", len(r.Result.Frequent), err)
	}
}

func TestNodeStatsPopulated(t *testing.T) {
	db := smallDB(t)
	r, err := Mine(db, Config{Nodes: 4}, mining.Options{MinSupFrac: 0.08, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes {
		if n.Seconds <= 0 {
			t.Fatalf("node %d has no simulated time", n.Node)
		}
		if n.Metrics.BytesSent <= 0 {
			t.Fatalf("node %d sent no bytes (all-reduce missing)", n.Node)
		}
	}
}

package experiments

import (
	"errors"
	"fmt"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

func init() {
	register("e2", "Figure 5: Count Distribution vs PMIHP on 8 nodes, total time by minimum support (Corpus A)", func(p Params) (fmt.Stringer, error) {
		return RunE2(p)
	})
}

// E2Row is one minimum-support level of Figure 5.
type E2Row struct {
	MinSup    float64
	CDSeconds float64
	CDOOM     bool
	PMIHPSecs float64
	// Average candidates counted per node, the driver of the gap.
	CDCandPerNode    float64
	PMIHPCandPerNode float64
}

// E2Result reproduces Figure 5.
type E2Result struct {
	Corpus corpus.Config
	Stats  txdb.Stats
	Nodes  int
	Budget int64
	Rows   []E2Row
}

// RunE2 runs the Figure 5 sweep on 8 simulated nodes.
func RunE2(p Params) (*E2Result, error) {
	p = p.WithDefaults()
	cfg := corpus.CorpusA(p.Scale)
	b, err := buildCorpus(cfg)
	if err != nil {
		return nil, err
	}
	budget := p.MemoryBudget
	if budget == 0 {
		budget = calibrateBudget(b.db)
	}
	const nodes = 8
	res := &E2Result{Corpus: cfg, Stats: b.stats, Nodes: nodes, Budget: budget}

	for _, ms := range p.MinSups {
		p.logf("e2: minsup %.2f%%", 100*ms)
		row := E2Row{MinSup: ms}

		cdOpts := mining.Options{MinSupFrac: ms, MemoryBudget: budget}
		cd, err := countdist.Mine(b.db, countdist.Config{Nodes: nodes}, cdOpts)
		if errors.Is(err, mining.ErrMemoryExceeded) {
			row.CDOOM = true
		} else if err != nil {
			return nil, fmt.Errorf("countdist at %.4f: %w", ms, err)
		}
		if cd != nil {
			row.CDSeconds = cd.TotalSeconds
			row.CDCandPerNode = avgCand(cd)
		}

		pm, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: nodes}, mining.Options{MinSupFrac: ms})
		if err != nil {
			return nil, fmt.Errorf("pmihp at %.4f: %w", ms, err)
		}
		row.PMIHPSecs = pm.TotalSeconds
		row.PMIHPCandPerNode = avgCand(pm)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func avgCand(r *core.ParallelResult) float64 {
	sum := 0
	for _, n := range r.Nodes {
		sum += n.Metrics.Candidates()
	}
	if len(r.Nodes) == 0 {
		return 0
	}
	return float64(sum) / float64(len(r.Nodes))
}

func (r *E2Result) String() string {
	t := &table{header: []string{"minsup", "CD", "PMIHP", "CD cand/node", "PMIHP cand/node"}}
	for _, row := range r.Rows {
		cd := secs(row.CDSeconds)
		cdc := fcount(row.CDCandPerNode)
		if row.CDOOM {
			cd, cdc = "OOM", "OOM"
		}
		t.add(pct(row.MinSup), cd, secs(row.PMIHPSecs), cdc, fcount(row.PMIHPCandPerNode))
	}
	return fmt.Sprintf("Figure 5 — total execution time (simulated s) on %d nodes\ncorpus %s: %d docs, %d unique words (budget %.0f MB for CD)\n\n%s",
		r.Nodes, r.Corpus.Name, r.Stats.Docs, r.Stats.UniqueItems, float64(r.Budget)/(1<<20), t.String())
}

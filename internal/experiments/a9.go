package experiments

import (
	"errors"
	"fmt"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

func init() {
	register("a9", "Ablation: text vs retail data (the §1 claim that retail-tuned miners fail on text)", func(p Params) (fmt.Stringer, error) {
		return RunA9(p)
	})
}

// RunA9 tests the paper's motivating claim directly: on a classic
// retail-shaped workload (T10.I4: ~1,000 items, ~10-item baskets) Apriori
// and DHP are perfectly serviceable and MIHP's machinery buys little — it
// is the text shape (10^4-10^5 words, 100+-word documents) that breaks
// them. The same four miners run on both workloads at an equivalent
// relative support.
func RunA9(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()

	retailTx := map[corpus.Scale]int{
		corpus.Small:   2000,
		corpus.Harness: 20000,
		corpus.Paper:   100000,
	}[p.Scale]
	retail, err := corpus.GenerateRetail(corpus.RetailT10I4(retailTx))
	if err != nil {
		return nil, err
	}
	tb, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}

	out := &kvResult{
		title: "Ablation A9 — the same miners on retail vs text data (retail at 0.5% support, text at its low-support regime; up to 3-itemsets)",
		note:  "expected shape: on retail, Apriori/DHP are fine and MIHP adds little; on text, they blow up and MIHP wins",
		t:     &table{header: []string{"data", "algorithm", "time (s)", "candidates", "frequent"}},
	}
	type entry struct {
		name string
		run  func(db *txdb.DB, opts mining.Options) (*mining.Result, error)
	}
	algos := []entry{
		{"apriori", apriori.Mine},
		{"dhp", dhp.Mine},
		{"fpgrowth", fpgrowth.Mine},
		{"mihp", core.MineMIHP},
	}
	for _, data := range []struct {
		name string
		db   *txdb.DB
		opts mining.Options
	}{
		// Retail at the literature's 0.5% support; text at the paper's
		// low-support regime (minimum support count 2), where document
		// retrieval needs the rules to be mined.
		{"retail T10.I4", retail, mining.Options{MinSupFrac: 0.005, MaxK: 3}},
		{"text corpus B", tb.db, mining.Options{MinSupCount: 2, MaxK: 3}},
	} {
		var ref *mining.Result
		for _, a := range algos {
			p.logf("a9: %s / %s", data.name, a.name)
			r, err := a.run(data.db, data.opts)
			if errors.Is(err, mining.ErrMemoryExceeded) {
				out.t.add(data.name, a.name, "OOM", "-", "-")
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("a9 %s/%s: %w", data.name, a.name, err)
			}
			if ref == nil {
				ref = r
			} else if ok, diff := mining.SameFrequentSets(ref, r); !ok {
				return nil, fmt.Errorf("a9 %s/%s: results diverge: %s", data.name, a.name, diff)
			}
			out.t.add(data.name, a.name, secs(r.Metrics.Work.Seconds()),
				count(r.Metrics.Candidates()), count(len(r.Frequent)))
		}
	}
	return out, nil
}

package experiments

import (
	"fmt"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

func init() {
	register("e9", "Section 3 closing experiment: 8-week corpus, 1 vs 8 nodes, superlinear speedup and candidate overlap", func(p Params) (fmt.Stringer, error) {
		return RunE9(p)
	})
}

// E9Result reproduces the paper's closing experiment on the 8-week corpus:
// "The 1-node system required 845,702 seconds to find 1,554,442 frequent
// 2-itemsets whereas the 8-node system required 33,183 seconds … a
// superlinear speedup of 25.5 … only 21.7% of the candidate 2-itemsets were
// counted at more than one processing node."
type E9Result struct {
	Corpus corpus.Config
	Stats  txdb.Stats

	OneNodeSecs   float64
	EightNodeSecs float64
	Speedup       float64

	Frequent2 int // frequent 2-itemsets found

	OneNodeCand2   int     // candidate 2-itemsets, 1-node run
	PerNodeCand2   float64 // average per node, 8-node run
	TotalCand2     int     // summed across the 8 nodes
	DistinctCand2  int     // distinct candidates across nodes
	SharedFraction float64 // counted at more than one node
	MinSupCount    int
}

// RunE9 runs the 8-week-corpus experiment: minimum support count 2, mining
// frequent 2-itemsets, PMIHP on 1 and on 8 nodes with candidate tallying.
func RunE9(p Params) (*E9Result, error) {
	p = p.WithDefaults()
	cfg := corpus.CorpusC(p.Scale)
	b, err := buildCorpus(cfg)
	if err != nil {
		return nil, err
	}
	opts := mining.Options{MinSupCount: 2, MaxK: 2}
	res := &E9Result{Corpus: cfg, Stats: b.stats, MinSupCount: 2}

	p.logf("e9: PMIHP on 1 node")
	one, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 1, ApproxDirectCounts: true}, opts)
	if err != nil {
		return nil, err
	}
	res.OneNodeSecs = one.TotalSeconds
	res.OneNodeCand2 = one.Nodes[0].Metrics.CandidatesByK[2]

	p.logf("e9: PMIHP on 8 nodes (with candidate tally)")
	// ApproxDirectCounts reproduces the paper's configuration: itemsets
	// whose local count already reaches the global minimum are recorded
	// without polling, so only true global candidates travel — the overlap
	// statistic below is meaningless under exhaustive exact-count polling.
	tally := core.NewPairTally()
	eight, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 8, Tally: tally, ApproxDirectCounts: true}, opts)
	if err != nil {
		return nil, err
	}
	res.EightNodeSecs = eight.TotalSeconds
	if res.EightNodeSecs > 0 {
		res.Speedup = res.OneNodeSecs / res.EightNodeSecs
	}
	res.PerNodeCand2 = eight.AvgCandidates(2)
	for _, n := range eight.Nodes {
		res.TotalCand2 += n.Metrics.CandidatesByK[2]
	}
	res.DistinctCand2 = tally.Distinct()
	if res.DistinctCand2 > 0 {
		res.SharedFraction = float64(tally.CountedAtLeast(2)) / float64(res.DistinctCand2)
	}
	for _, c := range eight.Result.Frequent {
		if len(c.Set) == 2 {
			res.Frequent2++
		}
	}
	return res, nil
}

func (r *E9Result) String() string {
	t := &table{header: []string{"quantity", "value"}}
	t.add("1-node total time (s)", secs(r.OneNodeSecs))
	t.add("8-node total time (s)", secs(r.EightNodeSecs))
	t.add("speedup (8 over 1)", fmt.Sprintf("%.1f", r.Speedup))
	t.add("frequent 2-itemsets", count(r.Frequent2))
	t.add("cand 2-itemsets, 1-node", count(r.OneNodeCand2))
	t.add("cand 2-itemsets per node (8)", fcount(r.PerNodeCand2))
	t.add("total counted by 8 nodes", count(r.TotalCand2))
	t.add("distinct candidates", count(r.DistinctCand2))
	t.add("counted at >1 node", pct(r.SharedFraction))
	return fmt.Sprintf("Section 3 closing experiment — 8-week corpus at minsup count %d\ncorpus %s: %d docs, %d unique words\n\n%s",
		r.MinSupCount, r.Corpus.Name, r.Stats.Docs, r.Stats.UniqueItems, t.String())
}

package experiments

import (
	"errors"
	"fmt"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

func init() {
	register("e1", "Figure 4: Apriori vs FP-Growth vs MIHP, total time by minimum support (Corpus A)", func(p Params) (fmt.Stringer, error) {
		return RunE1(p)
	})
}

// AlgoRun is one sequential-miner measurement.
type AlgoRun struct {
	Seconds    float64 // simulated seconds (cost model)
	OOM        bool    // exceeded the memory budget, as the paper observed
	Candidates int     // total candidates counted
	Frequent   int     // frequent itemsets found
}

// E1Row is one minimum-support level of Figure 4.
type E1Row struct {
	MinSup   float64
	Apriori  AlgoRun
	FPGrowth AlgoRun
	MIHP     AlgoRun
	DHP      AlgoRun // extra baseline cited in the paper's introduction
}

// E1Result reproduces Figure 4.
type E1Result struct {
	Corpus corpus.Config
	Stats  txdb.Stats
	Budget int64
	Rows   []E1Row
}

// RunE1 runs the Figure 4 sweep.
func RunE1(p Params) (*E1Result, error) {
	p = p.WithDefaults()
	cfg := corpus.CorpusA(p.Scale)
	b, err := buildCorpus(cfg)
	if err != nil {
		return nil, err
	}
	budget := p.MemoryBudget
	if budget == 0 {
		budget = calibrateBudget(b.db)
	}
	res := &E1Result{Corpus: cfg, Stats: b.stats, Budget: budget}

	for _, ms := range p.MinSups {
		p.logf("e1: minsup %.2f%%", 100*ms)
		row := E1Row{MinSup: ms}
		opts := mining.Options{MinSupFrac: ms}

		aOpts := opts
		aOpts.MemoryBudget = budget
		row.Apriori = runSequential(func() (*mining.Result, error) { return apriori.Mine(b.db, aOpts) })
		row.DHP = runSequential(func() (*mining.Result, error) { return dhp.Mine(b.db, aOpts) })
		row.FPGrowth = runSequential(func() (*mining.Result, error) { return fpgrowth.Mine(b.db, opts) })
		row.MIHP = runSequential(func() (*mining.Result, error) { return core.MineMIHP(b.db, opts) })
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runSequential(mine func() (*mining.Result, error)) AlgoRun {
	r, err := mine()
	run := AlgoRun{}
	if r != nil {
		run.Seconds = r.Metrics.Work.Seconds()
		run.Candidates = r.Metrics.Candidates()
		run.Frequent = len(r.Frequent)
	}
	if errors.Is(err, mining.ErrMemoryExceeded) {
		run.OOM = true
	}
	return run
}

func fmtAlgo(a AlgoRun) string {
	if a.OOM {
		return "OOM"
	}
	return secs(a.Seconds)
}

func (r *E1Result) String() string {
	t := &table{header: []string{"minsup", "Apriori", "DHP", "FP-Growth", "MIHP", "|F| (MIHP)"}}
	for _, row := range r.Rows {
		t.add(pct(row.MinSup), fmtAlgo(row.Apriori), fmtAlgo(row.DHP),
			fmtAlgo(row.FPGrowth), fmtAlgo(row.MIHP), count(row.MIHP.Frequent))
	}
	return fmt.Sprintf("Figure 4 — total execution time (simulated s) to find all frequent itemsets\ncorpus %s: %d docs, %d unique words (budget %.0f MB for Apriori/DHP)\n\n%s",
		r.Corpus.Name, r.Stats.Docs, r.Stats.UniqueItems, float64(r.Budget)/(1<<20), t.String())
}

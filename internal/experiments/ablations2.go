package experiments

import (
	"fmt"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

func init() {
	register("a6", "Ablation: database-to-node assignment (chronological vs round-robin vs skew-aware)", func(p Params) (fmt.Stringer, error) {
		return RunA6(p)
	})
	register("a7", "Ablation: global-candidate polling batch size (paper sets 20,000)", func(p Params) (fmt.Stringer, error) {
		return RunA7(p)
	})
	register("a8", "Ablation: pruning levers — Apriori vs IHP vs MIHP (what THT and Multipass each add)", func(p Params) (fmt.Stringer, error) {
		return RunA8(p)
	})
}

// RunA6 compares database-to-node assignments. The paper distributes
// chronologically and notes that higher skew favours PMIHP, citing Cheung
// et al. for skew-increasing partitioning; SplitSkewAware implements that
// direction and SplitRoundRobin the adversarial opposite.
func RunA6(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	// Corpus C: its 40 publication days give the splitters real choices
	// (Corpus B has 8 days on 8 nodes — every assignment is one day per
	// node).
	b, err := buildCorpus(corpus.CorpusC(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A6 — PMIHP (8 nodes) vs database-to-node assignment (Corpus C)",
		note:  "expected shape: lower vocabulary overlap (more skew) -> fewer candidates per node -> faster",
		t:     &table{header: []string{"assignment", "vocab overlap", "total (s)", "cand2/node"}},
	}
	opts := mining.Options{MinSupCount: 2, MaxK: 2}
	for _, tc := range []struct {
		name  string
		split func(*txdb.DB, int) []*txdb.DB
	}{
		{"round-robin", (*txdb.DB).SplitRoundRobin},
		{"chronological", (*txdb.DB).SplitChronological},
		{"skew-aware", (*txdb.DB).SplitSkewAware},
	} {
		p.logf("a6: %s", tc.name)
		overlap := txdb.VocabOverlap(tc.split(b.db, 8))
		r, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 8, Split: tc.split}, opts)
		if err != nil {
			return nil, err
		}
		out.t.add(tc.name, fmt.Sprintf("%.3f", overlap), secs(r.TotalSeconds),
			fcount(r.AvgCandidates(2)))
	}
	return out, nil
}

// RunA7 varies the global-candidate batch size that triggers polling. The
// paper uses 20,000 and discusses balancing polling frequency against the
// efficiency lost by keeping transactions pollable.
func RunA7(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A7 — PMIHP (8 nodes) vs polling batch size (Corpus B)",
		note:  "expected shape: small batches -> many poll rounds/messages; large batches amortize; total time varies mildly",
		t:     &table{header: []string{"batch", "total (s)", "poll rounds", "messages", "MB sent"}},
	}
	for _, batch := range []int{500, 2000, 20000, 200000} {
		p.logf("a7: batch %d", batch)
		opts := mining.Options{MinSupCount: 2, MaxK: 3, GlobalCandidateBatch: batch}
		r, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 8}, opts)
		if err != nil {
			return nil, err
		}
		rounds, msgs, bytes := 0, 0, int64(0)
		for _, n := range r.Nodes {
			rounds += n.Metrics.PollRounds
			msgs += n.Metrics.MessagesSent
			bytes += n.Metrics.BytesSent
		}
		out.t.add(count(batch), secs(r.TotalSeconds), count(rounds), count(msgs),
			fmt.Sprintf("%.1f", float64(bytes)/(1<<20)))
	}
	return out, nil
}

// RunA8 separates the contributions of the two techniques MIHP combines:
// plain Apriori (no pruning), IHP (THT pruning, no partitioning), and MIHP
// (THT pruning + Multipass partitioning + trimming).
func RunA8(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A8 — pruning levers on Corpus B (minsup count 2, up to 3-itemsets)",
		note:  "expected shape: THT pruning (IHP) cuts candidates/time vs Apriori; Multipass (MIHP) additionally bounds candidate memory",
		t:     &table{header: []string{"algorithm", "time (s)", "cand2", "cand3", "peak cand MB"}},
	}
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	type entry struct {
		name string
		run  func() (*mining.Result, error)
	}
	for _, e := range []entry{
		{"apriori", func() (*mining.Result, error) { return apriori.Mine(b.db, opts) }},
		{"ihp", func() (*mining.Result, error) { return core.MineIHP(b.db, opts) }},
		{"mihp", func() (*mining.Result, error) { return core.MineMIHP(b.db, opts) }},
	} {
		p.logf("a8: %s", e.name)
		r, err := e.run()
		if err != nil {
			return nil, err
		}
		out.t.add(e.name, secs(r.Metrics.Work.Seconds()),
			count(r.Metrics.CandidatesByK[2]), count(r.Metrics.CandidatesByK[3]),
			fmt.Sprintf("%.1f", float64(r.Metrics.PeakCandidateBytes)/(1<<20)))
	}
	return out, nil
}

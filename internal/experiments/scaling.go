package experiments

import (
	"fmt"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/stats"
	"pmihp/internal/txdb"
)

func init() {
	register("e3", "Figure 6: PMIHP total execution time vs number of nodes (Corpus B, minsup count 2, 3-itemsets)", renderScaling(fig6))
	register("e4", "Figure 7: PMIHP speedup vs number of nodes", renderScaling(fig7))
	register("e5", "Figure 8: global support counting time (deferred-polling measurement)", renderScaling(fig8))
	register("e6", "Figure 9: average execution time per node", renderScaling(fig9))
	register("e7", "Figure 10: average candidate 2-itemsets per node", renderScaling(fig10))
	register("e8", "Figure 11: average candidate 3-itemsets per node (incl. Apriori)", renderScaling(fig11))
	register("scaling", "Figures 6-11 in one run (Corpus B scaling study)", func(p Params) (fmt.Stringer, error) {
		s, err := RunScaling(p)
		if err != nil {
			return nil, err
		}
		return renderAll{s}, nil
	})
}

// ScalingResult holds the shared measurements behind Figures 6–11: PMIHP on
// 1, 2, 4 and 8 nodes over Corpus B at a global minimum support count of 2
// documents, mining up to frequent 3-itemsets.
type ScalingResult struct {
	Corpus corpus.Config
	Stats  txdb.Stats
	Nodes  []int

	TotalSecs   []float64 // Fig 6: total execution time per node count
	Speedups    []float64 // Fig 7: over the 1-node run
	AvgNodeSecs []float64 // Fig 9
	AvgCand2    []float64 // Fig 10
	AvgCand3    []float64 // Fig 11

	// Deferred-mode measurements (nodes >= 2), Fig 8.
	DeferNodes  []int
	GlobalSecs  []float64
	GlobalPct   []float64 // fraction of that run's total time
	AprioriC3   int       // Fig 11 reference: sequential Apriori candidates
	FrequentCnt int       // |F| found (sanity, constant across node counts)
}

var scalingCache = map[corpus.Scale]*ScalingResult{}

// RunScaling performs the shared Corpus B scaling study (memoized per scale
// within the process).
func RunScaling(p Params) (*ScalingResult, error) {
	p = p.WithDefaults()
	corpusMu.Lock()
	cached := scalingCache[p.Scale]
	corpusMu.Unlock()
	if cached != nil {
		return cached, nil
	}

	cfg := corpus.CorpusB(p.Scale)
	b, err := buildCorpus(cfg)
	if err != nil {
		return nil, err
	}
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	res := &ScalingResult{Corpus: cfg, Stats: b.stats, Nodes: p.Nodes}

	for _, n := range p.Nodes {
		p.logf("scaling: PMIHP on %d node(s)", n)
		run, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: n}, opts)
		if err != nil {
			return nil, err
		}
		res.TotalSecs = append(res.TotalSecs, run.TotalSeconds)
		res.AvgNodeSecs = append(res.AvgNodeSecs, run.AvgNodeSeconds())
		res.AvgCand2 = append(res.AvgCand2, run.AvgCandidates(2))
		res.AvgCand3 = append(res.AvgCand3, run.AvgCandidates(3))
		res.FrequentCnt = len(run.Result.Frequent)

		if n >= 2 {
			p.logf("scaling: PMIHP deferred on %d node(s)", n)
			def, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: n, Mode: core.Deferred}, opts)
			if err != nil {
				return nil, err
			}
			res.DeferNodes = append(res.DeferNodes, n)
			res.GlobalSecs = append(res.GlobalSecs, def.GlobalCountSeconds)
			if def.TotalSeconds > 0 {
				res.GlobalPct = append(res.GlobalPct, def.GlobalCountSeconds/def.TotalSeconds)
			} else {
				res.GlobalPct = append(res.GlobalPct, 0)
			}
		}
	}
	res.Speedups = stats.Speedup(res.TotalSecs[0], res.TotalSecs)

	p.logf("scaling: Apriori (MaxK=3) reference for Fig 11")
	ap, err := apriori.Mine(b.db, opts)
	if err == nil {
		res.AprioriC3 = ap.Metrics.CandidatesByK[3]
	} else if !mining.IsMemoryErr(err) {
		return nil, err
	} else {
		res.AprioriC3 = -1 // could not run, like the paper's low-support cases
	}

	corpusMu.Lock()
	scalingCache[p.Scale] = res
	corpusMu.Unlock()
	return res, nil
}

type scalingRender func(*ScalingResult) string

func renderScaling(f scalingRender) func(Params) (fmt.Stringer, error) {
	return func(p Params) (fmt.Stringer, error) {
		s, err := RunScaling(p)
		if err != nil {
			return nil, err
		}
		return stringerFunc(f(s)), nil
	}
}

type stringerFunc string

func (s stringerFunc) String() string { return string(s) }

type renderAll struct{ s *ScalingResult }

func (r renderAll) String() string {
	return fig6(r.s) + "\n" + fig7(r.s) + "\n" + fig8(r.s) + "\n" +
		fig9(r.s) + "\n" + fig10(r.s) + "\n" + fig11(r.s)
}

func scalingHeader(s *ScalingResult, fig string) string {
	return fmt.Sprintf("%s\ncorpus %s: %d docs, %d unique words, minsup count 2, frequent itemsets up to size 3\n",
		fig, s.Corpus.Name, s.Stats.Docs, s.Stats.UniqueItems)
}

func fig6(s *ScalingResult) string {
	t := &table{header: []string{"nodes", "total time (s)"}}
	for i, n := range s.Nodes {
		t.add(count(n), secs(s.TotalSecs[i]))
	}
	return scalingHeader(s, "Figure 6 — PMIHP total execution time") + "\n" + t.String()
}

func fig7(s *ScalingResult) string {
	t := &table{header: []string{"nodes", "speedup", "rate vs prev"}}
	rates := stats.GrowthRates(s.Speedups)
	for i, n := range s.Nodes {
		rate := "-"
		if i > 0 {
			rate = fmt.Sprintf("%.2fx", rates[i-1])
		}
		t.add(count(n), fmt.Sprintf("%.2f", s.Speedups[i]), rate)
	}
	return scalingHeader(s, "Figure 7 — PMIHP speedup over sequential (1-node)") + "\n" + t.String()
}

func fig8(s *ScalingResult) string {
	t := &table{header: []string{"nodes", "global counting (s)", "share of total"}}
	for i, n := range s.DeferNodes {
		t.add(count(n), secs(s.GlobalSecs[i]), pct(s.GlobalPct[i]))
	}
	return scalingHeader(s, "Figure 8 — global support counting time (deferred, synchronized measurement)") + "\n" + t.String()
}

func fig9(s *ScalingResult) string {
	t := &table{header: []string{"nodes", "avg time per node (s)"}}
	for i, n := range s.Nodes {
		t.add(count(n), secs(s.AvgNodeSecs[i]))
	}
	return scalingHeader(s, "Figure 9 — average execution time per node") + "\n" + t.String()
}

func fig10(s *ScalingResult) string {
	t := &table{header: []string{"config", "avg candidate 2-itemsets per node"}}
	for i, n := range s.Nodes {
		label := fmt.Sprintf("%d-node PMIHP", n)
		if n == 1 {
			label = "MIHP"
		}
		t.add(label, fcount(s.AvgCand2[i]))
	}
	return scalingHeader(s, "Figure 10 — average number of candidate 2-itemsets per node") + "\n" + t.String()
}

func fig11(s *ScalingResult) string {
	t := &table{header: []string{"config", "avg candidate 3-itemsets per node"}}
	ap := "OOM"
	if s.AprioriC3 >= 0 {
		ap = count(s.AprioriC3)
	}
	t.add("Apriori", ap)
	for i, n := range s.Nodes {
		label := fmt.Sprintf("%d-node PMIHP", n)
		if n == 1 {
			label = "MIHP"
		}
		t.add(label, fcount(s.AvgCand3[i]))
	}
	return scalingHeader(s, "Figure 11 — average number of candidate 3-itemsets per node") + "\n" + t.String()
}

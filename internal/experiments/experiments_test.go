package experiments

import (
	"strings"
	"testing"

	"pmihp/internal/corpus"
)

func small() Params { return Params{Scale: corpus.Small} }

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must have an experiment.
	wanted := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
		"scaling", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10", "a11"}
	for _, id := range wanted {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) < len(wanted) {
		t.Fatalf("registry has %d entries", len(All()))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestE1ShapesAtSmallScale(t *testing.T) {
	r, err := RunE1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		// MIHP must always run and must never lose to Apriori when Apriori
		// is out of memory.
		if row.MIHP.OOM {
			t.Fatalf("MIHP OOM at %g", row.MinSup)
		}
		if row.MIHP.Seconds <= 0 {
			t.Fatalf("MIHP time missing at %g", row.MinSup)
		}
		// Times grow (weakly) as support drops for the always-running MIHP.
		if i > 0 && row.MIHP.Seconds < r.Rows[i-1].MIHP.Seconds*0.5 {
			t.Fatalf("MIHP time collapsed between rows %d and %d", i-1, i)
		}
	}
	// The headline Figure 4 claim at the lowest support level: MIHP beats
	// Apriori (or Apriori cannot run at all).
	last := r.Rows[len(r.Rows)-1]
	if !last.Apriori.OOM && last.Apriori.Seconds < last.MIHP.Seconds {
		t.Fatalf("Apriori (%.1fs) beat MIHP (%.1fs) at the lowest support",
			last.Apriori.Seconds, last.MIHP.Seconds)
	}
	if !strings.Contains(r.String(), "Figure 4") {
		t.Fatal("render missing title")
	}
}

func TestE2ShapesAtSmallScale(t *testing.T) {
	r, err := RunE2(small())
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	// The headline Figure 5 claim at the lowest support: PMIHP beats CD (or
	// CD cannot run).
	if !last.CDOOM && last.CDSeconds < last.PMIHPSecs {
		t.Fatalf("CD (%.1fs) beat PMIHP (%.1fs) at the lowest support",
			last.CDSeconds, last.PMIHPSecs)
	}
	if !strings.Contains(r.String(), "Figure 5") {
		t.Fatal("render missing title")
	}
}

func TestScalingShapes(t *testing.T) {
	s, err := RunScaling(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TotalSecs) != 4 {
		t.Fatalf("rows = %d", len(s.TotalSecs))
	}
	// Figure 6: total time decreases with node count.
	for i := 1; i < len(s.TotalSecs); i++ {
		if s.TotalSecs[i] >= s.TotalSecs[i-1] {
			t.Fatalf("total time not decreasing: %v", s.TotalSecs)
		}
	}
	// Figure 7: speedup grows, and the 8-node speedup exceeds half the node
	// count (the paper's is superlinear; we assert a conservative floor so
	// the test is robust to corpus regeneration).
	if s.Speedups[3] < 4 {
		t.Fatalf("8-node speedup %.2f below floor", s.Speedups[3])
	}
	// Figure 10/11: per-node candidates at 8 nodes are well below 1 node.
	if s.AvgCand2[3] >= s.AvgCand2[0] {
		t.Fatalf("per-node candidate 2-itemsets did not fall: %v", s.AvgCand2)
	}
	if s.AvgCand3[3] >= s.AvgCand3[0] {
		t.Fatalf("per-node candidate 3-itemsets did not fall: %v", s.AvgCand3)
	}
	// Figure 11 reference: Apriori counts at least as many candidate
	// 3-itemsets as MIHP (IHP pruning only removes).
	if s.AprioriC3 >= 0 && float64(s.AprioriC3) < s.AvgCand3[0] {
		t.Fatalf("Apriori C3 (%d) below MIHP (%g)", s.AprioriC3, s.AvgCand3[0])
	}
	// Figure 8: the global counting phase exists, and its impact on the
	// total time is small (the paper's operative claim — "the impact of the
	// global support counting time on the overall speedup is very small").
	// Its absolute decline with node count is corpus-density dependent and
	// is checked at harness scale in EXPERIMENTS.md, not here.
	if len(s.GlobalSecs) != 3 {
		t.Fatalf("deferred rows = %d", len(s.GlobalSecs))
	}
	for i, g := range s.GlobalSecs {
		if g <= 0 {
			t.Fatalf("global counting phase missing at %d nodes", s.DeferNodes[i])
		}
		if s.GlobalPct[i] > 0.5 {
			t.Fatalf("global counting dominates at %d nodes: %.0f%%",
				s.DeferNodes[i], 100*s.GlobalPct[i])
		}
	}
	for _, f := range []func(*ScalingResult) string{fig6, fig7, fig8, fig9, fig10, fig11} {
		if f(s) == "" {
			t.Fatal("empty figure render")
		}
	}
}

func TestE9Shapes(t *testing.T) {
	r, err := RunE9(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Fatalf("8-node run slower than 1-node: %+v", r)
	}
	if r.DistinctCand2 <= 0 || r.TotalCand2 < r.DistinctCand2 {
		t.Fatalf("candidate tallies inconsistent: total %d distinct %d",
			r.TotalCand2, r.DistinctCand2)
	}
	if r.SharedFraction < 0 || r.SharedFraction > 1 {
		t.Fatalf("shared fraction %g", r.SharedFraction)
	}
	if r.Frequent2 <= 0 {
		t.Fatal("no frequent 2-itemsets found")
	}
	if !strings.Contains(r.String(), "8-week") {
		t.Fatal("render missing title")
	}
}

func TestCalibrateBudgetBetweenLevels(t *testing.T) {
	b, err := buildCorpus(corpus.CorpusA(corpus.Small))
	if err != nil {
		t.Fatal(err)
	}
	budget := calibrateBudget(b.db)
	if budget <= 0 {
		t.Fatalf("budget = %d", budget)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"a1", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10", "a11"} {
		e, _ := ByID(id)
		out, err := e.Run(small())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out.String() == "" {
			t.Fatalf("%s: empty output", id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("1", "2")
	tb.add("333", "4")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

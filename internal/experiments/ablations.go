package experiments

import (
	"fmt"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
)

func init() {
	register("a1", "Ablation: Multipass partition size insensitivity (paper §2.1/§3 claim)", func(p Params) (fmt.Stringer, error) {
		return RunA1(p)
	})
	register("a2", "Ablation: data skew vs PMIHP advantage (paper §3, Cheung et al. discussion)", func(p Params) (fmt.Stringer, error) {
		return RunA2(p)
	})
	register("a3", "Ablation: THT size vs pruning power (paper §3 claim that sizes are not critical)", func(p Params) (fmt.Stringer, error) {
		return RunA3(p)
	})
	register("a4", "Ablation: transaction trimming/pruning on vs off (paper §2.3)", func(p Params) (fmt.Stringer, error) {
		return RunA4(p)
	})
	register("a5", "Ablation: exact vs paper-style approximate direct counts (polling traffic)", func(p Params) (fmt.Stringer, error) {
		return RunA5(p)
	})
}

// kvResult is a generic two-column ablation table.
type kvResult struct {
	title string
	note  string
	t     *table
}

func (r *kvResult) String() string {
	return r.title + "\n" + r.note + "\n\n" + r.t.String()
}

// RunA1 varies the Multipass partition size: the paper asserts "the total
// execution time is not sensitive to the partition size unless it is too
// large."
func RunA1(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A1 — MIHP total time vs partition size (Corpus B, minsup count 2, up to 3-itemsets)",
		note:  "expected shape: flat until partitions grow large enough to blow up candidate memory",
		t:     &table{header: []string{"partition size", "time (s)", "passes", "peak cand MB"}},
	}
	for _, size := range []int{25, 50, 100, 200, 400} {
		p.logf("a1: partition size %d", size)
		r, err := core.MineMIHP(b.db, mining.Options{MinSupCount: 2, MaxK: 3, PartitionSize: size})
		if err != nil {
			return nil, err
		}
		out.t.add(count(size), secs(r.Metrics.Work.Seconds()), count(r.Metrics.Passes),
			fmt.Sprintf("%.1f", float64(r.Metrics.PeakCandidateBytes)/(1<<20)))
	}
	return out, nil
}

// RunA2 regenerates Corpus B with varying chronological skew and measures
// the per-node candidate reduction PMIHP extracts from it — "the more
// skewed the data distribution, the better the performance of PMIHP."
func RunA2(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	out := &kvResult{
		title: "Ablation A2 — PMIHP (8 nodes) vs chronological skew (Corpus B variants)",
		note: "note: the knob changes two things at once — topical repetition (more candidates) and locality\n" +
			"(better partitioning) — so speedup peaks at moderate skew; A6 isolates pure locality instead",
		t: &table{header: []string{"skew", "total (s)", "cand2/node", "speedup vs 1-node"}},
	}
	for _, skew := range []float64{0, 0.15, 0.30, 0.45} {
		p.logf("a2: skew %.2f", skew)
		cfg := corpus.CorpusB(p.Scale)
		cfg.Skew = skew
		b, err := buildCorpus(cfg)
		if err != nil {
			return nil, err
		}
		opts := mining.Options{MinSupCount: 2, MaxK: 3}
		one, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 1}, opts)
		if err != nil {
			return nil, err
		}
		eight, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 8}, opts)
		if err != nil {
			return nil, err
		}
		sp := 0.0
		if eight.TotalSeconds > 0 {
			sp = one.TotalSeconds / eight.TotalSeconds
		}
		out.t.add(fmt.Sprintf("%.2f", skew), secs(eight.TotalSeconds),
			fcount(eight.AvgCandidates(2)), fmt.Sprintf("%.2f", sp))
	}
	return out, nil
}

// RunA3 varies the THT size: the paper asserts "the sizes of the partitions
// and THT are not critical for the overall performance."
func RunA3(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A3 — MIHP vs TID hash table size (Corpus B, minsup count 2, up to 3-itemsets)",
		note:  "expected shape: more entries -> more THT pruning, with flattening returns; time varies mildly",
		t:     &table{header: []string{"THT entries", "time (s)", "pruned by THT", "cand2"}},
	}
	for _, entries := range []int{50, 100, 200, 400, 800} {
		p.logf("a3: THT entries %d", entries)
		r, err := core.MineMIHP(b.db, mining.Options{MinSupCount: 2, MaxK: 3, THTEntries: entries})
		if err != nil {
			return nil, err
		}
		out.t.add(count(entries), secs(r.Metrics.Work.Seconds()),
			fmt.Sprintf("%d", r.Metrics.PrunedByTHT), count(r.Metrics.CandidatesByK[2]))
	}
	return out, nil
}

// RunA4 toggles transaction trimming/pruning.
func RunA4(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A4 — MIHP with and without transaction trimming/pruning (Corpus B)",
		note:  "expected shape: trimming cuts scan work on the k>=3 passes at identical output",
		t:     &table{header: []string{"trimming", "time (s)", "trimmed items", "pruned tx"}},
	}
	for _, disable := range []bool{false, true} {
		label := "on"
		if disable {
			label = "off"
		}
		p.logf("a4: trimming %s", label)
		r, err := core.MineMIHP(b.db, mining.Options{MinSupCount: 2, MaxK: 3, DisableTrimming: disable})
		if err != nil {
			return nil, err
		}
		out.t.add(label, secs(r.Metrics.Work.Seconds()),
			fmt.Sprintf("%d", r.Metrics.TrimmedItems), fmt.Sprintf("%d", r.Metrics.PrunedTx))
	}
	return out, nil
}

// RunA5 compares exact global counts (every classified itemset polled)
// against the paper's approximation (directly-global itemsets recorded with
// their local count, never polled), measuring the polling traffic saved.
func RunA5(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A5 — PMIHP (8 nodes) exact vs approximate direct counts (Corpus B)",
		note:  "expected shape: approximate mode sends fewer poll messages/bytes; same itemsets found",
		t:     &table{header: []string{"mode", "total (s)", "messages", "MB sent", "frequent"}},
	}
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	for _, approx := range []bool{false, true} {
		label := "exact"
		if approx {
			label = "approx (paper)"
		}
		p.logf("a5: %s", label)
		r, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: 8, ApproxDirectCounts: approx}, opts)
		if err != nil {
			return nil, err
		}
		msgs, bytes := 0, int64(0)
		for _, n := range r.Nodes {
			msgs += n.Metrics.MessagesSent
			bytes += n.Metrics.BytesSent
		}
		out.t.add(label, secs(r.TotalSeconds), count(msgs),
			fmt.Sprintf("%.2f", float64(bytes)/(1<<20)), count(len(r.Result.Frequent)))
	}
	return out, nil
}

package experiments

import (
	"fmt"

	"pmihp/internal/cluster"
	"pmihp/internal/corpus"
	"pmihp/internal/tht"
)

func init() {
	register("a10", "Ablation: collective topology for the THT exchange (why the paper's n-cube)", func(p Params) (fmt.Stringer, error) {
		return RunA10(p)
	})
}

// RunA10 models the THT all-gather of PMIHP's setup phase — the largest
// single transfer of the algorithm — under the paper's binary n-cube and
// two naive alternatives, across node counts. The per-node payload is the
// actual retained-THT size measured on Corpus B.
func RunA10(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusB(p.Scale))
	if err != nil {
		return nil, err
	}
	out := &kvResult{
		title: "Ablation A10 — THT exchange time by collective topology (Corpus B, minsup count 2)",
		note:  "expected shape: hypercube <= ring <= star, the gap widening with node count",
		t:     &table{header: []string{"nodes", "THT bytes/node", "hypercube (s)", "ring (s)", "star (s)"}},
	}
	for _, n := range p.Nodes {
		if n < 2 {
			continue
		}
		// Measure the real per-node THT payload: local tables over the
		// node's slice, retained to the globally frequent items.
		parts := b.db.SplitChronological(n)
		globalMin := 2
		counts := b.db.ItemCounts()
		entries := 400 / n
		if entries < 4 {
			entries = 4
		}
		maxBytes := int64(0)
		for _, part := range parts {
			local, _ := tht.BuildLocal(part, entries)
			local.Retain(func(it uint32) bool { return counts[it] >= globalMin })
			if bs := int64(local.Bytes()); bs > maxBytes {
				maxBytes = bs
			}
		}
		row := []string{count(n), fmt.Sprintf("%d", maxBytes)}
		for _, topo := range []cluster.Topology{cluster.Hypercube, cluster.Ring, cluster.Star} {
			row = append(row, secs(cluster.AllGatherTime(topo, n, maxBytes, cluster.FastEthernet)))
		}
		out.t.add(row...)
	}
	return out, nil
}

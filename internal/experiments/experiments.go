// Package experiments reproduces every table and figure of the paper's
// evaluation (section 3) plus the ablations DESIGN.md calls out. Each
// experiment builds its workload from the synthetic corpus presets, runs
// the relevant miners, and renders a paper-style text table. See
// EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// Params configures an experiment run.
type Params struct {
	// Scale selects the corpus size (small, harness, paper).
	Scale corpus.Scale

	// MemoryBudget is the candidate-memory constraint for Apriori and Count
	// Distribution, standing in for the paper's 416 MB JVM heap. Zero means
	// auto-calibrate: the budget is placed between the candidate footprints
	// of the 2.00% and 1.75% runs, reproducing the paper's observation that
	// both algorithms run at 2% and fail below it. The *existence* of the
	// memory cliff is the phenomenon; its location is a testbed constant
	// (see DESIGN.md §2).
	MemoryBudget int64

	// MinSups are the minimum support levels of the E1/E2 sweeps
	// (default: the paper's 5%, 4%, 3%, 2%, 1.75%).
	MinSups []float64

	// Nodes are the cluster sizes of the scaling experiments
	// (default: the paper's 1, 2, 4, 8).
	Nodes []int

	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// WithDefaults fills unset fields with the paper's values.
func (p Params) WithDefaults() Params {
	if len(p.MinSups) == 0 {
		p.MinSups = []float64{0.05, 0.04, 0.03, 0.02, 0.0175}
	}
	if len(p.Nodes) == 0 {
		p.Nodes = []int{1, 2, 4, 8}
	}
	return p
}

func (p Params) logf(format string, args ...interface{}) {
	if p.Log != nil {
		fmt.Fprintf(p.Log, format+"\n", args...)
	}
}

// Experiment is a runnable entry of the registry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) (fmt.Stringer, error)
}

var registry []Experiment

func register(id, title string, run func(Params) (fmt.Stringer, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// built caches generated corpora within a process so experiments sharing a
// preset do not regenerate it.
type built struct {
	db    *txdb.DB
	vocab *text.Vocabulary
	stats txdb.Stats
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*built{}
)

func buildCorpus(cfg corpus.Config) (*built, error) {
	key := fmt.Sprintf("%+v", cfg)
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if b, ok := corpusCache[key]; ok {
		return b, nil
	}
	docs, err := corpus.Generate(cfg)
	if err != nil {
		return nil, err
	}
	db, vocab := text.ToDB(docs, nil)
	b := &built{db: db, vocab: vocab, stats: db.ComputeStats()}
	corpusCache[key] = b
	return b, nil
}

// calibrateBudget places the memory budget between the conceptual candidate
// footprints of the 2.00% and 1.75% sweeps over db (geometric mean), so the
// sweep reproduces the paper's "runs at 2%, out of memory below 2%".
func calibrateBudget(db *txdb.DB) int64 {
	f := func(frac float64) int64 {
		min := db.MinSupCount(frac)
		n := 0
		for _, c := range db.ItemCounts() {
			if c >= min {
				n++
			}
		}
		return mining.CandidateBytes(2, n*(n-1)/2)
	}
	at2, at175 := f(0.02), f(0.0175)
	if at175 <= at2 {
		return at2 + 1
	}
	return int64(math.Sqrt(float64(at2) * float64(at175)))
}

// ---- rendering helpers ----

// table accumulates fixed-width rows for paper-style text output.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out []byte
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				out = append(out, ' ', ' ')
			}
			out = append(out, []byte(pad(c, widths[i]))...)
		}
		out = append(out, '\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = dashes(w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return string(out)
}

func pad(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// secs renders simulated seconds compactly.
func secs(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func count(n int) string { return fmt.Sprintf("%d", n) }

func fcount(n float64) string { return fmt.Sprintf("%.0f", n) }

// sortedKeys returns the sorted keys of an int-keyed map.
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

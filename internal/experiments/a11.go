package experiments

import (
	"errors"
	"fmt"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/datadist"
	"pmihp/internal/mining"
)

func init() {
	register("a11", "Ablation: the Agrawal-Shafer family — Count vs Data Distribution vs PMIHP on 8 nodes", func(p Params) (fmt.Stringer, error) {
		return RunA11(p)
	})
}

// RunA11 extends Figure 5 with Data Distribution, the other parallel
// Apriori of the paper's reference [2]: CD hits the memory wall first (it
// replicates all candidates), DD survives longer on memory but pays the
// per-pass database broadcast, and PMIHP avoids both.
func RunA11(p Params) (fmt.Stringer, error) {
	p = p.WithDefaults()
	b, err := buildCorpus(corpus.CorpusA(p.Scale))
	if err != nil {
		return nil, err
	}
	budget := p.MemoryBudget
	if budget == 0 {
		budget = calibrateBudget(b.db)
	}
	const nodes = 8
	out := &kvResult{
		title: fmt.Sprintf("Ablation A11 — CD vs DD vs PMIHP on %d nodes (Corpus A, budget %.0f MB)", nodes, float64(budget)/(1<<20)),
		note:  "expected shape: CD OOMs first; DD survives on memory but pays data broadcasts; PMIHP fastest at low support",
		t:     &table{header: []string{"minsup", "CD (s)", "DD (s)", "PMIHP (s)", "DD MB sent"}},
	}
	for _, ms := range p.MinSups {
		p.logf("a11: minsup %.2f%%", 100*ms)
		bopts := mining.Options{MinSupFrac: ms, MemoryBudget: budget}

		cdCell := "OOM"
		if cd, err := countdist.Mine(b.db, countdist.Config{Nodes: nodes}, bopts); err == nil {
			cdCell = secs(cd.TotalSeconds)
		} else if !errors.Is(err, mining.ErrMemoryExceeded) {
			return nil, err
		}

		ddCell, ddMB := "OOM", "-"
		if dd, err := datadist.Mine(b.db, datadist.Config{Nodes: nodes}, bopts); err == nil {
			ddCell = secs(dd.TotalSeconds)
			bytes := int64(0)
			for _, nrep := range dd.Nodes {
				bytes += nrep.Metrics.BytesSent
			}
			ddMB = fmt.Sprintf("%.1f", float64(bytes)/(1<<20))
		} else if !errors.Is(err, mining.ErrMemoryExceeded) {
			return nil, err
		}

		pm, err := core.MinePMIHP(b.db, core.PMIHPConfig{Nodes: nodes}, mining.Options{MinSupFrac: ms})
		if err != nil {
			return nil, err
		}
		out.t.add(pct(ms), cdCell, ddCell, secs(pm.TotalSeconds), ddMB)
	}
	return out, nil
}

package sched

import (
	"context"
	"fmt"
	"sync"

	"pmihp/internal/distmine"
	"pmihp/internal/mining"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// SchedulerOptions configures a session queue over one pool.
type SchedulerOptions struct {
	// Pool supplies the workers.
	Pool *Pool
	// Cluster is the ClusterConfig template each session starts from.
	// The scheduler overwrites Addrs, Elastic, AcquireWorkers and
	// OnCheckpointStage per session; everything else (timeouts, failure
	// policy, checkpoint dir, straggler knobs, Obs) passes through.
	Cluster distmine.ClusterConfig
	// Logf, when non-nil, receives admission lifecycle logs.
	Logf func(format string, args ...any)
}

// SessionRequest describes one mining session submitted to the queue.
type SessionRequest struct {
	DB   *txdb.DB
	Opts mining.Options
	// Nodes is the logical node count to start with (one pool worker is
	// leased per logical node).
	Nodes int
	// GrowTo, when > Nodes, asks the scheduler to elastically scale the
	// session up to this many logical nodes at the first
	// partition-independent checkpoint barrier (StageItemCounts) — the
	// mid-run scale-up path, exercised by the smoke script. The grow is
	// best-effort: it happens only if the pool has idle workers then.
	GrowTo int
	// EstimatedBytes is the session's PeakHeldBytes admission estimate;
	// zero selects EstimateSessionBytes(DB). The per-worker reservation
	// is EstimatedBytes/Nodes.
	EstimatedBytes int64
	// Label names the session in logs.
	Label string
}

// EstimateSessionBytes is the default admission estimate for mining db:
// the partitions together hold the database once, and the THT build
// roughly doubles the resident footprint at peak, so reserve twice the
// encoded database size. Deliberately simple — admission control needs
// a stable ordering-safe estimate, not a forecast.
func EstimateSessionBytes(db *txdb.DB) int64 {
	return 2 * db.MemBytes()
}

// Session is a handle on a queued or running session.
type Session struct {
	req   SessionRequest
	sched *Scheduler

	admitted chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	order    int      // admission sequence number, 1-based
	workers  []string // currently leased workers
	perW     int64
	ctrl     *distmine.ElasticControl
	res      *distmine.Result
	err      error
	grewOnce sync.Once
}

// AdmitOrder reports the session's admission sequence number (1-based;
// 0 until admitted). Admission is strictly FIFO: sessions are admitted
// in Submit order regardless of size.
func (s *Session) AdmitOrder() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order
}

// Workers returns the addresses currently leased to the session.
func (s *Session) Workers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.workers...)
}

// Admitted is closed when the session has been admitted (leased its
// initial workers and started).
func (s *Session) Admitted() <-chan struct{} { return s.admitted }

// Wait blocks until the session completes and returns its result.
func (s *Session) Wait() (*distmine.Result, error) {
	<-s.done
	return s.res, s.err
}

// Resize asks the running session to change its logical node count to
// n. Growing leases idle pool workers (best-effort: fewer than
// requested may be available, in which case the session keeps its
// current roster); shrinking releases the tail of the roster back to
// the pool immediately. The actual re-split happens at the session's
// next checkpoint barrier.
func (s *Session) Resize(n int) error {
	if n <= 0 {
		return fmt.Errorf("sched: resize to %d nodes", n)
	}
	s.mu.Lock()
	cur := len(s.workers)
	ctrl := s.ctrl
	if ctrl == nil {
		s.mu.Unlock()
		return fmt.Errorf("sched: session not running")
	}
	switch {
	case n == cur:
		s.mu.Unlock()
		return nil
	case n > cur:
		extra := s.sched.opt.Pool.AcquireIdle(n-cur, s.perW)
		if len(extra) == 0 {
			s.mu.Unlock()
			return fmt.Errorf("sched: no idle pool workers to grow from %d to %d nodes", cur, n)
		}
		s.workers = append(s.workers, extra...)
	default:
		dropped := append([]string(nil), s.workers[n:]...)
		s.workers = s.workers[:n]
		s.sched.opt.Pool.Release(dropped, s.perW)
	}
	addrs := append([]string(nil), s.workers...)
	s.mu.Unlock()
	return ctrl.Resize(addrs)
}

// Scheduler admits SessionRequests against a Pool, one at a time in
// FIFO order, and runs each admitted session as a MineCluster call on
// leased workers. Head-of-line blocking is deliberate: a large session
// at the head waits for capacity rather than being starved by a stream
// of small ones slipping past it.
type Scheduler struct {
	opt SchedulerOptions

	mu      sync.Mutex
	queue   chan *Session
	closed  bool
	ctx     context.Context
	cancel  context.CancelFunc
	drained sync.WaitGroup
}

// NewScheduler starts the admitter over opt.Pool.
func NewScheduler(opt SchedulerOptions) *Scheduler {
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{opt: opt, queue: make(chan *Session, 1024), ctx: ctx, cancel: cancel}
	s.drained.Add(1)
	go s.admitLoop()
	return s
}

// Close stops admitting. Queued-but-unadmitted sessions fail; running
// sessions are left to finish (their MineCluster calls own their
// lifecycle). Close does not wait for running sessions.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancel()
	s.drained.Wait()
}

// Submit queues a session. The returned handle's Admitted channel
// closes when the session starts; Wait returns its result.
func (s *Scheduler) Submit(req SessionRequest) (*Session, error) {
	if req.Nodes <= 0 {
		return nil, fmt.Errorf("sched: session needs at least one node, got %d", req.Nodes)
	}
	if req.DB == nil {
		return nil, fmt.Errorf("sched: session needs a database")
	}
	if req.EstimatedBytes <= 0 {
		req.EstimatedBytes = EstimateSessionBytes(req.DB)
	}
	sess := &Session{
		req:      req,
		sched:    s,
		admitted: make(chan struct{}),
		done:     make(chan struct{}),
		perW:     req.EstimatedBytes / int64(req.Nodes),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("sched: scheduler closed")
	}
	select {
	case s.queue <- sess:
	default:
		s.mu.Unlock()
		return nil, fmt.Errorf("sched: session queue full")
	}
	s.mu.Unlock()
	return sess, nil
}

// admitLoop is the single admitter: it leases workers for the queue
// head (blocking until the pool can satisfy it — that block is the
// FIFO guarantee) and hands the session to a runner goroutine.
func (s *Scheduler) admitLoop() {
	defer s.drained.Done()
	seq := 0
	for sess := range s.queue {
		workers, err := s.opt.Pool.Lease(s.ctx, sess.req.Nodes, sess.perW)
		if err != nil {
			sess.err = fmt.Errorf("sched: admitting session %q: %w", sess.req.Label, err)
			close(sess.done)
			continue
		}
		seq++
		sess.mu.Lock()
		sess.order = seq
		sess.workers = workers
		sess.ctrl = distmine.NewElasticControl()
		sess.mu.Unlock()
		s.opt.Logf("sched: admitted session %q (#%d) on %d workers", sess.req.Label, seq, len(workers))
		close(sess.admitted)
		go s.runSession(sess)
	}
	// After Close the loop drains the remaining queue: the cancelled
	// context makes each Lease fail, so queued sessions error out.
}

// runSession executes one admitted session end to end and returns its
// workers to the pool.
func (s *Scheduler) runSession(sess *Session) {
	cfg := s.opt.Cluster
	sess.mu.Lock()
	cfg.Addrs = append([]string(nil), sess.workers...)
	cfg.Elastic = sess.ctrl
	sess.mu.Unlock()

	// The straggler detector's grow path: lease idle workers and fold
	// them into the session's roster so they are released on completion.
	cfg.AcquireWorkers = func(max int) []string {
		extra := s.opt.Pool.AcquireIdle(max, sess.perW)
		if len(extra) > 0 {
			sess.mu.Lock()
			sess.workers = append(sess.workers, extra...)
			sess.mu.Unlock()
		}
		return extra
	}

	// Scheduled mid-run scale-up: fire once, at the first
	// partition-independent barrier.
	if sess.req.GrowTo > sess.req.Nodes {
		cfg.OnCheckpointStage = func(stage uint8) {
			if stage < transport.StageItemCounts {
				return
			}
			sess.grewOnce.Do(func() {
				if err := sess.Resize(sess.req.GrowTo); err != nil {
					s.opt.Logf("sched: session %q: scheduled grow to %d skipped: %v", sess.req.Label, sess.req.GrowTo, err)
				} else {
					s.opt.Logf("sched: session %q: growing to %d logical nodes at checkpoint barrier", sess.req.Label, sess.req.GrowTo)
				}
			})
		}
	}

	res, err := distmine.MineCluster(sess.req.DB, cfg, sess.req.Opts)

	sess.mu.Lock()
	workers := sess.workers
	sess.workers = nil
	sess.ctrl = nil
	sess.res, sess.err = res, err
	sess.mu.Unlock()
	s.opt.Pool.Release(workers, sess.perW)
	s.opt.Logf("sched: session %q done (err=%v); released %d workers", sess.req.Label, err, len(workers))
	close(sess.done)
}

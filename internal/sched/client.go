package sched

import (
	"fmt"
	"net"
	"sync"
	"time"

	"pmihp/internal/transport"
)

// JoinOptions tunes a daemon's pool membership.
type JoinOptions struct {
	// HeartbeatInterval is the keepalive cadence (zero: 500ms). Must be
	// comfortably below the pool's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// CapacityBytes advertises how many session bytes admission control
	// may reserve against this worker (0: unlimited).
	CapacityBytes int64
	// Logf, when non-nil, receives join/rejoin lifecycle logs.
	Logf func(format string, args ...any)
}

// Membership is a daemon's live registration in a pool. It heartbeats
// in the background and rejoins with backoff if the pool connection
// drops; Close deregisters gracefully.
type Membership struct {
	poolAddr string
	selfAddr string
	opt      JoinOptions

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	done   chan struct{}
}

// Join registers selfAddr (the daemon's dialable listen address) with
// the pool at poolAddr. The first registration is synchronous — an
// error means the pool is unreachable — and the membership then
// maintains itself until Close.
func Join(poolAddr, selfAddr string, opt JoinOptions) (*Membership, error) {
	if opt.HeartbeatInterval <= 0 {
		opt.HeartbeatInterval = 500 * time.Millisecond
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	m := &Membership{poolAddr: poolAddr, selfAddr: selfAddr, opt: opt, done: make(chan struct{})}
	conn, err := m.register()
	if err != nil {
		return nil, err
	}
	m.conn = conn
	go m.run()
	return m, nil
}

// register dials the pool and performs the Hello+PoolJoin handshake.
func (m *Membership) register() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", m.poolAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("sched: joining pool %s: %w", m.poolAddr, err)
	}
	hello := transport.AppendHello(nil, transport.Hello{Purpose: transport.PurposePool})
	if err := transport.WriteFrame(conn, transport.MsgHello, hello, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("sched: joining pool %s: %w", m.poolAddr, err)
	}
	join := transport.AppendPoolJoin(nil, transport.PoolJoin{Addr: m.selfAddr, CapacityBytes: m.opt.CapacityBytes})
	if err := transport.WriteFrame(conn, transport.MsgPoolJoin, join, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("sched: joining pool %s: %w", m.poolAddr, err)
	}
	return conn, nil
}

// run heartbeats on the registration connection, rejoining with backoff
// when it drops, until Close.
func (m *Membership) run() {
	hb := transport.AppendHeartbeat(nil, transport.Heartbeat{})
	ticker := time.NewTicker(m.opt.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		conn := m.conn
		m.mu.Unlock()
		if conn != nil {
			if err := transport.WriteFrame(conn, transport.MsgHeartbeat, hb, nil); err == nil {
				continue
			}
			conn.Close()
			m.mu.Lock()
			m.conn = nil
			m.mu.Unlock()
			m.opt.Logf("sched: pool connection to %s lost; rejoining", m.poolAddr)
		}
		// Rejoin with backoff until it works or we are closed.
		backoff := m.opt.HeartbeatInterval
		for {
			conn, err := m.register()
			if err == nil {
				m.mu.Lock()
				if m.closed {
					m.mu.Unlock()
					conn.Close()
					return
				}
				m.conn = conn
				m.mu.Unlock()
				m.opt.Logf("sched: rejoined pool %s as %s", m.poolAddr, m.selfAddr)
				break
			}
			select {
			case <-m.done:
				return
			case <-time.After(backoff):
			}
			if backoff < 4*time.Second {
				backoff *= 2
			}
		}
	}
}

// Close deregisters from the pool (a graceful MsgPoolLeave when the
// connection is up) and stops the background heartbeat.
func (m *Membership) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	conn := m.conn
	m.conn = nil
	close(m.done)
	m.mu.Unlock()
	if conn != nil {
		transport.WriteFrame(conn, transport.MsgPoolLeave, nil, nil)
		conn.Close()
	}
}

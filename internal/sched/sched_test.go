package sched

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/distmine"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

var fastRetry = transport.RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

// testLogf returns a t.Logf that goes quiet once the test finishes:
// pool and membership goroutines log asynchronously during teardown,
// after the testing framework forbids further Log calls. Call it first
// in a test so its disabling cleanup runs after every other cleanup.
func testLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() {
		mu.Lock()
		done = true
		mu.Unlock()
	})
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

func buildDB(t testing.TB, cfg corpus.Config) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

// pmihpRef is the in-process reference every session is checked against.
func pmihpRef(t *testing.T, db *txdb.DB, opts mining.Options) []itemset.Counted {
	t.Helper()
	r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r.Result.Frequent
}

func requireIdentical(t *testing.T, label string, want []itemset.Counted, got *distmine.Result) {
	t.Helper()
	if len(got.Frequent) != len(want) {
		t.Fatalf("%s: frequent list length %d, want %d", label, len(got.Frequent), len(want))
	}
	for i := range want {
		if !want[i].Set.Equal(got.Frequent[i].Set) || want[i].Count != got.Frequent[i].Count {
			t.Fatalf("%s: entry %d: got %v/%d, want %v/%d",
				label, i, got.Frequent[i].Set, got.Frequent[i].Count, want[i].Set, want[i].Count)
		}
	}
}

// startPool serves a Pool on loopback and returns it with its address.
func startPool(t *testing.T, opt PoolOptions) (*Pool, string) {
	t.Helper()
	if opt.HeartbeatTimeout <= 0 {
		opt.HeartbeatTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(opt)
	go p.Serve(ln)
	t.Cleanup(p.Close)
	return p, ln.Addr().String()
}

// startWorkers boots n node daemons on loopback and joins each to the
// pool, returning the daemons (for orphan checks) and their addresses.
func startWorkers(t *testing.T, n int, poolAddr string, capacity int64, logf func(string, ...any)) ([]*distmine.Daemon, []string) {
	t.Helper()
	daemons := make([]*distmine.Daemon, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		d := distmine.NewDaemon(distmine.DaemonOptions{Retry: fastRetry, Logf: logf})
		go d.Serve(ln)
		daemons[i] = d
		addrs[i] = ln.Addr().String()
		m, err := Join(poolAddr, addrs[i], JoinOptions{
			HeartbeatInterval: 50 * time.Millisecond,
			CapacityBytes:     capacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
	}
	return daemons, addrs
}

func TestPoolMembership(t *testing.T) {
	logf := testLogf(t)
	pool, poolAddr := startPool(t, PoolOptions{Logf: logf})
	_, addrs := startWorkers(t, 3, poolAddr, 0, logf)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.WaitMembers(ctx, 3); err != nil {
		t.Fatal(err)
	}
	members := pool.Members()
	if len(members) != 3 {
		t.Fatalf("got %d members, want 3", len(members))
	}
	got := map[string]bool{}
	for _, m := range members {
		got[m.Addr] = true
	}
	for _, a := range addrs {
		if !got[a] {
			t.Fatalf("member %s missing from pool: %v", a, members)
		}
	}
}

func TestPoolMemberLeaveAndTimeout(t *testing.T) {
	logf := testLogf(t)
	pool, poolAddr := startPool(t, PoolOptions{HeartbeatTimeout: 300 * time.Millisecond, Logf: logf})

	// A graceful leave deregisters immediately.
	m, err := Join(poolAddr, "127.0.0.1:11111", JoinOptions{HeartbeatInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	m.Close()
	waitFor(t, 2*time.Second, func() bool { return len(pool.Members()) == 0 }, "member to leave")

	// A silent member (no heartbeats, no leave) is dropped by timeout.
	conn, err := net.Dial("tcp", poolAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := transport.AppendHello(nil, transport.Hello{Purpose: transport.PurposePool})
	if err := transport.WriteFrame(conn, transport.MsgHello, hello, nil); err != nil {
		t.Fatal(err)
	}
	join := transport.AppendPoolJoin(nil, transport.PoolJoin{Addr: "127.0.0.1:22222"})
	if err := transport.WriteFrame(conn, transport.MsgPoolJoin, join, nil); err != nil {
		t.Fatal(err)
	}
	if err := pool.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return len(pool.Members()) == 0 }, "silent member to time out")
}

func TestPoolLeaseAccounting(t *testing.T) {
	logf := testLogf(t)
	pool, poolAddr := startPool(t, PoolOptions{Logf: logf})
	_, _ = startWorkers(t, 3, poolAddr, 1000, logf)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.WaitMembers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	// Capacity 1000 per worker, 600 per lease: one lease per worker fits,
	// a second does not.
	first, err := pool.Lease(ctx, 3, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("leased %d workers, want 3", len(first))
	}
	if got := pool.TryLease(1, 600); got != nil {
		t.Fatalf("over-capacity lease granted: %v", got)
	}
	if pool.idleCount() != 0 {
		t.Fatalf("idle count %d with every worker leased", pool.idleCount())
	}
	// AcquireIdle never takes leased workers.
	if got := pool.AcquireIdle(3, 10); got != nil {
		t.Fatalf("AcquireIdle handed out busy workers: %v", got)
	}
	pool.Release(first[:1], 600)
	if pool.idleCount() != 1 {
		t.Fatalf("idle count %d after one release, want 1", pool.idleCount())
	}
	if got := pool.AcquireIdle(3, 10); len(got) != 1 || got[0] != first[0] {
		t.Fatalf("AcquireIdle = %v, want the released worker %s", got, first[0])
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSchedulerMultiTenant is the satellite-4 test: N concurrent
// sessions through the queue against one pool, each byte-identical to
// core.MinePMIHP, admitted in FIFO order, leaving zero orphaned daemon
// sessions behind.
func TestSchedulerMultiTenant(t *testing.T) {
	logf := testLogf(t)
	pool, poolAddr := startPool(t, PoolOptions{Logf: logf})
	daemons, _ := startWorkers(t, 8, poolAddr, 0, logf)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pool.WaitMembers(ctx, 8); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{
		Pool:    pool,
		Cluster: distmine.ClusterConfig{Retry: fastRetry, Logf: logf},
		Logf:    logf,
	})
	defer sched.Close()

	const sessions = 4
	type tenant struct {
		sess *Session
		want []itemset.Counted
		opts mining.Options
	}
	tenants := make([]tenant, sessions)
	for i := 0; i < sessions; i++ {
		// Distinct databases and thresholds per tenant: identical outputs
		// could hide cross-session state bleed.
		cfg := corpus.CorpusB(corpus.Small)
		cfg.Seed = int64(100 + i)
		db := buildDB(t, cfg)
		opts := mining.Options{MinSupCount: 2 + i%2, MaxK: 3}
		sess, err := sched.Submit(SessionRequest{
			DB: db, Opts: opts, Nodes: 2, Label: fmt.Sprintf("tenant-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = tenant{sess: sess, want: pmihpRef(t, db, opts), opts: opts}
	}
	for i, tn := range tenants {
		res, err := tn.sess.Wait()
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
		requireIdentical(t, fmt.Sprintf("tenant-%d", i), tn.want, res)
		if got := tn.sess.AdmitOrder(); got != i+1 {
			t.Fatalf("tenant %d admitted #%d, want FIFO order #%d", i, got, i+1)
		}
	}
	// Zero orphans: every daemon must fully drain its sessions.
	waitFor(t, 5*time.Second, func() bool {
		for _, d := range daemons {
			if d.ActiveSessions() != 0 {
				return false
			}
		}
		return true
	}, "daemon sessions to drain")
	waitFor(t, 5*time.Second, func() bool { return pool.idleCount() == 8 }, "leases to be released")
}

// TestSchedulerFIFOUnderContention: with capacity for only one session
// at a time, admission must stay strictly FIFO — a small session
// submitted later must not slip past a large one at the head.
func TestSchedulerFIFOUnderContention(t *testing.T) {
	logf := testLogf(t)
	pool, poolAddr := startPool(t, PoolOptions{Logf: logf})
	// Per-worker capacity fits exactly one session's per-worker share.
	_, _ = startWorkers(t, 2, poolAddr, 100, logf)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pool.WaitMembers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{
		Pool:    pool,
		Cluster: distmine.ClusterConfig{Retry: fastRetry, Logf: logf},
		Logf:    logf,
	})
	defer sched.Close()

	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	want := pmihpRef(t, db, opts)
	const sessions = 3
	handles := make([]*Session, sessions)
	for i := 0; i < sessions; i++ {
		// Every session saturates the pool (EstimatedBytes 200 over 2
		// nodes = 100 per worker, the full capacity), so only one runs at
		// a time and the admitter's head-of-line block enforces order.
		sess, err := sched.Submit(SessionRequest{
			DB: db, Opts: opts, Nodes: 2, EstimatedBytes: 200,
			Label: fmt.Sprintf("serial-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = sess
	}
	for i, sess := range handles {
		res, err := sess.Wait()
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		requireIdentical(t, fmt.Sprintf("serial-%d", i), want, res)
		if got := sess.AdmitOrder(); got != i+1 {
			t.Fatalf("session %d admitted #%d, want #%d", i, got, i+1)
		}
	}
}

// TestSchedulerElasticGrow: a session submitted with GrowTo scales from
// 2 to 4 logical nodes at the StageItemCounts barrier and still matches
// the reference byte for byte.
func TestSchedulerElasticGrow(t *testing.T) {
	logf := testLogf(t)
	pool, poolAddr := startPool(t, PoolOptions{Logf: logf})
	daemons, _ := startWorkers(t, 4, poolAddr, 0, logf)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pool.WaitMembers(ctx, 4); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{
		Pool:    pool,
		Cluster: distmine.ClusterConfig{Retry: fastRetry, Logf: logf},
		Logf:    logf,
	})
	defer sched.Close()

	cfg := corpus.CorpusSkewed(corpus.Small)
	cfg.Docs = 336
	db := buildDB(t, cfg)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	want := pmihpRef(t, db, opts)
	sess, err := sched.Submit(SessionRequest{DB: db, Opts: opts, Nodes: 2, GrowTo: 4, Label: "grower"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "grower", want, res)
	if res.Metrics.ElasticResizes != 1 {
		t.Fatalf("ElasticResizes = %d, want 1", res.Metrics.ElasticResizes)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("finished with %d nodes, want 4 after grow", len(res.Nodes))
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, d := range daemons {
			if d.ActiveSessions() != 0 {
				return false
			}
		}
		return true
	}, "daemon sessions to drain")
	waitFor(t, 5*time.Second, func() bool { return pool.idleCount() == 4 }, "grown leases to be released")
}

// Package sched is the multi-tenant elastic cluster scheduler: node
// daemons register into a shared worker Pool (join/leave/heartbeat over
// the transport wire protocol), and a Scheduler admits many concurrent
// MineCluster sessions against that pool — FIFO, with admission control
// keyed on PeakHeldBytes estimates — while running sessions scale their
// logical-node count up or down mid-run through the checkpoint/resume
// path (distmine.ElasticControl).
//
// The paper's evaluation assumes one dedicated cluster per mining run;
// this package turns the PR-4 fault-tolerance machinery (liveness,
// reassignment, resume barriers) into the scheduler that machinery was
// always most of: membership is just liveness pointed at a registry,
// admission is just PeakHeldBytes accounting pointed at capacity, and
// elastic resize is just the failover path allowed to change the
// partition count at a barrier.
package sched

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pmihp/internal/transport"
)

// PoolOptions tunes a worker pool.
type PoolOptions struct {
	// HeartbeatTimeout is the quiet interval after which a member is
	// dropped (zero: 5s). Members also drop immediately when their
	// registration connection closes or they send MsgPoolLeave.
	HeartbeatTimeout time.Duration
	// Logf, when non-nil, receives membership lifecycle logs.
	Logf func(format string, args ...any)
}

// Member is one registered worker daemon.
type Member struct {
	// Addr is the daemon's dialable listen address — what sessions put
	// in their rosters.
	Addr string
	// CapacityBytes bounds the session bytes admission control may
	// reserve against this member (0: unlimited).
	CapacityBytes int64
}

// poolMember is a member plus its lease accounting.
type poolMember struct {
	info Member
	conn net.Conn
	// sessions counts active leases (logical placements by admitted
	// sessions); a member with zero is idle and available to the
	// straggler detector's grow path.
	sessions int
	// reserved is the admission-reserved bytes against CapacityBytes.
	reserved int64
}

// Pool is the shared worker registry. Daemons dial in with a
// PurposePool Hello followed by MsgPoolJoin, then heartbeat on the same
// connection; coordinators lease members for sessions through the
// Scheduler.
type Pool struct {
	opt PoolOptions

	mu      sync.Mutex
	cond    *sync.Cond
	members map[string]*poolMember
	closed  bool
	ln      net.Listener
}

// NewPool returns a pool ready to Serve.
func NewPool(opt PoolOptions) *Pool {
	if opt.HeartbeatTimeout <= 0 {
		opt.HeartbeatTimeout = 5 * time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	p := &Pool{opt: opt, members: make(map[string]*poolMember)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Serve accepts member registrations until the listener closes.
func (p *Pool) Serve(ln net.Listener) error {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go p.handleConn(conn)
	}
}

// Close stops the pool: the listener closes, every member connection is
// dropped, and blocked Lease/WaitMembers calls return errors.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	for _, m := range p.members {
		m.conn.Close()
	}
	p.members = make(map[string]*poolMember)
	p.cond.Broadcast()
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// handleConn runs one member's registration: Hello, PoolJoin, then
// heartbeats until leave/quiet/close.
func (p *Pool) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(p.opt.HeartbeatTimeout))
	t, payload, err := transport.ReadFrame(conn, nil)
	if err != nil || t != transport.MsgHello {
		conn.Close()
		return
	}
	hello, err := transport.DecodeHello(payload)
	if err != nil || hello.Purpose != transport.PurposePool {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Now().Add(p.opt.HeartbeatTimeout))
	t, payload, err = transport.ReadFrame(conn, nil)
	if err != nil || t != transport.MsgPoolJoin {
		conn.Close()
		return
	}
	join, err := transport.DecodePoolJoin(payload)
	if err != nil {
		conn.Close()
		return
	}

	m := &poolMember{info: Member{Addr: join.Addr, CapacityBytes: join.CapacityBytes}, conn: conn}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	if old := p.members[join.Addr]; old != nil {
		// A rejoin (daemon restarted, or its previous connection is a
		// half-dead socket we have not timed out yet): the new
		// registration wins, with fresh lease accounting.
		old.conn.Close()
	}
	p.members[join.Addr] = m
	p.cond.Broadcast()
	p.mu.Unlock()
	p.opt.Logf("sched: pool member joined: %s (capacity %d bytes)", join.Addr, join.CapacityBytes)

	for {
		conn.SetReadDeadline(time.Now().Add(p.opt.HeartbeatTimeout))
		t, _, err := transport.ReadFrame(conn, nil)
		if err != nil || t == transport.MsgPoolLeave {
			p.drop(join.Addr, m, err)
			return
		}
		// Heartbeats (and anything else a future version sends) just
		// refresh the deadline.
	}
}

// drop deregisters a member if it is still the current registration for
// its address.
func (p *Pool) drop(addr string, m *poolMember, cause error) {
	m.conn.Close()
	p.mu.Lock()
	if p.members[addr] == m {
		delete(p.members, addr)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	if cause != nil {
		p.opt.Logf("sched: pool member lost: %s (%v)", addr, cause)
	} else {
		p.opt.Logf("sched: pool member left: %s", addr)
	}
}

// Members returns the current membership, sorted by address.
func (p *Pool) Members() []Member {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Member, 0, len(p.members))
	for _, m := range p.members {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// WaitMembers blocks until at least n members are registered.
func (p *Pool) WaitMembers(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, p.cond.Broadcast)
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.members) >= n {
			return nil
		}
		if p.closed {
			return fmt.Errorf("sched: pool closed waiting for %d members (have %d)", n, len(p.members))
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sched: waiting for %d pool members (have %d): %w", n, len(p.members), err)
		}
		p.cond.Wait()
	}
}

// leaseLocked reserves k distinct members able to take perWorker more
// reserved bytes each, preferring the least-loaded (fewest sessions,
// address breaking ties, so placement is deterministic for a given pool
// state). Returns nil when fewer than k qualify. idleOnly restricts
// candidates to members with no active lease.
func (p *Pool) leaseLocked(k int, perWorker int64, idleOnly bool) []string {
	var cands []*poolMember
	for _, m := range p.members {
		if idleOnly && m.sessions > 0 {
			continue
		}
		if cap := m.info.CapacityBytes; cap > 0 && m.reserved+perWorker > cap {
			continue
		}
		cands = append(cands, m)
	}
	if len(cands) < k {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sessions != cands[j].sessions {
			return cands[i].sessions < cands[j].sessions
		}
		return cands[i].info.Addr < cands[j].info.Addr
	})
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		cands[i].sessions++
		cands[i].reserved += perWorker
		addrs[i] = cands[i].info.Addr
	}
	return addrs
}

// Lease blocks until k distinct members can each accept perWorker more
// reserved bytes, reserves them, and returns their addresses. The
// Scheduler's single admitter calls this for the queue head only, which
// is what makes admission FIFO-fair.
func (p *Pool) Lease(ctx context.Context, k int, perWorker int64) ([]string, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sched: lease of %d workers", k)
	}
	stop := context.AfterFunc(ctx, p.cond.Broadcast)
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, fmt.Errorf("sched: pool closed")
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sched: leasing %d workers: %w", k, err)
		}
		if addrs := p.leaseLocked(k, perWorker, false); addrs != nil {
			return addrs, nil
		}
		p.cond.Wait()
	}
}

// TryLease is Lease without blocking: nil when the pool cannot satisfy
// the request right now.
func (p *Pool) TryLease(k int, perWorker int64) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || k <= 0 {
		return nil
	}
	return p.leaseLocked(k, perWorker, false)
}

// AcquireIdle non-blockingly leases up to max members that currently
// hold no lease at all — the straggler detector's grow path, which must
// never steal capacity from admitted sessions. Returns however many
// idle members exist, possibly none.
func (p *Pool) AcquireIdle(max int, perWorker int64) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || max <= 0 {
		return nil
	}
	for k := max; k > 0; k-- {
		if addrs := p.leaseLocked(k, perWorker, true); addrs != nil {
			return addrs
		}
	}
	return nil
}

// Release returns leased members to the pool (a session completed or
// shrank). Addresses of members that have since dropped are ignored.
func (p *Pool) Release(addrs []string, perWorker int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range addrs {
		m := p.members[a]
		if m == nil {
			continue
		}
		if m.sessions > 0 {
			m.sessions--
		}
		if m.reserved >= perWorker {
			m.reserved -= perWorker
		} else {
			m.reserved = 0
		}
	}
	p.cond.Broadcast()
}

// idleCount reports members with no active lease (test hook).
func (p *Pool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, m := range p.members {
		if m.sessions == 0 {
			n++
		}
	}
	return n
}

package serve

import (
	"bytes"
	"sync"
	"testing"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/search"
	"pmihp/internal/text"
)

// The shared corpus-B fixture mines no multi-word-antecedent rules at
// its thresholds, so the tests below would pass vacuously against it.
// Corpus A at MinSupCount 4 yields well over a thousand, making it the
// right base for pinning the antecedent-size filter.
var (
	multiOnce sync.Once
	multiVal  *testFixture
)

func multiFixture(t *testing.T) *testFixture {
	t.Helper()
	multiOnce.Do(func() {
		docs := corpus.MustGenerate(corpus.CorpusA(corpus.Small))
		db, vocab := text.ToDB(docs, nil)
		result, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, mining.Options{MinSupCount: 4, MaxK: 3})
		if err != nil {
			panic(err)
		}
		rs := rules.Generate(result.Result.Frequent, db.Len(), 0.5)
		multiVal = &testFixture{
			rs:    rs,
			ws:    rules.ToWordRules(rs, vocab.Word),
			vocab: vocab,
			exp:   search.NewExpander(rs, vocab),
		}
	})
	return multiVal
}

// multiAnteHeads returns the heads that have at least one indexed rule
// with a multi-word antecedent — the rules Expand must filter out but
// Rules must serve.
func multiAnteHeads(ws []rules.WordRule) []string {
	var heads []string
	seen := map[string]bool{}
	for _, r := range ws {
		if len(r.Antecedent) >= 2 && len(r.Consequent) == 1 && !seen[r.Consequent[0]] {
			seen[r.Consequent[0]] = true
			heads = append(heads, r.Consequent[0])
		}
	}
	return heads
}

// TestMultiWordAntecedentFiltering pins the query-time split between the
// two serving surfaces: /expand drops rules with multi-word antecedents
// (exactly as search.Expander does), while /rules serves them. The
// random query sweep in TestExpandByteIdentity would pass vacuously if
// the fixture mined no such rules, so this test first proves they exist.
func TestMultiWordAntecedentFiltering(t *testing.T) {
	fx := multiFixture(t)
	heads := multiAnteHeads(fx.ws)
	if len(heads) == 0 {
		t.Fatal("fixture mined no multi-word-antecedent rules; the filter path is untested")
	}
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, head := range heads {
		single, multi := 0, 0
		for _, r := range ix.Rules(head, 0) {
			if len(r.Antecedent) == 1 {
				single++
			} else {
				multi++
			}
		}
		if multi == 0 {
			t.Fatalf("head %q: /rules dropped its multi-word-antecedent rules", head)
		}
		exp := ix.Expand(0, head)
		if len(exp) != 1 {
			t.Fatalf("head %q: Expand returned %d expansions", head, len(exp))
		}
		if len(exp[0].Terms) != single {
			t.Fatalf("head %q: %d expansion terms from %d single-antecedent rules (%d multi must be filtered)",
				head, len(exp[0].Terms), single, multi)
		}
	}
}

// TestExpandMultiWordQueryByteIdentity aims the byte-identity gate
// specifically at multi-word queries over heads that own multi-word-
// antecedent rules — the corner the random sweep only hits by luck.
func TestExpandMultiWordQueryByteIdentity(t *testing.T) {
	fx := multiFixture(t)
	heads := multiAnteHeads(fx.ws)
	if len(heads) < 2 {
		t.Fatal("fixture has fewer than two multi-antecedent heads")
	}
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]string{
		heads[:2],
		{heads[0], heads[0]},                   // repeated word: expanded twice, independently
		{heads[0], "zzz-not-a-word", heads[1]}, // unknown word in the middle
		append([]string{}, heads...),
	}
	for _, q := range queries {
		for _, limit := range []int{0, 1, 3} {
			got := mustJSON(t, ix.Expand(limit, q...))
			want := mustJSON(t, fromSearch(fx.exp.Expand(limit, q...)))
			if !bytes.Equal(got, want) {
				t.Fatalf("limit %d query %v:\nserved  %s\noffline %s", limit, q, got, want)
			}
		}
	}
}

// TestExpandFiltersHandcraftedMultiAntecedent nails the filter on a
// hand-built rule set where the strongest rule for the head has a
// two-word antecedent: Expand must skip it and serve the weaker
// single-word rule, in canonical order.
func TestExpandFiltersHandcraftedMultiAntecedent(t *testing.T) {
	ws := []rules.WordRule{
		{Antecedent: []string{"alpha", "beta"}, Consequent: []string{"head"}, Support: 9, Confidence: 0.95},
		{Antecedent: []string{"gamma"}, Consequent: []string{"head"}, Support: 5, Confidence: 0.8},
		{Antecedent: []string{"delta"}, Consequent: []string{"head"}, Support: 7, Confidence: 0.8},
	}
	ix, err := BuildIndex(ws)
	if err != nil {
		t.Fatal(err)
	}
	exp := ix.Expand(0, "head")
	if len(exp) != 1 || len(exp[0].Terms) != 2 {
		t.Fatalf("want the 2 single-antecedent terms, got %+v", exp)
	}
	// Canonical order: confidence ties broken by support descending.
	if exp[0].Terms[0].Term != "delta" || exp[0].Terms[1].Term != "gamma" {
		t.Fatalf("terms out of canonical order: %+v", exp[0].Terms)
	}
	// Limit 1 must yield the strongest *single-antecedent* rule, not an
	// empty list because the strongest overall rule was filtered.
	if one := ix.Expand(1, "head"); len(one[0].Terms) != 1 || one[0].Terms[0].Term != "delta" {
		t.Fatalf("limit 1 after filtering: %+v", one)
	}
	if got := len(ix.Rules("head", 0)); got != 3 {
		t.Fatalf("/rules must keep all 3 rules, got %d", got)
	}
}

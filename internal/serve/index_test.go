package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/search"
	"pmihp/internal/text"
)

// testFixture mines corpus B once and derives everything the suite
// needs: the canonical rule set in both item and word form, the corpus
// vocabulary, and the offline Expander the byte-identity gate compares
// against.
type testFixture struct {
	rs    []rules.Rule
	ws    []rules.WordRule
	vocab *text.Vocabulary
	exp   *search.Expander
	words []string // every corpus word, the query sweep universe
}

var (
	fixtureOnce sync.Once
	fixtureVal  *testFixture
)

func fixture(t *testing.T) *testFixture {
	t.Helper()
	fixtureOnce.Do(func() {
		docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
		db, vocab := text.ToDB(docs, nil)
		result, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, mining.Options{MinSupCount: 3, MaxK: 3})
		if err != nil {
			panic(err)
		}
		rs := rules.Generate(result.Result.Frequent, db.Len(), 0.5)
		words := make([]string, vocab.Size())
		for i := range words {
			words[i] = vocab.Word(uint32(i))
		}
		fixtureVal = &testFixture{
			rs:    rs,
			ws:    rules.ToWordRules(rs, vocab.Word),
			vocab: vocab,
			exp:   search.NewExpander(rs, vocab),
			words: words,
		}
	})
	if len(fixtureVal.rs) == 0 {
		t.Fatal("fixture mined no rules")
	}
	return fixtureVal
}

// fromSearch renders offline Expander output into the served DTO — the
// reference side of the byte-identity gate.
func fromSearch(exps []search.Expansion) []ExpansionJSON {
	out := make([]ExpansionJSON, 0, len(exps))
	for _, e := range exps {
		je := ExpansionJSON{Word: e.Word}
		for _, term := range e.Terms {
			je.Terms = append(je.Terms, TermJSON{
				Term:            term.Word,
				Support:         term.Rule.Support,
				SupportFraction: term.Rule.Frac,
				Confidence:      term.Rule.Confidence,
				Lift:            term.Rule.Lift,
			})
		}
		out = append(out, je)
	}
	return out
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExpandByteIdentity is the correctness gate of the serving index:
// for every corpus word (heads and non-heads alike), some unknown words,
// and random multi-word queries, at several limits, the index's
// expansions must marshal byte-identically to the offline
// search.Expander over the same rule set.
func TestExpandByteIdentity(t *testing.T) {
	fx := fixture(t)
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	check := func(limit int, words ...string) {
		t.Helper()
		got := mustJSON(t, ix.Expand(limit, words...))
		want := mustJSON(t, fromSearch(fx.exp.Expand(limit, words...)))
		if !bytes.Equal(got, want) {
			t.Fatalf("limit %d query %v:\nserved  %s\noffline %s", limit, words, got, want)
		}
	}
	for _, limit := range []int{0, 1, 2, 5} {
		for _, w := range fx.words {
			check(limit, w)
		}
		check(limit, "zzz-not-a-word")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		words := make([]string, n)
		for i := range words {
			words[i] = fx.words[rng.Intn(len(fx.words))]
		}
		check(rng.Intn(4), words...)
	}
}

// TestRulesMatchWithConsequent gates the /rules surface: the indexed
// rules for a head must equal the canonical rule set filtered by
// WithConsequent, in word form.
func TestRulesMatchWithConsequent(t *testing.T) {
	fx := fixture(t)
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range fx.words {
		id, ok := fx.vocab.ID(w)
		if !ok {
			t.Fatalf("fixture word %q not in vocab", w)
		}
		want := rules.ToWordRules(rules.WithConsequent(fx.rs, id), fx.vocab.Word)
		got := ix.Rules(w, 0)
		if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
			t.Fatalf("head %q:\nserved  %s\noffline %s", w, mustJSON(t, got), mustJSON(t, want))
		}
	}
	if got := ix.Rules("zzz-not-a-word", 0); got == nil || len(got) != 0 {
		t.Fatalf("unknown head should serve an empty list, got %v", got)
	}
	// Limit truncates, preserving the prefix.
	for _, w := range fx.words {
		all := ix.Rules(w, 0)
		if len(all) < 2 {
			continue
		}
		one := ix.Rules(w, 1)
		if len(one) != 1 || !bytes.Equal(mustJSON(t, one[0]), mustJSON(t, all[0])) {
			t.Fatalf("head %q: limit 1 not a prefix", w)
		}
		break
	}
}

// TestBuildOrderIndependence: shuffled input must build a byte-identical
// index (the canonical sort makes input order irrelevant), and a JSON
// round trip through WriteJSON/ParseJSON must too (floats survive
// encoding/json's shortest-form rendering exactly).
func TestBuildOrderIndependence(t *testing.T) {
	fx := fixture(t)
	base, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]rules.WordRule(nil), fx.ws...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	fromShuffled, err := BuildIndex(shuffled)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rules.WriteJSON(&buf, fx.rs, fx.vocab.Word); err != nil {
		t.Fatal(err)
	}
	parsed, err := rules.ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := BuildIndex(parsed)
	if err != nil {
		t.Fatal(err)
	}

	for name, other := range map[string]*Index{"shuffled": fromShuffled, "json-round-trip": fromJSON} {
		if !bytes.Equal(base.entries, other.entries) || !bytes.Equal(base.wordBlob, other.wordBlob) {
			t.Fatalf("%s: index blobs differ from direct build", name)
		}
		if base.MemBytes() != other.MemBytes() {
			t.Fatalf("%s: MemBytes %d vs %d", name, other.MemBytes(), base.MemBytes())
		}
	}
}

func TestValidateAndStats(t *testing.T) {
	fx := fixture(t)
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("fresh index invalid: %v", err)
	}
	st := ix.Stats()
	if st.Rules == 0 || st.Heads == 0 || st.Words == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.BytesHeld != ix.MemBytes() || st.BytesHeld <= 0 {
		t.Fatalf("bytes held %d vs MemBytes %d", st.BytesHeld, ix.MemBytes())
	}
	singleCons := 0
	for _, r := range fx.ws {
		if len(r.Consequent) == 1 {
			singleCons++
		}
	}
	if st.Rules != singleCons || st.Skipped != len(fx.ws)-singleCons {
		t.Fatalf("rule accounting: %+v vs %d single-consequent of %d", st, singleCons, len(fx.ws))
	}

	// Corruption must be caught before a swap would install it.
	bad, _ := BuildIndex(fx.ws)
	bad.entries[len(bad.entries)-1] ^= 0x80
	if err := bad.Validate(); err == nil {
		t.Fatal("corrupted entries validated")
	}
	bad2, _ := BuildIndex(fx.ws)
	bad2.headHash[0], bad2.headHash[len(bad2.headHash)-1] = bad2.headHash[len(bad2.headHash)-1], bad2.headHash[0]
	if err := bad2.Validate(); err == nil {
		t.Fatal("unsorted buckets validated")
	}
}

func TestHeadsOrdering(t *testing.T) {
	fx := fixture(t)
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	heads := ix.Heads(0)
	if len(heads) != ix.Stats().Heads {
		t.Fatalf("Heads(0) = %d, want %d", len(heads), ix.Stats().Heads)
	}
	for i := 1; i < len(heads); i++ {
		a, b := heads[i-1], heads[i]
		if a.Rules < b.Rules || (a.Rules == b.Rules && a.Word >= b.Word) {
			t.Fatalf("heads not ordered at %d: %+v then %+v", i, a, b)
		}
	}
	for _, h := range heads {
		if got := len(ix.Rules(h.Word, 0)); got != h.Rules {
			t.Fatalf("head %q claims %d rules, bucket has %d", h.Word, h.Rules, got)
		}
	}
	if top := ix.Heads(3); len(top) != 3 || top[0] != heads[0] {
		t.Fatalf("Heads(3) = %+v", top)
	}
}

func TestBuildRejectsDegenerate(t *testing.T) {
	if _, err := BuildIndex(nil); err == nil {
		t.Fatal("empty rule set accepted")
	}
	multiOnly := []rules.WordRule{{
		Antecedent: []string{"a"}, Consequent: []string{"b", "c"},
		Support: 2, Confidence: 0.9,
	}}
	if _, err := BuildIndex(multiOnly); err == nil {
		t.Fatal("multi-consequent-only rule set accepted")
	}
}

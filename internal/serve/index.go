// Package serve is the online rule-serving layer: the paper mines text
// associations *for query expansion* (§1), and this package answers those
// expansion/association queries at high QPS over a mined rule set — the
// "millions of users" leg of the roadmap's north star.
//
// The rule set is compiled into an immutable Index (this file): a compact
// head→rules structure with sorted hash buckets and delta-varint entry
// encoding, following the layout discipline of the mining side's
// compressed inverted file (internal/core/postings.go) — one byte blob,
// flat offset arrays, MemBytes accounting. Queries never mutate an Index;
// updates arrive as whole new Generations (generation.go) swapped behind
// atomic pointers by the Server (server.go).
package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"pmihp/internal/rules"
)

// Index is the immutable serving form of a rule set: every rule with a
// single-word consequent (the "head"), grouped by head, in the canonical
// rules.CanonWord order within each group.
//
// Layout. Words are interned once into wordBlob/wordOff, lexically sorted
// so a word id doubles as a lexical rank. Each head owns one bucket,
// located by binary search over the sorted headHash array (FNV-1a of the
// head word; equal hashes are a sorted run resolved by comparing the
// stored head word). A bucket's entries live in one shared byte blob:
// per rule, the antecedent length and its strictly-increasing word ids
// delta-encoded as varints, then the support count and the IEEE bit
// patterns of confidence, lift, and support fraction as varints — bit
// patterns, not decimal renderings, so a served score is the exact
// float64 the miner computed and the byte-identity gate against the
// offline Expander holds.
type Index struct {
	wordBlob []byte   // all distinct words, concatenated in lexical order
	wordOff  []uint32 // word i is wordBlob[wordOff[i]:wordOff[i+1]]; len W+1

	headHash  []uint64 // per bucket: FNV-1a hash of the head word, sorted
	headID    []uint32 // per bucket: the head's word id (collision arbiter)
	headCount []uint32 // per bucket: number of rules
	headOff   []uint32 // per bucket: byte offset of its entries; +1 sentinel
	entries   []byte   // delta-varint rule entries, all buckets concatenated

	ruleCount int // rules indexed (single-word consequents)
	skipped   int // rules dropped for multi-word consequents
}

// fnv64a is FNV-1a over the word bytes, allocation-free.
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// BuildIndex compiles a rule set into its immutable serving form. The
// input is canonicalized first (rules.SortWordRules), so any ordering of
// the same rules — freshly generated, parsed back from JSON, shuffled —
// builds a byte-identical index. Rules whose consequent is more than one
// word are not addressable by a head query and are skipped (counted in
// Stats). An empty rule set is an error: a serving generation with
// nothing to serve is almost always a mis-export.
func BuildIndex(ws []rules.WordRule) (*Index, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("serve: empty rule set")
	}
	sorted := append([]rules.WordRule(nil), ws...)
	rules.SortWordRules(sorted)

	// Intern every distinct word, lexically.
	seen := make(map[string]struct{})
	for _, r := range sorted {
		for _, w := range r.Antecedent {
			seen[w] = struct{}{}
		}
		for _, w := range r.Consequent {
			seen[w] = struct{}{}
		}
	}
	dict := make([]string, 0, len(seen))
	for w := range seen {
		dict = append(dict, w)
	}
	sort.Strings(dict)
	id := make(map[string]uint32, len(dict))
	ix := &Index{wordOff: make([]uint32, 1, len(dict)+1)}
	for i, w := range dict {
		id[w] = uint32(i)
		ix.wordBlob = append(ix.wordBlob, w...)
		ix.wordOff = append(ix.wordOff, uint32(len(ix.wordBlob)))
	}

	// Group rules by head, keeping the canonical order within each group.
	byHead := make(map[uint32][]int)
	for i, r := range sorted {
		if len(r.Consequent) != 1 {
			ix.skipped++
			continue
		}
		h := id[r.Consequent[0]]
		byHead[h] = append(byHead[h], i)
		ix.ruleCount++
	}
	if ix.ruleCount == 0 {
		return nil, fmt.Errorf("serve: no single-word-consequent rules to index (%d multi-word skipped)", ix.skipped)
	}

	// Buckets sorted by (hash, word id) so lookup is one binary search
	// plus a short equal-hash run.
	heads := make([]uint32, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool {
		hi, hj := fnv64a(dict[heads[i]]), fnv64a(dict[heads[j]])
		if hi != hj {
			return hi < hj
		}
		return heads[i] < heads[j]
	})

	ix.headHash = make([]uint64, len(heads))
	ix.headID = make([]uint32, len(heads))
	ix.headCount = make([]uint32, len(heads))
	ix.headOff = make([]uint32, len(heads)+1)
	for b, h := range heads {
		ix.headHash[b] = fnv64a(dict[h])
		ix.headID[b] = h
		ix.headCount[b] = uint32(len(byHead[h]))
		ix.headOff[b] = uint32(len(ix.entries))
		for _, ri := range byHead[h] {
			r := sorted[ri]
			ix.entries = binary.AppendUvarint(ix.entries, uint64(len(r.Antecedent)))
			prev := uint64(0)
			for k, w := range r.Antecedent {
				wid := uint64(id[w])
				if k == 0 {
					ix.entries = binary.AppendUvarint(ix.entries, wid)
				} else {
					if wid <= prev {
						return nil, fmt.Errorf("serve: rule %d: antecedent not strictly increasing", ri)
					}
					ix.entries = binary.AppendUvarint(ix.entries, wid-prev)
				}
				prev = wid
			}
			ix.entries = binary.AppendUvarint(ix.entries, uint64(r.Support))
			ix.entries = binary.AppendUvarint(ix.entries, math.Float64bits(r.Confidence))
			ix.entries = binary.AppendUvarint(ix.entries, math.Float64bits(r.Lift))
			ix.entries = binary.AppendUvarint(ix.entries, math.Float64bits(r.Frac))
		}
	}
	ix.headOff[len(heads)] = uint32(len(ix.entries))
	// Re-fit the append-grown blobs so MemBytes is the memory actually held.
	ix.entries = append(make([]byte, 0, len(ix.entries)), ix.entries...)
	ix.wordBlob = append(make([]byte, 0, len(ix.wordBlob)), ix.wordBlob...)
	return ix, nil
}

// word returns word id w as a string view into the blob (no copy).
func (ix *Index) word(w uint32) string {
	b := ix.wordBlob[ix.wordOff[w]:ix.wordOff[w+1]]
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// bucket locates the head's bucket index, or -1 when the word heads no
// rules: binary search on the hash, then walk the (rare) equal-hash run
// comparing actual words.
func (ix *Index) bucket(head string) int {
	h := fnv64a(head)
	lo := sort.Search(len(ix.headHash), func(i int) bool { return ix.headHash[i] >= h })
	for ; lo < len(ix.headHash) && ix.headHash[lo] == h; lo++ {
		if ix.word(ix.headID[lo]) == head {
			return lo
		}
	}
	return -1
}

// indexedRule is one decoded entry. The Antecedent slice aliases decode
// scratch owned by the caller of eachRule.
type indexedRule struct {
	Antecedent []uint32
	Support    int
	Confidence float64
	Lift       float64
	Frac       float64
}

// eachRule decodes bucket b's entries in stored (canonical) order,
// stopping early when fn returns false. The entry passed to fn reuses
// scratch between calls; copy what must be retained.
func (ix *Index) eachRule(b int, fn func(e indexedRule) bool) error {
	at := int(ix.headOff[b])
	end := int(ix.headOff[b+1])
	var scratch [16]uint32
	for i := uint32(0); i < ix.headCount[b]; i++ {
		if at >= end {
			return fmt.Errorf("serve: bucket %d truncated at entry %d", b, i)
		}
		read := func() (uint64, error) {
			v, n := binary.Uvarint(ix.entries[at:end])
			if n <= 0 {
				return 0, fmt.Errorf("serve: bucket %d: bad varint at %d", b, at)
			}
			at += n
			return v, nil
		}
		n, err := read()
		if err != nil {
			return err
		}
		ante := scratch[:0]
		prev := uint64(0)
		for k := uint64(0); k < n; k++ {
			d, err := read()
			if err != nil {
				return err
			}
			if k == 0 {
				prev = d
			} else {
				prev += d
			}
			if prev >= uint64(len(ix.wordOff)-1) {
				return fmt.Errorf("serve: bucket %d: antecedent word id %d out of range", b, prev)
			}
			ante = append(ante, uint32(prev))
		}
		sup, err := read()
		if err != nil {
			return err
		}
		conf, err := read()
		if err != nil {
			return err
		}
		lift, err := read()
		if err != nil {
			return err
		}
		frac, err := read()
		if err != nil {
			return err
		}
		e := indexedRule{
			Antecedent: ante,
			Support:    int(sup),
			Confidence: math.Float64frombits(conf),
			Lift:       math.Float64frombits(lift),
			Frac:       math.Float64frombits(frac),
		}
		if !fn(e) {
			return nil
		}
	}
	if at != end {
		return fmt.Errorf("serve: bucket %d: %d trailing bytes", b, end-at)
	}
	return nil
}

// TermJSON is one served expansion term: the word B of a rule B ⇒ head,
// with the rule's statistics. Field set and tags mirror the WriteJSON
// rule export so scores round-trip bit-exactly.
type TermJSON struct {
	Term            string  `json:"term"`
	Support         int     `json:"support"`
	SupportFraction float64 `json:"supportFraction,omitempty"`
	Confidence      float64 `json:"confidence"`
	Lift            float64 `json:"lift,omitempty"`
}

// ExpansionJSON is the served expansion of one query word.
type ExpansionJSON struct {
	Word  string     `json:"word"`
	Terms []TermJSON `json:"terms,omitempty"`
}

// Expand answers the statistical-thesaurus query for each word: the
// single-word antecedents of rules B ⇒ word, strongest first, up to
// limit terms per word (limit <= 0 means all). The output is the exact
// word-rendered form of search.Expander.Expand over the same rule set —
// asserted byte-identical by the gate tests; the serving index is a
// layout change, not a semantics change.
func (ix *Index) Expand(limit int, words ...string) []ExpansionJSON {
	out := make([]ExpansionJSON, 0, len(words))
	for _, w := range words {
		exp := ExpansionJSON{Word: w}
		if b := ix.bucket(w); b >= 0 {
			ix.eachRule(b, func(e indexedRule) bool {
				if len(e.Antecedent) != 1 {
					return true
				}
				exp.Terms = append(exp.Terms, TermJSON{
					Term:            ix.word(e.Antecedent[0]),
					Support:         e.Support,
					SupportFraction: e.Frac,
					Confidence:      e.Confidence,
					Lift:            e.Lift,
				})
				return limit <= 0 || len(exp.Terms) < limit
			})
		}
		out = append(out, exp)
	}
	return out
}

// Rules returns every indexed rule with the given head as its consequent
// (any antecedent size), in canonical order, up to limit (<= 0 means all).
// The result is never nil — an unknown head yields an empty rule list,
// exactly like rendering WithConsequent output on the offline side.
func (ix *Index) Rules(head string, limit int) []rules.WordRule {
	out := []rules.WordRule{}
	b := ix.bucket(head)
	if b < 0 {
		return out
	}
	ix.eachRule(b, func(e indexedRule) bool {
		ante := make([]string, len(e.Antecedent))
		for i, w := range e.Antecedent {
			ante[i] = ix.word(w)
		}
		out = append(out, rules.WordRule{
			Antecedent: ante,
			Consequent: []string{head},
			Support:    e.Support,
			Frac:       e.Frac,
			Confidence: e.Confidence,
			Lift:       e.Lift,
		})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// HeadInfo describes one head for the admin/load-test surface.
type HeadInfo struct {
	Word  string `json:"word"`
	Rules int    `json:"rules"`
}

// Heads returns the indexed heads sorted by rule count descending, then
// word ascending — a deterministic popularity order the load harness
// uses to aim its Zipf distribution at realistic hot keys. limit <= 0
// returns all heads.
func (ix *Index) Heads(limit int) []HeadInfo {
	out := make([]HeadInfo, len(ix.headID))
	for b := range ix.headID {
		out[b] = HeadInfo{Word: string(ix.wordBlob[ix.wordOff[ix.headID[b]]:ix.wordOff[ix.headID[b]+1]]), Rules: int(ix.headCount[b])}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rules != out[j].Rules {
			return out[i].Rules > out[j].Rules
		}
		return out[i].Word < out[j].Word
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Stats summarizes the index for /healthz and swap validation output.
type Stats struct {
	Rules     int   `json:"rules"`
	Heads     int   `json:"heads"`
	Words     int   `json:"words"`
	Skipped   int   `json:"skipped_multi_consequent,omitempty"`
	BytesHeld int64 `json:"bytes_held"`
}

// Stats returns the index summary.
func (ix *Index) Stats() Stats {
	return Stats{
		Rules:     ix.ruleCount,
		Heads:     len(ix.headID),
		Words:     len(ix.wordOff) - 1,
		Skipped:   ix.skipped,
		BytesHeld: ix.MemBytes(),
	}
}

// MemBytes returns the resident size of the index, by the same accounting
// discipline as the mining-side core structures: element widths from
// unsafe.Sizeof, lengths of what is actually held.
func (ix *Index) MemBytes() int64 {
	const (
		u32Size = int64(unsafe.Sizeof(uint32(0)))
		u64Size = int64(unsafe.Sizeof(uint64(0)))
	)
	return int64(len(ix.wordBlob)) + int64(len(ix.entries)) +
		u32Size*int64(len(ix.wordOff)+len(ix.headID)+len(ix.headCount)+len(ix.headOff)) +
		u64Size*int64(len(ix.headHash))
}

// Validate checks the structural invariants a freshly built (or, later,
// deserialized) index must satisfy before it is swapped into service:
// monotone offsets, sorted hash buckets, decodable entries with in-range
// word ids, and a rule count that reconciles with the buckets. A swap
// never installs a generation that fails validation.
func (ix *Index) Validate() error {
	if len(ix.wordOff) < 2 || ix.wordOff[0] != 0 || int(ix.wordOff[len(ix.wordOff)-1]) != len(ix.wordBlob) {
		return fmt.Errorf("serve: word offsets do not span the word blob")
	}
	for i := 1; i < len(ix.wordOff); i++ {
		if ix.wordOff[i] < ix.wordOff[i-1] {
			return fmt.Errorf("serve: word offset %d decreases", i)
		}
	}
	for i := 2; i < len(ix.wordOff); i++ {
		if ix.word(uint32(i-2)) >= ix.word(uint32(i-1)) {
			return fmt.Errorf("serve: word table not strictly sorted at %d", i-1)
		}
	}
	if len(ix.headID) != len(ix.headHash) || len(ix.headCount) != len(ix.headHash) || len(ix.headOff) != len(ix.headHash)+1 {
		return fmt.Errorf("serve: bucket arrays disagree on bucket count")
	}
	if len(ix.headHash) == 0 {
		return fmt.Errorf("serve: index has no heads")
	}
	if ix.headOff[0] != 0 || int(ix.headOff[len(ix.headOff)-1]) != len(ix.entries) {
		return fmt.Errorf("serve: bucket offsets do not span the entry blob")
	}
	total := 0
	for b := range ix.headHash {
		if b > 0 {
			prev, cur := ix.headHash[b-1], ix.headHash[b]
			if prev > cur || (prev == cur && ix.headID[b-1] >= ix.headID[b]) {
				return fmt.Errorf("serve: buckets not sorted by (hash, word) at %d", b)
			}
		}
		if ix.headHash[b] != fnv64a(ix.word(ix.headID[b])) {
			return fmt.Errorf("serve: bucket %d hash does not match its head word", b)
		}
		if ix.headOff[b+1] < ix.headOff[b] {
			return fmt.Errorf("serve: bucket %d offset decreases", b)
		}
		if ix.headCount[b] == 0 {
			return fmt.Errorf("serve: bucket %d is empty", b)
		}
		n := 0
		if err := ix.eachRule(b, func(e indexedRule) bool {
			n++
			if len(e.Antecedent) == 0 {
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if n != int(ix.headCount[b]) {
			return fmt.Errorf("serve: bucket %d decoded %d entries, header says %d", b, n, ix.headCount[b])
		}
		total += n
	}
	if total != ix.ruleCount {
		return fmt.Errorf("serve: %d entries decoded, %d rules accounted", total, ix.ruleCount)
	}
	return nil
}

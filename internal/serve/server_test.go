package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"pmihp/internal/obs"
	"pmihp/internal/rules"
)

// get issues a request against the handler without a network listener,
// so tests spawn no server goroutines.
func get(h http.Handler, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func post(h http.Handler, target string, body io.Reader) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, body))
	return rec
}

// expandBody mirrors the /expand response envelope.
type expandBody struct {
	Generation int64           `json:"generation"`
	Expansions json.RawMessage `json:"expansions"`
}

type rulesBody struct {
	Generation int64           `json:"generation"`
	Head       string          `json:"head"`
	Rules      json.RawMessage `json:"rules"`
}

func loadedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	if _, err := s.Swap(fixture(t).ws, "test fixture"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServedExpansionsByteIdentical is the end-to-end leg of the gate:
// the /expand payload over HTTP must be byte-identical to the offline
// Expander's answer for every swept query, through the cache (each query
// runs twice) and across single- and multi-word forms.
func TestServedExpansionsByteIdentical(t *testing.T) {
	fx := fixture(t)
	s := loadedServer(t, Config{Replicas: 4})
	h := s.Handler(nil)
	check := func(limit int, words ...string) {
		t.Helper()
		target := "/expand?limit=" + fmt.Sprint(limit)
		for _, w := range words {
			target += "&q=" + url.QueryEscape(w)
		}
		for pass := 0; pass < 2; pass++ { // second pass rides the cache
			rr := get(h, target)
			if rr.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", target, rr.Code, rr.Body.String())
			}
			var body expandBody
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s: %v", target, err)
			}
			want := mustJSON(t, fromSearch(fx.exp.Expand(limit, words...)))
			if !bytes.Equal(bytes.TrimSpace(body.Expansions), want) {
				t.Fatalf("%s:\nserved  %s\noffline %s", target, body.Expansions, want)
			}
		}
	}
	for _, w := range fx.words {
		check(3, w)
	}
	check(0, fx.words[0], fx.words[len(fx.words)/2], "zzz-unknown")
	check(1, fx.words...)

	hits, misses, _ := s.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache never exercised: hits=%d misses=%d", hits, misses)
	}
}

func TestServedRulesByteIdentical(t *testing.T) {
	fx := fixture(t)
	s := loadedServer(t, Config{Replicas: 2})
	h := s.Handler(nil)
	ix, err := BuildIndex(fx.ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, hd := range ix.Heads(0) {
		rr := get(h, "/rules?head="+url.QueryEscape(hd.Word)+"&limit=0")
		if rr.Code != http.StatusOK {
			t.Fatalf("head %q: status %d", hd.Word, rr.Code)
		}
		var body rulesBody
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		id, _ := fx.vocab.ID(hd.Word)
		want := mustJSON(t, rules.ToWordRules(rules.WithConsequent(fx.rs, id), fx.vocab.Word))
		if !bytes.Equal(bytes.TrimSpace(body.Rules), want) {
			t.Fatalf("head %q:\nserved  %s\noffline %s", hd.Word, body.Rules, want)
		}
	}
}

func TestHealthzLifecycle(t *testing.T) {
	s := NewServer(Config{Replicas: 1})
	h := s.Handler(nil)
	if rr := get(h, "/healthz"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("unloaded healthz = %d", rr.Code)
	}
	if rr := get(h, "/expand?q=word"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("unloaded expand = %d", rr.Code)
	}
	if _, err := s.Swap(fixture(t).ws, "test"); err != nil {
		t.Fatal(err)
	}
	rr := get(h, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("loaded healthz = %d", rr.Code)
	}
	var body healthBody
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Generation != 1 || body.Stats == nil || body.Stats.Rules == 0 {
		t.Fatalf("healthz body %+v", body)
	}
}

func TestBadRequests(t *testing.T) {
	s := loadedServer(t, Config{Replicas: 1})
	h := s.Handler(nil)
	for _, target := range []string{"/expand", "/expand?q=w&limit=-1", "/expand?q=w&limit=x", "/rules", "/rules?head=two+words"} {
		if rr := get(h, target); rr.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", target, rr.Code)
		}
	}
	if rr := get(h, "/admin/swap"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/swap = %d", rr.Code)
	}
	if rr := post(h, "/admin/swap", strings.NewReader("not json")); rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad swap body = %d", rr.Code)
	}
	if rr := post(h, "/admin/swap?path=/does/not/exist.json", nil); rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad swap path = %d", rr.Code)
	}
	if errs := s.errorCount.Load(); errs == 0 {
		t.Error("error counter never moved")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	// A 1ns deadline is always already expired by the first check, so
	// every query must answer 504 and count as deadline-exceeded — and
	// still release its pinned generation.
	s := loadedServer(t, Config{Replicas: 1, Deadline: time.Nanosecond})
	h := s.Handler(nil)
	for i := 0; i < 3; i++ {
		if rr := get(h, "/expand?q=word"); rr.Code != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", rr.Code)
		}
	}
	if n := s.deadlineExceeded.Load(); n != 3 {
		t.Fatalf("deadline counter = %d, want 3", n)
	}
	if g := s.Generation(); g.inflight.Load() != 0 {
		t.Fatalf("generation still pinned: %d", g.inflight.Load())
	}
}

func TestAdminSwapAndHeads(t *testing.T) {
	fx := fixture(t)
	s := loadedServer(t, Config{Replicas: 1})
	h := s.Handler(nil)

	rr := get(h, "/admin/heads?limit=5")
	if rr.Code != http.StatusOK {
		t.Fatalf("heads = %d", rr.Code)
	}
	var hb headsBody
	if err := json.Unmarshal(rr.Body.Bytes(), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Generation != 1 || len(hb.Heads) == 0 || len(hb.Heads) > 5 {
		t.Fatalf("heads body %+v", hb)
	}

	// Swap via POST body; the generation must advance and queries must
	// immediately serve the new id.
	var buf bytes.Buffer
	if err := rules.WriteJSON(&buf, fx.rs, fx.vocab.Word); err != nil {
		t.Fatal(err)
	}
	rr = post(h, "/admin/swap", &buf)
	if rr.Code != http.StatusOK {
		t.Fatalf("swap = %d: %s", rr.Code, rr.Body.String())
	}
	var sb swapBody
	if err := json.Unmarshal(rr.Body.Bytes(), &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Generation != 2 || sb.Stats.Rules == 0 {
		t.Fatalf("swap body %+v", sb)
	}
	var eb expandBody
	rr = get(h, "/expand?q="+url.QueryEscape(fx.words[0]))
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Generation != 2 {
		t.Fatalf("expand served generation %d after swap", eb.Generation)
	}
	if got := s.UndrainedOld(); got != 0 {
		t.Fatalf("%d undrained generations with no queries in flight", got)
	}
}

func TestMetricsExposure(t *testing.T) {
	fx := fixture(t)
	rec := obs.New(obs.Config{})
	s := loadedServer(t, Config{Replicas: 2})
	h := s.Handler(rec)
	for i := 0; i < 4; i++ {
		get(h, "/expand?q="+url.QueryEscape(fx.words[i%len(fx.words)]))
	}
	rr := get(h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rr.Code)
	}
	text := rr.Body.String()
	for _, want := range []string{
		"pmihp_serve_queries_total 4",
		"pmihp_serve_generation_id 1",
		"pmihp_serve_index_bytes_held",
		"pmihp_serve_cache_misses_total",
		"pmihp_serve_latency_p99_seconds",
		"pmihp_serve_qps",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	rr = get(h, "/snapshot")
	var snap obs.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gauges["serve_queries_total"] != 4 {
		t.Fatalf("snapshot gauges %+v", snap.Gauges)
	}
	if snap.Gauges["serve_index_bytes_held"] != s.Generation().Index.MemBytes() {
		t.Fatal("bytes_held gauge does not match the index")
	}
}

func TestLRUCacheAndFlight(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Fatal("miss on live key")
	}
	c.put("c", []byte("3")) // evicts b (a was touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	if c.hits.Load() != 2 || c.misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d", c.hits.Load(), c.misses.Load())
	}

	// A nil cache (disabled) is inert.
	var nilCache *lruCache
	nilCache.put("x", nil)
	if _, ok := nilCache.get("x"); ok {
		t.Fatal("nil cache hit")
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmihp/internal/obs"
	"pmihp/internal/rules"
)

// Config configures a Server.
type Config struct {
	// Replicas is the number of read shards: each query hashes to one
	// replica, which owns a private cache and singleflight group so hot
	// heads contend only within their shard. Every replica reads the
	// same generation through a plain atomic pointer — reads take no
	// locks. Defaults to GOMAXPROCS.
	Replicas int
	// CacheSize is the per-replica LRU capacity in entries (cached
	// marshaled payloads). 0 selects the default (4096); negative
	// disables caching.
	CacheSize int
	// Deadline bounds each query via its request context; 0 disables.
	Deadline time.Duration
	// DefaultLimit is the per-word term limit applied when a query does
	// not pass one. 0 selects the default (10). A request's explicit
	// limit=0 means unlimited.
	DefaultLimit int
}

const (
	defaultCacheSize = 4096
	defaultLimit     = 10
)

// Server answers expansion and association queries over hot-swappable
// rule-set generations. The zero Server is not usable; use NewServer.
type Server struct {
	cfg      Config
	gen      atomic.Pointer[Generation] // authoritative current generation
	replicas []*replica
	nextID   atomic.Int64
	swapMu   sync.Mutex // serializes swaps (not queries)

	oldMu   sync.Mutex
	oldGens []*Generation // retired, possibly not yet drained

	queries          atomic.Int64
	errorCount       atomic.Int64
	deadlineExceeded atomic.Int64
	notReady         atomic.Int64
	swaps            atomic.Int64
	hist             latencyHist

	scrapeMu    sync.Mutex
	lastScrape  time.Time
	lastQueries int64
	started     time.Time
}

// replica is one read shard: a plain pointer to the current generation
// plus shard-private cache state.
type replica struct {
	gen   atomic.Pointer[Generation]
	cache *lruCache
	sf    *flightGroup
}

// NewServer returns a Server with no generation loaded; /healthz reports
// loading and queries answer 503 until the first Swap.
func NewServer(cfg Config) *Server {
	if cfg.Replicas <= 0 {
		cfg.Replicas = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = defaultCacheSize
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0 // disabled: replicas get nil caches
	}
	if cfg.DefaultLimit == 0 {
		cfg.DefaultLimit = defaultLimit
	}
	s := &Server{cfg: cfg, started: time.Now()}
	s.lastScrape = s.started
	for i := 0; i < cfg.Replicas; i++ {
		rep := &replica{sf: newFlightGroup()}
		if cfg.CacheSize > 0 {
			rep.cache = newLRU(cfg.CacheSize)
		}
		s.replicas = append(s.replicas, rep)
	}
	return s
}

// Swap validates and installs a new generation built from the rule set,
// then retires the previous one. New queries see the new generation
// immediately; queries already pinned to the old one finish against it,
// and the old generation reports drained once the last of them releases
// it. Zero queries are dropped by a swap.
func (s *Server) Swap(ws []rules.WordRule, source string) (*Generation, error) {
	ix, err := BuildIndex(ws)
	if err != nil {
		return nil, err
	}
	if err := ix.Validate(); err != nil {
		return nil, fmt.Errorf("serve: refusing to swap invalid index: %w", err)
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	g := newGeneration(s.nextID.Add(1), source, ix)
	old := s.gen.Swap(g)
	for _, rep := range s.replicas {
		rep.gen.Store(g)
	}
	if old != nil {
		old.retire()
		s.oldMu.Lock()
		s.oldGens = append(s.oldGens, old)
		s.oldMu.Unlock()
	}
	s.swaps.Add(1)
	return g, nil
}

// SwapFromFile loads a WriteJSON rule export and swaps it in.
func (s *Server) SwapFromFile(path string) (*Generation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	ws, err := rules.ParseJSON(f)
	if err != nil {
		return nil, err
	}
	return s.Swap(ws, path)
}

// Generation returns the currently served generation, or nil before the
// first swap. The returned generation is not pinned; it is a snapshot
// for reporting, not for reading the index under.
func (s *Server) Generation() *Generation { return s.gen.Load() }

// UndrainedOld prunes the retired-generation list and returns how many
// retired generations still have queries in flight.
func (s *Server) UndrainedOld() int {
	s.oldMu.Lock()
	defer s.oldMu.Unlock()
	live := s.oldGens[:0]
	for _, g := range s.oldGens {
		if !g.drainedNow() {
			live = append(live, g)
		}
	}
	for i := len(live); i < len(s.oldGens); i++ {
		s.oldGens[i] = nil
	}
	s.oldGens = live
	return len(live)
}

// CacheStats sums the replica cache and singleflight counters.
func (s *Server) CacheStats() (hits, misses, coalesced int64) {
	for _, rep := range s.replicas {
		if rep.cache != nil {
			hits += rep.cache.hits.Load()
			misses += rep.cache.misses.Load()
		}
		coalesced += rep.sf.coalesced.Load()
	}
	return hits, misses, coalesced
}

// latencyHist is a lock-free log-spaced latency histogram: bucket i
// counts queries with latency in [2^i, 2^(i+1)) microseconds. Quantiles
// report the upper bound of the covering bucket — coarse (a factor of
// two) but allocation-free, monotone, and cheap enough for the hot path.
type latencyHist struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	i := bits.Len64(uint64(us)) // 0µs→0, 1µs→1, 2-3µs→2, ...
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// quantile returns the q-quantile latency in seconds (0 when empty).
func (h *latencyHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return float64(uint64(1)<<uint(i)) * 1e-6
		}
	}
	return float64(uint64(1)<<uint(len(h.buckets)-1)) * 1e-6
}

// PublishObs pushes the serving gauges into the recorder: query and
// error totals, cache hit/miss/coalesced counters, the generation id
// and its index bytes_held, retired-but-undrained generations, QPS over
// the window since the previous publish, and the latency quantiles. The
// metrics handler calls it before every scrape, so /metrics and
// /snapshot always expose current values.
func (s *Server) PublishObs(rec *obs.Recorder) {
	if !rec.Enabled() {
		return
	}
	q := s.queries.Load()
	rec.SetGauge("serve_queries_total", q)
	rec.SetGauge("serve_errors_total", s.errorCount.Load())
	rec.SetGauge("serve_deadline_exceeded_total", s.deadlineExceeded.Load())
	rec.SetGauge("serve_not_ready_total", s.notReady.Load())
	rec.SetGauge("serve_swaps_total", s.swaps.Load())
	hits, misses, coalesced := s.CacheStats()
	rec.SetGauge("serve_cache_hits_total", hits)
	rec.SetGauge("serve_cache_misses_total", misses)
	rec.SetGauge("serve_cache_coalesced_total", coalesced)
	rec.SetGauge("serve_generations_undrained", int64(s.UndrainedOld()))
	if total := hits + misses; total > 0 {
		rec.SetFloatGauge("serve_cache_hit_rate", float64(hits)/float64(total))
	}
	if g := s.gen.Load(); g != nil {
		rec.SetGauge("serve_generation_id", g.ID)
		rec.SetGauge("serve_index_bytes_held", g.Index.MemBytes())
		rec.SetGauge("serve_index_rules", int64(g.Index.Stats().Rules))
	}
	rec.SetFloatGauge("serve_latency_p50_seconds", s.hist.quantile(0.50))
	rec.SetFloatGauge("serve_latency_p95_seconds", s.hist.quantile(0.95))
	rec.SetFloatGauge("serve_latency_p99_seconds", s.hist.quantile(0.99))

	s.scrapeMu.Lock()
	now := time.Now()
	if dt := now.Sub(s.lastScrape).Seconds(); dt > 0 {
		rec.SetFloatGauge("serve_qps", float64(q-s.lastQueries)/dt)
	}
	s.lastScrape, s.lastQueries = now, q
	s.scrapeMu.Unlock()
}

// Handler returns the serving mux:
//
//	/expand?q=w[&q=w2...][&limit=N]   thesaurus expansions per query word
//	/rules?head=w[&limit=N]           full rules with the head as consequent
//	/healthz                          readiness + current generation stats
//	/admin/swap   (POST)              load+validate+swap a new generation
//	/admin/heads[?limit=N]            heads by popularity (load-test aim)
//	/metrics, /snapshot, /debug/...   the obs endpoint (when rec != nil),
//	                                  refreshed with serving gauges per scrape
//
// Like the obs endpoint, the mux is unauthenticated — /admin/swap reads
// server-local files — and must only bind trusted interfaces.
func (s *Server) Handler(rec *obs.Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/expand", func(w http.ResponseWriter, r *http.Request) { s.serveExpand(w, r) })
	mux.HandleFunc("/rules", func(w http.ResponseWriter, r *http.Request) { s.serveRules(w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { s.serveHealthz(w, r) })
	mux.HandleFunc("/admin/swap", func(w http.ResponseWriter, r *http.Request) { s.serveSwap(w, r) })
	mux.HandleFunc("/admin/heads", func(w http.ResponseWriter, r *http.Request) { s.serveHeads(w, r) })
	if rec.Enabled() {
		obsHandler := rec.Handler()
		wrap := func(w http.ResponseWriter, r *http.Request) {
			s.PublishObs(rec)
			obsHandler.ServeHTTP(w, r)
		}
		mux.HandleFunc("/metrics", wrap)
		mux.HandleFunc("/snapshot", wrap)
		mux.Handle("/debug/", obsHandler)
	}
	return mux
}

// writeJSON writes v as the response body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// queryWords extracts the query words: every q parameter, split on
// whitespace and commas, preserving order.
func queryWords(r *http.Request) []string {
	var words []string
	for _, q := range r.URL.Query()["q"] {
		for _, w := range strings.FieldsFunc(q, func(c rune) bool { return c == ' ' || c == '\t' || c == ',' }) {
			words = append(words, w)
		}
	}
	return words
}

// parseLimit resolves the limit parameter: absent selects the server
// default; an explicit 0 means unlimited; negatives are rejected.
func (s *Server) parseLimit(r *http.Request) (int, error) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return s.cfg.DefaultLimit, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q", v)
	}
	return n, nil
}

// query runs one cached, coalesced, deadline-bounded index computation:
// it pins the current generation of the query's replica, consults the
// replica cache, and computes (once per concurrent key) otherwise. The
// compute function receives the pinned generation and returns the
// marshaled payload to cache and serve.
func (s *Server) query(w http.ResponseWriter, r *http.Request, kind, key string,
	compute func(g *Generation) ([]byte, error),
	respond func(g *Generation, payload []byte)) {
	start := time.Now()
	s.queries.Add(1)
	defer func() { s.hist.record(time.Since(start)) }()

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}

	rep := s.replicas[fnv64a(key)%uint64(len(s.replicas))]
	g := acquireFrom(&rep.gen)
	if g == nil {
		s.notReady.Add(1)
		s.errorCount.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no generation loaded"})
		return
	}
	defer g.release()

	if err := ctx.Err(); err != nil {
		s.deadlineExceeded.Add(1)
		s.errorCount.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded"})
		return
	}

	cacheKey := fmt.Sprintf("%s\x00%d\x00%s", kind, g.ID, key)
	if payload, ok := rep.cache.get(cacheKey); ok {
		respond(g, payload)
		return
	}
	payload, err := rep.sf.do(ctx, cacheKey, func() ([]byte, error) {
		p, err := compute(g)
		if err == nil {
			rep.cache.put(cacheKey, p)
		}
		return p, err
	})
	if err != nil {
		s.errorCount.Add(1)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadlineExceeded.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded"})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if err := ctx.Err(); err != nil {
		s.deadlineExceeded.Add(1)
		s.errorCount.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded"})
		return
	}
	respond(g, payload)
}

// serveExpand answers GET /expand?q=...&limit=N.
func (s *Server) serveExpand(w http.ResponseWriter, r *http.Request) {
	words := queryWords(r)
	if len(words) == 0 {
		s.errorCount.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing q parameter"})
		return
	}
	limit, err := s.parseLimit(r)
	if err != nil {
		s.errorCount.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	key := fmt.Sprintf("%d\x00%s", limit, strings.Join(words, "\x00"))
	s.query(w, r, "expand", key,
		func(g *Generation) ([]byte, error) {
			return json.Marshal(g.Index.Expand(limit, words...))
		},
		func(g *Generation, payload []byte) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"generation":%d,"expansions":%s}`+"\n", g.ID, payload)
		})
}

// serveRules answers GET /rules?head=w&limit=N.
func (s *Server) serveRules(w http.ResponseWriter, r *http.Request) {
	head := r.URL.Query().Get("head")
	if head == "" || strings.ContainsAny(head, " \t,") {
		s.errorCount.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "head must be a single word"})
		return
	}
	limit, err := s.parseLimit(r)
	if err != nil {
		s.errorCount.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	key := fmt.Sprintf("%d\x00%s", limit, head)
	s.query(w, r, "rules", key,
		func(g *Generation) ([]byte, error) {
			return json.Marshal(g.Index.Rules(head, limit))
		},
		func(g *Generation, payload []byte) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"generation":%d,"head":%q,"rules":%s}`+"\n", g.ID, head, payload)
		})
}

// healthBody is the /healthz response.
type healthBody struct {
	Status     string `json:"status"`
	Generation int64  `json:"generation,omitempty"`
	Source     string `json:"source,omitempty"`
	Stats      *Stats `json:"stats,omitempty"`
}

func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	g := s.gen.Load()
	if g == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "loading"})
		return
	}
	st := g.Index.Stats()
	writeJSON(w, http.StatusOK, healthBody{Status: "ok", Generation: g.ID, Source: g.Source, Stats: &st})
}

// swapBody is the /admin/swap response.
type swapBody struct {
	Generation int64 `json:"generation"`
	Stats      Stats `json:"stats"`
}

// serveSwap answers POST /admin/swap?path=/abs/rules.json (load a file
// from the server's filesystem) or POST /admin/swap with a WriteJSON
// rule array as the request body.
func (s *Server) serveSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var g *Generation
	var err error
	if path := r.URL.Query().Get("path"); path != "" {
		g, err = s.SwapFromFile(path)
	} else {
		var ws []rules.WordRule
		if ws, err = rules.ParseJSON(r.Body); err == nil {
			g, err = s.Swap(ws, "POST /admin/swap")
		}
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, swapBody{Generation: g.ID, Stats: g.Index.Stats()})
}

// headsBody is the /admin/heads response.
type headsBody struct {
	Generation int64      `json:"generation"`
	Heads      []HeadInfo `json:"heads"`
}

func (s *Server) serveHeads(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad limit %q", v)})
			return
		}
		limit = n
	}
	g := acquireFrom(&s.gen)
	if g == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no generation loaded"})
		return
	}
	defer g.release()
	writeJSON(w, http.StatusOK, headsBody{Generation: g.ID, Heads: g.Index.Heads(limit)})
}

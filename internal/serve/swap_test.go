package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGenerationDrainProtocol pins the epoch protocol directly: a
// retired generation must not report drained while a query holds it,
// and must report drained as soon as the last hold releases.
func TestGenerationDrainProtocol(t *testing.T) {
	s := loadedServer(t, Config{Replicas: 1})
	rep := s.replicas[0]
	g1 := acquireFrom(&rep.gen)
	if g1 == nil || g1.ID != 1 {
		t.Fatalf("acquired %+v", g1)
	}
	if _, err := s.Swap(fixture(t).ws, "second"); err != nil {
		t.Fatal(err)
	}
	if g1.drainedNow() {
		t.Fatal("retired generation drained with a query in flight")
	}
	if got := s.UndrainedOld(); got != 1 {
		t.Fatalf("UndrainedOld = %d, want 1", got)
	}
	// New queries must already land on generation 2.
	g2 := acquireFrom(&rep.gen)
	if g2.ID != 2 {
		t.Fatalf("post-swap acquire got generation %d", g2.ID)
	}
	g2.release()
	g1.release()
	select {
	case <-g1.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("generation never drained after last release")
	}
	if got := s.UndrainedOld(); got != 0 {
		t.Fatalf("UndrainedOld = %d after drain", got)
	}
	// The live generation never drains (it is not retired).
	if g2.drainedNow() {
		t.Fatal("live generation reports drained")
	}
}

// TestHotSwapUnderConcurrentLoad is the swap gate: a storm of concurrent
// queries across repeated generation swaps must drop zero queries (every
// response 200 with a well-formed body and a plausible generation id),
// every retired generation must drain, and the process must not leak
// goroutines. Run under -race this also proves the swap path's memory
// ordering.
func TestHotSwapUnderConcurrentLoad(t *testing.T) {
	fx := fixture(t)
	baseline := runtime.NumGoroutine()
	s := loadedServer(t, Config{Replicas: 4, CacheSize: 64})
	h := s.Handler(nil)

	const clients = 8
	const swaps = 25
	var stop atomic.Bool
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				w := fx.words[(i*clients+c)%len(fx.words)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/expand?q="+url.QueryEscape(w), nil))
				if rec.Code != http.StatusOK {
					failed.Add(1)
					continue
				}
				var body expandBody
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Generation < 1 || body.Generation > swaps+1 {
					failed.Add(1)
					continue
				}
				served.Add(1)
			}
		}(c)
	}

	gens := make([]*Generation, 0, swaps)
	for i := 0; i < swaps; i++ {
		g, err := s.Swap(fx.ws, fmt.Sprintf("swap %d", i))
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		gens = append(gens, g)
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d queries dropped or malformed during swaps", failed.Load(), failed.Load()+served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no queries completed during the swap storm")
	}
	// Every generation but the last was retired and must drain now that
	// all queries have released.
	for i, g := range gens[:len(gens)-1] {
		select {
		case <-g.Drained():
		case <-time.After(5 * time.Second):
			t.Fatalf("generation %d (swap %d) never drained", g.ID, i)
		}
	}
	if got := s.UndrainedOld(); got != 0 {
		t.Fatalf("%d retired generations undrained after load stopped", got)
	}
	if cur := s.Generation(); cur.ID != swaps+1 || cur.inflight.Load() != 0 {
		t.Fatalf("final generation %d inflight %d", cur.ID, cur.inflight.Load())
	}

	// No background machinery: goroutines must settle back to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked: %d > baseline %d", n, baseline)
	}
}

// TestFlightCoalescing drives many concurrent identical queries through
// one replica and checks the singleflight counters: with a barrier start
// at least some followers must coalesce onto a leader's computation, and
// all must receive the same payload.
func TestFlightCoalescing(t *testing.T) {
	g := newFlightGroup()
	var computes atomic.Int64
	var start, done sync.WaitGroup
	const n = 16
	results := make([][]byte, n)
	start.Add(1)
	block := make(chan struct{})
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			v, err := g.do(context.Background(), "k", func() ([]byte, error) {
				computes.Add(1)
				<-block // hold the leader so followers pile up
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	start.Done()
	time.Sleep(50 * time.Millisecond) // let followers reach the group
	close(block)
	done.Wait()
	for i, v := range results {
		if string(v) != "payload" {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
	if c := computes.Load(); c == 0 || c == n {
		t.Fatalf("computes = %d, want coalescing (0 < c < %d)", c, n)
	}
	if g.coalesced.Load() == 0 {
		t.Fatal("coalesced counter never moved")
	}
}

package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// lruCache is a fixed-capacity LRU over marshaled response payloads,
// keyed by (generation, endpoint, query, limit) strings. Entries from a
// retired generation are never served again (their keys embed the
// generation id) and age out through normal eviction. One cache lives in
// each replica, so hot-head lookups contend only within their shard.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lruCache {
	return &lruCache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns the cached payload and records a hit or miss. A nil cache
// (caching disabled) always misses without recording.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*lruEntry).val, true
}

// put inserts the payload, evicting the least-recently-used entry when
// over capacity.
func (c *lruCache) put(key string, val []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the live entry count.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup coalesces concurrent computations of the same key: the
// first caller (the leader) runs fn; followers arriving while it runs
// wait for its result instead of recomputing — the classic singleflight
// shape, written against context so a follower still honors its own
// query deadline while waiting. Coalesced counts the follower waits.
type flightGroup struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	coalesced atomic.Int64
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn for key, or waits for an in-flight run of the same key.
func (g *flightGroup) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

package serve

import (
	"sync"
	"sync/atomic"
)

// Generation is one immutable rule-set index in service. Queries pin the
// generation they read (acquire/release, an epoch count) so a hot swap
// never invalidates an answer mid-flight: the swap installs the new
// generation for new queries and retires the old one, which reports
// itself drained only after its last in-flight query releases it. No
// query is ever dropped by a swap, and no background goroutine is needed
// to reclaim a generation — the last release does the bookkeeping.
type Generation struct {
	// ID is the monotonically increasing generation number; Source is a
	// human-readable provenance note ("mined at start", a file path).
	ID     int64
	Source string
	Index  *Index

	inflight  atomic.Int64
	retired   atomic.Bool
	drainOnce sync.Once
	drained   chan struct{}
}

func newGeneration(id int64, source string, ix *Index) *Generation {
	return &Generation{ID: id, Source: source, Index: ix, drained: make(chan struct{})}
}

// acquireFrom pins the generation currently installed in ptr. The
// increment-then-recheck loop closes the race with a concurrent swap: if
// the pointer still holds g after the increment, any later retire must
// observe the increment (or the matching release), so g cannot report
// drained while this query reads it. On a pointer change the speculative
// pin is released and the load retried against the new generation.
func acquireFrom(ptr *atomic.Pointer[Generation]) *Generation {
	for {
		g := ptr.Load()
		if g == nil {
			return nil
		}
		g.inflight.Add(1)
		if ptr.Load() == g {
			return g
		}
		g.release()
	}
}

// release unpins the generation; the last release of a retired
// generation marks it drained.
func (g *Generation) release() {
	if g.inflight.Add(-1) == 0 && g.retired.Load() {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

// retire marks the generation as out of service. It is called after the
// serving pointers have been swapped away from g, so the in-flight count
// can only fall from here; when it reaches zero the generation is
// drained. Safe against concurrent releases: whichever of retire and the
// last release observes both conditions closes the channel, exactly once.
func (g *Generation) retire() {
	g.retired.Store(true)
	if g.inflight.Load() == 0 {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

// Drained returns a channel closed once the generation is retired and
// its last in-flight query has released it — the point at which the old
// index is unreachable and its memory is garbage.
func (g *Generation) Drained() <-chan struct{} { return g.drained }

// drainedNow reports whether the generation has fully drained.
func (g *Generation) drainedNow() bool {
	select {
	case <-g.drained:
		return true
	default:
		return false
	}
}

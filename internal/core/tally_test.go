package core

import (
	"sync"
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
)

func TestPairTallyCounts(t *testing.T) {
	ta := NewPairTally()
	ta.note(0, pairKey(1, 2))
	ta.note(1, pairKey(1, 2))
	ta.note(0, pairKey(3, 4))
	ta.note(0, pairKey(3, 4)) // same node twice: still one bit
	if ta.Distinct() != 2 {
		t.Fatalf("Distinct = %d", ta.Distinct())
	}
	if ta.CountedAtLeast(1) != 2 || ta.CountedAtLeast(2) != 1 || ta.CountedAtLeast(3) != 0 {
		t.Fatalf("CountedAtLeast = %d/%d/%d",
			ta.CountedAtLeast(1), ta.CountedAtLeast(2), ta.CountedAtLeast(3))
	}
}

func TestPairTallyBatchOnlyPairs(t *testing.T) {
	ta := NewPairTally()
	ta.noteBatch(2, 3, []itemset.Itemset{itemset.New(1, 2, 3)}) // ignored: k != 2
	ta.noteBatch(2, 2, []itemset.Itemset{itemset.New(1, 2), itemset.New(2, 5)})
	if ta.Distinct() != 2 {
		t.Fatalf("Distinct = %d", ta.Distinct())
	}
}

func TestPairTallyConcurrent(t *testing.T) {
	ta := NewPairTally()
	var wg sync.WaitGroup
	for node := 0; node < 8; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ta.note(node, pairKey(itemset.Item(i%50), itemset.Item(100+i%50)))
			}
		}(node)
	}
	wg.Wait()
	if ta.Distinct() != 50 {
		t.Fatalf("Distinct = %d", ta.Distinct())
	}
	if ta.CountedAtLeast(8) != 50 {
		t.Fatalf("CountedAtLeast(8) = %d", ta.CountedAtLeast(8))
	}
}

func TestParallelResultHelpers(t *testing.T) {
	mk := func(cand2 int, secs float64) NodeReport {
		m := mining.NewMetrics("x")
		m.AddCandidates(2, cand2)
		return NodeReport{Metrics: m, Seconds: secs}
	}
	r := &ParallelResult{Nodes: []NodeReport{mk(10, 2), mk(30, 4)}}
	if got := r.AvgCandidates(2); got != 20 {
		t.Fatalf("AvgCandidates = %g", got)
	}
	if got := r.AvgNodeSeconds(); got != 3 {
		t.Fatalf("AvgNodeSeconds = %g", got)
	}
	empty := &ParallelResult{}
	if empty.AvgCandidates(2) != 0 || empty.AvgNodeSeconds() != 0 {
		t.Fatal("empty result helpers should be zero")
	}
}

func TestPMIHPNodeReportsPopulated(t *testing.T) {
	db := craftedDB()
	r, err := MinePMIHP(db, PMIHPConfig{Nodes: 2}, mining.Options{MinSupCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(r.Nodes))
	}
	docs := 0
	for i, n := range r.Nodes {
		if n.Node != i {
			t.Fatalf("node id %d at index %d", n.Node, i)
		}
		if n.LocalMin < 1 {
			t.Fatalf("node %d localMin %d", i, n.LocalMin)
		}
		if n.Seconds <= 0 {
			t.Fatalf("node %d has no simulated time", i)
		}
		docs += n.Docs
	}
	if docs != db.Len() {
		t.Fatalf("node docs cover %d of %d", docs, db.Len())
	}
	if r.THTExchangeSeconds <= 0 {
		t.Fatal("THT exchange not accounted")
	}
	if r.Result.Metrics.Algorithm != "pmihp" {
		t.Fatalf("aggregate algorithm = %q", r.Result.Metrics.Algorithm)
	}
}

package core

import (
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/text"
)

// pairCountToFlenRef is the seed's linear search: the smallest n >= 2 whose
// pair count n*(n-1)/2 covers pairs.
func pairCountToFlenRef(pairs int) int {
	if pairs <= 0 {
		return 0
	}
	n := 2
	for n*(n-1)/2 < pairs {
		n++
	}
	return n
}

// TestPairCountToFlenInversion: the closed-form integer-sqrt inversion must
// agree with the linear reference everywhere, including the exact triangular
// numbers and their neighbours where float rounding could bite.
func TestPairCountToFlenInversion(t *testing.T) {
	for pairs := -3; pairs <= 20000; pairs++ {
		if got, want := pairCountToFlen(pairs), pairCountToFlenRef(pairs); got != want {
			t.Fatalf("pairCountToFlen(%d) = %d, want %d", pairs, got, want)
		}
	}
	// Triangular numbers around large n, plus off-by-one neighbours.
	for _, n := range []int{100, 1000, 65536, 1 << 20} {
		tri := n * (n - 1) / 2
		for _, pairs := range []int{tri - 1, tri, tri + 1} {
			got := pairCountToFlen(pairs)
			if got*(got-1)/2 < pairs {
				t.Fatalf("pairCountToFlen(%d) = %d does not cover pairs", pairs, got)
			}
			if got > 2 && (got-1)*(got-2)/2 >= pairs {
				t.Fatalf("pairCountToFlen(%d) = %d is not minimal", pairs, got)
			}
		}
	}
}

// sameSimSeconds tolerates a few ULPs of difference: node clocks are float
// accumulators and the asynchronous fabric services polls in goroutine
// arrival order, so the *order* of float additions (not the amounts) can
// shift between runs. The seed implementation wobbles identically; exact
// equality of the charged integer work units is asserted separately.
func sameSimSeconds(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-12*(a+b)
}

// TestMinersIdenticalAcrossWorkerCounts: every sharded kernel must produce
// the same frequent itemsets, supports, and simulated times for every
// worker count — intra-node workers may only change wall-clock time. Run
// with -race this also exercises the shard scans for data races.
func TestMinersIdenticalAcrossWorkerCounts(t *testing.T) {
	docs, err := corpus.Generate(corpus.CorpusB(corpus.Small))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)

	baseOpts := mining.Options{MinSupCount: 2, MaxK: 3}

	t.Run("MIHP", func(t *testing.T) {
		opts := baseOpts
		opts.IntraNodeWorkers = 1
		want, err := MineMIHP(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 5} {
			opts.IntraNodeWorkers = workers
			got, err := MineMIHP(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ok, diff := mining.SameFrequentSets(want, got); !ok {
				t.Fatalf("workers=%d frequent sets differ: %s", workers, diff)
			}
			if want.Metrics.Work.Units != got.Metrics.Work.Units {
				t.Fatalf("workers=%d charged %d work units, serial charged %d",
					workers, got.Metrics.Work.Units, want.Metrics.Work.Units)
			}
		}
	})

	t.Run("PMIHP", func(t *testing.T) {
		opts := baseOpts
		opts.IntraNodeWorkers = 1
		want, err := MinePMIHP(db, PMIHPConfig{Nodes: 4}, opts)
		if err != nil {
			t.Fatal(err)
		}
		// The pool divides across the 4 simulated nodes, so 8 and 13 give
		// each node 2 and 3 shard workers respectively.
		for _, workers := range []int{8, 13} {
			opts.IntraNodeWorkers = workers
			got, err := MinePMIHP(db, PMIHPConfig{Nodes: 4}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ok, diff := mining.SameFrequentSets(want.Result, got.Result); !ok {
				t.Fatalf("workers=%d frequent sets differ: %s", workers, diff)
			}
			if !sameSimSeconds(want.TotalSeconds, got.TotalSeconds) {
				t.Fatalf("workers=%d simulated %v s, serial simulated %v s",
					workers, got.TotalSeconds, want.TotalSeconds)
			}
			for i := range want.Nodes {
				if !sameSimSeconds(want.Nodes[i].Seconds, got.Nodes[i].Seconds) {
					t.Fatalf("workers=%d node %d clock %v, serial %v",
						workers, i, got.Nodes[i].Seconds, want.Nodes[i].Seconds)
				}
			}
		}
	})
}

package core

import (
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
)

// TestPartitionerEquivalenceAndSkewSpeedup pins the two contractual
// properties of the work-balanced partitioner:
//
//  1. Equivalence — the partitioner is a physical placement knob. PMIHP's
//     polling phase computes exact global counts regardless of where
//     transactions live, so the frequent itemsets (sets AND counts) must be
//     identical between the equal-document-count split and the work split
//     at every node count.
//  2. Speedup — on the skewed corpus (Zipfian day volumes, day-correlated
//     document lengths) the equal-count split makes node 0 the fleet-wide
//     straggler; simulated time is the max node clock, so equalizing
//     per-node tokens must cut simulated seconds by at least 1.25x at 8
//     nodes. Simulated seconds and per-node work legitimately DIFFER across
//     partitioners — that difference is the entire point.
func TestPartitionerEquivalenceAndSkewSpeedup(t *testing.T) {
	cfg := corpus.CorpusSkewed(corpus.Small)
	db := smallDB(t, cfg)

	run := func(p mining.Partitioner, nodes int) *ParallelResult {
		opts := mining.Options{MinSupCount: 2, MaxK: 3, Partitioner: p}
		par, err := MinePMIHP(db, PMIHPConfig{Nodes: nodes}, opts)
		if err != nil {
			t.Fatalf("PMIHP(%v, %d nodes): %v", p, nodes, err)
		}
		return par
	}

	for _, nodes := range []int{1, 2, 4, 8} {
		byCount := run(mining.PartitionByCount, nodes)
		byWork := run(mining.PartitionByWork, nodes)
		if ok, diff := mining.SameFrequentSets(byCount.Result, byWork.Result); !ok {
			t.Fatalf("partitioner changed the answer at %d nodes: %s", nodes, diff)
		}
	}

	byCount := run(mining.PartitionByCount, 8)
	byWork := run(mining.PartitionByWork, 8)
	speedup := byCount.TotalSeconds / byWork.TotalSeconds
	t.Logf("skewed corpus, 8 nodes: count split %.3fs, work split %.3fs, speedup %.2fx",
		byCount.TotalSeconds, byWork.TotalSeconds, speedup)
	if speedup < 1.25 {
		t.Fatalf("work split speedup %.2fx below the 1.25x floor (count %.3fs, work %.3fs)",
			speedup, byCount.TotalSeconds, byWork.TotalSeconds)
	}
}

package core

import (
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/tht"
	"pmihp/internal/txdb"
)

// craftedDB builds a hand-written database where the frequent structure is
// known exactly: items 0,1,2 co-occur in 3 docs; {4,5} in 2; item 9 occurs
// once.
func craftedDB() *txdb.DB {
	txs := []txdb.Transaction{
		{TID: 0, Day: 0, Items: itemset.New(0, 1, 2, 9)},
		{TID: 1, Day: 0, Items: itemset.New(0, 1, 2, 4)},
		{TID: 2, Day: 1, Items: itemset.New(0, 1, 2, 5)},
		{TID: 3, Day: 1, Items: itemset.New(4, 5)},
		{TID: 4, Day: 1, Items: itemset.New(4, 5, 7)},
		{TID: 5, Day: 1, Items: itemset.New(7)},
	}
	return txdb.New(txs, 10)
}

func TestMIHPCraftedExact(t *testing.T) {
	r, err := MineMIHP(craftedDB(), mining.Options{MinSupCount: 2, PartitionSize: 2, THTEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		itemset.New(0).Key():       3,
		itemset.New(1).Key():       3,
		itemset.New(2).Key():       3,
		itemset.New(4).Key():       3,
		itemset.New(5).Key():       3,
		itemset.New(7).Key():       2,
		itemset.New(0, 1).Key():    3,
		itemset.New(0, 2).Key():    3,
		itemset.New(1, 2).Key():    3,
		itemset.New(4, 5).Key():    2,
		itemset.New(0, 1, 2).Key(): 3,
	}
	if len(r.Frequent) != len(want) {
		t.Fatalf("found %d itemsets, want %d: %v", len(r.Frequent), len(want), r.Frequent)
	}
	for _, c := range r.Frequent {
		if want[c.Set.Key()] != c.Count {
			t.Fatalf("%v count %d, want %d", c.Set, c.Count, want[c.Set.Key()])
		}
	}
}

// TestMIHPTinyPartitions forces one item per partition — the maximum number
// of multipass rounds — and the answer must not change.
func TestMIHPTinyPartitions(t *testing.T) {
	db := craftedDB()
	ref, err := MineMIHP(db, mining.Options{MinSupCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := MineMIHP(db, mining.Options{MinSupCount: 2, PartitionSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(ref, tiny); !ok {
		t.Fatalf("partition size 1 changed the answer: %s", diff)
	}
	// And IHP (single partition) agrees too.
	ihp, err := MineIHP(db, mining.Options{MinSupCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(ref, ihp); !ok {
		t.Fatalf("IHP changed the answer: %s", diff)
	}
	if ihp.Metrics.Algorithm != "ihp" {
		t.Fatalf("algorithm label = %q", ihp.Metrics.Algorithm)
	}
}

// TestMIHPTinyTHT stresses heavy slot collision (a 1-entry table prunes
// nothing but must stay sound).
func TestMIHPTinyTHT(t *testing.T) {
	db := craftedDB()
	ref := mining.BruteForce(db, mining.Options{MinSupCount: 2})
	got, err := MineMIHP(db, mining.Options{MinSupCount: 2, THTEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(ref, got); !ok {
		t.Fatalf("1-entry THT broke the answer: %s", diff)
	}
}

func TestMIHPEmptyAndDegenerate(t *testing.T) {
	empty := txdb.New(nil, 5)
	r, err := MineMIHP(empty, mining.Options{MinSupCount: 1})
	if err != nil || len(r.Frequent) != 0 {
		t.Fatalf("empty db: %v, %v", r.Frequent, err)
	}
	// A database where nothing reaches the threshold.
	one := txdb.New([]txdb.Transaction{{TID: 0, Items: itemset.New(1, 2)}}, 5)
	r, err = MineMIHP(one, mining.Options{MinSupCount: 2})
	if err != nil || len(r.Frequent) != 0 {
		t.Fatalf("nothing frequent: %v, %v", r.Frequent, err)
	}
	// MaxK = 1 returns only items.
	r, err = MineMIHP(craftedDB(), mining.Options{MinSupCount: 2, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Frequent {
		if len(c.Set) != 1 {
			t.Fatalf("MaxK=1 emitted %v", c.Set)
		}
	}
}

// TestTrimmingPreservesCandidateCounts crafts a case where trimming removes
// items and transactions yet all candidate supports stay exact.
func TestTrimmingPreservesCandidateCounts(t *testing.T) {
	// 12 documents built so that pass-2 trimming has real work: item 99
	// occurs frequently but in no frequent pair.
	var txs []txdb.Transaction
	for i := 0; i < 6; i++ {
		txs = append(txs, txdb.Transaction{
			TID: txdb.TID(2 * i), Items: itemset.New(1, 2, 3, 4)})
		txs = append(txs, txdb.Transaction{
			TID: txdb.TID(2*i + 1), Items: itemset.New(99, itemset.Item(10+i))})
	}
	db := txdb.New(txs, 120)
	want := mining.BruteForce(db, mining.Options{MinSupCount: 3})
	got, err := MineMIHP(db, mining.Options{MinSupCount: 3, PartitionSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(want, got); !ok {
		t.Fatal(diff)
	}
	if got.Metrics.TrimmedItems == 0 && got.Metrics.PrunedTx == 0 {
		t.Fatal("crafted case exercised no trimming")
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	for _, pair := range [][2]itemset.Item{{0, 1}, {5, 1 << 30}, {12345, 67890}} {
		key := pairKey(pair[0], pair[1])
		got := pairSetOf(key)
		if got[0] != pair[0] || got[1] != pair[1] {
			t.Fatalf("round trip of %v = %v", pair, got)
		}
	}
}

func TestBoundViableRespectsCascade(t *testing.T) {
	// Two nodes: items 1,2 co-occur only at node 0. A miner at node 1 must
	// prune the pair via its own segment even when the cascade is positive.
	n0 := txdb.New([]txdb.Transaction{
		{TID: 0, Items: itemset.New(1, 2)},
		{TID: 1, Items: itemset.New(1, 2)},
	}, 5)
	n1 := txdb.New([]txdb.Transaction{
		{TID: 2, Items: itemset.New(1)},
		{TID: 3, Items: itemset.New(2)},
	}, 5)
	l0, _ := tht.BuildLocal(n0, 4)
	l1, _ := tht.BuildLocal(n1, 4)
	l0.BuildMasks()
	l1.BuildMasks()
	g := tht.NewGlobal([]*tht.Local{l0, l1})

	ok, _ := g.Segment(0).BoundReaches(itemset.New(1, 2), 1)
	if !ok {
		t.Fatal("node 0 segment should admit the pair")
	}
	// Node 1: TIDs 2 and 3 hash to different slots of a 4-entry table, so
	// the local bound must be zero.
	ok, _ = g.Segment(1).BoundReaches(itemset.New(1, 2), 1)
	if ok {
		t.Fatal("node 1 segment should refute the pair")
	}
	// The cascade still reaches 2 thanks to node 0.
	ok, _ = g.BoundReaches(itemset.New(1, 2), 2)
	if !ok {
		t.Fatal("cascade should admit the pair at threshold 2")
	}
}

func TestPMIHPRejectsBadSplitter(t *testing.T) {
	db := craftedDB()
	_, err := MinePMIHP(db, PMIHPConfig{
		Nodes: 3,
		Split: func(d *txdb.DB, n int) []*txdb.DB { return d.SplitChronological(2) },
	}, mining.Options{MinSupCount: 2})
	if err == nil {
		t.Fatal("mismatched splitter accepted")
	}
}

func TestPMIHPWithSkewAwareSplitGivesSameAnswer(t *testing.T) {
	db := craftedDB()
	opts := mining.Options{MinSupCount: 2}
	ref, err := MineMIHP(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []func(*txdb.DB, int) []*txdb.DB{
		(*txdb.DB).SplitRoundRobin,
		(*txdb.DB).SplitSkewAware,
	} {
		r, err := MinePMIHP(db, PMIHPConfig{Nodes: 2, Split: split}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := mining.SameFrequentSets(ref, r.Result); !ok {
			t.Fatalf("alternative split changed the answer: %s", diff)
		}
	}
}

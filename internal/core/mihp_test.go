package core

import (
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// smallDB generates the Small-scale preset corpus used across core tests.
func smallDB(t testing.TB, cfg corpus.Config) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

func TestMIHPMatchesBruteForce(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	cfg.Docs, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 60, 400, 40, 20
	db := smallDB(t, cfg)
	opts := mining.Options{MinSupFrac: 0.05, PartitionSize: 7, THTEntries: 16}

	want := mining.BruteForce(db, opts)
	got, err := MineMIHP(db, opts)
	if err != nil {
		t.Fatalf("MineMIHP: %v", err)
	}
	if ok, diff := mining.SameFrequentSets(want, got); !ok {
		t.Fatalf("MIHP differs from brute force: %s", diff)
	}
	if got.Metrics.Candidates() == 0 {
		t.Fatal("MIHP reported zero candidates")
	}
}

func TestMIHPMatchesApriori(t *testing.T) {
	for _, minsup := range []float64{0.10, 0.06, 0.04} {
		cfg := corpus.CorpusB(corpus.Small)
		db := smallDB(t, cfg)
		opts := mining.Options{MinSupFrac: minsup, MaxK: 4}

		ap, err := apriori.Mine(db, opts)
		if err != nil {
			t.Fatalf("apriori: %v", err)
		}
		mi, err := MineMIHP(db, opts)
		if err != nil {
			t.Fatalf("mihp: %v", err)
		}
		if ok, diff := mining.SameFrequentSets(ap, mi); !ok {
			t.Fatalf("minsup=%g: MIHP differs from Apriori: %s", minsup, diff)
		}
	}
}

func TestMIHPTrimmingOffSameAnswer(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	on, err := MineMIHP(db, mining.Options{MinSupFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	off, err := MineMIHP(db, mining.Options{MinSupFrac: 0.05, DisableTrimming: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(on, off); !ok {
		t.Fatalf("trimming changed the answer: %s", diff)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
)

func TestPMIHPMatchesMIHP(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	// MaxK bounds the run as the paper's scaling experiments do ("to find
	// frequent 3-itemsets"): at many nodes the local minimum support count
	// reaches 1, where unbounded depth enumerates entire documents.
	opts := mining.Options{MinSupFrac: 0.05, MaxK: 4}

	seq, err := MineMIHP(db, opts)
	if err != nil {
		t.Fatalf("MIHP: %v", err)
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		par, err := MinePMIHP(db, PMIHPConfig{Nodes: nodes}, opts)
		if err != nil {
			t.Fatalf("PMIHP(%d): %v", nodes, err)
		}
		if ok, diff := mining.SameFrequentSets(seq, par.Result); !ok {
			t.Fatalf("PMIHP(%d) differs from MIHP: %s", nodes, diff)
		}
		if par.TotalSeconds <= 0 {
			t.Fatalf("PMIHP(%d): no simulated time recorded", nodes)
		}
	}
}

func TestPMIHPMinSupCount(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	cfg.Docs = 96
	db := smallDB(t, cfg)
	// Paper-style absolute minimum support count (Corpus B uses 2).
	opts := mining.Options{MinSupCount: 2, MaxK: 3}

	seq, err := MineMIHP(db, opts)
	if err != nil {
		t.Fatalf("MIHP: %v", err)
	}
	for _, nodes := range []int{2, 4} {
		par, err := MinePMIHP(db, PMIHPConfig{Nodes: nodes}, opts)
		if err != nil {
			t.Fatalf("PMIHP(%d): %v", nodes, err)
		}
		if ok, diff := mining.SameFrequentSets(seq, par.Result); !ok {
			t.Fatalf("PMIHP(%d) differs from MIHP at minsup count 2: %s", nodes, diff)
		}
	}
}

func TestPMIHPDeferredMode(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}

	inter, err := MinePMIHP(db, PMIHPConfig{Nodes: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	def, err := MinePMIHP(db, PMIHPConfig{Nodes: 4, Mode: Deferred}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(inter.Result, def.Result); !ok {
		t.Fatalf("deferred mode changed the answer: %s", diff)
	}
	if def.GlobalCountSeconds < 0 {
		t.Fatalf("negative global counting phase: %g", def.GlobalCountSeconds)
	}
}

func TestPMIHPApproxDirectCountsMembership(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}

	exact, err := MinePMIHP(db, PMIHPConfig{Nodes: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := MinePMIHP(db, PMIHPConfig{Nodes: 4, ApproxDirectCounts: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Approx mode must find exactly the same itemsets; counts for directly
	// global itemsets may be local lower bounds.
	es, as := exact.Result.Set(), approx.Result.Set()
	if es.Len() != as.Len() {
		t.Fatalf("approx mode found %d itemsets, exact %d", as.Len(), es.Len())
	}
	for _, c := range exact.Result.Frequent {
		if !as.Has(c.Set) {
			t.Fatalf("approx mode missing %v", c.Set)
		}
	}
	for _, c := range approx.Result.Frequent {
		var exactCount int
		for _, e := range exact.Result.Frequent {
			if e.Set.Equal(c.Set) {
				exactCount = e.Count
				break
			}
		}
		if c.Count > exactCount {
			t.Fatalf("approx count %d exceeds exact %d for %v", c.Count, exactCount, c.Set)
		}
	}
}

// TestPMIHPInvariantAcrossWorkersAndLayouts: the intra-node worker count
// and the posting-density threshold are physical execution knobs. The
// frequent itemsets, the simulated seconds, and the charged work units
// must be identical for every combination; peak held bytes must not
// depend on the worker count (it may depend on the threshold, which
// changes what is resident). The whole invariant must hold under both
// partitioners — the work split changes WHERE transactions live (so its
// simulated seconds and work distribution differ from the count split's),
// but within a partitioner every quantity is still byte-identical at
// every worker count, and the frequent itemsets match across partitioners.
func TestPMIHPInvariantAcrossWorkersAndLayouts(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)

	run := func(p mining.Partitioner, workers int, threshold float64) *ParallelResult {
		opts := mining.Options{
			MinSupCount: 2, MaxK: 3,
			IntraNodeWorkers: workers,
			DenseThreshold:   threshold,
			Partitioner:      p,
		}
		par, err := MinePMIHP(db, PMIHPConfig{Nodes: 2}, opts)
		if err != nil {
			t.Fatalf("PMIHP(%v, workers=%d, threshold=%v): %v", p, workers, threshold, err)
		}
		return par
	}
	workUnits := func(par *ParallelResult) int64 {
		var u int64
		for _, n := range par.Nodes {
			u += n.Metrics.Work.Units
		}
		return u
	}
	heldBytes := func(par *ParallelResult) int64 {
		var b int64
		for _, n := range par.Nodes {
			b += n.Metrics.PeakHeldBytes
		}
		return b
	}

	countRef := run(mining.PartitionByCount, 1, math.Inf(1))
	for _, p := range []mining.Partitioner{mining.PartitionByCount, mining.PartitionByWork} {
		ref := run(p, 1, math.Inf(1))
		refWork := workUnits(ref)
		if ok, diff := mining.SameFrequentSets(countRef.Result, ref.Result); !ok {
			t.Fatalf("partitioner %v changed the answer: %s", p, diff)
		}
		for _, tc := range []struct {
			name      string
			threshold float64
		}{
			{"compressed", math.Inf(1)},
			{"default", 0},
			{"bitmap", mining.DenseThresholdAll},
		} {
			var held1 int64
			for _, workers := range []int{1, 2, 4, 8} {
				par := run(p, workers, tc.threshold)
				if ok, diff := mining.SameFrequentSets(ref.Result, par.Result); !ok {
					t.Fatalf("%v/%s/workers=%d changed the answer: %s", p, tc.name, workers, diff)
				}
				if par.TotalSeconds != ref.TotalSeconds {
					t.Fatalf("%v/%s/workers=%d: simulated %g s, reference %g s",
						p, tc.name, workers, par.TotalSeconds, ref.TotalSeconds)
				}
				if w := workUnits(par); w != refWork {
					t.Fatalf("%v/%s/workers=%d: charged %d work units, reference %d",
						p, tc.name, workers, w, refWork)
				}
				if workers == 1 {
					held1 = heldBytes(par)
				} else if h := heldBytes(par); h != held1 {
					t.Fatalf("%v/%s/workers=%d: peak held %d bytes, single-worker run held %d",
						p, tc.name, workers, h, held1)
				}
			}
		}
	}
}

// TestPostingsCountMatchesScan: the poll service's posting-intersection
// counts must equal direct support counts for arbitrary itemsets, under
// every posting layout (all-compressed, default hybrid, all-bitmap).
func TestPostingsCountMatchesScan(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	for _, tc := range []struct {
		name      string
		threshold float64
	}{
		{"compressed", math.Inf(1)},
		{"hybrid", 0},
		{"bitmap", mining.DenseThresholdAll},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := mining.NewMetrics("test")
			p := buildPostings(db, &m, 1, tc.threshold)
			rng := rand.New(rand.NewSource(77))
			for trial := 0; trial < 300; trial++ {
				k := 1 + rng.Intn(3)
				raw := make([]uint32, k)
				for j := range raw {
					raw[j] = uint32(rng.Intn(db.NumItems()))
				}
				x := itemset.New(raw...)
				want := mining.CountSupport(db, x)
				if got := p.count(x, &m); got != want {
					t.Fatalf("postings count(%v) = %d, want %d", x, got, want)
				}
			}
			if m.Work.Units <= 0 {
				t.Fatal("posting work not charged")
			}
		})
	}
}

package core

import (
	"fmt"
	"sync"

	"pmihp/internal/cluster"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/tht"
	"pmihp/internal/txdb"
)

// PollMode selects when PMIHP resolves global candidate itemsets.
type PollMode int

const (
	// Interleaved is the paper's normal operation: a node polls its peers as
	// soon as GlobalCandidateBatch candidates accumulate, overlapping global
	// support counting with local mining.
	Interleaved PollMode = iota
	// Deferred postpones all polling until every node has finished local
	// mining, synchronizing first — the reconfiguration the paper uses to
	// *measure* the global support counting time (Figure 8).
	Deferred
)

// PMIHPConfig configures a parallel run.
type PMIHPConfig struct {
	// Nodes is the number of simulated processing nodes (the paper uses
	// 1, 2, 4 and 8 on a logical binary n-cube).
	Nodes int

	// Net is the interconnect model; the zero value selects FastEthernet.
	Net cluster.NetParams

	// Mode selects interleaved (default) or deferred global counting.
	Mode PollMode

	// ApproxDirectCounts reproduces the paper's reporting of itemsets whose
	// local count already reaches the global minimum: they are recorded
	// immediately with the local count as a lower bound and never polled.
	// When false (the default), such itemsets are polled too so every
	// reported support is exact — required for rule confidences and for the
	// cross-miner equivalence tests.
	ApproxDirectCounts bool

	// Split selects the database-to-node assignment; nil selects the
	// paper's chronological split (txdb.SplitChronological). The A6
	// ablation passes txdb.SplitRoundRobin / txdb.SplitSkewAware here.
	Split func(db *txdb.DB, n int) []*txdb.DB

	// Tally, when non-nil, records which nodes counted each candidate
	// 2-itemset (local mining and poll service), enabling the "candidates
	// counted at more than one node" statistic of the paper's 8-week
	// experiment. Costs memory proportional to the distinct candidate
	// count; leave nil except for that experiment.
	Tally *PairTally
}

// NodeReport is the per-node outcome of a parallel run.
type NodeReport struct {
	Node     int
	Docs     int // local database size
	LocalMin int // local minimum support count

	// Metrics merges the node's mining and poll-service accounting.
	Metrics mining.Metrics

	// Seconds is the node's final simulated clock.
	Seconds float64

	// PollServeUnits is the work spent answering peers' poll requests,
	// included in Metrics.Work.
	PollServeUnits int64
}

// ParallelResult is the outcome of a PMIHP (or Count Distribution) run.
type ParallelResult struct {
	// Result holds the merged globally frequent itemsets; its metrics are
	// the node aggregates.
	Result *mining.Result

	Nodes []NodeReport

	// TotalSeconds is the simulated total execution time (max node clock).
	TotalSeconds float64

	// GlobalCountSeconds is the measured global support counting phase; it
	// is only meaningful in Deferred mode (Figure 8's methodology).
	GlobalCountSeconds float64

	// THTExchangeSeconds and FinalExchangeSeconds are the collective
	// communication times of the table exchange and the final frequent-list
	// exchange.
	THTExchangeSeconds   float64
	FinalExchangeSeconds float64

	// ExchangeSecondsByPass records the modeled collective time of each
	// per-pass count exchange, in pass order. Count Distribution fills it
	// (one all-reduce per pass); PMIHP has no per-pass collectives. The
	// multi-process runtime reports measured wall-clock per exchange phase
	// alongside (mining.Metrics.WireSeconds), so model and measurement can
	// be validated against each other.
	ExchangeSecondsByPass []float64
}

// AvgNodeSeconds returns the mean per-node simulated execution time
// (Figure 9's quantity).
func (r *ParallelResult) AvgNodeSeconds() float64 {
	if len(r.Nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range r.Nodes {
		sum += n.Seconds
	}
	return sum / float64(len(r.Nodes))
}

// AvgCandidates returns the mean number of candidate k-itemsets counted per
// node (Figures 10 and 11).
func (r *ParallelResult) AvgCandidates(k int) float64 {
	if len(r.Nodes) == 0 {
		return 0
	}
	sum := 0
	for _, n := range r.Nodes {
		sum += n.Metrics.CandidatesByK[k]
	}
	return float64(sum) / float64(len(r.Nodes))
}

// pollRequest asks a peer for the local support counts of a batch of
// same-size itemsets. pos carries the requester's batch positions so the
// reply can be folded in without a lookup.
type pollRequest struct {
	from  int
	k     int
	sets  []itemset.Itemset
	pos   []int
	state *batchState
}

// batchState tracks one flushed batch at the requester until every expected
// reply has arrived.
type batchState struct {
	node      *pmihpNode
	sets      []itemset.Itemset
	totals    []int
	remaining int // outstanding replies
}

// pmihpNode is the per-node state of a parallel run.
type pmihpNode struct {
	id       int
	db       *txdb.DB
	opts     mining.Options
	localMin int
	glMin    int
	cfg      PMIHPConfig
	fabric   *cluster.Fabric
	global   *tht.Global
	inboxes  []chan *pollRequest

	miner   mining.Metrics // local-mining accounting
	server  mining.Metrics // poll-service accounting
	lastWrk int64          // clock-sync watermark for miner.Work

	// inverted is the node's posting file, built at the first poll it
	// serves (see postings.go).
	inverted *postings

	// peersBuf is flush's reusable peer-selection scratch.
	peersBuf []int

	// queue of locally frequent itemsets awaiting global resolution.
	queueSets   []itemset.Itemset
	queueCounts []int

	// found accumulates this node's globally frequent itemsets; guarded by
	// mu because batch finalization runs on the answering servers.
	mu    sync.Mutex
	found []itemset.Counted

	pending sync.WaitGroup // outstanding poll replies
}

// MinePMIHP runs the parallel MIHP algorithm over the database split
// across cfg.Nodes simulated processing nodes — chronologically by equal
// document counts by default, or by estimated counting work when
// opts.Partitioner selects it (cfg.Split, when set, overrides both).
func MinePMIHP(db *txdb.DB, cfg PMIHPConfig, opts mining.Options) (*ParallelResult, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: PMIHP needs at least one node, got %d", cfg.Nodes)
	}
	opts = opts.WithDefaults()
	if cfg.Net == (cluster.NetParams{}) {
		cfg.Net = cluster.FastEthernet
	}
	n := cfg.Nodes
	globalMin := opts.MinCount(db.Len())
	split := cfg.Split
	if split == nil {
		split = (*txdb.DB).SplitChronological
		if opts.Partitioner == mining.PartitionByWork {
			split = (*txdb.DB).SplitByWork
		}
	}
	parts := split(db, n)
	if len(parts) != n {
		return nil, fmt.Errorf("core: splitter returned %d parts for %d nodes", len(parts), n)
	}
	fabric := cluster.New(n, cfg.Net)
	out := &ParallelResult{}

	// The intra-node worker pool divides across the simulated nodes, which
	// already run concurrently: oversubscribing n nodes × full pool would
	// thrash real cores without changing any simulated quantity.
	perNode := opts.Workers() / n
	if perNode < 1 {
		perNode = 1
	}
	opts.IntraNodeWorkers = perNode

	// ---- Phase 1: local pass 1 at every node (counts + local THTs). ----
	entries := opts.THTEntries / n
	if entries < 4 {
		entries = 4
	}
	locals := make([]*tht.Local, n)
	nodeCounts := make([][]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, counts := tht.BuildLocalShards(parts[i], entries, perNode)
			locals[i], nodeCounts[i] = local, counts
			items := parts[i].TotalItems()
			var w mining.Work
			w.Charge(int64(items), mining.CostScanItem+mining.CostTHTSlot)
			fabric.Clock(i).AdvanceWork(w.Units)
		}(i)
	}
	wg.Wait()

	// ---- Exchange: global item counts (all-reduce over the n-cube). ----
	fabric.AllReduce(int64(4 * db.NumItems()))
	globalCounts := make([]int, db.NumItems())
	for i := 0; i < n; i++ {
		for it, c := range nodeCounts[i] {
			globalCounts[it] += c
		}
	}
	freq, f1, f1Counted := FrequentItems(globalCounts, globalMin)

	// ---- Exchange: local THTs (all-gather), keeping frequent items. ----
	maxTHTBytes := int64(0)
	for i := 0; i < n; i++ {
		locals[i].Retain(func(it itemset.Item) bool { return freq[it] })
		locals[i].BuildMasks()
		if b := int64(locals[i].Bytes()); b > maxTHTBytes {
			maxTHTBytes = b
		}
	}
	out.THTExchangeSeconds = fabric.AllGather(maxTHTBytes)
	if r := opts.Obs; r.Enabled() {
		// Simulated runs span the modeled collective times, so the trace
		// carries the same quantities in both runtimes.
		r.RecordSpan(obs.SpanEvent{Name: "exchange:tht", Node: -1, Seconds: out.THTExchangeSeconds})
	}
	global := tht.NewGlobal(locals)

	partitions := Partition(f1, opts.PartitionSize)

	// ---- Phase 2: asynchronous local mining with classification. ----
	nodes := make([]*pmihpNode, n)
	inboxes := make([]chan *pollRequest, n)
	for i := range inboxes {
		inboxes[i] = make(chan *pollRequest, 64)
	}
	for i := 0; i < n; i++ {
		nodes[i] = &pmihpNode{
			id:       i,
			db:       parts[i],
			opts:     opts,
			localMin: LocalMinCount(globalMin, parts[i].Len(), db.Len()),
			glMin:    globalMin,
			cfg:      cfg,
			fabric:   fabric,
			global:   global,
			inboxes:  inboxes,
			miner:    mining.NewMetrics("pmihp-miner"),
			server:   mining.NewMetrics("pmihp-server"),
		}
	}

	// Poll servers: one per node, answering until all miners are done.
	var serverWG sync.WaitGroup
	for i := 0; i < n; i++ {
		serverWG.Add(1)
		go func(nd *pmihpNode) {
			defer serverWG.Done()
			nd.servePolls()
		}(nodes[i])
	}

	// Miners.
	var mineWG sync.WaitGroup
	var mineDone sync.WaitGroup
	mineDone.Add(n)
	startPolling := make(chan struct{})
	if cfg.Mode == Interleaved {
		close(startPolling) // no gate
	}
	for i := 0; i < n; i++ {
		mineWG.Add(1)
		go func(nd *pmihpNode) {
			defer mineWG.Done()
			nd.mine(f1, partitions)
			mineDone.Done()
			if cfg.Mode == Deferred {
				<-startPolling
			}
			nd.flush(0) // flush any remainder
			nd.pending.Wait()
			nd.syncClock()
		}(nodes[i])
	}

	if cfg.Mode == Deferred {
		// Synchronize the nodes, stamp the phase start, then release the
		// polling phase — the paper's measurement methodology for Figure 8.
		mineDone.Wait()
		t0 := fabric.Barrier()
		close(startPolling)
		mineWG.Wait()
		out.GlobalCountSeconds = fabric.Barrier() - t0
	} else {
		mineWG.Wait()
	}

	for i := range inboxes {
		close(inboxes[i])
	}
	serverWG.Wait()

	// ---- Final exchange: globally frequent itemset lists (all-gather). ----
	maxListBytes := int64(0)
	for _, nd := range nodes {
		b := int64(0)
		for _, c := range nd.found {
			b += int64(4*len(c.Set) + 8)
		}
		if b > maxListBytes {
			maxListBytes = b
		}
	}
	out.FinalExchangeSeconds = fabric.AllGather(maxListBytes)
	if r := opts.Obs; r.Enabled() {
		r.RecordSpan(obs.SpanEvent{Name: "exchange:final", Node: -1, Seconds: out.FinalExchangeSeconds})
	}

	// ---- Merge (shared with the multi-process runtime). ----
	var all []itemset.Counted
	for _, nd := range nodes {
		all = append(all, nd.found...)
	}
	res := &mining.Result{Metrics: mining.NewMetrics("pmihp")}
	res.Frequent = MergeFound(f1Counted, all)

	out.Nodes = make([]NodeReport, n)
	for i, nd := range nodes {
		rep := NodeReport{
			Node:           i,
			Docs:           parts[i].Len(),
			LocalMin:       nd.localMin,
			Seconds:        fabric.Clock(i).Now(),
			PollServeUnits: nd.server.Work.Units,
		}
		rep.Metrics = mining.NewMetrics("pmihp-node")
		rep.Metrics.Merge(&nd.miner)
		rep.Metrics.Merge(&nd.server)
		msgs, bytes := fabric.Stats(i).Snapshot()
		rep.Metrics.MessagesSent = msgs
		rep.Metrics.BytesSent = bytes
		out.Nodes[i] = rep
		res.Metrics.Merge(&rep.Metrics)
	}
	res.Metrics.Algorithm = "pmihp"
	out.Result = res
	out.TotalSeconds = fabric.MaxClock()

	// Load-balance gauges: busy is the simulated seconds of work a node
	// actually charged (mining plus poll service); idle is the rest of the
	// run it spent waiting on collectives and stragglers. The imbalance
	// ratio (max busy over mean busy, 1.0 = perfectly balanced) is the
	// quantity the work partitioner exists to minimize.
	if r := opts.Obs; r.Enabled() {
		var maxBusy, sumBusy float64
		for i := range out.Nodes {
			busy := out.Nodes[i].Metrics.Work.Seconds()
			r.SetNodeFloatGauge("busy_seconds", i, busy)
			idle := out.TotalSeconds - busy
			if idle < 0 {
				idle = 0
			}
			r.SetNodeFloatGauge("idle_seconds", i, idle)
			if busy > maxBusy {
				maxBusy = busy
			}
			sumBusy += busy
		}
		if sumBusy > 0 {
			r.SetFloatGauge("pass_imbalance_ratio", maxBusy*float64(n)/sumBusy)
		}
	}
	return out, nil
}

// mine runs the node's local MIHP passes, classifying each locally frequent
// itemset as it is emitted.
func (nd *pmihpNode) mine(f1 []itemset.Item, partitions [][]itemset.Item) {
	lm := &localMiner{
		db:         nd.db,
		opts:       nd.opts,
		minLocal:   nd.localMin,
		minPrune:   nd.glMin,
		global:     nd.global,
		self:       nd.id,
		freqItems:  f1,
		partitions: partitions,
		metrics:    &nd.miner,
		emit:       nd.classify,
		onPass:     nd.afterPass,
	}
	if nd.cfg.Tally != nil {
		lm.notePair = func(key uint64) { nd.cfg.Tally.note(nd.id, key) }
	}
	lm.run()
	nd.syncClock()
}

// classify implements section 2.4 step 5 for one locally frequent itemset.
func (nd *pmihpNode) classify(set itemset.Itemset, count int) {
	if count >= nd.glMin {
		// Directly globally frequent. In exact mode it still goes through
		// polling so the recorded support is the true global count.
		if nd.cfg.ApproxDirectCounts {
			nd.record(set, count)
			return
		}
	} else {
		nd.miner.GlobalCandidates++
	}
	nd.queueSets = append(nd.queueSets, set)
	nd.queueCounts = append(nd.queueCounts, count)
}

// afterPass runs between counting passes: it folds new work into the node
// clock and, in interleaved mode, flushes full batches (the paper flushes
// "when certain number of global candidate itemsets are accumulated").
func (nd *pmihpNode) afterPass() {
	nd.syncClock()
	if nd.cfg.Mode == Interleaved {
		nd.flush(nd.opts.GlobalCandidateBatch)
	}
}

// syncClock advances the node clock by the miner work accumulated since the
// previous sync.
func (nd *pmihpNode) syncClock() {
	delta := nd.miner.Work.Units - nd.lastWrk
	if delta > 0 {
		nd.fabric.Clock(nd.id).AdvanceWork(delta)
		nd.lastWrk = nd.miner.Work.Units
	}
}

// flush sends poll requests for the queued itemsets once the queue reaches
// threshold (0 forces a flush). Peers are selected per itemset from the
// cascaded THT segments: "only the processing nodes that have a positive
// TID hash count for the global candidate itemset will be polled."
func (nd *pmihpNode) flush(threshold int) {
	if len(nd.queueSets) == 0 || len(nd.queueSets) < threshold {
		return
	}
	sets := nd.queueSets
	counts := nd.queueCounts
	nd.queueSets, nd.queueCounts = nil, nil

	state := &batchState{node: nd, sets: sets, totals: counts}

	// Group positions by (peer, k).
	type peerK struct {
		peer, k int
	}
	groups := make(map[peerK][]int)
	slotsTotal := int64(0)
	for pos, set := range sets {
		peers, slots := nd.global.PollPeers(set, nd.id, nd.peersBuf)
		nd.peersBuf = peers
		slotsTotal += int64(slots)
		for _, p := range peers {
			groups[peerK{p, len(set)}] = append(groups[peerK{p, len(set)}], pos)
		}
	}
	nd.miner.Work.Charge(slotsTotal, mining.CostTHTSlot)
	nd.syncClock()

	if len(groups) == 0 {
		nd.finalizeBatch(state)
		return
	}
	state.remaining = len(groups)
	nd.pending.Add(len(groups))
	nd.miner.PollRounds++
	for gk, positions := range groups {
		req := &pollRequest{from: nd.id, k: gk.k, pos: positions, state: state}
		req.sets = make([]itemset.Itemset, len(positions))
		bytes := int64(16)
		for i, pos := range positions {
			req.sets[i] = sets[pos]
			bytes += int64(4 * gk.k)
		}
		nd.miner.MessagesSent++
		nd.fabric.ChargeSend(nd.id, gk.peer, bytes)
		nd.inboxes[gk.peer] <- req
	}
}

// servePolls answers peers' poll requests against the node's original local
// database (trimmed working copies are never consulted, so answers are
// exact; the efficiency cost of serving polls is charged to this node's
// clock, reflecting the paper's trade-off between polling and trimming).
func (nd *pmihpNode) servePolls() {
	for req := range nd.inboxes[nd.id] {
		counts := nd.countBatch(req.k, req.sets)
		replyBytes := int64(4*len(counts) + 16)
		nd.fabric.ChargeSend(nd.id, req.from, replyBytes)
		nd.applyReply(req, counts)
	}
}

// countBatch counts the batch's itemsets over the local database by
// intersecting posting lists (see postings.go), sharding the batch across
// the node's intra-node workers. Each itemset's count and merge charge are
// independent of the others, so per-shard work units merged in shard order
// reproduce the serial charges exactly.
func (nd *pmihpNode) countBatch(k int, sets []itemset.Itemset) []int {
	m := &nd.server
	m.AddCandidates(k, len(sets))
	if r := nd.opts.Obs; r.Enabled() {
		r.Poll(obs.PollEvent{Node: nd.id, K: k, Sets: len(sets)})
	}
	if nd.cfg.Tally != nil {
		nd.cfg.Tally.noteBatch(nd.id, k, sets)
	}
	before := m.Work.Units
	if nd.inverted == nil {
		// Single goroutine (the node's poll server) calls countBatch, so
		// lazy construction needs no further synchronization.
		nd.inverted = buildPostings(nd.db, m, nd.opts.Workers(), nd.opts.DenseThreshold)
		// The miner accounting already holds the node's database, THT
		// segment, and working copy; the inverted file is the poll server's
		// addition on top.
		m.NoteHeldBytes(nd.inverted.MemBytes())
	}
	counts := countBatchSharded(nd.inverted, sets, nd.opts.Workers(), m)
	nd.fabric.Clock(nd.id).AdvanceWork(m.Work.Units - before)
	return counts
}

// countBatchSharded intersects a batch of itemsets against the inverted
// file on the chunk-queue scheduler, each worker with private scratch.
// Each itemset's count and merge charge are independent of the others and
// land in its own slot, and per-worker charge tallies accumulate across
// claimed chunks and merge as sums, so the serial charges are reproduced
// exactly at any worker count.
func countBatchSharded(inv *postings, sets []itemset.Itemset, workers int, m *mining.Metrics) []int {
	counts := make([]int, len(sets))
	nShards := mining.NumShards(len(sets), workers)
	inv.ensureScratch(nShards)
	shardOps := make([]int64, nShards)
	mining.RunShards(len(sets), workers, func(s, lo, hi int) {
		sc := inv.scratchFor(s)
		var ops int64
		for i := lo; i < hi; i++ {
			n, o := inv.countScratch(sets[i], sc)
			counts[i] = n
			ops += o
		}
		shardOps[s] += ops
	})
	for _, ops := range shardOps {
		m.Work.Charge(ops, 1)
	}
	return counts
}

// applyReply folds a peer's counts into the batch and finalizes it when the
// last reply arrives. It runs on the answering node's server goroutine; the
// batch state is owned by the requester and guarded by its mutex.
func (nd *pmihpNode) applyReply(req *pollRequest, counts []int) {
	st := req.state
	owner := st.node
	owner.mu.Lock()
	for i, pos := range req.pos {
		st.totals[pos] += counts[i]
	}
	st.remaining--
	done := st.remaining == 0
	owner.mu.Unlock()
	if done {
		owner.finalizeBatch(st)
	}
	owner.pending.Done()
}

// finalizeBatch records the batch's itemsets whose exact global support
// reaches the global minimum.
func (nd *pmihpNode) finalizeBatch(st *batchState) {
	nd.mu.Lock()
	for i, set := range st.sets {
		if st.totals[i] >= nd.glMin {
			nd.found = append(nd.found, itemset.Counted{Set: set, Count: st.totals[i]})
		}
	}
	nd.mu.Unlock()
}

// record adds a globally frequent itemset found without polling.
func (nd *pmihpNode) record(set itemset.Itemset, count int) {
	nd.mu.Lock()
	nd.found = append(nd.found, itemset.Counted{Set: set, Count: count})
	nd.mu.Unlock()
}

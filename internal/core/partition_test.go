package core

import (
	"testing"

	"pmihp/internal/itemset"
)

func items(n int) []itemset.Item {
	out := make([]itemset.Item, n)
	for i := range out {
		out[i] = itemset.Item(i * 3)
	}
	return out
}

func TestPartitionSizes(t *testing.T) {
	parts := Partition(items(250), 100)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	if len(parts[0]) != 100 || len(parts[1]) != 100 || len(parts[2]) != 50 {
		t.Fatalf("sizes = %d,%d,%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
}

func TestPartitionMergesShortTail(t *testing.T) {
	// 230 items at size 100: the 30-item tail merges into the previous
	// partition (it is below half the partition size).
	parts := Partition(items(230), 100)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions", len(parts))
	}
	if len(parts[1]) != 130 {
		t.Fatalf("tail partition = %d items", len(parts[1]))
	}
}

func TestPartitionOrderingInvariant(t *testing.T) {
	parts := Partition(items(97), 10)
	total := 0
	var last itemset.Item
	first := true
	for _, p := range parts {
		if len(p) == 0 {
			t.Fatal("empty partition")
		}
		total += len(p)
		for _, it := range p {
			if !first && it <= last {
				t.Fatal("partition items not globally increasing")
			}
			last, first = it, false
		}
	}
	if total != 97 {
		t.Fatalf("items covered = %d", total)
	}
}

func TestPartitionEmptyAndSingle(t *testing.T) {
	if parts := Partition(nil, 100); parts != nil {
		t.Fatalf("empty F1 gave %v", parts)
	}
	parts := Partition(items(5), 100)
	if len(parts) != 1 || len(parts[0]) != 5 {
		t.Fatalf("single partition wrong: %v", parts)
	}
}

func TestLocalMinCount(t *testing.T) {
	cases := []struct {
		globalMin, localLen, dbLen, want int
	}{
		// The paper's corpus B: minsup count 2 over 1427 docs.
		{2, 1427, 1427, 2}, // single node keeps the global threshold
		{2, 714, 1427, 1},  // floor(1.0007) = 1
		{2, 357, 1427, 1},
		{2, 178, 1427, 1},
		// Percentage regime: 2% of 2000 = 40; 8 nodes of 250.
		{40, 250, 2000, 5},
		{40, 2000, 2000, 40},
		// Clamping.
		{2, 10, 1000, 1},
		{5, 0, 100, 1},
	}
	for _, c := range cases {
		if got := LocalMinCount(c.globalMin, c.localLen, c.dbLen); got != c.want {
			t.Errorf("LocalMinCount(%d,%d,%d) = %d, want %d",
				c.globalMin, c.localLen, c.dbLen, got, c.want)
		}
	}
}

// TestLocalMinCompleteness is the pigeonhole property behind PMIHP: an
// itemset below the local threshold at every node cannot reach the global
// minimum count.
func TestLocalMinCompleteness(t *testing.T) {
	for _, tc := range []struct{ dbLen, nodes, globalMin int }{
		{1427, 8, 2}, {1427, 2, 2}, {2000, 8, 40}, {96, 4, 2}, {101, 3, 7},
	} {
		per := tc.dbLen / tc.nodes
		sizes := make([]int, tc.nodes)
		rem := tc.dbLen
		for i := range sizes {
			sizes[i] = per
			rem -= per
		}
		sizes[tc.nodes-1] += rem
		worst := 0
		for _, sz := range sizes {
			worst += LocalMinCount(tc.globalMin, sz, tc.dbLen) - 1
		}
		if worst >= tc.globalMin {
			t.Errorf("dbLen=%d nodes=%d globalMin=%d: max undetected count %d >= globalMin",
				tc.dbLen, tc.nodes, tc.globalMin, worst)
		}
	}
}

package core

import (
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/tht"
)

func TestResumeCountsValidates(t *testing.T) {
	got, err := ResumeCounts([]uint32{3, 0, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 0 || got[2] != 7 {
		t.Fatalf("got %v", got)
	}
	if _, err := ResumeCounts([]uint32{1}, 2); err == nil {
		t.Fatal("want error for width mismatch")
	}
}

// The byte-identity of a resumed session hangs on this: the cascaded
// THT rebuilt from checkpointed wire blobs must produce the same
// cascade bounds and the same poll-peer selection as the segments the
// original exchange delivered. The wire form carries the counter rows
// exactly and masks are deterministic functions of the rows, so the
// two views must agree on every query.
func TestSegmentsFromWireBoundFidelity(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	cfg.Docs, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 120, 300, 30, 18
	db := smallDB(t, cfg)
	const n, entries, globalMin = 4, 8, 6

	parts := db.SplitChronological(n)
	globalCounts := make([]int, db.NumItems())
	locals := make([]*tht.Local, n)
	for i, part := range parts {
		local, counts := tht.BuildLocalShards(part, entries, 1)
		locals[i] = local
		for it, c := range counts {
			globalCounts[it] += c
		}
	}
	freq, f1, _ := FrequentItems(globalCounts, globalMin)
	if len(f1) < 4 {
		t.Fatalf("corpus too sparse: %d frequent items", len(f1))
	}
	blobs := make([][]byte, n)
	for i, local := range locals {
		local.Retain(func(it itemset.Item) bool { return freq[it] })
		local.BuildMasks()
		blobs[i] = local.AppendWire(nil)
	}
	orig := tht.NewGlobal(locals)
	resumed, err := SegmentsFromWire(blobs)
	if err != nil {
		t.Fatal(err)
	}

	var sets []itemset.Itemset
	for i := 0; i+1 < len(f1); i++ {
		sets = append(sets, itemset.Itemset{f1[i], f1[i+1]})
	}
	for i := 0; i+2 < len(f1); i += 2 {
		sets = append(sets, itemset.Itemset{f1[i], f1[i+1], f1[i+2]})
	}
	for _, set := range sets {
		for _, threshold := range []int{1, globalMin, 3 * globalMin} {
			or, oSlots := orig.BoundReaches(set, threshold)
			rr, rSlots := resumed.BoundReaches(set, threshold)
			if or != rr || oSlots != rSlots {
				t.Fatalf("set %v threshold %d: original (%v,%d) vs resumed (%v,%d)",
					set, threshold, or, oSlots, rr, rSlots)
			}
		}
		for self := 0; self < n; self++ {
			op, oSlots := orig.PollPeers(set, self, nil)
			rp, rSlots := resumed.PollPeers(set, self, nil)
			if oSlots != rSlots || len(op) != len(rp) {
				t.Fatalf("set %v self %d: peers %v/%d vs %v/%d", set, self, op, oSlots, rp, rSlots)
			}
			for i := range op {
				if op[i] != rp[i] {
					t.Fatalf("set %v self %d: peers %v vs %v", set, self, op, rp)
				}
			}
		}
	}

	if _, err := SegmentsFromWire(nil); err == nil {
		t.Fatal("want error for empty blob list")
	}
	if _, err := SegmentsFromWire([][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("want error for corrupt blob")
	}
}

package core

import (
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// dbFromBytes derives a small transaction database from raw fuzz input:
// each byte contributes one item, a zero byte terminates the current
// transaction. The decoded shape exercises empty transactions, singleton
// and stopword-grade lists, and — because TIDs are consecutive — dense
// delta runs in the varint blocks.
func dbFromBytes(data []byte) *txdb.DB {
	const numItems = 48
	var txs []txdb.Transaction
	var raw []uint32
	flush := func() {
		txs = append(txs, txdb.Transaction{
			TID: txdb.TID(len(txs)), Items: itemset.New(raw...),
		})
		raw = raw[:0]
	}
	for _, b := range data {
		if b == 0 {
			flush()
			continue
		}
		raw = append(raw, uint32(b)%numItems)
	}
	flush()
	return txdb.New(txs, numItems)
}

// FuzzPostingsRoundTrip: for any database shape, the delta-varint block
// encoding must decode back to exactly the TIDs of the transactions
// containing each item, and the compressed skip-gallop intersection must
// agree with the uncompressed reference on every adjacent item pair.
func FuzzPostingsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 0, 2, 3, 4, 0, 1, 4})
	f.Add([]byte{7, 7, 7, 0, 0, 0, 7})
	// A long corpus: every transaction shares item 1, so its posting list
	// spans multiple 128-TID blocks.
	long := make([]byte, 0, 4*400)
	for i := 0; i < 400; i++ {
		long = append(long, 1, byte(2+i%37), byte(3+i%11), 0)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		db := dbFromBytes(data)
		want := make([][]txdb.TID, db.NumItems())
		for i := 0; i < db.Len(); i++ {
			for _, it := range db.ItemsOf(i) {
				want[it] = append(want[it], db.TIDOf(i))
			}
		}

		m := mining.NewMetrics("fuzz")
		p := buildPostings(db, &m, 1)
		for it := range want {
			got := p.row(itemset.Item(it))
			if len(got) != len(want[it]) {
				t.Fatalf("item %d: %d TIDs decoded, want %d", it, len(got), len(want[it]))
			}
			for j := range got {
				if got[j] != want[it][j] {
					t.Fatalf("item %d TID %d: %d, want %d", it, j, got[j], want[it][j])
				}
			}
		}

		for it := 0; it+1 < db.NumItems(); it++ {
			a, b := itemset.Item(it), itemset.Item(it+1)
			rowA, rowB := p.row(a), p.row(b)
			if len(rowA) == 0 || len(rowB) == 0 {
				continue
			}
			short, lng := rowA, rowB
			if len(short) > len(lng) {
				short, lng = lng, short
			}
			// The counting path keeps the accumulator on the shorter side,
			// but the kernel must be correct for either orientation.
			wantAB := intersectInto(nil, short, lng)
			if got := p.intersectItem(nil, rowA, b); !equalTIDs(got, wantAB) {
				t.Fatalf("intersect(%d,%d): %v, want %v", a, b, got, wantAB)
			}
			if got := p.intersectItem(nil, rowB, a); !equalTIDs(got, wantAB) {
				t.Fatalf("intersect(%d,%d) reversed: %v, want %v", b, a, got, wantAB)
			}
		}
	})
}

func equalTIDs(a, b []txdb.TID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package core

import (
	"math"
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// dbFromBytes derives a small transaction database from raw fuzz input:
// each byte contributes one item, a zero byte terminates the current
// transaction. The decoded shape exercises empty transactions, singleton
// and stopword-grade lists, and — because TIDs are consecutive — dense
// delta runs in the varint blocks.
func dbFromBytes(data []byte) *txdb.DB {
	const numItems = 48
	var txs []txdb.Transaction
	var raw []uint32
	flush := func() {
		txs = append(txs, txdb.Transaction{
			TID: txdb.TID(len(txs)), Items: itemset.New(raw...),
		})
		raw = raw[:0]
	}
	for _, b := range data {
		if b == 0 {
			flush()
			continue
		}
		raw = append(raw, uint32(b)%numItems)
	}
	flush()
	return txdb.New(txs, numItems)
}

// fuzzThresholds are the density thresholds the fuzz and equivalence tests
// sweep: every list compressed, the default hybrid mix, a mid cut that mixes
// representations aggressively, and every list a bitmap.
var fuzzThresholds = []float64{math.Inf(1), 0, 0.25, mining.DenseThresholdAll}

// FuzzPostingsRoundTrip: for any database shape and any density threshold,
// the hybrid encoding (delta-varint blocks below the cutoff, bitmaps at or
// above it) must decode back to exactly the TIDs of the transactions
// containing each item; every intersection kernel — block×block
// (intersectItem), bitmap×block (intersectBits), bitmap×bitmap (via count's
// all-dense chain) — must agree with the uncompressed reference
// intersectInto; and count must charge identically under every layout.
func FuzzPostingsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 0, 2, 3, 4, 0, 1, 4})
	f.Add([]byte{7, 7, 7, 0, 0, 0, 7})
	// A long corpus: every transaction shares item 1, so its posting list
	// spans multiple 128-TID blocks (and turns dense under the default
	// threshold).
	long := make([]byte, 0, 4*400)
	for i := 0; i < 400; i++ {
		long = append(long, 1, byte(2+i%37), byte(3+i%11), 0)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		db := dbFromBytes(data)
		want := make([][]txdb.TID, db.NumItems())
		for i := 0; i < db.Len(); i++ {
			for _, it := range db.ItemsOf(i) {
				want[it] = append(want[it], db.TIDOf(i))
			}
		}

		for _, threshold := range fuzzThresholds {
			m := mining.NewMetrics("fuzz")
			p := buildPostings(db, &m, 1, threshold)
			for it := range want {
				got := p.row(itemset.Item(it))
				if !equalTIDs(got, want[it]) {
					t.Fatalf("threshold %v item %d: decoded %v, want %v", threshold, it, got, want[it])
				}
			}

			for it := 0; it+1 < db.NumItems(); it++ {
				a, b := itemset.Item(it), itemset.Item(it+1)
				rowA, rowB := p.row(a), p.row(b)
				if len(rowA) == 0 || len(rowB) == 0 {
					continue
				}
				short, lng := rowA, rowB
				if len(short) > len(lng) {
					short, lng = lng, short
				}
				wantAB := intersectInto(nil, short, lng)

				// Kernel dispatch mirrors countScratch: a bitmap-backed item
				// intersects via intersectBits, a block-backed one via
				// intersectItem. Both orientations must agree with the
				// reference.
				for _, o := range [][2]itemset.Item{{a, b}, {b, a}} {
					acc := p.row(o[0])
					var got []txdb.TID
					if s := p.denseSlot(o[1]); s >= 0 {
						got = p.intersectBits(nil, acc, s)
					} else {
						got = p.intersectItem(nil, acc, o[1], &p.scratch.blockBuf)
					}
					if !equalTIDs(got, wantAB) {
						t.Fatalf("threshold %v intersect(%d,%d): %v, want %v", threshold, o[0], o[1], got, wantAB)
					}
				}

				// count exercises the all-dense (bitmap×bitmap) chain when
				// both items are dense; its result must not depend on the
				// layout.
				if got := p.count(itemset.Itemset{a, b}, &m); got != len(wantAB) {
					t.Fatalf("threshold %v count(%d,%d) = %d, want %d", threshold, a, b, got, len(wantAB))
				}
			}
		}
		// Charge identity across layouts: every adjacent pair must cost the
		// same simulated work under every threshold.
		charges := make([][]int64, len(fuzzThresholds))
		for ti, threshold := range fuzzThresholds {
			m := mining.NewMetrics("fuzz")
			p := buildPostings(db, &m, 1, threshold)
			for it := 0; it+1 < db.NumItems(); it++ {
				a, b := itemset.Item(it), itemset.Item(it+1)
				before := m.Work.Units
				p.count(itemset.Itemset{a, b}, &m)
				charges[ti] = append(charges[ti], m.Work.Units-before)
			}
		}
		for ti := 1; ti < len(charges); ti++ {
			for i := range charges[0] {
				if charges[ti][i] != charges[0][i] {
					t.Fatalf("threshold %v pair %d: charged %d, layout %v charges %d",
						fuzzThresholds[ti], i, charges[ti][i], fuzzThresholds[0], charges[0][i])
				}
			}
		}
	})
}

func equalTIDs(a, b []txdb.TID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package core

import (
	"os"
	"runtime"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// seedTx mirrors the pre-CSR Transaction struct (TID uint32 + padding,
// Day int, Items slice header over a per-transaction heap allocation).
type seedTx struct {
	tid   txdb.TID
	day   int
	items itemset.Itemset
}

// seedLayout reconstructs, physically, the structures an E3 node kept
// resident before the CSR overhaul: the slice-of-transactions database
// part with one heap allocation per transaction, the working copy that
// aliased those item lists plus its full-size trim arena, and the
// per-item append-grown [][]TID inverted file. Building it for real (not
// estimating it) makes the comparison include what the old layout actually
// cost — slice headers, append cap overshoot, and allocator size-class
// rounding. It is still conservative: the seed's ToDB allocated each
// transaction's items at the document's raw word count, not the kept
// count used here.
type seedLayout struct {
	txs    []seedTx
	byItem [][]txdb.TID
	arena  []itemset.Item
	wtids  []txdb.TID
	witems []itemset.Itemset
	wact   []bool
}

func buildSeedLayout(part *txdb.DB) *seedLayout {
	s := &seedLayout{
		txs:    make([]seedTx, part.Len()),
		byItem: make([][]txdb.TID, part.NumItems()),
		arena:  make([]itemset.Item, 0, part.TotalItems()),
		wtids:  make([]txdb.TID, part.Len()),
		witems: make([]itemset.Itemset, part.Len()),
		wact:   make([]bool, part.Len()),
	}
	for i := 0; i < part.Len(); i++ {
		row := part.ItemsOf(i)
		items := make(itemset.Itemset, len(row))
		copy(items, row)
		s.txs[i] = seedTx{tid: part.TIDOf(i), day: part.DayOf(i), items: items}
		s.wtids[i] = s.txs[i].tid
		s.witems[i] = items
		s.wact[i] = true
		for _, it := range items {
			s.byItem[it] = append(s.byItem[it], s.txs[i].tid)
		}
	}
	return s
}

// liveHeapDelta measures the live heap bytes retained by build's result.
func liveHeapDelta(build func() *seedLayout) (int64, *seedLayout) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	s := build()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return int64(m1.HeapAlloc) - int64(m0.HeapAlloc), s
}

// TestPaperScaleHeldBytesProbe compares the measured footprint of the
// long-lived per-node structures of an E3 paper-scale run (database view,
// working copy, inverted file — the layers `bytes_held` accounts) against
// the same layers physically rebuilt in the pre-CSR layout. The structures
// are built directly rather than through a full mine: their sizes are
// deterministic functions of the data, and a full paper-scale mine at the
// E3 support takes tens of minutes. Opt-in: set PMIHP_MEMPROBE=1.
func TestPaperScaleHeldBytesProbe(t *testing.T) {
	if os.Getenv("PMIHP_MEMPROBE") == "" {
		t.Skip("set PMIHP_MEMPROBE=1 to run the paper-scale memory probe")
	}
	docs, err := corpus.Generate(corpus.CorpusB(corpus.Paper))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)

	for _, nodes := range []int{2, 8} {
		var held, preCSR int64
		var heldDB, heldWork, heldPost int64
		for _, part := range db.SplitChronological(nodes) {
			m := mining.NewMetrics("probe")
			work := txdb.NewWork(part)
			inv := buildPostings(part, &m, 1, 0)
			held += part.MemBytes() + work.MemBytes() + inv.MemBytes()
			heldDB += part.MemBytes()
			heldWork += work.MemBytes()
			heldPost += inv.MemBytes()

			delta, s := liveHeapDelta(func() *seedLayout { return buildSeedLayout(part) })
			preCSR += delta
			runtime.KeepAlive(s)
		}
		t.Logf("E3 paper scale, %d node(s): held=%d bytes (%.1f MB) [db=%d work=%d postings=%d], pre-CSR layout=%d bytes (%.1f MB), ratio %.2fx",
			nodes, held, float64(held)/(1<<20), heldDB, heldWork, heldPost,
			preCSR, float64(preCSR)/(1<<20), float64(preCSR)/float64(held))
	}
}

package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// naiveIntersect is the reference linear merge the galloping path must match.
func naiveIntersect(a, b []txdb.TID) []txdb.TID {
	var out []txdb.TID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func randomTIDList(rng *rand.Rand, n, space int) []txdb.TID {
	seen := map[txdb.TID]bool{}
	for len(seen) < n {
		seen[txdb.TID(rng.Intn(space))] = true
	}
	out := make([]txdb.TID, 0, n)
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestIntersectIntoMatchesNaive: galloping and merge paths agree with the
// reference merge on randomized ascending duplicate-free lists, across skews
// on both sides of the galloping threshold.
func TestIntersectIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		na := 1 + rng.Intn(40)
		// Sweep nb across the gallop threshold: some trials merge linearly,
		// some gallop.
		nb := na + rng.Intn(na*2*gallopSkew)
		space := nb*3 + 10
		a := randomTIDList(rng, na, space)
		b := randomTIDList(rng, nb, space)
		want := naiveIntersect(a, b)
		got := intersectInto(nil, a, b)
		if len(got) != len(want) {
			t.Fatalf("trial %d (|a|=%d |b|=%d): got %d matches, want %d", trial, na, nb, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestIntersectIntoInvariants: empty, disjoint, identical, and singleton
// inputs behave like set intersection, and the output is ascending and
// duplicate-free.
func TestIntersectIntoInvariants(t *testing.T) {
	if got := intersectInto(nil, nil, []txdb.TID{1, 2, 3}); len(got) != 0 {
		t.Fatalf("empty ∩ list = %v", got)
	}
	if got := intersectInto(nil, []txdb.TID{7}, []txdb.TID{1, 2, 3, 4, 5, 6, 7, 8}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("singleton hit = %v", got)
	}
	if got := intersectInto(nil, []txdb.TID{9}, []txdb.TID{1, 2, 3}); len(got) != 0 {
		t.Fatalf("singleton miss = %v", got)
	}
	a := []txdb.TID{2, 4, 6, 8}
	if got := intersectInto(nil, a, a); len(got) != len(a) {
		t.Fatalf("self intersection = %v", got)
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		x := randomTIDList(rng, 1+rng.Intn(20), 500)
		y := randomTIDList(rng, 1+rng.Intn(400), 500)
		got := intersectInto(nil, x, y)
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("output not strictly ascending: %v", got)
			}
		}
	}
}

// TestIntersectItemMatchesSeedMerge: the skip-galloping intersection over
// compressed posting blocks must produce exactly the intersection the seed
// implementation's linear merge produced, on a real corpus, for random item
// pairs in both orientations and through chained multi-item intersections.
func TestIntersectItemMatchesSeedMerge(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	m := mining.NewMetrics("test")
	// All-compressed layout: this test targets the block×block kernel, which
	// only runs for block-encoded items.
	p := buildPostings(db, &m, 1, math.Inf(1))
	rng := rand.New(rand.NewSource(97))

	pick := func() itemset.Item { return itemset.Item(rng.Intn(db.NumItems())) }
	for trial := 0; trial < 600; trial++ {
		a, b := pick(), pick()
		rowA, rowB := p.row(a), p.row(b)
		if len(rowA) == 0 || len(rowB) == 0 {
			continue
		}
		want := naiveIntersect(rowA, rowB)
		for _, o := range []struct {
			acc []txdb.TID
			it  itemset.Item
		}{{rowA, b}, {rowB, a}} {
			got := p.intersectItem(nil, o.acc, o.it, &p.scratch.blockBuf)
			if len(got) != len(want) {
				t.Fatalf("trial %d items (%d,%d): %d matches, want %d",
					trial, a, b, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d items (%d,%d): mismatch at %d: %d vs %d",
						trial, a, b, i, got[i], want[i])
				}
			}
		}
	}

	// Chained intersections: the accumulator shrinks across 3-4 lists, so
	// later rounds probe the compressed blocks with sparse survivors.
	for trial := 0; trial < 200; trial++ {
		acc := p.row(pick())
		for n := 0; n < 1+rng.Intn(3) && len(acc) > 0; n++ {
			it := pick()
			want := naiveIntersect(acc, p.row(it))
			acc = p.intersectItem(nil, acc, it, &p.scratch.blockBuf)
			if len(acc) != len(want) {
				t.Fatalf("trial %d chain: %d matches, want %d", trial, len(acc), len(want))
			}
			for i := range acc {
				if acc[i] != want[i] {
					t.Fatalf("trial %d chain: mismatch at %d", trial, i)
				}
			}
		}
	}
}

// oldCountCharge reproduces the seed implementation's merge-work charge
// (comparison loop plus unpaired tails) for a posting intersection, so the
// closed-form charge of the galloping implementation can be checked against
// it exactly.
func oldCountCharge(rows [][]txdb.TID) int64 {
	sorted := make([][]txdb.TID, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	acc := sorted[0]
	ops := int64(0)
	for _, row := range sorted[1:] {
		next := make([]txdb.TID, 0, len(acc))
		i, j := 0, 0
		for i < len(acc) && j < len(row) {
			ops++
			switch {
			case acc[i] < row[j]:
				i++
			case acc[i] > row[j]:
				j++
			default:
				next = append(next, acc[i])
				i++
				j++
			}
		}
		ops += int64(len(acc) - i + len(row) - j)
		acc = next
		if len(acc) == 0 {
			break
		}
	}
	return ops
}

// TestPostingsChargeMatchesSeedModel: the simulated work charged by count
// must equal the seed's merge charge for every itemset and every posting
// layout — the galloping rewrite and the hybrid bitmap layout may only
// change wall-clock time, never the simulated clock.
func TestPostingsChargeMatchesSeedModel(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	for _, tc := range []struct {
		name      string
		threshold float64
	}{
		{"compressed", math.Inf(1)},
		{"hybrid", 0},
		{"bitmap", mining.DenseThresholdAll},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := mining.NewMetrics("test")
			p := buildPostings(db, &m, 1, tc.threshold)
			rng := rand.New(rand.NewSource(91))
			for trial := 0; trial < 400; trial++ {
				k := 1 + rng.Intn(4)
				raw := make([]uint32, k)
				for j := range raw {
					raw[j] = uint32(rng.Intn(db.NumItems()))
				}
				x := itemset.New(raw...)
				var rows [][]txdb.TID
				empty := false
				for _, it := range x {
					r := p.row(it)
					if len(r) == 0 {
						empty = true
						break
					}
					rows = append(rows, r)
				}
				before := m.Work.Units
				got := p.count(x, &m)
				charged := m.Work.Units - before
				if empty {
					if charged != 0 || got != 0 {
						t.Fatalf("itemset %v with empty row: count=%d charge=%d", x, got, charged)
					}
					continue
				}
				want := oldCountCharge(rows)
				if charged != want {
					t.Fatalf("itemset %v: charged %d work units, seed model charges %d", x, charged, want)
				}
			}
		})
	}
}

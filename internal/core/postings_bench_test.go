package core

import (
	"math"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// benchPairCount measures one posting-list intersection — a support count of
// the pair {0,1} — over a synthetic database where the two items occur at
// the given densities, with the layout forced by the threshold. Together the
// three wrappers below cover each hybrid kernel: block×block skip-gallop,
// bitmap×bitmap word AND, and the mixed bitmap-probe bridge.
func benchPairCount(b *testing.B, threshold, density0, density1 float64) {
	db := pairDB(1<<15, density0, density1, 42)
	m := mining.NewMetrics("bench")
	p := buildPostings(db, &m, 1, threshold)
	x := itemset.New(0, 1)
	want := p.count(x, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.count(x, &m); got != want {
			b.Fatalf("count drifted: %d then %d", want, got)
		}
	}
}

func BenchmarkKernelBlockBlock(b *testing.B) {
	benchPairCount(b, math.Inf(1), 1.0/64, 1.0/64)
}

func BenchmarkKernelBitmapBitmap(b *testing.B) {
	benchPairCount(b, mining.DenseThresholdAll, 1.0/8, 1.0/8)
}

// BenchmarkKernelBitmapBlock: item 0 sits below the default cutoff and item
// 1 above it, so the default threshold decodes the sparse list once and
// probes the dense item's bitmap (intersectBits).
func BenchmarkKernelBitmapBlock(b *testing.B) {
	benchPairCount(b, mining.DefaultDenseThreshold, 1.0/64, 1.0/4)
}

// benchDenseMine mines the no-stoplist dense corpus end to end on 8 nodes
// under a forced posting layout, so the hybrid layout's whole-run win over
// compressed-only is a number (run both and compare):
//
//	go test -run '^$' -bench BenchmarkDenseMine ./internal/core/
func benchDenseMine(b *testing.B, threshold float64) {
	db := smallDB(b, corpus.CorpusDense(corpus.Small))
	opts := mining.Options{MinSupFrac: 0.10, MaxK: 3, DenseThreshold: threshold}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinePMIHP(db, PMIHPConfig{Nodes: 8}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseMineHybrid(b *testing.B)     { benchDenseMine(b, 0) }
func BenchmarkDenseMineCompressed(b *testing.B) { benchDenseMine(b, math.Inf(1)) }

// BenchmarkKernelReference times the uncompressed gallop intersection the
// equivalence tests compare every kernel against, at the block×block
// benchmark's density, so kernel overhead versus plain sorted lists is
// visible in the same run.
func BenchmarkKernelReference(b *testing.B) {
	db := pairDB(1<<15, 1.0/64, 1.0/64, 42)
	m := mining.NewMetrics("bench")
	p := buildPostings(db, &m, 1, math.Inf(1))
	l0 := p.decodeAll(0, nil)
	l1 := p.decodeAll(1, nil)
	dst := make([]txdb.TID, 0, len(l0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = intersectInto(dst[:0], l0, l1)
	}
	_ = dst
}

package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// pairDB builds a database of span transactions (TIDs 0..span-1) in which
// items 0 and 1 each occur in an independently drawn random subset of
// exactly round(density*span) documents. Counting the pair {0,1} against it
// exercises one posting-list intersection at that density, which is what
// the kernel benchmarks and the crossover sweep need; seed fixes the draw.
func pairDB(span int, density0, density1 float64, seed int64) *txdb.DB {
	rng := rand.New(rand.NewSource(seed))
	member := func(density float64) []bool {
		df := int(math.Round(density * float64(span)))
		if df < 1 {
			df = 1
		}
		perm := rng.Perm(span)
		in := make([]bool, span)
		for _, t := range perm[:df] {
			in[t] = true
		}
		return in
	}
	in0, in1 := member(density0), member(density1)
	txs := make([]txdb.Transaction, span)
	for t := 0; t < span; t++ {
		var raw []uint32
		if in0[t] {
			raw = append(raw, 0)
		}
		if in1[t] {
			raw = append(raw, 1)
		}
		txs[t] = txdb.Transaction{TID: txdb.TID(t), Items: itemset.New(raw...)}
	}
	return txdb.New(txs, 2)
}

// timePairCount builds postings over db under the given density threshold
// and returns the mean wall-clock nanoseconds of one count of the pair
// {0,1}. reps is chosen by the caller to amortize timer granularity.
func timePairCount(db *txdb.DB, threshold float64, reps int) float64 {
	m := mining.NewMetrics("crossover")
	p := buildPostings(db, &m, 1, threshold)
	x := itemset.New(0, 1)
	p.count(x, &m) // warm scratch buffers outside the timed region
	start := time.Now()
	for i := 0; i < reps; i++ {
		p.count(x, &m)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// KernelCrossover sweeps posting-list density and times one pair
// intersection under the all-compressed (block×block skip-gallop) and
// all-bitmap (word AND + popcount) layouts, reporting where the bitmap
// kernel starts winning. The wall-clock numbers are machine-dependent —
// this is a tuning report for the -dense-threshold default, not a gate;
// the simulated charge is layout-independent by construction.
func KernelCrossover(w io.Writer, span int) {
	if span <= 0 {
		span = 1 << 15
	}
	fmt.Fprintf(w, "kernel crossover sweep: %d-document span, pair intersection at equal densities\n", span)
	fmt.Fprintf(w, "%10s %8s %14s %14s  %s\n", "density", "df", "block ns/op", "bitmap ns/op", "winner")
	crossover := math.NaN()
	for _, density := range []float64{
		1.0 / 16384, 1.0 / 4096, 1.0 / 1024, 1.0 / 512, 1.0 / 256, 1.0 / 128,
		1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2,
	} {
		db := pairDB(span, density, density, 42)
		df := int(math.Round(density * float64(span)))
		// Scale repetitions down as lists grow so the sweep stays quick.
		reps := 1 + (1 << 22 / (df + 1))
		block := timePairCount(db, math.Inf(1), reps)
		bitmap := timePairCount(db, mining.DenseThresholdAll, reps)
		winner := "block"
		if bitmap <= block {
			winner = "bitmap"
			if math.IsNaN(crossover) {
				crossover = density
			}
		} else {
			crossover = math.NaN() // demand a sustained win, not a blip
		}
		fmt.Fprintf(w, "%10.5f %8d %14.1f %14.1f  %s\n", density, df, block, bitmap, winner)
	}
	if math.IsNaN(crossover) {
		fmt.Fprintf(w, "bitmap kernel never won on this machine; -dense-threshold above 1 (all-compressed) is optimal here\n")
		return
	}
	fmt.Fprintf(w, "bitmap kernel wins from density %.5f up; library default threshold is %.5f\n",
		crossover, mining.DefaultDenseThreshold)
	fmt.Fprintf(w, "(the default sits above the wall-clock crossover on purpose: a bitmap holds\n"+
		" span/8 bytes per item regardless of df, so sparser items stay compressed for\n"+
		" memory, not speed)\n")
}

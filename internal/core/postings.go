package core

import (
	"sort"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Poll service counting. A PMIHP node answers peers' support-count requests
// from an inverted posting file over its local database rather than by
// rescanning it: text-database nodes have inverted files as a matter of
// course (the collection exists to be searched; the paper's own technique
// is *Inverted* Hashing and Pruning), and posting intersection prices a
// batch by the document frequencies of the polled itemsets instead of by
// a full database scan per polling round. Without this, frequent small
// polls would be charged a per-round scan that the local miner — which
// counts hundreds of thousands of candidates per scan — never pays,
// distorting the balance the paper reports in Figure 8.

// postings is the per-node inverted file: for every item, the ascending
// TIDs of the local documents containing it.
type postings map[itemset.Item][]txdb.TID

// buildPostings constructs the inverted file in one pass; the work is
// charged once to the node's server accounting.
func buildPostings(db *txdb.DB, m *mining.Metrics) postings {
	p := make(postings)
	items := int64(0)
	db.Each(func(t *txdb.Transaction) {
		items += int64(len(t.Items))
		for _, it := range t.Items {
			p[it] = append(p[it], t.TID)
		}
	})
	m.Work.Charge(items, mining.CostScanItem)
	return p
}

// count returns the exact local support of the itemset by intersecting its
// members' posting lists smallest-first, plus the merge work performed.
func (p postings) count(x itemset.Itemset, m *mining.Metrics) int {
	rows := make([][]txdb.TID, len(x))
	for i, it := range x {
		rows[i] = p[it]
		if len(rows[i]) == 0 {
			return 0
		}
	}
	sort.Slice(rows, func(i, j int) bool { return len(rows[i]) < len(rows[j]) })
	acc := rows[0]
	ops := int64(0)
	for _, row := range rows[1:] {
		next := make([]txdb.TID, 0, len(acc))
		i, j := 0, 0
		for i < len(acc) && j < len(row) {
			ops++
			switch {
			case acc[i] < row[j]:
				i++
			case acc[i] > row[j]:
				j++
			default:
				next = append(next, acc[i])
				i++
				j++
			}
		}
		ops += int64(len(acc) - i + len(row) - j)
		acc = next
		if len(acc) == 0 {
			break
		}
	}
	m.Work.Charge(ops, 1)
	return len(acc)
}

package core

import (
	"encoding/binary"
	"math/bits"
	"unsafe"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Poll service counting. A PMIHP node answers peers' support-count requests
// from an inverted posting file over its local database rather than by
// rescanning it: text-database nodes have inverted files as a matter of
// course (the collection exists to be searched; the paper's own technique
// is *Inverted* Hashing and Pruning), and posting intersection prices a
// batch by the document frequencies of the polled itemsets instead of by
// a full database scan per polling round. Without this, frequent small
// polls would be charged a per-round scan that the local miner — which
// counts hundreds of thousands of candidates per scan — never pays,
// distorting the balance the paper reports in Figure 8.
//
// Physical layout is hybrid. Sparse posting lists are delta-encoded varint
// blocks of up to postingBlockLen TIDs each, all items concatenated into
// one byte blob; each block's first TID is stored absolute (so any block
// decodes without its predecessors) and carries a skip entry — its max TID
// and byte offset — in flat arrays indexed by a global block number, and
// intersection gallops over the skip entries, decoding only blocks that can
// contain a match. Items whose document frequency reaches a density cutoff
// (mining.DenseCutoff of the node's TID span) are instead stored as flat
// bitmap words: stopword-grade lists intersect by word-wise AND +
// bits.OnesCount64, touching 64 candidate TIDs per word instead of decoding
// varints. Three kernels cover the combinations — block×block
// (intersectItem), bitmap×block (intersectBits over a decoded accumulator),
// and bitmap×bitmap (andBits) — and because lists merge smallest-first and
// the density rule is a frequency cut, a counting chain is either all-bitmap
// or starts sparse, so the accumulator representation never has to convert
// upward.
//
// The representation switch is invisible to the simulated clock: every
// kernel's charge is the closed-form linear-merge cost, which depends only
// on the cardinalities of the intersected sets, never on their encoding.

// postingBlockLen is the number of TIDs per compressed block. 128 deltas
// keep a decoded block inside two cache lines of skip metadata while
// amortizing the per-block absolute head across the run.
const postingBlockLen = 128

// postings is the per-node inverted file in hybrid compressed/bitmap form,
// plus the intersection scratch, so steady-state counting allocates nothing.
//
// Document frequencies are not stored as a full-width array: a node's
// vocabulary is much larger than the set of items its documents actually
// contain, so per-item metadata is the footprint that matters. A sparse
// item's frequency is reconstructed from its block count and a one-byte
// length of its final block (every other block is full) via dfOf; dense
// items carry theirs in denseDF.
type postings struct {
	blob    []byte     // delta-varint blocks, all items concatenated
	skipMax []txdb.TID // per block: the block's last (max) TID
	skipOff []uint32   // per block: byte offset of the block in blob; +1 sentinel
	blockOf []uint32   // per item: first global block index; len NumItems()+1
	lastLen []uint8    // per item: entries in its last block, minus one; unused when empty

	// Dense (bitmap) representation. An item at or above the density cutoff
	// has no blocks; its posting list is the set bits of one stride of words
	// in denseBits, bit i standing for TID tidBase+i. denseIdx is nil when
	// no item qualified, so sparse corpora pay nothing.
	denseIdx  []int32  // per item: dense slot, or -1 when block-encoded
	denseDF   []int32  // per dense slot: posting-list length (bitmap popcount)
	denseBits []uint64 // concatenated bitmaps, words words per dense slot
	tidBase   txdb.TID // TID of bit 0
	words     int      // bitmap words per dense item: ceil(span/64)
	cutoff    int32    // df at or above which an item is bitmap-backed

	// scratch is the serial counting path's state, accounted by MemBytes;
	// extra holds additional per-shard states for batch counting sharded
	// across IntraNodeWorkers. Like the miner's per-shard scratch, the extra
	// states are transient worker state and stay out of the deterministic
	// held-bytes accounting (which must not depend on the worker count).
	scratch postingScratch
	extra   []*postingScratch
}

// postingScratch is one worker's reusable intersection state.
type postingScratch struct {
	refs     []plistRef // per-count row refs
	bufA     []txdb.TID // ping-pong accumulators, cap = max sparse df
	bufB     []txdb.TID
	accBits  []uint64                  // bitmap accumulator for all-dense chains
	blockBuf [postingBlockLen]txdb.TID // single-block decode scratch
}

// plistRef is one polled item's posting list by reference: intersections
// are ordered and charged by document frequency without decoding anything.
type plistRef struct {
	item itemset.Item
	df   int32
}

// gallopSkew is the length ratio beyond which the intersection of two
// posting lists switches from a linear merge to galloping (binary-skip)
// search through the longer list. Text collections are Zipfian, so a rare
// term polled against a stopword-grade list is the common case, not the
// exception.
const gallopSkew = 16

// buildPostings constructs the inverted file from the database's CSR
// arrays in two sharded passes: first per-shard document frequencies,
// then prefix sums position every shard's writes directly into one flat
// TID array — no transient per-shard [][]TID, no per-item append chains.
// Shard write regions concatenate in shard order, which reproduces the
// serial (database-order) lists exactly; the flat lists are then encoded
// into varint blocks or, at or above the density cutoff resolved from
// denseThreshold, into bitmaps. The scan is charged once to the node's
// server accounting, identically to the uncompressed build.
func buildPostings(db *txdb.DB, m *mining.Metrics, workers int, denseThreshold float64) *postings {
	numItems := db.NumItems()
	n := db.Len()
	items, offsets, tids := db.CSR()
	// The positioned writes of pass 2 require each shard to own one
	// contiguous range with regions concatenating in shard order, so the
	// build stays on the static partition rather than the chunk queue.
	nShards := mining.NumStatic(n, workers)

	// Pass 1: per-shard, per-item occurrence counts.
	shardCounts := make([][]int32, nShards)
	mining.RunStatic(n, workers, func(s, lo, hi int) {
		c := make([]int32, numItems)
		for _, it := range items[offsets[lo]:offsets[hi]] {
			c[it]++
		}
		shardCounts[s] = c
	})

	df := make([]int32, numItems)
	for _, c := range shardCounts {
		for it, v := range c {
			df[it] += v
		}
	}
	pos := make([]uint32, numItems+1)
	for it, v := range df {
		pos[it+1] = pos[it] + uint32(v)
	}
	total := pos[numItems]
	p := &postings{}

	// Density geometry: TIDs are ascending in database order, so the node's
	// span is one subtraction. The cutoff is relative to the span (not the
	// document count) so split policies that scatter a part across the
	// global TID range price their sparser bitmaps honestly.
	span := db.TIDSpan()
	if n > 0 {
		p.tidBase = tids[0]
	}
	p.words = (span + 63) / 64
	p.cutoff = int32(mining.DenseCutoff(denseThreshold, span))

	// Scratch accumulators only ever hold chains seeded from a sparse
	// (block-encoded) list, so their capacity follows the largest sparse df;
	// all-dense chains accumulate in bitmap words instead.
	maxSparseDF := int32(0)
	for _, v := range df {
		if v < p.cutoff && v > maxSparseDF {
			maxSparseDF = v
		}
	}

	// Turn the per-shard counts into per-shard write cursors: shard s
	// writes item it's TIDs at pos[it] plus the occurrences in shards < s.
	run := make([]uint32, numItems)
	for s := 0; s < nShards; s++ {
		c := shardCounts[s]
		for it := range c {
			cnt := c[it]
			c[it] = int32(pos[it] + run[it])
			run[it] += uint32(cnt)
		}
	}

	// Pass 2: positioned writes into the flat TID store.
	tidStore := make([]txdb.TID, total)
	mining.RunStatic(n, workers, func(s, lo, hi int) {
		cur := shardCounts[s]
		for i := lo; i < hi; i++ {
			tid := tids[i]
			for _, it := range items[offsets[i]:offsets[i+1]] {
				tidStore[cur[it]] = tid
				cur[it]++
			}
		}
	})

	p.encode(tidStore, pos)
	p.scratch.bufA = make([]txdb.TID, 0, maxSparseDF)
	p.scratch.bufB = make([]txdb.TID, 0, maxSparseDF)
	if p.denseIdx != nil {
		p.scratch.accBits = make([]uint64, p.words)
	}

	m.Work.Charge(int64(total), mining.CostScanItem)
	return p
}

// encode lays out the flat per-item TID lists (item it owns
// store[pos[it]:pos[it+1]]): lists of cutoff or more TIDs become bitmaps,
// everything else delta-varint blocks with skip entries.
func (p *postings) encode(store []txdb.TID, pos []uint32) {
	numItems := len(pos) - 1
	p.blockOf = make([]uint32, numItems+1)
	p.lastLen = make([]uint8, numItems)
	nDense := 0
	for it := 0; it < numItems; it++ {
		v := int32(pos[it+1] - pos[it])
		if v >= p.cutoff && v > 0 {
			p.blockOf[it+1] = p.blockOf[it] // dense: no blocks
			nDense++
			continue
		}
		p.blockOf[it+1] = p.blockOf[it] + uint32((int(v)+postingBlockLen-1)/postingBlockLen)
		if v > 0 {
			p.lastLen[it] = uint8((int(v) - 1) % postingBlockLen)
		}
	}
	if nDense > 0 {
		p.denseIdx = make([]int32, numItems)
		for it := range p.denseIdx {
			p.denseIdx[it] = -1
		}
		p.denseDF = make([]int32, 0, nDense)
		p.denseBits = make([]uint64, nDense*p.words)
		for it := 0; it < numItems; it++ {
			v := int32(pos[it+1] - pos[it])
			if v < p.cutoff || v == 0 {
				continue
			}
			slot := int32(len(p.denseDF))
			p.denseIdx[it] = slot
			p.denseDF = append(p.denseDF, v)
			bm := p.denseBits[int(slot)*p.words : (int(slot)+1)*p.words]
			for _, tid := range store[pos[it]:pos[it+1]] {
				o := tid - p.tidBase
				bm[o>>6] |= 1 << (o & 63)
			}
		}
	}

	totalBlocks := p.blockOf[numItems]
	p.skipMax = make([]txdb.TID, totalBlocks)
	p.skipOff = make([]uint32, totalBlocks+1)
	// Deltas of ascending uint32 TIDs are ≥1 and almost always fit one or
	// two varint bytes; reserve two per block-encoded posting to avoid
	// regrowth.
	p.blob = make([]byte, 0, 2*len(store))

	b := uint32(0)
	for it := 0; it < numItems; it++ {
		if p.blockOf[it+1] == p.blockOf[it] {
			continue // empty or bitmap-backed
		}
		list := store[pos[it]:pos[it+1]]
		for lo := 0; lo < len(list); lo += postingBlockLen {
			hi := lo + postingBlockLen
			if hi > len(list) {
				hi = len(list)
			}
			p.skipOff[b] = uint32(len(p.blob))
			p.skipMax[b] = list[hi-1]
			p.blob = binary.AppendUvarint(p.blob, uint64(list[lo]))
			prev := list[lo]
			for _, v := range list[lo+1 : hi] {
				p.blob = binary.AppendUvarint(p.blob, uint64(v-prev))
				prev = v
			}
			b++
		}
	}
	p.skipOff[totalBlocks] = uint32(len(p.blob))
	// The deltas usually undershoot the two-bytes-per-entry reservation;
	// re-fit the blob so the build's guess doesn't stay resident (and so
	// MemBytes, which counts lengths, is the memory actually held).
	if cap(p.blob) > len(p.blob) {
		p.blob = append(make([]byte, 0, len(p.blob)), p.blob...)
	}
}

// denseSlot returns item it's dense slot, or -1 when the item is
// block-encoded (or no item is dense at all).
func (p *postings) denseSlot(it itemset.Item) int32 {
	if p.denseIdx == nil {
		return -1
	}
	return p.denseIdx[it]
}

// bitmap returns dense slot s's bitmap words.
func (p *postings) bitmap(s int32) []uint64 {
	lo := int(s) * p.words
	return p.denseBits[lo : lo+p.words : lo+p.words]
}

// dfOf returns item it's document frequency (posting-list length): the
// stored popcount for dense items, otherwise reconstructed from the block
// count and last-block length.
func (p *postings) dfOf(it itemset.Item) int32 {
	if s := p.denseSlot(it); s >= 0 {
		return p.denseDF[s]
	}
	nb := p.blockOf[it+1] - p.blockOf[it]
	if nb == 0 {
		return 0
	}
	return int32(nb-1)*postingBlockLen + int32(p.lastLen[it]) + 1
}

// blockEntries returns how many TIDs block b of item it holds: a full
// postingBlockLen except possibly the item's last block.
func (p *postings) blockEntries(it itemset.Item, b uint32) int {
	if b == p.blockOf[it+1]-1 {
		return int(p.lastLen[it]) + 1
	}
	return postingBlockLen
}

// decodeBlock expands block b of item it into the caller's block scratch.
func (p *postings) decodeBlock(it itemset.Item, b uint32, bbuf *[postingBlockLen]txdb.TID) []txdb.TID {
	entries := p.blockEntries(it, b)
	buf := bbuf[:entries]
	at := int(p.skipOff[b])
	prev := txdb.TID(0)
	for k := 0; k < entries; k++ {
		v, n := binary.Uvarint(p.blob[at:])
		at += n
		if k == 0 {
			prev = txdb.TID(v)
		} else {
			prev += txdb.TID(v)
		}
		buf[k] = prev
	}
	return buf
}

// decodeAll appends item it's full posting list to dst, whichever
// representation backs it.
func (p *postings) decodeAll(it itemset.Item, dst []txdb.TID) []txdb.TID {
	if s := p.denseSlot(it); s >= 0 {
		return p.appendBits(dst, s)
	}
	for b := p.blockOf[it]; b < p.blockOf[it+1]; b++ {
		entries := p.blockEntries(it, b)
		at := int(p.skipOff[b])
		prev := txdb.TID(0)
		for k := 0; k < entries; k++ {
			v, n := binary.Uvarint(p.blob[at:])
			at += n
			if k == 0 {
				prev = txdb.TID(v)
			} else {
				prev += txdb.TID(v)
			}
			dst = append(dst, prev)
		}
	}
	return dst
}

// appendBits appends the TIDs of dense slot s's bitmap to dst, ascending.
func (p *postings) appendBits(dst []txdb.TID, s int32) []txdb.TID {
	for wi, w := range p.bitmap(s) {
		base := p.tidBase + txdb.TID(wi*64)
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+txdb.TID(bits.TrailingZeros64(w)))
		}
	}
	return dst
}

// row returns item it's posting list decoded into a fresh slice. It is the
// reference accessor for tests and debugging; the counting path never
// materializes full lists except for the smallest one.
func (p *postings) row(it itemset.Item) []txdb.TID {
	if int(it)+1 >= len(p.blockOf) {
		return nil
	}
	df := p.dfOf(it)
	if df == 0 {
		return nil
	}
	return p.decodeAll(it, make([]txdb.TID, 0, df))
}

// MemBytes returns the resident size of the hybrid inverted file, including
// the serial counting path's reusable scratch. Element widths come from
// unsafe.Sizeof so the accounting survives a TID-width change; the per-shard
// extra scratch states stay out (see the postings field comment).
func (p *postings) MemBytes() int64 {
	const (
		tidSize  = int64(unsafe.Sizeof(txdb.TID(0)))
		u32Size  = int64(unsafe.Sizeof(uint32(0)))
		u64Size  = int64(unsafe.Sizeof(uint64(0)))
		i32Size  = int64(unsafe.Sizeof(int32(0)))
		byteSize = int64(1)
	)
	return byteSize*int64(len(p.blob)) + byteSize*int64(len(p.lastLen)) +
		tidSize*int64(len(p.skipMax)) + u32Size*int64(len(p.skipOff)) + u32Size*int64(len(p.blockOf)) +
		i32Size*int64(len(p.denseIdx)) + i32Size*int64(len(p.denseDF)) + u64Size*int64(len(p.denseBits)) +
		tidSize*int64(cap(p.scratch.bufA)+cap(p.scratch.bufB)) +
		u64Size*int64(cap(p.scratch.accBits)) +
		tidSize*postingBlockLen
}

// ensureScratch grows the extra per-shard scratch pool so shards 0..n-1 can
// each take a private state. Must be called before the shards run; the pool
// persists across batches so steady-state counting allocates nothing.
func (p *postings) ensureScratch(n int) {
	for len(p.extra) < n-1 {
		sc := &postingScratch{
			bufA: make([]txdb.TID, 0, cap(p.scratch.bufA)),
			bufB: make([]txdb.TID, 0, cap(p.scratch.bufB)),
		}
		if p.denseIdx != nil {
			sc.accBits = make([]uint64, p.words)
		}
		p.extra = append(p.extra, sc)
	}
}

// scratchFor returns shard s's counting scratch. Shard 0 reuses the serial
// state; ensureScratch must have covered the rest.
func (p *postings) scratchFor(s int) *postingScratch {
	if s == 0 {
		return &p.scratch
	}
	return p.extra[s-1]
}

// count returns the exact local support of the itemset on the serial path,
// charging the merge work to m.
func (p *postings) count(x itemset.Itemset, m *mining.Metrics) int {
	n, ops := p.countScratch(x, &p.scratch)
	m.Work.Charge(ops, 1)
	return n
}

// countScratch returns the exact local support of the itemset by
// intersecting its members' posting lists smallest-first, along with the
// charged merge work. The charge is the cost of the classic linear merge —
// for ascending duplicate-free lists that cost has the closed form
// len(a) + len(b) − |a∩b| per merged pair, counting both the paired
// advances and the unpaired tails — so the simulated clock is unchanged by
// any physical-layout switch: bitmap, block, and mixed chains over the same
// sets charge identically.
//
// Lists merge in ascending df order, and density is a df cut (df ≥ cutoff),
// so if the smallest list is dense every list is: that chain runs entirely
// in bitmap words (andBits). Otherwise the smallest list is block-encoded:
// it is decoded once, and every further list intersects against the decoded
// accumulator in its own representation — skip-galloped blocks
// (intersectItem) or bitmap probes (intersectBits).
func (p *postings) countScratch(x itemset.Itemset, sc *postingScratch) (n int, ops int64) {
	refs := sc.refs[:0]
	defer func() { sc.refs = refs[:0] }()
	for _, it := range x {
		if int(it)+1 >= len(p.blockOf) {
			return 0, 0
		}
		df := p.dfOf(it)
		if df == 0 {
			return 0, 0
		}
		refs = append(refs, plistRef{item: it, df: df})
	}
	// Stable insertion sort by document frequency: itemsets are tiny
	// (k ≤ MaxK), and stability preserves the original tie order the
	// charging model was calibrated against.
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].df < refs[j-1].df; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
	if s := p.denseSlot(refs[0].item); s >= 0 {
		// All-dense chain: word-wise AND + POPCNT, never materializing TIDs.
		acc := sc.accBits
		copy(acc, p.bitmap(s))
		card := int(refs[0].df)
		for _, r := range refs[1:] {
			out := andBits(acc, p.bitmap(p.denseSlot(r.item)))
			ops += int64(card) + int64(r.df) - int64(out)
			card = out
			if card == 0 {
				break
			}
		}
		return card, ops
	}
	cur, nxt := sc.bufA, sc.bufB
	acc := p.decodeAll(refs[0].item, cur[:0])
	for _, r := range refs[1:] {
		var out []txdb.TID
		if s := p.denseSlot(r.item); s >= 0 {
			out = p.intersectBits(nxt[:0], acc, s)
		} else {
			out = p.intersectItem(nxt[:0], acc, r.item, &sc.blockBuf)
		}
		ops += int64(len(acc)) + int64(r.df) - int64(len(out))
		acc = out
		cur, nxt = nxt, cur
		if len(acc) == 0 {
			break
		}
	}
	return len(acc), ops
}

// andBits ANDs b into acc in place and returns the popcount of the result —
// the bitmap×bitmap kernel.
func andBits(acc, b []uint64) int {
	card := 0
	for j, w := range b {
		acc[j] &= w
		card += bits.OnesCount64(acc[j])
	}
	return card
}

// intersectBits appends to dst the members of the ascending duplicate-free
// list a whose bit is set in dense slot s's bitmap — the bitmap×block
// kernel: the accumulator is already decoded, so each probe is one shift
// and mask instead of a block walk.
func (p *postings) intersectBits(dst, a []txdb.TID, s int32) []txdb.TID {
	bm := p.bitmap(s)
	base := p.tidBase
	for _, v := range a {
		o := v - base
		if bm[o>>6]&(1<<(o&63)) != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// intersectItem appends to dst the intersection of the ascending
// duplicate-free list a with item it's block-encoded posting list — the
// block×block kernel. The accumulator is always the shorter side (lists are
// merged smallest-first and only shrink), so the walk iterates a and skips
// through it's blocks: an exponential probe over the skipMax entries
// brackets the first block that can hold the probe value, a binary search
// pins it, and only that block is decoded. A block stays decoded while
// consecutive probes land in it, so dense runs degrade gracefully to a
// linear merge.
func (p *postings) intersectItem(dst, a []txdb.TID, it itemset.Item, bbuf *[postingBlockLen]txdb.TID) []txdb.TID {
	first, last := p.blockOf[it], p.blockOf[it+1]
	bi := first
	decoded := last // sentinel: no block decoded yet (bi < last always holds)
	var blk []txdb.TID
	cur := 0
	for _, v := range a {
		if p.skipMax[bi] < v {
			lo, step := bi, uint32(1)
			for lo+step < last && p.skipMax[lo+step] < v {
				lo += step
				step <<= 1
			}
			hi := lo + step
			if hi > last {
				hi = last
			}
			// skipMax[lo] < v <= skipMax[hi] (or hi == last); binary
			// search (lo, hi] for the first block that can contain v.
			s, e := lo+1, hi
			for s < e {
				mid := (s + e) >> 1
				if p.skipMax[mid] < v {
					s = mid + 1
				} else {
					e = mid
				}
			}
			bi = s
			if bi >= last {
				break
			}
		}
		if bi != decoded {
			blk = p.decodeBlock(it, bi, bbuf)
			decoded = bi
			cur = 0
		}
		for cur < len(blk) && blk[cur] < v {
			cur++
		}
		if cur < len(blk) && blk[cur] == v {
			dst = append(dst, v)
			cur++
		}
	}
	return dst
}

// intersectInto appends the intersection of the ascending duplicate-free
// lists a and b (len(a) <= len(b)) to dst. When b dwarfs a it gallops:
// for each element of a, an exponential probe from the current position in
// b brackets the target, then a binary search pins it. This is the
// uncompressed reference intersection; the counting path uses the hybrid
// kernels, and the equivalence tests check each of them against this.
func intersectInto(dst, a, b []txdb.TID) []txdb.TID {
	if len(b) >= gallopSkew*len(a) {
		j := 0
		for _, v := range a {
			if j >= len(b) {
				break
			}
			if b[j] < v {
				lo, step := j, 1
				for lo+step < len(b) && b[lo+step] < v {
					lo += step
					step <<= 1
				}
				hi := lo + step
				if hi > len(b) {
					hi = len(b)
				}
				// b[lo] < v <= b[hi] (or hi == len(b)); binary search (lo, hi].
				s, e := lo+1, hi
				for s < e {
					mid := int(uint(s+e) >> 1)
					if b[mid] < v {
						s = mid + 1
					} else {
						e = mid
					}
				}
				j = s
			}
			if j < len(b) && b[j] == v {
				dst = append(dst, v)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

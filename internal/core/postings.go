package core

import (
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Poll service counting. A PMIHP node answers peers' support-count requests
// from an inverted posting file over its local database rather than by
// rescanning it: text-database nodes have inverted files as a matter of
// course (the collection exists to be searched; the paper's own technique
// is *Inverted* Hashing and Pruning), and posting intersection prices a
// batch by the document frequencies of the polled itemsets instead of by
// a full database scan per polling round. Without this, frequent small
// polls would be charged a per-round scan that the local miner — which
// counts hundreds of thousands of candidates per scan — never pays,
// distorting the balance the paper reports in Figure 8.

// postings is the per-node inverted file: for every item, the ascending
// TIDs of the local documents containing it, indexed densely by item. The
// struct also carries the intersection scratch buffers, so steady-state
// counting allocates nothing.
type postings struct {
	byItem [][]txdb.TID

	rows [][]txdb.TID // per-count row pointers, reused
	bufA []txdb.TID   // ping-pong intersection accumulators, reused
	bufB []txdb.TID
}

// gallopSkew is the length ratio beyond which the intersection of two
// posting lists switches from a linear merge to galloping (binary-skip)
// search through the longer list. Text collections are Zipfian, so a rare
// term polled against a stopword-grade list is the common case, not the
// exception.
const gallopSkew = 16

// buildPostings constructs the inverted file in one pass over the local
// database, sharded across workers; per-shard lists concatenate in shard
// order, which reproduces the serial (database-order) lists exactly. The
// work is charged once to the node's server accounting.
func buildPostings(db *txdb.DB, m *mining.Metrics, workers int) *postings {
	p := &postings{byItem: make([][]txdb.TID, db.NumItems())}
	n := db.Len()
	nShards := mining.NumShards(n, workers)
	items := int64(0)
	if nShards <= 1 {
		for i := 0; i < n; i++ {
			t := db.Tx(i)
			items += int64(len(t.Items))
			for _, it := range t.Items {
				p.byItem[it] = append(p.byItem[it], t.TID)
			}
		}
	} else {
		partial := make([][][]txdb.TID, nShards)
		counted := make([]int64, nShards)
		mining.RunShards(n, workers, func(s, lo, hi int) {
			rows := make([][]txdb.TID, len(p.byItem))
			for i := lo; i < hi; i++ {
				t := db.Tx(i)
				counted[s] += int64(len(t.Items))
				for _, it := range t.Items {
					rows[it] = append(rows[it], t.TID)
				}
			}
			partial[s] = rows
		})
		for s := 0; s < nShards; s++ {
			items += counted[s]
			for it, row := range partial[s] {
				if len(row) > 0 {
					p.byItem[it] = append(p.byItem[it], row...)
				}
			}
		}
	}
	m.Work.Charge(items, mining.CostScanItem)
	return p
}

func (p *postings) row(it itemset.Item) []txdb.TID {
	if int(it) >= len(p.byItem) {
		return nil
	}
	return p.byItem[it]
}

// count returns the exact local support of the itemset by intersecting its
// members' posting lists smallest-first. The physical intersection gallops
// through skewed lists, but the charged merge work is the cost of the
// classic linear merge — for ascending duplicate-free lists that cost has
// the closed form len(a) + len(b) − |a∩b| per merged pair, counting both
// the paired advances and the unpaired tails — so the simulated clock is
// unchanged by the algorithm switch.
func (p *postings) count(x itemset.Itemset, m *mining.Metrics) int {
	rows := p.rows[:0]
	defer func() { p.rows = rows[:0] }()
	for _, it := range x {
		r := p.row(it)
		if len(r) == 0 {
			return 0
		}
		rows = append(rows, r)
	}
	// Stable insertion sort by length: itemsets are tiny (k ≤ MaxK), and
	// stability preserves the original tie order the charging model was
	// calibrated against.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && len(rows[j]) < len(rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	acc := rows[0]
	dst, spare := p.bufA, p.bufB
	ops := int64(0)
	for _, row := range rows[1:] {
		out := intersectInto(dst[:0], acc, row)
		ops += int64(len(acc) + len(row) - len(out))
		dst, spare = spare, out
		acc = out
		if len(acc) == 0 {
			break
		}
	}
	p.bufA, p.bufB = dst, spare
	m.Work.Charge(ops, 1)
	return len(acc)
}

// intersectInto appends the intersection of the ascending duplicate-free
// lists a and b (len(a) <= len(b)) to dst. When b dwarfs a it gallops:
// for each element of a, an exponential probe from the current position in
// b brackets the target, then a binary search pins it.
func intersectInto(dst, a, b []txdb.TID) []txdb.TID {
	if len(b) >= gallopSkew*len(a) {
		j := 0
		for _, v := range a {
			if j >= len(b) {
				break
			}
			if b[j] < v {
				lo, step := j, 1
				for lo+step < len(b) && b[lo+step] < v {
					lo += step
					step <<= 1
				}
				hi := lo + step
				if hi > len(b) {
					hi = len(b)
				}
				// b[lo] < v <= b[hi] (or hi == len(b)); binary search (lo, hi].
				s, e := lo+1, hi
				for s < e {
					mid := int(uint(s+e) >> 1)
					if b[mid] < v {
						s = mid + 1
					} else {
						e = mid
					}
				}
				j = s
			}
			if j < len(b) && b[j] == v {
				dst = append(dst, v)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

package core

import (
	"encoding/binary"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Poll service counting. A PMIHP node answers peers' support-count requests
// from an inverted posting file over its local database rather than by
// rescanning it: text-database nodes have inverted files as a matter of
// course (the collection exists to be searched; the paper's own technique
// is *Inverted* Hashing and Pruning), and posting intersection prices a
// batch by the document frequencies of the polled itemsets instead of by
// a full database scan per polling round. Without this, frequent small
// polls would be charged a per-round scan that the local miner — which
// counts hundreds of thousands of candidates per scan — never pays,
// distorting the balance the paper reports in Figure 8.
//
// Physical layout: posting lists are delta-encoded varint blocks of up to
// postingBlockLen TIDs each, all items concatenated into one byte blob.
// Each block's first TID is stored absolute (so any block decodes without
// its predecessors) and carries a skip entry — its max TID and byte offset
// — in flat arrays indexed by a global block number. Intersection gallops
// over the skip entries and only decodes blocks that can contain a match.

// postingBlockLen is the number of TIDs per compressed block. 128 deltas
// keep a decoded block inside two cache lines of skip metadata while
// amortizing the per-block absolute head across the run.
const postingBlockLen = 128

// postings is the per-node inverted file in compressed form, plus the
// intersection scratch buffers, so steady-state counting allocates nothing.
//
// Document frequencies are not stored as a full-width array: a node's
// vocabulary is much larger than the set of items its documents actually
// contain, so per-item metadata is the footprint that matters. An item's
// frequency is reconstructed from its block count and a one-byte length of
// its final block (every other block is full), via dfOf.
type postings struct {
	blob    []byte     // delta-varint blocks, all items concatenated
	skipMax []txdb.TID // per block: the block's last (max) TID
	skipOff []uint32   // per block: byte offset of the block in blob; +1 sentinel
	blockOf []uint32   // per item: first global block index; len NumItems()+1
	lastLen []uint8    // per item: entries in its last block, minus one; unused when empty

	refs     []plistRef // per-count row refs, reused
	bufA     []txdb.TID // ping-pong intersection accumulators, reused
	bufB     []txdb.TID
	blockBuf [postingBlockLen]txdb.TID // single-block decode scratch
}

// plistRef is one polled item's posting list by reference: intersections
// are ordered and charged by document frequency without decoding anything.
type plistRef struct {
	item itemset.Item
	df   int32
}

// gallopSkew is the length ratio beyond which the intersection of two
// posting lists switches from a linear merge to galloping (binary-skip)
// search through the longer list. Text collections are Zipfian, so a rare
// term polled against a stopword-grade list is the common case, not the
// exception.
const gallopSkew = 16

// buildPostings constructs the inverted file from the database's CSR
// arrays in two sharded passes: first per-shard document frequencies,
// then prefix sums position every shard's writes directly into one flat
// TID array — no transient per-shard [][]TID, no per-item append chains.
// Shard write regions concatenate in shard order, which reproduces the
// serial (database-order) lists exactly; the flat lists are then encoded
// into the varint blocks. The scan is charged once to the node's server
// accounting, identically to the uncompressed build.
func buildPostings(db *txdb.DB, m *mining.Metrics, workers int) *postings {
	numItems := db.NumItems()
	n := db.Len()
	items, offsets, tids := db.CSR()
	nShards := mining.NumShards(n, workers)

	// Pass 1: per-shard, per-item occurrence counts.
	shardCounts := make([][]int32, nShards)
	mining.RunShards(n, workers, func(s, lo, hi int) {
		c := make([]int32, numItems)
		for _, it := range items[offsets[lo]:offsets[hi]] {
			c[it]++
		}
		shardCounts[s] = c
	})

	df := make([]int32, numItems)
	for _, c := range shardCounts {
		for it, v := range c {
			df[it] += v
		}
	}
	pos := make([]uint32, numItems+1)
	maxDF := int32(0)
	for it, v := range df {
		pos[it+1] = pos[it] + uint32(v)
		if v > maxDF {
			maxDF = v
		}
	}
	total := pos[numItems]
	p := &postings{}

	// Turn the per-shard counts into per-shard write cursors: shard s
	// writes item it's TIDs at pos[it] plus the occurrences in shards < s.
	run := make([]uint32, numItems)
	for s := 0; s < nShards; s++ {
		c := shardCounts[s]
		for it := range c {
			cnt := c[it]
			c[it] = int32(pos[it] + run[it])
			run[it] += uint32(cnt)
		}
	}

	// Pass 2: positioned writes into the flat TID store.
	tidStore := make([]txdb.TID, total)
	mining.RunShards(n, workers, func(s, lo, hi int) {
		cur := shardCounts[s]
		for i := lo; i < hi; i++ {
			tid := tids[i]
			for _, it := range items[offsets[i]:offsets[i+1]] {
				tidStore[cur[it]] = tid
				cur[it]++
			}
		}
	})

	p.encode(tidStore, pos)
	p.bufA = make([]txdb.TID, 0, maxDF)
	p.bufB = make([]txdb.TID, 0, maxDF)

	m.Work.Charge(int64(total), mining.CostScanItem)
	return p
}

// encode compresses the flat per-item TID lists (item it owns
// store[pos[it]:pos[it+1]]) into delta-varint blocks with skip entries.
func (p *postings) encode(store []txdb.TID, pos []uint32) {
	numItems := len(pos) - 1
	p.blockOf = make([]uint32, numItems+1)
	p.lastLen = make([]uint8, numItems)
	for it := 0; it < numItems; it++ {
		v := int(pos[it+1] - pos[it])
		p.blockOf[it+1] = p.blockOf[it] + uint32((v+postingBlockLen-1)/postingBlockLen)
		if v > 0 {
			p.lastLen[it] = uint8((v - 1) % postingBlockLen)
		}
	}
	totalBlocks := p.blockOf[numItems]
	p.skipMax = make([]txdb.TID, totalBlocks)
	p.skipOff = make([]uint32, totalBlocks+1)
	// Deltas of ascending uint32 TIDs are ≥1 and almost always fit one or
	// two varint bytes; reserve two per posting to avoid regrowth.
	p.blob = make([]byte, 0, 2*len(store))

	b := uint32(0)
	for it := 0; it < numItems; it++ {
		list := store[pos[it]:pos[it+1]]
		for lo := 0; lo < len(list); lo += postingBlockLen {
			hi := lo + postingBlockLen
			if hi > len(list) {
				hi = len(list)
			}
			p.skipOff[b] = uint32(len(p.blob))
			p.skipMax[b] = list[hi-1]
			p.blob = binary.AppendUvarint(p.blob, uint64(list[lo]))
			prev := list[lo]
			for _, v := range list[lo+1 : hi] {
				p.blob = binary.AppendUvarint(p.blob, uint64(v-prev))
				prev = v
			}
			b++
		}
	}
	p.skipOff[totalBlocks] = uint32(len(p.blob))
}

// dfOf returns item it's document frequency (posting-list length),
// reconstructed from its block count and last-block length.
func (p *postings) dfOf(it itemset.Item) int32 {
	nb := p.blockOf[it+1] - p.blockOf[it]
	if nb == 0 {
		return 0
	}
	return int32(nb-1)*postingBlockLen + int32(p.lastLen[it]) + 1
}

// blockEntries returns how many TIDs block b of item it holds: a full
// postingBlockLen except possibly the item's last block.
func (p *postings) blockEntries(it itemset.Item, b uint32) int {
	if b == p.blockOf[it+1]-1 {
		return int(p.lastLen[it]) + 1
	}
	return postingBlockLen
}

// decodeBlock expands block b of item it into the shared block scratch.
func (p *postings) decodeBlock(it itemset.Item, b uint32) []txdb.TID {
	entries := p.blockEntries(it, b)
	buf := p.blockBuf[:entries]
	at := int(p.skipOff[b])
	prev := txdb.TID(0)
	for k := 0; k < entries; k++ {
		v, n := binary.Uvarint(p.blob[at:])
		at += n
		if k == 0 {
			prev = txdb.TID(v)
		} else {
			prev += txdb.TID(v)
		}
		buf[k] = prev
	}
	return buf
}

// decodeAll appends item it's full posting list to dst.
func (p *postings) decodeAll(it itemset.Item, dst []txdb.TID) []txdb.TID {
	for b := p.blockOf[it]; b < p.blockOf[it+1]; b++ {
		entries := p.blockEntries(it, b)
		at := int(p.skipOff[b])
		prev := txdb.TID(0)
		for k := 0; k < entries; k++ {
			v, n := binary.Uvarint(p.blob[at:])
			at += n
			if k == 0 {
				prev = txdb.TID(v)
			} else {
				prev += txdb.TID(v)
			}
			dst = append(dst, prev)
		}
	}
	return dst
}

// row returns item it's posting list decoded into a fresh slice. It is the
// reference accessor for tests and debugging; the counting path never
// materializes full lists except for the smallest one.
func (p *postings) row(it itemset.Item) []txdb.TID {
	if int(it)+1 >= len(p.blockOf) {
		return nil
	}
	df := p.dfOf(it)
	if df == 0 {
		return nil
	}
	return p.decodeAll(it, make([]txdb.TID, 0, df))
}

// MemBytes returns the resident size of the compressed inverted file,
// including the reusable scratch buffers.
func (p *postings) MemBytes() int64 {
	return int64(len(p.blob)) + int64(len(p.lastLen)) +
		int64(4*len(p.skipMax)) + int64(4*len(p.skipOff)) + int64(4*len(p.blockOf)) +
		int64(4*(cap(p.bufA)+cap(p.bufB))) + int64(4*postingBlockLen)
}

// count returns the exact local support of the itemset by intersecting its
// members' posting lists smallest-first. The smallest list is decoded once;
// every other list is intersected in compressed form, galloping over the
// per-block max-TID skip entries and decoding only blocks that can contain
// a match. The charged merge work is the cost of the classic linear merge —
// for ascending duplicate-free lists that cost has the closed form
// len(a) + len(b) − |a∩b| per merged pair, counting both the paired
// advances and the unpaired tails — so the simulated clock is unchanged by
// the physical-layout switch.
func (p *postings) count(x itemset.Itemset, m *mining.Metrics) int {
	refs := p.refs[:0]
	defer func() { p.refs = refs[:0] }()
	for _, it := range x {
		if int(it)+1 >= len(p.blockOf) {
			return 0
		}
		df := p.dfOf(it)
		if df == 0 {
			return 0
		}
		refs = append(refs, plistRef{item: it, df: df})
	}
	// Stable insertion sort by document frequency: itemsets are tiny
	// (k ≤ MaxK), and stability preserves the original tie order the
	// charging model was calibrated against.
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].df < refs[j-1].df; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
	cur, nxt := p.bufA, p.bufB
	acc := p.decodeAll(refs[0].item, cur[:0])
	ops := int64(0)
	for _, r := range refs[1:] {
		out := p.intersectItem(nxt[:0], acc, r.item)
		ops += int64(len(acc)) + int64(r.df) - int64(len(out))
		acc = out
		cur, nxt = nxt, cur
		if len(acc) == 0 {
			break
		}
	}
	m.Work.Charge(ops, 1)
	return len(acc)
}

// intersectItem appends to dst the intersection of the ascending
// duplicate-free list a with item it's compressed posting list. The
// accumulator is always the shorter side (lists are merged smallest-first
// and only shrink), so the walk iterates a and skips through it's blocks:
// an exponential probe over the skipMax entries brackets the first block
// that can hold the probe value, a binary search pins it, and only that
// block is decoded. A block stays decoded while consecutive probes land in
// it, so dense runs degrade gracefully to a linear merge.
func (p *postings) intersectItem(dst, a []txdb.TID, it itemset.Item) []txdb.TID {
	first, last := p.blockOf[it], p.blockOf[it+1]
	bi := first
	decoded := last // sentinel: no block decoded yet (bi < last always holds)
	var blk []txdb.TID
	cur := 0
	for _, v := range a {
		if p.skipMax[bi] < v {
			lo, step := bi, uint32(1)
			for lo+step < last && p.skipMax[lo+step] < v {
				lo += step
				step <<= 1
			}
			hi := lo + step
			if hi > last {
				hi = last
			}
			// skipMax[lo] < v <= skipMax[hi] (or hi == last); binary
			// search (lo, hi] for the first block that can contain v.
			s, e := lo+1, hi
			for s < e {
				mid := (s + e) >> 1
				if p.skipMax[mid] < v {
					s = mid + 1
				} else {
					e = mid
				}
			}
			bi = s
			if bi >= last {
				break
			}
		}
		if bi != decoded {
			blk = p.decodeBlock(it, bi)
			decoded = bi
			cur = 0
		}
		for cur < len(blk) && blk[cur] < v {
			cur++
		}
		if cur < len(blk) && blk[cur] == v {
			dst = append(dst, v)
			cur++
		}
	}
	return dst
}

// intersectInto appends the intersection of the ascending duplicate-free
// lists a and b (len(a) <= len(b)) to dst. When b dwarfs a it gallops:
// for each element of a, an exponential probe from the current position in
// b brackets the target, then a binary search pins it. This is the
// uncompressed reference intersection; the counting path uses
// intersectItem over the compressed blocks, and the equivalence tests
// check the two against each other.
func intersectInto(dst, a, b []txdb.TID) []txdb.TID {
	if len(b) >= gallopSkew*len(a) {
		j := 0
		for _, v := range a {
			if j >= len(b) {
				break
			}
			if b[j] < v {
				lo, step := j, 1
				for lo+step < len(b) && b[lo+step] < v {
					lo += step
					step <<= 1
				}
				hi := lo + step
				if hi > len(b) {
					hi = len(b)
				}
				// b[lo] < v <= b[hi] (or hi == len(b)); binary search (lo, hi].
				s, e := lo+1, hi
				for s < e {
					mid := int(uint(s+e) >> 1)
					if b[mid] < v {
						s = mid + 1
					} else {
						e = mid
					}
				}
				j = s
			}
			if j < len(b) && b[j] == v {
				dst = append(dst, v)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

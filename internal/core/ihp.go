package core

import (
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// MineIHP runs the Inverted Hashing and Pruning algorithm *without* the
// Multipass partitioning (Holt & Chung, IPL 2002 — the paper's reference
// [12], of which MIHP is the multipass refinement). MIHP degenerates to
// plain IHP when every frequent item lands in a single partition: one set
// of passes over the database with THT pruning, but candidate memory no
// longer bounded by partitioning. The A8 ablation uses it to separate the
// contributions of the two techniques.
func MineIHP(db *txdb.DB, opts mining.Options) (*mining.Result, error) {
	opts = opts.WithDefaults()
	opts.PartitionSize = 1 << 30
	res, err := MineMIHP(db, opts)
	if res != nil {
		res.Metrics.Algorithm = "ihp"
	}
	return res, err
}

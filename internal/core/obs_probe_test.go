package core

import "testing"

// TestPassProbeDisabledAllocs proves the zero-cost-when-disabled
// contract of the observability hooks on the counting hot path: with no
// recorder configured, a full begin/scan/end probe cycle performs no
// clock reads that matter and — checked here — zero heap allocations.
func TestPassProbeDisabledAllocs(t *testing.T) {
	var lm localMiner
	n := testing.AllocsPerRun(1000, func() {
		probe := lm.beginPass()
		probe.startScan()
		probe.endScan()
		lm.endPass(&probe, 2, 0)
	})
	if n != 0 {
		t.Fatalf("disabled pass probe allocates %.0f times per pass, want 0", n)
	}
}

// BenchmarkPassProbeDisabled reports the per-pass overhead of the
// disabled probe (expected: a few nanoseconds and 0 allocs/op).
func BenchmarkPassProbeDisabled(b *testing.B) {
	var lm localMiner
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		probe := lm.beginPass()
		probe.startScan()
		probe.endScan()
		lm.endPass(&probe, 2, 0)
	}
}

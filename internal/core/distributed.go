package core

import (
	"slices"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/tht"
	"pmihp/internal/txdb"
)

// Exported seams for the multi-process runtime (internal/distmine).
// A distributed node runs exactly the building blocks of MinePMIHP —
// the same local miner, the same poll counting, the same F1 and merge
// construction — with the in-process exchanges replaced by a transport.
// Keeping these as shared functions is what makes the byte-identity
// guarantee of the cluster runtime hold by construction rather than by
// parallel maintenance.

// LocalMineConfig configures one node's local MIHP passes against an
// externally assembled global THT cascade.
type LocalMineConfig struct {
	// Self is this node's segment index in the cascade.
	Self int
	// LocalMin is the node-local frequency threshold; GlobalPrune is the
	// threshold the cascaded THT bound must reach (the global minimum).
	LocalMin    int
	GlobalPrune int
	// Global is the cascaded THT view, segment Self being this node's own.
	Global *tht.Global
	// FreqItems lists the globally frequent items, ascending;
	// Partitions is Partition(FreqItems, opts.PartitionSize).
	FreqItems  []itemset.Item
	Partitions [][]itemset.Item
	// Emit receives every locally frequent k-itemset (k >= 2) with its
	// local support count. OnPass, when non-nil, runs after every
	// counting pass.
	Emit   func(set itemset.Itemset, count int)
	OnPass func()
}

// RunLocalMiner executes the node's partition passes, feeding locally
// frequent itemsets to cfg.Emit. It is the exact miner MinePMIHP runs
// in-process.
func RunLocalMiner(db *txdb.DB, opts mining.Options, cfg LocalMineConfig, m *mining.Metrics) {
	lm := &localMiner{
		db:         db,
		opts:       opts,
		minLocal:   cfg.LocalMin,
		minPrune:   cfg.GlobalPrune,
		global:     cfg.Global,
		self:       cfg.Self,
		freqItems:  cfg.FreqItems,
		partitions: cfg.Partitions,
		metrics:    m,
		emit:       cfg.Emit,
		onPass:     cfg.OnPass,
	}
	lm.run()
}

// PollCounter answers peers' support-count polls from an inverted
// posting file over the node's original (untrimmed) local database —
// the same counting path MinePMIHP's poll servers use. The posting file
// is built lazily at the first count, so nodes that are never polled
// pay nothing. Not safe for concurrent use; the transport serializes
// poll service.
type PollCounter struct {
	db        *txdb.DB
	workers   int
	threshold float64
	inv       *postings
}

// NewPollCounter returns a counter over db using up to workers goroutines
// for the one-time posting build and for batch counting. denseThreshold
// selects the hybrid posting layout (see mining.Options.DenseThreshold).
func NewPollCounter(db *txdb.DB, workers int, denseThreshold float64) *PollCounter {
	return &PollCounter{db: db, workers: workers, threshold: denseThreshold}
}

// Count returns the exact local support of the itemset, charging the
// intersection work (and the lazy build) to m.
func (p *PollCounter) Count(set itemset.Itemset, m *mining.Metrics) int {
	p.ensure(m)
	return p.inv.count(set, m)
}

// CountBatch counts a whole poll batch, sharding the itemsets across the
// counter's workers with per-shard scratch — the same kernel the in-process
// poll servers run. Per-shard merge charges fold into m in shard order, so
// results and simulated charges are identical to len(sets) Count calls.
func (p *PollCounter) CountBatch(sets []itemset.Itemset, m *mining.Metrics) []int {
	p.ensure(m)
	return countBatchSharded(p.inv, sets, p.workers, m)
}

func (p *PollCounter) ensure(m *mining.Metrics) {
	if p.inv == nil {
		p.inv = buildPostings(p.db, m, p.workers, p.threshold)
		m.NoteHeldBytes(p.inv.MemBytes())
	}
}

// FrequentItems derives the globally frequent 1-itemsets from the
// all-reduced global item counts: the membership array, the ascending
// item list, and the counted form that seeds the merged result.
func FrequentItems(globalCounts []int, globalMin int) (freq []bool, f1 []itemset.Item, f1Counted []itemset.Counted) {
	freq = make([]bool, len(globalCounts))
	for it, c := range globalCounts {
		if c >= globalMin {
			freq[it] = true
			f1 = append(f1, itemset.Item(it))
			f1Counted = append(f1Counted, itemset.Counted{
				Set: itemset.Itemset{itemset.Item(it)}, Count: c,
			})
		}
	}
	return freq, f1, f1Counted
}

// MergeFound combines the nodes' globally frequent itemsets with the
// frequent 1-itemsets into the final sorted result list. Several nodes
// may report the same itemset (with equal exact counts, or differing
// lower bounds in approx mode); entries are sorted by set and the best
// count per run of equals is kept. all is sorted in place.
func MergeFound(f1Counted []itemset.Counted, all []itemset.Counted) []itemset.Counted {
	slices.SortFunc(all, func(a, b itemset.Counted) int { return itemset.Compare(a.Set, b.Set) })
	frequent := append([]itemset.Counted(nil), f1Counted...)
	for i := 0; i < len(all); {
		best := all[i]
		j := i + 1
		for ; j < len(all) && itemset.Compare(all[j].Set, best.Set) == 0; j++ {
			if all[j].Count > best.Count {
				best.Count = all[j].Count
			}
		}
		frequent = append(frequent, best)
		i = j
	}
	itemset.SortCounted(frequent)
	return frequent
}

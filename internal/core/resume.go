package core

import (
	"fmt"

	"pmihp/internal/tht"
)

// Resume seams for the fault-tolerant cluster runtime. A resumed node
// re-enters the PMIHP protocol from a checkpoint instead of repeating
// the collectives that already completed; these helpers rebuild the
// exact state those collectives would have produced, so the mining that
// follows is byte-identical to an uninterrupted run (pinned by
// resume_test.go).

// ResumeCounts converts checkpointed global item counts back into the
// vector FrequentItems consumes, validating the item-universe width.
func ResumeCounts(counts []uint32, numItems int) ([]int, error) {
	if len(counts) != numItems {
		return nil, fmt.Errorf("core: checkpoint carries %d item counts, want %d", len(counts), numItems)
	}
	global := make([]int, numItems)
	for it, c := range counts {
		global[it] = int(c)
	}
	return global, nil
}

// SegmentsFromWire rebuilds the cascaded global THT view from
// checkpointed wire blobs (one per logical node, in node order). The
// wire form carries exactly the post-Retain counter rows, and masks are
// rebuilt locally, so the cascade bounds of the result equal those of
// the segments the original THT exchange delivered.
func SegmentsFromWire(blobs [][]byte) (*tht.Global, error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("core: checkpoint carries no THT segments")
	}
	segments := make([]*tht.Local, len(blobs))
	for i, b := range blobs {
		seg, err := tht.DecodeWire(b)
		if err != nil {
			return nil, fmt.Errorf("core: checkpointed THT segment %d: %w", i, err)
		}
		seg.BuildMasks()
		segments[i] = seg
	}
	return tht.NewGlobal(segments), nil
}

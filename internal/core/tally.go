package core

import (
	"sync"

	"pmihp/internal/itemset"
)

// PairTally records which nodes counted each candidate 2-itemset during a
// parallel run, as a bitmask per pair. It backs the paper's 8-week-corpus
// statistic: "only 21.7% of the candidate 2-itemsets were counted at more
// than one processing node." Supports up to 16 nodes.
type PairTally struct {
	mu sync.Mutex
	m  map[uint64]uint16
}

// NewPairTally returns an empty tally.
func NewPairTally() *PairTally {
	return &PairTally{m: make(map[uint64]uint16)}
}

func (t *PairTally) note(node int, key uint64) {
	t.mu.Lock()
	t.m[key] |= 1 << uint(node)
	t.mu.Unlock()
}

// noteBatch records a batch of same-size itemsets counted at a node; only
// 2-itemsets are tallied.
func (t *PairTally) noteBatch(node, k int, sets []itemset.Itemset) {
	if k != 2 {
		return
	}
	t.mu.Lock()
	for _, s := range sets {
		t.m[pairKey(s[0], s[1])] |= 1 << uint(node)
	}
	t.mu.Unlock()
}

// Distinct returns the number of distinct candidate pairs counted anywhere.
func (t *PairTally) Distinct() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// CountedAtLeast returns how many distinct pairs were counted at n or more
// nodes.
func (t *PairTally) CountedAtLeast(n int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := 0
	for _, mask := range t.m {
		if popcount16(mask) >= n {
			c++
		}
	}
	return c
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

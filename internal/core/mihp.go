package core

import (
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/tht"
	"pmihp/internal/txdb"
)

// MineMIHP runs the sequential Multipass with Inverted Hashing and Pruning
// algorithm (section 2.3) over the database and returns every frequent
// itemset with its exact support. The multipass partitioning bounds the
// candidate memory by partition, so MIHP does not take a memory budget; its
// observed peak is reported in the metrics instead.
func MineMIHP(db *txdb.DB, opts mining.Options) (*mining.Result, error) {
	opts = opts.WithDefaults()
	minCount := opts.MinCount(db.Len())
	res := &mining.Result{Metrics: mining.NewMetrics("mihp")}
	m := &res.Metrics

	// Pass 1 (pseudo-code lines 5-12): count items and build the THTs.
	local, counts := tht.BuildLocalShards(db, opts.THTEntries, opts.Workers())
	m.Passes++
	m.AddCandidates(1, db.NumItems())
	totalItems := db.TotalItems()
	// Each occurrence is read and hashed into the item's THT.
	m.Work.Charge(int64(totalItems), mining.CostScanItem+mining.CostTHTSlot)

	var f1 []itemset.Item
	freq := make(map[itemset.Item]bool)
	for it, c := range counts {
		if c >= minCount {
			f1 = append(f1, itemset.Item(it))
			freq[itemset.Item(it)] = true
			res.Frequent = append(res.Frequent, itemset.Counted{
				Set: itemset.Itemset{itemset.Item(it)}, Count: c,
			})
		}
	}
	local.Retain(func(it itemset.Item) bool { return freq[it] })
	local.BuildMasks()
	m.NoteCandidateBytes(int64(local.Bytes()))

	if opts.MaxK == 1 || len(f1) < 2 {
		itemset.SortCounted(res.Frequent)
		return res, nil
	}

	lm := &localMiner{
		db:         db,
		opts:       opts,
		minLocal:   minCount,
		minPrune:   minCount,
		global:     tht.NewGlobal([]*tht.Local{local}),
		self:       0,
		freqItems:  f1,
		partitions: Partition(f1, opts.PartitionSize),
		metrics:    m,
		emit: func(set itemset.Itemset, count int) {
			res.Frequent = append(res.Frequent, itemset.Counted{Set: set, Count: count})
		},
	}
	lm.run()

	itemset.SortCounted(res.Frequent)
	return res, nil
}

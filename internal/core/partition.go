// Package core implements the paper's contribution: the sequential MIHP
// algorithm (Multipass-Apriori combined with Inverted Hashing and Pruning
// and DHP-style transaction trimming, section 2.3) and its parallel version
// PMIHP (section 2.4), in which asynchronous per-node miners exchange TID
// hash tables, classify locally frequent itemsets into globally frequent
// itemsets and global candidates, and poll exactly the peers whose THT
// segments admit a positive count.
package core

import "pmihp/internal/itemset"

// Partition splits the frequent 1-itemsets, already in increasing (lexical)
// order, into partitions of at most size items each: P_1 holds the lexically
// smallest items, P_p the largest. MIHP processes them P_p first (section
// 2.1: itemsets under consideration for P_i have their minimum item in P_i,
// and processing high partitions first makes subset-infrequency pruning
// available when lower partitions extend into them).
//
// When the trailing partitions would be smaller than size/2 they are merged
// into their neighbour, implementing the paper's remark that remaining
// partitions can be merged "if the estimated number of candidate itemsets
// … is small" to save database scans.
func Partition(f1 []itemset.Item, size int) [][]itemset.Item {
	if size <= 0 {
		panic("core: Partition with non-positive size")
	}
	if len(f1) == 0 {
		return nil
	}
	var parts [][]itemset.Item
	for lo := 0; lo < len(f1); lo += size {
		hi := lo + size
		if hi > len(f1) {
			hi = len(f1)
		}
		parts = append(parts, f1[lo:hi])
	}
	// Merge a short final partition (the lexically largest items) into its
	// predecessor; it would otherwise cost a full extra round of passes for
	// few candidates.
	if n := len(parts); n >= 2 && len(parts[n-1]) < size/2 {
		merged := append(append([]itemset.Item{}, parts[n-2]...), parts[n-1]...)
		parts = append(parts[:n-2], merged)
	}
	return parts
}

// LocalMinCount returns the local minimum support count for a node holding
// localLen of dbLen transactions when the global minimum support count is
// globalMin: the floor of the proportional threshold, clamped to 1.
//
// Completeness (the pigeonhole argument behind the paper's "for an itemset
// to be globally frequent in the whole database it must be frequent in at
// least one local database") already holds at the tighter ceiling
// ⌈globalMin·localLen/dbLen⌉: an itemset below that ceiling at every node
// has global count strictly below globalMin. The floor is therefore also
// complete (a lower threshold only admits more locally frequent itemsets).
// We use the floor because the paper's measured behaviour implies it: its
// 2-node configuration exhibits the largest global-candidate polling phase
// (Figure 8), which can only happen when a node's threshold sits below the
// proportional share of the global minimum.
func LocalMinCount(globalMin, localLen, dbLen int) int {
	if dbLen <= 0 || localLen <= 0 {
		return 1
	}
	m := globalMin * localLen / dbLen
	if m < 1 {
		m = 1
	}
	return m
}

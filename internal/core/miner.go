package core

import (
	"pmihp/internal/hashtree"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/tht"
	"pmihp/internal/txdb"
)

// localMiner runs the MIHP partition passes over one (local) database. The
// sequential algorithm uses it with a single-segment THT cascade and equal
// local/global thresholds; each PMIHP node uses it with the full cascade,
// its node-local threshold, and an emit hook that classifies locally
// frequent itemsets (section 2.4 step 5).
type localMiner struct {
	db   *txdb.DB
	opts mining.Options

	// minLocal is the frequency threshold on the local database; minPrune is
	// the threshold the cascaded (global) THT bound must reach for a
	// candidate to stay viable. Sequentially the two coincide.
	minLocal int
	minPrune int

	global *tht.Global // cascaded THT view; segment self is this node's own
	self   int

	freqItems  []itemset.Item   // globally frequent items, ascending
	freqArr    []bool           // indexed by item: globally frequent?
	partitions [][]itemset.Item // Partition(freqItems, opts.PartitionSize)

	metrics *mining.Metrics

	// emit receives every locally frequent k-itemset (k >= 2) with its local
	// support count.
	emit func(set itemset.Itemset, count int)

	// onPass, when non-nil, is called after every counting pass (PMIHP uses
	// it to flush accumulated global-candidate batches and to fold work into
	// the node clock).
	onPass func()

	// notePair, when non-nil, receives the packed key of every candidate
	// 2-itemset this miner counts (the E9 experiment measures how many
	// candidates are counted at more than one node).
	notePair func(key uint64)

	// accum2 holds every locally frequent 2-itemset found so far across
	// partitions, packed for the specialized k=3 join.
	accum2 mining.PairSet

	// scratch counters for transaction trimming, indexed by item.
	hits      []int32
	hitsEpoch []int32
	epoch     int32
}

// run executes all partition passes.
func (lm *localMiner) run() {
	lm.freqArr = make([]bool, lm.db.NumItems())
	for _, it := range lm.freqItems {
		lm.freqArr[it] = true
	}
	lm.hits = make([]int32, lm.db.NumItems())
	lm.hitsEpoch = make([]int32, lm.db.NumItems())
	lm.accum2 = make(mining.PairSet)

	// Accumulated locally frequent itemsets per size, across partitions
	// (F_k in the pseudo-code, initialized once and extended per partition).
	accum := make(map[int]*itemset.Set)

	for m := len(lm.partitions) - 1; m >= 0; m-- {
		lm.minePartition(lm.partitions[m], accum)
	}
}

// minePartition discovers every locally frequent itemset whose minimum item
// lies in part (the items of partition P_m), extending into the previously
// processed higher partitions via the accumulated frequent sets.
func (lm *localMiner) minePartition(part []itemset.Item, accum map[int]*itemset.Set) {
	work := lm.partitionWork(part[0])
	prevM := lm.pass2(part, work, accum)

	for k := 3; len(prevM) >= 1 && (lm.opts.MaxK == 0 || k <= lm.opts.MaxK); k++ {
		var cands []itemset.Itemset
		var potential, prunedSub int
		if k == 3 {
			// Specialized join over packed pair keys; accum2 spans all
			// partitions processed so far, as line 24's subset check needs.
			cands, potential, prunedSub = mining.Gen3(prevM, lm.accum2)
		} else {
			cands, potential, prunedSub = mining.AprioriGen(prevM, accum[k-1])
		}
		lm.metrics.Work.Charge(int64(potential), mining.CostCandidateGen)
		lm.metrics.PrunedBySubset += int64(prunedSub)

		// IHP pruning (lines 27-29): drop candidates whose THT bound shows
		// they cannot reach the pruning threshold.
		kept := cands[:0]
		for _, c := range cands {
			ok := lm.boundViable(c)
			if ok {
				kept = append(kept, c)
			} else {
				lm.metrics.PrunedByTHT++
			}
		}
		cands = kept
		if len(cands) == 0 {
			break
		}

		lm.metrics.AddCandidates(k, len(cands))
		lm.metrics.NoteCandidateBytes(mining.CandidateBytes(k, len(cands)))

		tree := hashtree.Build(k, cands)
		lm.metrics.Work.Charge(int64(len(cands)), mining.CostTreeInsert)
		lm.countPassTree(tree, work, k)
		lm.metrics.Work.Charge(tree.WalkCost(), 1)

		prevM = prevM[:0]
		acc := lm.accumFor(accum, k)
		for i := 0; i < tree.Len(); i++ {
			if c := tree.Count(i); c >= lm.minLocal {
				set := tree.Candidate(i)
				lm.emit(set, c)
				acc.Add(set)
				prevM = append(prevM, set)
			}
		}
		itemset.Sort(prevM)
		if lm.onPass != nil {
			lm.onPass()
		}
	}
}

// partitionWork builds the per-partition working database: transactions
// restricted to globally frequent items at or above the partition's first
// item (items below the current partition belong to lower partitions and
// cannot occur in this partition's candidates; section 2.1). The filtering
// read is the pass-2 scan cost over the full transactions.
func (lm *localMiner) partitionWork(first itemset.Item) *txdb.Work {
	work := txdb.NewWork(lm.db)
	scanned := int64(0)
	work.EachIndexed(func(i int, _ txdb.TID, items itemset.Itemset) {
		scanned += int64(len(items))
		filtered := make(itemset.Itemset, 0, len(items))
		for _, it := range items {
			if it >= first && lm.freqArr[it] {
				filtered = append(filtered, it)
			}
		}
		if len(filtered) < 2 {
			work.Prune(i)
			return
		}
		work.Trim(i, filtered)
	})
	lm.metrics.Work.Charge(scanned, mining.CostScanItem)
	return work
}

// pass2 generates, prunes, and counts the candidate 2-itemsets of the
// partition: pairs whose first item is in part and whose second is any
// larger frequent item. It returns the locally frequent 2-itemsets of the
// partition in lexicographic order.
func (lm *localMiner) pass2(part []itemset.Item, work *txdb.Work, accum map[int]*itemset.Set) []itemset.Itemset {
	inPart := make(map[itemset.Item]bool, len(part))
	for _, it := range part {
		inPart[it] = true
	}
	selfSeg := lm.global.Segment(lm.self)

	// Candidate generation with IHP pair pruning.
	cands := make(map[uint64]int32) // pair key -> candidate index
	var keys []uint64
	pairsConsidered := int64(0)
	slotsTotal := int64(0)
	for _, a := range part {
		if selfSeg.Row(a) == nil {
			continue // item absent from the local database
		}
		for _, b := range lm.freqAbove(a) {
			if selfSeg.Row(b) == nil {
				continue
			}
			pairsConsidered++
			ok, slots := selfSeg.PairBoundReachesItems(a, b, lm.minLocal)
			slotsTotal += int64(slots)
			if ok && lm.global.NumSegments() > 1 {
				var gslots int
				ok, gslots = lm.global.PairBoundReaches(a, b, lm.minPrune)
				slotsTotal += int64(gslots)
			}
			if !ok {
				lm.metrics.PrunedByTHT++
				continue
			}
			cands[pairKey(a, b)] = int32(len(keys))
			keys = append(keys, pairKey(a, b))
		}
	}
	lm.metrics.Work.Charge(pairsConsidered, 1)
	lm.metrics.Work.Charge(slotsTotal, mining.CostTHTSlot)
	lm.metrics.AddCandidates(2, len(keys))
	lm.metrics.NoteCandidateBytes(mining.CandidateBytes(2, len(keys)))
	if lm.notePair != nil {
		for _, k := range keys {
			lm.notePair(k)
		}
	}

	counts := make([]int32, len(keys))
	lm.countPass2(cands, counts, inPart, work)

	var frequent []itemset.Itemset
	for i, key := range keys {
		if int(counts[i]) >= lm.minLocal {
			set := pairSet(key)
			lm.emit(set, int(counts[i]))
			lm.accum2.Add(set[0], set[1])
			frequent = append(frequent, set)
		}
	}
	itemset.Sort(frequent)
	if lm.onPass != nil {
		lm.onPass()
	}
	return frequent
}

// countPass2 scans the working database once, counting candidate pairs and
// applying the weakened transaction trimming/pruning rule of section 2.3.
func (lm *localMiner) countPass2(cands map[uint64]int32, counts []int32, inPart map[itemset.Item]bool, work *txdb.Work) {
	lm.metrics.Passes++
	treeWork, hitsN, scanned := int64(0), int64(0), int64(0)
	trim := !lm.opts.DisableTrimming
	work.EachIndexed(func(ti int, _ txdb.TID, items itemset.Itemset) {
		scanned += int64(len(items))
		lm.epoch++
		matched := 0
		txPairs := 0
		for i := 0; i < len(items); i++ {
			if !inPart[items[i]] {
				continue
			}
			for j := i + 1; j < len(items); j++ {
				txPairs++
				idx, ok := cands[pairKey(items[i], items[j])]
				if !ok {
					continue
				}
				counts[idx]++
				hitsN++
				matched++
				if trim {
					lm.bumpHit(items[i])
					lm.bumpHit(items[j])
				}
			}
		}
		// Charged as the equivalent hash-tree scan over this partition's
		// candidate pairs (see mining.Pass2TreeCharge); txPairs bounds the
		// distinct leaf paths this transaction can reach.
		flen := pairCountToFlen(txPairs)
		treeWork += mining.Pass2TreeCharge(flen, len(cands))
		if trim {
			lm.applyTrim(ti, items, inPart, matched, 2, work)
		}
	})
	lm.metrics.Work.Charge(scanned, mining.CostScanItem)
	lm.metrics.Work.Charge(treeWork, 1)
	lm.metrics.Work.Charge(hitsN, mining.CostCandidateHit)
}

// pairCountToFlen inverts n*(n-1)/2 approximately, recovering the effective
// frequent-item count Pass2TreeCharge expects from a pair count.
func pairCountToFlen(pairs int) int {
	if pairs <= 0 {
		return 0
	}
	n := 2
	for n*(n-1)/2 < pairs {
		n++
	}
	return n
}

// countPassTree scans the working database with a hash tree for pass k >= 3,
// again applying the trimming rule.
func (lm *localMiner) countPassTree(tree *hashtree.Tree, work *txdb.Work, k int) {
	lm.metrics.Passes++
	hitsN, scanned := int64(0), int64(0)
	trim := !lm.opts.DisableTrimming
	work.EachIndexed(func(ti int, _ txdb.TID, items itemset.Itemset) {
		scanned += int64(len(items))
		lm.epoch++
		matched := 0
		tree.VisitTx(items, func(c int) {
			tree.Counts()[c]++
			hitsN++
			matched++
			if trim {
				for _, it := range tree.Candidate(c) {
					lm.bumpHit(it)
				}
			}
		})
		if trim {
			lm.applyTrimTree(ti, items, matched, k, work)
		}
	})
	lm.metrics.Work.Charge(scanned, mining.CostScanItem)
	lm.metrics.Work.Charge(hitsN, mining.CostCandidateHit)
}

// bumpHit increments the per-transaction hit count of an item, using epochs
// to avoid clearing the scratch array between transactions.
func (lm *localMiner) bumpHit(it itemset.Item) {
	if lm.hitsEpoch[it] != lm.epoch {
		lm.hitsEpoch[it] = lm.epoch
		lm.hits[it] = 0
	}
	lm.hits[it]++
}

func (lm *localMiner) hitCount(it itemset.Item) int32 {
	if lm.hitsEpoch[it] != lm.epoch {
		return 0
	}
	return lm.hits[it]
}

// applyTrim implements the weakened trimming rule after pass k over a
// transaction: a current-partition item survives only as a member of at
// least k matched candidates, any other item as a member of at least one;
// the transaction itself survives only with at least k matched candidates
// (every candidate of a partition pass contains a partition item, so the
// paper's "candidates containing one or more partition items" is all of
// them).
func (lm *localMiner) applyTrim(ti int, items itemset.Itemset, inPart map[itemset.Item]bool, matched, k int, work *txdb.Work) {
	if matched < k {
		work.Prune(ti)
		lm.metrics.PrunedTx++
		return
	}
	kept := make(itemset.Itemset, 0, len(items))
	for _, it := range items {
		h := lm.hitCount(it)
		need := int32(1)
		if inPart[it] {
			need = int32(k)
		}
		if h >= need {
			kept = append(kept, it)
		} else {
			lm.metrics.TrimmedItems++
		}
	}
	if len(kept) < k+1 {
		work.Prune(ti)
		lm.metrics.PrunedTx++
		return
	}
	work.Trim(ti, kept)
}

// applyTrimTree is applyTrim for tree passes, where partition membership of
// an item is implied by it having accumulated k hits (only partition items
// can be a candidate's minimum, but non-minimum items may also reach k; the
// weak rule only requires one hit for them, so the membership test reduces
// to hit count >= 1 plus the transaction-level check).
func (lm *localMiner) applyTrimTree(ti int, items itemset.Itemset, matched, k int, work *txdb.Work) {
	if matched < k {
		work.Prune(ti)
		lm.metrics.PrunedTx++
		return
	}
	kept := make(itemset.Itemset, 0, len(items))
	for _, it := range items {
		if lm.hitCount(it) >= 1 {
			kept = append(kept, it)
		} else {
			lm.metrics.TrimmedItems++
		}
	}
	if len(kept) < k+1 {
		work.Prune(ti)
		lm.metrics.PrunedTx++
		return
	}
	work.Trim(ti, kept)
}

// boundViable applies the IHP bound checks to a candidate of size >= 3.
func (lm *localMiner) boundViable(c itemset.Itemset) bool {
	ok, slots := lm.global.Segment(lm.self).BoundReaches(c, lm.minLocal)
	lm.metrics.Work.Charge(int64(slots), mining.CostTHTSlot)
	if ok && lm.global.NumSegments() > 1 {
		var gslots int
		ok, gslots = lm.global.BoundReaches(c, lm.minPrune)
		lm.metrics.Work.Charge(int64(gslots), mining.CostTHTSlot)
	}
	return ok
}

func (lm *localMiner) accumFor(accum map[int]*itemset.Set, k int) *itemset.Set {
	s := accum[k]
	if s == nil {
		s = itemset.NewSet()
		accum[k] = s
	}
	return s
}

// freqAbove returns the globally frequent items strictly greater than a.
func (lm *localMiner) freqAbove(a itemset.Item) []itemset.Item {
	lo, hi := 0, len(lm.freqItems)
	for lo < hi {
		mid := (lo + hi) / 2
		if lm.freqItems[mid] <= a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lm.freqItems[lo:]
}

func pairKey(a, b itemset.Item) uint64 { return uint64(a)<<32 | uint64(b) }

func pairSet(key uint64) itemset.Itemset {
	return itemset.Itemset{itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)}
}

package core

import (
	"math"
	"sort"
	"time"

	"pmihp/internal/hashtree"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/tht"
	"pmihp/internal/txdb"
)

// localMiner runs the MIHP partition passes over one (local) database. The
// sequential algorithm uses it with a single-segment THT cascade and equal
// local/global thresholds; each PMIHP node uses it with the full cascade,
// its node-local threshold, and an emit hook that classifies locally
// frequent itemsets (section 2.4 step 5).
//
// The counting kernels are allocation-free on their hot paths: candidate
// pairs live in a flat open-addressing table, partition membership in a
// plain bool array, per-transaction filtered item lists in a reusable
// arena, and trimming compacts item lists in place. Counting scans shard
// their transaction range across Options.IntraNodeWorkers OS-level workers
// with per-shard count arrays merged in shard order, so results and
// simulated-clock charges are identical for every worker count.
type localMiner struct {
	db   *txdb.DB
	opts mining.Options

	// minLocal is the frequency threshold on the local database; minPrune is
	// the threshold the cascaded (global) THT bound must reach for a
	// candidate to stay viable. Sequentially the two coincide.
	minLocal int
	minPrune int

	global *tht.Global // cascaded THT view; segment self is this node's own
	self   int

	// pairScan resolves pass-2 pair-bound row lookups once per run; posOf
	// maps a frequent item to its position in freqItems (the scan universe);
	// selfPresent lists, ascending, the freqItems positions with a row in
	// this node's own segment — the only possible pass-2 partners.
	pairScan    *tht.PairScan
	posOf       []int32
	selfPresent []int32

	freqItems  []itemset.Item   // globally frequent items, ascending
	freqArr    []bool           // indexed by item: globally frequent?
	partitions [][]itemset.Item // Partition(freqItems, opts.PartitionSize)

	metrics *mining.Metrics

	// curPart is the partition index currently being mined, stamped on the
	// observability pass events (opts.Obs).
	curPart int

	// emit receives every locally frequent k-itemset (k >= 2) with its local
	// support count.
	emit func(set itemset.Itemset, count int)

	// onPass, when non-nil, is called after every counting pass (PMIHP uses
	// it to flush accumulated global-candidate batches and to fold work into
	// the node clock).
	onPass func()

	// notePair, when non-nil, receives the packed key of every candidate
	// 2-itemset this miner counts (the E9 experiment measures how many
	// candidates are counted at more than one node).
	notePair func(key uint64)

	// accum2 holds every locally frequent 2-itemset found so far across
	// partitions, packed for the specialized k=3 join. nil when MaxK < 3
	// makes the join unreachable.
	accum2 *mining.PairTable

	// workers is the resolved intra-node worker bound; shards holds one
	// scratch state per worker, reused across passes; genShards is the
	// pass-2 generation scratch (forked pair scans and private key lists),
	// grown on demand because generation shards over partition items, not
	// transactions.
	workers   int
	shards    []*minerShard
	genShards []*genShard
	genSegs   []genSeg

	// Reusable pass-2 state: the candidate pair table, its key list and
	// count array, and the partition-membership array.
	pairTab *mining.PairTable
	keys    []uint64
	counts2 []int32
	inPart  []bool

	// work is the single CSR working copy reused across partitions: each
	// partition refills its arena with the filtered item lists (so filling
	// never allocates), and trimming compacts them in place; setArena backs
	// emitted 2-itemsets, which outlive the pass.
	work     *txdb.Work
	setArena mining.Arena
}

// minerShard is the per-worker scratch of a sharded counting scan: the
// transaction-trimming hit counters, a private candidate count array, the
// hash-tree visit state, and the work accumulators that merge — in shard
// order — into the miner's metrics after the shards join.
type minerShard struct {
	hits      []int32
	hitsEpoch []int32
	epoch     int32

	counts []int32
	visit  hashtree.VisitState

	scanned  int64
	treeWork int64
	hitsN    int64
	trimmed  int64
	prunedTx int64
}

// genShard is the per-worker scratch of the sharded pass-2 candidate
// generation: a fork of the run's PairScan (shared row tables, private
// hoist register), the candidate keys of every chunk this worker claimed,
// and its work tallies. Key order within one worker follows claim order,
// which is racy — so each chunk's keys are recorded as a segment tagged
// with the chunk's partition-range start, and the merge re-orders segments
// by range start. Chunks tile the partition range, so the ordered
// concatenation — and with it every downstream count, charge, and emitted
// set — is identical to the serial generation.
type genShard struct {
	scan            *tht.PairScan
	keys            []uint64
	segs            []keySeg
	pairsConsidered int64
	slotsTotal      int64
	prunedTHT       int64
}

// keySeg is one chunk's slice of a genShard's key list: keys[start:end]
// were generated for the partition-item range starting at lo.
type keySeg struct {
	lo         int
	start, end int
}

// genSeg is a merge-time reference to one chunk's keys, sortable by the
// chunk's range start.
type genSeg struct {
	lo   int
	keys []uint64
}

func (sh *minerShard) reset(numItems int) {
	if len(sh.hits) < numItems {
		sh.hits = make([]int32, numItems)
		sh.hitsEpoch = make([]int32, numItems)
	}
	sh.scanned, sh.treeWork, sh.hitsN, sh.trimmed, sh.prunedTx = 0, 0, 0, 0, 0
}

// countsFor returns the shard's private count array, zeroed, with n slots.
func (sh *minerShard) countsFor(n int) []int32 {
	if cap(sh.counts) < n {
		sh.counts = make([]int32, n)
	} else {
		sh.counts = sh.counts[:n]
		clear(sh.counts)
	}
	return sh.counts
}

// run executes all partition passes.
func (lm *localMiner) run() {
	numItems := lm.db.NumItems()
	lm.freqArr = make([]bool, numItems)
	for _, it := range lm.freqItems {
		lm.freqArr[it] = true
	}
	lm.inPart = make([]bool, numItems)
	lm.posOf = make([]int32, numItems)
	for i, it := range lm.freqItems {
		lm.posOf[it] = int32(i)
	}
	lm.pairScan = lm.global.NewPairScan(lm.freqItems)
	for pos := range lm.freqItems {
		if lm.pairScan.Present(lm.self, pos) {
			lm.selfPresent = append(lm.selfPresent, int32(pos))
		}
	}
	if lm.opts.MaxK == 0 || lm.opts.MaxK >= 3 {
		lm.accum2 = mining.NewPairTable(0)
	}
	lm.pairTab = mining.NewPairTable(0)

	lm.workers = lm.opts.Workers()
	lm.shards = make([]*minerShard, mining.NumShards(lm.db.Len(), lm.workers))
	for i := range lm.shards {
		lm.shards[i] = &minerShard{}
	}

	lm.work = txdb.NewWork(lm.db)
	lm.metrics.NoteHeldBytes(lm.db.MemBytes() +
		lm.global.Segment(lm.self).MemBytes() + lm.work.MemBytes())

	// Accumulated locally frequent itemsets per size, across partitions
	// (F_k in the pseudo-code, initialized once and extended per partition).
	accum := make(map[int]*itemset.Set)

	for m := len(lm.partitions) - 1; m >= 0; m-- {
		lm.curPart = m
		lm.minePartition(lm.partitions[m], accum)
	}
}

// passProbe snapshots the miner's metrics at the start of one counting
// pass (candidate generation through scan) so the pass's observability
// event can report deltas. The zero probe — returned when observability
// is disabled — makes every method a no-op: no clock reads, no event
// construction, no allocations on the counting path.
type passProbe struct {
	rec                                     *obs.Recorder
	prunedTHT, prunedSub, trimmed, prunedTx int64
	scanT0                                  time.Time
	scanSeconds                             float64
}

// beginPass opens a probe at the start of a pass's candidate generation.
func (lm *localMiner) beginPass() passProbe {
	r := lm.opts.Obs
	if !r.Enabled() {
		return passProbe{}
	}
	m := lm.metrics
	return passProbe{
		rec:       r,
		prunedTHT: m.PrunedByTHT,
		prunedSub: m.PrunedBySubset,
		trimmed:   m.TrimmedItems,
		prunedTx:  m.PrunedTx,
	}
}

func (p *passProbe) startScan() {
	if p.rec.Enabled() {
		p.scanT0 = time.Now()
	}
}

func (p *passProbe) endScan() {
	if p.rec.Enabled() {
		p.scanSeconds = time.Since(p.scanT0).Seconds()
	}
}

// endPass emits the pass event. Only executed passes emit: a generation
// whose candidates all prune away never scans, and its (rare) pruning
// deltas stay out of the trace just as they stay out of Metrics.Passes.
func (lm *localMiner) endPass(p *passProbe, k, candidates int) {
	if !p.rec.Enabled() {
		return
	}
	m := lm.metrics
	p.rec.Pass(obs.PassEvent{
		Node:         lm.self,
		Partition:    lm.curPart,
		K:            k,
		Candidates:   candidates,
		PrunedTHT:    m.PrunedByTHT - p.prunedTHT,
		PrunedSubset: m.PrunedBySubset - p.prunedSub,
		TrimmedItems: m.TrimmedItems - p.trimmed,
		PrunedTx:     m.PrunedTx - p.prunedTx,
		ScanSeconds:  p.scanSeconds,
	})
}

// minePartition discovers every locally frequent itemset whose minimum item
// lies in part (the items of partition P_m), extending into the previously
// processed higher partitions via the accumulated frequent sets.
func (lm *localMiner) minePartition(part []itemset.Item, accum map[int]*itemset.Set) {
	work := lm.partitionWork(part[0])
	prevM := lm.pass2(part, work, accum)

	for k := 3; len(prevM) >= 1 && (lm.opts.MaxK == 0 || k <= lm.opts.MaxK); k++ {
		probe := lm.beginPass()
		var cands []itemset.Itemset
		var potential, prunedSub int
		if k == 3 {
			// Specialized join over packed pair keys; accum2 spans all
			// partitions processed so far, as line 24's subset check needs.
			cands, potential, prunedSub = mining.Gen3(prevM, lm.accum2)
		} else {
			cands, potential, prunedSub = mining.AprioriGen(prevM, accum[k-1])
		}
		lm.metrics.Work.Charge(int64(potential), mining.CostCandidateGen)
		lm.metrics.PrunedBySubset += int64(prunedSub)

		// IHP pruning (lines 27-29): drop candidates whose THT bound shows
		// they cannot reach the pruning threshold.
		kept := cands[:0]
		for _, c := range cands {
			ok := lm.boundViable(c)
			if ok {
				kept = append(kept, c)
			} else {
				lm.metrics.PrunedByTHT++
			}
		}
		cands = kept
		if len(cands) == 0 {
			break
		}

		lm.metrics.AddCandidates(k, len(cands))
		lm.metrics.NoteCandidateBytes(mining.CandidateBytes(k, len(cands)))

		tree := hashtree.Build(k, cands)
		lm.metrics.Work.Charge(int64(len(cands)), mining.CostTreeInsert)
		probe.startScan()
		lm.countPassTree(tree, work, k)
		probe.endScan()
		lm.metrics.Work.Charge(tree.WalkCost(), 1)

		prevM = prevM[:0]
		// Extending the accumulated F_k is only useful while a later pass
		// can read it: candidate generation for k+1 consults accum[k].
		extend := lm.opts.MaxK == 0 || k < lm.opts.MaxK
		var acc *itemset.Set
		if extend {
			acc = lm.accumFor(accum, k)
		}
		for i := 0; i < tree.Len(); i++ {
			if c := tree.Count(i); c >= lm.minLocal {
				set := tree.Candidate(i)
				lm.emit(set, c)
				if extend {
					acc.Add(set)
				}
				prevM = append(prevM, set)
			}
		}
		itemset.Sort(prevM)
		lm.endPass(&probe, k, len(cands))
		if lm.onPass != nil {
			lm.onPass()
		}
	}
}

// partitionWork refills the working database for one partition:
// transactions restricted to globally frequent items at or above the
// partition's first item (items below the current partition belong to lower
// partitions and cannot occur in this partition's candidates; section 2.1).
// The filtering read is the pass-2 scan cost over the full transactions.
// Filtered item lists stream straight from the database's CSR backing into
// the Work's arena; trimming later compacts them in place, so a partition's
// passes allocate no per-transaction lists at all.
func (lm *localMiner) partitionWork(first itemset.Item) *txdb.Work {
	scanned := lm.work.ResetFiltered(first, lm.freqArr, 2)
	lm.metrics.Work.Charge(scanned, mining.CostScanItem)
	return lm.work
}

// pass2 generates, prunes, and counts the candidate 2-itemsets of the
// partition: pairs whose first item is in part and whose second is any
// larger frequent item. It returns the locally frequent 2-itemsets of the
// partition in lexicographic order.
func (lm *localMiner) pass2(part []itemset.Item, work *txdb.Work, accum map[int]*itemset.Set) []itemset.Itemset {
	probe := lm.beginPass()
	inPart := lm.inPart
	for _, it := range part {
		inPart[it] = true
	}
	defer func() {
		for _, it := range part {
			inPart[it] = false
		}
	}()
	// Candidate generation with IHP pair pruning. All row lookups go
	// through the run's PairScan: the self-segment check and the cascaded
	// check evaluate by matrix row number, materializing counter rows only
	// when the mask fast path cannot decide. The outer-item loop runs on
	// the chunk-queue scheduler — each worker walks the chunks it claims
	// with a forked scan and records each chunk's keys as a segment, and
	// the merge re-orders segments by partition-range start, so the key
	// sequence (and every tally, being a sum) is the serial one.
	lm.pairTab.Reset()
	cands := lm.pairTab // pair key -> candidate index
	nGen := mining.NumShards(len(part), lm.workers)
	for len(lm.genShards) < nGen {
		lm.genShards = append(lm.genShards, &genShard{scan: lm.pairScan.Fork()})
	}
	for s := 0; s < nGen; s++ {
		g := lm.genShards[s]
		g.keys = g.keys[:0]
		g.segs = g.segs[:0]
		g.pairsConsidered, g.slotsTotal, g.prunedTHT = 0, 0, 0
	}
	self := lm.self
	cascade := lm.global.NumSegments() > 1
	mining.RunShards(len(part), lm.workers, func(s, glo, ghi int) {
		g := lm.genShards[s]
		ps := g.scan
		segStart := len(g.keys)
		for _, a := range part[glo:ghi] {
			aPos := int(lm.posOf[a])
			if !ps.Present(self, aPos) {
				continue // item absent from the local database
			}
			ps.Hoist(aPos)
			ss := ps.Seg(self)
			// Locally absent items cannot form a countable pair (the seed
			// path skipped them pair by pair, uncharged); jump straight to
			// the locally present positions above a.
			lo, hi := 0, len(lm.selfPresent)
			for lo < hi {
				mid := (lo + hi) / 2
				if int(lm.selfPresent[mid]) <= aPos {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for _, p32 := range lm.selfPresent[lo:] {
				bPos := int(p32)
				b := lm.freqItems[bPos]
				g.pairsConsidered++
				ok, slots := ss.BoundReaches(bPos, lm.minLocal)
				g.slotsTotal += int64(slots)
				if ok && cascade {
					var gslots int
					ok, gslots = ps.BoundReaches(bPos, lm.minPrune)
					g.slotsTotal += int64(gslots)
				}
				if !ok {
					g.prunedTHT++
					continue
				}
				g.keys = append(g.keys, pairKey(a, b))
			}
		}
		g.segs = append(g.segs, keySeg{lo: glo, start: segStart, end: len(g.keys)})
	})
	segs := lm.genSegs[:0]
	pairsConsidered := int64(0)
	slotsTotal := int64(0)
	for s := 0; s < nGen; s++ {
		g := lm.genShards[s]
		for _, ks := range g.segs {
			segs = append(segs, genSeg{lo: ks.lo, keys: g.keys[ks.start:ks.end]})
		}
		pairsConsidered += g.pairsConsidered
		slotsTotal += g.slotsTotal
		lm.metrics.PrunedByTHT += g.prunedTHT
	}
	// Chunk range starts are unique and tile [0, len(part)), so the sorted
	// concatenation is the serial key order.
	sort.Slice(segs, func(i, j int) bool { return segs[i].lo < segs[j].lo })
	lm.genSegs = segs
	keys := lm.keys[:0]
	for _, sg := range segs {
		keys = append(keys, sg.keys...)
	}
	for i, key := range keys {
		cands.Put(key, int32(i))
	}
	lm.metrics.Work.Charge(pairsConsidered, 1)
	lm.metrics.Work.Charge(slotsTotal, mining.CostTHTSlot)
	lm.metrics.AddCandidates(2, len(keys))
	lm.metrics.NoteCandidateBytes(mining.CandidateBytes(2, len(keys)))
	if lm.notePair != nil {
		for _, k := range keys {
			lm.notePair(k)
		}
	}

	var counts []int32
	if cap(lm.counts2) < len(keys) {
		lm.counts2 = make([]int32, len(keys))
	} else {
		lm.counts2 = lm.counts2[:len(keys)]
		clear(lm.counts2)
	}
	counts = lm.counts2
	probe.startScan()
	lm.countPass2(cands, counts, inPart, work)
	probe.endScan()

	var frequent []itemset.Itemset
	for i, key := range keys {
		if int(counts[i]) >= lm.minLocal {
			set := lm.pairSet(key)
			lm.emit(set, int(counts[i]))
			if lm.accum2 != nil {
				lm.accum2.AddPair(set[0], set[1])
			}
			frequent = append(frequent, set)
		}
	}
	lm.keys = keys
	itemset.Sort(frequent)
	lm.endPass(&probe, 2, len(keys))
	if lm.onPass != nil {
		lm.onPass()
	}
	return frequent
}

// countPass2 scans the working database once, counting candidate pairs and
// applying the weakened transaction trimming/pruning rule of section 2.3.
// The scan runs on the chunk-queue scheduler across the miner's worker
// pool; each worker accumulates into its private count array across every
// chunk it claims, and per-worker arrays and tallies merge by integer sums,
// so totals are identical to the serial scan at any worker count.
func (lm *localMiner) countPass2(cands *mining.PairTable, counts []int32, inPart []bool, work *txdb.Work) {
	lm.metrics.Passes++
	trim := !lm.opts.DisableTrimming
	numItems := lm.db.NumItems()
	n := work.Len()
	nShards := mining.NumShards(n, lm.workers)
	view := work.View()
	// Per-worker scratch resets up front: under the chunk scheduler fn runs
	// once per claimed chunk, so it must only accumulate.
	for s := 0; s < nShards; s++ {
		sh := lm.shards[s]
		sh.reset(numItems)
		if nShards > 1 {
			sh.countsFor(len(counts))
		}
	}
	mining.RunShards(n, lm.workers, func(s, lo, hi int) {
		sh := lm.shards[s]
		cnt := counts
		if nShards > 1 {
			cnt = sh.counts
		}
		for ti := lo; ti < hi; ti++ {
			if !view.Active[ti] {
				continue
			}
			items := view.Items(ti)
			sh.scanned += int64(len(items))
			sh.epoch++
			matched := 0
			txPairs := 0
			for i := 0; i < len(items); i++ {
				if !inPart[items[i]] {
					continue
				}
				for j := i + 1; j < len(items); j++ {
					txPairs++
					idx, ok := cands.Get(pairKey(items[i], items[j]))
					if !ok {
						continue
					}
					cnt[idx]++
					sh.hitsN++
					matched++
					if trim {
						sh.bumpHit(items[i])
						sh.bumpHit(items[j])
					}
				}
			}
			// Charged as the equivalent hash-tree scan over this partition's
			// candidate pairs (see mining.Pass2TreeCharge); txPairs bounds the
			// distinct leaf paths this transaction can reach.
			flen := pairCountToFlen(txPairs)
			sh.treeWork += mining.Pass2TreeCharge(flen, cands.Len())
			if trim {
				sh.applyTrim(ti, items, inPart, matched, 2, work)
			}
		}
	})
	lm.mergeShards(nShards, counts, nil, work)
}

// countPassTree scans the working database with a hash tree for pass k >= 3,
// again applying the trimming rule, sharded like countPass2.
func (lm *localMiner) countPassTree(tree *hashtree.Tree, work *txdb.Work, k int) {
	lm.metrics.Passes++
	trim := !lm.opts.DisableTrimming
	numItems := lm.db.NumItems()
	n := work.Len()
	nShards := mining.NumShards(n, lm.workers)
	view := work.View()
	for s := 0; s < nShards; s++ {
		sh := lm.shards[s]
		sh.reset(numItems)
		sh.visit.Bind(tree)
		if nShards > 1 {
			sh.countsFor(tree.Len())
		}
	}
	treeCounts := tree.Counts()
	mining.RunShards(n, lm.workers, func(s, lo, hi int) {
		sh := lm.shards[s]
		var cnt []int32
		if nShards > 1 {
			cnt = sh.counts
		}
		for ti := lo; ti < hi; ti++ {
			if !view.Active[ti] {
				continue
			}
			items := view.Items(ti)
			sh.scanned += int64(len(items))
			sh.epoch++
			matched := 0
			tree.VisitTxState(items, &sh.visit, func(c int) {
				if cnt != nil {
					cnt[c]++
				} else {
					treeCounts[c]++
				}
				sh.hitsN++
				matched++
				if trim {
					for _, it := range tree.Candidate(c) {
						sh.bumpHit(it)
					}
				}
			})
			if trim {
				sh.applyTrimTree(ti, items, matched, k, work)
			}
		}
	})
	walk := int64(0)
	for s := 0; s < nShards; s++ {
		sh := lm.shards[s]
		if nShards > 1 {
			tree.AddCounts(sh.counts)
		}
		walk += sh.visit.WalkCost()
	}
	tree.AddWalkCost(walk)
	lm.mergeShards(nShards, nil, tree, work)
}

// mergeShards folds the per-shard tallies into the miner's metrics and the
// working database, in shard order. counts is the pass-2 count array (nil
// for tree passes, whose counts merged via tree.AddCounts already).
func (lm *localMiner) mergeShards(nShards int, counts []int32, tree *hashtree.Tree, work *txdb.Work) {
	var scanned, treeWork, hitsN, trimmed, prunedTx int64
	for s := 0; s < nShards; s++ {
		sh := lm.shards[s]
		if counts != nil && nShards > 1 {
			for i, d := range sh.counts {
				counts[i] += d
			}
		}
		scanned += sh.scanned
		treeWork += sh.treeWork
		hitsN += sh.hitsN
		trimmed += sh.trimmed
		prunedTx += sh.prunedTx
	}
	work.AdjustLive(int(-prunedTx))
	lm.metrics.TrimmedItems += trimmed
	lm.metrics.PrunedTx += prunedTx
	lm.metrics.Work.Charge(scanned, mining.CostScanItem)
	lm.metrics.Work.Charge(treeWork, 1)
	lm.metrics.Work.Charge(hitsN, mining.CostCandidateHit)
}

// pairCountToFlen inverts n*(n-1)/2, recovering the effective frequent-item
// count Pass2TreeCharge expects from a pair count: the smallest n >= 2 with
// n*(n-1)/2 >= pairs, via the closed-form root of the quadratic with an
// integer fix-up for floating-point error (the previous linear search ran
// once per transaction per pass).
func pairCountToFlen(pairs int) int {
	if pairs <= 0 {
		return 0
	}
	n := int((1 + math.Sqrt(float64(1+8*pairs))) / 2)
	if n < 2 {
		n = 2
	}
	for n*(n-1)/2 < pairs {
		n++
	}
	for n > 2 && (n-1)*(n-2)/2 >= pairs {
		n--
	}
	return n
}

// bumpHit increments the per-transaction hit count of an item, using epochs
// to avoid clearing the scratch array between transactions.
func (sh *minerShard) bumpHit(it itemset.Item) {
	if sh.hitsEpoch[it] != sh.epoch {
		sh.hitsEpoch[it] = sh.epoch
		sh.hits[it] = 0
	}
	sh.hits[it]++
}

func (sh *minerShard) hitCount(it itemset.Item) int32 {
	if sh.hitsEpoch[it] != sh.epoch {
		return 0
	}
	return sh.hits[it]
}

// applyTrim implements the weakened trimming rule after pass k over a
// transaction: a current-partition item survives only as a member of at
// least k matched candidates, any other item as a member of at least one;
// the transaction itself survives only with at least k matched candidates
// (every candidate of a partition pass contains a partition item, so the
// paper's "candidates containing one or more partition items" is all of
// them). The surviving items compact in place — the list is arena-backed
// and owned by this transaction.
func (sh *minerShard) applyTrim(ti int, items itemset.Itemset, inPart []bool, matched, k int, work *txdb.Work) {
	if matched < k {
		work.PruneShard(ti)
		sh.prunedTx++
		return
	}
	kept := items[:0]
	for _, it := range items {
		h := sh.hitCount(it)
		need := int32(1)
		if inPart[it] {
			need = int32(k)
		}
		if h >= need {
			kept = append(kept, it)
		} else {
			sh.trimmed++
		}
	}
	if len(kept) < k+1 {
		work.PruneShard(ti)
		sh.prunedTx++
		return
	}
	work.Trim(ti, kept)
}

// applyTrimTree is applyTrim for tree passes, where partition membership of
// an item is implied by it having accumulated k hits (only partition items
// can be a candidate's minimum, but non-minimum items may also reach k; the
// weak rule only requires one hit for them, so the membership test reduces
// to hit count >= 1 plus the transaction-level check).
func (sh *minerShard) applyTrimTree(ti int, items itemset.Itemset, matched, k int, work *txdb.Work) {
	if matched < k {
		work.PruneShard(ti)
		sh.prunedTx++
		return
	}
	kept := items[:0]
	for _, it := range items {
		if sh.hitCount(it) >= 1 {
			kept = append(kept, it)
		} else {
			sh.trimmed++
		}
	}
	if len(kept) < k+1 {
		work.PruneShard(ti)
		sh.prunedTx++
		return
	}
	work.Trim(ti, kept)
}

// boundViable applies the IHP bound checks to a candidate of size >= 3.
func (lm *localMiner) boundViable(c itemset.Itemset) bool {
	ok, slots := lm.global.Segment(lm.self).BoundReaches(c, lm.minLocal)
	lm.metrics.Work.Charge(int64(slots), mining.CostTHTSlot)
	if ok && lm.global.NumSegments() > 1 {
		var gslots int
		ok, gslots = lm.global.BoundReaches(c, lm.minPrune)
		lm.metrics.Work.Charge(int64(gslots), mining.CostTHTSlot)
	}
	return ok
}

func (lm *localMiner) accumFor(accum map[int]*itemset.Set, k int) *itemset.Set {
	s := accum[k]
	if s == nil {
		s = itemset.NewSet()
		accum[k] = s
	}
	return s
}

// freqAbove returns the globally frequent items strictly greater than a.
func (lm *localMiner) freqAbove(a itemset.Item) []itemset.Item {
	lo, hi := 0, len(lm.freqItems)
	for lo < hi {
		mid := (lo + hi) / 2
		if lm.freqItems[mid] <= a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lm.freqItems[lo:]
}

func pairKey(a, b itemset.Item) uint64 { return uint64(a)<<32 | uint64(b) }

// pairSet materializes a packed pair as a 2-itemset from the set arena
// (emitted sets outlive the pass, so they cannot share the partition
// arena).
func (lm *localMiner) pairSet(key uint64) itemset.Itemset {
	s := lm.setArena.Alloc(2)
	s[0], s[1] = itemset.Item(key>>32), itemset.Item(key&0xffffffff)
	return s
}

// pairSetOf is pairSet without a miner (tests and tallies).
func pairSetOf(key uint64) itemset.Itemset {
	return itemset.Itemset{itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)}
}

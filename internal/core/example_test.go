package core_test

import (
	"fmt"

	"pmihp/internal/core"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// A six-document database where words 0, 1 and 2 form a recurring theme.
func exampleDB() *txdb.DB {
	txs := []txdb.Transaction{
		{TID: 0, Day: 0, Items: itemset.New(0, 1, 2, 9)},
		{TID: 1, Day: 0, Items: itemset.New(0, 1, 2, 4)},
		{TID: 2, Day: 1, Items: itemset.New(0, 1, 2, 5)},
		{TID: 3, Day: 1, Items: itemset.New(4, 5)},
		{TID: 4, Day: 2, Items: itemset.New(4, 5, 7)},
		{TID: 5, Day: 2, Items: itemset.New(7)},
	}
	return txdb.New(txs, 10)
}

func ExampleMineMIHP() {
	res, err := core.MineMIHP(exampleDB(), mining.Options{MinSupCount: 3})
	if err != nil {
		panic(err)
	}
	for _, c := range res.Frequent {
		if len(c.Set) >= 2 {
			fmt.Println(c.Set, "support", c.Count)
		}
	}
	// Output:
	// {0, 1} support 3
	// {0, 1, 2} support 3
	// {0, 2} support 3
	// {1, 2} support 3
}

func ExampleMinePMIHP() {
	par, err := core.MinePMIHP(exampleDB(),
		core.PMIHPConfig{Nodes: 3},
		mining.Options{MinSupCount: 3, MaxK: 3},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", len(par.Nodes))
	fmt.Println("frequent 3-itemsets:", len(par.Result.FrequentOfSize(3)))
	// Output:
	// nodes: 3
	// frequent 3-itemsets: 1
}

package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// memProbeDB builds a database big enough that the inverted file's arrays
// (not slice headers or allocator rounding) dominate its heap footprint:
// 30k documents of 24 distinct items over a 4k vocabulary, with a Zipf-ish
// head so the hybrid layout gets both bitmaps and blocks.
func memProbeDB() *txdb.DB {
	const (
		docs     = 30_000
		numItems = 4_096
		perDoc   = 24
	)
	rng := rand.New(rand.NewSource(11))
	txs := make([]txdb.Transaction, docs)
	raw := make([]uint32, perDoc)
	for i := range txs {
		for j := range raw {
			if j < 4 {
				raw[j] = uint32(rng.Intn(64)) // head: dense under the default cut
			} else {
				raw[j] = uint32(rng.Intn(numItems))
			}
		}
		txs[i] = txdb.Transaction{TID: txdb.TID(i), Items: itemset.New(raw...)}
	}
	return txdb.New(txs, numItems)
}

// measureBuild returns the live heap bytes retained by a postings build.
func measureBuild(db *txdb.DB, threshold float64) (int64, *postings) {
	var m0, m1 runtime.MemStats
	m := mining.NewMetrics("mem")
	runtime.GC()
	runtime.ReadMemStats(&m0)
	p := buildPostings(db, &m, 1, threshold)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return int64(m1.HeapAlloc) - int64(m0.HeapAlloc), p
}

// TestPostingsMemBytesMatchesHeap pins MemBytes to reality: the accounted
// size of a freshly built inverted file must track the measured live-heap
// delta of building it, under every layout. This is what catches
// hardcoded element widths (the accounting once assumed 4-byte TIDs and
// would silently undercount if txdb.TID widened) and fields added to the
// struct but never added to MemBytes — a bitmap matrix that dominates the
// footprint while going unaccounted shows up as a large deficit here.
func TestPostingsMemBytesMatchesHeap(t *testing.T) {
	db := memProbeDB()
	// One throwaway build before the first measurement so intermediates
	// from constructing the database can't contaminate the heap delta.
	{
		m := mining.NewMetrics("warmup")
		buildPostings(db, &m, 1, 0)
	}
	for _, tc := range []struct {
		name      string
		threshold float64
	}{
		{"compressed", math.Inf(1)},
		{"hybrid", 0},
		{"bitmap", mining.DenseThresholdAll},
	} {
		t.Run(tc.name, func(t *testing.T) {
			heap, p := measureBuild(db, tc.threshold)
			accounted := p.MemBytes()
			runtime.KeepAlive(p)
			if accounted <= 0 {
				t.Fatalf("MemBytes = %d", accounted)
			}
			// The heap delta adds slice headers, allocator size-class
			// rounding, and the struct itself; the accounting adds the
			// always-reserved block scratch. Both are small against the
			// arrays, so the two must agree within 25%.
			ratio := float64(heap) / float64(accounted)
			if ratio < 0.75 || ratio > 1.25 {
				t.Fatalf("MemBytes = %d but the build retained %d heap bytes (ratio %.2f)",
					accounted, heap, ratio)
			}
		})
	}
}

// TestPostingsMemBytesOrdering: at equal data, the accounting must reflect
// the layouts' real footprints — and the per-shard scratch must stay out,
// so held bytes cannot depend on the worker count.
func TestPostingsMemBytesOrdering(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	db := smallDB(t, cfg)
	m := mining.NewMetrics("mem")
	serial := buildPostings(db, &m, 1, 0)
	sharded := buildPostings(db, &m, 8, 0)
	sharded.ensureScratch(8)
	if a, b := serial.MemBytes(), sharded.MemBytes(); a != b {
		t.Fatalf("MemBytes depends on workers: serial %d, 8-way %d", a, b)
	}
	hybrid := serial.MemBytes()
	all := buildPostings(db, &m, 1, mining.DenseThresholdAll)
	if allBytes := all.MemBytes(); allBytes <= hybrid {
		t.Fatalf("all-bitmap layout accounted %d bytes <= hybrid's %d; bitmap storage is not being counted", allBytes, hybrid)
	}
}

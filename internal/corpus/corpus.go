// Package corpus generates deterministic synthetic news corpora standing in
// for the TREC Wall Street Journal samples used in the paper (see DESIGN.md
// §2 for the substitution argument). The generator reproduces the three
// properties PMIHP's evaluation depends on:
//
//   - a large vocabulary with a Zipfian document-frequency distribution
//     (text databases have far more items than retail databases);
//   - long transactions (documents contain hundreds of distinct words);
//   - chronological skew: each publication day has bursty topic words that
//     are common on that day and rare elsewhere, so distributing documents
//     to nodes by date yields the skewed word distribution that the paper
//     observes ("text documents arranged in a chronological order do appear
//     to have a high degree of skewness").
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pmihp/internal/text"
)

// Config parameterizes a synthetic corpus. The zero value is not valid; use
// a preset or fill every field.
type Config struct {
	Name string // label used in reports

	Docs      int // number of documents
	Days      int // number of publication days (documents spread evenly)
	VocabSize int // number of distinct words in the language model

	// DayVolumeZipfS, when > 1, makes per-day publication volumes Zipfian
	// with this exponent (earliest days busiest) instead of spreading
	// documents evenly across days. 0 keeps the even spread.
	DayVolumeZipfS float64

	// DayLenSlope in [0,1) correlates document length with the timeline:
	// each document's length target is scaled by a multiplier that decays
	// linearly from 1+DayLenSlope on the first day to 1-DayLenSlope on
	// the last. Early days carry long documents, late days short ones —
	// the workload shape under which an equal-document-count
	// chronological split hands the early nodes far more counting work
	// than the late ones. 0 disables the correlation.
	DayLenSlope float64

	// DocLenMean and DocLenSigma parameterize the lognormal distribution of
	// the number of *distinct* content words per document.
	DocLenMean  float64
	DocLenSigma float64

	// ZipfS is the Zipf exponent of the global word distribution (s > 1).
	ZipfS float64

	// HeadCut removes the HeadCut most frequent ranks from the language
	// model, emulating the stop-word removal of the preprocessing pipeline:
	// in real text the Zipf head is function words, which the Fox stoplist
	// strips before mining, leaving content words drawn from the flatter
	// mid-tail. Without it, synthetic documents share head words so heavily
	// that pair co-occurrence density far exceeds real newswire.
	HeadCut int

	// TopicsPerDay is how many bursty stories are active on any given day;
	// TopicWords is the number of words in each story's vocabulary pool.
	TopicsPerDay int
	TopicWords   int

	// StoryLenDays is how many consecutive days a story stays active.
	// Stories start staggered so that TopicsPerDay are active at once;
	// adjacent days therefore share most of their burst vocabulary and
	// days further apart than a story's lifetime share none — the
	// multi-day persistence that makes chronological document-to-node
	// assignment skew-increasing. Zero derives max(2, Days/12).
	StoryLenDays int

	// Skew in [0,1] is the probability that a word slot is drawn from the
	// day's topic burst instead of the global Zipf model. Zero removes
	// chronological skew entirely (the A2 ablation knob).
	Skew float64

	// Corpus-wide topics model the persistent subject correlation of real
	// newswire (finance stories keep re-using the same register: "stock",
	// "market", "shares", …). Each document subscribes to two global topics
	// and draws GlobalSkew of its word slots from their small shared pools,
	// which is what produces frequent 2- and 3-itemsets at the 2–5% support
	// levels of the Figure 4/5 sweeps. Zero GlobalTopics disables the
	// mechanism (day bursts alone give only low-support structure, because
	// each burst is diluted across the whole corpus).
	GlobalTopics     int
	GlobalTopicWords int
	GlobalSkew       float64

	Seed int64 // PRNG seed; equal configs generate equal corpora
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Docs <= 0:
		return fmt.Errorf("corpus: Docs=%d", c.Docs)
	case c.Days <= 0 || c.Days > c.Docs:
		return fmt.Errorf("corpus: Days=%d with Docs=%d", c.Days, c.Docs)
	case c.VocabSize < 10:
		return fmt.Errorf("corpus: VocabSize=%d", c.VocabSize)
	case c.DocLenMean <= 1:
		return fmt.Errorf("corpus: DocLenMean=%g", c.DocLenMean)
	case c.ZipfS <= 1:
		return fmt.Errorf("corpus: ZipfS=%g (need >1)", c.ZipfS)
	case c.Skew < 0 || c.Skew > 1:
		return fmt.Errorf("corpus: Skew=%g", c.Skew)
	case c.Skew > 0 && (c.TopicsPerDay <= 0 || c.TopicWords <= 0):
		return fmt.Errorf("corpus: Skew>0 needs TopicsPerDay and TopicWords")
	case c.HeadCut < 0 || c.HeadCut >= c.VocabSize/2:
		return fmt.Errorf("corpus: HeadCut=%d with VocabSize=%d", c.HeadCut, c.VocabSize)
	case c.GlobalSkew < 0 || c.GlobalSkew > 1:
		return fmt.Errorf("corpus: GlobalSkew=%g", c.GlobalSkew)
	case c.GlobalSkew > 0 && (c.GlobalTopics <= 0 || c.GlobalTopicWords <= 0):
		return fmt.Errorf("corpus: GlobalSkew>0 needs GlobalTopics and GlobalTopicWords")
	case c.Skew+c.GlobalSkew > 1:
		return fmt.Errorf("corpus: Skew+GlobalSkew=%g exceeds 1", c.Skew+c.GlobalSkew)
	case c.DayVolumeZipfS != 0 && c.DayVolumeZipfS <= 1:
		return fmt.Errorf("corpus: DayVolumeZipfS=%g (need >1, or 0 for an even spread)", c.DayVolumeZipfS)
	case c.DayLenSlope < 0 || c.DayLenSlope >= 1:
		return fmt.Errorf("corpus: DayLenSlope=%g (need [0,1) so every multiplier stays positive)", c.DayLenSlope)
	}
	return nil
}

// Generate produces the corpus as preprocessed documents (distinct sorted
// content words per document), ready for text.ToDB.
func Generate(cfg Config) ([]text.Document, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	words := wordList(cfg.VocabSize)
	// rankToWord decouples frequency rank from lexical order: without it the
	// most frequent words would be exactly the lexically smallest ones and
	// the Multipass partitions would align with frequency bands, which real
	// text does not do.
	rankToWord := rng.Perm(cfg.VocabSize)
	// The sampler draws ranks over the content region [HeadCut, VocabSize):
	// the head ranks play the role of the stop words removed in
	// preprocessing and never reach documents. The shift enters as the Zipf
	// v-parameter (P(k) ∝ (v+k)^-s), so the content distribution is the
	// *tail* of the full language model — merely re-indexing ranks would
	// leave the shape, and the co-occurrence density, unchanged.
	zipf := rand.NewZipf(rng, cfg.ZipfS, float64(cfg.HeadCut+1), uint64(cfg.VocabSize-1-cfg.HeadCut))

	// Day bursts come from multi-day stories: each story owns a pool of
	// TopicWords ranks from the mid-frequency band (plausible content
	// words — not the head, not the hapax tail) and stays active for
	// StoryLenDays consecutive days; starts are staggered so TopicsPerDay
	// stories are active at once. Adjacent days share most stories, days a
	// lifetime apart share none — the chronological locality behind the
	// paper's "text documents arranged in a chronological order do appear
	// to have a high degree of skewness".
	bandLo := cfg.HeadCut + (cfg.VocabSize-cfg.HeadCut)/20
	bandHi := cfg.HeadCut + (cfg.VocabSize-cfg.HeadCut)/2
	if bandHi <= bandLo {
		bandLo, bandHi = 0, cfg.VocabSize
	}
	storyLen := cfg.StoryLenDays
	if storyLen <= 0 {
		// News stories run a few days; keeping lifetimes short relative to
		// the corpus also keeps most stories inside one node's slice when
		// the chronological splitter hands ~Days/8 days to each of 8 nodes,
		// which is what the paper's low cross-node candidate overlap
		// (21.7% counted at more than one node) reflects.
		storyLen = cfg.Days / 12
		if storyLen < 2 {
			storyLen = 2
		}
	}
	// perDay stories begin each day so that storyLen × perDay ≈ TopicsPerDay
	// stories are active at once, whatever the lifetime.
	perDay := (cfg.TopicsPerDay + storyLen - 1) / storyLen
	numStories := (cfg.Days + 1) * perDay
	// Stories belong to recurring themes (the sports page and the earnings
	// column come back every week): half of a story's pool is its theme's
	// standing vocabulary, half is story-specific. Recurrence is what a
	// skew-aware assignment can exploit beyond plain chronology — days far
	// apart can still be vocabulary-similar when they share themes.
	numThemes := cfg.TopicsPerDay * 2
	if numThemes < 4 {
		numThemes = 4
	}
	themes := make([][]int, numThemes)
	for t := range themes {
		pool := make([]int, cfg.TopicWords/2)
		for i := range pool {
			pool[i] = bandLo + rng.Intn(bandHi-bandLo)
		}
		themes[t] = pool
	}
	stories := make([][]int, numStories)
	for k := range stories {
		theme := themes[k%numThemes]
		pool := make([]int, 0, cfg.TopicWords)
		pool = append(pool, theme...)
		for len(pool) < cfg.TopicWords {
			pool = append(pool, bandLo+rng.Intn(bandHi-bandLo))
		}
		stories[k] = pool
	}
	dayTopics := make([][]int, cfg.Days)
	for d := range dayTopics {
		// Stories starting on day s occupy indices [s*perDay, (s+1)*perDay);
		// those started within the last storyLen days are active.
		var topic []int
		lo := d - storyLen + 1
		if lo < 0 {
			lo = 0
		}
		for k := lo * perDay; k < (d+1)*perDay && k < len(stories); k++ {
			topic = append(topic, stories[k]...)
		}
		if len(topic) == 0 {
			topic = stories[0]
		}
		dayTopics[d] = topic
	}

	// Corpus-wide topic pools, drawn from the strong end of the content
	// region so pool words are plausible frequent words.
	globalPools := make([][]int, cfg.GlobalTopics)
	poolHi := cfg.HeadCut + (cfg.VocabSize-cfg.HeadCut)/4
	for t := range globalPools {
		pool := make([]int, cfg.GlobalTopicWords)
		for i := range pool {
			pool[i] = cfg.HeadCut + rng.Intn(poolHi-cfg.HeadCut)
		}
		globalPools[t] = pool
	}

	mu := math.Log(cfg.DocLenMean)
	dayOf := dayAssignment(cfg)
	docs := make([]text.Document, cfg.Docs)
	for i := range docs {
		day := dayOf[i]
		target := int(math.Exp(rng.NormFloat64()*cfg.DocLenSigma + mu))
		if cfg.DayLenSlope != 0 && cfg.Days > 1 {
			m := 1 + cfg.DayLenSlope*(1-2*float64(day)/float64(cfg.Days-1))
			target = int(float64(target) * m)
		}
		if target < 5 {
			target = 5
		}
		if target > cfg.VocabSize/2 {
			target = cfg.VocabSize / 2
		}
		var docPools [][]int
		if cfg.GlobalTopics > 0 {
			docPools = [][]int{
				globalPools[rng.Intn(cfg.GlobalTopics)],
				globalPools[rng.Intn(cfg.GlobalTopics)],
			}
		}
		distinct := make(map[int]struct{}, target)
		// Bound the sampling loop: very high-frequency words collide often.
		for attempts := 0; len(distinct) < target && attempts < 20*target; attempts++ {
			var rank int
			r := rng.Float64()
			switch {
			case r < cfg.Skew:
				t := dayTopics[day]
				rank = t[rng.Intn(len(t))]
			case docPools != nil && r < cfg.Skew+cfg.GlobalSkew:
				pool := docPools[rng.Intn(len(docPools))]
				rank = pool[rng.Intn(len(pool))]
			default:
				rank = cfg.HeadCut + int(zipf.Uint64())
			}
			distinct[rank] = struct{}{}
		}
		ws := make([]string, 0, len(distinct))
		for rank := range distinct {
			ws = append(ws, words[rankToWord[rank]])
		}
		sortStrings(ws)
		docs[i] = text.Document{Day: day, Words: ws}
	}
	return docs, nil
}

// dayAssignment maps each document index (chronological) to its
// publication day. The default spreads documents evenly; with
// DayVolumeZipfS set, day volumes follow a Zipf law — day d receives a
// share proportional to (d+1)^-s of the documents, so the earliest days
// are the busiest. Either way the mapping is nondecreasing in the
// document index, preserving chronological order.
func dayAssignment(cfg Config) []int {
	day := make([]int, cfg.Docs)
	if cfg.DayVolumeZipfS == 0 {
		for i := range day {
			day[i] = i * cfg.Days / cfg.Docs
		}
		return day
	}
	weights := make([]float64, cfg.Days)
	total := 0.0
	for d := range weights {
		weights[d] = math.Pow(float64(d+1), -cfg.DayVolumeZipfS)
		total += weights[d]
	}
	cum, i := 0.0, 0
	for d := 0; d < cfg.Days; d++ {
		cum += weights[d]
		hi := int(cum/total*float64(cfg.Docs) + 0.5)
		if d == cfg.Days-1 {
			hi = cfg.Docs
		}
		for ; i < hi; i++ {
			day[i] = d
		}
	}
	return day
}

// MustGenerate is Generate for configurations known valid at compile time
// (presets); it panics on error.
func MustGenerate(cfg Config) []text.Document {
	docs, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return docs
}

// wordList deterministically builds n distinct pseudo-words whose lexical
// order equals their index order (fixed-width base-26 encoding). A pseudo-
// word that collides with a stop word gets a "q" suffix, which preserves
// the ordering (no other fixed-width word shares the prefix) while keeping
// the corpus disjoint from the stoplist.
func wordList(n int) []string {
	width := 1
	for p := 26; p < n; p *= 26 {
		width++
	}
	words := make([]string, n)
	buf := make([]byte, width)
	for i := 0; i < n; i++ {
		x := i
		for j := width - 1; j >= 0; j-- {
			buf[j] = byte('a' + x%26)
			x /= 26
		}
		w := string(buf)
		if text.IsStopWord(w) {
			w += "q"
		}
		words[i] = w
	}
	return words
}

func sortStrings(a []string) { sort.Strings(a) }

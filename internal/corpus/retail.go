package corpus

import (
	"fmt"
	"math/rand"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

// RetailConfig parameterizes a synthetic retail transaction database in the
// style of the IBM Quest generator (the T10.I4-type workloads of the
// Apriori and DHP papers). The paper's introduction contrasts text with
// retail data — far fewer distinct items, far shorter transactions, and a
// flatter frequency profile — and argues existing miners are tuned for the
// latter; the A9 ablation uses this generator to show the contrast
// directly.
type RetailConfig struct {
	Transactions int     // number of baskets
	Items        int     // catalogue size (typically ~1000, vs 10^5 words)
	AvgLen       int     // mean basket size (typically ~10, vs ~100+ words)
	Patterns     int     // number of latent co-purchase patterns
	PatternLen   int     // mean pattern size (the I in T10.I4)
	Corr         float64 // fraction of a basket drawn from its patterns
	Seed         int64
}

// RetailT10I4 returns the classic T10.I4 shape over the given number of
// baskets.
func RetailT10I4(transactions int) RetailConfig {
	return RetailConfig{
		Transactions: transactions,
		Items:        1000,
		AvgLen:       10,
		Patterns:     200,
		PatternLen:   4,
		Corr:         0.5,
		Seed:         1994, // the year of the Apriori paper
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c RetailConfig) Validate() error {
	switch {
	case c.Transactions <= 0:
		return fmt.Errorf("corpus: retail Transactions=%d", c.Transactions)
	case c.Items < 10:
		return fmt.Errorf("corpus: retail Items=%d", c.Items)
	case c.AvgLen < 1 || c.AvgLen > c.Items/2:
		return fmt.Errorf("corpus: retail AvgLen=%d with Items=%d", c.AvgLen, c.Items)
	case c.Patterns <= 0 || c.PatternLen <= 0:
		return fmt.Errorf("corpus: retail Patterns=%d PatternLen=%d", c.Patterns, c.PatternLen)
	case c.Corr < 0 || c.Corr > 1:
		return fmt.Errorf("corpus: retail Corr=%g", c.Corr)
	}
	return nil
}

// GenerateRetail produces the transaction database directly (retail baskets
// have no text pipeline). TIDs are sequential; Day spreads baskets evenly
// over 10 "days" so the chronological splitter remains applicable.
func GenerateRetail(cfg RetailConfig) (*txdb.DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Latent patterns: geometric-ish sizes around PatternLen, items drawn
	// with a mildly skewed (Zipf s=1.2 over the catalogue) popularity.
	pop := rand.NewZipf(rng, 1.2, 8, uint64(cfg.Items-1))
	patterns := make([][]itemset.Item, cfg.Patterns)
	for p := range patterns {
		size := 2 + rng.Intn(2*cfg.PatternLen-2)
		seen := map[itemset.Item]struct{}{}
		for len(seen) < size {
			seen[itemset.Item(pop.Uint64())] = struct{}{}
		}
		pat := make([]itemset.Item, 0, size)
		for it := range seen {
			pat = append(pat, it)
		}
		patterns[p] = itemset.New(pat...)
	}

	days := 10
	if cfg.Transactions < days {
		days = 1
	}
	txs := make([]txdb.Transaction, cfg.Transactions)
	for i := range txs {
		// Basket size: Poisson-ish around AvgLen via binomial trick.
		size := 1
		for j := 0; j < 2*cfg.AvgLen; j++ {
			if rng.Float64() < 0.5 {
				size++
			}
		}
		seen := map[itemset.Item]struct{}{}
		for len(seen) < size {
			if rng.Float64() < cfg.Corr {
				pat := patterns[rng.Intn(len(patterns))]
				// Take a prefix of the pattern (partial patterns model
				// shoppers buying only part of a bundle).
				take := 1 + rng.Intn(len(pat))
				for _, it := range pat[:take] {
					if len(seen) >= size {
						break
					}
					seen[it] = struct{}{}
				}
			} else {
				seen[itemset.Item(pop.Uint64())] = struct{}{}
			}
		}
		items := make([]itemset.Item, 0, len(seen))
		for it := range seen {
			items = append(items, it)
		}
		txs[i] = txdb.Transaction{
			TID:   txdb.TID(i),
			Day:   i * days / cfg.Transactions,
			Items: itemset.New(items...),
		}
	}
	return txdb.New(txs, cfg.Items), nil
}

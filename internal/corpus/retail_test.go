package corpus

import (
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/mining"
)

func TestRetailGeneratorShape(t *testing.T) {
	db, err := GenerateRetail(RetailT10I4(1500))
	if err != nil {
		t.Fatal(err)
	}
	st := db.ComputeStats()
	if st.Docs != 1500 {
		t.Fatalf("docs = %d", st.Docs)
	}
	// Retail shape: mean basket near the configured average, small
	// catalogue — the opposite of the text corpora.
	if st.MeanLen < 6 || st.MeanLen > 16 {
		t.Fatalf("mean basket %g outside retail shape", st.MeanLen)
	}
	if st.UniqueItems > 1000 {
		t.Fatalf("unique items %d exceeds catalogue", st.UniqueItems)
	}
}

func TestRetailDeterministic(t *testing.T) {
	a, _ := GenerateRetail(RetailT10I4(300))
	b, _ := GenerateRetail(RetailT10I4(300))
	for i := 0; i < a.Len(); i++ {
		if !a.Tx(i).Items.Equal(b.Tx(i).Items) {
			t.Fatalf("tx %d differs between runs", i)
		}
	}
}

func TestRetailHasPatternStructure(t *testing.T) {
	// Co-purchase patterns must produce frequent itemsets beyond items.
	db, _ := GenerateRetail(RetailT10I4(1500))
	r, err := apriori.Mine(db, mining.Options{MinSupFrac: 0.01, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FrequentOfSize(2)) == 0 {
		t.Fatal("no frequent pairs in retail data")
	}
}

func TestRetailValidate(t *testing.T) {
	bad := []RetailConfig{
		{},
		{Transactions: 10, Items: 5, AvgLen: 2, Patterns: 1, PatternLen: 1},
		{Transactions: 10, Items: 100, AvgLen: 60, Patterns: 1, PatternLen: 1},
		{Transactions: 10, Items: 100, AvgLen: 5, Patterns: 0, PatternLen: 1},
		{Transactions: 10, Items: 100, AvgLen: 5, Patterns: 1, PatternLen: 1, Corr: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if err := RetailT10I4(100).Validate(); err != nil {
		t.Fatal(err)
	}
}

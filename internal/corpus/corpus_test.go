package corpus

import (
	"testing"

	"pmihp/internal/text"
)

func small() Config {
	cfg := CorpusB(Small)
	cfg.Docs, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 60, 1500, 80, 25
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(small())
	b := MustGenerate(small())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Day != b[i].Day || len(a[i].Words) != len(b[i].Words) {
			t.Fatalf("doc %d differs", i)
		}
		for j := range a[i].Words {
			if a[i].Words[j] != b[i].Words[j] {
				t.Fatalf("doc %d word %d: %q vs %q", i, j, a[i].Words[j], b[i].Words[j])
			}
		}
	}
}

func TestSeedChangesCorpus(t *testing.T) {
	cfg := small()
	a := MustGenerate(cfg)
	cfg.Seed++
	b := MustGenerate(cfg)
	same := true
	for i := range a {
		if len(a[i].Words) != len(b[i].Words) {
			same = false
			break
		}
		for j := range a[i].Words {
			if a[i].Words[j] != b[i].Words[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestDocumentInvariants(t *testing.T) {
	docs := MustGenerate(small())
	for i, d := range docs {
		if d.Day < 0 || d.Day >= small().Days {
			t.Fatalf("doc %d day %d out of range", i, d.Day)
		}
		if i > 0 && d.Day < docs[i-1].Day {
			t.Fatalf("days not monotone at doc %d", i)
		}
		for j, w := range d.Words {
			if j > 0 && w <= d.Words[j-1] {
				t.Fatalf("doc %d words not sorted-distinct: %q, %q", i, d.Words[j-1], w)
			}
			if text.IsStopWord(w) {
				t.Fatalf("doc %d contains stop word %q", i, w)
			}
		}
		if len(d.Words) < 5 {
			t.Fatalf("doc %d suspiciously short: %d words", i, len(d.Words))
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Docs: 10, Days: 20, VocabSize: 100, DocLenMean: 10, ZipfS: 1.1},
		{Docs: 10, Days: 2, VocabSize: 5, DocLenMean: 10, ZipfS: 1.1},
		{Docs: 10, Days: 2, VocabSize: 100, DocLenMean: 0, ZipfS: 1.1},
		{Docs: 10, Days: 2, VocabSize: 100, DocLenMean: 10, ZipfS: 1.0},
		{Docs: 10, Days: 2, VocabSize: 100, DocLenMean: 10, ZipfS: 1.1, Skew: 1.5},
		{Docs: 10, Days: 2, VocabSize: 100, DocLenMean: 10, ZipfS: 1.1, Skew: 0.5},
		{Docs: 10, Days: 2, VocabSize: 100, DocLenMean: 10, ZipfS: 1.1, HeadCut: 60},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	for _, s := range []Scale{Small, Harness, Paper} {
		for _, cfg := range []Config{CorpusA(s), CorpusB(s), CorpusC(s)} {
			if err := cfg.Validate(); err != nil {
				t.Errorf("preset %s/%s invalid: %v", cfg.Name, s, err)
			}
		}
	}
}

func TestSkewConcentratesDays(t *testing.T) {
	// With skew, words repeat within a day far more than across days; the
	// within-day overlap of documents must exceed the across-day overlap.
	cfg := small()
	cfg.Skew = 0.4
	docs := MustGenerate(cfg)
	db, _ := text.ToDB(docs, nil)

	overlap := func(i, j int) float64 {
		a, b := db.Tx(i).Items, db.Tx(j).Items
		inter := 0
		bi := 0
		for _, x := range a {
			for bi < len(b) && b[bi] < x {
				bi++
			}
			if bi < len(b) && b[bi] == x {
				inter++
			}
		}
		return float64(inter) / float64(len(a)+len(b)-inter)
	}
	within, across := 0.0, 0.0
	nw, na := 0, 0
	for i := 0; i < db.Len(); i++ {
		for j := i + 1; j < db.Len(); j++ {
			if db.Tx(i).Day == db.Tx(j).Day {
				within += overlap(i, j)
				nw++
			} else {
				across += overlap(i, j)
				na++
			}
		}
	}
	if nw == 0 || na == 0 {
		t.Skip("degenerate day split")
	}
	if within/float64(nw) <= across/float64(na) {
		t.Fatalf("no chronological skew: within=%.4f across=%.4f",
			within/float64(nw), across/float64(na))
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"small", "harness", "paper"} {
		sc, err := ParseScale(s)
		if err != nil || sc.String() != s {
			t.Errorf("ParseScale(%q) = %v, %v", s, sc, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("ParseScale accepted junk")
	}
}

func TestWordListOrderedDistinct(t *testing.T) {
	words := wordList(2000)
	seen := map[string]struct{}{}
	for i, w := range words {
		if i > 0 && w <= words[i-1] {
			t.Fatalf("wordList not increasing at %d: %q, %q", i, words[i-1], w)
		}
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = struct{}{}
		if text.IsStopWord(w) {
			t.Fatalf("stop word %q in word list", w)
		}
	}
}

package corpus

import "fmt"

// Scale selects how large a preset corpus is generated. The paper's WSJ
// samples are reproduced at three sizes: Small for unit/integration tests,
// Harness for the default benchmark runs (shape-preserving, roughly an order
// of magnitude below the paper), and Paper at the published document counts.
type Scale int

const (
	// Small is the test scale: seconds-fast, still exhibits skew and a
	// Zipfian vocabulary.
	Small Scale = iota
	// Harness is the default experiment scale used by cmd/pmihp-bench.
	Harness
	// Paper matches the paper's document and vocabulary counts.
	Paper
)

// ParseScale converts a flag value ("small", "harness", "paper").
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "harness":
		return Harness, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("corpus: unknown scale %q (want small|harness|paper)", s)
}

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Harness:
		return "harness"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// The presets share the tuned language-model shape: Zipf exponent 1.05 with
// the head removed (HeadCut), which calibrates the pair co-occurrence
// density of the stop-worded WSJ samples — the quantity that determines F2
// and candidate-set sizes (validated against the paper's corpus C, which has
// ~1.55M frequent 2-itemsets from 6,170 documents, i.e. ~2% of occurring
// pairs repeating). VocabSize exceeds the paper's reported unique-word
// counts because the long Zipf tail is only partially realized in a sample.

// CorpusA models the paper's 6-month WSJ sample (Apr 2 – Sep 28, 1990:
// 21,703 documents, 116,849 unique words, ~126 publication days). Used for
// the Figure 4 and Figure 5 minimum-support sweeps, which run at 1.75%-5%
// support — so this preset keeps a moderately strong content head (small
// HeadCut) to populate those levels, unlike B and C, which are mined at a
// minimum support count of 2 and therefore calibrate for low pair density.
func CorpusA(s Scale) Config {
	cfg := Config{
		Name:         "wsj-6mo(A)",
		DocLenSigma:  0.5,
		ZipfS:        1.05,
		TopicsPerDay: 8, TopicWords: 100,
		Skew:       0.25,
		GlobalSkew: 0.30,
		Seed:       19900402,
	}
	switch s {
	case Paper:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 21703, 126, 160000, 400, 160
		cfg.GlobalTopics, cfg.GlobalTopicWords = 30, 50
	case Harness:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 2000, 63, 30000, 150, 90
		cfg.GlobalTopics, cfg.GlobalTopicWords = 25, 40
	default:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 240, 21, 6000, 40, 35
		cfg.GlobalTopics, cfg.GlobalTopicWords = 12, 18
	}
	return cfg
}

// CorpusB models the paper's 8-day WSJ sample (from Oct 1, 1991: 1,427
// documents, 31,290 unique words, mean 178 docs/day). Used for the node
// scaling experiments (Figures 6–11) at minimum support count 2.
func CorpusB(s Scale) Config {
	cfg := Config{
		Name:         "wsj-8day(B)",
		DocLenSigma:  0.45,
		ZipfS:        1.05,
		TopicsPerDay: 8, TopicWords: 100,
		Skew: 0.30,
		Seed: 19911001,
	}
	switch s {
	case Paper:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 1427, 8, 45000, 1500, 170
	case Harness:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 480, 8, 20000, 1000, 100
	default:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 96, 8, 4000, 200, 32
	}
	return cfg
}

// CorpusDense models corpus B mined *without* the stop-word pass: HeadCut
// is zero, so the Zipf head — the function words the Fox stoplist would
// strip — stays in the documents and the highest-frequency words appear in
// a large fraction of them. Their posting lists are dense over the TID
// span, which is the regime the hybrid bitmap/compressed posting layout is
// built for; the bench harness mines it as E9Dense to keep the bitmap
// kernels' wall-clock win visible (and regressing) per revision.
func CorpusDense(s Scale) Config {
	cfg := CorpusB(s)
	cfg.Name = "wsj-8day-nostop(D)"
	cfg.HeadCut = 0
	cfg.Seed = 19911002
	return cfg
}

// CorpusSkewed models corpus B with a heavily skewed timeline: Zipfian
// per-day publication volumes (the first days carry most of the news)
// and day-correlated document lengths (early coverage is long-form,
// late coverage short). Under the paper's equal-document-count
// chronological assignment the early nodes receive roughly twice the
// counting work of the late ones, so the fleet idles waiting for node
// 0 — the straggler regime the work-balanced partitioner
// (mining.PartitionByWork) and the coordinator's straggler re-split
// exist for. The bench harness mines it as E10Skew under both
// partitioners to keep the work split's simulated-seconds win visible
// (and regressing) per revision.
func CorpusSkewed(s Scale) Config {
	cfg := CorpusB(s)
	cfg.Name = "wsj-8day-skewed(S)"
	cfg.Seed = 19911003
	cfg.DayVolumeZipfS = 1.3
	cfg.DayLenSlope = 0.6
	// Tighter per-document length noise than B: the skew this preset
	// exists for is the day-correlated regime (long early days, short
	// late ones), which a cost-model splitter can balance. B's wide
	// lognormal occasionally produces a single monster document whose
	// quadratic candidate-pair work dwarfs everything else — that skew
	// is atomic and no document-granular partitioner can divide it.
	cfg.DocLenSigma = 0.30
	return cfg
}

// CorpusC models the paper's 8-week WSJ sample (Jan 2 – Feb 22, 1991: 6,170
// documents, 64,191 unique words, ~40 publication days). Used for the large
// low-support run reported in §3's closing experiment.
func CorpusC(s Scale) Config {
	cfg := Config{
		Name:         "wsj-8wk(C)",
		DocLenSigma:  0.5,
		ZipfS:        1.05,
		TopicsPerDay: 8, TopicWords: 100,
		Skew: 0.30,
		Seed: 19910102,
	}
	switch s {
	case Paper:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 6170, 40, 90000, 1500, 160
	case Harness:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 1200, 40, 25000, 1000, 90
	default:
		cfg.Docs, cfg.Days, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 200, 40, 5000, 250, 35
	}
	return cfg
}

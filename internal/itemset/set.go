package itemset

import "slices"

// Set is a collection of distinct itemsets keyed by their compact encoding.
// It is the representation used for the frequent sets F_k and for membership
// tests during subset-infrequency pruning. The zero value is not ready to
// use; call NewSet.
type Set struct {
	m map[string]struct{}
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{m: make(map[string]struct{})} }

// SetOf returns a Set holding the given itemsets.
func SetOf(sets ...Itemset) *Set {
	s := NewSet()
	for _, is := range sets {
		s.Add(is)
	}
	return s
}

// Add inserts the itemset. Adding an itemset twice is a no-op.
func (s *Set) Add(is Itemset) { s.m[is.Key()] = struct{}{} }

// AddKey inserts an itemset by its pre-computed Key.
func (s *Set) AddKey(key string) { s.m[key] = struct{}{} }

// Has reports whether the itemset is in the set. The lookup key is built in
// a stack buffer so the check does not allocate (it sits on the candidate-
// generation hot path).
func (s *Set) Has(is Itemset) bool {
	var arr [64]byte
	buf := arr[:0]
	if len(is) > 16 {
		buf = make([]byte, 0, 4*len(is))
	}
	_, ok := s.m[string(appendKey(buf, is))]
	return ok
}

// HasKey reports whether an itemset with the given Key is in the set.
func (s *Set) HasKey(key string) bool {
	_, ok := s.m[key]
	return ok
}

// Remove deletes the itemset from the set if present.
func (s *Set) Remove(is Itemset) { delete(s.m, is.Key()) }

// Len returns the number of itemsets in the set.
func (s *Set) Len() int { return len(s.m) }

// Slice returns the itemsets in lexicographic order.
func (s *Set) Slice() []Itemset {
	out := make([]Itemset, 0, len(s.m))
	for k := range s.m {
		out = append(out, FromKey(k))
	}
	Sort(out)
	return out
}

// Each calls fn for every itemset in the set in unspecified order.
func (s *Set) Each(fn func(Itemset)) {
	for k := range s.m {
		fn(FromKey(k))
	}
}

// Merge adds every itemset of t into s.
func (s *Set) Merge(t *Set) {
	for k := range t.m {
		s.m[k] = struct{}{}
	}
}

// Counter accumulates support counts per itemset. It is the generic
// count-collection structure used when hash-tree counting is not required
// (e.g. merging per-node counts, or counting small candidate batches).
type Counter struct {
	m map[string]int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]int)} }

// Add increases the count of the itemset by n.
func (c *Counter) Add(is Itemset, n int) { c.m[is.Key()] += n }

// AddKey increases the count of the itemset with the given Key by n.
func (c *Counter) AddKey(key string, n int) { c.m[key] += n }

// Count returns the accumulated count for the itemset (0 when absent).
func (c *Counter) Count(is Itemset) int { return c.m[is.Key()] }

// CountKey returns the accumulated count for the itemset Key (0 when absent).
func (c *Counter) CountKey(key string) int { return c.m[key] }

// Len returns the number of distinct itemsets with a recorded count.
func (c *Counter) Len() int { return len(c.m) }

// Each calls fn for every (itemset, count) pair in unspecified order.
func (c *Counter) Each(fn func(is Itemset, count int)) {
	for k, n := range c.m {
		fn(FromKey(k), n)
	}
}

// Merge adds every count of other into c.
func (c *Counter) Merge(other *Counter) {
	for k, n := range other.m {
		c.m[k] += n
	}
}

// AtLeast returns, in lexicographic order, the itemsets whose count is
// greater than or equal to min.
func (c *Counter) AtLeast(min int) []Itemset {
	var out []Itemset
	for k, n := range c.m {
		if n >= min {
			out = append(out, FromKey(k))
		}
	}
	Sort(out)
	return out
}

// Counted is a (itemset, support) pair, the unit of mining results.
type Counted struct {
	Set   Itemset
	Count int
}

// SortCounted orders pairs by descending count, breaking ties
// lexicographically by itemset, which gives deterministic output.
func SortCounted(cs []Counted) {
	slices.SortFunc(cs, func(a, b Counted) int {
		if a.Count != b.Count {
			return b.Count - a.Count
		}
		return Compare(a.Set, b.Set)
	})
}

// CountedSlice extracts all pairs of a Counter in deterministic order.
func (c *Counter) CountedSlice() []Counted {
	out := make([]Counted, 0, len(c.m))
	for k, n := range c.m {
		out = append(out, Counted{Set: FromKey(k), Count: n})
	}
	SortCounted(out)
	return out
}

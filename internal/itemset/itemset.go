// Package itemset defines the fundamental types for frequent-itemset mining:
// items (word identifiers), itemsets (lexically ordered sets of items), and
// transactions (documents represented as sorted sets of distinct items).
//
// The paper orders items lexically; we assign item identifiers in lexical
// word order (see internal/text.Vocabulary), so numeric order on Item is the
// lexical order everywhere in this module.
package itemset

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Item identifies a single item (a distinct word in a text database).
// Identifiers are assigned in lexical word order, so the numeric order of
// items coincides with the lexical order the paper relies on.
type Item = uint32

// Itemset is a set of items stored in strictly increasing order.
// A k-itemset has length k. The zero value is the empty itemset.
type Itemset []Item

// New returns an Itemset holding the given items, sorted and deduplicated.
func New(items ...Item) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	slices.Sort(s)
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// K returns the size of the itemset (the k in "k-itemset").
func (s Itemset) K() int { return len(s) }

// Valid reports whether the itemset is strictly increasing (the invariant
// every function in this package preserves).
func (s Itemset) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the itemset contains item x.
func (s Itemset) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// SubsetOf reports whether every item of s occurs in t.
// Both itemsets must be sorted (the package invariant).
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j == len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically (shorter prefixes first).
// It returns -1, 0, or +1.
func Compare(a, b Itemset) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Clone returns an independent copy of the itemset.
func (s Itemset) Clone() Itemset {
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Min returns the smallest (lexically first) item. It panics on an empty set.
func (s Itemset) Min() Item {
	if len(s) == 0 {
		panic("itemset: Min of empty itemset")
	}
	return s[0]
}

// Max returns the largest (lexically last) item. It panics on an empty set.
func (s Itemset) Max() Item {
	if len(s) == 0 {
		panic("itemset: Max of empty itemset")
	}
	return s[len(s)-1]
}

// Without returns a new itemset equal to s with the item at index i removed.
func (s Itemset) Without(i int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Extend returns a new itemset equal to s with x appended. x must be greater
// than every item of s; Extend panics otherwise, because the result would
// violate the ordering invariant.
func (s Itemset) Extend(x Item) Itemset {
	if len(s) > 0 && x <= s[len(s)-1] {
		panic(fmt.Sprintf("itemset: Extend(%d) would break ordering of %v", x, s))
	}
	out := make(Itemset, 0, len(s)+1)
	out = append(out, s...)
	return append(out, x)
}

// Union returns the sorted union of s and t.
func Union(s, t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the sorted intersection of s and t.
func Intersect(s, t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Join implements the Apriori prefix join (the natural join F_{k-1} ⋈ F_{k-1}
// on the first k-2 items, line 22 of the MIHP pseudo-code). If a and b are
// (k-1)-itemsets sharing their first k-2 items, Join returns the k-itemset
// formed by extending the shared prefix with both final items; ok is false
// when the prefixes differ or the itemsets are identical.
func Join(a, b Itemset) (joined Itemset, ok bool) {
	k := len(a)
	if k == 0 || len(b) != k {
		return nil, false
	}
	for i := 0; i < k-1; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	la, lb := a[k-1], b[k-1]
	if la == lb {
		return nil, false
	}
	if la > lb {
		la, lb = lb, la
	}
	out := make(Itemset, 0, k+1)
	out = append(out, a[:k-1]...)
	return append(out, la, lb), true
}

// EachSubset calls fn once for each (k-1)-subset of the k-itemset s, in the
// order obtained by dropping item 0, item 1, …. It stops early if fn returns
// false. The slice passed to fn is reused between calls; clone it to retain.
func (s Itemset) EachSubset(fn func(sub Itemset) bool) {
	if len(s) == 0 {
		return
	}
	buf := make(Itemset, len(s)-1)
	for i := range s {
		copy(buf, s[:i])
		copy(buf[i:], s[i+1:])
		if !fn(buf) {
			return
		}
	}
}

// ProperSubsets returns every non-empty proper subset of s, used when
// expanding frequent itemsets into association rules. The number of subsets
// is 2^k - 2; callers should keep k modest.
func (s Itemset) ProperSubsets() []Itemset {
	k := len(s)
	if k == 0 {
		return nil
	}
	n := 1 << k
	subs := make([]Itemset, 0, n-2)
	for mask := 1; mask < n-1; mask++ {
		sub := make(Itemset, 0, k-1)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, s[i])
			}
		}
		subs = append(subs, sub)
	}
	return subs
}

// Key encodes the itemset as a compact string usable as a map key.
// The encoding is 4 bytes big-endian per item, so Key preserves the
// lexicographic order of itemsets of equal size.
func (s Itemset) Key() string {
	return string(appendKey(make([]byte, 0, 4*len(s)), s))
}

// appendKey appends the Key encoding of s to dst.
func appendKey(dst []byte, s Itemset) []byte {
	for _, it := range s {
		dst = binary.BigEndian.AppendUint32(dst, it)
	}
	return dst
}

// FromKey decodes an itemset from its Key encoding.
func FromKey(key string) Itemset {
	if len(key)%4 != 0 {
		panic("itemset: FromKey on malformed key")
	}
	s := make(Itemset, len(key)/4)
	for i := range s {
		s[i] = binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4]))
	}
	return s
}

// String renders the itemset as "{1, 2, 3}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte('}')
	return b.String()
}

// Sort orders a slice of itemsets lexicographically in place.
func Sort(sets []Itemset) {
	// slices.SortFunc over sort.Slice: no reflect.Swapper allocation, and
	// this runs once per counting pass.
	slices.SortFunc(sets, Compare)
}

package itemset

import "testing"

func BenchmarkSetHas(b *testing.B) {
	s := NewSet()
	var probe []Itemset
	for i := 0; i < 10000; i++ {
		is := New(Item(i), Item(i+7), Item(i+19))
		s.Add(is)
		probe = append(probe, is)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Has(probe[i%len(probe)])
	}
}

func BenchmarkJoin(b *testing.B) {
	x, y := New(1, 2, 9), New(1, 2, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(x, y)
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	small := New(10, 400, 900)
	big := make(Itemset, 0, 200)
	for i := 0; i < 200; i++ {
		big = append(big, Item(i*5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small.SubsetOf(big)
	}
}

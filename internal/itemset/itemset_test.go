package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(5, 3, 5, 1, 3)
	if !s.Equal(Itemset{1, 3, 5}) {
		t.Fatalf("New(5,3,5,1,3) = %v", s)
	}
	if !s.Valid() {
		t.Fatal("New result not valid")
	}
	if New().K() != 0 {
		t.Fatal("empty New should have K 0")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		in   Itemset
		want bool
	}{
		{Itemset{}, true},
		{Itemset{7}, true},
		{Itemset{1, 2, 3}, true},
		{Itemset{1, 1}, false},
		{Itemset{2, 1}, false},
	}
	for _, c := range cases {
		if got := c.in.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 8)
	for _, x := range []Item{2, 4, 8} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []Item{0, 3, 9} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want bool
	}{
		{New(), New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(2, 3), New(1, 2, 3, 4), true},
		{New(1, 5), New(1, 2, 3), false},
		{New(1, 2, 3), New(1, 2), false},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{New(1, 2), New(1, 2), 0},
		{New(1, 2), New(1, 3), -1},
		{New(1, 3), New(1, 2), 1},
		{New(1), New(1, 2), -1},
		{New(1, 2), New(1), 1},
		{New(), New(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	j, ok := Join(New(1, 2), New(1, 3))
	if !ok || !j.Equal(New(1, 2, 3)) {
		t.Fatalf("Join = %v, %v", j, ok)
	}
	// Order of arguments must not matter.
	j2, ok := Join(New(1, 3), New(1, 2))
	if !ok || !j2.Equal(j) {
		t.Fatalf("Join reversed = %v, %v", j2, ok)
	}
	if _, ok := Join(New(1, 2), New(2, 3)); ok {
		t.Fatal("Join with differing prefixes should fail")
	}
	if _, ok := Join(New(1, 2), New(1, 2)); ok {
		t.Fatal("Join of identical itemsets should fail")
	}
	if _, ok := Join(New(1), New(1, 2)); ok {
		t.Fatal("Join of different sizes should fail")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New(raw...)
		return FromKey(s.Key()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyPreservesOrderSameSize(t *testing.T) {
	f := func(a, b [3]uint32) bool {
		x, y := New(a[0], a[1], a[2]), New(b[0], b[1], b[2])
		if len(x) != 3 || len(y) != 3 {
			return true // duplicates collapsed; ordering claim is per-size
		}
		c := Compare(x, y)
		switch {
		case c < 0:
			return x.Key() < y.Key()
		case c > 0:
			return x.Key() > y.Key()
		default:
			return x.Key() == y.Key()
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionIntersectProperties(t *testing.T) {
	f := func(a, b []uint32) bool {
		x, y := New(a...), New(b...)
		u, n := Union(x, y), Intersect(x, y)
		if !u.Valid() || !n.Valid() {
			return false
		}
		// Every member of both is in the union; intersection is in both.
		for _, it := range x {
			if !u.Contains(it) {
				return false
			}
		}
		for _, it := range y {
			if !u.Contains(it) {
				return false
			}
		}
		for _, it := range n {
			if !x.Contains(it) || !y.Contains(it) {
				return false
			}
		}
		return len(u)+len(n) == len(x)+len(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEachSubset(t *testing.T) {
	s := New(1, 2, 3)
	var subs []Itemset
	s.EachSubset(func(sub Itemset) bool {
		subs = append(subs, sub.Clone())
		return true
	})
	if len(subs) != 3 {
		t.Fatalf("got %d subsets", len(subs))
	}
	want := []Itemset{New(2, 3), New(1, 3), New(1, 2)}
	for i := range want {
		if !subs[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, subs[i], want[i])
		}
	}
	// Early stop.
	n := 0
	s.EachSubset(func(Itemset) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestProperSubsets(t *testing.T) {
	s := New(1, 2, 3)
	subs := s.ProperSubsets()
	if len(subs) != 6 { // 2^3 - 2
		t.Fatalf("got %d proper subsets", len(subs))
	}
	for _, sub := range subs {
		if len(sub) == 0 || len(sub) == len(s) {
			t.Errorf("improper subset %v", sub)
		}
		if !sub.SubsetOf(s) || !sub.Valid() {
			t.Errorf("bad subset %v", sub)
		}
	}
}

func TestWithoutExtend(t *testing.T) {
	s := New(1, 2, 3)
	if got := s.Without(1); !got.Equal(New(1, 3)) {
		t.Fatalf("Without(1) = %v", got)
	}
	if got := s.Extend(9); !got.Equal(New(1, 2, 3, 9)) {
		t.Fatalf("Extend(9) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extend with non-increasing item should panic")
		}
	}()
	s.Extend(2)
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	s := New(4, 7)
	if s.Min() != 4 || s.Max() != 7 {
		t.Fatalf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty should panic")
		}
	}()
	Itemset{}.Min()
}

func TestSortItemsets(t *testing.T) {
	sets := []Itemset{New(2, 3), New(1, 9), New(1, 2, 3), New(1, 2)}
	Sort(sets)
	want := []Itemset{New(1, 2), New(1, 2, 3), New(1, 9), New(2, 3)}
	for i := range want {
		if !sets[i].Equal(want[i]) {
			t.Fatalf("Sort order[%d] = %v, want %v", i, sets[i], want[i])
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a, b := New(1, 2), New(2, 3)
	s.Add(a)
	if !s.Has(a) || s.Has(b) {
		t.Fatal("Set membership wrong")
	}
	s.Add(a)
	if s.Len() != 1 {
		t.Fatal("double Add changed Len")
	}
	s.Add(b)
	sl := s.Slice()
	if len(sl) != 2 || !sl[0].Equal(a) || !sl[1].Equal(b) {
		t.Fatalf("Slice = %v", sl)
	}
	s.Remove(a)
	if s.Has(a) || s.Len() != 1 {
		t.Fatal("Remove failed")
	}
	other := SetOf(New(7, 8))
	s.Merge(other)
	if !s.Has(New(7, 8)) {
		t.Fatal("Merge failed")
	}
}

func TestSetHasMatchesKeyLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSet()
	var members []Itemset
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(20) // cross the 16-item stack-buffer boundary
		raw := make([]uint32, n)
		for j := range raw {
			raw[j] = rng.Uint32()
		}
		is := New(raw...)
		s.Add(is)
		members = append(members, is)
	}
	for _, m := range members {
		if !s.Has(m) {
			t.Fatalf("member %v not found", m)
		}
		if !s.HasKey(m.Key()) {
			t.Fatalf("HasKey(%v) false", m)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	a := New(1, 2)
	c.Add(a, 2)
	c.Add(a, 3)
	if c.Count(a) != 5 {
		t.Fatalf("Count = %d", c.Count(a))
	}
	c.Add(New(3, 4), 1)
	if got := c.AtLeast(2); len(got) != 1 || !got[0].Equal(a) {
		t.Fatalf("AtLeast(2) = %v", got)
	}
	other := NewCounter()
	other.Add(a, 10)
	c.Merge(other)
	if c.Count(a) != 15 {
		t.Fatalf("after merge Count = %d", c.Count(a))
	}
	cs := c.CountedSlice()
	if len(cs) != 2 || cs[0].Count != 15 {
		t.Fatalf("CountedSlice = %v", cs)
	}
}

func TestSortCountedDeterministic(t *testing.T) {
	cs := []Counted{
		{Set: New(2, 3), Count: 5},
		{Set: New(1, 2), Count: 5},
		{Set: New(9), Count: 7},
	}
	SortCounted(cs)
	if cs[0].Count != 7 {
		t.Fatal("descending count order violated")
	}
	if !cs[1].Set.Equal(New(1, 2)) {
		t.Fatal("lexicographic tiebreak violated")
	}
}

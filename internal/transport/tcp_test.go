package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pmihp/internal/itemset"
)

// startTCPCluster brings up n TCP exchange endpoints on loopback
// listeners, each with its own Serve loop.
func startTCPCluster(t *testing.T, n int) []*TCPExchange {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	xs := make([]*TCPExchange, n)
	for i := range xs {
		x, err := NewTCP(TCPOptions{
			ClusterID: 42, NodeID: i, Nodes: n, Peers: addrs,
			Retry:       RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
			IOTimeout:   5 * time.Second,
			WaitTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatalf("NewTCP(%d): %v", i, err)
		}
		xs[i] = x
		go x.Serve(listeners[i])
	}
	t.Cleanup(func() {
		for i := range xs {
			xs[i].Close()
			listeners[i].Close()
		}
	})
	return xs
}

// runAllGather drives the collective on every node concurrently and
// checks each one sees all n blobs.
func runAllGather(t *testing.T, xs []*TCPExchange, phase Phase) {
	t.Helper()
	n := len(xs)
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([][][]byte, n)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = xs[i].AllGather(phase, []byte(fmt.Sprintf("blob-from-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: AllGather(%s): %v", i, phase, err)
		}
		for j := 0; j < n; j++ {
			want := fmt.Sprintf("blob-from-%d", j)
			if string(outs[i][j]) != want {
				t.Fatalf("node %d slot %d = %q, want %q", i, j, outs[i][j], want)
			}
		}
	}
}

func TestTCPAllGatherCube(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			xs := startTCPCluster(t, n)
			runAllGather(t, xs, PhaseItemCounts)
			runAllGather(t, xs, PhaseTHT) // distinct phases don't collide
		})
	}
}

func TestTCPAllGatherStarFallback(t *testing.T) {
	for _, n := range []int{3, 5, 6} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runAllGather(t, startTCPCluster(t, n), PhaseItemCounts)
		})
	}
}

func TestTCPPoll(t *testing.T) {
	xs := startTCPCluster(t, 2)
	xs[1].SetPollHandler(func(k int, sets []itemset.Itemset) []int32 {
		counts := make([]int32, len(sets))
		for i, s := range sets {
			counts[i] = int32(s[0]) * int32(k)
		}
		return counts
	})
	sets := []itemset.Itemset{{3, 9}, {5, 7}}
	counts, err := xs[0].Poll(1, 2, sets)
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if len(counts) != 2 || counts[0] != 6 || counts[1] != 10 {
		t.Fatalf("counts = %v, want [6 10]", counts)
	}
	// Second poll reuses the persistent connection.
	if _, err := xs[0].Poll(1, 2, sets); err != nil {
		t.Fatalf("second Poll: %v", err)
	}
	if s := xs[0].Stats().Snapshot(); s.Retries != 0 {
		t.Fatalf("unexpected retries: %+v", s)
	}
}

func TestTCPPollNoHandlerIsAttributedError(t *testing.T) {
	xs := startTCPCluster(t, 2)
	_, err := xs[0].Poll(1, 1, []itemset.Itemset{{1}})
	if err == nil {
		t.Fatal("want error when peer has no poll handler")
	}
}

func TestTCPPollRecoversFromDroppedConn(t *testing.T) {
	xs := startTCPCluster(t, 2)
	xs[1].SetPollHandler(func(k int, sets []itemset.Itemset) []int32 {
		return make([]int32, len(sets))
	})
	if _, err := xs[0].Poll(1, 1, []itemset.Itemset{{1}}); err != nil {
		t.Fatalf("first Poll: %v", err)
	}
	// Kill the persistent poll connection out from under the client;
	// the next poll must redial transparently.
	xs[0].pollPeers[1].mu.Lock()
	xs[0].pollPeers[1].conn.Close()
	xs[0].pollPeers[1].mu.Unlock()
	if _, err := xs[0].Poll(1, 1, []itemset.Itemset{{2}}); err != nil {
		t.Fatalf("Poll after drop: %v", err)
	}
	if s := xs[0].Stats().Snapshot(); s.Retries == 0 {
		t.Fatalf("expected a counted retry after the drop, stats %+v", s)
	}
}

func TestTCPDeadPeerExhaustsRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	x, err := NewTCP(TCPOptions{
		ClusterID: 1, NodeID: 0, Nodes: 2,
		Peers:       []string{"unused", dead},
		Retry:       RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		IOTimeout:   200 * time.Millisecond,
		WaitTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	_, err = x.Poll(1, 1, []itemset.Itemset{{1}})
	if err == nil {
		t.Fatal("want error polling a dead peer")
	}
	if s := x.Stats().Snapshot(); s.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", s.Retries)
	}
}

func TestTCPRejectsWrongClusterID(t *testing.T) {
	xs := startTCPCluster(t, 2)
	intruder, err := NewTCP(TCPOptions{
		ClusterID: 999, NodeID: 0, Nodes: 2,
		Peers:       []string{"unused", xs[1].opt.Peers[1]},
		Retry:       RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		IOTimeout:   300 * time.Millisecond,
		WaitTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer intruder.Close()
	if _, err := intruder.Poll(1, 1, []itemset.Itemset{{1}}); err == nil {
		t.Fatal("want error for mismatched cluster id")
	}
}

func TestChanExchangeAllGatherAndPoll(t *testing.T) {
	xs := NewChanGroup(4)
	var wg sync.WaitGroup
	outs := make([][][]byte, 4)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _ = xs[i].AllGather(PhaseTHT, []byte{byte(i)})
		}(i)
	}
	wg.Wait()
	for i := range xs {
		for j := range xs {
			if len(outs[i][j]) != 1 || outs[i][j][0] != byte(j) {
				t.Fatalf("node %d slot %d = %v", i, j, outs[i][j])
			}
		}
	}

	xs[2].SetPollHandler(func(k int, sets []itemset.Itemset) []int32 {
		counts := make([]int32, len(sets))
		for i := range counts {
			counts[i] = 7
		}
		return counts
	})
	counts, err := xs[0].Poll(2, 1, []itemset.Itemset{{4}})
	if err != nil || len(counts) != 1 || counts[0] != 7 {
		t.Fatalf("Poll = %v, %v", counts, err)
	}
	if _, err := xs[0].Poll(0, 1, nil); err == nil {
		t.Fatal("want error for self-poll")
	}
	if _, err := xs[0].Poll(1, 1, []itemset.Itemset{{1}}); err == nil {
		t.Fatal("want error for handler-less peer")
	}
}

func TestChanExchangeDoubleEntryFails(t *testing.T) {
	xs := NewChanGroup(1)
	if _, err := xs[0].AllGather(PhaseFinal, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := xs[0].AllGather(PhaseFinal, nil); err == nil {
		t.Fatal("want error entering the same phase twice")
	}
}

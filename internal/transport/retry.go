package transport

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryPolicy bounds the retries of a transient-failure-prone operation
// (dialing a peer, one cube step, one poll round trip). Zero values
// select the defaults.
type RetryPolicy struct {
	// Attempts is the total number of tries (first try included).
	Attempts int
	// BaseDelay is the wait before the first retry; each subsequent
	// retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetry is the policy used when a zero RetryPolicy is given:
// five attempts, 25ms first backoff, capped at one second.
var DefaultRetry = RetryPolicy{Attempts: 5, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second}

// WithDefaults fills zero fields from DefaultRetry.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetry.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	return p
}

// permanentError marks an error that retrying cannot fix (a protocol
// violation or an explicit peer-reported failure, as opposed to a
// connection drop).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately instead of retrying.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retry runs f up to p.Attempts times with exponential backoff between
// tries, counting each retry into stats (which may be nil). It stops
// early on ctx cancellation or when f returns an error wrapped by
// Permanent. The returned error is the last failure, annotated with the
// attempt count when the budget is exhausted.
func Retry(ctx context.Context, p RetryPolicy, stats *WireStats, f func() error) error {
	p = p.WithDefaults()
	delay := p.BaseDelay
	var last error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			if stats != nil {
				stats.AddRetry()
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("canceled while retrying: %w", last)
			case <-time.After(delay):
			}
			if delay *= 2; delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		err := f()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if ctx.Err() != nil {
			return fmt.Errorf("canceled: %w", last)
		}
	}
	return fmt.Errorf("after %d attempts: %w", p.Attempts, last)
}

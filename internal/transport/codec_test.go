package transport

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"pmihp/internal/itemset"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var stats WireStats
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, MsgCubeBlock, payload, &stats); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	typ, got, err := ReadFrame(&buf, &stats)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != MsgCubeBlock || !bytes.Equal(got, payload) {
		t.Fatalf("round trip got type=%d payload=%v", typ, got)
	}
	snap := stats.Snapshot()
	want := int64(frameHeaderLen + len(payload))
	if snap.MessagesSent != 1 || snap.MessagesReceived != 1 || snap.BytesSent != want || snap.BytesReceived != want {
		t.Fatalf("stats = %+v, want 1 msg / %d bytes each way", snap, want)
	}
}

func TestFrameRejectsBadVersionAndLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = WireVersion + 1
	if _, _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
		t.Fatal("want error for wrong wire version")
	}

	// Oversized length prefix must be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, WireVersion, MsgHello}
	if _, _, err := ReadFrame(bytes.NewReader(huge), nil); err == nil {
		t.Fatal("want error for oversized frame length")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{ClusterID: 0xdeadbeefcafe, From: -1, To: 3, Purpose: PurposeControl}
	out, err := DecodeHello(AppendHello(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := DecodeHello(AppendHello(nil, Hello{Purpose: 99})); err == nil {
		t.Fatal("want error for unknown purpose")
	}
	// PurposePool is a valid purpose since wire version 5.
	if _, err := DecodeHello(AppendHello(nil, Hello{From: -1, To: -1, Purpose: PurposePool})); err != nil {
		t.Fatalf("pool purpose rejected: %v", err)
	}
}

func TestPoolJoinRoundTrip(t *testing.T) {
	in := PoolJoin{Addr: "127.0.0.1:7007", CapacityBytes: 1 << 30}
	out, err := DecodePoolJoin(AppendPoolJoin(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := DecodePoolJoin(AppendPoolJoin(nil, PoolJoin{Addr: ""})); err == nil {
		t.Fatal("want error for empty address")
	}
	if _, err := DecodePoolJoin(AppendPoolJoin(nil, PoolJoin{Addr: "a", CapacityBytes: -1})); err == nil {
		t.Fatal("want error for negative capacity")
	}
}

func TestInitRoundTrip(t *testing.T) {
	in := Init{
		ClusterID: 7, NodeID: 1, Nodes: 3,
		TotalDocs: 1000, NumItems: 5000, GlobalMin: 10,
		THTEntries: 400, PartitionSize: 100, MaxK: 8, Workers: 2,
		DenseThreshold:  0.0625,
		Partitioner:     1,
		HeartbeatMillis: 250,
		PeerAddrs:       []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"},
		DB:              []byte("PMDB-partition-bytes"),
		Resume:          []byte("PMCK-resume-checkpoint"),
	}
	out, err := DecodeInit(AppendInit(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	// +Inf (force-compressed) must survive the wire; it is a legal
	// resolved threshold, not a sentinel.
	inf := in
	inf.DenseThreshold = math.Inf(1)
	if out, err := DecodeInit(AppendInit(nil, inf)); err != nil || !math.IsInf(out.DenseThreshold, 1) {
		t.Fatalf("inf threshold: got %v, %v", out.DenseThreshold, err)
	}

	bad := in
	bad.PeerAddrs = bad.PeerAddrs[:2]
	if _, err := DecodeInit(AppendInit(nil, bad)); err == nil {
		t.Fatal("want error for peer-address/node-count mismatch")
	}
	bad = in
	bad.DenseThreshold = -1
	if _, err := DecodeInit(AppendInit(nil, bad)); err == nil {
		t.Fatal("want error for negative dense threshold")
	}
	bad.DenseThreshold = math.NaN()
	if _, err := DecodeInit(AppendInit(nil, bad)); err == nil {
		t.Fatal("want error for NaN dense threshold")
	}
	bad = in
	bad.Partitioner = 7
	if _, err := DecodeInit(AppendInit(nil, bad)); err == nil {
		t.Fatal("want error for unknown partitioner")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	in := Heartbeat{Passes: 12}
	out, err := DecodeHeartbeat(AppendHeartbeat(nil, in))
	if err != nil || out != in {
		t.Fatalf("got %+v, %v; want %+v", out, err, in)
	}
	// An empty payload is a bare beacon, not corruption.
	if out, err := DecodeHeartbeat(nil); err != nil || out != (Heartbeat{}) {
		t.Fatalf("empty payload: got %+v, %v", out, err)
	}
	if _, err := DecodeHeartbeat(AppendHeartbeat(nil, Heartbeat{Passes: -1})); err == nil {
		t.Fatal("want error for negative pass count")
	}
	if _, err := DecodeHeartbeat([]byte{1, 2}); err == nil {
		t.Fatal("want error for truncated heartbeat")
	}
	if _, err := DecodeHeartbeat(append(AppendHeartbeat(nil, in), 0xAB)); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestCubeBlockRoundTrip(t *testing.T) {
	in := CubeBlock{
		Phase: PhaseTHT, Step: 2, From: 5,
		Blobs: []NodeBlob{
			{Node: 0, Data: []byte{9, 8, 7}},
			{Node: 5, Data: nil},
			{Node: 3, Data: []byte("tht-segment")},
		},
	}
	out, err := DecodeCubeBlock(AppendCubeBlock(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Phase != in.Phase || out.Step != in.Step || out.From != in.From || len(out.Blobs) != len(in.Blobs) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	for i := range in.Blobs {
		if out.Blobs[i].Node != in.Blobs[i].Node || !bytes.Equal(out.Blobs[i].Data, in.Blobs[i].Data) {
			t.Fatalf("blob %d: got %+v want %+v", i, out.Blobs[i], in.Blobs[i])
		}
	}
}

func TestCandidateBatchRoundTrip(t *testing.T) {
	in := CandidateBatch{K: 3, Items: []uint32{1, 2, 3, 4, 5, 6}}
	out, err := DecodeCandidateBatch(AppendCandidateBatch(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	sets := out.Sets()
	if len(sets) != 2 || !sets[0].Equal(itemset.Itemset{1, 2, 3}) || !sets[1].Equal(itemset.Itemset{4, 5, 6}) {
		t.Fatalf("Sets() = %v", sets)
	}

	// Items not a multiple of K is corruption.
	raw := AppendCandidateBatch(nil, CandidateBatch{K: 3, Items: []uint32{1, 2, 3, 4}})
	if _, err := DecodeCandidateBatch(raw); err == nil {
		t.Fatal("want error for ragged batch")
	}
}

func TestCountVectorRoundTrip(t *testing.T) {
	in := CountVector{Counts: []int32{0, 5, -1, 1 << 30}}
	out, err := DecodeCountVector(AppendCountVector(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestCountedListRoundTrip(t *testing.T) {
	in := []itemset.Counted{
		{Set: itemset.Itemset{1, 2}, Count: 17},
		{Set: itemset.Itemset{3, 9, 12}, Count: 4},
	}
	out, err := DecodeCountedList(AppendCountedList(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v want %+v", out, in)
	}

	// Non-increasing itemsets are rejected (they would corrupt the
	// merge's dedupe invariant downstream).
	bad := AppendCountedList(nil, []itemset.Counted{{Set: itemset.Itemset{5, 5}, Count: 1}})
	if _, err := DecodeCountedList(bad); err == nil {
		t.Fatal("want error for non-increasing itemset")
	}
}

func TestNodeDoneRoundTrip(t *testing.T) {
	in := NodeDone{
		Node:         2,
		GlobalCounts: []uint32{3, 0, 9},
		Found: []itemset.Counted{
			{Set: itemset.Itemset{1, 4}, Count: 12},
		},
		Stats: WireStatsSnapshot{
			MessagesSent: 10, MessagesReceived: 11,
			BytesSent: 1000, BytesReceived: 1100, Retries: 2,
		},
		PhaseSeconds: [4]float64{0.5, 1.25, 0.0, 3.75},
		BusySeconds:  2.125,
	}
	out, err := DecodeNodeDone(AppendNodeDone(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := ErrorMsg{Text: "node 3: partition load failed"}
	out, err := DecodeError(AppendError(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestUint32sRoundTrip(t *testing.T) {
	in := []uint32{0, 1, 1 << 31, 42}
	out, err := DecodeUint32s(AppendUint32s(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %v want %v", out, in)
	}
}

// Every decoder must reject truncations and trailing garbage with an
// error (never a panic).
func TestDecodersRejectTruncationAndTrailing(t *testing.T) {
	encodings := map[string][]byte{
		"hello": AppendHello(nil, Hello{ClusterID: 1, From: 0, Purpose: PurposeCube}),
		"init": AppendInit(nil, Init{
			ClusterID: 1, NodeID: 0, Nodes: 1, TotalDocs: 2, NumItems: 3,
			GlobalMin: 1, THTEntries: 4, PartitionSize: 10, MaxK: 3, Workers: 1,
			PeerAddrs: []string{"a"}, DB: []byte{1},
		}),
		"cube":   AppendCubeBlock(nil, CubeBlock{Phase: PhaseItemCounts, Step: 0, From: 1, Blobs: []NodeBlob{{Node: 0, Data: []byte{1, 2}}}}),
		"batch":  AppendCandidateBatch(nil, CandidateBatch{K: 2, Items: []uint32{1, 2}}),
		"counts": AppendCountVector(nil, CountVector{Counts: []int32{1}}),
		"done":   AppendNodeDone(nil, NodeDone{Node: 0, Found: []itemset.Counted{{Set: itemset.Itemset{1}, Count: 1}}}),
		"error":  AppendError(nil, ErrorMsg{Text: "x"}),
		"pool":   AppendPoolJoin(nil, PoolJoin{Addr: "127.0.0.1:1"}),
	}
	decoders := map[string]func([]byte) error{
		"hello":  func(b []byte) error { _, err := DecodeHello(b); return err },
		"init":   func(b []byte) error { _, err := DecodeInit(b); return err },
		"cube":   func(b []byte) error { _, err := DecodeCubeBlock(b); return err },
		"batch":  func(b []byte) error { _, err := DecodeCandidateBatch(b); return err },
		"counts": func(b []byte) error { _, err := DecodeCountVector(b); return err },
		"done":   func(b []byte) error { _, err := DecodeNodeDone(b); return err },
		"error":  func(b []byte) error { _, err := DecodeError(b); return err },
		"pool":   func(b []byte) error { _, err := DecodePoolJoin(b); return err },
	}
	for name, enc := range encodings {
		dec := decoders[name]
		for cut := 0; cut < len(enc); cut++ {
			if err := dec(enc[:cut]); err == nil {
				t.Errorf("%s: truncation to %d bytes decoded without error", name, cut)
			}
		}
		if err := dec(append(append([]byte{}, enc...), 0xAB)); err == nil {
			t.Errorf("%s: trailing byte decoded without error", name)
		}
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	err := Retry(t.Context(), RetryPolicy{Attempts: 5, BaseDelay: 1, MaxDelay: 1}, nil, func() error {
		calls++
		return Permanent(errFake)
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls=%d err=%v; want 1 call and an error", calls, err)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	var stats WireStats
	calls := 0
	err := Retry(t.Context(), RetryPolicy{Attempts: 3, BaseDelay: 1, MaxDelay: 1}, &stats, func() error {
		calls++
		return errFake
	})
	if err == nil || calls != 3 {
		t.Fatalf("calls=%d err=%v; want 3 calls and an error", calls, err)
	}
	if got := stats.Snapshot().Retries; got != 2 {
		t.Fatalf("retries=%d, want 2", got)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(t.Context(), RetryPolicy{Attempts: 5, BaseDelay: 1, MaxDelay: 1}, nil, func() error {
		calls++
		if calls < 3 {
			return errFake
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v; want success on call 3", calls, err)
	}
}

var errFake = bytes.ErrTooLarge

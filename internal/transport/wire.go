// Package transport is the real communication substrate behind the
// parallel miners: a length-prefixed binary framing, a versioned wire
// codec for PMIHP's messages (candidate sets, local count vectors, THT
// segments, merged frequent lists), and a pluggable Exchange with two
// implementations — an in-process channel exchange (the default used by
// tests and the simulated runtime, no sockets involved) and a TCP
// exchange that runs the logical binary n-cube over real connections
// with dial/accept deadlines and bounded exponential-backoff retry.
//
// The simulated cluster in internal/cluster models this traffic; this
// package measures it. The two coexist: internal/core keeps mining over
// the modeled fabric with byte-identical simulated clocks, while
// internal/distmine drives the same algorithm across OS processes over
// this package and reports measured wire metrics alongside the model's.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
)

// WireVersion is the protocol version carried in every frame header.
// Decoders reject frames from other versions. Version 2 added the
// Hello routing target (To), session heartbeats/progress reports, and
// the resumable-session fields of Init. Version 3 added the Init
// posting-density threshold. Version 4 added the Init partitioner and
// the heartbeat pass-progress payload. Version 5 added the worker-pool
// membership messages (PurposePool, MsgPoolJoin/MsgPoolLeave) and the
// NodeDone busy-seconds field.
const WireVersion = 5

// MaxFrame bounds a frame payload; oversized length prefixes are
// rejected before any allocation (a corrupt or hostile peer cannot make
// a node allocate gigabytes).
const MaxFrame = 1 << 28

// frameHeaderLen is the fixed frame prefix: u32 payload length,
// u8 version, u8 message type.
const frameHeaderLen = 6

// Message types.
const (
	MsgHello uint8 = iota + 1
	MsgInit
	MsgCubeBlock
	MsgCandidateBatch
	MsgCountVector
	MsgNodeDone
	MsgError
	MsgShutdown
	// MsgHeartbeat is a daemon's periodic liveness beacon on the control
	// connection; the coordinator declares a node dead after a
	// configurable quiet interval. The payload is an encoded Heartbeat
	// carrying the node's pass progress, which the coordinator's
	// straggler detector compares across the fleet.
	MsgHeartbeat
	// MsgProgress carries an encoded Checkpoint from node 0 to the
	// coordinator after a collective completes, so a failed session can
	// resume instead of restarting from scratch.
	MsgProgress
	// MsgPoolJoin is a daemon's registration with a worker pool: the
	// first frame after the PurposePool Hello, carrying an encoded
	// PoolJoin (the daemon's dialable address and capacity). The same
	// connection then carries periodic MsgHeartbeat beacons; the pool
	// declares the member gone when the connection breaks or falls
	// quiet past its heartbeat timeout.
	MsgPoolJoin
	// MsgPoolLeave is a member's graceful deregistration (empty
	// payload); the pool drops it immediately instead of waiting out
	// the heartbeat timeout.
	MsgPoolLeave
)

// Connection purposes carried by Hello.
const (
	PurposeControl uint8 = 1 // coordinator driving a node daemon
	PurposeCube    uint8 = 2 // one n-cube (or star) exchange step
	PurposePoll    uint8 = 3 // persistent candidate-poll channel
	PurposePool    uint8 = 4 // daemon registering with a worker pool
)

// WireStats accumulates a node's real traffic counters. All methods are
// safe for concurrent use; collectives, poll clients, and accept
// handlers all feed the same instance.
type WireStats struct {
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	retries   atomic.Int64
}

// WireStatsSnapshot is a point-in-time copy of WireStats, and the form
// stats take on the wire (inside NodeDone) and in summaries.
type WireStatsSnapshot struct {
	MessagesSent     int64
	MessagesReceived int64
	BytesSent        int64
	BytesReceived    int64
	Retries          int64
}

// AddSent records n originated messages totalling b wire bytes.
func (s *WireStats) AddSent(n int, b int64) {
	s.msgsSent.Add(int64(n))
	s.bytesSent.Add(b)
}

// AddRecv records n received messages totalling b wire bytes.
func (s *WireStats) AddRecv(n int, b int64) {
	s.msgsRecv.Add(int64(n))
	s.bytesRecv.Add(b)
}

// AddRetry records a retried operation.
func (s *WireStats) AddRetry() { s.retries.Add(1) }

// Snapshot returns the current totals.
func (s *WireStats) Snapshot() WireStatsSnapshot {
	return WireStatsSnapshot{
		MessagesSent:     s.msgsSent.Load(),
		MessagesReceived: s.msgsRecv.Load(),
		BytesSent:        s.bytesSent.Load(),
		BytesReceived:    s.bytesRecv.Load(),
		Retries:          s.retries.Load(),
	}
}

// Add folds another snapshot into this one (cluster-wide aggregation).
func (s *WireStatsSnapshot) Add(o WireStatsSnapshot) {
	s.MessagesSent += o.MessagesSent
	s.MessagesReceived += o.MessagesReceived
	s.BytesSent += o.BytesSent
	s.BytesReceived += o.BytesReceived
	s.Retries += o.Retries
}

// Delta returns the traffic accumulated since prev — the per-phase
// attribution the observability spans use (snapshot before and after a
// collective, attribute the difference).
func (s WireStatsSnapshot) Delta(prev WireStatsSnapshot) WireStatsSnapshot {
	return WireStatsSnapshot{
		MessagesSent:     s.MessagesSent - prev.MessagesSent,
		MessagesReceived: s.MessagesReceived - prev.MessagesReceived,
		BytesSent:        s.BytesSent - prev.BytesSent,
		BytesReceived:    s.BytesReceived - prev.BytesReceived,
		Retries:          s.Retries - prev.Retries,
	}
}

// TotalBytes returns bytes sent plus received.
func (s WireStatsSnapshot) TotalBytes() int64 { return s.BytesSent + s.BytesReceived }

// WriteFrame writes one length-prefixed frame. stats may be nil.
func WriteFrame(w io.Writer, msgType uint8, payload []byte, stats *WireStats) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = WireVersion
	buf[5] = msgType
	copy(buf[frameHeaderLen:], payload)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if stats != nil {
		stats.AddSent(1, int64(len(buf)))
	}
	return nil
}

// ReadFrame reads one frame, validating the version and the length
// prefix before allocating the payload. stats may be nil.
func ReadFrame(r io.Reader, stats *WireStats) (msgType uint8, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("transport: frame length %d exceeds limit %d", n, MaxFrame)
	}
	if hdr[4] != WireVersion {
		return 0, nil, fmt.Errorf("transport: unsupported wire version %d (want %d)", hdr[4], WireVersion)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: short frame payload: %w", err)
	}
	if stats != nil {
		stats.AddRecv(1, int64(frameHeaderLen)+int64(n))
	}
	return hdr[5], payload, nil
}

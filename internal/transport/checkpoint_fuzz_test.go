package transport

import (
	"bytes"
	"testing"
)

// FuzzCheckpoint holds the checkpoint codec to the same bar as the
// frame codec (codec_fuzz_test.go): arbitrary input never panics, and
// anything that decodes successfully re-encodes to the exact bytes it
// came from — one canonical encoding per checkpoint.
func FuzzCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(checkpointMagic))
	f.Add(AppendCheckpoint(nil, sampleCheckpoint(StageNone)))
	f.Add(AppendCheckpoint(nil, sampleCheckpoint(StageItemCounts)))
	f.Add(AppendCheckpoint(nil, sampleCheckpoint(StageTHT)))
	f.Add(AppendCheckpoint(nil, sampleCheckpoint(StageStream)))
	skew := AppendCheckpoint(nil, sampleCheckpoint(StageTHT))
	skew[len(checkpointMagic)] = CheckpointVersion + 1
	f.Add(skew)
	// A stream checkpoint whose stage byte claims a cluster stage: the
	// stage/payload agreement checks must reject it, not decode garbage.
	cross := AppendCheckpoint(nil, sampleCheckpoint(StageStream))
	f.Add(cross)
	crossStage := append([]byte(nil), cross...)
	crossStage[len(checkpointMagic)+1+8+4] = StageItemCounts
	f.Add(crossStage)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if got := AppendCheckpoint(nil, c); !bytes.Equal(got, data) {
			t.Fatalf("checkpoint re-encode mismatch: %x vs %x", got, data)
		}
	})
}

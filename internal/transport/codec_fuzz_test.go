package transport

import (
	"bytes"
	"testing"

	"pmihp/internal/itemset"
)

// FuzzCodec throws arbitrary bytes at every decoder. The invariants:
// decoders never panic on any input, and whatever decodes successfully
// re-encodes to the exact bytes it was decoded from (the codec has one
// canonical encoding per message).
func FuzzCodec(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(MsgHello), AppendHello(nil, Hello{ClusterID: 1, From: 2, Purpose: PurposeCube}))
	f.Add(uint8(MsgInit), AppendInit(nil, Init{
		ClusterID: 9, NodeID: 0, Nodes: 2, TotalDocs: 10, NumItems: 20,
		GlobalMin: 2, THTEntries: 100, PartitionSize: 50, MaxK: 4, Workers: 1,
		DenseThreshold: 0.0625,
		PeerAddrs:      []string{"127.0.0.1:7001", "127.0.0.1:7002"}, DB: []byte("PMDB"),
	}))
	f.Add(uint8(MsgCubeBlock), AppendCubeBlock(nil, CubeBlock{
		Phase: PhaseTHT, Step: 1, From: 3,
		Blobs: []NodeBlob{{Node: 3, Data: []byte{1, 2, 3}}, {Node: 0, Data: nil}},
	}))
	f.Add(uint8(MsgCandidateBatch), AppendCandidateBatch(nil, CandidateBatch{K: 2, Items: []uint32{1, 2, 3, 4}}))
	f.Add(uint8(MsgCountVector), AppendCountVector(nil, CountVector{Counts: []int32{7, 0, 9}}))
	f.Add(uint8(MsgNodeDone), AppendNodeDone(nil, NodeDone{
		Node: 1, GlobalCounts: []uint32{4, 5},
		Found: []itemset.Counted{{Set: itemset.Itemset{2, 7}, Count: 3}},
		Stats: WireStatsSnapshot{MessagesSent: 1, BytesSent: 100},
	}))
	f.Add(uint8(MsgError), AppendError(nil, ErrorMsg{Text: "boom"}))
	f.Add(uint8(MsgShutdown), AppendCountedList(nil, []itemset.Counted{{Set: itemset.Itemset{1, 2, 3}, Count: 5}}))
	f.Add(uint8(MsgPoolJoin), AppendPoolJoin(nil, PoolJoin{Addr: "127.0.0.1:7010", CapacityBytes: 1 << 20}))

	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		switch which % 10 {
		case 0:
			if v, err := DecodeUint32s(data); err == nil {
				if got := AppendUint32s(nil, v); !bytes.Equal(got, data) {
					t.Fatalf("uint32s re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 1:
			if h, err := DecodeHello(data); err == nil {
				if got := AppendHello(nil, h); !bytes.Equal(got, data) {
					t.Fatalf("hello re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 2:
			if m, err := DecodeInit(data); err == nil {
				if got := AppendInit(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("init re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 3:
			if m, err := DecodeCubeBlock(data); err == nil {
				if got := AppendCubeBlock(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("cube re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 4:
			if m, err := DecodeCandidateBatch(data); err == nil {
				if got := AppendCandidateBatch(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("batch re-encode mismatch: %x vs %x", got, data)
				}
				m.Sets() // must not panic either
			}
		case 5:
			if m, err := DecodeCountVector(data); err == nil {
				if got := AppendCountVector(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("counts re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 6:
			if m, err := DecodeNodeDone(data); err == nil {
				if got := AppendNodeDone(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("done re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 7:
			if m, err := DecodeError(data); err == nil {
				if got := AppendError(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("error re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 8:
			if list, err := DecodeCountedList(data); err == nil {
				if got := AppendCountedList(nil, list); !bytes.Equal(got, data) {
					t.Fatalf("counted-list re-encode mismatch: %x vs %x", got, data)
				}
			}
		case 9:
			if m, err := DecodePoolJoin(data); err == nil {
				if got := AppendPoolJoin(nil, m); !bytes.Equal(got, data) {
					t.Fatalf("pool-join re-encode mismatch: %x vs %x", got, data)
				}
			}
		}
	})
}

// FuzzFrame holds ReadFrame to the same bar: arbitrary byte streams
// must produce an error or a frame, never a panic or an oversized
// allocation.
func FuzzFrame(f *testing.F) {
	var ok bytes.Buffer
	WriteFrame(&ok, MsgHello, []byte("hi"), nil)
	f.Add(ok.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err == nil {
			var buf bytes.Buffer
			if werr := WriteFrame(&buf, typ, payload, nil); werr != nil {
				t.Fatalf("re-framing decoded frame failed: %v", werr)
			}
			if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
				t.Fatalf("frame re-encode mismatch")
			}
		}
	})
}

package transport

import (
	"fmt"
	"os"
	"path/filepath"
)

// The checkpoint codec. A Checkpoint is the coordinator's compact
// snapshot of a mining session's collective progress: enough state to
// re-enter the PMIHP protocol after a worker failure without repeating
// the exchanges that already completed. It travels in two forms — as a
// file under the coordinator's checkpoint directory, and inside the
// Init of a resumed session — and both use the same versioned encoding.
//
// The format is versioned independently of the frame protocol: a magic
// prefix, a version byte, then the body. Decoders from one version
// reject every other version with an attributed error (never a panic),
// so a stale daemon meeting a newer checkpoint degrades to a clean
// session failure the coordinator can see.

// CheckpointVersion is the current checkpoint format version. Version 2
// added the stream stage and its opaque state payload.
const CheckpointVersion = 2

// checkpointMagic prefixes every encoded checkpoint.
const checkpointMagic = "PMCK"

// Session stages a checkpoint can capture. Stages are cumulative: a
// checkpoint at StageTHT also carries the item counts of
// StageItemCounts.
const (
	// StageNone: no collective has completed; a resume restarts the
	// protocol from the beginning.
	StageNone uint8 = 0
	// StageItemCounts: the global item-count all-reduce completed;
	// GlobalCounts holds the cluster-wide per-item support vector.
	StageItemCounts uint8 = 1
	// StageTHT: the THT exchange completed; THTSegments holds every
	// node's frequent-row THT segment in wire form.
	StageTHT uint8 = 2
	// StageStream: an incremental-mining snapshot (internal/streammine) —
	// Stream holds the miner's encoded window state (retained per-day
	// counts, window bounds, frequent sets). Stream checkpoints never
	// carry the cluster-collective payloads of the other stages.
	StageStream uint8 = 3
)

// StageName names a checkpoint stage for logs and errors.
func StageName(stage uint8) string {
	switch stage {
	case StageNone:
		return "none"
	case StageItemCounts:
		return "item-counts"
	case StageTHT:
		return "tht"
	case StageStream:
		return "stream"
	}
	return fmt.Sprintf("stage-%d", stage)
}

// Checkpoint is a session snapshot taken after a collective exchange
// completes. ClusterID is the session lineage (the first attempt's id);
// Nodes is the logical cluster size, which failovers never change — the
// database split is fixed at session start, so every resumed attempt
// mines the same partitions and the final frequent list stays
// byte-identical to the in-process miner's.
type Checkpoint struct {
	ClusterID uint64
	Nodes     int32
	Stage     uint8
	// GlobalCounts is the all-reduced per-item support vector; valid at
	// StageItemCounts and beyond.
	GlobalCounts []uint32
	// THTSegments holds each logical node's THT segment in tht wire
	// form, indexed by node id; valid at StageTHT (len == Nodes).
	THTSegments [][]byte
	// Stream is the opaque incremental-mining state payload; valid (and
	// required non-empty) at StageStream only. The transport layer never
	// interprets it — internal/streammine owns its encoding.
	Stream []byte
}

// AppendCheckpoint appends the versioned encoding of c to b.
func AppendCheckpoint(b []byte, c Checkpoint) []byte {
	b = append(b, checkpointMagic...)
	b = append(b, CheckpointVersion)
	b = appendU64(b, c.ClusterID)
	b = appendU32(b, uint32(c.Nodes))
	b = append(b, c.Stage)
	b = appendU32(b, uint32(len(c.GlobalCounts)))
	for _, v := range c.GlobalCounts {
		b = appendU32(b, v)
	}
	b = appendU32(b, uint32(len(c.THTSegments)))
	for _, seg := range c.THTSegments {
		b = appendBytes(b, seg)
	}
	b = appendBytes(b, c.Stream)
	return b
}

// DecodeCheckpoint decodes a versioned checkpoint, rejecting truncated
// or corrupt input, unknown versions, and stage/payload mismatches with
// attributed errors.
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	var c Checkpoint
	if len(b) < len(checkpointMagic)+1 {
		return c, fmt.Errorf("transport: checkpoint header truncated: %d bytes", len(b))
	}
	if string(b[:len(checkpointMagic)]) != checkpointMagic {
		return c, fmt.Errorf("transport: not a checkpoint (magic %q)", b[:len(checkpointMagic)])
	}
	if v := b[len(checkpointMagic)]; v != CheckpointVersion {
		return c, fmt.Errorf("transport: unsupported checkpoint version %d (this build speaks version %d)",
			v, CheckpointVersion)
	}
	r := wireReader{b: b[len(checkpointMagic)+1:]}
	c.ClusterID = r.u64()
	c.Nodes = r.i32()
	c.Stage = r.u8()
	c.GlobalCounts = r.u32s()
	if len(c.GlobalCounts) == 0 {
		c.GlobalCounts = nil
	}
	nSegs := r.count(4) // a segment needs at least its length prefix
	for i := 0; i < nSegs && r.err == nil; i++ {
		c.THTSegments = append(c.THTSegments, r.bytes())
	}
	c.Stream = r.bytes()
	if len(c.Stream) == 0 {
		c.Stream = nil
	}
	if r.err == nil {
		isStream := c.Stage == StageStream
		if c.Nodes <= 0 {
			r.fail("checkpoint for a %d-node cluster", c.Nodes)
		} else if c.Stage > StageStream {
			r.fail("unknown checkpoint stage %d", c.Stage)
		} else if isStream && len(c.Stream) == 0 {
			r.fail("stage %s checkpoint without stream state", StageName(c.Stage))
		} else if !isStream && len(c.Stream) != 0 {
			r.fail("stage %s checkpoint carries %d stream-state bytes", StageName(c.Stage), len(c.Stream))
		} else if isStream && (len(c.GlobalCounts) != 0 || len(c.THTSegments) != 0) {
			r.fail("stage %s checkpoint carries cluster collectives (%d counts, %d segments)",
				StageName(c.Stage), len(c.GlobalCounts), len(c.THTSegments))
		} else if !isStream && c.Stage < StageItemCounts && len(c.GlobalCounts) != 0 {
			r.fail("stage %s checkpoint carries %d item counts", StageName(c.Stage), len(c.GlobalCounts))
		} else if !isStream && c.Stage >= StageItemCounts && len(c.GlobalCounts) == 0 {
			r.fail("stage %s checkpoint without item counts", StageName(c.Stage))
		} else if c.Stage < StageTHT && len(c.THTSegments) != 0 {
			r.fail("stage %s checkpoint carries %d THT segments", StageName(c.Stage), len(c.THTSegments))
		} else if c.Stage == StageTHT && len(c.THTSegments) != int(c.Nodes) {
			r.fail("stage %s checkpoint carries %d THT segments for %d nodes",
				StageName(c.Stage), len(c.THTSegments), c.Nodes)
		}
	}
	return c, r.done()
}

// WriteCheckpointFile atomically persists the checkpoint: write to a
// temporary file in the same directory, then rename over the target, so
// a crash mid-write never leaves a truncated checkpoint behind. The
// target directory is created if missing.
func WriteCheckpointFile(path string, c Checkpoint) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("transport: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("transport: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(AppendCheckpoint(nil, c)); err != nil {
		tmp.Close()
		return fmt.Errorf("transport: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("transport: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("transport: installing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads and decodes a persisted checkpoint.
func ReadCheckpointFile(path string) (Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("transport: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(b)
}

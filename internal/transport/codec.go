package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
)

// The wire codec. Every message body is a flat little-endian encoding
// with explicit lengths; decoders validate every length against the
// remaining payload before allocating, so truncated or corrupt frames
// produce errors, never panics or unbounded allocations (the fuzz test
// in codec_fuzz_test.go holds them to that).

// Hello opens every connection and declares what it is for.
type Hello struct {
	ClusterID uint64 // session identity; mismatches are rejected
	From      int32  // sender's node id (-1 for the coordinator)
	// To is the logical node the connection targets. After a failover a
	// daemon may host several logical nodes of one session, so the
	// listener routes peer connections by (ClusterID, To) rather than by
	// cluster alone. -1 addresses the daemon itself (control plane).
	To      int32
	Purpose uint8 // PurposeControl | PurposeCube | PurposePoll
}

// Init is the coordinator's session opener to one node: the cluster
// geometry, the mining parameters resolved at the coordinator, and the
// node's database partition (txdb binary format).
type Init struct {
	ClusterID uint64
	NodeID    int32
	Nodes     int32

	TotalDocs int32 // |D|, for the local minimum support derivation
	NumItems  int32
	GlobalMin int32 // global minimum support count

	THTEntries    int32 // global THT slots (each node builds entries/N)
	PartitionSize int32
	MaxK          int32
	Workers       int32 // intra-node workers (0 = GOMAXPROCS)

	// DenseThreshold is the poll counter's posting-density cut, resolved
	// at the coordinator so every node prices its inverted file by the
	// same rule (0 selects the library default; see
	// mining.Options.DenseThreshold). A physical-layout knob only: it
	// never changes counts or simulated charges.
	DenseThreshold float64

	// Partitioner records how the coordinator cut the session's
	// partitions (mining.PartitionByCount or mining.PartitionByWork).
	// The partition a node receives is already cut; the field makes the
	// choice visible in daemon logs and traces, and pins it across
	// failover resumptions (the resolved choice, like GlobalMin, never
	// changes for a session's lifetime).
	Partitioner int32

	// HeartbeatMillis is the interval at which the daemon beats on the
	// control connection (0 selects the daemon's default).
	HeartbeatMillis int32

	PeerAddrs []string // node listen addresses, indexed by node id
	DB        []byte   // txdb.Encode bytes of this node's partition

	// Resume, when non-empty, is an encoded Checkpoint: the session is a
	// failover resumption and the node skips the collectives the
	// checkpoint already covers.
	Resume []byte
}

// NodeBlob is one node's contribution inside a CubeBlock.
type NodeBlob struct {
	Node int32
	Data []byte
}

// CubeBlock carries the blobs a node has accumulated so far in an
// all-gather, exchanged with its dimension-d partner (or with the hub
// on the non-power-of-two star fallback).
type CubeBlock struct {
	Phase Phase
	Step  uint8
	From  int32
	Blobs []NodeBlob
}

// CandidateBatch asks a peer for the local support counts of a batch of
// same-size itemsets (PMIHP's poll request).
type CandidateBatch struct {
	K     int32
	Items []uint32 // flattened itemsets, len = K * batch size
}

// Sets materializes the batch as itemsets (views into Items).
func (b *CandidateBatch) Sets() []itemset.Itemset {
	k := int(b.K)
	n := len(b.Items) / k
	sets := make([]itemset.Itemset, n)
	for i := 0; i < n; i++ {
		sets[i] = itemset.Itemset(b.Items[i*k : (i+1)*k])
	}
	return sets
}

// CountVector is the poll reply: local support counts aligned with the
// request batch.
type CountVector struct {
	Counts []int32
}

// NodeDone is a node's terminal report to the coordinator: its globally
// frequent itemsets (exact counts), node 0 additionally carries the
// all-reduced global item counts, plus measured wire statistics and the
// wall-clock seconds of each exchange phase.
type NodeDone struct {
	Node         int32
	GlobalCounts []uint32 // only from node 0; nil otherwise
	Found        []itemset.Counted
	Stats        WireStatsSnapshot
	// PhaseSeconds: [0] item-count exchange, [1] THT exchange,
	// [2] candidate polling, [3] final frequent-list exchange.
	PhaseSeconds [4]float64
	// BusySeconds is the node's deterministic modeled busy time (mining
	// plus poll service, from the work-unit accounting) — what the
	// coordinator compares across the fleet to compute the session's
	// pass-imbalance ratio. Modeled, not wall clock, so the ratio is
	// reproducible across machines.
	BusySeconds float64
}

// PoolJoin is a daemon's registration with a worker pool: its dialable
// listen address (what coordinators put in a session's roster) and an
// optional capacity advertisement for admission control.
type PoolJoin struct {
	// Addr is the daemon's listen address, as peers and coordinators
	// should dial it.
	Addr string
	// CapacityBytes bounds the session bytes admission control may
	// reserve against this member (0: unlimited).
	CapacityBytes int64
}

// Heartbeat is a daemon's periodic liveness beacon on the control
// connection, carrying the node's mining progress so the coordinator
// can compare pass positions across the fleet (the straggler
// detector's input).
type Heartbeat struct {
	// Passes is the number of local counting passes the node has
	// completed so far (0 until local mining starts).
	Passes int32
}

// ErrorMsg aborts a session with an attributed cause.
type ErrorMsg struct {
	Text string
}

// ---- encoding ----

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendHello encodes a Hello.
func AppendHello(b []byte, h Hello) []byte {
	b = appendU64(b, h.ClusterID)
	b = appendU32(b, uint32(h.From))
	b = appendU32(b, uint32(h.To))
	return append(b, h.Purpose)
}

// AppendInit encodes an Init.
func AppendInit(b []byte, m Init) []byte {
	b = appendU64(b, m.ClusterID)
	for _, v := range []int32{
		m.NodeID, m.Nodes, m.TotalDocs, m.NumItems, m.GlobalMin,
		m.THTEntries, m.PartitionSize, m.MaxK, m.Workers,
		m.HeartbeatMillis, m.Partitioner,
	} {
		b = appendU32(b, uint32(v))
	}
	b = appendF64(b, m.DenseThreshold)
	b = appendU32(b, uint32(len(m.PeerAddrs)))
	for _, a := range m.PeerAddrs {
		b = appendStr(b, a)
	}
	b = appendBytes(b, m.DB)
	return appendBytes(b, m.Resume)
}

// AppendCubeBlock encodes a CubeBlock.
func AppendCubeBlock(b []byte, m CubeBlock) []byte {
	b = append(b, uint8(m.Phase), m.Step)
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(len(m.Blobs)))
	for _, nb := range m.Blobs {
		b = appendU32(b, uint32(nb.Node))
		b = appendBytes(b, nb.Data)
	}
	return b
}

// AppendCandidateBatch encodes a CandidateBatch.
func AppendCandidateBatch(b []byte, m CandidateBatch) []byte {
	b = appendU32(b, uint32(m.K))
	b = appendU32(b, uint32(len(m.Items)))
	for _, it := range m.Items {
		b = appendU32(b, it)
	}
	return b
}

// AppendCountVector encodes a CountVector.
func AppendCountVector(b []byte, m CountVector) []byte {
	b = appendU32(b, uint32(len(m.Counts)))
	for _, c := range m.Counts {
		b = appendU32(b, uint32(c))
	}
	return b
}

// AppendCountedList encodes a frequent-itemset list (the merged-F_k
// payload of the final exchange and of NodeDone).
func AppendCountedList(b []byte, list []itemset.Counted) []byte {
	b = appendU32(b, uint32(len(list)))
	for _, c := range list {
		b = appendU32(b, uint32(len(c.Set)))
		for _, it := range c.Set {
			b = appendU32(b, it)
		}
		b = appendU32(b, uint32(c.Count))
	}
	return b
}

// AppendNodeDone encodes a NodeDone.
func AppendNodeDone(b []byte, m NodeDone) []byte {
	b = appendU32(b, uint32(m.Node))
	b = appendU32(b, uint32(len(m.GlobalCounts)))
	for _, c := range m.GlobalCounts {
		b = appendU32(b, c)
	}
	b = AppendCountedList(b, m.Found)
	b = appendU64(b, uint64(m.Stats.MessagesSent))
	b = appendU64(b, uint64(m.Stats.MessagesReceived))
	b = appendU64(b, uint64(m.Stats.BytesSent))
	b = appendU64(b, uint64(m.Stats.BytesReceived))
	b = appendU64(b, uint64(m.Stats.Retries))
	for _, s := range m.PhaseSeconds {
		b = appendF64(b, s)
	}
	return appendF64(b, m.BusySeconds)
}

// AppendPoolJoin encodes a PoolJoin.
func AppendPoolJoin(b []byte, m PoolJoin) []byte {
	b = appendStr(b, m.Addr)
	return appendU64(b, uint64(m.CapacityBytes))
}

// AppendHeartbeat encodes a Heartbeat.
func AppendHeartbeat(b []byte, m Heartbeat) []byte {
	return appendU32(b, uint32(m.Passes))
}

// AppendError encodes an ErrorMsg.
func AppendError(b []byte, m ErrorMsg) []byte {
	return appendStr(b, m.Text)
}

// AppendUint32s encodes a bare uint32 vector (the item-count blob of
// the first exchange phase).
func AppendUint32s(b []byte, v []uint32) []byte {
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendU32(b, x)
	}
	return b
}

// ---- decoding ----

// wireReader is a bounds-checked cursor over a payload. Errors are
// sticky; every accessor returns a zero value once an error occurred.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: "+format, args...)
	}
}

func (r *wireReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.fail("truncated payload: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return false
	}
	return true
}

func (r *wireReader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) i32() int32 { return int32(r.u32()) }

func (r *wireReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a u32 length whose elements occupy elemSize bytes each,
// rejecting counts the remaining payload cannot possibly hold.
func (r *wireReader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.b)-r.off {
		r.fail("length %d exceeds remaining payload %d", n, len(r.b)-r.off)
		return 0
	}
	return n
}

func (r *wireReader) bytes() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:])
	r.off += n
	return v
}

func (r *wireReader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *wireReader) u32s() []uint32 {
	n := r.count(4)
	if r.err != nil {
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = r.u32()
	}
	return v
}

// done finishes a decode: any pending error wins; trailing bytes are an
// error too (a valid encoder never produces them, so their presence
// means corruption).
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("transport: %d trailing bytes after message", len(r.b)-r.off)
	}
	return nil
}

// DecodeHello decodes a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	r := wireReader{b: b}
	h := Hello{ClusterID: r.u64(), From: r.i32(), To: r.i32(), Purpose: r.u8()}
	if h.Purpose < PurposeControl || h.Purpose > PurposePool {
		r.fail("unknown connection purpose %d", h.Purpose)
	}
	return h, r.done()
}

// DecodeInit decodes an Init payload.
func DecodeInit(b []byte) (Init, error) {
	r := wireReader{b: b}
	m := Init{ClusterID: r.u64()}
	for _, p := range []*int32{
		&m.NodeID, &m.Nodes, &m.TotalDocs, &m.NumItems, &m.GlobalMin,
		&m.THTEntries, &m.PartitionSize, &m.MaxK, &m.Workers,
		&m.HeartbeatMillis, &m.Partitioner,
	} {
		*p = r.i32()
	}
	m.DenseThreshold = r.f64()
	nAddrs := r.count(4) // a string needs at least its 4-byte length
	for i := 0; i < nAddrs && r.err == nil; i++ {
		m.PeerAddrs = append(m.PeerAddrs, r.str())
	}
	m.DB = r.bytes()
	m.Resume = r.bytes()
	if r.err == nil {
		if m.Nodes <= 0 || m.NodeID < 0 || m.NodeID >= m.Nodes {
			r.fail("invalid geometry: node %d of %d", m.NodeID, m.Nodes)
		} else if len(m.PeerAddrs) != int(m.Nodes) {
			r.fail("init lists %d peer addresses for %d nodes", len(m.PeerAddrs), m.Nodes)
		} else if m.DenseThreshold < 0 || math.IsNaN(m.DenseThreshold) {
			r.fail("invalid dense threshold %v", m.DenseThreshold)
		} else if !mining.Partitioner(m.Partitioner).Valid() {
			r.fail("invalid partitioner %d", m.Partitioner)
		}
	}
	return m, r.done()
}

// DecodeCubeBlock decodes a CubeBlock payload.
func DecodeCubeBlock(b []byte) (CubeBlock, error) {
	r := wireReader{b: b}
	m := CubeBlock{Phase: Phase(r.u8()), Step: r.u8(), From: r.i32()}
	n := r.count(8) // a blob needs node id + data length at minimum
	for i := 0; i < n && r.err == nil; i++ {
		m.Blobs = append(m.Blobs, NodeBlob{Node: r.i32(), Data: r.bytes()})
	}
	return m, r.done()
}

// DecodeCandidateBatch decodes a CandidateBatch payload.
func DecodeCandidateBatch(b []byte) (CandidateBatch, error) {
	r := wireReader{b: b}
	m := CandidateBatch{K: r.i32(), Items: r.u32s()}
	if r.err == nil {
		if m.K <= 0 {
			r.fail("candidate batch with k=%d", m.K)
		} else if len(m.Items)%int(m.K) != 0 {
			r.fail("candidate batch of %d items is not a multiple of k=%d", len(m.Items), m.K)
		}
	}
	return m, r.done()
}

// DecodeCountVector decodes a CountVector payload.
func DecodeCountVector(b []byte) (CountVector, error) {
	r := wireReader{b: b}
	raw := r.u32s()
	m := CountVector{Counts: make([]int32, len(raw))}
	for i, v := range raw {
		m.Counts[i] = int32(v)
	}
	return m, r.done()
}

// decodeCountedList decodes a frequent-itemset list in place.
func (r *wireReader) countedList() []itemset.Counted {
	n := r.count(8) // an entry needs k + count at minimum
	var list []itemset.Counted
	for i := 0; i < n && r.err == nil; i++ {
		k := r.count(4)
		set := make(itemset.Itemset, k)
		for j := 0; j < k && r.err == nil; j++ {
			set[j] = r.u32()
		}
		c := int(r.u32())
		if r.err == nil && !set.Valid() {
			r.fail("counted list entry %d is not strictly increasing", i)
		}
		list = append(list, itemset.Counted{Set: set, Count: c})
	}
	return list
}

// DecodeCountedList decodes a frequent-itemset list payload (the final
// all-gather blob).
func DecodeCountedList(b []byte) ([]itemset.Counted, error) {
	r := wireReader{b: b}
	list := r.countedList()
	return list, r.done()
}

// DecodeNodeDone decodes a NodeDone payload.
func DecodeNodeDone(b []byte) (NodeDone, error) {
	r := wireReader{b: b}
	m := NodeDone{Node: r.i32(), GlobalCounts: r.u32s()}
	m.Found = r.countedList()
	m.Stats = WireStatsSnapshot{
		MessagesSent:     int64(r.u64()),
		MessagesReceived: int64(r.u64()),
		BytesSent:        int64(r.u64()),
		BytesReceived:    int64(r.u64()),
		Retries:          int64(r.u64()),
	}
	for i := range m.PhaseSeconds {
		m.PhaseSeconds[i] = r.f64()
	}
	m.BusySeconds = r.f64()
	return m, r.done()
}

// DecodePoolJoin decodes a PoolJoin payload.
func DecodePoolJoin(b []byte) (PoolJoin, error) {
	r := wireReader{b: b}
	m := PoolJoin{Addr: r.str(), CapacityBytes: int64(r.u64())}
	if r.err == nil {
		if m.Addr == "" {
			r.fail("pool join without an address")
		} else if m.CapacityBytes < 0 {
			r.fail("pool join with negative capacity %d", m.CapacityBytes)
		}
	}
	return m, r.done()
}

// DecodeHeartbeat decodes a Heartbeat payload. An empty payload is a
// bare liveness beacon (no progress to report yet) and decodes to the
// zero Heartbeat.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	if len(b) == 0 {
		return Heartbeat{}, nil
	}
	r := wireReader{b: b}
	m := Heartbeat{Passes: r.i32()}
	if r.err == nil && m.Passes < 0 {
		r.fail("negative heartbeat pass count %d", m.Passes)
	}
	return m, r.done()
}

// DecodeError decodes an ErrorMsg payload.
func DecodeError(b []byte) (ErrorMsg, error) {
	r := wireReader{b: b}
	m := ErrorMsg{Text: r.str()}
	return m, r.done()
}

// DecodeUint32s decodes a bare uint32 vector blob.
func DecodeUint32s(b []byte) ([]uint32, error) {
	r := wireReader{b: b}
	v := r.u32s()
	return v, r.done()
}

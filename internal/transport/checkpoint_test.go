package transport

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleCheckpoint(stage uint8) Checkpoint {
	c := Checkpoint{ClusterID: 0xfeedface, Nodes: 4, Stage: stage}
	if stage >= StageItemCounts {
		c.GlobalCounts = []uint32{5, 0, 12, 3, 9}
	}
	if stage >= StageTHT {
		c.THTSegments = [][]byte{[]byte("seg-0"), []byte("seg-1"), nil, []byte("seg-3")}
	}
	return c
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, stage := range []uint8{StageNone, StageItemCounts, StageTHT} {
		in := sampleCheckpoint(stage)
		out, err := DecodeCheckpoint(AppendCheckpoint(nil, in))
		if err != nil {
			t.Fatalf("stage %s: %v", StageName(stage), err)
		}
		if out.ClusterID != in.ClusterID || out.Nodes != in.Nodes || out.Stage != in.Stage {
			t.Fatalf("stage %s: got %+v want %+v", StageName(stage), out, in)
		}
		if !reflect.DeepEqual(out.GlobalCounts, in.GlobalCounts) {
			t.Fatalf("stage %s: counts %v want %v", StageName(stage), out.GlobalCounts, in.GlobalCounts)
		}
		if len(out.THTSegments) != len(in.THTSegments) {
			t.Fatalf("stage %s: %d segments want %d", StageName(stage), len(out.THTSegments), len(in.THTSegments))
		}
		for i := range in.THTSegments {
			if string(out.THTSegments[i]) != string(in.THTSegments[i]) {
				t.Fatalf("stage %s: segment %d differs", StageName(stage), i)
			}
		}
	}
}

// A daemon built for checkpoint version 1 must reject a checkpoint
// stamped with a future version with an error naming both versions —
// never decode garbage, never panic.
func TestCheckpointVersionSkew(t *testing.T) {
	enc := AppendCheckpoint(nil, sampleCheckpoint(StageTHT))
	enc[len(checkpointMagic)] = CheckpointVersion + 1
	_, err := DecodeCheckpoint(enc)
	if err == nil {
		t.Fatal("want error for future checkpoint version")
	}
	msg := err.Error()
	if !strings.Contains(msg, "version 2") || !strings.Contains(msg, "version 1") {
		t.Fatalf("version-skew error %q does not name both versions", msg)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	enc := AppendCheckpoint(nil, sampleCheckpoint(StageTHT))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeCheckpoint(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte{}, enc...), 0xAB)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	bad := append([]byte{}, enc...)
	copy(bad, "NOPE")
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Error("wrong magic decoded without error")
	}
}

// The stage byte and the payload it promises must agree; mismatches are
// corruption, and rejecting them keeps the encoding canonical.
func TestCheckpointRejectsStageMismatch(t *testing.T) {
	cases := map[string]Checkpoint{
		"counts before item-count stage":  {ClusterID: 1, Nodes: 2, Stage: StageNone, GlobalCounts: []uint32{1}},
		"item-count stage without counts": {ClusterID: 1, Nodes: 2, Stage: StageItemCounts},
		"segments before tht stage": {ClusterID: 1, Nodes: 2, Stage: StageItemCounts,
			GlobalCounts: []uint32{1}, THTSegments: [][]byte{{1}, {2}}},
		"segment/node mismatch": {ClusterID: 1, Nodes: 2, Stage: StageTHT,
			GlobalCounts: []uint32{1}, THTSegments: [][]byte{{1}}},
		"unknown stage": {ClusterID: 1, Nodes: 2, Stage: 9},
		"no nodes":      {ClusterID: 1, Nodes: 0},
	}
	for name, c := range cases {
		if _, err := DecodeCheckpoint(AppendCheckpoint(nil, c)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")
	in := sampleCheckpoint(StageItemCounts)
	if err := WriteCheckpointFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.ClusterID != in.ClusterID || out.Stage != in.Stage || !reflect.DeepEqual(out.GlobalCounts, in.GlobalCounts) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	// Overwrite must be atomic-and-clean, not append.
	in.Stage = StageNone
	in.GlobalCounts = nil
	if err := WriteCheckpointFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err = ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != StageNone || out.GlobalCounts != nil {
		t.Fatalf("overwrite left %+v", out)
	}
	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("want error reading a missing checkpoint")
	}
}

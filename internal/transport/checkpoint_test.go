package transport

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleCheckpoint(stage uint8) Checkpoint {
	c := Checkpoint{ClusterID: 0xfeedface, Nodes: 4, Stage: stage}
	if stage == StageStream {
		c.Nodes = 1
		c.Stream = []byte("stream-state-payload")
		return c
	}
	if stage >= StageItemCounts {
		c.GlobalCounts = []uint32{5, 0, 12, 3, 9}
	}
	if stage >= StageTHT {
		c.THTSegments = [][]byte{[]byte("seg-0"), []byte("seg-1"), nil, []byte("seg-3")}
	}
	return c
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, stage := range []uint8{StageNone, StageItemCounts, StageTHT, StageStream} {
		in := sampleCheckpoint(stage)
		out, err := DecodeCheckpoint(AppendCheckpoint(nil, in))
		if err != nil {
			t.Fatalf("stage %s: %v", StageName(stage), err)
		}
		if out.ClusterID != in.ClusterID || out.Nodes != in.Nodes || out.Stage != in.Stage {
			t.Fatalf("stage %s: got %+v want %+v", StageName(stage), out, in)
		}
		if !reflect.DeepEqual(out.GlobalCounts, in.GlobalCounts) {
			t.Fatalf("stage %s: counts %v want %v", StageName(stage), out.GlobalCounts, in.GlobalCounts)
		}
		if len(out.THTSegments) != len(in.THTSegments) {
			t.Fatalf("stage %s: %d segments want %d", StageName(stage), len(out.THTSegments), len(in.THTSegments))
		}
		for i := range in.THTSegments {
			if string(out.THTSegments[i]) != string(in.THTSegments[i]) {
				t.Fatalf("stage %s: segment %d differs", StageName(stage), i)
			}
		}
		if string(out.Stream) != string(in.Stream) {
			t.Fatalf("stage %s: stream payload %q want %q", StageName(stage), out.Stream, in.Stream)
		}
	}
}

// A daemon built for the current checkpoint version must reject a
// checkpoint stamped with any other version with an error naming both
// versions — never decode garbage, never panic.
func TestCheckpointVersionSkew(t *testing.T) {
	for _, skew := range []uint8{CheckpointVersion + 1, CheckpointVersion - 1} {
		enc := AppendCheckpoint(nil, sampleCheckpoint(StageTHT))
		enc[len(checkpointMagic)] = skew
		_, err := DecodeCheckpoint(enc)
		if err == nil {
			t.Fatalf("want error for checkpoint version %d", skew)
		}
		msg := err.Error()
		if !strings.Contains(msg, fmt.Sprintf("version %d", skew)) ||
			!strings.Contains(msg, fmt.Sprintf("version %d", CheckpointVersion)) {
			t.Fatalf("version-skew error %q does not name both versions", msg)
		}
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	enc := AppendCheckpoint(nil, sampleCheckpoint(StageTHT))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeCheckpoint(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte{}, enc...), 0xAB)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	bad := append([]byte{}, enc...)
	copy(bad, "NOPE")
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Error("wrong magic decoded without error")
	}
}

// The stage byte and the payload it promises must agree; mismatches are
// corruption, and rejecting them keeps the encoding canonical.
func TestCheckpointRejectsStageMismatch(t *testing.T) {
	cases := map[string]Checkpoint{
		"counts before item-count stage":  {ClusterID: 1, Nodes: 2, Stage: StageNone, GlobalCounts: []uint32{1}},
		"item-count stage without counts": {ClusterID: 1, Nodes: 2, Stage: StageItemCounts},
		"segments before tht stage": {ClusterID: 1, Nodes: 2, Stage: StageItemCounts,
			GlobalCounts: []uint32{1}, THTSegments: [][]byte{{1}, {2}}},
		"segment/node mismatch": {ClusterID: 1, Nodes: 2, Stage: StageTHT,
			GlobalCounts: []uint32{1}, THTSegments: [][]byte{{1}}},
		"unknown stage":              {ClusterID: 1, Nodes: 2, Stage: 9},
		"no nodes":                   {ClusterID: 1, Nodes: 0},
		"stream stage without state": {ClusterID: 1, Nodes: 1, Stage: StageStream},
		"stream state on a tht stage": {ClusterID: 1, Nodes: 2, Stage: StageTHT,
			GlobalCounts: []uint32{1}, THTSegments: [][]byte{{1}, {2}}, Stream: []byte{7}},
		"stream stage with collectives": {ClusterID: 1, Nodes: 1, Stage: StageStream,
			GlobalCounts: []uint32{1}, Stream: []byte{7}},
	}
	for name, c := range cases {
		if _, err := DecodeCheckpoint(AppendCheckpoint(nil, c)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")
	in := sampleCheckpoint(StageItemCounts)
	if err := WriteCheckpointFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.ClusterID != in.ClusterID || out.Stage != in.Stage || !reflect.DeepEqual(out.GlobalCounts, in.GlobalCounts) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	// Overwrite must be atomic-and-clean, not append.
	in.Stage = StageNone
	in.GlobalCounts = nil
	if err := WriteCheckpointFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err = ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != StageNone || out.GlobalCounts != nil {
		t.Fatalf("overwrite left %+v", out)
	}
	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("want error reading a missing checkpoint")
	}
}

package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"pmihp/internal/cluster"
	"pmihp/internal/itemset"
)

// TCPOptions configures a TCPExchange endpoint.
type TCPOptions struct {
	// ClusterID identifies the mining session; connections carrying a
	// different id are rejected.
	ClusterID uint64
	// NodeID and Nodes give this endpoint's place in the cluster.
	NodeID, Nodes int
	// Peers lists the node listen addresses, indexed by node id (the
	// self entry is unused).
	Peers []string
	// Retry bounds dial/step retries; zero selects DefaultRetry.
	Retry RetryPolicy
	// IOTimeout is the per-read/write deadline on a connection; zero
	// selects 30s.
	IOTimeout time.Duration
	// WaitTimeout bounds how long a collective waits for a partner to
	// arrive at the same step; zero selects 120s.
	WaitTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.WaitTimeout <= 0 {
		o.WaitTimeout = 120 * time.Second
	}
	o.Retry = o.Retry.WithDefaults()
	return o
}

// cubeKey identifies one expected partner message of a collective.
type cubeKey struct {
	phase Phase
	step  uint8
	from  int32
}

// cubeEnvelope carries a partner's blobs from the accept handler to the
// collective, and the collective's response back.
type cubeEnvelope struct {
	blobs []NodeBlob
	reply chan []NodeBlob
}

// pollPeer is the persistent poll channel to one peer; one request is
// in flight at a time.
type pollPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

// TCPExchange is the real-network Exchange: the n-cube all-gather runs
// over short-lived partner connections (lower node id dials), polls run
// over one persistent connection per directed peer pair, and every
// operation carries deadlines and bounded exponential-backoff retry.
// Exchange steps and polls are idempotent, so a dropped connection is
// retried by redialing and resending; a responder replays its answer to
// a retried cube step from a replay cache.
type TCPExchange struct {
	opt    TCPOptions
	stats  WireStats
	ctx    context.Context
	cancel context.CancelFunc

	pollMu      sync.Mutex // guards poll (handler installation)
	poll        PollHandler
	servePollMu sync.Mutex // serializes handler invocations

	mu        sync.Mutex
	mailboxes map[cubeKey]chan *cubeEnvelope
	replays   map[cubeKey][]NodeBlob
	pollPeers []*pollPeer
	served    map[net.Conn]struct{} // open serving AND in-flight dialed conns, closed on Close
	closed    bool
}

// NewTCP returns a TCP exchange endpoint. The caller owns the listener;
// route accepted peer connections in with HandlePeerConn (after reading
// their Hello), or use Serve for a dedicated listener.
func NewTCP(opt TCPOptions) (*TCPExchange, error) {
	opt = opt.withDefaults()
	if opt.Nodes <= 0 || opt.NodeID < 0 || opt.NodeID >= opt.Nodes {
		return nil, fmt.Errorf("transport: invalid geometry: node %d of %d", opt.NodeID, opt.Nodes)
	}
	if len(opt.Peers) != opt.Nodes {
		return nil, fmt.Errorf("transport: %d peer addresses for %d nodes", len(opt.Peers), opt.Nodes)
	}
	ctx, cancel := context.WithCancel(context.Background())
	x := &TCPExchange{
		opt:       opt,
		ctx:       ctx,
		cancel:    cancel,
		mailboxes: make(map[cubeKey]chan *cubeEnvelope),
		replays:   make(map[cubeKey][]NodeBlob),
		pollPeers: make([]*pollPeer, opt.Nodes),
		served:    make(map[net.Conn]struct{}),
	}
	for i := range x.pollPeers {
		x.pollPeers[i] = &pollPeer{}
	}
	return x, nil
}

// NodeID returns this endpoint's node id.
func (x *TCPExchange) NodeID() int { return x.opt.NodeID }

// Nodes returns the cluster size.
func (x *TCPExchange) Nodes() int { return x.opt.Nodes }

// Stats returns the endpoint's wire counters.
func (x *TCPExchange) Stats() *WireStats { return &x.stats }

// SetPollHandler installs the poll-answering function.
func (x *TCPExchange) SetPollHandler(h PollHandler) {
	x.pollMu.Lock()
	x.poll = h
	x.pollMu.Unlock()
}

// Close cancels pending operations and closes every connection.
func (x *TCPExchange) Close() error {
	x.cancel()
	x.mu.Lock()
	x.closed = true
	for c := range x.served {
		c.Close()
	}
	x.served = make(map[net.Conn]struct{})
	x.mu.Unlock()
	for _, pp := range x.pollPeers {
		pp.mu.Lock()
		if pp.conn != nil {
			pp.conn.Close()
			pp.conn = nil
		}
		pp.mu.Unlock()
	}
	return nil
}

// Serve accepts peer connections on ln, reads each Hello, and
// dispatches the connection. It returns when ln closes. The node
// daemon uses its own accept loop (its listener is shared with the
// coordinator control plane); Serve is for dedicated-listener setups
// and tests.
func (x *TCPExchange) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn.SetReadDeadline(time.Now().Add(x.opt.IOTimeout))
			t, payload, err := ReadFrame(conn, &x.stats)
			if err != nil || t != MsgHello {
				conn.Close()
				return
			}
			h, err := DecodeHello(payload)
			if err != nil || h.ClusterID != x.opt.ClusterID || h.To != int32(x.opt.NodeID) {
				conn.Close()
				return
			}
			x.HandlePeerConn(conn, h)
		}()
	}
}

// HandlePeerConn takes ownership of an accepted peer connection whose
// Hello has already been read and validated, and serves it until it
// closes. It returns immediately; serving runs on its own goroutine.
func (x *TCPExchange) HandlePeerConn(conn net.Conn, h Hello) {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		conn.Close()
		return
	}
	x.served[conn] = struct{}{}
	x.mu.Unlock()
	done := func() {
		x.mu.Lock()
		delete(x.served, conn)
		x.mu.Unlock()
		conn.Close()
	}
	switch h.Purpose {
	case PurposeCube:
		go func() { defer done(); x.serveCubeConn(conn) }()
	case PurposePoll:
		go func() { defer done(); x.servePollConn(conn) }()
	default:
		done()
	}
}

// dialPeer makes one connection attempt to a peer and sends the Hello.
func (x *TCPExchange) dialPeer(peer int, purpose uint8) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", x.opt.Peers[peer], x.opt.IOTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(x.opt.IOTimeout))
	hello := AppendHello(nil, Hello{ClusterID: x.opt.ClusterID, From: int32(x.opt.NodeID), To: int32(peer), Purpose: purpose})
	if err := WriteFrame(conn, MsgHello, hello, &x.stats); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// ---- collectives ----

// AllGather distributes blob across the cluster. For power-of-two
// cluster sizes it runs the paper's logical binary n-cube: at step d
// each node exchanges everything gathered so far with its dimension-d
// partner, so the data volume doubles per step and the collective
// completes in log2(n) steps. For other sizes it falls back to a star
// through node 0 (gather, then broadcast of the full set) — the cube
// pairing is incomplete off powers of two; see DESIGN.md §2.
func (x *TCPExchange) AllGather(phase Phase, blob []byte) ([][]byte, error) {
	n, self := x.opt.Nodes, x.opt.NodeID
	blobs := make([][]byte, n)
	blobs[self] = blob
	if n == 1 {
		return blobs, nil
	}
	if n&(n-1) == 0 {
		for d := 0; d < cluster.CubeSteps(n); d++ {
			partner := self ^ (1 << d)
			mine := collectBlobs(blobs)
			var theirs []NodeBlob
			var err error
			if self < partner {
				theirs, err = x.cubeCall(phase, uint8(d), partner, mine)
			} else {
				theirs, err = x.cubeAnswer(phase, uint8(d), int32(partner), mine)
			}
			if err != nil {
				return nil, fmt.Errorf("node %d: %s all-gather step %d with node %d (%s): %w",
					self, phase, d, partner, x.opt.Peers[partner], err)
			}
			if err := mergeBlobs(blobs, theirs); err != nil {
				return nil, fmt.Errorf("node %d: %s all-gather step %d: %w", self, phase, d, err)
			}
		}
	} else if self == 0 {
		// Star hub: collect every spoke's blob, then answer each with
		// the full set.
		envs := make([]*cubeEnvelope, 0, n-1)
		for got := 0; got < n-1; got++ {
			env, from, err := x.awaitAnyCube(phase, 0)
			if err != nil {
				return nil, fmt.Errorf("node 0: %s star gather: %w", phase, err)
			}
			if err := mergeBlobs(blobs, env.blobs); err != nil {
				return nil, fmt.Errorf("node 0: %s star gather from node %d: %w", phase, from, err)
			}
			envs = append(envs, env)
		}
		full := collectBlobs(blobs)
		for _, env := range envs {
			env.reply <- full
		}
	} else {
		theirs, err := x.cubeCall(phase, 0, 0, collectBlobs(blobs))
		if err != nil {
			return nil, fmt.Errorf("node %d: %s star exchange with node 0 (%s): %w",
				self, phase, x.opt.Peers[0], err)
		}
		if err := mergeBlobs(blobs, theirs); err != nil {
			return nil, fmt.Errorf("node %d: %s star exchange: %w", self, phase, err)
		}
	}
	for i, b := range blobs {
		if b == nil {
			return nil, fmt.Errorf("node %d: %s all-gather finished without node %d's contribution", self, phase, i)
		}
	}
	return blobs, nil
}

// collectBlobs snapshots the currently gathered contributions.
func collectBlobs(blobs [][]byte) []NodeBlob {
	var out []NodeBlob
	for i, b := range blobs {
		if b != nil {
			out = append(out, NodeBlob{Node: int32(i), Data: b})
		}
	}
	return out
}

// mergeBlobs folds a partner's contributions in, validating node ids.
func mergeBlobs(blobs [][]byte, in []NodeBlob) error {
	for _, nb := range in {
		if nb.Node < 0 || int(nb.Node) >= len(blobs) {
			return fmt.Errorf("blob for unknown node %d", nb.Node)
		}
		if blobs[nb.Node] == nil {
			blobs[nb.Node] = nb.Data
		}
	}
	return nil
}

// cubeCall is the dialing side of one exchange step: send my gathered
// blobs, receive the partner's. Retried as a whole on failure.
func (x *TCPExchange) cubeCall(phase Phase, step uint8, peer int, mine []NodeBlob) ([]NodeBlob, error) {
	req := AppendCubeBlock(nil, CubeBlock{Phase: phase, Step: step, From: int32(x.opt.NodeID), Blobs: mine})
	var out []NodeBlob
	err := Retry(x.ctx, x.opt.Retry, &x.stats, func() error {
		conn, err := x.dialPeer(peer, PurposeCube)
		if err != nil {
			return err
		}
		// Track the dialed conn so Close can cut a blocked read: the
		// answering partner may be gone for good (session superseded,
		// attempt aborted), and waiting out the full WaitTimeout would
		// keep this node's session registered long after its teardown.
		x.mu.Lock()
		if x.closed {
			x.mu.Unlock()
			conn.Close()
			return Permanent(fmt.Errorf("exchange closed"))
		}
		x.served[conn] = struct{}{}
		x.mu.Unlock()
		defer func() {
			x.mu.Lock()
			delete(x.served, conn)
			x.mu.Unlock()
			conn.Close()
		}()
		conn.SetDeadline(time.Now().Add(x.opt.WaitTimeout))
		if err := WriteFrame(conn, MsgCubeBlock, req, &x.stats); err != nil {
			return err
		}
		t, payload, err := ReadFrame(conn, &x.stats)
		if err != nil {
			return err
		}
		switch t {
		case MsgCubeBlock:
			blk, err := DecodeCubeBlock(payload)
			if err != nil {
				return Permanent(err)
			}
			out = blk.Blobs
			return nil
		case MsgError:
			em, _ := DecodeError(payload)
			return Permanent(fmt.Errorf("peer reported: %s", em.Text))
		default:
			return Permanent(fmt.Errorf("unexpected reply type %d to cube block", t))
		}
	})
	return out, err
}

// cubeAnswer is the answering side: wait for the partner's block to be
// delivered by the accept handler, hand it my gathered blobs to send
// back, and return the partner's.
func (x *TCPExchange) cubeAnswer(phase Phase, step uint8, from int32, mine []NodeBlob) ([]NodeBlob, error) {
	ch := x.mailbox(cubeKey{phase, step, from})
	select {
	case env := <-ch:
		env.reply <- mine
		return env.blobs, nil
	case <-time.After(x.opt.WaitTimeout):
		return nil, fmt.Errorf("timed out after %v waiting for partner", x.opt.WaitTimeout)
	case <-x.ctx.Done():
		return nil, fmt.Errorf("exchange closed while waiting for partner")
	}
}

// awaitAnyCube waits for a step-0 block from any node (the star hub's
// gather), returning its envelope and origin.
func (x *TCPExchange) awaitAnyCube(phase Phase, step uint8) (*cubeEnvelope, int32, error) {
	// The hub does not know arrival order; wait on all spokes' boxes.
	n := x.opt.Nodes
	cases := make([]chan *cubeEnvelope, n)
	for i := 1; i < n; i++ {
		cases[i] = x.mailbox(cubeKey{phase, step, int32(i)})
	}
	deadline := time.After(x.opt.WaitTimeout)
	for {
		for i := 1; i < n; i++ {
			select {
			case env := <-cases[i]:
				return env, int32(i), nil
			default:
			}
		}
		select {
		case <-deadline:
			return nil, 0, fmt.Errorf("timed out after %v waiting for spokes", x.opt.WaitTimeout)
		case <-x.ctx.Done():
			return nil, 0, fmt.Errorf("exchange closed while gathering")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// mailbox returns (creating if needed) the delivery channel for one
// expected partner message.
func (x *TCPExchange) mailbox(key cubeKey) chan *cubeEnvelope {
	x.mu.Lock()
	defer x.mu.Unlock()
	ch := x.mailboxes[key]
	if ch == nil {
		ch = make(chan *cubeEnvelope, 4)
		x.mailboxes[key] = ch
	}
	return ch
}

// serveCubeConn handles one incoming exchange-step connection: deliver
// the partner's block to the local collective, send back what the
// collective supplies. A replayed step (the partner retried after a
// drop) is answered from the replay cache without involving the
// collective again.
func (x *TCPExchange) serveCubeConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(x.opt.WaitTimeout))
	t, payload, err := ReadFrame(conn, &x.stats)
	if err != nil || t != MsgCubeBlock {
		return
	}
	blk, err := DecodeCubeBlock(payload)
	if err != nil {
		WriteFrame(conn, MsgError, AppendError(nil, ErrorMsg{Text: "bad cube block: " + err.Error()}), &x.stats)
		return
	}
	key := cubeKey{blk.Phase, blk.Step, blk.From}
	x.mu.Lock()
	reply, replay := x.replays[key]
	x.mu.Unlock()
	if !replay {
		env := &cubeEnvelope{blobs: blk.Blobs, reply: make(chan []NodeBlob, 1)}
		select {
		case x.mailbox(key) <- env:
		case <-time.After(x.opt.WaitTimeout):
			return
		case <-x.ctx.Done():
			return
		}
		select {
		case reply = <-env.reply:
		case <-time.After(x.opt.WaitTimeout):
			return
		case <-x.ctx.Done():
			return
		}
		x.mu.Lock()
		x.replays[key] = reply
		x.mu.Unlock()
	}
	out := AppendCubeBlock(nil, CubeBlock{Phase: blk.Phase, Step: blk.Step, From: int32(x.opt.NodeID), Blobs: reply})
	WriteFrame(conn, MsgCubeBlock, out, &x.stats)
}

// ---- polls ----

// Poll sends a candidate batch to a peer over the persistent poll
// connection, redialing and resending on transient failures (counting
// is read-only at the peer, so resends are safe).
func (x *TCPExchange) Poll(peer, k int, sets []itemset.Itemset) ([]int32, error) {
	if peer < 0 || peer >= x.opt.Nodes || peer == x.opt.NodeID {
		return nil, fmt.Errorf("transport: node %d polling invalid peer %d", x.opt.NodeID, peer)
	}
	items := make([]uint32, 0, k*len(sets))
	for _, s := range sets {
		if len(s) != k {
			return nil, fmt.Errorf("transport: %d-itemset in a k=%d poll batch", len(s), k)
		}
		items = append(items, s...)
	}
	req := AppendCandidateBatch(nil, CandidateBatch{K: int32(k), Items: items})
	pp := x.pollPeers[peer]
	pp.mu.Lock()
	defer pp.mu.Unlock()
	var counts []int32
	err := Retry(x.ctx, x.opt.Retry, &x.stats, func() error {
		if pp.conn == nil {
			conn, err := x.dialPeer(peer, PurposePoll)
			if err != nil {
				return err
			}
			pp.conn = conn
		}
		conn := pp.conn
		fail := func(err error) error {
			conn.Close()
			pp.conn = nil
			return err
		}
		conn.SetDeadline(time.Now().Add(x.opt.IOTimeout))
		if err := WriteFrame(conn, MsgCandidateBatch, req, &x.stats); err != nil {
			return fail(err)
		}
		t, payload, err := ReadFrame(conn, &x.stats)
		if err != nil {
			return fail(err)
		}
		switch t {
		case MsgCountVector:
			cv, err := DecodeCountVector(payload)
			if err != nil {
				return fail(Permanent(err))
			}
			if len(cv.Counts) != len(sets) {
				return fail(Permanent(fmt.Errorf("peer replied %d counts for %d sets", len(cv.Counts), len(sets))))
			}
			counts = cv.Counts
			return nil
		case MsgError:
			em, _ := DecodeError(payload)
			return fail(Permanent(fmt.Errorf("peer reported: %s", em.Text)))
		default:
			return fail(Permanent(fmt.Errorf("unexpected reply type %d to candidate batch", t)))
		}
	})
	if err != nil {
		return nil, fmt.Errorf("node %d: polling node %d (%s): %w", x.opt.NodeID, peer, x.opt.Peers[peer], err)
	}
	return counts, nil
}

// servePollConn answers candidate batches on one incoming poll
// connection until it closes.
func (x *TCPExchange) servePollConn(conn net.Conn) {
	for {
		conn.SetReadDeadline(time.Now().Add(x.opt.WaitTimeout))
		t, payload, err := ReadFrame(conn, &x.stats)
		if err != nil {
			return
		}
		if t != MsgCandidateBatch {
			WriteFrame(conn, MsgError, AppendError(nil, ErrorMsg{Text: fmt.Sprintf("unexpected message type %d on poll channel", t)}), &x.stats)
			return
		}
		cb, err := DecodeCandidateBatch(payload)
		if err != nil {
			WriteFrame(conn, MsgError, AppendError(nil, ErrorMsg{Text: "bad candidate batch: " + err.Error()}), &x.stats)
			return
		}
		x.pollMu.Lock()
		h := x.poll
		x.pollMu.Unlock()
		if h == nil {
			WriteFrame(conn, MsgError, AppendError(nil, ErrorMsg{Text: "poll handler not installed"}), &x.stats)
			return
		}
		sets := cb.Sets()
		x.servePollMu.Lock()
		counts := h(int(cb.K), sets)
		x.servePollMu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(x.opt.IOTimeout))
		if err := WriteFrame(conn, MsgCountVector, AppendCountVector(nil, CountVector{Counts: counts}), &x.stats); err != nil {
			return
		}
	}
}

package transport

import (
	"fmt"
	"sync"

	"pmihp/internal/itemset"
)

// Phase identifies one collective exchange of the PMIHP protocol. Every
// node of a session must call AllGather with the same phase sequence.
type Phase uint8

const (
	// PhaseItemCounts is the post-pass-1 exchange of local item count
	// vectors (the all-reduce of the paper, realized as gather + local
	// sum so the cascade stays lossless).
	PhaseItemCounts Phase = 1
	// PhaseTHT is the exchange of local TID-hash-table segments.
	PhaseTHT Phase = 2
	// PhaseFinal is the final exchange of globally frequent itemsets.
	PhaseFinal Phase = 3
	// PhaseResume is the barrier a resumed session runs before polling.
	// A resume skips the collectives its checkpoint covers, and with
	// them the guarantee that every peer's poll handler is installed by
	// the time the first poll arrives; this cheap extra all-gather
	// restores that ordering.
	PhaseResume Phase = 4
)

func (p Phase) String() string {
	switch p {
	case PhaseItemCounts:
		return "item-counts"
	case PhaseTHT:
		return "tht"
	case PhaseFinal:
		return "frequent-lists"
	case PhaseResume:
		return "resume-barrier"
	}
	return fmt.Sprintf("phase-%d", uint8(p))
}

// PollHandler answers a peer's candidate poll with the local support
// count of each itemset, aligned with sets. Implementations need not be
// safe for concurrent calls; the exchange serializes them.
type PollHandler func(k int, sets []itemset.Itemset) []int32

// Exchange is the pluggable communication layer a PMIHP node runs on.
// Two implementations exist: ChanExchange (in-process, channel-backed,
// used by the default simulated runtime and tests) and TCPExchange
// (real sockets between OS processes). The mining protocol in
// internal/distmine is written against this interface only.
//
// Protocol obligation: SetPollHandler must be called before entering
// AllGather(PhaseTHT). Polls are only sent by nodes that completed that
// collective, which transitively guarantees every peer's handler is
// installed before the first poll can arrive.
type Exchange interface {
	// NodeID returns this node's id in [0, Nodes()).
	NodeID() int
	// Nodes returns the cluster size.
	Nodes() int
	// SetPollHandler installs the local poll-answering function.
	SetPollHandler(h PollHandler)
	// AllGather contributes blob and returns every node's blob indexed
	// by node id. It is a collective: all nodes must call it with the
	// same phase, and it blocks until the exchange pattern completes.
	AllGather(phase Phase, blob []byte) ([][]byte, error)
	// Poll asks peer for the local support counts of a batch of
	// k-itemsets and returns the counts aligned with sets.
	Poll(peer, k int, sets []itemset.Itemset) ([]int32, error)
	// Stats returns the node's cumulative wire counters.
	Stats() *WireStats
	// Close releases connections and unblocks pending waits.
	Close() error
}

// ---- in-process channel exchange ----

// chanGroup is the shared state of an in-process cluster: one gather
// rendezvous per phase and the endpoint table polls route through.
type chanGroup struct {
	n         int
	mu        sync.Mutex
	gathers   map[Phase]*gatherState
	endpoints []*ChanExchange
}

type gatherState struct {
	blobs   [][]byte
	entered []bool
	got     int
	done    chan struct{}
}

// ChanExchange is the in-process Exchange: nodes are goroutines, a
// gather is a shared rendezvous, and a poll is a direct (serialized)
// handler call. No bytes ever hit a socket; wire statistics count
// messages and payload bytes as the TCP transport would frame them, so
// the modeled and the measured traffic are comparable.
type ChanExchange struct {
	id    int
	group *chanGroup
	stats WireStats

	pollMu sync.Mutex // serializes handler calls at this endpoint
	poll   PollHandler
}

// NewChanGroup returns the n connected endpoints of an in-process
// cluster.
func NewChanGroup(n int) []*ChanExchange {
	if n <= 0 {
		panic(fmt.Sprintf("transport: NewChanGroup(%d)", n))
	}
	g := &chanGroup{n: n, gathers: make(map[Phase]*gatherState)}
	g.endpoints = make([]*ChanExchange, n)
	for i := range g.endpoints {
		g.endpoints[i] = &ChanExchange{id: i, group: g}
	}
	return g.endpoints
}

// NodeID returns this endpoint's node id.
func (e *ChanExchange) NodeID() int { return e.id }

// Nodes returns the cluster size.
func (e *ChanExchange) Nodes() int { return e.group.n }

// SetPollHandler installs the poll-answering function.
func (e *ChanExchange) SetPollHandler(h PollHandler) {
	e.pollMu.Lock()
	e.poll = h
	e.pollMu.Unlock()
}

// Stats returns the endpoint's wire counters.
func (e *ChanExchange) Stats() *WireStats { return &e.stats }

// Close is a no-op for the in-process exchange.
func (e *ChanExchange) Close() error { return nil }

// AllGather deposits blob at the phase rendezvous and blocks until all
// n endpoints arrived.
func (e *ChanExchange) AllGather(phase Phase, blob []byte) ([][]byte, error) {
	g := e.group
	g.mu.Lock()
	st := g.gathers[phase]
	if st == nil {
		st = &gatherState{blobs: make([][]byte, g.n), entered: make([]bool, g.n), done: make(chan struct{})}
		g.gathers[phase] = st
	}
	if st.entered[e.id] {
		g.mu.Unlock()
		return nil, fmt.Errorf("transport: node %d entered %s all-gather twice", e.id, phase)
	}
	st.entered[e.id] = true
	st.blobs[e.id] = blob
	st.got++
	last := st.got == g.n
	if last {
		close(st.done)
	}
	g.mu.Unlock()
	<-st.done
	// Account the traffic as the framed wire form would cost it.
	e.stats.AddSent(1, int64(frameHeaderLen+len(blob)))
	for i, b := range st.blobs {
		if i != e.id {
			e.stats.AddRecv(1, int64(frameHeaderLen+len(b)))
		}
	}
	return st.blobs, nil
}

// Poll invokes the peer's handler directly, serialized per endpoint
// exactly like the per-connection poll service of the TCP transport.
func (e *ChanExchange) Poll(peer, k int, sets []itemset.Itemset) ([]int32, error) {
	if peer < 0 || peer >= e.group.n || peer == e.id {
		return nil, fmt.Errorf("transport: node %d polling invalid peer %d", e.id, peer)
	}
	p := e.group.endpoints[peer]
	p.pollMu.Lock()
	h := p.poll
	var counts []int32
	if h != nil {
		counts = h(k, sets)
	}
	p.pollMu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("transport: node %d polled node %d before its handler was installed", e.id, peer)
	}
	if len(counts) != len(sets) {
		return nil, fmt.Errorf("transport: node %d replied %d counts for %d sets", peer, len(counts), len(sets))
	}
	reqBytes := int64(frameHeaderLen + 8 + 4*k*len(sets))
	repBytes := int64(frameHeaderLen + 4 + 4*len(counts))
	e.stats.AddSent(1, reqBytes)
	e.stats.AddRecv(1, repBytes)
	p.stats.AddRecv(1, reqBytes)
	p.stats.AddSent(1, repBytes)
	return counts, nil
}

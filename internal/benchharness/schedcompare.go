package benchharness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/distmine"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/sched"
	"pmihp/internal/text"
)

// SchedSide is one arm of the static-vs-elastic scheduler comparison.
type SchedSide struct {
	Name       string `json:"name"`
	StartNodes int    `json:"start_nodes"`
	FinalNodes int    `json:"final_nodes"`
	// WallSeconds is real elapsed time for the session (admission to
	// completion), machine-dependent like ns/op — informational only,
	// since a CI box may not even have 8 cores to parallelize over.
	WallSeconds float64 `json:"wall_seconds"`
	// MaxBusySeconds is the final roster's modeled makespan: the largest
	// per-node busy time (mining plus poll service) under the
	// deterministic cost model — what wall-clock would be on a real
	// cluster with one workstation per node. This is the gated speed
	// metric.
	MaxBusySeconds float64 `json:"max_busy_seconds"`
	// Imbalance is the run's deterministic pass-imbalance ratio
	// max(busy)*n/sum(busy) over the final roster's modeled busy seconds.
	Imbalance float64 `json:"imbalance"`
	Resizes   int     `json:"resizes"`
}

// SchedCompareReport records the dynamic-vs-static scheduling experiment:
// the same skewed corpus mined once with a fixed equal-count 8-node
// partitioning (the paper's static layout) and once through the elastic
// scheduler, which starts on the same 8 workers and recruits the pool's
// idle ones at the first checkpoint barrier, re-splitting by estimated
// work. Both runs must produce itemsets byte-identical to the
// single-process reference.
type SchedCompareReport struct {
	Corpus    string    `json:"corpus"`
	Scale     string    `json:"scale"`
	Docs      int       `json:"docs"`
	Workers   int       `json:"workers"`
	Static  SchedSide `json:"static"`
	Elastic SchedSide `json:"elastic"`
	// Speedup is static modeled makespan over elastic modeled makespan
	// (> 1 means the elastic scheduler wins).
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// WriteJSON writes the report, indented, to w.
func (r *SchedCompareReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// schedCompareWorkers is the pool size: the static arm leases
// schedCompareNodes of them and leaves the rest idle; the elastic arm
// starts identically and then grows onto the idle remainder.
const (
	schedCompareNodes   = 8
	schedCompareWorkers = 12
)

// RunSchedCompare mines the skewed corpus preset at the given scale under
// both arms on one in-process worker pool (real daemons on loopback) and
// returns the comparison. log, when non-nil, receives progress lines.
func RunSchedCompare(scale corpus.Scale, log io.Writer) (*SchedCompareReport, error) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	docs, err := corpus.Generate(corpus.CorpusSkewed(scale))
	if err != nil {
		return nil, err
	}
	db, _ := text.ToDB(docs, nil)
	// Equal-count partitioning is the static arm's handicap on day-skewed
	// data; the elastic arm starts from the same cut and repairs it at the
	// barrier.
	opts := mining.Options{MinSupCount: 2, MaxK: 3, Partitioner: mining.PartitionByCount}

	ref, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 1}, opts)
	if err != nil {
		return nil, fmt.Errorf("benchharness: sched-compare reference: %w", err)
	}

	pool := sched.NewPool(sched.PoolOptions{})
	poolLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go pool.Serve(poolLn)
	defer pool.Close()

	var members []*sched.Membership
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	for i := 0; i < schedCompareWorkers; i++ {
		d := distmine.NewDaemon(distmine.DaemonOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer ln.Close()
		go d.Serve(ln)
		m, err := sched.Join(poolLn.Addr().String(), ln.Addr().String(), sched.JoinOptions{})
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = pool.WaitMembers(ctx, schedCompareWorkers)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("benchharness: sched-compare pool: %w", err)
	}

	// A generous control-plane heartbeat: all the workers share this
	// process's cores, so under full mining load a 500ms cadence can
	// starve long enough to trip the 6x timeout and fail over a healthy
	// node mid-measurement.
	s := sched.NewScheduler(sched.SchedulerOptions{
		Pool:    pool,
		Cluster: distmine.ClusterConfig{HeartbeatInterval: 2 * time.Second},
	})
	defer s.Close()

	rep := &SchedCompareReport{
		Corpus:    "skewed",
		Scale:     scale.String(),
		Docs:      db.Len(),
		Workers:   schedCompareWorkers,
		Identical: true,
	}
	runArm := func(name string, growTo int) (SchedSide, error) {
		start := time.Now()
		sess, err := s.Submit(sched.SessionRequest{
			DB: db, Opts: opts, Nodes: schedCompareNodes, GrowTo: growTo, Label: name,
		})
		if err != nil {
			return SchedSide{}, err
		}
		res, err := sess.Wait()
		if err != nil {
			return SchedSide{}, fmt.Errorf("benchharness: sched-compare %s: %w", name, err)
		}
		if !sameFrequent(ref.Result.Frequent, res.Frequent) {
			rep.Identical = false
		}
		var maxBusy float64
		for _, ns := range res.Nodes {
			if ns.BusySeconds > maxBusy {
				maxBusy = ns.BusySeconds
			}
		}
		side := SchedSide{
			Name:           name,
			StartNodes:     schedCompareNodes,
			FinalNodes:     len(res.Nodes),
			WallSeconds:    time.Since(start).Seconds(),
			MaxBusySeconds: maxBusy,
			Imbalance:      res.Imbalance,
			Resizes:        res.Metrics.ElasticResizes,
		}
		logf("sched-compare %-8s %d->%d nodes, wall %6.2fs, modeled makespan %8.3fs, imbalance %.3f, resizes %d",
			name, side.StartNodes, side.FinalNodes, side.WallSeconds, side.MaxBusySeconds, side.Imbalance, side.Resizes)
		return side, nil
	}

	if rep.Static, err = runArm("static", 0); err != nil {
		return nil, err
	}
	if rep.Elastic, err = runArm("elastic", schedCompareWorkers); err != nil {
		return nil, err
	}
	if rep.Elastic.MaxBusySeconds > 0 {
		rep.Speedup = rep.Static.MaxBusySeconds / rep.Elastic.MaxBusySeconds
	}
	return rep, nil
}

// sameFrequent reports whether two frequent lists are byte-identical.
func sameFrequent(want, got []itemset.Counted) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if !want[i].Set.Equal(got[i].Set) || want[i].Count != got[i].Count {
			return false
		}
	}
	return true
}

package benchharness

import (
	"fmt"
	"math"
	"sort"

	"pmihp/internal/core"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
)

// VerifyTrace replays an observability event stream (a -trace-json file
// or a Keep-mode recorder's events) against the metrics of the run that
// produced it and returns the discrepancies, empty when the trace is
// consistent. It checks:
//
//   - pass totals: the trace's pass events must count exactly
//     Metrics.Passes executed passes;
//   - candidates per k: locally generated candidates (pass events) plus
//     poll-served candidate sets (poll events) must equal
//     Metrics.CandidatesByK, which merges miner and poll-service
//     accounting;
//   - pruning totals: pass events record deltas around executed passes
//     only — a generation whose candidates all prune away breaks before
//     the scan and emits nothing — so the trace may undercount pruning
//     but can never exceed the metrics;
//   - wire time: on a clean cluster run (WireSeconds measured, no
//     failovers) the collective spans re-use the exact phase
//     measurements WireSeconds sums, so their totals must agree. A
//     failover run also traces the aborted attempts' spans, which
//     WireSeconds deliberately excludes, so the check is skipped.
func VerifyTrace(events []obs.Event, m *mining.Metrics) []string {
	s := obs.Summarize(events)
	var bad []string

	if s.Passes != int64(m.Passes) {
		bad = append(bad, fmt.Sprintf("passes: trace has %d, metrics report %d", s.Passes, m.Passes))
	}

	ks := make(map[int]bool)
	for k := range s.CandidatesByK {
		ks[k] = true
	}
	for k := range s.PolledByK {
		ks[k] = true
	}
	for k := range m.CandidatesByK {
		ks[k] = true
	}
	sorted := make([]int, 0, len(ks))
	for k := range ks {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)
	for _, k := range sorted {
		traced := s.CandidatesByK[k] + s.PolledByK[k]
		if traced != int64(m.CandidatesByK[k]) {
			bad = append(bad, fmt.Sprintf("candidates k=%d: trace has %d (%d mined + %d polled), metrics report %d",
				k, traced, s.CandidatesByK[k], s.PolledByK[k], m.CandidatesByK[k]))
		}
	}

	for _, c := range []struct {
		name   string
		trace  int64
		metric int64
	}{
		{"pruned-tht", s.PrunedTHT, m.PrunedByTHT},
		{"pruned-subset", s.PrunedSubset, m.PrunedBySubset},
		{"trimmed-items", s.TrimmedItems, m.TrimmedItems},
		{"pruned-tx", s.PrunedTx, m.PrunedTx},
	} {
		if c.trace > c.metric {
			bad = append(bad, fmt.Sprintf("%s: trace has %d, exceeds metrics' %d", c.name, c.trace, c.metric))
		}
	}

	if m.WireSeconds > 0 && m.Failovers == 0 {
		spanWire := s.SpanSecondsPrefix("exchange:") +
			s.SpanSeconds["poll:resolve"] +
			s.SpanSeconds["resume:barrier"]
		if math.Abs(spanWire-m.WireSeconds) > 1e-9+1e-6*m.WireSeconds {
			bad = append(bad, fmt.Sprintf("wire seconds: collective spans total %v, metrics report %v", spanWire, m.WireSeconds))
		}
	}
	return bad
}

// VerifyScheduleGauges reconciles the load gauges a PMIHP run publishes on
// its recorder — per-node busy_seconds and idle_seconds, and the
// cluster-level pass_imbalance_ratio — against the run's own report, and
// returns the discrepancies, empty when they agree. Busy is a node's
// charged work (Metrics.Work), idle is the remainder of the run's total
// simulated time (every node's clock ends at the final all-gather, so the
// gap is exactly the time spent waiting on collectives), and the
// imbalance ratio is max(busy)·nodes/sum(busy) — 1.0 for a perfectly
// balanced pass schedule.
func VerifyScheduleGauges(s obs.Snapshot, r *core.ParallelResult) []string {
	const tol = 1e-9
	var bad []string
	busyG := s.NodeFloats["busy_seconds"]
	idleG := s.NodeFloats["idle_seconds"]
	var maxBusy, sumBusy float64
	for _, node := range r.Nodes {
		busy := node.Metrics.Work.Seconds()
		if maxBusy < busy {
			maxBusy = busy
		}
		sumBusy += busy
		got, ok := busyG[node.Node]
		if !ok {
			bad = append(bad, fmt.Sprintf("busy_seconds: node %d missing from gauges", node.Node))
		} else if math.Abs(got-busy) > tol+tol*busy {
			bad = append(bad, fmt.Sprintf("busy_seconds: node %d gauge %v, metrics charge %v", node.Node, got, busy))
		}
		idle := r.TotalSeconds - busy
		if idle < 0 {
			idle = 0
		}
		if got, ok := idleG[node.Node]; !ok {
			bad = append(bad, fmt.Sprintf("idle_seconds: node %d missing from gauges", node.Node))
		} else if math.Abs(got-idle) > tol+tol*r.TotalSeconds {
			bad = append(bad, fmt.Sprintf("idle_seconds: node %d gauge %v, run implies %v", node.Node, got, idle))
		}
	}
	if sumBusy > 0 {
		want := maxBusy * float64(len(r.Nodes)) / sumBusy
		if got, ok := s.FloatGauges["pass_imbalance_ratio"]; !ok {
			bad = append(bad, "pass_imbalance_ratio: gauge missing")
		} else if math.Abs(got-want) > tol+tol*want {
			bad = append(bad, fmt.Sprintf("pass_imbalance_ratio: gauge %v, node charges imply %v", got, want))
		}
	}
	return bad
}

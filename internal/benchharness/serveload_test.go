package benchharness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"net/http/httptest"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/rules"
	"pmihp/internal/serve"
	"pmihp/internal/text"
)

// TestRunLoadAgainstLiveServer is the in-process version of the CI smoke
// gate: mine a small rule set, serve it, drive a short Zipf burst through
// both phases, and require zero errors with the warm phase riding the
// cache.
func TestRunLoadAgainstLiveServer(t *testing.T) {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	db, vocab := text.ToDB(docs, nil)
	result, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, mining.Options{MinSupCount: 3, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws := rules.ToWordRules(rules.Generate(result.Result.Frequent, db.Len(), 0.5), vocab.Word)

	srv := serve.NewServer(serve.Config{Replicas: 2, CacheSize: 256})
	if _, err := srv.Swap(ws, "load test"); err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.Config{})
	ts := httptest.NewServer(srv.Handler(rec))
	defer ts.Close()

	var log strings.Builder
	rep, err := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 400,
		Seed:     11,
		Timeout:  10 * time.Second,
	}, &log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cold == nil || rep.Warm == nil {
		t.Fatalf("missing phase: %+v", rep)
	}
	for _, p := range []*LoadPhase{rep.Cold, rep.Warm} {
		if p.Errors != 0 || p.DeadlineExceeded != 0 {
			t.Fatalf("%s phase: %d errors, %d deadline-exceeded", p.Name, p.Errors, p.DeadlineExceeded)
		}
		if p.Requests != 400 || p.QPS <= 0 || p.Seconds <= 0 {
			t.Fatalf("%s phase accounting: %+v", p.Name, p)
		}
		if p.P50Ms > p.P95Ms || p.P95Ms > p.P99Ms {
			t.Fatalf("%s quantiles not monotone: %+v", p.Name, p)
		}
	}
	if rep.Heads == 0 || rep.Generation != 1 {
		t.Fatalf("discovery: %+v", rep)
	}
	// The cold phase populates the cache; the warm phase replays the same
	// sequence and must hit it.
	if rep.Cold.CacheMisses == 0 {
		t.Fatalf("cold phase never missed the cache: %+v", rep.Cold)
	}
	if rep.Warm.CacheHits == 0 {
		t.Fatalf("warm phase never hit the cache: %+v", rep.Warm)
	}
	if rep.Warm.CacheMisses >= rep.Cold.CacheMisses {
		t.Fatalf("warm misses (%d) not below cold misses (%d)", rep.Warm.CacheMisses, rep.Cold.CacheMisses)
	}
	if !strings.Contains(log.String(), "cold") || !strings.Contains(log.String(), "warm") {
		t.Fatalf("log missing phase lines:\n%s", log.String())
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back LoadReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cold.Requests != rep.Cold.Requests || back.Warm.QPS != rep.Warm.QPS {
		t.Fatal("report did not round-trip")
	}
}

func TestRunLoadErrors(t *testing.T) {
	if _, err := RunLoad(LoadConfig{BaseURL: "http://127.0.0.1:1", Timeout: time.Second}, nil); err == nil {
		t.Fatal("unreachable daemon accepted")
	}
	srv := serve.NewServer(serve.Config{})
	ts := httptest.NewServer(srv.Handler(nil))
	defer ts.Close()
	// No generation loaded: /admin/heads answers 503, discovery must fail.
	if _, err := RunLoad(LoadConfig{BaseURL: ts.URL}, nil); err == nil {
		t.Fatal("unloaded daemon accepted")
	}
}

func TestLoadConfigDefaults(t *testing.T) {
	cfg := LoadConfig{}
	cfg.fill()
	if cfg.Clients != 8 || cfg.Requests != 2000 || cfg.Limit != 5 || cfg.ZipfS != 1.2 || cfg.ZipfV != 1.0 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	one := []time.Duration{time.Millisecond}
	if q := quantile(one, 0.99); q != 1 {
		t.Fatalf("single-sample quantile = %v", q)
	}
}

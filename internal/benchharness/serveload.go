// serveload.go is the load-test driver behind pmihp-bench -serve-load:
// it hammers a running pmihp-serve daemon with concurrent clients whose
// query heads follow a Zipf distribution (hot heads dominate, like real
// query logs), and reports QPS, latency quantiles, and error accounting
// for a cold-cache and a warm-cache phase. The warm phase replays the
// cold phase's exact request sequence (same seeds), so the difference
// between the two isolates the server-side cache.
package benchharness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// LoadConfig configures one load run against a live daemon.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8397".
	BaseURL string
	// Clients is the number of concurrent request loops (default 8).
	Clients int
	// Requests is the total request count per phase, split across clients
	// (default 2000).
	Requests int
	// Limit is the per-word term limit sent with every query (default 5).
	Limit int
	// ZipfS and ZipfV shape the head-popularity distribution
	// (math/rand.NewZipf; defaults 1.2 and 1.0 — s must be > 1, v >= 1).
	ZipfS, ZipfV float64
	// Heads is the query universe. When nil the driver discovers it from
	// the daemon's /admin/heads endpoint, ordered hottest-first, which
	// makes the Zipf head also the daemon's densest bucket.
	Heads []string
	// Seed makes the request sequence deterministic; both phases replay
	// the same sequence.
	Seed int64
	// Timeout bounds each request on the client side (default 5s).
	Timeout time.Duration
}

func (c *LoadConfig) fill() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Limit == 0 {
		c.Limit = 5
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1.0
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
}

// LoadPhase is the measurement of one pass over the request sequence.
type LoadPhase struct {
	Name             string  `json:"name"`
	Requests         int     `json:"requests"`
	Errors           int     `json:"errors"`
	DeadlineExceeded int     `json:"deadline_exceeded"`
	Seconds          float64 `json:"seconds"`
	QPS              float64 `json:"qps"`
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	P99Ms            float64 `json:"p99_ms"`
	// Cache deltas are scraped from the daemon's /snapshot gauges around
	// the phase, so they are server-side truth, not client inference.
	// Absent (all zero) when the daemon runs without an obs recorder.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheCoalesced int64 `json:"cache_coalesced"`
}

// LoadReport is the full -serve-load result, written as JSON.
type LoadReport struct {
	SchemaVersion int        `json:"schema_version"`
	BaseURL       string     `json:"base_url"`
	Clients       int        `json:"clients"`
	RequestsPer   int        `json:"requests_per_phase"`
	ZipfS         float64    `json:"zipf_s"`
	Seed          int64      `json:"seed"`
	Heads         int        `json:"heads"`
	Generation    int64      `json:"generation"`
	Cold          *LoadPhase `json:"cold"`
	Warm          *LoadPhase `json:"warm"`
}

// fetchHeads discovers the query universe from /admin/heads.
func fetchHeads(client *http.Client, baseURL string) ([]string, int64, error) {
	resp, err := client.Get(baseURL + "/admin/heads?limit=0")
	if err != nil {
		return nil, 0, fmt.Errorf("discovering heads: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("discovering heads: %s from /admin/heads", resp.Status)
	}
	var body struct {
		Generation int64 `json:"generation"`
		Heads      []struct {
			Word string `json:"word"`
		} `json:"heads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, fmt.Errorf("decoding /admin/heads: %w", err)
	}
	heads := make([]string, len(body.Heads))
	for i, h := range body.Heads {
		heads[i] = h.Word
	}
	return heads, body.Generation, nil
}

// cacheCounters scrapes the server-side cache gauges from /snapshot. A
// daemon serving without an obs recorder has no /snapshot; that is not
// an error, the phase just reports zero deltas.
func cacheCounters(client *http.Client, baseURL string) (hits, misses, coalesced int64, ok bool) {
	resp, err := client.Get(baseURL + "/snapshot")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return 0, 0, 0, false
	}
	defer resp.Body.Close()
	var snap struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, 0, 0, false
	}
	return snap.Gauges["serve_cache_hits_total"],
		snap.Gauges["serve_cache_misses_total"],
		snap.Gauges["serve_cache_coalesced_total"], true
}

// quantile returns the q-th latency from the sorted sample, in
// milliseconds, by the nearest-rank method.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// runPhase replays the request sequence once: each client walks its own
// deterministic Zipf stream over the head universe, so the same seed
// yields the same requests in the same per-client order.
func runPhase(cfg *LoadConfig, client *http.Client, heads []string, name string) (*LoadPhase, error) {
	p := &LoadPhase{Name: name}
	preH, preM, preC, scraped := cacheCounters(client, cfg.BaseURL)

	perClient := cfg.Requests / cfg.Clients
	if perClient == 0 {
		perClient = 1
	}
	type clientResult struct {
		lat              []time.Duration
		errors, deadline int
	}
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Seed per client, not per phase: the warm phase reuses the
			// same seeds and therefore replays the same head sequence.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(len(heads)-1))
			r := &results[c]
			r.lat = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				head := heads[zipf.Uint64()]
				target := fmt.Sprintf("%s/expand?q=%s&limit=%d", cfg.BaseURL, url.QueryEscape(head), cfg.Limit)
				t0 := time.Now()
				resp, err := client.Get(target)
				r.lat = append(r.lat, time.Since(t0))
				if err != nil {
					r.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
				case resp.StatusCode == http.StatusGatewayTimeout:
					r.deadline++
				default:
					r.errors++
				}
			}
		}(c)
	}
	wg.Wait()
	p.Seconds = time.Since(start).Seconds()

	var all []time.Duration
	for _, r := range results {
		all = append(all, r.lat...)
		p.Errors += r.errors
		p.DeadlineExceeded += r.deadline
	}
	p.Requests = len(all)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p.P50Ms = quantile(all, 0.50)
	p.P95Ms = quantile(all, 0.95)
	p.P99Ms = quantile(all, 0.99)
	if p.Seconds > 0 {
		p.QPS = float64(p.Requests) / p.Seconds
	}
	if postH, postM, postC, ok := cacheCounters(client, cfg.BaseURL); ok && scraped {
		p.CacheHits = postH - preH
		p.CacheMisses = postM - preM
		p.CacheCoalesced = postC - preC
	}
	return p, nil
}

// RunLoad drives the daemon at cfg.BaseURL through a cold-cache and a
// warm-cache phase of identical request sequences and returns the
// report. log, when non-nil, receives one line per phase.
func RunLoad(cfg LoadConfig, log io.Writer) (*LoadReport, error) {
	cfg.fill()
	client := &http.Client{Timeout: cfg.Timeout}
	heads := cfg.Heads
	var gen int64
	if len(heads) == 0 {
		var err error
		heads, gen, err = fetchHeads(client, cfg.BaseURL)
		if err != nil {
			return nil, err
		}
	}
	if len(heads) == 0 {
		return nil, fmt.Errorf("serve-load: daemon at %s serves no heads", cfg.BaseURL)
	}

	rep := &LoadReport{
		SchemaVersion: 1,
		BaseURL:       cfg.BaseURL,
		Clients:       cfg.Clients,
		RequestsPer:   cfg.Requests,
		ZipfS:         cfg.ZipfS,
		Seed:          cfg.Seed,
		Heads:         len(heads),
		Generation:    gen,
	}
	for _, name := range []string{"cold", "warm"} {
		p, err := runPhase(&cfg, client, heads, name)
		if err != nil {
			return nil, err
		}
		if name == "cold" {
			rep.Cold = p
		} else {
			rep.Warm = p
		}
		if log != nil {
			fmt.Fprintf(log, "%-5s %6d req %9.0f qps  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  %d errors  %d deadline  cache %d/%d hit/miss\n",
				p.Name, p.Requests, p.QPS, p.P50Ms, p.P95Ms, p.P99Ms, p.Errors, p.DeadlineExceeded, p.CacheHits, p.CacheMisses)
		}
	}
	return rep, nil
}

// WriteJSON writes the load report, indented, to w.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

package benchharness

import (
	"testing"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/distmine"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func traceDB(t *testing.T) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(corpus.CorpusB(corpus.Small))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

// TestVerifyTrace pins the acceptance invariant of the trace format:
// replaying the event stream of a run reproduces the run's own metrics
// — pass counts, per-k candidate totals (mined plus poll-served), and,
// for measured cluster runs, the wire time.
func TestVerifyTrace(t *testing.T) {
	db := traceDB(t)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}

	t.Run("pmihp-simulated", func(t *testing.T) {
		rec := obs.New(obs.Config{Keep: true})
		o := opts
		o.Obs = rec
		r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 8}, o)
		if err != nil {
			t.Fatal(err)
		}
		if bad := VerifyTrace(rec.Events(), &r.Result.Metrics); len(bad) != 0 {
			t.Fatalf("trace does not replay to the run's metrics:\n%v", bad)
		}
		if bad := VerifyScheduleGauges(rec.Snap(), r); len(bad) != 0 {
			t.Fatalf("load gauges do not reconcile with the run's report:\n%v", bad)
		}
	})

	t.Run("countdist", func(t *testing.T) {
		rec := obs.New(obs.Config{Keep: true})
		o := opts
		o.Obs = rec
		r, err := countdist.Mine(db, countdist.Config{Nodes: 8}, o)
		if err != nil {
			t.Fatal(err)
		}
		if bad := VerifyTrace(rec.Events(), &r.Result.Metrics); len(bad) != 0 {
			t.Fatalf("trace does not replay to the run's metrics:\n%v", bad)
		}
	})

	t.Run("distmine", func(t *testing.T) {
		rec := obs.New(obs.Config{Keep: true})
		o := opts
		o.Obs = rec
		r, err := distmine.MineInProcess(db, 8, o)
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics.WireSeconds <= 0 {
			t.Fatalf("in-process cluster run measured no wire time: %+v", r.Metrics)
		}
		if bad := VerifyTrace(rec.Events(), &r.Metrics); len(bad) != 0 {
			t.Fatalf("trace does not replay to the run's metrics:\n%v", bad)
		}
	})

	t.Run("detects-drift", func(t *testing.T) {
		rec := obs.New(obs.Config{Keep: true})
		o := opts
		o.Obs = rec
		r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 2}, o)
		if err != nil {
			t.Fatal(err)
		}
		m := r.Result.Metrics
		m.Passes++
		m.AddCandidates(2, 5)
		bad := VerifyTrace(rec.Events(), &m)
		if len(bad) != 2 {
			t.Fatalf("tampered metrics produced %d discrepancies, want 2: %v", len(bad), bad)
		}

		// Shifting one node's charged work must break the busy/idle gauges
		// (and usually the imbalance ratio) the run published.
		r.Nodes[0].Metrics.Work.Charge(1, mining.UnitsPerSecond)
		if bad := VerifyScheduleGauges(rec.Snap(), r); len(bad) == 0 {
			t.Fatal("tampered node work reconciled cleanly against the load gauges")
		}
	})
}

// Package benchharness runs the repository's per-figure benchmark workloads
// (the E1–E9 experiments behind the paper's evaluation) under the standard
// testing.Benchmark driver and reports machine-readable results: wall-clock
// ns/op, allocations per op, and — for the simulated-cluster workloads —
// the simulated seconds of the modeled run.
//
// cmd/pmihp-bench exposes it via -benchjson, writing BENCH_<rev>.json files
// that scripts/bench.sh diffs against a committed baseline to catch
// wall-clock regressions; the simulated seconds double as a determinism
// check, since they must not drift at all across revisions that only change
// physical implementation.
package benchharness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// Result is the measurement of one workload.
type Result struct {
	Name        string  `json:"name"`
	Fig         string  `json:"fig"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimSeconds is the simulated execution time of the modeled run (total
	// cluster time for parallel workloads), 0 when the workload does not
	// simulate a cluster. It is implementation-independent: any change here
	// means the cost model's behavior changed, not just its speed.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// BytesHeld is the run's deterministic resident-structure footprint
	// (mining.Metrics.PeakHeldBytes summed across nodes): the CSR database
	// and working copies, THT matrices, compressed inverted files, and
	// candidate structures, accounted by their MemBytes methods. Unlike
	// bytes_per_op it does not count allocation churn, so it tracks layout
	// changes exactly and reproducibly.
	BytesHeld int64 `json:"bytes_held,omitempty"`
}

// SchemaVersion is the report format version. Version 2 added bytes_held
// and the schema_version field itself; baselines written before it lack
// both, so comparisons against them check wall-clock only.
const SchemaVersion = 2

// Report is a full harness run.
type Report struct {
	SchemaVersion int      `json:"schema_version,omitempty"`
	Rev           string   `json:"rev"`
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Scale         string   `json:"scale"`
	Workloads     []Result `json:"workloads"`
}

// corpora holds the generated databases a workload can run against: the
// three figure corpora at the harness scale, corpus B at paper scale for
// the always-on smoke entry, and the stop-word-heavy dense variant of B
// that exercises the bitmap posting kernels.
type corpora struct {
	A, B, C *txdb.DB
	PaperB  *txdb.DB
	Dense   *txdb.DB
	Skewed  *txdb.DB
}

// workload is one benchmark entry: run executes a single mining run and
// returns the simulated seconds (0 when not applicable) with the run's
// deterministic held-bytes footprint.
type workload struct {
	name string
	fig  string
	run  func(dbs *corpora) (simSeconds float64, heldBytes int64, err error)
}

// workload database selectors for the seq/pmihp constructors.
const (
	useA = iota
	useB
	useC
	usePaperB
	useDense
	useSkewed
)

// workloads mirrors bench_test.go's per-figure benchmarks, at the given
// corpus scale.
func workloads() []workload {
	optsA := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	optsB := mining.Options{MinSupCount: 2, MaxK: 3}
	optsC := mining.Options{MinSupCount: 2, MaxK: 2}
	// The smoke entry mines paper-scale corpus B on 8 nodes at the Fig-4/5
	// support, so every harness run — whatever its -scale — exercises the
	// paper-size data layout and records its held-bytes footprint.
	optsSmoke := mining.Options{MinSupFrac: 0.02, MaxK: 3}
	// The dense entry mines the no-stoplist corpus, where the frequent
	// words appear in most documents; a high support fraction keeps the
	// candidates to exactly those dense posting lists, which is the
	// workload the bitmap kernels exist for.
	optsDense := mining.Options{MinSupFrac: 0.10, MaxK: 3}
	// The skew pair mines the day-skewed corpus twice — once under each
	// partitioner — at the Fig-6 support, so the report shows the static
	// equal-count cost next to the work-balanced cost on the same data.
	// The frequent itemsets are identical; only the simulated seconds move.
	optsSkewStatic := mining.Options{MinSupCount: 2, MaxK: 3, Partitioner: mining.PartitionByCount}
	optsSkewWork := mining.Options{MinSupCount: 2, MaxK: 3, Partitioner: mining.PartitionByWork}
	pick := func(dbs *corpora, which int) *txdb.DB {
		switch which {
		case useB:
			return dbs.B
		case useC:
			return dbs.C
		case usePaperB:
			return dbs.PaperB
		case useDense:
			return dbs.Dense
		case useSkewed:
			return dbs.Skewed
		}
		return dbs.A
	}
	seq := func(mine func(*txdb.DB, mining.Options) (*mining.Result, error), opts mining.Options, which int) func(*corpora) (float64, int64, error) {
		return func(dbs *corpora) (float64, int64, error) {
			r, err := mine(pick(dbs, which), opts)
			if err != nil {
				return 0, 0, err
			}
			return 0, r.Metrics.PeakHeldBytes, nil
		}
	}
	pmihp := func(nodes int, mode core.PollMode, opts mining.Options, which int) func(*corpora) (float64, int64, error) {
		return func(dbs *corpora) (float64, int64, error) {
			r, err := core.MinePMIHP(pick(dbs, which), core.PMIHPConfig{Nodes: nodes, Mode: mode}, opts)
			if err != nil {
				return 0, 0, err
			}
			return r.TotalSeconds, r.Result.Metrics.PeakHeldBytes, nil
		}
	}
	return []workload{
		{"E1Fig4_Apriori", "fig4", seq(apriori.Mine, optsA, useA)},
		{"E1Fig4_DHP", "fig4", seq(dhp.Mine, optsA, useA)},
		{"E1Fig4_FPGrowth", "fig4", seq(fpgrowth.Mine, optsA, useA)},
		{"E1Fig4_MIHP", "fig4", seq(core.MineMIHP, optsA, useA)},
		{"E2Fig5_CountDistribution", "fig5", func(dbs *corpora) (float64, int64, error) {
			r, err := countdist.Mine(dbs.A, countdist.Config{Nodes: 8}, optsA)
			if err != nil {
				return 0, 0, err
			}
			return r.TotalSeconds, r.Result.Metrics.PeakHeldBytes, nil
		}},
		{"E2Fig5_PMIHP", "fig5", pmihp(8, core.Interleaved, optsA, useA)},
		{"E3Fig6_PMIHP1", "fig6", pmihp(1, core.Interleaved, optsB, useB)},
		{"E3Fig6_PMIHP2", "fig6", pmihp(2, core.Interleaved, optsB, useB)},
		{"E3Fig6_PMIHP4", "fig6", pmihp(4, core.Interleaved, optsB, useB)},
		{"E3Fig6_PMIHP8", "fig6", pmihp(8, core.Interleaved, optsB, useB)},
		{"E3PaperSmoke_PMIHP8", "fig6", pmihp(8, core.Interleaved, optsSmoke, usePaperB)},
		{"E5Fig8_DeferredPolling", "fig8", pmihp(4, core.Deferred, optsB, useB)},
		{"E8Fig11_AprioriC3", "fig11", seq(apriori.Mine, optsB, useB)},
		{"E9EightWeek_PMIHP1", "sec3", pmihp(1, core.Interleaved, optsC, useC)},
		{"E9EightWeek_PMIHP8", "sec3", pmihp(8, core.Interleaved, optsC, useC)},
		{"E9Dense_PMIHP8", "sec3", pmihp(8, core.Interleaved, optsDense, useDense)},
		{"E10SkewStatic_PMIHP8", "skew", pmihp(8, core.Interleaved, optsSkewStatic, useSkewed)},
		{"E10Skew_PMIHP8", "skew", pmihp(8, core.Interleaved, optsSkewWork, useSkewed)},
	}
}

// Run generates the corpora at the given scale and measures every workload.
// log, when non-nil, receives one progress line per workload.
func Run(rev string, scale corpus.Scale, log io.Writer) (*Report, error) {
	docsA, err := corpus.Generate(corpus.CorpusA(scale))
	if err != nil {
		return nil, err
	}
	dbA, _ := text.ToDB(docsA, nil)
	docsB, err := corpus.Generate(corpus.CorpusB(scale))
	if err != nil {
		return nil, err
	}
	dbB, _ := text.ToDB(docsB, nil)
	docsC, err := corpus.Generate(corpus.CorpusC(scale))
	if err != nil {
		return nil, err
	}
	dbC, _ := text.ToDB(docsC, nil)
	dbPaperB := dbB
	if scale != corpus.Paper {
		docsPB, err := corpus.Generate(corpus.CorpusB(corpus.Paper))
		if err != nil {
			return nil, err
		}
		dbPaperB, _ = text.ToDB(docsPB, nil)
	}
	docsD, err := corpus.Generate(corpus.CorpusDense(scale))
	if err != nil {
		return nil, err
	}
	dbD, _ := text.ToDB(docsD, nil)
	docsS, err := corpus.Generate(corpus.CorpusSkewed(scale))
	if err != nil {
		return nil, err
	}
	dbS, _ := text.ToDB(docsS, nil)
	dbs := &corpora{A: dbA, B: dbB, C: dbC, PaperB: dbPaperB, Dense: dbD, Skewed: dbS}

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Rev:           rev,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         scale.String(),
	}
	for _, w := range workloads() {
		var sim float64
		var held int64
		var runErr error
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, h, err := w.run(dbs)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				sim, held = s, h
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("benchharness: %s: %w", w.name, runErr)
		}
		res := Result{
			Name:        w.name,
			Fig:         w.fig,
			Iterations:  br.N,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			SimSeconds:  sim,
			BytesHeld:   held,
		}
		rep.Workloads = append(rep.Workloads, res)
		if log != nil {
			fmt.Fprintf(log, "%-28s %12.0f ns/op %9d allocs/op %8.2f held-MB %10.4f sim-s\n",
				w.name, res.NsPerOp, res.AllocsPerOp, float64(res.BytesHeld)/(1<<20), res.SimSeconds)
		}
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchharness: %s: %w", path, err)
	}
	return &r, nil
}

// MissingFromBase returns the names of workloads present in cur but absent
// from base: entries added since the baseline was written, which Compare
// necessarily skips. Callers should surface them as a notice — the new
// workloads ran ungated and the baseline wants regenerating — not as a
// failure, so adding a benchmark never breaks the gate by itself.
func MissingFromBase(base, cur *Report) []string {
	known := make(map[string]bool, len(base.Workloads))
	for _, w := range base.Workloads {
		known[w.Name] = true
	}
	var missing []string
	for _, w := range cur.Workloads {
		if !known[w.Name] {
			missing = append(missing, w.Name)
		}
	}
	return missing
}

// simTol is the relative tolerance for comparing simulated seconds. Node
// clocks are float accumulators fed in the asynchronous fabric's service
// order, so repeated runs can differ by a few ULPs; any genuine cost-model
// change moves the totals by many orders of magnitude more than this.
const simTol = 1e-9

// Compare reports the workloads of cur that regressed against base: ns/op
// or bytes_held worse by more than tolFrac (e.g. 0.20 for 20%), or simulated
// seconds that differ beyond float accumulation noise (the cost model must
// be stable). Workloads missing from either report are skipped. When the
// baseline predates the current schema (see SchemaVersion) its sim_seconds
// and bytes_held fields are unreliable or absent, so only wall-clock is
// checked — callers should surface that the drift checks were skipped.
func Compare(base, cur *Report, tolFrac float64) []string {
	byName := make(map[string]Result, len(base.Workloads))
	for _, w := range base.Workloads {
		byName[w.Name] = w
	}
	schemaOK := base.SchemaVersion >= SchemaVersion
	var bad []string
	for _, w := range cur.Workloads {
		b, ok := byName[w.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && w.NsPerOp > b.NsPerOp*(1+tolFrac) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%)",
				w.Name, w.NsPerOp, b.NsPerOp, 100*(w.NsPerOp/b.NsPerOp-1)))
		}
		if !schemaOK {
			continue
		}
		if b.BytesHeld > 0 && float64(w.BytesHeld) > float64(b.BytesHeld)*(1+tolFrac) {
			bad = append(bad, fmt.Sprintf("%s: %d bytes held vs baseline %d (+%.1f%%)",
				w.Name, w.BytesHeld, b.BytesHeld, 100*(float64(w.BytesHeld)/float64(b.BytesHeld)-1)))
		}
		if d := w.SimSeconds - b.SimSeconds; d > simTol*(w.SimSeconds+b.SimSeconds) || -d > simTol*(w.SimSeconds+b.SimSeconds) {
			bad = append(bad, fmt.Sprintf("%s: simulated %v s vs baseline %v s (cost model drift)",
				w.Name, w.SimSeconds, b.SimSeconds))
		}
	}
	return bad
}

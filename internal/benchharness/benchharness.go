// Package benchharness runs the repository's per-figure benchmark workloads
// (the E1–E9 experiments behind the paper's evaluation) under the standard
// testing.Benchmark driver and reports machine-readable results: wall-clock
// ns/op, allocations per op, and — for the simulated-cluster workloads —
// the simulated seconds of the modeled run.
//
// cmd/pmihp-bench exposes it via -benchjson, writing BENCH_<rev>.json files
// that scripts/bench.sh diffs against a committed baseline to catch
// wall-clock regressions; the simulated seconds double as a determinism
// check, since they must not drift at all across revisions that only change
// physical implementation.
package benchharness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// Result is the measurement of one workload.
type Result struct {
	Name        string  `json:"name"`
	Fig         string  `json:"fig"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimSeconds is the simulated execution time of the modeled run (total
	// cluster time for parallel workloads), 0 when the workload does not
	// simulate a cluster. It is implementation-independent: any change here
	// means the cost model's behavior changed, not just its speed.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
}

// Report is a full harness run.
type Report struct {
	Rev        string   `json:"rev"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Scale      string   `json:"scale"`
	Workloads  []Result `json:"workloads"`
}

// workload is one benchmark entry: run executes a single mining run and
// returns the simulated seconds (0 when not applicable).
type workload struct {
	name string
	fig  string
	run  func(dbA, dbB, dbC *txdb.DB) (simSeconds float64, err error)
}

// workloads mirrors bench_test.go's per-figure benchmarks, at the given
// corpus scale.
func workloads() []workload {
	optsA := mining.Options{MinSupFrac: 0.02, MaxK: 4}
	optsB := mining.Options{MinSupCount: 2, MaxK: 3}
	optsC := mining.Options{MinSupCount: 2, MaxK: 2}
	seq := func(mine func(*txdb.DB, mining.Options) (*mining.Result, error), opts mining.Options, which int) func(dbA, dbB, dbC *txdb.DB) (float64, error) {
		return func(dbA, dbB, dbC *txdb.DB) (float64, error) {
			db := dbA
			switch which {
			case 1:
				db = dbB
			case 2:
				db = dbC
			}
			_, err := mine(db, opts)
			return 0, err
		}
	}
	pmihp := func(nodes int, mode core.PollMode, opts mining.Options, which int) func(dbA, dbB, dbC *txdb.DB) (float64, error) {
		return func(dbA, dbB, dbC *txdb.DB) (float64, error) {
			db := dbA
			switch which {
			case 1:
				db = dbB
			case 2:
				db = dbC
			}
			r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: nodes, Mode: mode}, opts)
			if err != nil {
				return 0, err
			}
			return r.TotalSeconds, nil
		}
	}
	return []workload{
		{"E1Fig4_Apriori", "fig4", seq(apriori.Mine, optsA, 0)},
		{"E1Fig4_DHP", "fig4", seq(dhp.Mine, optsA, 0)},
		{"E1Fig4_FPGrowth", "fig4", seq(fpgrowth.Mine, optsA, 0)},
		{"E1Fig4_MIHP", "fig4", seq(core.MineMIHP, optsA, 0)},
		{"E2Fig5_CountDistribution", "fig5", func(dbA, dbB, dbC *txdb.DB) (float64, error) {
			r, err := countdist.Mine(dbA, countdist.Config{Nodes: 8}, optsA)
			if err != nil {
				return 0, err
			}
			return r.TotalSeconds, nil
		}},
		{"E2Fig5_PMIHP", "fig5", pmihp(8, core.Interleaved, optsA, 0)},
		{"E3Fig6_PMIHP1", "fig6", pmihp(1, core.Interleaved, optsB, 1)},
		{"E3Fig6_PMIHP2", "fig6", pmihp(2, core.Interleaved, optsB, 1)},
		{"E3Fig6_PMIHP4", "fig6", pmihp(4, core.Interleaved, optsB, 1)},
		{"E3Fig6_PMIHP8", "fig6", pmihp(8, core.Interleaved, optsB, 1)},
		{"E5Fig8_DeferredPolling", "fig8", pmihp(4, core.Deferred, optsB, 1)},
		{"E8Fig11_AprioriC3", "fig11", seq(apriori.Mine, optsB, 1)},
		{"E9EightWeek_PMIHP1", "sec3", pmihp(1, core.Interleaved, optsC, 2)},
		{"E9EightWeek_PMIHP8", "sec3", pmihp(8, core.Interleaved, optsC, 2)},
	}
}

// Run generates the corpora at the given scale and measures every workload.
// log, when non-nil, receives one progress line per workload.
func Run(rev string, scale corpus.Scale, log io.Writer) (*Report, error) {
	docsA, err := corpus.Generate(corpus.CorpusA(scale))
	if err != nil {
		return nil, err
	}
	dbA, _ := text.ToDB(docsA, nil)
	docsB, err := corpus.Generate(corpus.CorpusB(scale))
	if err != nil {
		return nil, err
	}
	dbB, _ := text.ToDB(docsB, nil)
	docsC, err := corpus.Generate(corpus.CorpusC(scale))
	if err != nil {
		return nil, err
	}
	dbC, _ := text.ToDB(docsC, nil)

	rep := &Report{
		Rev:        rev,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale.String(),
	}
	for _, w := range workloads() {
		var sim float64
		var runErr error
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := w.run(dbA, dbB, dbC)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				sim = s
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("benchharness: %s: %w", w.name, runErr)
		}
		res := Result{
			Name:        w.name,
			Fig:         w.fig,
			Iterations:  br.N,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			SimSeconds:  sim,
		}
		rep.Workloads = append(rep.Workloads, res)
		if log != nil {
			fmt.Fprintf(log, "%-28s %12.0f ns/op %9d allocs/op %10.4f sim-s\n",
				w.name, res.NsPerOp, res.AllocsPerOp, res.SimSeconds)
		}
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchharness: %s: %w", path, err)
	}
	return &r, nil
}

// simTol is the relative tolerance for comparing simulated seconds. Node
// clocks are float accumulators fed in the asynchronous fabric's service
// order, so repeated runs can differ by a few ULPs; any genuine cost-model
// change moves the totals by many orders of magnitude more than this.
const simTol = 1e-9

// Compare reports the workloads of cur that regressed against base: ns/op
// worse by more than tolFrac (e.g. 0.20 for 20%), or simulated seconds that
// differ beyond float accumulation noise (the cost model must be stable).
// Workloads missing from either report are skipped.
func Compare(base, cur *Report, tolFrac float64) []string {
	byName := make(map[string]Result, len(base.Workloads))
	for _, w := range base.Workloads {
		byName[w.Name] = w
	}
	var bad []string
	for _, w := range cur.Workloads {
		b, ok := byName[w.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && w.NsPerOp > b.NsPerOp*(1+tolFrac) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%)",
				w.Name, w.NsPerOp, b.NsPerOp, 100*(w.NsPerOp/b.NsPerOp-1)))
		}
		if d := w.SimSeconds - b.SimSeconds; d > simTol*(w.SimSeconds+b.SimSeconds) || -d > simTol*(w.SimSeconds+b.SimSeconds) {
			bad = append(bad, fmt.Sprintf("%s: simulated %v s vs baseline %v s (cost model drift)",
				w.Name, w.SimSeconds, b.SimSeconds))
		}
	}
	return bad
}

package streammine

import (
	"bytes"
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// fuzzSeedState builds a real miner state to seed the fuzzer with: a few
// days of transactions dense enough to populate pair maps, k≥3 candidate
// caches, and (for decay > 0) the weighted result list.
func fuzzSeedState(tb testing.TB, decay float64) []byte {
	tb.Helper()
	m, err := New(6, Config{WindowDays: 3, Decay: decay,
		Opts: mining.Options{MinSupCount: 2, MaxK: 4}})
	if err != nil {
		tb.Fatal(err)
	}
	mk := func(items ...itemset.Item) txdb.Transaction {
		return txdb.Transaction{Items: items}
	}
	for day := 0; day < 5; day++ {
		batch := []txdb.Transaction{
			mk(0, 1, 2, 3), mk(0, 1, 2), mk(1, 2, 3), mk(0, 3, 4), mk(2, 4, 5),
		}
		for i := range batch {
			batch[i].Day = day
		}
		if err := m.Ingest(batch); err != nil {
			tb.Fatal(err)
		}
	}
	state, err := m.EncodeState()
	if err != nil {
		tb.Fatal(err)
	}
	return state
}

// FuzzStreamState holds the stream-state codec to the PMCK codec's bar:
// arbitrary input never panics, and any payload that decodes successfully
// re-encodes to the exact bytes it came from — one canonical encoding per
// miner state. Because the decoder validates sorted map order, count
// bounds, and summary/transaction agreement, a payload that passes is
// also a structurally coherent miner.
func FuzzStreamState(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(streamStateMagic))
	f.Add(fuzzSeedState(f, 0))
	f.Add(fuzzSeedState(f, 0.75))
	empty, err := func() ([]byte, error) {
		m, err := New(4, Config{WindowDays: 2, Opts: mining.Options{MinSupCount: 2}})
		if err != nil {
			return nil, err
		}
		return m.EncodeState()
	}()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	// A version-skewed header must be rejected by the version check, not
	// half-decoded.
	skew := fuzzSeedState(f, 0)
	skew[len(streamStateMagic)] = streamStateVersion + 1
	f.Add(skew)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeState(data)
		if err != nil {
			return
		}
		got, err := m.EncodeState()
		if err != nil {
			t.Fatalf("decoded state does not re-encode: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("state re-encode mismatch:\n got %x\nwant %x", got, data)
		}
	})
}

// TestStateRejectsCorruption exhaustively truncates a real payload and
// flips its stage bytes: every cut must be rejected with an error, never
// a panic or a silent partial decode.
func TestStateRejectsCorruption(t *testing.T) {
	for _, decay := range []float64{0, 0.75} {
		enc := fuzzSeedState(t, decay)
		if _, err := DecodeState(enc); err != nil {
			t.Fatalf("decay %v: pristine state rejected: %v", decay, err)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeState(enc[:cut]); err == nil {
				t.Fatalf("decay %v: truncation to %d bytes decoded without error", decay, cut)
			}
		}
		if _, err := DecodeState(append(append([]byte{}, enc...), 0xAB)); err == nil {
			t.Fatalf("decay %v: trailing byte decoded without error", decay)
		}
		bad := append([]byte{}, enc...)
		copy(bad, "NOPE")
		if _, err := DecodeState(bad); err == nil {
			t.Fatalf("decay %v: wrong magic decoded without error", decay)
		}
	}
}

package streammine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pmihp/internal/rules"
	"pmihp/internal/serve"
)

// Publishers: the glue between the re-mine loop and the serving layer.
// Each returns a ReplayConfig.Publish hook that installs a step's rule
// set as a new serving generation — in process for tests and embedded
// deployments, over HTTP for a running pmihp-serve daemon.

// NewServerPublisher feeds each step's rules to an in-process
// serve.Server via Swap, the same path POST /admin/swap takes.
func NewServerPublisher(s *serve.Server) func(step int, ws []rules.WordRule) error {
	return func(step int, ws []rules.WordRule) error {
		_, err := s.Swap(ws, fmt.Sprintf("stream step %d", step))
		return err
	}
}

// NewSwapPublisher POSTs each step's rules to a serve daemon's
// /admin/swap endpoint. base is the daemon's base URL (e.g.
// "http://localhost:8080"); client nil means http.DefaultClient.
func NewSwapPublisher(client *http.Client, base string) func(step int, ws []rules.WordRule) error {
	if client == nil {
		client = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	return func(step int, ws []rules.WordRule) error {
		body, err := json.Marshal(ws)
		if err != nil {
			return fmt.Errorf("streammine: encoding step %d rules: %w", step, err)
		}
		resp, err := client.Post(base+"/admin/swap", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("streammine: swapping step %d: %w", step, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("streammine: swapping step %d: %s: %s", step, resp.Status, bytes.TrimSpace(msg))
		}
		return nil
	}
}

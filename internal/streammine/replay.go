package streammine

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"pmihp/internal/core"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// The replay harness: feed a day-partitioned document corpus through an
// incremental Miner batch by batch, as if the archive were arriving live,
// and after every step optionally prove the incremental results
// byte-identical to a from-scratch mine of the same window. This is both
// the `pmihp-mine -stream` execution path and the engine under the
// equivalence test suite and the stream-smoke CI job.

// ReplayConfig configures a replay run.
type ReplayConfig struct {
	// WindowDays, Decay, and Opts configure the miner (see Config).
	WindowDays int
	Decay      float64
	Opts       mining.Options

	// BatchDays is how many distinct days each ingest step covers
	// (default 1 — one advance per day).
	BatchDays int

	// MinConf is the confidence threshold for the rules published after
	// each step (default 0.5).
	MinConf float64

	// VerifyNodes enables the equivalence gate: after every step the
	// window is re-mined from scratch — core.MinePMIHP with this many
	// nodes when decay is off, MineWindowFromScratch when on — and the
	// results must match byte for byte. 0 disables the gate.
	VerifyNodes int

	// CheckpointPath, when set, persists the miner's state after every
	// step (PMCK StageStream). SessionID stamps the checkpoint lineage.
	CheckpointPath string
	SessionID      uint64

	// CrashAfterStep, when positive, simulates a crash immediately after
	// step N's checkpoint is written (1-based): the miner is discarded
	// and restored from CheckpointPath, and the run continues on the
	// restored state. This is the scripted-fault pattern of the
	// integration fault plans, applied to the ingest loop. Requires
	// CheckpointPath.
	CrashAfterStep int

	// Publish, when set, receives each step's rule set (word form,
	// canonical order) — wire it to a serve.Server swap or an HTTP
	// /admin/swap POST (see NewServerPublisher, NewSwapPublisher).
	// Steps whose window licenses no rules are not published: the
	// serving layer rejects empty generations, and the previous
	// generation staying live is the right answer for a quiet window.
	Publish func(step int, ws []rules.WordRule) error

	// Logf, when set, receives one progress line per step.
	Logf func(format string, args ...any)
}

// StepReport records one ingest step of a replay.
type StepReport struct {
	Step           int   `json:"step"`
	Days           []int `json:"days"`
	NewTx          int   `json:"newTransactions"`
	WindowTx       int   `json:"windowTransactions"`
	WindowDayCount int   `json:"windowDayCount"`
	ScannedTx      int   `json:"scannedTransactions"`
	Frequent       int   `json:"frequentItemsets"`
	Rules          int   `json:"rules"`
	Verified       bool  `json:"verified"`
	Equivalent     bool  `json:"equivalent"`
	Resumed        bool  `json:"resumedFromCheckpoint"`
}

// Report is the JSON-serializable result of a replay run.
type Report struct {
	Documents     int          `json:"documents"`
	Vocabulary    int          `json:"vocabulary"`
	WindowDays    int          `json:"windowDays"`
	BatchDays     int          `json:"batchDays"`
	Decay         float64      `json:"decay,omitempty"`
	Steps         []StepReport `json:"steps"`
	AllEquivalent bool         `json:"allEquivalent"`
}

// Replay streams docs through an incremental miner. The vocabulary is
// built upfront over the whole corpus, exactly as the batch pipeline
// does: item ids stay assigned in lexical word order, which is the
// invariant that keeps id-order and word-order rule sorts in agreement
// (rules.Canon vs rules.CanonWord) and therefore keeps served output
// comparable to the offline Expander. It returns the report and a non-nil
// error on the first equivalence failure (the report still describes
// every completed step).
func Replay(docs []text.Document, cfg ReplayConfig) (*Report, error) {
	if cfg.BatchDays <= 0 {
		cfg.BatchDays = 1
	}
	if cfg.MinConf <= 0 {
		cfg.MinConf = 0.5
	}
	if cfg.CrashAfterStep > 0 && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("streammine: CrashAfterStep without CheckpointPath")
	}
	sorted := append([]text.Document(nil), docs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Day < sorted[j].Day })
	full, vocab := text.ToDB(sorted, nil)

	report := &Report{
		Documents:     full.Len(),
		Vocabulary:    vocab.Size(),
		WindowDays:    cfg.WindowDays,
		BatchDays:     cfg.BatchDays,
		Decay:         cfg.Decay,
		AllEquivalent: true,
	}
	miner, err := New(vocab.Size(), Config{WindowDays: cfg.WindowDays, Decay: cfg.Decay, Opts: cfg.Opts})
	if err != nil {
		return nil, err
	}

	for lo, step := 0, 1; lo < full.Len(); step++ {
		// A batch is the next BatchDays distinct days of transactions.
		hi, daysLeft := lo, cfg.BatchDays
		var days []int
		for hi < full.Len() && daysLeft > 0 {
			day := full.DayOf(hi)
			days = append(days, day)
			for hi < full.Len() && full.DayOf(hi) == day {
				hi++
			}
			daysLeft--
		}
		batch := make([]txdb.Transaction, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, full.Tx(i))
		}
		lo = hi

		if err := miner.Ingest(batch); err != nil {
			return report, err
		}
		sr := StepReport{Step: step, Days: days}
		if cfg.CheckpointPath != "" {
			if err := miner.SaveCheckpoint(cfg.CheckpointPath, cfg.SessionID); err != nil {
				return report, err
			}
		}
		if step == cfg.CrashAfterStep {
			restored, err := LoadCheckpoint(cfg.CheckpointPath)
			if err != nil {
				return report, fmt.Errorf("streammine: resume after crash at step %d: %w", step, err)
			}
			miner = restored
			sr.Resumed = true
		}
		stats := miner.LastStats()
		sr.NewTx, sr.ScannedTx = stats.NewTx, stats.ScannedTx
		sr.WindowTx, sr.WindowDayCount = stats.WindowTx, stats.WindowDayCount
		if sr.Resumed {
			// The restored miner never ran this step's Ingest; recover the
			// batch accounting from the step itself.
			sr.NewTx = len(batch)
		}
		sr.Frequent = len(miner.Frequent())

		if cfg.VerifyNodes > 0 {
			sr.Verified = true
			if err := VerifyStep(miner, cfg.VerifyNodes); err != nil {
				report.Steps = append(report.Steps, sr)
				report.AllEquivalent = false
				return report, fmt.Errorf("streammine: step %d: %w", step, err)
			}
			sr.Equivalent = true
		}

		rs := rules.Generate(miner.Frequent(), miner.WindowDB().Len(), cfg.MinConf)
		sr.Rules = len(rs)
		if cfg.Publish != nil && len(rs) > 0 {
			if err := cfg.Publish(step, rules.ToWordRules(rs, vocab.Word)); err != nil {
				report.Steps = append(report.Steps, sr)
				return report, fmt.Errorf("streammine: publishing step %d: %w", step, err)
			}
		}
		report.Steps = append(report.Steps, sr)
		if cfg.Logf != nil {
			cfg.Logf("step %d: days %v, +%d tx, window %d tx / %d days, scanned %d, %d frequent, %d rules%s",
				step, days, sr.NewTx, sr.WindowTx, sr.WindowDayCount, sr.ScannedTx, sr.Frequent, sr.Rules,
				map[bool]string{true: ", resumed from checkpoint", false: ""}[sr.Resumed])
		}
	}
	return report, nil
}

// VerifyStep proves the miner's current results byte-identical to a
// from-scratch mine of the same window: core.MinePMIHP (an independent
// implementation, run over nodes partitions) when decay is off, the
// from-scratch weighted reference when on. It returns an attributed error
// naming the first diverging line.
func VerifyStep(m *Miner, nodes int) error {
	win := m.WindowDB()
	if m.cfg.weightedMode() {
		_, want, err := MineWindowFromScratch(win, m.cfg)
		if err != nil {
			return err
		}
		return diffRendered("weighted frequent", RenderWeighted(m.WeightedFrequent()), RenderWeighted(want))
	}
	if win.Len() == 0 {
		if len(m.Frequent()) != 0 {
			return fmt.Errorf("%d frequent sets over an empty window", len(m.Frequent()))
		}
		return nil
	}
	if nodes > win.Len() {
		nodes = win.Len()
	}
	res, err := core.MinePMIHP(win, core.PMIHPConfig{Nodes: nodes}, m.cfg.Opts)
	if err != nil {
		return err
	}
	return diffRendered("frequent", RenderCounted(m.Frequent()), RenderCounted(res.Result.Frequent))
}

// RenderCounted renders a frequent list one line per set ("{1, 2} 5\n"),
// the byte form the equivalence gate compares.
func RenderCounted(cs []itemset.Counted) []byte {
	var b bytes.Buffer
	for _, c := range cs {
		fmt.Fprintf(&b, "%v %d\n", c.Set, c.Count)
	}
	return b.Bytes()
}

// RenderWeighted renders a weighted frequent list with the exact bit
// pattern of each weight ("{1, 2} 5 %x"), so the comparison admits no
// float tolerance.
func RenderWeighted(ws []Weighted) []byte {
	var b bytes.Buffer
	for _, e := range ws {
		fmt.Fprintf(&b, "%v %d %x\n", e.Set, e.Count, e.Weight)
	}
	return b.Bytes()
}

// diffRendered compares two rendered listings and reports the first
// diverging line.
func diffRendered(what string, got, want []byte) error {
	if bytes.Equal(got, want) {
		return nil
	}
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w := "<missing>", "<missing>"
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return fmt.Errorf("%s diverges at line %d: incremental %q, from-scratch %q", what, i+1, g, w)
		}
	}
	return fmt.Errorf("%s diverges (%d vs %d bytes)", what, len(got), len(want))
}

package streammine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"slices"
	"testing"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/search"
	"pmihp/internal/serve"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// The equivalence harness: every test here holds the incremental miner to
// byte-identity with a from-scratch mine of the same window — itemsets,
// counts, order, and (for the serving path) rendered expansions. The
// unweighted gate runs against core.MinePMIHP, a fully independent
// implementation; the decay gate runs against MineWindowFromScratch, which
// rebuilds every per-day summary fresh with no retained state.

// replayScenario is one window-size × batch-shape × decay configuration.
type replayScenario struct {
	name    string
	corpus  corpus.Config
	window  int
	batch   int
	decay   float64
	opts    mining.Options
	crashAt int
}

func scenarios() []replayScenario {
	return []replayScenario{
		{name: "window3-batch1-count", corpus: corpus.CorpusB(corpus.Small),
			window: 3, batch: 1, opts: mining.Options{MinSupCount: 3, MaxK: 3}},
		{name: "window1-batch1-count", corpus: corpus.CorpusB(corpus.Small),
			window: 1, batch: 1, opts: mining.Options{MinSupCount: 3, MaxK: 3}},
		{name: "window5-batch2-frac", corpus: corpus.CorpusB(corpus.Small),
			window: 5, batch: 2, opts: mining.Options{MinSupFrac: 0.06, MaxK: 3}},
		{name: "window4-batch3-corpusA", corpus: corpus.CorpusA(corpus.Small),
			window: 4, batch: 3, opts: mining.Options{MinSupCount: 4, MaxK: 3}},
		{name: "unbounded-batch2-count", corpus: corpus.CorpusB(corpus.Small),
			window: 0, batch: 2, opts: mining.Options{MinSupCount: 4, MaxK: 3}},
		{name: "window3-batch1-decay06", corpus: corpus.CorpusB(corpus.Small),
			window: 3, batch: 1, decay: 0.6, opts: mining.Options{MinSupCount: 3, MaxK: 3}},
		{name: "window4-batch2-decay09-frac", corpus: corpus.CorpusB(corpus.Small),
			window: 4, batch: 2, decay: 0.9, opts: mining.Options{MinSupFrac: 0.05, MaxK: 3}},
		{name: "crash-resume-step4", corpus: corpus.CorpusB(corpus.Small),
			window: 3, batch: 1, opts: mining.Options{MinSupCount: 3, MaxK: 3}, crashAt: 4},
		{name: "crash-resume-decay", corpus: corpus.CorpusB(corpus.Small),
			window: 3, batch: 1, decay: 0.6, opts: mining.Options{MinSupCount: 3, MaxK: 3}, crashAt: 3},
	}
}

// TestReplayEquivalence drives every scenario through the replay harness
// with the per-step gate on: after each ingest the incremental frequent
// sets must be byte-identical to a from-scratch mine of the window, and a
// crash-and-resume through the PMCK checkpoint must not perturb a single
// byte.
func TestReplayEquivalence(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			docs := corpus.MustGenerate(sc.corpus)
			cfg := ReplayConfig{
				WindowDays:  sc.window,
				Decay:       sc.decay,
				Opts:        sc.opts,
				BatchDays:   sc.batch,
				VerifyNodes: 3,
			}
			if sc.crashAt > 0 {
				cfg.CheckpointPath = filepath.Join(t.TempDir(), "stream.ckpt")
				cfg.CrashAfterStep = sc.crashAt
			}
			report, err := Replay(docs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !report.AllEquivalent || len(report.Steps) == 0 {
				t.Fatalf("report not equivalent: %+v", report)
			}
			wantSteps := (sc.corpus.Days + sc.batch - 1) / sc.batch
			if len(report.Steps) != wantSteps {
				t.Fatalf("%d steps, want %d", len(report.Steps), wantSteps)
			}
			mined := 0
			for _, sr := range report.Steps {
				if !sr.Verified || !sr.Equivalent {
					t.Fatalf("step %d not verified equivalent: %+v", sr.Step, sr)
				}
				mined += sr.Frequent
			}
			if mined == 0 {
				t.Fatal("no step mined any frequent itemset; the gate proved nothing")
			}
			if sc.crashAt > 0 {
				if !report.Steps[sc.crashAt-1].Resumed {
					t.Fatalf("step %d did not resume from checkpoint", sc.crashAt)
				}
				// The gate already proved the resumed state equivalent to
				// from-scratch; also pin the whole run's shape against an
				// uninterrupted replay.
				clean := cfg
				clean.CheckpointPath, clean.CrashAfterStep = "", 0
				cleanReport, err := Replay(docs, clean)
				if err != nil {
					t.Fatal(err)
				}
				for i, sr := range report.Steps {
					cs := cleanReport.Steps[i]
					if sr.Frequent != cs.Frequent || sr.Rules != cs.Rules || sr.WindowTx != cs.WindowTx {
						t.Fatalf("step %d diverges from uninterrupted run: %+v vs %+v", sr.Step, sr, cs)
					}
				}
			}
		})
	}
}

// TestServedExpansionEquivalence closes the loop through the serving
// layer: at every step the rules mined incrementally are installed as a
// serving generation, and the served expansions must equal — as JSON
// bytes — what the offline search.Expander produces from a from-scratch
// mine of the same window.
func TestServedExpansionEquivalence(t *testing.T) {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	_, vocab := text.ToDB(docs, nil)
	opts := mining.Options{MinSupCount: 3, MaxK: 3}
	miner, err := New(vocab.Size(), Config{WindowDays: 3, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{Replicas: 1})
	compared := 0

	full, _ := text.ToDB(docs, vocab)
	for lo := 0; lo < full.Len(); {
		day := full.DayOf(lo)
		hi := lo
		for hi < full.Len() && full.DayOf(hi) == day {
			hi++
		}
		batch := make([]txdb.Transaction, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, full.Tx(i))
		}
		lo = hi
		if err := miner.Ingest(batch); err != nil {
			t.Fatal(err)
		}

		win := miner.WindowDB()
		incRules := rules.Generate(miner.Frequent(), win.Len(), 0.5)
		ws := rules.ToWordRules(incRules, vocab.Word)
		if len(ws) == 0 {
			continue
		}
		gen, err := srv.Swap(ws, fmt.Sprintf("day %d", day))
		if err != nil {
			t.Fatal(err)
		}

		res, err := core.MinePMIHP(win, core.PMIHPConfig{Nodes: 2}, opts)
		if err != nil {
			t.Fatal(err)
		}
		refRules := rules.Generate(res.Result.Frequent, win.Len(), 0.5)
		exp := search.NewExpander(refRules, vocab)

		heads := map[string]bool{}
		var queries [][]string
		for _, w := range ws {
			if len(w.Antecedent) == 1 && !heads[w.Antecedent[0]] {
				heads[w.Antecedent[0]] = true
				queries = append(queries, []string{w.Antecedent[0]})
			}
		}
		if len(queries) >= 2 {
			queries = append(queries, []string{queries[0][0], queries[1][0]})
		}
		for _, q := range queries {
			got := mustJSON(t, gen.Index.Expand(8, q...))
			want := mustJSON(t, renderSearch(exp.Expand(8, q...)))
			if !bytes.Equal(got, want) {
				t.Fatalf("day %d query %v: served %s want %s", day, q, got, want)
			}
			compared++
		}
	}
	if compared < 8 {
		t.Fatalf("only %d expansion queries compared; gate too weak", compared)
	}
}

// renderSearch maps offline Expander output into the served DTO, the same
// rendering the serve suite's byte-identity gate uses.
func renderSearch(exps []search.Expansion) []serve.ExpansionJSON {
	out := make([]serve.ExpansionJSON, 0, len(exps))
	for _, e := range exps {
		je := serve.ExpansionJSON{Word: e.Word}
		for _, term := range e.Terms {
			je.Terms = append(je.Terms, serve.TermJSON{
				Term:            term.Word,
				Support:         term.Rule.Support,
				SupportFraction: term.Rule.Frac,
				Confidence:      term.Rule.Confidence,
				Lift:            term.Rule.Lift,
			})
		}
		out = append(out, je)
	}
	return out
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFuzzedBatchSequences feeds deterministic pseudo-random batch
// sequences — varying batch sizes, day gaps, same-day continuation
// batches, empty batches, vocabulary growth — through the miner and holds
// every step to the from-scratch gate, in both plain and decay modes.
func TestFuzzedBatchSequences(t *testing.T) {
	for _, mode := range []struct {
		name  string
		decay float64
	}{{"plain", 0}, {"decay", 0.7}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(42))
			miner, err := New(20, Config{WindowDays: 4, Decay: mode.decay,
				Opts: mining.Options{MinSupCount: 2, MaxK: 4}})
			if err != nil {
				t.Fatal(err)
			}
			day := 0
			for step := 0; step < 40; step++ {
				day += []int{0, 0, 1, 1, 1, 2, 5}[rng.Intn(7)]
				n := rng.Intn(7)
				batch := make([]txdb.Transaction, 0, n)
				for i := 0; i < n; i++ {
					numItems := 20 + rng.Intn(10) // occasionally coins ids ≥ 20: vocabulary growth
					k := 1 + rng.Intn(5)
					set := map[itemset.Item]bool{}
					for len(set) < k {
						set[itemset.Item(rng.Intn(numItems))] = true
					}
					items := make(itemset.Itemset, 0, k)
					for it := range set {
						items = append(items, it)
					}
					slices.Sort(items)
					batch = append(batch, txdb.Transaction{Day: day, Items: items})
				}
				if err := miner.Ingest(batch); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := VerifyStep(miner, 3); err != nil {
					t.Fatalf("step %d (day %d, +%d tx): %v", step, day, n, err)
				}
			}
			if miner.Store().NumItems() <= 20 {
				t.Fatal("sequence never grew the vocabulary; weak coverage")
			}
		})
	}
}

// TestStateRoundTrip pins checkpoint fidelity directly: encode → decode
// must reproduce the results byte for byte, the canonical encoding must
// be stable, and a restored miner must evolve identically to the original
// under further ingests.
func TestStateRoundTrip(t *testing.T) {
	for _, decay := range []float64{0, 0.8} {
		decay := decay
		t.Run(fmt.Sprintf("decay%v", decay), func(t *testing.T) {
			docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
			full, vocab := text.ToDB(docs, nil)
			miner, err := New(vocab.Size(), Config{WindowDays: 3, Decay: decay,
				Opts: mining.Options{MinSupCount: 3, MaxK: 3}})
			if err != nil {
				t.Fatal(err)
			}
			var batches [][]txdb.Transaction
			for lo := 0; lo < full.Len(); {
				day := full.DayOf(lo)
				hi := lo
				for hi < full.Len() && full.DayOf(hi) == day {
					hi++
				}
				batch := make([]txdb.Transaction, 0, hi-lo)
				for i := lo; i < hi; i++ {
					batch = append(batch, full.Tx(i))
				}
				batches = append(batches, batch)
				lo = hi
			}
			for _, b := range batches[:5] {
				if err := miner.Ingest(b); err != nil {
					t.Fatal(err)
				}
			}

			path := filepath.Join(t.TempDir(), "stream.ckpt")
			if err := miner.SaveCheckpoint(path, 0xabcdef); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Steps() != miner.Steps() {
				t.Fatalf("restored %d steps, want %d", restored.Steps(), miner.Steps())
			}
			// The canonical invariant, held directly: re-encoding the
			// restored state reproduces the original payload bit for bit.
			orig, err := miner.EncodeState()
			if err != nil {
				t.Fatal(err)
			}
			again, err := restored.EncodeState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(orig, again) {
				t.Fatal("restored state re-encodes differently")
			}
			check := func(stage string) {
				t.Helper()
				if !bytes.Equal(RenderCounted(miner.Frequent()), RenderCounted(restored.Frequent())) {
					t.Fatalf("%s: frequent sets diverge", stage)
				}
				if !bytes.Equal(RenderWeighted(miner.WeightedFrequent()), RenderWeighted(restored.WeightedFrequent())) {
					t.Fatalf("%s: weighted sets diverge", stage)
				}
				a, b := miner.WindowDB(), restored.WindowDB()
				if a.Len() != b.Len() {
					t.Fatalf("%s: window %d vs %d tx", stage, a.Len(), b.Len())
				}
				for i := 0; i < a.Len(); i++ {
					if a.TIDOf(i) != b.TIDOf(i) || a.DayOf(i) != b.DayOf(i) ||
						itemset.Compare(a.ItemsOf(i), b.ItemsOf(i)) != 0 {
						t.Fatalf("%s: window tx %d diverges", stage, i)
					}
				}
			}
			check("after restore")
			for _, b := range batches[5:] {
				if err := miner.Ingest(b); err != nil {
					t.Fatal(err)
				}
				if err := restored.Ingest(b); err != nil {
					t.Fatal(err)
				}
				check("after further ingest")
			}
		})
	}
}

// TestDecayOneMatchesPlainSets pins the weighted path's semantics at the
// boundary: with Decay == 1 every day weighs 1.0, so the weighted support
// of every set equals its integer count exactly (small-integer float sums
// are exact) and the qualifying sets must coincide with the plain run's.
func TestDecayOneMatchesPlainSets(t *testing.T) {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	full, vocab := text.ToDB(docs, nil)
	opts := mining.Options{MinSupCount: 3, MaxK: 3}
	plain, err := New(vocab.Size(), Config{WindowDays: 3, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := New(vocab.Size(), Config{WindowDays: 3, Decay: 1, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < full.Len(); {
		day := full.DayOf(lo)
		hi := lo
		for hi < full.Len() && full.DayOf(hi) == day {
			hi++
		}
		batch := make([]txdb.Transaction, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, full.Tx(i))
		}
		lo = hi
		if err := plain.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if err := weighted.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(RenderCounted(plain.Frequent()), RenderCounted(weighted.Frequent())) {
			t.Fatalf("day %d: decay-1 sets diverge from plain", day)
		}
		for _, e := range weighted.WeightedFrequent() {
			if e.Weight != float64(e.Count) {
				t.Fatalf("day %d: %v weight %v != count %d", day, e.Set, e.Weight, e.Count)
			}
		}
	}
}

// TestIncrementalWorkBounded asserts the point of retaining summaries:
// across a whole replay the k≥3 cache-fill scans touch strictly fewer
// transactions than re-scanning every window at every step would (passes
// 1 and 2 never scan at all, by construction).
func TestIncrementalWorkBounded(t *testing.T) {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	report, err := Replay(docs, ReplayConfig{
		WindowDays:  0, // unbounded window: the worst case for a re-scanner
		Opts:        mining.Options{MinSupCount: 3, MaxK: 3},
		VerifyNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	scanned, window := 0, 0
	for _, sr := range report.Steps {
		scanned += sr.ScannedTx
		window += sr.WindowTx
	}
	if scanned >= window {
		t.Fatalf("scanned %d of %d window transactions; retained counts saved nothing", scanned, window)
	}
}

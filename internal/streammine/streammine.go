// Package streammine mines association rules incrementally over a live
// document stream. It keeps the paper's batch pipeline as the reference
// semantics: at every point in time the miner's frequent sets are exactly
// what core.MinePMIHP would compute from scratch over the current window —
// byte-identical itemsets, counts, and order — but the incremental path
// gets there without re-scanning transactions it has already seen.
//
// The structure it exploits is the day-group contiguity of the CSR store
// (txdb.AppendDB): a stream appends whole days at the tail, and a sliding
// window of the most recent W days drops whole days at the front. The
// miner therefore retains one summary per day:
//
//   - a complete per-item support vector (pass 1 never scans),
//   - a complete pair co-occurrence map (pass 2 never scans),
//   - a demand-filled cache of k≥3 candidate counts, where a cached zero
//     means "counted, absent" — so a candidate pass scans only the days
//     that have never counted that candidate (in steady state, exactly
//     the newly ingested transactions).
//
// Window advances merge the retained summaries with the freshly built
// ones; eviction is dropping a summary (the append-only store keeps the
// bytes, see txdb.AppendDB). An optional exponential day-decay weighting
// (Config.Decay) replaces the integer support threshold with a weighted
// one; the arithmetic is fixed — per-day integer counts times the day
// weight, accumulated in ascending day order — so the weighted results
// are bit-identical to MineWindowFromScratch on the same window.
package streammine

import (
	"fmt"
	"math"
	"slices"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// Config configures an incremental miner.
type Config struct {
	// WindowDays is the sliding window width W in days: after every
	// ingest the window covers days (lastDay-W+1 .. lastDay). 0 means
	// unbounded — never evict.
	WindowDays int

	// Decay enables exponential day-decay weighting when positive: a
	// transaction on day d carries weight Decay^(lastDay-d), and an
	// itemset is frequent when its weighted support reaches the weighted
	// threshold (MinSupCount taken as an absolute weighted support, or
	// MinSupFrac of the total window weight). 0 disables weighting;
	// 1 weights every day equally (the integer semantics, on the float
	// path). Must be in [0, 1].
	Decay float64

	// Opts supplies the support threshold (MinSupFrac or MinSupCount)
	// and MaxK. The threshold is resolved against the window size with
	// the same mining.Options.MinCount rounding every batch miner uses.
	Opts mining.Options
}

func (c Config) validate() error {
	if c.WindowDays < 0 {
		return fmt.Errorf("streammine: negative window %d", c.WindowDays)
	}
	if c.Decay < 0 || c.Decay > 1 || math.IsNaN(c.Decay) {
		return fmt.Errorf("streammine: decay %v outside [0, 1]", c.Decay)
	}
	if c.Opts.MinSupCount <= 0 && !(c.Opts.MinSupFrac > 0) {
		return fmt.Errorf("streammine: no support threshold (set MinSupCount or MinSupFrac)")
	}
	return nil
}

// weightedMode reports whether the decay-weighted semantics are active.
func (c Config) weightedMode() bool { return c.Decay > 0 }

// Weighted is a frequent itemset under decay weighting: Count is the raw
// window support, Weight the decayed support that qualified it.
type Weighted struct {
	Set    itemset.Itemset
	Count  int
	Weight float64
}

// CompareWeighted is the canonical order on weighted results: weight
// descending, ties broken lexicographically. Weights of distinct sets can
// tie (equal counts on the same days), so the lexicographic tiebreak is
// what makes the order total and the harness comparison byte-stable.
func CompareWeighted(a, b Weighted) int {
	switch {
	case a.Weight > b.Weight:
		return -1
	case a.Weight < b.Weight:
		return 1
	}
	return itemset.Compare(a.Set, b.Set)
}

// daySummary is the retained mining state of one day: its transaction run
// in the store, complete item and pair counts, and the demand-filled k≥3
// candidate cache. A cache entry of zero is meaningful — it records that
// the candidate was counted over this day and found absent, so later
// passes need not rescan.
type daySummary struct {
	day    int
	lo, hi int // transaction index run in the owning view
	items  []int
	pairs  map[uint64]int
	higher map[string]int
}

func newDaySummary(day, lo int) *daySummary {
	return &daySummary{day: day, lo: lo, hi: lo, pairs: map[uint64]int{}, higher: map[string]int{}}
}

func (ds *daySummary) count() int { return ds.hi - ds.lo }

// pairKey packs an ordered item pair (a < b) into a map key.
func pairKey(a, b itemset.Item) uint64 { return uint64(a)<<32 | uint64(b) }

func splitPair(key uint64) (a, b itemset.Item) {
	return itemset.Item(key >> 32), itemset.Item(key & 0xffffffff)
}

// addRange absorbs transactions [lo, hi) of view into the summary,
// updating the complete item/pair counts and keeping every cached k≥3
// count exact over the extended run (a day can receive several batches).
func (ds *daySummary) addRange(view *txdb.DB, lo, hi int) {
	for t := lo; t < hi; t++ {
		items := view.ItemsOf(t)
		for i, a := range items {
			ia := int(a)
			for len(ds.items) <= ia {
				ds.items = append(ds.items, 0)
			}
			ds.items[ia]++
			for _, b := range items[i+1:] {
				ds.pairs[pairKey(a, b)]++
			}
		}
	}
	for key := range ds.higher {
		set := itemset.FromKey(key)
		n := 0
		for t := lo; t < hi; t++ {
			if set.SubsetOf(view.ItemsOf(t)) {
				n++
			}
		}
		if n != 0 {
			ds.higher[key] += n
		}
	}
	ds.hi = hi
}

// IngestStats describes the incremental work of the latest Ingest.
type IngestStats struct {
	// NewTx is the number of transactions the batch appended.
	NewTx int
	// ScannedTx is the number of window transactions the re-mine scanned
	// while demand-filling k≥3 candidate caches (pass 1 and 2 never
	// scan). In steady state this stays near NewTx; it grows only when a
	// threshold shift surfaces candidates old days have never counted.
	ScannedTx int
	// WindowTx and WindowDayCount describe the window after the advance.
	WindowTx       int
	WindowDayCount int
}

// Miner is the incremental windowed miner. It is not safe for concurrent
// use; wrap it in the replay loop (Replay) or your own single goroutine.
type Miner struct {
	cfg      Config
	store    *txdb.AppendDB
	days     []*daySummary
	frequent []itemset.Counted
	weighted []Weighted
	steps    int
	last     IngestStats
}

// New returns an empty miner over a vocabulary of numItems items (the
// store grows the vocabulary automatically when a batch coins new ids).
func New(numItems int, cfg Config) (*Miner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Miner{cfg: cfg, store: txdb.NewAppend(numItems)}, nil
}

// Config returns the miner's configuration.
func (m *Miner) Config() Config { return m.cfg }

// Steps returns the number of completed Ingest calls.
func (m *Miner) Steps() int { return m.steps }

// LastStats returns the work accounting of the latest Ingest.
func (m *Miner) LastStats() IngestStats { return m.last }

// Store exposes the backing append-only store (read-side methods only).
func (m *Miner) Store() *txdb.AppendDB { return m.store }

// WindowStart returns the first day of the current window; ok is false
// while the store is empty.
func (m *Miner) WindowStart() (day int, ok bool) {
	if len(m.days) == 0 {
		return 0, false
	}
	return m.days[0].day, true
}

// WindowDB returns a zero-copy view of the window's transactions — the
// database a from-scratch miner would be handed. Empty store: empty view.
func (m *Miner) WindowDB() *txdb.DB {
	if len(m.days) == 0 {
		return m.store.View()
	}
	return m.store.SinceDay(m.days[0].day)
}

// Frequent returns the frequent itemsets of the current window with their
// raw support counts, in the order every batch miner in this module uses
// (descending count, ties lexicographic) — byte-identical to
// core.MinePMIHP on WindowDB when decay is off. Under decay the sets are
// the weighted-frequent ones (see WeightedFrequent for the qualifying
// weights). The slice is owned by the miner; do not mutate.
func (m *Miner) Frequent() []itemset.Counted { return m.frequent }

// WeightedFrequent returns the decay-weighted result (nil when Decay is
// 0): every itemset whose weighted support met the weighted threshold,
// ordered by CompareWeighted. Bit-identical to MineWindowFromScratch on
// WindowDB.
func (m *Miner) WeightedFrequent() []Weighted { return m.weighted }

// Ingest appends a batch of transactions (non-decreasing days continuing
// the store's last day — txdb.AppendDB's contract), advances the window,
// and re-mines. The batch is rejected whole on an ordering violation and
// the miner's state is unchanged. An empty batch is a no-op advance: the
// window and results are recomputed but nothing is scanned.
func (m *Miner) Ingest(batch []txdb.Transaction) error {
	lo := m.store.Len()
	if err := m.store.Append(batch); err != nil {
		return err
	}
	m.absorb(lo)
	m.evict()
	m.remine()
	m.last.NewTx = m.store.Len() - lo
	m.steps++
	return nil
}

// absorb builds or extends day summaries for the transactions appended at
// index lo and beyond.
func (m *Miner) absorb(lo int) {
	view := m.store.View()
	for i := lo; i < view.Len(); {
		day := view.DayOf(i)
		j := i + 1
		for j < view.Len() && view.DayOf(j) == day {
			j++
		}
		var ds *daySummary
		if n := len(m.days); n > 0 && m.days[n-1].day == day {
			ds = m.days[n-1]
		} else {
			ds = newDaySummary(day, i)
			m.days = append(m.days, ds)
		}
		ds.addRange(view, i, j)
		i = j
	}
}

// evict drops the day summaries that fell out of the window. The window
// always contains the store's last day, so a later batch extending that
// day still finds its summary.
func (m *Miner) evict() {
	if m.cfg.WindowDays <= 0 || len(m.days) == 0 {
		return
	}
	start := m.days[len(m.days)-1].day - m.cfg.WindowDays + 1
	k := 0
	for k < len(m.days) && m.days[k].day < start {
		k++
	}
	m.days = m.days[k:]
}

// remine recomputes the frequent sets of the current window from the
// retained summaries.
func (m *Miner) remine() {
	frequent, weighted, scanned := mineDays(m.store.View(), m.days, m.cfg)
	m.frequent, m.weighted = frequent, weighted
	windowTx := 0
	for _, ds := range m.days {
		windowTx += ds.count()
	}
	m.last = IngestStats{ScannedTx: scanned, WindowTx: windowTx, WindowDayCount: len(m.days)}
}

// MineWindowFromScratch mines a window database with no retained state:
// fresh per-day summaries, candidate caches filled from empty. It returns
// the same (frequent, weighted) pair an incremental Miner holds after
// ingesting the window — the reference the equivalence harness compares
// the decay-weighted path against (the unweighted path is gated on
// core.MinePMIHP directly, a fully independent implementation).
func MineWindowFromScratch(db *txdb.DB, cfg Config) (frequent []itemset.Counted, weighted []Weighted, err error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	var days []*daySummary
	for i := 0; i < db.Len(); {
		day := db.DayOf(i)
		j := i + 1
		for j < db.Len() && db.DayOf(j) == day {
			j++
		}
		ds := newDaySummary(day, i)
		ds.addRange(db, i, j)
		days = append(days, ds)
		i = j
	}
	frequent, weighted, _ = mineDays(db, days, cfg)
	return frequent, weighted, nil
}

// mineDays is the level-wise core shared by the incremental and
// from-scratch paths: it mines the union of the given day summaries,
// scanning view only to demand-fill k≥3 candidate caches. Per-day counts
// merge as integer sums; weighted supports accumulate per key in
// ascending day order, which (with math.Pow being a pure function) makes
// the float results bit-identical however the summaries were built.
func mineDays(view *txdb.DB, days []*daySummary, cfg Config) (frequent []itemset.Counted, weighted []Weighted, scanned int) {
	n := 0
	for _, ds := range days {
		n += ds.count()
	}
	if n == 0 {
		return nil, nil, 0
	}
	numItems := view.NumItems()
	wmode := cfg.weightedMode()
	last := days[len(days)-1].day
	dayWeights := make([]float64, len(days))
	totalW := 0.0
	for i, ds := range days {
		dayWeights[i] = 1
		if wmode {
			dayWeights[i] = math.Pow(cfg.Decay, float64(last-ds.day))
		}
		totalW += float64(ds.count()) * dayWeights[i]
	}
	minCount := cfg.Opts.MinCount(n)
	minW := 0.0
	if wmode {
		if cfg.Opts.MinSupCount > 0 {
			minW = float64(cfg.Opts.MinSupCount)
		} else {
			minW = cfg.Opts.MinSupFrac * totalW
		}
	}
	meets := func(count int, w float64) bool {
		if wmode {
			return w >= minW
		}
		return count >= minCount
	}
	keep := func(lvl []Weighted) []itemset.Itemset {
		sets := make([]itemset.Itemset, len(lvl))
		for i, e := range lvl {
			sets[i] = e.Set
			frequent = append(frequent, itemset.Counted{Set: e.Set, Count: e.Count})
			if wmode {
				weighted = append(weighted, e)
			}
		}
		return sets
	}

	// Pass 1: merge the retained item vectors — no transaction scan.
	itemCounts := make([]int, numItems)
	itemW := make([]float64, numItems)
	for i, ds := range days {
		w := dayWeights[i]
		for it, c := range ds.items {
			if c == 0 {
				continue
			}
			itemCounts[it] += c
			if wmode {
				itemW[it] += float64(c) * w
			}
		}
	}
	var lvl1 []Weighted
	for it := 0; it < numItems; it++ {
		if itemCounts[it] == 0 || !meets(itemCounts[it], itemW[it]) {
			continue
		}
		lvl1 = append(lvl1, Weighted{Set: itemset.Itemset{itemset.Item(it)}, Count: itemCounts[it], Weight: itemW[it]})
	}
	prev := keep(lvl1)
	freqItem := make([]bool, numItems)
	for _, e := range lvl1 {
		freqItem[e.Set[0]] = true
	}

	// Pass 2: merge the retained pair maps — no transaction scan. Keys
	// iterate in map order, but each key accumulates across days in
	// ascending day order, so the weighted sums are deterministic.
	if len(prev) > 1 && (cfg.Opts.MaxK == 0 || cfg.Opts.MaxK >= 2) {
		pairCounts := map[uint64]int{}
		pairW := map[uint64]float64{}
		for i, ds := range days {
			w := dayWeights[i]
			for key, c := range ds.pairs {
				a, b := splitPair(key)
				if !freqItem[a] || !freqItem[b] {
					continue
				}
				pairCounts[key] += c
				if wmode {
					pairW[key] += float64(c) * w
				}
			}
		}
		var lvl2 []Weighted
		for key, c := range pairCounts {
			if !meets(c, pairW[key]) {
				continue
			}
			a, b := splitPair(key)
			lvl2 = append(lvl2, Weighted{Set: itemset.Itemset{a, b}, Count: c, Weight: pairW[key]})
		}
		slices.SortFunc(lvl2, func(a, b Weighted) int { return itemset.Compare(a.Set, b.Set) })
		prev = keep(lvl2)
	} else {
		prev = nil
	}

	// Passes k≥3: Apriori join + closure over the previous level, then
	// demand-fill each day's candidate cache. Only days missing a
	// candidate are scanned — in steady state, just the new day.
	for k := 3; len(prev) > 1 && (cfg.Opts.MaxK == 0 || k <= cfg.Opts.MaxK); k++ {
		prevSet := itemset.SetOf(prev...)
		seen := itemset.NewSet()
		var cands []itemset.Itemset
		for i := 0; i < len(prev); i++ {
			for j := i + 1; j < len(prev); j++ {
				cand, ok := itemset.Join(prev[i], prev[j])
				if !ok || seen.Has(cand) {
					continue
				}
				seen.Add(cand)
				allFreq := true
				cand.EachSubset(func(sub itemset.Itemset) bool {
					if !prevSet.Has(sub) {
						allFreq = false
						return false
					}
					return true
				})
				if allFreq {
					cands = append(cands, cand)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		itemset.Sort(cands)
		for _, ds := range days {
			var missing []itemset.Itemset
			var keys []string
			for _, cand := range cands {
				key := cand.Key()
				if _, known := ds.higher[key]; !known {
					missing = append(missing, cand)
					keys = append(keys, key)
				}
			}
			if len(missing) == 0 {
				continue
			}
			counts := make([]int, len(missing))
			for t := ds.lo; t < ds.hi; t++ {
				items := view.ItemsOf(t)
				for ci, cand := range missing {
					if cand.SubsetOf(items) {
						counts[ci]++
					}
				}
			}
			scanned += ds.count()
			for ci, key := range keys {
				ds.higher[key] = counts[ci] // zeros too: a cache hit means "known"
			}
		}
		var lvl []Weighted
		for _, cand := range cands {
			key := cand.Key()
			tot := 0
			wtot := 0.0
			for i, ds := range days {
				c := ds.higher[key]
				tot += c
				if wmode {
					wtot += float64(c) * dayWeights[i]
				}
			}
			if meets(tot, wtot) {
				lvl = append(lvl, Weighted{Set: cand, Count: tot, Weight: wtot})
			}
		}
		prev = keep(lvl)
	}

	itemset.SortCounted(frequent)
	slices.SortFunc(weighted, CompareWeighted)
	return frequent, weighted, scanned
}

package streammine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"pmihp/internal/itemset"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// The stream-state codec. A Miner's checkpoint rides inside the cluster
// checkpoint format (transport.Checkpoint at StageStream) as an opaque
// payload; this file owns that payload's encoding. Like the PMCK codec it
// wraps, the encoding is canonical: a payload that decodes successfully
// re-encodes to the exact bytes it came from (the invariant FuzzStreamState
// holds it to), so maps are written with sorted keys and the decoder
// rejects any deviation from sorted order rather than silently accepting a
// second spelling of the same state.
//
// A checkpoint captures the window, not the log: only the window's
// transactions are encoded (eviction compacts on save), together with the
// first window TID so the restored store reissues the original TIDs, the
// per-day retained counts and candidate caches, and the current frequent
// sets. Restore rebuilds a Miner whose observable state — views, counts,
// results — is identical to the uninterrupted run's.

// streamStateMagic and streamStateVersion frame the payload inside the
// PMCK Stream field; the version is bumped independently of the PMCK
// version.
const (
	streamStateMagic   = "PMS1"
	streamStateVersion = 1
)

// EncodeState returns the canonical encoding of the miner's window state.
// It fails only when the state cannot be represented: negative days or
// dimensions beyond the wire's 32-bit ranges.
func (m *Miner) EncodeState() ([]byte, error) {
	view := m.WindowDB()
	if len(m.days) > 0 && m.days[0].day < 0 {
		return nil, fmt.Errorf("streammine: cannot checkpoint negative day %d", m.days[0].day)
	}
	if m.cfg.Opts.MinSupCount > math.MaxUint32 || m.cfg.Opts.MaxK > math.MaxUint32 {
		return nil, fmt.Errorf("streammine: checkpoint thresholds out of range")
	}
	b := []byte(streamStateMagic)
	b = append(b, streamStateVersion)
	b = sappendU32(b, uint32(m.cfg.WindowDays))
	b = sappendF64(b, m.cfg.Decay)
	b = sappendF64(b, m.cfg.Opts.MinSupFrac)
	b = sappendU32(b, uint32(m.cfg.Opts.MinSupCount))
	b = sappendU32(b, uint32(m.cfg.Opts.MaxK))
	b = sappendU32(b, uint32(m.store.NumItems()))
	firstTID := m.store.NextTID() - txdb.TID(view.Len())
	b = sappendU32(b, firstTID)
	b = sappendU32(b, uint32(m.steps))
	b = sappendU32(b, uint32(view.Len()))
	for i := 0; i < view.Len(); i++ {
		b = sappendU32(b, uint32(view.DayOf(i)))
		items := view.ItemsOf(i)
		b = sappendU32(b, uint32(len(items)))
		for _, it := range items {
			b = sappendU32(b, uint32(it))
		}
	}
	b = sappendU32(b, uint32(len(m.days)))
	for _, ds := range m.days {
		b = sappendU32(b, uint32(ds.day))
		nItems := 0
		for _, c := range ds.items {
			if c != 0 {
				nItems++
			}
		}
		b = sappendU32(b, uint32(nItems))
		for it, c := range ds.items {
			if c != 0 {
				b = sappendU32(b, uint32(it))
				b = sappendU32(b, uint32(c))
			}
		}
		pairKeys := make([]uint64, 0, len(ds.pairs))
		for key := range ds.pairs {
			pairKeys = append(pairKeys, key)
		}
		sort.Slice(pairKeys, func(i, j int) bool { return pairKeys[i] < pairKeys[j] })
		b = sappendU32(b, uint32(len(pairKeys)))
		for _, key := range pairKeys {
			b = sappendU64(b, key)
			b = sappendU32(b, uint32(ds.pairs[key]))
		}
		highKeys := make([]string, 0, len(ds.higher))
		for key := range ds.higher {
			highKeys = append(highKeys, key)
		}
		sort.Strings(highKeys)
		b = sappendU32(b, uint32(len(highKeys)))
		for _, key := range highKeys {
			set := itemset.FromKey(key)
			b = sappendU32(b, uint32(len(set)))
			for _, it := range set {
				b = sappendU32(b, uint32(it))
			}
			b = sappendU32(b, uint32(ds.higher[key]))
		}
	}
	if m.cfg.weightedMode() {
		b = sappendU32(b, uint32(len(m.weighted)))
		for _, e := range m.weighted {
			b = sappendU32(b, uint32(len(e.Set)))
			for _, it := range e.Set {
				b = sappendU32(b, uint32(it))
			}
			b = sappendU32(b, uint32(e.Count))
			b = sappendF64(b, e.Weight)
		}
	} else {
		b = sappendU32(b, uint32(len(m.frequent)))
		for _, c := range m.frequent {
			b = sappendU32(b, uint32(len(c.Set)))
			for _, it := range c.Set {
				b = sappendU32(b, uint32(it))
			}
			b = sappendU32(b, uint32(c.Count))
		}
	}
	return b, nil
}

// DecodeState rebuilds a Miner from a payload written by EncodeState,
// rejecting truncated, corrupt, out-of-range, or non-canonically-ordered
// input with attributed errors.
func DecodeState(b []byte) (*Miner, error) {
	if len(b) < len(streamStateMagic)+1 {
		return nil, fmt.Errorf("streammine: state header truncated: %d bytes", len(b))
	}
	if string(b[:len(streamStateMagic)]) != streamStateMagic {
		return nil, fmt.Errorf("streammine: not a stream state (magic %q)", b[:len(streamStateMagic)])
	}
	if v := b[len(streamStateMagic)]; v != streamStateVersion {
		return nil, fmt.Errorf("streammine: unsupported state version %d (this build speaks version %d)",
			v, streamStateVersion)
	}
	r := &stateReader{b: b[len(streamStateMagic)+1:]}
	var cfg Config
	cfg.WindowDays = int(r.u32())
	cfg.Decay = r.f64()
	cfg.Opts.MinSupFrac = r.f64()
	cfg.Opts.MinSupCount = int(r.u32())
	cfg.Opts.MaxK = int(r.u32())
	if r.err == nil {
		if err := cfg.validate(); err != nil {
			return nil, err
		}
	}
	numItems := int(r.u32())
	firstTID := txdb.TID(r.u32())
	steps := int(r.u32())

	nTx := r.count(8) // a transaction needs at least its day and length
	txs := make([]txdb.Transaction, 0, nTx)
	for i := 0; i < nTx && r.err == nil; i++ {
		day := int(r.u32())
		if day > math.MaxInt32 {
			r.fail("tx %d day %d beyond the store's day range", i, day)
			break
		}
		set := r.set(numItems, fmt.Sprintf("tx %d", i))
		txs = append(txs, txdb.Transaction{Day: day, Items: set})
	}
	store := txdb.NewAppendAt(numItems, firstTID)
	if r.err == nil {
		if err := store.Append(txs); err != nil {
			return nil, err
		}
		if store.NumItems() != numItems {
			r.fail("item id beyond the %d-item vocabulary", numItems)
		}
	}

	nDays := r.count(16)
	days := make([]*daySummary, 0, nDays)
	for i := 0; i < nDays && r.err == nil; i++ {
		day := int(r.u32())
		if len(days) > 0 && day <= days[len(days)-1].day {
			r.fail("day summaries out of order at day %d", day)
			break
		}
		lo, hi := store.DayBounds(day)
		if lo == hi {
			r.fail("summary for day %d with no transactions", day)
			break
		}
		ds := newDaySummary(day, lo)
		ds.hi = hi
		ds.items = make([]int, numItems)
		nItems := r.count(8)
		prevItem := -1
		for j := 0; j < nItems && r.err == nil; j++ {
			it := int(r.u32())
			c := int(r.u32())
			if it <= prevItem || it >= numItems {
				r.fail("day %d item counts not strictly ascending in range", day)
				break
			}
			if c <= 0 || c > ds.count() {
				r.fail("day %d item %d count %d outside (0, %d]", day, it, c, ds.count())
				break
			}
			prevItem = it
			ds.items[it] = c
		}
		nPairs := r.count(12)
		prevPair := uint64(0)
		for j := 0; j < nPairs && r.err == nil; j++ {
			key := r.u64()
			c := int(r.u32())
			a, bb := splitPair(key)
			if j > 0 && key <= prevPair {
				r.fail("day %d pair counts not strictly ascending", day)
				break
			}
			if a >= bb || int(bb) >= numItems {
				r.fail("day %d malformed pair key %#x", day, key)
				break
			}
			if c <= 0 || c > ds.count() {
				r.fail("day %d pair count %d outside (0, %d]", day, c, ds.count())
				break
			}
			prevPair = key
			ds.pairs[key] = c
		}
		nHigher := r.count(8)
		prevKey := ""
		for j := 0; j < nHigher && r.err == nil; j++ {
			set := r.set(numItems, fmt.Sprintf("day %d candidate %d", day, j))
			if r.err != nil {
				break
			}
			if len(set) < 3 {
				r.fail("day %d cached candidate of size %d (cache holds k≥3 only)", day, len(set))
				break
			}
			c := int(r.u32())
			if c < 0 || c > ds.count() {
				r.fail("day %d candidate count %d outside [0, %d]", day, c, ds.count())
				break
			}
			key := set.Key()
			if key <= prevKey && j > 0 {
				r.fail("day %d candidate cache not strictly ascending", day)
				break
			}
			prevKey = key
			ds.higher[key] = c
		}
		days = append(days, ds)
	}
	if r.err == nil {
		covered := 0
		for _, ds := range days {
			covered += ds.count()
		}
		if covered != store.Len() {
			r.fail("summaries cover %d of %d transactions", covered, store.Len())
		}
	}

	wmode := cfg.weightedMode()
	nFreq := r.count(8)
	var frequent []itemset.Counted
	var weighted []Weighted
	for i := 0; i < nFreq && r.err == nil; i++ {
		set := r.set(numItems, fmt.Sprintf("frequent set %d", i))
		if r.err != nil {
			break
		}
		if len(set) == 0 {
			r.fail("empty frequent set %d", i)
			break
		}
		c := int(r.u32())
		if c <= 0 || c > store.Len() {
			r.fail("frequent set %d count %d outside (0, %d]", i, c, store.Len())
			break
		}
		if wmode {
			w := r.f64()
			if math.IsNaN(w) || w <= 0 {
				r.fail("frequent set %d with weight %v", i, w)
				break
			}
			e := Weighted{Set: set, Count: c, Weight: w}
			if i > 0 && CompareWeighted(weighted[i-1], e) >= 0 {
				r.fail("weighted frequent sets not in canonical order at %d", i)
				break
			}
			weighted = append(weighted, e)
		} else {
			e := itemset.Counted{Set: set, Count: c}
			if i > 0 && !countedLess(frequent[i-1], e) {
				r.fail("frequent sets not in canonical order at %d", i)
				break
			}
			frequent = append(frequent, e)
		}
	}
	if wmode && r.err == nil {
		frequent = make([]itemset.Counted, len(weighted))
		for i, e := range weighted {
			frequent[i] = itemset.Counted{Set: e.Set, Count: e.Count}
		}
		itemset.SortCounted(frequent)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	m := &Miner{cfg: cfg, store: store, days: days, frequent: frequent, weighted: weighted, steps: steps}
	stats := IngestStats{WindowTx: store.Len(), WindowDayCount: len(days)}
	m.last = stats
	return m, nil
}

// countedLess is the strict form of the SortCounted order (descending
// count, ties lexicographic): it returns true when a sorts strictly
// before b, which a canonical frequent list requires of every adjacent
// pair (equal entries would be duplicates).
func countedLess(a, b itemset.Counted) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return itemset.Compare(a.Set, b.Set) < 0
}

// Checkpoint wraps the miner's state in a cluster checkpoint at
// StageStream. sessionID plays the role ClusterID plays for cluster
// checkpoints: a stream lineage identifier the operator chooses.
func (m *Miner) Checkpoint(sessionID uint64) (transport.Checkpoint, error) {
	state, err := m.EncodeState()
	if err != nil {
		return transport.Checkpoint{}, err
	}
	return transport.Checkpoint{
		ClusterID: sessionID,
		Nodes:     1,
		Stage:     transport.StageStream,
		Stream:    state,
	}, nil
}

// SaveCheckpoint atomically persists the miner's state to path in PMCK
// form (transport.WriteCheckpointFile's temp-and-rename discipline).
func (m *Miner) SaveCheckpoint(path string, sessionID uint64) error {
	c, err := m.Checkpoint(sessionID)
	if err != nil {
		return err
	}
	return transport.WriteCheckpointFile(path, c)
}

// LoadCheckpoint restores a miner from a PMCK stream checkpoint file.
func LoadCheckpoint(path string) (*Miner, error) {
	c, err := transport.ReadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return FromCheckpoint(c)
}

// FromCheckpoint restores a miner from a decoded cluster checkpoint,
// which must be at StageStream.
func FromCheckpoint(c transport.Checkpoint) (*Miner, error) {
	if c.Stage != transport.StageStream {
		return nil, fmt.Errorf("streammine: checkpoint at stage %s, want %s",
			transport.StageName(c.Stage), transport.StageName(transport.StageStream))
	}
	return DecodeState(c.Stream)
}

// Wire helpers, mirroring the transport codec's conventions (fixed-width
// little-endian, a fail-once reader); local because transport keeps its
// own unexported.

func sappendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func sappendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func sappendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

type stateReader struct {
	b   []byte
	off int
	err error
}

func (r *stateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("streammine: "+format, args...)
	}
}

func (r *stateReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail("state truncated at byte %d (need %d more)", r.off, n)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *stateReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *stateReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *stateReader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads an element count and sanity-checks it against the bytes
// remaining (each element needs at least elemSize bytes), so a corrupt
// length cannot drive a huge allocation.
func (r *stateReader) count(elemSize int) int {
	n := int(r.u32())
	if r.err == nil && n*elemSize > len(r.b)-r.off {
		r.fail("count %d exceeds remaining %d bytes", n, len(r.b)-r.off)
		return 0
	}
	return n
}

// set reads a length-prefixed itemset, validating strict ascent and the
// vocabulary bound.
func (r *stateReader) set(numItems int, what string) itemset.Itemset {
	n := r.count(4)
	set := make(itemset.Itemset, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		it := itemset.Item(r.u32())
		if len(set) > 0 && it <= set[len(set)-1] {
			r.fail("%s items not strictly ascending", what)
			return nil
		}
		if int(it) >= numItems {
			r.fail("%s item %d beyond the %d-item vocabulary", what, it, numItems)
			return nil
		}
		set = append(set, it)
	}
	return set
}

func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("streammine: %d trailing bytes after state", len(r.b)-r.off)
	}
	return nil
}

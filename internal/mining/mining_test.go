package mining

import (
	"math/rand"
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

func randDB(seed int64, docs, vocab, docLen int) *txdb.DB {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]txdb.Transaction, docs)
	for i := range txs {
		seen := map[itemset.Item]struct{}{}
		for len(seen) < docLen {
			seen[itemset.Item(rng.Intn(vocab))] = struct{}{}
		}
		items := make([]itemset.Item, 0, docLen)
		for it := range seen {
			items = append(items, it)
		}
		txs[i] = txdb.Transaction{TID: txdb.TID(i), Items: itemset.New(items...)}
	}
	return txdb.New(txs, vocab)
}

func TestOptionsMinCount(t *testing.T) {
	cases := []struct {
		opts Options
		db   int
		want int
	}{
		{Options{MinSupFrac: 0.02}, 1000, 20},
		{Options{MinSupFrac: 0.0175}, 1000, 18},
		{Options{MinSupCount: 2}, 1000, 2},
		{Options{MinSupCount: 2, MinSupFrac: 0.5}, 1000, 2}, // count wins
		{Options{MinSupFrac: 0.000001}, 1000, 1},            // clamps to 1
	}
	for _, c := range cases {
		if got := c.opts.MinCount(c.db); got != c.want {
			t.Errorf("MinCount(%+v, %d) = %d, want %d", c.opts, c.db, got, c.want)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.PartitionSize != 100 || o.THTEntries != 400 || o.GlobalCandidateBatch != 20000 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{PartitionSize: 7, THTEntries: 16, GlobalCandidateBatch: 3}.WithDefaults()
	if o2.PartitionSize != 7 || o2.THTEntries != 16 || o2.GlobalCandidateBatch != 3 {
		t.Fatalf("explicit values overwritten: %+v", o2)
	}
}

func TestCountSupport(t *testing.T) {
	db := txdb.New([]txdb.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3)},
		{TID: 1, Items: itemset.New(1, 3)},
		{TID: 2, Items: itemset.New(2, 3)},
	}, 5)
	if got := CountSupport(db, itemset.New(1, 3)); got != 2 {
		t.Fatalf("CountSupport = %d", got)
	}
	if got := CountSupport(db, itemset.New(1, 2, 3)); got != 1 {
		t.Fatalf("CountSupport = %d", got)
	}
}

// TestAprioriGenMatchesNaive: the grouped prefix join must produce exactly
// the candidates a naive all-pairs join with full subset checks produces.
func TestAprioriGenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(3)
		// Random frequent (k-1)-itemsets, downward closure not required for
		// the equivalence (both sides use the same prevSet).
		prevSet := itemset.NewSet()
		var prev []itemset.Itemset
		for len(prev) < 30 {
			raw := make([]uint32, k)
			for j := range raw {
				raw[j] = uint32(rng.Intn(12))
			}
			is := itemset.New(raw...)
			if len(is) == k && !prevSet.Has(is) {
				prevSet.Add(is)
				prev = append(prev, is)
			}
		}
		itemset.Sort(prev)

		cands, _, _ := AprioriGen(prev, prevSet)

		// Naive: all pairs, itemset.Join, all-subset check.
		naive := itemset.NewSet()
		for i := 0; i < len(prev); i++ {
			for j := i + 1; j < len(prev); j++ {
				cand, ok := itemset.Join(prev[i], prev[j])
				if !ok {
					continue
				}
				all := true
				cand.EachSubset(func(sub itemset.Itemset) bool {
					if !prevSet.Has(sub) {
						all = false
						return false
					}
					return true
				})
				if all {
					naive.Add(cand)
				}
			}
		}
		if len(cands) != naive.Len() {
			t.Fatalf("trial %d: AprioriGen %d vs naive %d", trial, len(cands), naive.Len())
		}
		for _, c := range cands {
			if !naive.Has(c) {
				t.Fatalf("trial %d: unexpected candidate %v", trial, c)
			}
		}
	}
}

// TestGen3MatchesAprioriGen: the packed-pair specialization must equal the
// generic generator when the pair set equals the prev set.
func TestGen3MatchesAprioriGen(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		prevSet := itemset.NewSet()
		all2 := NewPairTable(0)
		var prev []itemset.Itemset
		for len(prev) < 50 {
			a, b := uint32(rng.Intn(15)), uint32(rng.Intn(15))
			if a == b {
				continue
			}
			is := itemset.New(a, b)
			if !prevSet.Has(is) {
				prevSet.Add(is)
				all2.AddPair(is[0], is[1])
				prev = append(prev, is)
			}
		}
		itemset.Sort(prev)
		got, gp, gpr := Gen3(prev, all2)
		want, wp, wpr := AprioriGen(prev, prevSet)
		if len(got) != len(want) || gp != wp || gpr != wpr {
			t.Fatalf("trial %d: Gen3 %d/%d/%d vs AprioriGen %d/%d/%d",
				trial, len(got), gp, gpr, len(want), wp, wpr)
		}
		ws := itemset.SetOf(want...)
		for _, c := range got {
			if !ws.Has(c) {
				t.Fatalf("trial %d: Gen3 extra %v", trial, c)
			}
		}
	}
}

func TestBruteForceKnownAnswer(t *testing.T) {
	db := txdb.New([]txdb.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3)},
		{TID: 1, Items: itemset.New(1, 2, 3)},
		{TID: 2, Items: itemset.New(1, 2)},
		{TID: 3, Items: itemset.New(3)},
	}, 5)
	r := BruteForce(db, Options{MinSupCount: 2})
	want := map[string]int{
		itemset.New(1).Key():       3,
		itemset.New(2).Key():       3,
		itemset.New(3).Key():       3,
		itemset.New(1, 2).Key():    3,
		itemset.New(1, 3).Key():    2,
		itemset.New(2, 3).Key():    2,
		itemset.New(1, 2, 3).Key(): 2,
	}
	if len(r.Frequent) != len(want) {
		t.Fatalf("found %d itemsets, want %d: %v", len(r.Frequent), len(want), r.Frequent)
	}
	for _, c := range r.Frequent {
		if want[c.Set.Key()] != c.Count {
			t.Fatalf("%v count %d, want %d", c.Set, c.Count, want[c.Set.Key()])
		}
	}
}

func TestBruteForceMaxK(t *testing.T) {
	db := randDB(3, 30, 20, 6)
	r := BruteForce(db, Options{MinSupCount: 2, MaxK: 2})
	for _, c := range r.Frequent {
		if len(c.Set) > 2 {
			t.Fatalf("MaxK violated: %v", c.Set)
		}
	}
}

func TestSameFrequentSets(t *testing.T) {
	a := &Result{Frequent: []itemset.Counted{{Set: itemset.New(1, 2), Count: 3}}}
	b := &Result{Frequent: []itemset.Counted{{Set: itemset.New(1, 2), Count: 3}}}
	if ok, _ := SameFrequentSets(a, b); !ok {
		t.Fatal("identical results reported different")
	}
	b.Frequent[0].Count = 4
	if ok, _ := SameFrequentSets(a, b); ok {
		t.Fatal("count difference not detected")
	}
	b.Frequent[0].Count = 3
	b.Frequent = append(b.Frequent, itemset.Counted{Set: itemset.New(5), Count: 9})
	if ok, _ := SameFrequentSets(a, b); ok {
		t.Fatal("extra itemset not detected")
	}
	dup := &Result{Frequent: []itemset.Counted{
		{Set: itemset.New(1, 2), Count: 3},
		{Set: itemset.New(1, 2), Count: 3},
	}}
	if ok, diff := SameFrequentSets(dup, a); ok {
		t.Fatal("duplicates not detected")
	} else if diff == "" {
		t.Fatal("no diagnostic for duplicates")
	}
}

func TestMetricsMergeAndWork(t *testing.T) {
	a := NewMetrics("a")
	a.AddCandidates(2, 10)
	a.Work.Charge(100, CostScanItem)
	a.NoteCandidateBytes(500)
	a.Passes = 2

	b := NewMetrics("b")
	b.AddCandidates(2, 5)
	b.AddCandidates(3, 7)
	b.NoteCandidateBytes(300)
	b.Work.Charge(50, CostScanItem)
	b.Passes = 1

	a.Merge(&b)
	if a.CandidatesByK[2] != 15 || a.CandidatesByK[3] != 7 {
		t.Fatalf("merged candidates = %v", a.CandidatesByK)
	}
	if a.Candidates() != 22 {
		t.Fatalf("Candidates = %d", a.Candidates())
	}
	if a.PeakCandidateBytes != 500 { // max, not sum
		t.Fatalf("PeakCandidateBytes = %d", a.PeakCandidateBytes)
	}
	if a.Passes != 3 {
		t.Fatalf("Passes = %d", a.Passes)
	}
	if a.Work.Units != 150*CostScanItem {
		t.Fatalf("Work = %d", a.Work.Units)
	}
	if a.Work.Seconds() <= 0 {
		t.Fatal("Seconds not positive")
	}
}

func TestCandidateBytesMonotone(t *testing.T) {
	if CandidateBytes(2, 100) >= CandidateBytes(3, 100) {
		t.Fatal("bytes should grow with k")
	}
	if CandidateBytes(2, 100) >= CandidateBytes(2, 200) {
		t.Fatal("bytes should grow with n")
	}
}

func TestIsMemoryErr(t *testing.T) {
	if !IsMemoryErr(ErrMemoryExceeded) {
		t.Fatal("direct error not recognized")
	}
	if IsMemoryErr(nil) {
		t.Fatal("nil recognized")
	}
}

func TestPass2TreeCharge(t *testing.T) {
	if Pass2TreeCharge(1, 100) != 0 || Pass2TreeCharge(10, 0) != 0 {
		t.Fatal("degenerate inputs should cost nothing")
	}
	// Few paths, small candidate set: paths * 1 leaf entry.
	if got := Pass2TreeCharge(3, 10); got != 3 {
		t.Fatalf("Pass2TreeCharge(3,10) = %d", got)
	}
	// Paths capped at the leaf-bucket count.
	long := Pass2TreeCharge(100, 640)
	if long != int64(Pass2TreeFanout)*(640/int64(Pass2TreeFanout)+1) {
		t.Fatalf("capped charge = %d", long)
	}
	// The charge grows linearly with the candidate-set size — the effect
	// that sinks Apriori on text data.
	if Pass2TreeCharge(50, 1_000_000) <= Pass2TreeCharge(50, 10_000) {
		t.Fatal("leaf-scan cost not growing with candidates")
	}
}

package mining

import (
	"runtime"
	"sync"
)

// Intra-node shared-memory parallelism. Each simulated cluster node may
// shard its counting scans over a bounded pool of OS-level workers (the
// many-core direction of Zymbler's FIM work): shard s processes the
// contiguous index range [lo, hi) with its own scratch state, and the
// caller merges per-shard results in shard order. Because every merge is an
// integer sum over disjoint transaction ranges, results and simulated-clock
// charges are identical for every worker count — the knob changes wall-clock
// time only.

// ResolveWorkers normalizes an IntraNodeWorkers setting: values <= 0 select
// GOMAXPROCS.
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// shardRanges splits [0, n) into at most workers near-equal contiguous
// ranges, returning the shard boundaries (len = shards+1).
func shardRanges(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, workers+1)
	for s := 0; s <= workers; s++ {
		bounds[s] = s * n / workers
	}
	return bounds
}

// NumShards returns the shard count RunShards will use for n items and the
// given worker bound, so callers can pre-allocate per-shard scratch.
func NumShards(n, workers int) int {
	return len(shardRanges(n, workers)) - 1
}

// RunShards executes fn over the contiguous shard ranges of [0, n). With a
// single shard fn runs inline on the calling goroutine, reproducing the
// serial kernels exactly; otherwise each shard runs on its own goroutine and
// RunShards returns after all complete. It returns the number of shards used
// so callers can merge per-shard state in shard order.
func RunShards(n, workers int, fn func(shard, lo, hi int)) int {
	bounds := shardRanges(n, workers)
	shards := len(bounds) - 1
	if shards <= 1 {
		fn(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, bounds[s], bounds[s+1])
		}(s)
	}
	wg.Wait()
	return shards
}

package mining

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Intra-node shared-memory parallelism. Each simulated cluster node may
// shard its counting scans over a bounded pool of OS-level workers (the
// many-core direction of Zymbler's FIM work). Two disciplines coexist:
//
//   - RunShards is a chunk-queue work-stealing scheduler: the index range
//     [0, n) is cut into fixed-size chunks and worker goroutines pull the
//     next chunk off an atomic cursor until the queue drains, so a worker
//     that finishes early keeps pulling instead of idling behind a
//     skew-heavy range. Chunk boundaries depend only on (n, workers) and
//     every per-worker merge is either an order-independent integer sum or
//     a segment list re-ordered by range start, so results and
//     simulated-clock charges are identical for every worker count — the
//     knob changes wall-clock time only.
//
//   - RunStatic keeps the original static contiguous partition (one range
//     per shard, in shard order) for builders whose correctness depends on
//     shard ranges concatenating contiguously — positioned posting writes
//     and per-shard structure construction.

// ResolveWorkers normalizes an IntraNodeWorkers setting: values <= 0 select
// GOMAXPROCS.
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// chunksPerWorker sets the queue depth of the dynamic scheduler: enough
// chunks per worker that a straggling range redistributes, few enough that
// the per-chunk atomic fetch is noise against a counting scan.
const chunksPerWorker = 8

// chunkPlan computes the dynamic schedule for [0, n) under a worker bound:
// the fixed chunk size, the chunk count, and the number of worker slots
// (goroutines, hence per-slot scratch states) that will run. All three are
// pure functions of (n, workers).
func chunkPlan(n, workers int) (size, chunks, slots int) {
	if workers < 1 {
		workers = 1
	}
	if n <= 0 {
		return 1, 0, 1
	}
	size = n / (workers * chunksPerWorker)
	if size < 1 {
		size = 1
	}
	chunks = (n + size - 1) / size
	slots = workers
	if slots > chunks {
		slots = chunks
	}
	return size, chunks, slots
}

// NumShards returns the number of worker slots RunShards will use for n
// items and the given worker bound, so callers can pre-allocate per-slot
// scratch. It equals min(workers, n) for n > 0.
func NumShards(n, workers int) int {
	_, _, slots := chunkPlan(n, workers)
	return slots
}

// RunShards executes fn over [0, n) on a pool of worker goroutines pulling
// fixed-size chunks from an atomic cursor: fn(worker, lo, hi) may run many
// times per worker, once per chunk claimed, always with 0 <= worker <
// NumShards(n, workers). A single slot runs fn(0, 0, n) inline on the
// calling goroutine, reproducing the serial kernels exactly.
//
// Callers accumulate into per-worker scratch (reset before the call, merged
// after) — chunk-to-worker assignment is racy, so per-worker results must
// be order-independent sums, or per-chunk segments tagged with their range
// start and re-ordered during the merge (see the pass-2 generation).
// It returns the number of worker slots used.
func RunShards(n, workers int, fn func(worker, lo, hi int)) int {
	size, chunks, slots := chunkPlan(n, workers)
	if slots <= 1 || chunks <= 1 {
		fn(0, 0, n)
		return 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(slots)
	for w := 0; w < slots; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= chunks {
					return
				}
				lo := k * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	return slots
}

// staticBounds splits [0, n) into at most workers near-equal contiguous
// ranges, returning the shard boundaries (len = shards+1).
func staticBounds(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, workers+1)
	for s := 0; s <= workers; s++ {
		bounds[s] = s * n / workers
	}
	return bounds
}

// NumStatic returns the shard count RunStatic will use for n items and the
// given worker bound, so callers can pre-allocate per-shard state.
func NumStatic(n, workers int) int {
	return len(staticBounds(n, workers)) - 1
}

// RunStatic executes fn over the static contiguous shard ranges of [0, n):
// shard s covers exactly [bounds[s], bounds[s+1]) and fn runs once per
// shard. With a single shard fn runs inline on the calling goroutine;
// otherwise each shard runs on its own goroutine and RunStatic returns
// after all complete. Use it when the merge depends on shard ranges
// concatenating contiguously in shard order (positioned writes, per-shard
// structure builds); counting scans should prefer RunShards.
func RunStatic(n, workers int, fn func(shard, lo, hi int)) int {
	bounds := staticBounds(n, workers)
	shards := len(bounds) - 1
	if shards <= 1 {
		fn(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, bounds[s], bounds[s+1])
		}(s)
	}
	wg.Wait()
	return shards
}

package mining

import "fmt"

// Partitioner selects how a parallel miner splits the database across its
// nodes. Unlike IntraNodeWorkers and DenseThreshold this is NOT a pure
// physical-layout knob: the partitioning decides each node's local
// database and local support threshold, so per-node candidate sets, work
// units, and simulated clocks legitimately differ between partitioners —
// that difference is the point. The *frequent itemsets* are identical for
// every partitioner, because PMIHP resolves every global candidate by
// exact polling against the union of the local databases, which every
// partitioning preserves.
type Partitioner int

const (
	// PartitionByCount splits into nearly equal document counts along
	// chronological order — the paper's assignment (txdb.SplitChronological).
	// The zero value, so existing configurations are unchanged.
	PartitionByCount Partitioner = iota

	// PartitionByWork splits on the prefix sum of per-transaction estimated
	// counting work (txdb.SplitByWork): nodes receive nearly equal shares
	// of the scan-plus-candidate-pair cost estimate instead of equal
	// document counts, which equalizes node clocks when document length is
	// skewed across the corpus timeline.
	PartitionByWork
)

// ParsePartitioner converts a flag value ("count", "work"); the empty
// string selects the default count partitioner.
func ParsePartitioner(s string) (Partitioner, error) {
	switch s {
	case "", "count":
		return PartitionByCount, nil
	case "work":
		return PartitionByWork, nil
	}
	return 0, fmt.Errorf("mining: unknown partitioner %q (want count|work)", s)
}

func (p Partitioner) String() string {
	switch p {
	case PartitionByCount:
		return "count"
	case PartitionByWork:
		return "work"
	}
	return fmt.Sprintf("Partitioner(%d)", int(p))
}

// Valid reports whether p names a defined partitioner — the wire decoder's
// validation predicate.
func (p Partitioner) Valid() bool {
	return p == PartitionByCount || p == PartitionByWork
}

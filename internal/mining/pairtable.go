package mining

import "pmihp/internal/itemset"

// PairTable is a flat open-addressing hash table from packed pair keys
// (uint64(a)<<32 | uint64(b), a < b) to int32 values. It replaces the Go
// map[uint64]int32 / map[uint64]struct{} structures on the counting hot
// paths: probes are a fibonacci hash plus a linear scan over a plain
// uint64 slice, with no hashing interface, no bucket indirection, and no
// per-insert allocation once the table is sized.
//
// The zero key doubles as the empty-slot sentinel, which is safe for pair
// keys: a packed pair always has b > a >= 0, so its low 32 bits are nonzero
// and the key can never be zero. PairTable panics if a zero key is inserted.
type PairTable struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int
}

// pairTableHash spreads a packed pair key over the table. Fibonacci hashing
// (multiplication by the odd fractional part of the golden ratio) mixes both
// item halves into the high bits, which the mask then selects from.
const pairTableMult = 0x9E3779B97F4A7C15

// NewPairTable returns a table pre-sized for about hint entries.
func NewPairTable(hint int) *PairTable {
	t := &PairTable{}
	t.init(hint)
	return t
}

func (t *PairTable) init(hint int) {
	size := 16
	// Keep the load factor at or below 1/2.
	for size < 2*hint {
		size *= 2
	}
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
	t.n = 0
}

// Len returns the number of stored keys.
func (t *PairTable) Len() int { return t.n }

func (t *PairTable) slot(key uint64) uint64 {
	return (key * pairTableMult) & t.mask
}

// Put stores val under key, replacing any previous value.
func (t *PairTable) Put(key uint64, val int32) {
	if key == 0 {
		panic("mining: PairTable zero key")
	}
	if t.keys == nil || 2*(t.n+1) > len(t.keys) {
		t.grow()
	}
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			t.vals[i] = val
			return
		case 0:
			t.keys[i], t.vals[i] = key, val
			t.n++
			return
		}
	}
}

// Get returns the value stored under key.
func (t *PairTable) Get(key uint64) (int32, bool) {
	if t.keys == nil {
		return 0, false
	}
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// AddPair inserts the pair (a < b assumed) as a membership entry.
func (t *PairTable) AddPair(a, b itemset.Item) {
	t.Put(uint64(a)<<32|uint64(b), 0)
}

// HasPair reports membership of the pair (a < b assumed).
func (t *PairTable) HasPair(a, b itemset.Item) bool {
	_, ok := t.Get(uint64(a)<<32 | uint64(b))
	return ok
}

// Reset empties the table, keeping its capacity.
func (t *PairTable) Reset() {
	if t.n == 0 {
		return
	}
	clear(t.keys)
	t.n = 0
}

func (t *PairTable) grow() {
	if t.keys == nil {
		t.init(8)
		return
	}
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys)) // init doubles: size >= 2*hint
	for i, k := range oldKeys {
		if k != 0 {
			t.Put(k, oldVals[i])
		}
	}
}

// Arena carves small itemsets out of fixed-size chunks so that candidate
// generation performs one allocation per few thousand candidates instead of
// one per candidate. Slices handed out never move: a chunk is abandoned (not
// grown) when full, so earlier itemsets stay valid for the lifetime of the
// arena's user.
type Arena struct {
	chunk itemset.Itemset
}

const arenaChunk = 8192

// Alloc returns a zeroed itemset of length k backed by the arena.
func (a *Arena) Alloc(k int) itemset.Itemset {
	if len(a.chunk)+k > cap(a.chunk) {
		size := arenaChunk
		if k > size {
			size = k
		}
		a.chunk = make(itemset.Itemset, 0, size)
	}
	n := len(a.chunk)
	a.chunk = a.chunk[:n+k]
	return a.chunk[n : n+k : n+k]
}

package mining

import (
	"sort"
	"sync"
	"testing"
)

// TestRunShardsTilesRange checks the chunk-queue invariants the merge
// discipline depends on: every claimed chunk lies in [0, n), chunks tile
// the range exactly (no gap, no overlap), worker indices stay below
// NumShards, and the chunk boundaries depend only on (n, workers).
func TestRunShardsTilesRange(t *testing.T) {
	type span struct{ lo, hi int }
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
		for _, workers := range []int{1, 2, 3, 8, 64, 1000} {
			slots := NumShards(n, workers)
			var mu sync.Mutex
			var spans []span
			maxWorker := 0
			got := RunShards(n, workers, func(w, lo, hi int) {
				mu.Lock()
				spans = append(spans, span{lo, hi})
				if w > maxWorker {
					maxWorker = w
				}
				mu.Unlock()
			})
			if got != slots {
				t.Fatalf("n=%d workers=%d: RunShards used %d slots, NumShards says %d", n, workers, got, slots)
			}
			if maxWorker >= slots {
				t.Fatalf("n=%d workers=%d: worker index %d >= slots %d", n, workers, maxWorker, slots)
			}
			sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
			at := 0
			for _, sp := range spans {
				if sp.lo != at {
					t.Fatalf("n=%d workers=%d: chunk starts at %d, want %d (gap or overlap)", n, workers, sp.lo, at)
				}
				if sp.hi < sp.lo || sp.hi > n {
					t.Fatalf("n=%d workers=%d: bad chunk [%d,%d)", n, workers, sp.lo, sp.hi)
				}
				at = sp.hi
			}
			if at != n {
				t.Fatalf("n=%d workers=%d: chunks cover [0,%d), want [0,%d)", n, workers, at, n)
			}
		}
	}
}

// TestRunShardsSumDeterministic pins the scheduler's core guarantee: a
// per-worker sum reduction merged over the slots equals the serial result
// for every worker count.
func TestRunShardsSumDeterministic(t *testing.T) {
	const n = 5000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i*i%97 + 1)
	}
	var want int64
	for _, v := range vals {
		want += v
	}
	for _, workers := range []int{1, 2, 3, 4, 8, 19} {
		partial := make([]int64, NumShards(n, workers))
		RunShards(n, workers, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				partial[w] += vals[i]
			}
		})
		var got int64
		for _, p := range partial {
			got += p
		}
		if got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

// TestRunStaticContiguousShards pins the static scheduler's contract: fn
// runs exactly once per shard, shard s covers one contiguous range, and
// the ranges concatenate in shard order — what the positioned posting
// writes and the per-shard THT builds rely on.
func TestRunStaticContiguousShards(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1001} {
		for _, workers := range []int{1, 2, 7, 100, 200} {
			shards := NumStatic(n, workers)
			lo := make([]int, shards)
			hi := make([]int, shards)
			calls := make([]int, shards)
			var mu sync.Mutex
			got := RunStatic(n, workers, func(s, l, h int) {
				mu.Lock()
				calls[s]++
				lo[s], hi[s] = l, h
				mu.Unlock()
			})
			if got != shards {
				t.Fatalf("n=%d workers=%d: RunStatic used %d shards, NumStatic says %d", n, workers, got, shards)
			}
			at := 0
			for s := 0; s < shards; s++ {
				if calls[s] != 1 {
					t.Fatalf("n=%d workers=%d: shard %d ran %d times", n, workers, s, calls[s])
				}
				if lo[s] != at {
					t.Fatalf("n=%d workers=%d: shard %d starts at %d, want %d", n, workers, s, lo[s], at)
				}
				at = hi[s]
			}
			if at != n {
				t.Fatalf("n=%d workers=%d: shards cover [0,%d), want [0,%d)", n, workers, at, n)
			}
		}
	}
}

// TestNumShardsSlotBound documents the scratch-sizing contract: the slot
// count never exceeds the worker bound or the item count (for n > 0), so
// scratch allocated per slot is bounded by the smaller of the two.
func TestNumShardsSlotBound(t *testing.T) {
	for _, n := range []int{1, 3, 50, 10000} {
		for _, workers := range []int{1, 4, 77} {
			s := NumShards(n, workers)
			want := workers
			if n < want {
				want = n
			}
			if s != want {
				t.Fatalf("NumShards(%d,%d) = %d, want min %d", n, workers, s, want)
			}
		}
	}
}

package mining

import (
	"math/rand"
	"testing"
)

// TestPairTableMatchesMap: the open-addressing table must behave exactly
// like the Go map it replaced, across growth, overwrites, and misses.
func TestPairTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := make(map[uint64]int32)
	pt := NewPairTable(0)
	for i := 0; i < 20000; i++ {
		a := uint32(rng.Intn(500))
		b := a + 1 + uint32(rng.Intn(500))
		key := uint64(a)<<32 | uint64(b)
		val := int32(rng.Intn(1000))
		ref[key] = val
		pt.Put(key, val)
		if pt.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", i, pt.Len(), len(ref))
		}
	}
	for key, want := range ref {
		got, ok := pt.Get(key)
		if !ok || got != want {
			t.Fatalf("Get(%#x) = %d,%v, want %d,true", key, got, ok, want)
		}
	}
	for i := 0; i < 5000; i++ {
		a := uint32(rng.Intn(600))
		b := a + 1 + uint32(rng.Intn(600))
		key := uint64(a)<<32 | uint64(b)
		want, wantOK := ref[key]
		got, ok := pt.Get(key)
		if ok != wantOK || got != want {
			t.Fatalf("probe %#x: got %d,%v want %d,%v", key, got, ok, want, wantOK)
		}
	}
	pt.Reset()
	if pt.Len() != 0 {
		t.Fatalf("Len after Reset = %d", pt.Len())
	}
	if _, ok := pt.Get(1); ok {
		t.Fatal("Get after Reset found a key")
	}
}

func TestPairTableZeroKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put(0, …) did not panic")
		}
	}()
	NewPairTable(0).Put(0, 1)
}

func TestItemArenaSlicesAreIndependent(t *testing.T) {
	var a Arena
	s1 := a.Alloc(3)
	s1[0], s1[1], s1[2] = 1, 2, 3
	s2 := a.Alloc(3)
	s2[0], s2[1], s2[2] = 4, 5, 6
	// Appending to an arena slice must not clobber its neighbor.
	_ = append(s1, 99)
	if s2[0] != 4 || s2[1] != 5 || s2[2] != 6 {
		t.Fatalf("arena slice clobbered: %v", s2)
	}
	// Force a chunk rollover and check earlier slices stay intact.
	for i := 0; i < arenaChunk; i++ {
		a.Alloc(3)
	}
	if s1[0] != 1 || s1[1] != 2 || s1[2] != 3 {
		t.Fatalf("arena slice moved: %v", s1)
	}
}

func BenchmarkPairTableGet(b *testing.B) {
	b.ReportAllocs()
	pt := NewPairTable(100000)
	for i := uint64(0); i < 100000; i++ {
		pt.Put(i<<32|(i+1), int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%200000) << 32
		pt.Get(k | (k>>32 + 1))
	}
}

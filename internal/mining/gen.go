package mining

import "pmihp/internal/itemset"

// AprioriGen implements candidate generation shared by Apriori, Count
// Distribution, DHP and MIHP: the prefix self-join of the frequent
// (k-1)-itemsets followed by subset-infrequency pruning (every (k-1)-subset
// of a surviving candidate must be in prevSet).
//
// prev must be sorted lexicographically (itemset.Sort order); prevSet must
// contain at least the itemsets of prev (MIHP passes the accumulated F_{k-1}
// across partitions, which is a superset). It returns the surviving
// candidates in lexicographic order, the number of potential candidates the
// join produced, and the number removed by subset pruning.
func AprioriGen(prev []itemset.Itemset, prevSet *itemset.Set) (cands []itemset.Itemset, potential, pruned int) {
	if len(prev) == 0 {
		return nil, 0, 0
	}
	k := len(prev[0]) + 1
	subBuf := make(itemset.Itemset, k-1)
	candBuf := make(itemset.Itemset, k)
	var arena Arena
	// Joinable itemsets share their first k-2 items and are adjacent in
	// lexicographic order, so scan prefix groups.
	for lo := 0; lo < len(prev); {
		hi := lo + 1
		for hi < len(prev) && samePrefix(prev[lo], prev[hi]) {
			hi++
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				// prev is sorted, so within a prefix group the final items
				// are distinct and ascending: the join is the shared prefix
				// plus both final items in order.
				copy(candBuf, prev[i])
				candBuf[k-1] = prev[j][k-2]
				potential++
				if hasAllSubsetsBuf(candBuf, prevSet, subBuf) {
					c := arena.Alloc(k)
					copy(c, candBuf)
					cands = append(cands, c)
				} else {
					pruned++
				}
			}
		}
		lo = hi
	}
	return cands, potential, pruned
}

// PairTableOf packs the given 2-itemsets into a PairTable, the membership
// structure behind the k=3 join.
func PairTableOf(prev []itemset.Itemset) *PairTable {
	t := NewPairTable(len(prev))
	for _, p := range prev {
		t.AddPair(p[0], p[1])
	}
	return t
}

// Gen3 is AprioriGen specialized to k=3: prev holds frequent 2-itemsets in
// lexicographic order, all2 the membership table of every frequent
// 2-itemset usable for subset pruning (a superset of prev for MIHP, where
// pairs from already-processed partitions participate). It avoids the
// generic path's string-key subset checks — and, via the flat PairTable
// and arena-backed candidates, Go-map probe and per-candidate allocation
// overhead — which dominate real runtime at text-database F2 sizes.
func Gen3(prev []itemset.Itemset, all2 *PairTable) (cands []itemset.Itemset, potential, pruned int) {
	var arena Arena
	for lo := 0; lo < len(prev); {
		hi := lo + 1
		a := prev[lo][0]
		for hi < len(prev) && prev[hi][0] == a {
			hi++
		}
		for i := lo; i < hi; i++ {
			b := prev[i][1]
			for j := i + 1; j < hi; j++ {
				c := prev[j][1]
				potential++
				if all2.HasPair(b, c) {
					cand := arena.Alloc(3)
					cand[0], cand[1], cand[2] = a, b, c
					cands = append(cands, cand)
				} else {
					pruned++
				}
			}
		}
		lo = hi
	}
	return cands, potential, pruned
}

// samePrefix reports whether a and b (same length) agree on all but the
// final item.
func samePrefix(a, b itemset.Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasAllSubsetsBuf reports whether every (k-1)-subset of cand is in prevSet,
// writing scratch subsets into buf (len k-1). The two subsets obtained by
// dropping one of the final two items equal the join parents and are
// skipped.
func hasAllSubsetsBuf(cand itemset.Itemset, prevSet *itemset.Set, buf itemset.Itemset) bool {
	k := len(cand)
	for i := 0; i < k-2; i++ {
		copy(buf, cand[:i])
		copy(buf[i:], cand[i+1:])
		if !prevSet.Has(buf) {
			return false
		}
	}
	return true
}

package mining

import (
	"math"
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

// TestDenseCutoffSemantics pins the threshold resolution rules: the zero
// value selects the default, anything above 1 (and +Inf) disables bitmaps
// (cutoff beyond every possible df), DenseThresholdAll forces them (cutoff
// 1), and the cutoff never drops below one occurrence.
func TestDenseCutoffSemantics(t *testing.T) {
	const span = 1000
	if got, want := DenseCutoff(0, span), DenseCutoff(DefaultDenseThreshold, span); got != want {
		t.Fatalf("zero threshold resolved to cutoff %d, default gives %d", got, want)
	}
	if got := DenseCutoff(DefaultDenseThreshold, span); got != 63 { // ceil(1000/16)
		t.Fatalf("default cutoff over span %d = %d, want 63", span, got)
	}
	for _, th := range []float64{1.5, 2, math.Inf(1)} {
		if got := DenseCutoff(th, span); got != span+1 {
			t.Fatalf("threshold %v: cutoff %d, want %d (no list qualifies)", th, got, span+1)
		}
	}
	if got := DenseCutoff(DenseThresholdAll, span); got != 1 {
		t.Fatalf("DenseThresholdAll: cutoff %d, want 1 (every list qualifies)", got)
	}
	if got := DenseCutoff(0.5, 1); got != 1 {
		t.Fatalf("tiny span: cutoff %d, want clamp to 1", got)
	}
	if got := DenseCutoff(1, span); got != span {
		t.Fatalf("threshold 1: cutoff %d, want %d", got, span)
	}
}

// TestDenseCutoffMirrorsTxdbStats pins txdb's restated default threshold
// (txdb sits below mining in the dependency order, so the constant cannot
// be imported) to mining.DenseCutoff behaviorally: Stats.DenseItems must
// equal the number of items a default-configured hybrid posting build
// would store as bitmaps, including at the rounding boundary.
func TestDenseCutoffMirrorsTxdbStats(t *testing.T) {
	// 33 transactions: item 0 everywhere (density 1), item 1 in exactly
	// ceil(33/16) = 3 (right on the default cutoff), item 2 in 2 (just
	// below), item 3 once.
	var txs []txdb.Transaction
	for i := 0; i < 33; i++ {
		raw := []uint32{0}
		if i < 3 {
			raw = append(raw, 1)
		}
		if i < 2 {
			raw = append(raw, 2)
		}
		if i == 0 {
			raw = append(raw, 3)
		}
		txs = append(txs, txdb.Transaction{TID: txdb.TID(i), Items: itemset.New(raw...)})
	}
	db := txdb.New(txs, 4)
	stats := db.ComputeStats()

	cut := DenseCutoff(0, db.TIDSpan())
	dfs := make([]int, db.NumItems())
	for i := 0; i < db.Len(); i++ {
		for _, it := range db.ItemsOf(i) {
			dfs[it]++
		}
	}
	dense := 0
	for _, df := range dfs {
		if df >= cut {
			dense++
		}
	}
	if dense != 2 { // items 0 and 1
		t.Fatalf("expected items 0 and 1 dense at cutoff %d, counted %d", cut, dense)
	}
	if stats.DenseItems != dense {
		t.Fatalf("txdb Stats.DenseItems = %d, mining.DenseCutoff counts %d — the mirrored default thresholds diverged", stats.DenseItems, dense)
	}
	if stats.MaxDF != 33 || stats.TIDSpan != 33 || stats.MaxDensity != 1 {
		t.Fatalf("density profile: MaxDF=%d TIDSpan=%d MaxDensity=%g, want 33/33/1",
			stats.MaxDF, stats.TIDSpan, stats.MaxDensity)
	}
}

package mining

import (
	"reflect"
	"testing"
)

// TestMergeFieldSemantics audits every Metrics field Merge touches for
// sum-vs-max correctness. The table is exhaustive by construction: the
// test reflects over Metrics and fails if a field appears that the table
// does not classify, so adding a field without deciding its cross-node
// semantics is a test failure.
func TestMergeFieldSemantics(t *testing.T) {
	// How each field aggregates across nodes when Merge folds them.
	const (
		sum    = "sum"    // additive across nodes
		max    = "max"    // aggregate is the worst node
		skip   = "skip"   // not merged (identity/label fields)
		nested = "nested" // merged via its own method, asserted separately
	)
	semantics := map[string]string{
		"Algorithm":            skip, // label of the aggregate, not merged
		"Passes":               sum,
		"CandidatesByK":        nested, // per-k sums via AddCandidates
		"PrunedBySubset":       sum,
		"PrunedByTHT":          sum,
		"PrunedByBucket":       sum,
		"TrimmedItems":         sum,
		"PrunedTx":             sum,
		"PeakCandidateBytes":   max, // per-node budget: report the worst node
		"PeakHeldBytes":        sum, // nodes coexist: cluster-wide footprint
		"FPTreeNodes":          max,
		"GlobalCandidates":     sum,
		"PollRounds":           sum,
		"MessagesSent":         sum,
		"BytesSent":            sum,
		"WireMessagesSent":     sum,
		"WireMessagesReceived": sum,
		"WireBytesSent":        sum,
		"WireBytesReceived":    sum,
		"WireRetries":          sum,
		"WireSeconds":          sum,
		"Failovers":            sum,
		"ReassignedPartitions": sum,
		"RebalancedPartitions": sum,
		"ElasticResizes":       sum,
		"RecoverySeconds":      sum,
		"Work":                 nested, // Work.Add sums Units
	}

	mt := reflect.TypeOf(Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		name := mt.Field(i).Name
		if _, ok := semantics[name]; !ok {
			t.Errorf("Metrics field %s has no entry in the merge-semantics table: decide sum-vs-max and add it (and Merge)", name)
		}
	}
	for name := range semantics {
		if _, ok := mt.FieldByName(name); !ok {
			t.Errorf("merge-semantics table lists %s, which is not a Metrics field", name)
		}
	}
	if t.Failed() {
		return
	}

	// Build two metrics whose numeric fields are distinct values (7 vs 3)
	// so sum (10) and max (7) are distinguishable, then Merge and check
	// each field against its declared semantics.
	fill := func(v int64) Metrics {
		m := NewMetrics("node")
		mv := reflect.ValueOf(&m).Elem()
		for i := 0; i < mt.NumField(); i++ {
			f := mv.Field(i)
			switch mt.Field(i).Name {
			case "Algorithm", "CandidatesByK", "Work":
				continue
			}
			switch f.Kind() {
			case reflect.Int, reflect.Int64:
				f.SetInt(v)
			case reflect.Float64:
				f.SetFloat(float64(v))
			default:
				t.Fatalf("field %s has unhandled kind %s", mt.Field(i).Name, f.Kind())
			}
		}
		return m
	}
	a, b := fill(7), fill(3)
	a.AddCandidates(2, 7)
	b.AddCandidates(2, 3)
	b.AddCandidates(3, 5)
	a.Work.Charge(7, 1)
	b.Work.Charge(3, 1)

	a.Merge(&b)

	av := reflect.ValueOf(a)
	for i := 0; i < mt.NumField(); i++ {
		name := mt.Field(i).Name
		f := av.Field(i)
		var got float64
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			got = float64(f.Int())
		case reflect.Float64:
			got = f.Float()
		default:
			continue // Algorithm, CandidatesByK, Work handled below
		}
		switch semantics[name] {
		case sum:
			if got != 10 {
				t.Errorf("%s: Merge produced %v, semantics table says sum (want 10)", name, got)
			}
		case max:
			if got != 7 {
				t.Errorf("%s: Merge produced %v, semantics table says max (want 7)", name, got)
			}
		}
	}
	if a.Algorithm != "node" {
		t.Errorf("Algorithm mutated by Merge: %q", a.Algorithm)
	}
	if a.CandidatesByK[2] != 10 || a.CandidatesByK[3] != 5 {
		t.Errorf("CandidatesByK merged wrong: %v (want per-k sums 2:10 3:5)", a.CandidatesByK)
	}
	if a.Work.Units != 10 {
		t.Errorf("Work.Units = %d, want sum 10", a.Work.Units)
	}
}

// TestMergePeakHeldBytesSums pins the documented cross-node semantics of
// PeakHeldBytes specifically: nodes' resident structures coexist, so the
// cluster aggregate is the sum, NOT the max (the Merge doc comment used
// to claim "peak fields take the max", which was wrong for this field).
func TestMergePeakHeldBytesSums(t *testing.T) {
	a, b := NewMetrics("x"), NewMetrics("x")
	a.NoteHeldBytes(100)
	b.NoteHeldBytes(60)
	a.Merge(&b)
	if a.PeakHeldBytes != 160 {
		t.Fatalf("PeakHeldBytes after Merge = %d, want 160 (sum of coexisting nodes)", a.PeakHeldBytes)
	}
	if a.PeakCandidateBytes != 0 {
		t.Fatalf("PeakCandidateBytes = %d, want 0", a.PeakCandidateBytes)
	}
	c := NewMetrics("x")
	c.NoteCandidateBytes(50)
	d := NewMetrics("x")
	d.NoteCandidateBytes(80)
	c.Merge(&d)
	if c.PeakCandidateBytes != 80 {
		t.Fatalf("PeakCandidateBytes after Merge = %d, want max 80", c.PeakCandidateBytes)
	}
}

// Package mining defines the types shared by every miner in this module:
// run options, the mining result, the work/memory accounting that feeds the
// simulated-time cluster model, and a brute-force reference implementation
// used by the test suites as ground truth.
package mining

import (
	"errors"
	"fmt"
	"math"

	"pmihp/internal/itemset"
	"pmihp/internal/obs"
	"pmihp/internal/txdb"
)

// Options configures a mining run. Exactly one of MinSupFrac or MinSupCount
// should be set; a positive MinSupCount wins.
type Options struct {
	// MinSupFrac is the minimum support level as a fraction of the database
	// size (the paper writes 2% as "minimum support level of 2").
	MinSupFrac float64

	// MinSupCount is the absolute minimum support count; when positive it
	// overrides MinSupFrac (the paper's Corpus B run uses "a minimum support
	// count of 2 documents").
	MinSupCount int

	// MaxK bounds the size of mined itemsets; 0 means unbounded. The node
	// scaling experiments mine up to frequent 3-itemsets.
	MaxK int

	// PartitionSize is the number of frequent items per Multipass partition
	// (paper: 100). Ignored by the single-pass algorithms.
	PartitionSize int

	// THTEntries is the number of TID-hash-table slots per item for the
	// *global* table (paper: 400); each of N nodes builds a local table of
	// THTEntries/N slots. Ignored by non-IHP algorithms.
	THTEntries int

	// MemoryBudget caps the candidate memory a miner may hold at once, in
	// bytes; 0 means unlimited. Apriori and Count Distribution abort with
	// ErrMemoryExceeded when the candidate set outgrows the budget, which
	// reproduces the paper's observation that both were "not able to run
	// within the memory constraint of 416 Mbytes" below 2% support.
	MemoryBudget int64

	// DisableTrimming turns off transaction trimming/pruning in the miners
	// that support it (the A4 ablation).
	DisableTrimming bool

	// GlobalCandidateBatch is the number of accumulated global candidate
	// itemsets that triggers a PMIHP polling round (paper: 20,000).
	GlobalCandidateBatch int

	// Obs is the observability sink for per-pass events, spans, and poll
	// batches. nil (the default) disables observability entirely: emission
	// sites check Obs.Enabled() before constructing events or reading
	// clocks, so the disabled path costs no allocations on hot counting
	// loops. Obs never influences mining results, modeled work charges, or
	// metrics — it is a read-only tap.
	Obs *obs.Recorder

	// IntraNodeWorkers bounds the shared-memory parallelism each (simulated)
	// node applies to its counting scans: candidate counting passes, posting
	// construction, and the pass-1 THT build shard their transaction ranges
	// across up to this many OS-level workers. 0 selects GOMAXPROCS; 1
	// reproduces the serial kernels. The setting changes wall-clock time
	// only: per-shard counts merge by integer sums, so mining results and
	// simulated-clock charges are identical for every value. In a parallel
	// run the pool is divided among the simulated nodes, which already run
	// concurrently.
	IntraNodeWorkers int

	// DenseThreshold selects which posting lists the poll counter stores as
	// flat bitmaps instead of compressed delta-varint blocks: an item is
	// bitmap-backed when its document frequency is at least DenseThreshold
	// times the node's TID span. 0 (the zero value) selects
	// DefaultDenseThreshold; values above 1 (or +Inf) keep every list
	// compressed; DenseThresholdAll stores every list as a bitmap. Like
	// IntraNodeWorkers this is a physical-layout knob: intersection results
	// and the closed-form merge charges depend only on posting-list
	// cardinalities, so mining results and simulated-clock charges are
	// identical for every value — only wall-clock time and PeakHeldBytes
	// change.
	DenseThreshold float64

	// Partitioner selects how parallel miners split the database across
	// nodes: PartitionByCount (the zero value) reproduces the paper's
	// equal-document-count chronological split, PartitionByWork balances
	// the per-transaction estimated counting work instead. Frequent
	// itemsets are identical either way (PMIHP resolves global candidates
	// by exact polling); per-node work units and simulated seconds differ
	// by design — balancing them is what the work partitioner is for.
	Partitioner Partitioner
}

// DefaultDenseThreshold is the density (document frequency over TID span) at
// or above which a posting list is stored as a bitmap by default. At 1/16
// density a bitmap costs at most 4x the worst-case 4-byte-per-TID flat list
// while word-wise AND+POPCNT processes 64 candidate TIDs per word — well past
// the measured crossover of the block kernels (see the kernel-crossover
// report in internal/core).
const DefaultDenseThreshold = 1.0 / 16

// DenseThresholdAll is the resolved form of an "all bitmap" request: a
// threshold so small that every non-empty posting list qualifies (the zero
// value of Options.DenseThreshold is reserved for "use the default").
const DenseThresholdAll = 1e-300

// DenseCutoff resolves a DenseThreshold against a TID span into the absolute
// document frequency at or above which a posting list is bitmap-backed. A
// return above span means no list qualifies.
func DenseCutoff(threshold float64, span int) int {
	if threshold == 0 {
		threshold = DefaultDenseThreshold
	}
	if threshold > 1 || math.IsInf(threshold, 1) {
		return span + 1
	}
	c := int(math.Ceil(threshold * float64(span)))
	if c < 1 {
		c = 1
	}
	return c
}

// Workers resolves IntraNodeWorkers (0 means GOMAXPROCS).
func (o Options) Workers() int { return ResolveWorkers(o.IntraNodeWorkers) }

// MinCount resolves the options against a database size.
func (o Options) MinCount(dbLen int) int {
	if o.MinSupCount > 0 {
		return o.MinSupCount
	}
	n := int(o.MinSupFrac*float64(dbLen) + 0.999999)
	if n < 1 {
		n = 1
	}
	return n
}

// WithDefaults fills unset tuning fields with the paper's values.
func (o Options) WithDefaults() Options {
	if o.PartitionSize <= 0 {
		o.PartitionSize = 100
	}
	if o.THTEntries <= 0 {
		o.THTEntries = 400
	}
	if o.GlobalCandidateBatch <= 0 {
		o.GlobalCandidateBatch = 20000
	}
	return o
}

// ErrMemoryExceeded is returned when a miner's candidate memory outgrows
// Options.MemoryBudget.
var ErrMemoryExceeded = errors.New("mining: candidate memory exceeds budget")

// IsMemoryErr reports whether err is (or wraps) ErrMemoryExceeded.
func IsMemoryErr(err error) bool { return errors.Is(err, ErrMemoryExceeded) }

// Result is the outcome of a mining run.
type Result struct {
	// Frequent holds every frequent itemset with its support count, in
	// deterministic order (descending count, then lexicographic).
	Frequent []itemset.Counted

	// Metrics is the run's work and candidate accounting.
	Metrics Metrics
}

// FrequentOfSize returns the frequent k-itemsets in the result.
func (r *Result) FrequentOfSize(k int) []itemset.Counted {
	var out []itemset.Counted
	for _, c := range r.Frequent {
		if len(c.Set) == k {
			out = append(out, c)
		}
	}
	return out
}

// CountByK tallies frequent itemsets per size.
func (r *Result) CountByK() map[int]int {
	m := make(map[int]int)
	for _, c := range r.Frequent {
		m[len(c.Set)]++
	}
	return m
}

// Set returns the result's itemsets as a membership set (for equivalence
// checks between miners).
func (r *Result) Set() *itemset.Set {
	s := itemset.NewSet()
	for _, c := range r.Frequent {
		s.Add(c.Set)
	}
	return s
}

// SameFrequentSets reports whether two results found exactly the same
// frequent itemsets with the same supports, and if not, describes the first
// difference found.
func SameFrequentSets(a, b *Result) (bool, string) {
	am := make(map[string]int, len(a.Frequent))
	for _, c := range a.Frequent {
		am[c.Set.Key()] = c.Count
	}
	if len(am) != len(a.Frequent) {
		return false, fmt.Sprintf("first result lists %d itemsets but only %d distinct (duplicates)", len(a.Frequent), len(am))
	}
	bm := make(map[string]int, len(b.Frequent))
	for _, c := range b.Frequent {
		bm[c.Set.Key()] = c.Count
	}
	if len(bm) != len(b.Frequent) {
		return false, fmt.Sprintf("second result lists %d itemsets but only %d distinct (duplicates)", len(b.Frequent), len(bm))
	}
	for k, av := range am {
		bv, ok := bm[k]
		if !ok {
			return false, fmt.Sprintf("itemset %v (count %d) missing from second result", itemset.FromKey(k), av)
		}
		if av != bv {
			return false, fmt.Sprintf("itemset %v counts differ: %d vs %d", itemset.FromKey(k), av, bv)
		}
	}
	for k, bv := range bm {
		if _, ok := am[k]; !ok {
			return false, fmt.Sprintf("itemset %v (count %d) missing from first result", itemset.FromKey(k), bv)
		}
	}
	return true, ""
}

// CountSupport scans the database and returns the exact support of the
// itemset — the ground-truth oracle for tests and for PMIHP poll replies.
func CountSupport(db *txdb.DB, x itemset.Itemset) int {
	n := 0
	db.Each(func(t *txdb.Transaction) {
		if x.SubsetOf(t.Items) {
			n++
		}
	})
	return n
}

// BruteForce enumerates every frequent itemset of the database by levelwise
// exhaustive counting (no pruning beyond Apriori closure). It is the
// reference implementation the integration tests compare the real miners
// against; use only on small databases.
func BruteForce(db *txdb.DB, opts Options) *Result {
	minCount := opts.MinCount(db.Len())
	counts := db.ItemCounts()
	var frequent []itemset.Counted
	prev := make([]itemset.Itemset, 0)
	for it, c := range counts {
		if c >= minCount {
			is := itemset.Itemset{itemset.Item(it)}
			frequent = append(frequent, itemset.Counted{Set: is, Count: c})
			prev = append(prev, is)
		}
	}
	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		prevSet := itemset.SetOf(prev...)
		seen := itemset.NewSet()
		var next []itemset.Itemset
		for i := 0; i < len(prev); i++ {
			for j := i + 1; j < len(prev); j++ {
				cand, ok := itemset.Join(prev[i], prev[j])
				if !ok || seen.Has(cand) {
					continue
				}
				seen.Add(cand)
				allFreq := true
				cand.EachSubset(func(sub itemset.Itemset) bool {
					if !prevSet.Has(sub) {
						allFreq = false
						return false
					}
					return true
				})
				if !allFreq {
					continue
				}
				if c := CountSupport(db, cand); c >= minCount {
					frequent = append(frequent, itemset.Counted{Set: cand, Count: c})
					next = append(next, cand)
				}
			}
		}
		prev = next
	}
	itemset.SortCounted(frequent)
	return &Result{Frequent: frequent}
}

package mining

import "fmt"

// The cost model. Every miner charges work units for the operations that
// dominated runtime on the paper's testbed; the simulated cluster converts
// accumulated units into simulated seconds. Constants are relative weights —
// absolute calibration is a single UnitsPerSecond scale, so changing them
// rescales every curve but cannot change which algorithm wins (the
// experiments compare identical operations across algorithms).
const (
	// CostScanItem: visiting one item of one transaction during a counting
	// pass over the database.
	CostScanItem = 2
	// CostCandidateHit: incrementing one candidate counter after a match.
	CostCandidateHit = 4
	// CostCandidateGen: generating one potential candidate (join plus
	// subset-infrequency checks).
	CostCandidateGen = 8
	// CostTHTSlot: examining one TID-hash-table slot in a MaxPossible bound.
	CostTHTSlot = 1
	// CostTreeInsert: inserting one candidate into a hash tree.
	CostTreeInsert = 6
	// CostFPNode: creating or walking one FP-tree node.
	CostFPNode = 10
	// CostBucket: one DHP hash-bucket increment or probe.
	CostBucket = 1

	// UnitsPerSecond converts work units to simulated seconds, calibrated to
	// the paper's 800 MHz Pentium III running interpreted-JIT Java over RMI.
	UnitsPerSecond = 2_000_000
)

// Pass2TreeFanout is the number of leaf buckets of a depth-2 hash tree
// (Fanout² with the tree's fanout of 8). The k=2 counting passes are
// physically executed with sparse pair maps (candidate sets of millions of
// pairs would make real leaf scans intractable on this host), but they are
// *charged* as the equivalent hash-tree scan: per transaction, up to
// Pass2TreeFanout leaf visits, each examining candidates/Pass2TreeFanout
// leaf entries. This keeps the k=2 cost structurally identical to the
// instrumented tree used for k >= 3 (hashtree.WalkCost) — and it is this
// leaf-scan term, growing linearly with the candidate-set size, that makes
// Apriori collapse on text databases while MIHP's THT-pruned candidate sets
// stay cheap.
const Pass2TreeFanout = 64

// Pass2TreeCharge returns the modeled hash-tree scan cost of counting one
// transaction with flen frequent items against nCands candidate pairs.
func Pass2TreeCharge(flen, nCands int) int64 {
	if flen < 2 || nCands == 0 {
		return 0
	}
	paths := flen * (flen - 1) / 2
	if paths > Pass2TreeFanout {
		paths = Pass2TreeFanout
	}
	leaf := nCands/Pass2TreeFanout + 1
	return int64(paths) * int64(leaf)
}

// Work accumulates cost-model charges.
type Work struct {
	Units int64
}

// Charge adds n operations of the given unit cost.
func (w *Work) Charge(n int64, cost int64) { w.Units += n * cost }

// Add merges another accounting into this one.
func (w *Work) Add(o Work) { w.Units += o.Units }

// Seconds converts the accumulated units to simulated seconds.
func (w Work) Seconds() float64 { return float64(w.Units) / UnitsPerSecond }

// Metrics is the per-run (or per-node) accounting every miner fills in.
type Metrics struct {
	Algorithm string

	// Passes is the number of counting scans over the (working) database.
	Passes int

	// CandidatesByK counts the candidate k-itemsets actually counted in
	// scans, per k — the quantity Figures 10 and 11 report.
	CandidatesByK map[int]int

	// PrunedBySubset counts potential candidates dropped by the
	// subset-infrequency check; PrunedByTHT those dropped by the IHP bound;
	// PrunedByBucket those dropped by DHP hash buckets.
	PrunedBySubset int64
	PrunedByTHT    int64
	PrunedByBucket int64

	// TrimmedItems and PrunedTx account transaction trimming/pruning.
	TrimmedItems int64
	PrunedTx     int64

	// PeakCandidateBytes is the high-water estimate of resident candidate
	// memory, compared against Options.MemoryBudget.
	PeakCandidateBytes int64

	// PeakHeldBytes is the high-water resident size of the long-lived data
	// structures owned by this accounting's holder (CSR database and working
	// copy, THT matrices, compressed inverted file, candidate structures),
	// summed from the structures' deterministic MemBytes methods rather than
	// measured from the Go heap — so it is exactly reproducible across runs
	// and machines. Node structures coexist for the whole run, so Merge sums
	// this field: the aggregate is the cluster-wide resident footprint.
	PeakHeldBytes int64

	// FPTreeNodes is the peak node count across all (conditional) FP-trees.
	FPTreeNodes int64

	// Parallel-run fields.
	GlobalCandidates int   // PMIHP global candidates sent to polls
	PollRounds       int   // PMIHP polling rounds
	MessagesSent     int   // fabric messages originated by this node
	BytesSent        int64 // fabric bytes originated by this node

	// Real-wire fields, filled by the multi-process cluster runtime
	// (internal/distmine) from measured TCP traffic. Zero in simulated
	// runs; they coexist with the modeled MessagesSent/BytesSent above so
	// model and measurement can be compared side by side.
	WireMessagesSent     int64
	WireMessagesReceived int64
	WireBytesSent        int64
	WireBytesReceived    int64
	WireRetries          int64
	// WireSeconds is measured wall-clock spent in exchange collectives
	// and candidate polling, summed over the run's phases.
	WireSeconds float64

	// Recovery fields, filled by the coordinator when a cluster session
	// survives worker failures. Failovers counts detected node deaths
	// that were recovered from; ReassignedPartitions counts the logical
	// partitions (transaction shards) moved to surviving or respawned
	// workers; RebalancedPartitions counts partitions moved off live but
	// lagging workers by the straggler detector (never counted as
	// failovers — the slow worker stays alive); RecoverySeconds is
	// wall-clock spent detecting failures and restarting from
	// checkpoints, excluded from WireSeconds.
	// ElasticResizes counts mid-run roster changes (repartition at a
	// checkpoint barrier onto a grown or shrunk logical-node count) —
	// requested by the scheduler or taken by the straggler detector when
	// idle pool workers were available to re-split onto.
	Failovers            int
	ReassignedPartitions int
	RebalancedPartitions int
	ElasticResizes       int
	RecoverySeconds      float64

	Work Work
}

// NewMetrics returns a Metrics for the named algorithm.
func NewMetrics(algorithm string) Metrics {
	return Metrics{Algorithm: algorithm, CandidatesByK: make(map[int]int)}
}

// AddCandidates records n candidate k-itemsets entering a counting scan.
func (m *Metrics) AddCandidates(k, n int) {
	if m.CandidatesByK == nil {
		m.CandidatesByK = make(map[int]int)
	}
	m.CandidatesByK[k] += n
}

// Candidates returns the total candidates counted across all k.
func (m *Metrics) Candidates() int {
	n := 0
	for _, c := range m.CandidatesByK {
		n += c
	}
	return n
}

// NoteCandidateBytes raises the peak candidate memory estimate.
func (m *Metrics) NoteCandidateBytes(b int64) {
	if b > m.PeakCandidateBytes {
		m.PeakCandidateBytes = b
	}
}

// NoteHeldBytes raises the peak resident-structure estimate.
func (m *Metrics) NoteHeldBytes(b int64) {
	if b > m.PeakHeldBytes {
		m.PeakHeldBytes = b
	}
}

// Merge folds per-node metrics into an aggregate. Almost every field sums:
// counts, modeled work, measured wire traffic and timings, and recovery
// accounting are all additive across nodes. Two structural peaks take the
// max instead — PeakCandidateBytes (the candidate budget is a per-node
// limit, so the aggregate reports the worst node) and FPTreeNodes.
// PeakHeldBytes deliberately SUMS: node-resident structures coexist for
// the whole run, so the aggregate is the cluster-wide resident footprint
// (see the field comment). TestMergeFieldSemantics audits every field.
func (m *Metrics) Merge(o *Metrics) {
	m.Passes += o.Passes
	for k, n := range o.CandidatesByK {
		m.AddCandidates(k, n)
	}
	m.PrunedBySubset += o.PrunedBySubset
	m.PrunedByTHT += o.PrunedByTHT
	m.PrunedByBucket += o.PrunedByBucket
	m.TrimmedItems += o.TrimmedItems
	m.PrunedTx += o.PrunedTx
	if o.PeakCandidateBytes > m.PeakCandidateBytes {
		m.PeakCandidateBytes = o.PeakCandidateBytes
	}
	m.PeakHeldBytes += o.PeakHeldBytes
	if o.FPTreeNodes > m.FPTreeNodes {
		m.FPTreeNodes = o.FPTreeNodes
	}
	m.GlobalCandidates += o.GlobalCandidates
	m.PollRounds += o.PollRounds
	m.MessagesSent += o.MessagesSent
	m.BytesSent += o.BytesSent
	m.WireMessagesSent += o.WireMessagesSent
	m.WireMessagesReceived += o.WireMessagesReceived
	m.WireBytesSent += o.WireBytesSent
	m.WireBytesReceived += o.WireBytesReceived
	m.WireRetries += o.WireRetries
	m.WireSeconds += o.WireSeconds
	m.Failovers += o.Failovers
	m.ReassignedPartitions += o.ReassignedPartitions
	m.RebalancedPartitions += o.RebalancedPartitions
	m.ElasticResizes += o.ElasticResizes
	m.RecoverySeconds += o.RecoverySeconds
	m.Work.Add(o.Work)
}

// CandidateBytes estimates the resident size of n candidate k-itemsets in a
// counting structure (itemset storage plus hash-tree overhead), mirroring
// the paper's observation that candidate memory is the limiting factor for
// Apriori and Count Distribution.
func CandidateBytes(k, n int) int64 {
	per := int64(4*k + 40)
	return per * int64(n)
}

// String summarizes the metrics for logs.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s: passes=%d candidates=%d work=%.1fs peakMB=%.1f",
		m.Algorithm, m.Passes, m.Candidates(), m.Work.Seconds(),
		float64(m.PeakCandidateBytes)/(1<<20))
}

// Package stats provides the small statistical helpers the experiment
// harness uses for reporting: central moments, medians, speedup and
// efficiency series.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Speedup returns base/t for each t, the speedup series of Figure 7.
// Non-positive times yield 0 rather than infinities.
func Speedup(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}

// Efficiency returns speedup divided by the node count for each entry.
func Efficiency(speedups []float64, nodes []int) []float64 {
	out := make([]float64, len(speedups))
	for i := range speedups {
		if i < len(nodes) && nodes[i] > 0 {
			out[i] = speedups[i] / float64(nodes[i])
		}
	}
	return out
}

// GrowthRates returns s[i]/s[i-1] for i >= 1 — the paper discusses the
// "increasing rate of the speedup" as the node count doubles.
func GrowthRates(s []float64) []float64 {
	if len(s) < 2 {
		return nil
	}
	out := make([]float64, 0, len(s)-1)
	for i := 1; i < len(s); i++ {
		if s[i-1] > 0 {
			out = append(out, s[i]/s[i-1])
		} else {
			out = append(out, 0)
		}
	}
	return out
}

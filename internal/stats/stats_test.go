package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Fatal("constant series has nonzero stddev")
	}
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Fatalf("StdDev = %g", StdDev([]float64{1, 3}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("singleton stddev")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("Median(nil)")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestSpeedup(t *testing.T) {
	got := Speedup(80, []float64{80, 48.5, 21.3, 0})
	if !almost(got[0], 1) || !almost(got[1], 80/48.5) || got[3] != 0 {
		t.Fatalf("Speedup = %v", got)
	}
}

func TestEfficiency(t *testing.T) {
	got := Efficiency([]float64{1, 1.88, 4.29}, []int{1, 2, 4})
	if !almost(got[2], 4.29/4) {
		t.Fatalf("Efficiency = %v", got)
	}
}

func TestGrowthRates(t *testing.T) {
	got := GrowthRates([]float64{1, 1.65, 3.76})
	if len(got) != 2 || !almost(got[0], 1.65) || !almost(got[1], 3.76/1.65) {
		t.Fatalf("GrowthRates = %v", got)
	}
	if GrowthRates([]float64{1}) != nil {
		t.Fatal("short series should give nil")
	}
	zero := GrowthRates([]float64{0, 5})
	if zero[0] != 0 {
		t.Fatal("division by zero not guarded")
	}
}

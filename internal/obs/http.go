package obs

import (
	"cmp"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"slices"
	"sync"
	"sync/atomic"
)

// currentRecorder backs the process-global "pmihp" expvar: expvar only
// supports one publication per name per process, so Handler points it
// at the most recently served recorder.
var currentRecorder atomic.Pointer[Recorder]

var publishPmihpVar = sync.OnceFunc(func() {
	expvar.Publish("pmihp", expvar.Func(func() any {
		return currentRecorder.Load().Snap()
	}))
})

// Handler returns the endpoint mux for the recorder:
//
//	/metrics      Prometheus text exposition of the live gauges
//	/snapshot     the same aggregates as one JSON object
//	/debug/vars   expvar JSON (standard vars plus the "pmihp" snapshot)
//	/debug/pprof  the standard Go profiling handlers
//
// The endpoint is unauthenticated and must only be bound to trusted
// interfaces (loopback, or a private cluster network) — pprof exposes
// heap and CPU profiles of the process.
func (r *Recorder) Handler() http.Handler {
	currentRecorder.Store(r)
	publishPmihpVar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, r.Snap())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Snap())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (host:0 picks a free port) and serves the recorder's
// endpoint until the returned stop function is called. It returns the
// bound address.
func Serve(addr string, r *Recorder) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// writeProm renders the snapshot in the Prometheus text format.
func writeProm(w http.ResponseWriter, s Snapshot) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("pmihp_passes_total", "Counting passes completed across all nodes.")
	fmt.Fprintf(w, "pmihp_passes_total %d\n", s.Passes)

	counter("pmihp_candidates_total", "Candidate itemsets counted by miners, by itemset size.")
	for _, k := range sortedKeys(s.CandidatesByK) {
		fmt.Fprintf(w, "pmihp_candidates_total{k=\"%d\"} %d\n", k, s.CandidatesByK[k])
	}
	counter("pmihp_polled_candidates_total", "Candidate itemsets counted by the poll service, by itemset size.")
	for _, k := range sortedKeys(s.PolledByK) {
		fmt.Fprintf(w, "pmihp_polled_candidates_total{k=\"%d\"} %d\n", k, s.PolledByK[k])
	}

	counter("pmihp_pruned_tht_total", "Candidates pruned by the IHP THT bound.")
	fmt.Fprintf(w, "pmihp_pruned_tht_total %d\n", s.PrunedTHT)
	counter("pmihp_pruned_subset_total", "Candidates pruned by the subset-infrequency check.")
	fmt.Fprintf(w, "pmihp_pruned_subset_total %d\n", s.PrunedSubset)
	counter("pmihp_trimmed_items_total", "Items removed by transaction trimming.")
	fmt.Fprintf(w, "pmihp_trimmed_items_total %d\n", s.TrimmedItems)
	counter("pmihp_pruned_tx_total", "Transactions pruned from working copies.")
	fmt.Fprintf(w, "pmihp_pruned_tx_total %d\n", s.PrunedTx)

	counter("pmihp_scan_seconds_total", "Wall clock spent in counting scans.")
	fmt.Fprintf(w, "pmihp_scan_seconds_total %g\n", s.ScanSeconds)
	counter("pmihp_exchange_seconds_total", "Per-pass collective time attached to pass events.")
	fmt.Fprintf(w, "pmihp_exchange_seconds_total %g\n", s.ExchSeconds)
	counter("pmihp_wire_bytes_total", "Wire bytes attributed to recorded events.")
	fmt.Fprintf(w, "pmihp_wire_bytes_total %d\n", s.WireBytes)

	counter("pmihp_span_seconds_total", "Wall clock by span name (collectives, checkpoints, recovery).")
	for _, name := range sortedKeys(s.SpanSeconds) {
		fmt.Fprintf(w, "pmihp_span_seconds_total{name=%q} %g\n", name, s.SpanSeconds[name])
	}
	counter("pmihp_span_count_total", "Completed spans by name.")
	for _, name := range sortedKeys(s.SpanCount) {
		fmt.Fprintf(w, "pmihp_span_count_total{name=%q} %d\n", name, s.SpanCount[name])
	}
	counter("pmihp_span_bytes_total", "Wire bytes by span name.")
	for _, name := range sortedKeys(s.SpanBytes) {
		fmt.Fprintf(w, "pmihp_span_bytes_total{name=%q} %d\n", name, s.SpanBytes[name])
	}

	gauge("pmihp_pass_current", "Latest counting-pass itemset size per node.")
	for _, n := range sortedKeys(s.PassK) {
		fmt.Fprintf(w, "pmihp_pass_current{node=\"%d\"} %d\n", n, s.PassK[n])
	}
	gauge("pmihp_heartbeat_age_seconds", "Seconds since the last control-plane frame per node.")
	for _, n := range sortedKeys(s.BeatAge) {
		fmt.Fprintf(w, "pmihp_heartbeat_age_seconds{node=\"%d\"} %g\n", n, s.BeatAge[n])
	}
	for _, name := range sortedKeys(s.Gauges) {
		gauge("pmihp_"+name, "Cluster-level gauge.")
		fmt.Fprintf(w, "pmihp_%s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.NodeGauges) {
		gauge("pmihp_"+name, "Per-node gauge.")
		for _, n := range sortedKeys(s.NodeGauges[name]) {
			fmt.Fprintf(w, "pmihp_%s{node=\"%d\"} %d\n", name, n, s.NodeGauges[name][n])
		}
	}
	for _, name := range sortedKeys(s.FloatGauges) {
		gauge("pmihp_"+name, "Cluster-level gauge.")
		fmt.Fprintf(w, "pmihp_%s %g\n", name, s.FloatGauges[name])
	}
	for _, name := range sortedKeys(s.NodeFloats) {
		gauge("pmihp_"+name, "Per-node gauge.")
		for _, n := range sortedKeys(s.NodeFloats[name]) {
			fmt.Fprintf(w, "pmihp_%s{node=\"%d\"} %g\n", name, n, s.NodeFloats[name][n])
		}
	}
}

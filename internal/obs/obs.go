// Package obs is the observability layer of the mining runtime: a
// structured per-pass event log, span-style timers around the cluster
// collectives, and live gauges served over HTTP (see http.go) or written
// as a JSON-lines trace (see trace.go).
//
// The paper's whole evaluation (Figures 4–11) is about where time goes —
// candidates per pass, pruning effectiveness, exchange vs. scan time —
// so the runtime emits exactly those quantities while it runs instead of
// only a post-hoc Metrics struct.
//
// Everything is driven through a *Recorder. A nil *Recorder is the
// disabled state and every method is a nil-check away from returning:
// emission sites guard their event construction behind Enabled(), so a
// disabled run performs no timing calls and no allocations on the hot
// counting paths (pinned by TestDisabledRecorderAllocs).
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// PassEvent describes one counting pass over the (working) database at
// one node: the quantities behind Figures 6–11.
type PassEvent struct {
	// Node is the emitting node's id; Partition the Multipass partition
	// index being mined (-1 when the algorithm has no partitions, e.g.
	// Count Distribution); K the candidate itemset size of the pass.
	Node      int `json:"node"`
	Partition int `json:"partition"`
	K         int `json:"k"`

	// Candidates is the number of candidate k-itemsets actually counted;
	// PrunedTHT / PrunedSubset the candidates dropped by the IHP bound
	// and the subset-infrequency check before the scan.
	Candidates   int   `json:"candidates"`
	PrunedTHT    int64 `json:"pruned_tht"`
	PrunedSubset int64 `json:"pruned_subset"`

	// TrimmedItems / PrunedTx account the transaction trimming and
	// pruning this pass performed.
	TrimmedItems int64 `json:"trimmed_items"`
	PrunedTx     int64 `json:"pruned_tx"`

	// ScanSeconds is measured wall clock of the counting scan.
	// ExchangeSeconds is the collective time attached to this pass
	// (Count Distribution's per-pass all-reduce; 0 for PMIHP, whose
	// collectives are span events instead). WireBytes is the wire
	// traffic of that collective when one exists.
	ScanSeconds     float64 `json:"scan_seconds"`
	ExchangeSeconds float64 `json:"exchange_seconds,omitempty"`
	WireBytes       int64   `json:"wire_bytes,omitempty"`
}

// SpanEvent is one timed operation: an all-gather round, a candidate
// polling phase, a checkpoint write, a resume barrier, a recovery
// attempt.
type SpanEvent struct {
	// Name identifies the operation, by convention "group:detail"
	// (e.g. "exchange:item-counts", "checkpoint:write",
	// "recovery:attempt").
	Name string `json:"name"`
	// Node is the logical node the span belongs to (-1 for
	// coordinator-level spans). Daemon attributes the process, when the
	// recorder knows it (see SetDaemon).
	Node   int    `json:"node"`
	Daemon string `json:"daemon,omitempty"`
	// Seconds is the measured wall clock; Bytes the wire traffic the
	// operation moved (when applicable); Err a terse failure note.
	Seconds float64 `json:"seconds"`
	Bytes   int64   `json:"bytes,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// PollEvent is one served candidate-poll batch: the poll-service side of
// the counting work, kept separate from PassEvents so miner-side and
// server-side candidate totals reconcile against mining.Metrics.
type PollEvent struct {
	Node int `json:"node"`
	K    int `json:"k"`
	Sets int `json:"sets"`
}

// Event is one record of the trace stream. Exactly one of the payload
// pointers is set, matching Type.
type Event struct {
	Type string     `json:"type"` // "pass" | "span" | "poll"
	Pass *PassEvent `json:"pass,omitempty"`
	Span *SpanEvent `json:"span,omitempty"`
	Poll *PollEvent `json:"poll,omitempty"`
}

// Event type names.
const (
	TypePass = "pass"
	TypeSpan = "span"
	TypePoll = "poll"
)

// Config configures a Recorder.
type Config struct {
	// Writer, when non-nil, receives every event as one JSON line
	// (the -trace-json stream). Write errors are sticky: the first one
	// is kept (see Err) and further writes stop.
	Writer io.Writer
	// Keep retains every event in memory for Events(); tests and the
	// golden-file suite use it. Long production runs should prefer the
	// Writer stream.
	Keep bool
}

// Recorder collects events and maintains the aggregate gauges the HTTP
// endpoint serves. All methods are safe for concurrent use and safe on
// a nil receiver (the disabled fast path).
type Recorder struct {
	mu     sync.Mutex
	cfg    Config
	werr   error
	events []Event
	daemon string

	// Aggregates, all guarded by mu. Event emission is per pass / per
	// collective, far off the counting hot paths, so a mutex is cheap.
	passes       int64
	candByK      map[int]int64
	pollByK      map[int]int64
	prunedTHT    int64
	prunedSubset int64
	trimmedItems int64
	prunedTx     int64
	scanSeconds  float64
	exchSeconds  float64
	wireBytes    int64
	spanSeconds  map[string]float64
	spanCount    map[string]int64
	spanBytes    map[string]int64
	passK        map[int]int // node -> k of its latest pass
	beats        map[int]time.Time
	gauges       map[string]int64
	nodeGauges   map[string]map[int]int64
	floatGauges  map[string]float64
	nodeFloats   map[string]map[int]float64
}

// New returns a live Recorder.
func New(cfg Config) *Recorder {
	return &Recorder{
		cfg:         cfg,
		candByK:     make(map[int]int64),
		pollByK:     make(map[int]int64),
		spanSeconds: make(map[string]float64),
		spanCount:   make(map[string]int64),
		spanBytes:   make(map[string]int64),
		passK:       make(map[int]int),
		beats:       make(map[int]time.Time),
		gauges:      make(map[string]int64),
		nodeGauges:  make(map[string]map[int]int64),
		floatGauges: make(map[string]float64),
		nodeFloats:  make(map[string]map[int]float64),
	}
}

// Enabled reports whether the recorder is live. Emission sites use it
// to skip event construction (and the time.Now calls feeding it)
// entirely when observability is off.
func (r *Recorder) Enabled() bool { return r != nil }

// SetDaemon sets the process label stamped on every subsequent span
// (a daemon's listen address, or "coordinator").
func (r *Recorder) SetDaemon(label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.daemon = label
	r.mu.Unlock()
}

// Pass records one counting pass.
func (r *Recorder) Pass(ev PassEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.passes++
	r.candByK[ev.K] += int64(ev.Candidates)
	r.prunedTHT += ev.PrunedTHT
	r.prunedSubset += ev.PrunedSubset
	r.trimmedItems += ev.TrimmedItems
	r.prunedTx += ev.PrunedTx
	r.scanSeconds += ev.ScanSeconds
	r.exchSeconds += ev.ExchangeSeconds
	r.wireBytes += ev.WireBytes
	r.passK[ev.Node] = ev.K
	if r.retainsLocked() {
		// Copy inside the guard so the parameter itself never escapes:
		// a nil-receiver call must stay allocation-free.
		p := ev
		r.appendLocked(Event{Type: TypePass, Pass: &p})
	}
	r.mu.Unlock()
}

// Poll records one served candidate-poll batch.
func (r *Recorder) Poll(ev PollEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.pollByK[ev.K] += int64(ev.Sets)
	if r.retainsLocked() {
		p := ev
		r.appendLocked(Event{Type: TypePoll, Poll: &p})
	}
	r.mu.Unlock()
}

// RecordSpan records an operation whose duration was measured by the
// caller (the runtime reuses the exact timings it already feeds into
// mining.Metrics, so trace replays reconcile to the metric totals
// instead of drifting by an independent clock read).
func (r *Recorder) RecordSpan(ev SpanEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if ev.Daemon == "" {
		ev.Daemon = r.daemon
	}
	r.spanSeconds[ev.Name] += ev.Seconds
	r.spanCount[ev.Name]++
	r.spanBytes[ev.Name] += ev.Bytes
	r.wireBytes += ev.Bytes
	if r.retainsLocked() {
		p := ev
		r.appendLocked(Event{Type: TypeSpan, Span: &p})
	}
	r.mu.Unlock()
}

// Span is an in-flight timer returned by StartSpan. The zero Span (from
// a nil recorder) is inert.
type Span struct {
	r    *Recorder
	name string
	node int
	t0   time.Time
}

// StartSpan starts a timer for the named operation at the given node.
func (r *Recorder) StartSpan(name string, node int) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, node: node, t0: time.Now()}
}

// End finishes the span.
func (s Span) End() { s.finish(0, nil) }

// EndBytes finishes the span, attributing wire bytes to it.
func (s Span) EndBytes(bytes int64) { s.finish(bytes, nil) }

// EndErr finishes the span, recording a failure.
func (s Span) EndErr(err error) { s.finish(0, err) }

func (s Span) finish(bytes int64, err error) {
	if s.r == nil {
		return
	}
	ev := SpanEvent{
		Name:    s.name,
		Node:    s.node,
		Seconds: time.Since(s.t0).Seconds(),
		Bytes:   bytes,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.r.RecordSpan(ev)
}

// Beat records a liveness sign from the node (the coordinator feeds it
// from every control-plane frame it reads).
func (r *Recorder) Beat(node int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.beats[node] = time.Now()
	r.mu.Unlock()
}

// SetGauge sets a named cluster-level gauge (e.g. "failovers_total",
// "checkpoint_stage").
func (r *Recorder) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// SetNodeGauge sets a named per-node gauge (e.g. "peak_held_bytes").
func (r *Recorder) SetNodeGauge(name string, node int, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	m := r.nodeGauges[name]
	if m == nil {
		m = make(map[int]int64)
		r.nodeGauges[name] = m
	}
	m[node] = v
	r.mu.Unlock()
}

// SetFloatGauge sets a named cluster-level float gauge (e.g.
// "pass_imbalance_ratio").
func (r *Recorder) SetFloatGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.floatGauges[name] = v
	r.mu.Unlock()
}

// SetNodeFloatGauge sets a named per-node float gauge (e.g.
// "busy_seconds", "idle_seconds").
func (r *Recorder) SetNodeFloatGauge(name string, node int, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	m := r.nodeFloats[name]
	if m == nil {
		m = make(map[int]float64)
		r.nodeFloats[name] = m
	}
	m[node] = v
	r.mu.Unlock()
}

// Events returns a copy of the retained event stream (Config.Keep).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Err returns the first trace-write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.werr
}

// retainsLocked reports whether events need materializing at all
// (retained in memory or streamed as JSON lines); r.mu is held.
func (r *Recorder) retainsLocked() bool {
	return r.cfg.Keep || (r.cfg.Writer != nil && r.werr == nil)
}

// appendLocked stores and/or streams one event; r.mu is held.
func (r *Recorder) appendLocked(e Event) {
	if r.cfg.Keep {
		r.events = append(r.events, e)
	}
	if r.cfg.Writer != nil && r.werr == nil {
		if err := writeEventLine(r.cfg.Writer, e); err != nil {
			r.werr = fmt.Errorf("obs: writing trace event: %w", err)
		}
	}
}

// Snapshot is a point-in-time copy of the recorder's aggregates, the
// basis of both the Prometheus text and the expvar JSON endpoints.
type Snapshot struct {
	Passes        int64                      `json:"passes"`
	CandidatesByK map[int]int64              `json:"candidates_by_k"`
	PolledByK     map[int]int64              `json:"polled_by_k"`
	PrunedTHT     int64                      `json:"pruned_tht"`
	PrunedSubset  int64                      `json:"pruned_subset"`
	TrimmedItems  int64                      `json:"trimmed_items"`
	PrunedTx      int64                      `json:"pruned_tx"`
	ScanSeconds   float64                    `json:"scan_seconds"`
	ExchSeconds   float64                    `json:"exchange_seconds"`
	WireBytes     int64                      `json:"wire_bytes"`
	SpanSeconds   map[string]float64         `json:"span_seconds"`
	SpanCount     map[string]int64           `json:"span_count"`
	SpanBytes     map[string]int64           `json:"span_bytes"`
	PassK         map[int]int                `json:"pass_progress"`
	BeatAge       map[int]float64            `json:"heartbeat_age_seconds"`
	Gauges        map[string]int64           `json:"gauges"`
	NodeGauges    map[string]map[int]int64   `json:"node_gauges"`
	FloatGauges   map[string]float64         `json:"float_gauges"`
	NodeFloats    map[string]map[int]float64 `json:"node_float_gauges"`
}

// Snap returns the current aggregates.
func (r *Recorder) Snap() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Passes:        r.passes,
		CandidatesByK: make(map[int]int64, len(r.candByK)),
		PolledByK:     make(map[int]int64, len(r.pollByK)),
		PrunedTHT:     r.prunedTHT,
		PrunedSubset:  r.prunedSubset,
		TrimmedItems:  r.trimmedItems,
		PrunedTx:      r.prunedTx,
		ScanSeconds:   r.scanSeconds,
		ExchSeconds:   r.exchSeconds,
		WireBytes:     r.wireBytes,
		SpanSeconds:   make(map[string]float64, len(r.spanSeconds)),
		SpanCount:     make(map[string]int64, len(r.spanCount)),
		SpanBytes:     make(map[string]int64, len(r.spanBytes)),
		PassK:         make(map[int]int, len(r.passK)),
		BeatAge:       make(map[int]float64, len(r.beats)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		NodeGauges:    make(map[string]map[int]int64, len(r.nodeGauges)),
		FloatGauges:   make(map[string]float64, len(r.floatGauges)),
		NodeFloats:    make(map[string]map[int]float64, len(r.nodeFloats)),
	}
	for k, v := range r.candByK {
		s.CandidatesByK[k] = v
	}
	for k, v := range r.pollByK {
		s.PolledByK[k] = v
	}
	for n, v := range r.spanSeconds {
		s.SpanSeconds[n] = v
	}
	for n, v := range r.spanCount {
		s.SpanCount[n] = v
	}
	for n, v := range r.spanBytes {
		s.SpanBytes[n] = v
	}
	for n, k := range r.passK {
		s.PassK[n] = k
	}
	now := time.Now()
	for n, t := range r.beats {
		s.BeatAge[n] = now.Sub(t).Seconds()
	}
	for n, v := range r.gauges {
		s.Gauges[n] = v
	}
	for name, m := range r.nodeGauges {
		cp := make(map[int]int64, len(m))
		for n, v := range m {
			cp[n] = v
		}
		s.NodeGauges[name] = cp
	}
	for n, v := range r.floatGauges {
		s.FloatGauges[n] = v
	}
	for name, m := range r.nodeFloats {
		cp := make(map[int]float64, len(m))
		for n, v := range m {
			cp[n] = v
		}
		s.NodeFloats[name] = cp
	}
	return s
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// writeEventLine marshals one event as a single JSON line.
func writeEventLine(w io.Writer, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ValidateEvent checks one decoded event against the schema: a known
// type with exactly the matching payload present.
func ValidateEvent(e Event) error {
	set := 0
	if e.Pass != nil {
		set++
	}
	if e.Span != nil {
		set++
	}
	if e.Poll != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("obs: event has %d payloads, want exactly 1", set)
	}
	switch e.Type {
	case TypePass:
		if e.Pass == nil {
			return fmt.Errorf("obs: %q event without pass payload", e.Type)
		}
		if e.Pass.K < 1 {
			return fmt.Errorf("obs: pass event with k=%d", e.Pass.K)
		}
	case TypeSpan:
		if e.Span == nil {
			return fmt.Errorf("obs: %q event without span payload", e.Type)
		}
		if e.Span.Name == "" {
			return fmt.Errorf("obs: span event without name")
		}
	case TypePoll:
		if e.Poll == nil {
			return fmt.Errorf("obs: %q event without poll payload", e.Type)
		}
	default:
		return fmt.Errorf("obs: unknown event type %q", e.Type)
	}
	return nil
}

// ReadTrace decodes a JSON-lines event stream, validating every record
// against the schema.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if err := ValidateEvent(e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// ReadTraceFile reads and validates a -trace-json file.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// Summary is the replay of an event stream: the totals a trace implies,
// comparable against the run's mining.Metrics.
type Summary struct {
	Passes          int64
	CandidatesByK   map[int]int64 // counted by miners (pass events)
	PolledByK       map[int]int64 // counted by poll service (poll events)
	PrunedTHT       int64
	PrunedSubset    int64
	TrimmedItems    int64
	PrunedTx        int64
	ScanSeconds     float64
	ExchangeSeconds float64            // pass-attached collective time
	SpanSeconds     map[string]float64 // by span name
	WireBytes       int64
}

// SpanSecondsPrefix sums span time across names sharing a prefix
// (e.g. "exchange:" for all collective rounds).
func (s Summary) SpanSecondsPrefix(prefix string) float64 {
	total := 0.0
	for name, sec := range s.SpanSeconds {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			total += sec
		}
	}
	return total
}

// Summarize replays an event stream into its totals.
func Summarize(events []Event) Summary {
	s := Summary{
		CandidatesByK: make(map[int]int64),
		PolledByK:     make(map[int]int64),
		SpanSeconds:   make(map[string]float64),
	}
	for _, e := range events {
		switch {
		case e.Pass != nil:
			p := e.Pass
			s.Passes++
			s.CandidatesByK[p.K] += int64(p.Candidates)
			s.PrunedTHT += p.PrunedTHT
			s.PrunedSubset += p.PrunedSubset
			s.TrimmedItems += p.TrimmedItems
			s.PrunedTx += p.PrunedTx
			s.ScanSeconds += p.ScanSeconds
			s.ExchangeSeconds += p.ExchangeSeconds
			s.WireBytes += p.WireBytes
		case e.Span != nil:
			s.SpanSeconds[e.Span.Name] += e.Span.Seconds
			s.WireBytes += e.Span.Bytes
		case e.Poll != nil:
			s.PolledByK[e.Poll.K] += int64(e.Poll.Sets)
		}
	}
	return s
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDisabledRecorderAllocs pins the zero-cost guarantee: every call on
// a nil *Recorder must perform zero allocations.
func TestDisabledRecorderAllocs(t *testing.T) {
	var r *Recorder
	errX := errors.New("x")
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			t.Fatal("nil recorder reported enabled")
		}
		r.Pass(PassEvent{Node: 1, K: 2, Candidates: 10})
		r.Poll(PollEvent{Node: 1, K: 2, Sets: 5})
		r.RecordSpan(SpanEvent{Name: "exchange:test", Seconds: 0.1})
		sp := r.StartSpan("exchange:test", 0)
		sp.End()
		sp.EndBytes(128)
		sp.EndErr(errX)
		r.Beat(3)
		r.SetGauge("failovers_total", 1)
		r.SetNodeGauge("peak_held_bytes", 0, 1<<20)
		r.SetDaemon("d")
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated: %v allocs/op, want 0", allocs)
	}
}

func TestRecorderAggregatesAndTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New(Config{Writer: &buf, Keep: true})
	r.SetDaemon("127.0.0.1:9000")

	r.Pass(PassEvent{Node: 0, Partition: 1, K: 2, Candidates: 10, PrunedTHT: 3, PrunedSubset: 2, TrimmedItems: 7, PrunedTx: 1, ScanSeconds: 0.5})
	r.Pass(PassEvent{Node: 1, Partition: 0, K: 3, Candidates: 4, ScanSeconds: 0.25, ExchangeSeconds: 0.125, WireBytes: 64})
	r.Poll(PollEvent{Node: 0, K: 2, Sets: 6})
	r.RecordSpan(SpanEvent{Name: "exchange:item-counts", Node: 1, Seconds: 0.5, Bytes: 100})
	r.RecordSpan(SpanEvent{Name: "checkpoint:write", Node: -1, Seconds: 0.0625})
	if err := r.Err(); err != nil {
		t.Fatalf("trace write error: %v", err)
	}

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	kept := r.Events()
	if len(events) != 5 || len(kept) != 5 {
		t.Fatalf("got %d streamed / %d kept events, want 5/5", len(events), len(kept))
	}
	// The streamed and retained copies must be the same records.
	for i := range events {
		a, _ := json.Marshal(events[i])
		b, _ := json.Marshal(kept[i])
		if string(a) != string(b) {
			t.Fatalf("event %d differs: streamed %s kept %s", i, a, b)
		}
	}
	// Daemon attribution fills in from the recorder label.
	if got := events[3].Span.Daemon; got != "127.0.0.1:9000" {
		t.Fatalf("span daemon = %q, want recorder label", got)
	}

	sum := Summarize(events)
	if sum.Passes != 2 {
		t.Fatalf("Passes = %d, want 2", sum.Passes)
	}
	if sum.CandidatesByK[2] != 10 || sum.CandidatesByK[3] != 4 {
		t.Fatalf("CandidatesByK = %v", sum.CandidatesByK)
	}
	if sum.PolledByK[2] != 6 {
		t.Fatalf("PolledByK = %v", sum.PolledByK)
	}
	if sum.PrunedTHT != 3 || sum.PrunedSubset != 2 || sum.TrimmedItems != 7 || sum.PrunedTx != 1 {
		t.Fatalf("pruning totals = %+v", sum)
	}
	if sum.ScanSeconds != 0.75 || sum.ExchangeSeconds != 0.125 {
		t.Fatalf("time totals = %+v", sum)
	}
	if sum.WireBytes != 64+100 {
		t.Fatalf("WireBytes = %d, want 164", sum.WireBytes)
	}
	if got := sum.SpanSecondsPrefix("exchange:"); got != 0.5 {
		t.Fatalf("SpanSecondsPrefix(exchange:) = %v, want 0.5", got)
	}

	// Snapshot must agree with the replay.
	snap := r.Snap()
	if snap.Passes != sum.Passes || snap.WireBytes != sum.WireBytes ||
		snap.ScanSeconds != sum.ScanSeconds || snap.ExchSeconds != sum.ExchangeSeconds {
		t.Fatalf("snapshot %+v disagrees with replay %+v", snap, sum)
	}
	if snap.PassK[0] != 2 || snap.PassK[1] != 3 {
		t.Fatalf("PassK = %v", snap.PassK)
	}
	if snap.SpanCount["exchange:item-counts"] != 1 || snap.SpanBytes["exchange:item-counts"] != 100 {
		t.Fatalf("span aggregates = %+v", snap)
	}
}

func TestStartSpanMeasures(t *testing.T) {
	r := New(Config{Keep: true})
	sp := r.StartSpan("exchange:tht", 2)
	time.Sleep(10 * time.Millisecond)
	sp.EndBytes(42)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Span == nil {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].Span.Seconds <= 0 {
		t.Fatalf("span seconds = %v, want > 0", ev[0].Span.Seconds)
	}
	if ev[0].Span.Bytes != 42 || ev[0].Span.Node != 2 {
		t.Fatalf("span = %+v", ev[0].Span)
	}
}

func TestValidateEvent(t *testing.T) {
	pass := &PassEvent{K: 2}
	span := &SpanEvent{Name: "x"}
	poll := &PollEvent{K: 2}
	cases := []struct {
		name string
		e    Event
		ok   bool
	}{
		{"pass ok", Event{Type: TypePass, Pass: pass}, true},
		{"span ok", Event{Type: TypeSpan, Span: span}, true},
		{"poll ok", Event{Type: TypePoll, Poll: poll}, true},
		{"no payload", Event{Type: TypePass}, false},
		{"two payloads", Event{Type: TypePass, Pass: pass, Span: span}, false},
		{"type/payload mismatch", Event{Type: TypeSpan, Pass: pass}, false},
		{"unknown type", Event{Type: "bogus", Pass: pass}, false},
		{"pass k<1", Event{Type: TypePass, Pass: &PassEvent{K: 0}}, false},
		{"span no name", Event{Type: TypeSpan, Span: &SpanEvent{}}, false},
	}
	for _, tc := range cases {
		err := ValidateEvent(tc.e)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"type\":\"pass\"}\n")); err == nil {
		t.Fatal("invalid event accepted")
	}
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("non-JSON line accepted")
	}
}

func TestStickyWriteError(t *testing.T) {
	r := New(Config{Writer: failWriter{}})
	r.Pass(PassEvent{Node: 0, K: 2})
	if r.Err() == nil {
		t.Fatal("write error not recorded")
	}
	r.Pass(PassEvent{Node: 0, K: 3}) // must not panic or overwrite
	if !strings.Contains(r.Err().Error(), "boom") {
		t.Fatalf("sticky error = %v", r.Err())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestHTTPEndpoint(t *testing.T) {
	r := New(Config{})
	r.Pass(PassEvent{Node: 0, K: 2, Candidates: 11, ScanSeconds: 0.5})
	r.Beat(0)
	r.SetGauge("failovers_total", 2)
	r.SetNodeGauge("peak_held_bytes", 0, 4096)

	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"pmihp_passes_total 1",
		`pmihp_candidates_total{k="2"} 11`,
		`pmihp_pass_current{node="0"} 2`,
		"pmihp_failovers_total 2",
		`pmihp_peak_held_bytes{node="0"} 4096`,
		`pmihp_heartbeat_age_seconds{node="0"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Passes != 1 || snap.CandidatesByK[2] != 11 {
		t.Fatalf("/snapshot = %+v", snap)
	}

	if !strings.Contains(get("/debug/vars"), `"pmihp"`) {
		t.Error("/debug/vars missing pmihp expvar")
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Error("/debug/pprof/ index not served")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:bogus", New(Config{})); err == nil {
		t.Fatal("bad address accepted")
	}
}

// Example documents the end-to-end wiring: record, stream, replay.
func Example() {
	var buf bytes.Buffer
	r := New(Config{Writer: &buf})
	r.Pass(PassEvent{Node: 0, Partition: 0, K: 2, Candidates: 3, ScanSeconds: 0.5})
	events, _ := ReadTrace(&buf)
	sum := Summarize(events)
	fmt.Println(sum.Passes, sum.CandidatesByK[2])
	// Output: 1 3
}

// Package integration holds the cross-module test suite: every miner in the
// module — Apriori, DHP, FP-Growth, MIHP, Count Distribution, PMIHP — must
// produce exactly the same frequent itemsets with the same exact supports
// on the same corpus, across support levels, node counts, and modes. This
// is the module's central correctness invariant.
package integration

import (
	"fmt"
	"testing"
	"testing/quick"

	"pmihp/internal/apriori"
	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/countdist"
	"pmihp/internal/datadist"
	"pmihp/internal/dhp"
	"pmihp/internal/fpgrowth"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func buildDB(t testing.TB, cfg corpus.Config) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

type minerFn func(*txdb.DB, mining.Options) (*mining.Result, error)

func miners() map[string]minerFn {
	return map[string]minerFn{
		"apriori":  apriori.Mine,
		"dhp":      dhp.Mine,
		"fpgrowth": fpgrowth.Mine,
		"mihp":     core.MineMIHP,
		"cd-3": func(db *txdb.DB, o mining.Options) (*mining.Result, error) {
			r, err := countdist.Mine(db, countdist.Config{Nodes: 3}, o)
			if r == nil {
				return nil, err
			}
			return r.Result, err
		},
		"dd-4": func(db *txdb.DB, o mining.Options) (*mining.Result, error) {
			r, err := datadist.Mine(db, datadist.Config{Nodes: 4}, o)
			if r == nil {
				return nil, err
			}
			return r.Result, err
		},
		"pmihp-4": func(db *txdb.DB, o mining.Options) (*mining.Result, error) {
			r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, o)
			if r == nil {
				return nil, err
			}
			return r.Result, err
		},
		"pmihp-7-deferred": func(db *txdb.DB, o mining.Options) (*mining.Result, error) {
			// Non-power-of-two nodes plus deferred polling.
			r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 7, Mode: core.Deferred}, o)
			if r == nil {
				return nil, err
			}
			return r.Result, err
		},
	}
}

func TestAllMinersAgree(t *testing.T) {
	for _, tc := range []struct {
		corpus corpus.Config
		opts   mining.Options
	}{
		{corpus.CorpusA(corpus.Small), mining.Options{MinSupFrac: 0.05, MaxK: 4}},
		{corpus.CorpusB(corpus.Small), mining.Options{MinSupCount: 2, MaxK: 3}},
		{corpus.CorpusB(corpus.Small), mining.Options{MinSupFrac: 0.08}},
		{corpus.CorpusC(corpus.Small), mining.Options{MinSupCount: 2, MaxK: 2}},
	} {
		db := buildDB(t, tc.corpus)
		ref, err := core.MineMIHP(db, tc.opts)
		if err != nil {
			t.Fatalf("%s: mihp: %v", tc.corpus.Name, err)
		}
		for name, mine := range miners() {
			r, err := mine(db, tc.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.corpus.Name, name, err)
			}
			if ok, diff := mining.SameFrequentSets(ref, r); !ok {
				t.Fatalf("%s/%s differs from MIHP: %s", tc.corpus.Name, name, diff)
			}
		}
	}
}

func TestBruteForceAnchorsTheReference(t *testing.T) {
	// The web of pairwise agreements above is anchored to ground truth here:
	// MIHP equals exhaustive counting on a corpus small enough to afford it.
	cfg := corpus.CorpusB(corpus.Small)
	cfg.Docs, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 48, 400, 30, 14
	db := buildDB(t, cfg)
	opts := mining.Options{MinSupCount: 2}
	want := mining.BruteForce(db, opts)
	got, err := core.MineMIHP(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := mining.SameFrequentSets(want, got); !ok {
		t.Fatal(diff)
	}
}

func TestPMIHPDeterministic(t *testing.T) {
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	var prev *core.ParallelResult
	for i := 0; i < 3; i++ {
		r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if ok, diff := mining.SameFrequentSets(prev.Result, r.Result); !ok {
				t.Fatalf("run %d differs: %s", i, diff)
			}
			// Clock charges commute mathematically but poll replies arrive
			// in scheduler order, so float accumulation may differ in the
			// last few ulps; anything beyond that is a real race.
			if d := r.TotalSeconds - prev.TotalSeconds; d > 1e-9 || d < -1e-9 {
				t.Fatalf("run %d simulated time %g != %g", i, r.TotalSeconds, prev.TotalSeconds)
			}
			for n := range r.Nodes {
				if r.Nodes[n].Metrics.Candidates() != prev.Nodes[n].Metrics.Candidates() {
					t.Fatalf("run %d node %d candidate accounting differs", i, n)
				}
			}
		}
		prev = r
	}
}

func TestEndToEndRulesPipeline(t *testing.T) {
	// Corpus -> PMIHP -> rules: every rule's confidence must be consistent
	// with exact supports recounted from the raw database.
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	par, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 4}, mining.Options{MinSupCount: 3, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	rs := rules.Generate(par.Result.Frequent, db.Len(), 0.6)
	if len(rs) == 0 {
		t.Fatal("no rules generated")
	}
	for i, r := range rs {
		if i >= 50 {
			break
		}
		supA := mining.CountSupport(db, r.Antecedent)
		supU := r.Support
		if got := float64(supU) / float64(supA); got != r.Confidence {
			t.Fatalf("rule %v: confidence %g, recomputed %g", r, r.Confidence, got)
		}
		if r.Confidence < 0.6 {
			t.Fatalf("rule below minconf: %v", r)
		}
	}
}

func TestMaxKConsistentAcrossMiners(t *testing.T) {
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 3, MaxK: 2}
	for name, mine := range miners() {
		r, err := mine(db, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range r.Frequent {
			if len(c.Set) > 2 {
				t.Fatalf("%s emitted %v beyond MaxK", name, c.Set)
			}
		}
	}
}

func TestParallelMinersAcrossNodeCounts(t *testing.T) {
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref, err := core.MineMIHP(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for nodes := 1; nodes <= 9; nodes++ {
		name := fmt.Sprintf("pmihp-%d", nodes)
		r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: nodes}, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ok, diff := mining.SameFrequentSets(ref, r.Result); !ok {
			t.Fatalf("%s: %s", name, diff)
		}
	}
}

// TestMIHPBruteForceQuick drives MIHP against exhaustive counting across
// randomized corpus shapes, thresholds and tuning knobs.
func TestMIHPBruteForceQuick(t *testing.T) {
	f := func(seedRaw, docsRaw, vocabRaw, minRaw, partRaw, thtRaw uint8) bool {
		cfg := corpus.CorpusB(corpus.Small)
		cfg.Seed = int64(seedRaw)
		cfg.Docs = 20 + int(docsRaw)%40
		cfg.VocabSize = 200 + int(vocabRaw)%400
		cfg.HeadCut = cfg.VocabSize / 20
		cfg.DocLenMean = 12
		docs, err := corpus.Generate(cfg)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		db, _ := text.ToDB(docs, nil)
		opts := mining.Options{
			MinSupCount:   2 + int(minRaw)%3,
			MaxK:          4,
			PartitionSize: 1 + int(partRaw)%40,
			THTEntries:    1 + int(thtRaw)%64,
		}
		want := mining.BruteForce(db, opts)
		got, err := core.MineMIHP(db, opts)
		if err != nil {
			t.Logf("mihp: %v", err)
			return false
		}
		ok, diff := mining.SameFrequentSets(want, got)
		if !ok {
			t.Logf("opts=%+v: %s", opts, diff)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

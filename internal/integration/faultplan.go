package integration

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os/exec"
	"strings"
	"sync"
	"time"

	"pmihp/internal/transport"
)

// This file is the deterministic fault-injection harness for cluster
// sessions: real pmihp-node worker processes on loopback, each fronted
// by a frame-aware relay proxy. Faults do not fire on wall-clock timers
// — they fire when a scripted protocol event (the Nth frame matching a
// trigger) passes through a proxy, so every run injects the failure at
// the same point in the mining protocol regardless of host speed.

// Direction selects which relay direction of a proxied connection a
// trigger watches.
type Direction uint8

const (
	// DirAny matches frames in both directions.
	DirAny Direction = iota
	// DirToWorker matches frames flowing coordinator/peer -> worker.
	DirToWorker
	// DirFromWorker matches frames flowing worker -> coordinator/peer.
	DirFromWorker
)

// Trigger matches frames relayed through one worker's proxy. Zero
// fields match anything; Count selects the Nth match (minimum 1).
type Trigger struct {
	// Purpose filters by the connection's Hello purpose
	// (transport.PurposeControl/Cube/Poll); 0 matches any connection.
	Purpose uint8
	// MsgType filters by frame type (transport.Msg*); 0 matches any.
	MsgType uint8
	// Phase filters MsgCubeBlock frames by their exchange phase; 0
	// matches any frame. Non-cube frames never match a non-zero Phase.
	Phase transport.Phase
	// Dir filters by relay direction.
	Dir Direction
	// Count fires the fault on the Count-th matching frame (0 means 1).
	Count int
}

// FaultAction is what a fired fault does.
type FaultAction uint8

const (
	// ActKill SIGKILLs the target worker process and severs its proxied
	// connections — a crashed workstation.
	ActKill FaultAction = iota + 1
	// ActDropHeartbeats silently discards every subsequent worker ->
	// coordinator control frame of the observed worker (heartbeats,
	// progress, the terminal report) while leaving the connection open —
	// a wedged worker the coordinator can only detect by silence.
	ActDropHeartbeats
	// ActDelay stalls each matching frame (up to Count of them) by Delay
	// before relaying it — a slow or congested link.
	ActDelay
)

// Fault is one scripted failure: when Trigger matches on the Observe
// worker's proxy, Action fires against the Target worker.
type Fault struct {
	// Observe is the worker whose proxy watches for the trigger.
	Observe int
	// Target is the worker the action applies to; defaults to Observe.
	// (Killing node N when node 0's checkpoint passes through is how the
	// tests pin "kill after pass K" deterministically.)
	Target  int
	Trigger Trigger
	Action  FaultAction
	// Delay is the per-frame stall for ActDelay.
	Delay time.Duration
}

// FaultPlan scripts a session's failures.
type FaultPlan struct {
	Faults []Fault
}

// faultState tracks one fault's match count.
type faultState struct {
	Fault
	mu      sync.Mutex
	matches int
	fired   bool
}

// verdict is what the relay loop must do for one frame.
type verdict struct {
	killTarget int // worker to kill, -1 for none
	dropFrom   int // worker whose control output starts being dropped, -1 for none
	delay      time.Duration
}

// FaultCluster is a set of proxied worker processes plus the plan's
// live state.
type FaultCluster struct {
	bin     string
	logf    func(format string, args ...any)
	faults  []*faultState
	mu      sync.Mutex
	workers []*faultWorker
	stopped bool
}

// faultWorker is one pmihp-node process and its fronting proxy.
type faultWorker struct {
	index int
	cmd   *exec.Cmd
	addr  string // the worker's real listen address
	ln    net.Listener

	killOnce sync.Once
	mu       sync.Mutex
	conns    []net.Conn
	killed   bool
	dropping bool // discard worker->coordinator control frames
}

// StartFaultCluster spawns n workers from the pmihp-node binary, each
// behind a fault proxy, and returns the cluster. logf may be nil.
func StartFaultCluster(bin string, n int, plan FaultPlan, logf func(string, ...any)) (*FaultCluster, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fc := &FaultCluster{bin: bin, logf: logf}
	for _, f := range plan.Faults {
		fs := &faultState{Fault: f}
		if fs.Trigger.Count <= 0 {
			fs.Trigger.Count = 1
		}
		fc.faults = append(fc.faults, fs)
	}
	for i := 0; i < n; i++ {
		w, err := fc.spawnWorker(i, true)
		if err != nil {
			fc.Stop()
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		fc.workers = append(fc.workers, w)
	}
	return fc, nil
}

// Addrs returns the proxy addresses, one per worker, in node order.
// Hand these to the coordinator; all traffic then flows through the
// fault relays.
func (fc *FaultCluster) Addrs() []string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	addrs := make([]string, 0, len(fc.workers))
	for _, w := range fc.workers {
		if w.ln != nil {
			addrs = append(addrs, w.ln.Addr().String())
		} else {
			addrs = append(addrs, w.addr)
		}
	}
	return addrs
}

// SpawnReplacement starts a fresh, unproxied worker (no faults apply to
// it) and returns its address — the shape ClusterConfig.Respawn wants.
func (fc *FaultCluster) SpawnReplacement() (string, error) {
	fc.mu.Lock()
	index := len(fc.workers)
	stopped := fc.stopped
	fc.mu.Unlock()
	if stopped {
		return "", fmt.Errorf("fault cluster stopped")
	}
	w, err := fc.spawnWorker(index, false)
	if err != nil {
		return "", err
	}
	fc.mu.Lock()
	fc.workers = append(fc.workers, w)
	fc.mu.Unlock()
	fc.logf("faultplan: replacement worker %d at %s", index, w.addr)
	return w.addr, nil
}

// Stop kills every worker and closes every proxy. Idempotent.
func (fc *FaultCluster) Stop() {
	fc.mu.Lock()
	workers := append([]*faultWorker(nil), fc.workers...)
	fc.stopped = true
	fc.mu.Unlock()
	for _, w := range workers {
		fc.killWorker(w)
	}
}

// spawnWorker starts one pmihp-node process and, when proxied, a fault
// relay in front of it.
func (fc *FaultCluster) spawnWorker(index int, proxied bool) (*faultWorker, error) {
	cmd := exec.Command(fc.bin, "-listen", "127.0.0.1:0")
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addr, err := awaitAnnouncement(out, 15*time.Second)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("worker did not announce: %w", err)
	}
	w := &faultWorker{index: index, cmd: cmd, addr: addr}
	if proxied {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, err
		}
		w.ln = ln
		go fc.serveProxy(w)
	}
	return w, nil
}

// awaitAnnouncement scans a worker's stdout for its listen address.
func awaitAnnouncement(out io.Reader, timeout time.Duration) (string, error) {
	const prefix = "pmihp-node listening on "
	ch := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if at := strings.Index(sc.Text(), prefix); at >= 0 {
				ch <- strings.TrimSpace(sc.Text()[at+len(prefix):])
				return
			}
		}
		close(ch)
	}()
	select {
	case addr, ok := <-ch:
		if !ok {
			return "", io.ErrUnexpectedEOF
		}
		return addr, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out after %v", timeout)
	}
}

// killWorker fires at most once per worker: SIGKILL plus severing every
// relayed connection, so the coordinator and peers see the death
// immediately instead of waiting out timeouts.
func (fc *FaultCluster) killWorker(w *faultWorker) {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		w.cmd.Wait()
		w.mu.Lock()
		w.killed = true
		conns := w.conns
		w.conns = nil
		w.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		fc.logf("faultplan: killed worker %d (%s)", w.index, w.addr)
	})
}

// serveProxy accepts connections for one worker and relays them.
func (fc *FaultCluster) serveProxy(w *faultWorker) {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		go fc.relay(w, conn)
	}
}

// relay handles one proxied connection: forward the Hello, then pump
// frames both ways through the fault evaluation.
func (fc *FaultCluster) relay(w *faultWorker, client net.Conn) {
	defer client.Close()
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.conns = append(w.conns, client)
	w.mu.Unlock()

	hdr, payload, err := readRawFrame(client)
	if err != nil || hdr[5] != transport.MsgHello {
		return
	}
	hello, err := transport.DecodeHello(payload)
	if err != nil {
		return
	}
	up, err := net.Dial("tcp", w.addr)
	if err != nil {
		return
	}
	defer up.Close()
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.conns = append(w.conns, up)
	w.mu.Unlock()
	if _, err := up.Write(append(hdr[:], payload...)); err != nil {
		return
	}
	done := make(chan struct{}, 2)
	go func() { fc.pump(w, client, up, hello.Purpose, DirToWorker); done <- struct{}{} }()
	go func() { fc.pump(w, up, client, hello.Purpose, DirFromWorker); done <- struct{}{} }()
	<-done
	client.Close()
	up.Close()
	<-done
}

// readRawFrame reads one frame without interpreting it.
func readRawFrame(r io.Reader) ([6]byte, []byte, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return hdr, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > transport.MaxFrame {
		return hdr, nil, fmt.Errorf("frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return hdr, nil, err
	}
	return hdr, payload, nil
}

// pump relays frames src -> dst in one direction, evaluating each
// against the fault plan.
func (fc *FaultCluster) pump(w *faultWorker, src, dst net.Conn, purpose uint8, dir Direction) {
	for {
		hdr, payload, err := readRawFrame(src)
		if err != nil {
			return
		}
		msgType := hdr[5]
		var phase transport.Phase
		if msgType == transport.MsgCubeBlock && len(payload) > 0 {
			phase = transport.Phase(payload[0])
		}
		v := fc.evaluate(w.index, purpose, msgType, phase, dir)
		if v.dropFrom >= 0 {
			fc.worker(v.dropFrom).setDropping()
			fc.logf("faultplan: dropping worker %d control output from now on", v.dropFrom)
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
		}
		if v.killTarget >= 0 && v.killTarget == w.index {
			// Killing the observed worker: the triggering frame dies with it.
			fc.killWorker(fc.worker(v.killTarget))
			return
		}
		if dir == DirFromWorker && purpose == transport.PurposeControl && w.isDropping() {
			continue // wedged worker: its control output vanishes
		}
		if _, err := dst.Write(append(hdr[:], payload...)); err != nil {
			return
		}
		if v.killTarget >= 0 {
			// Killing another worker: forward the triggering frame first so
			// e.g. a checkpoint that defines "after pass K" still arrives.
			fc.killWorker(fc.worker(v.killTarget))
		}
	}
}

func (fc *FaultCluster) worker(i int) *faultWorker {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.workers[i]
}

func (w *faultWorker) setDropping() {
	w.mu.Lock()
	w.dropping = true
	w.mu.Unlock()
}

func (w *faultWorker) isDropping() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropping
}

// evaluate runs one observed frame through every fault and folds the
// fired actions into a verdict.
func (fc *FaultCluster) evaluate(node int, purpose, msgType uint8, phase transport.Phase, dir Direction) verdict {
	v := verdict{killTarget: -1, dropFrom: -1}
	for _, f := range fc.faults {
		if f.Observe != node {
			continue
		}
		tr := f.Trigger
		if tr.Purpose != 0 && tr.Purpose != purpose {
			continue
		}
		if tr.MsgType != 0 && tr.MsgType != msgType {
			continue
		}
		if tr.Phase != 0 && tr.Phase != phase {
			continue
		}
		if tr.Dir != DirAny && tr.Dir != dir {
			continue
		}
		f.mu.Lock()
		if f.fired {
			f.mu.Unlock()
			continue
		}
		f.matches++
		switch f.Action {
		case ActDelay:
			// Delay applies to each of the first Count matches.
			if f.matches <= tr.Count {
				if f.matches == tr.Count {
					f.fired = true
				}
				if f.Delay > v.delay {
					v.delay = f.Delay
				}
			}
		case ActKill:
			if f.matches == tr.Count {
				f.fired = true
				target := f.Target
				if target == 0 && f.Observe != 0 {
					target = f.Observe
				}
				v.killTarget = target
			}
		case ActDropHeartbeats:
			if f.matches == tr.Count {
				f.fired = true
				target := f.Target
				if target == 0 && f.Observe != 0 {
					target = f.Observe
				}
				v.dropFrom = target
			}
		}
		f.mu.Unlock()
	}
	return v
}

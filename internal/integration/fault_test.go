package integration

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/distmine"
	"pmihp/internal/mining"
	"pmihp/internal/transport"
)

// nodeBin is the pmihp-node binary built once for the fault-injection
// suite.
var (
	nodeBin  string
	buildErr error
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "pmihp-fault-bin")
	if err != nil {
		buildErr = err
	} else {
		bin := filepath.Join(dir, "pmihp-node")
		out, err := exec.Command("go", "build", "-o", bin, "pmihp/cmd/pmihp-node").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build pmihp/cmd/pmihp-node: %v\n%s", err, out)
		} else {
			nodeBin = bin
		}
	}
	code := m.Run()
	if dir != "" {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

var faultRetry = transport.RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

// faultCase is one scripted failure scenario.
type faultCase struct {
	name   string
	nodes  int
	plan   FaultPlan
	policy distmine.FailurePolicy
	// corpus overrides the suite's default database (corpus B, small
	// scale). The straggler case mines the day-skewed preset, whose
	// equal-count partitions are organically imbalanced.
	corpus corpus.Config
	// respawn spawns replacements instead of doubling up on survivors.
	respawn bool
	// wantErr: the session must fail, with an error containing each
	// substring. Otherwise it must succeed byte-identically.
	wantErr []string
	// wantLogs must each appear in the coordinator's recovery log.
	wantLog []string
	// stragglerLag arms the coordinator's straggler detector (0 leaves
	// it off, the default).
	stragglerLag int
	// heartbeat overrides the session heartbeat interval (0 = the
	// suite's 50ms default). Straggler cases shorten it so the healthy
	// nodes' reported pass positions keep up with their real progress.
	heartbeat time.Duration
	// failovers/reassigned/rebalanced are exact expectations on the
	// metrics. rebalancedMin, when positive, replaces the exact
	// rebalanced check with a floor: how many partitions move depends on
	// which hosts the re-split cascade drains, which is load- and
	// timing-dependent, while "at least one re-split, zero failovers" is
	// the invariant.
	failovers     int
	reassigned    int
	rebalanced    int
	rebalancedMin int
}

// faultRecord feeds the harness's JSON summary (PMIHP_FAULT_JSON).
type faultRecord struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	Policy          string  `json:"policy"`
	Failed          bool    `json:"failed"`
	Identical       bool    `json:"identical"`
	Failovers       int     `json:"failovers"`
	Reassigned      int     `json:"reassigned_partitions"`
	Rebalanced      int     `json:"rebalanced_partitions"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	WireRetries     int64   `json:"wire_retries"`
	Error           string  `json:"error,omitempty"`
}

var (
	faultRecMu   sync.Mutex
	faultRecords []faultRecord
)

func recordFault(r faultRecord) {
	faultRecMu.Lock()
	faultRecords = append(faultRecords, r)
	faultRecMu.Unlock()
}

// TestFaultInjection is the deterministic fault suite: scripted kills,
// wedges, and delays against real worker processes. Every recovered
// session must produce frequent itemsets byte-identical to the
// in-process PMIHP miner; every aborted one must fail fast with an
// attributed error.
func TestFaultInjection(t *testing.T) {
	if nodeBin == "" {
		t.Fatalf("pmihp-node binary unavailable: %v", buildErr)
	}
	cases := []faultCase{
		{
			// Kill a worker while the very first collective is in flight:
			// nothing is checkpointed yet, so recovery is a clean restart on
			// the survivors.
			name:  "kill-during-item-counts-4node",
			nodes: 4,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 2, Target: 2, Action: ActKill,
				Trigger: Trigger{MsgType: transport.MsgCubeBlock, Phase: transport.PhaseItemCounts, Count: 1},
			}}},
			policy:     distmine.FailurePolicyReassign,
			failovers:  1,
			reassigned: 1,
		},
		{
			// Kill a worker after node 0's item-count checkpoint reaches the
			// coordinator (the trigger watches node 0's control plane and
			// kills node 3): the session must resume from the item-counts
			// pass, not restart.
			name:  "kill-after-item-counts-8node",
			nodes: 8,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 0, Target: 3, Action: ActKill,
				Trigger: Trigger{Purpose: transport.PurposeControl, MsgType: transport.MsgProgress, Dir: DirFromWorker, Count: 1},
			}}},
			policy:     distmine.FailurePolicyReassign,
			wantLog:    []string{"resuming from item-counts"},
			failovers:  1,
			reassigned: 1,
		},
		{
			// Kill a worker after the THT checkpoint: the resumed session
			// skips pass 1 and both collectives, rebuilding every THT segment
			// from checkpointed wire bytes.
			name:  "kill-after-tht-8node",
			nodes: 8,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 0, Target: 5, Action: ActKill,
				Trigger: Trigger{Purpose: transport.PurposeControl, MsgType: transport.MsgProgress, Dir: DirFromWorker, Count: 2},
			}}},
			policy:     distmine.FailurePolicyReassign,
			wantLog:    []string{"resuming from tht"},
			failovers:  1,
			reassigned: 1,
		},
		{
			// Same THT-stage kill, but the dead worker is replaced by a
			// freshly spawned process instead of doubling up on a survivor.
			name:  "kill-after-tht-respawn-4node",
			nodes: 4,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 0, Target: 2, Action: ActKill,
				Trigger: Trigger{Purpose: transport.PurposeControl, MsgType: transport.MsgProgress, Dir: DirFromWorker, Count: 2},
			}}},
			policy:     distmine.FailurePolicyReassign,
			respawn:    true,
			wantLog:    []string{"resuming from tht", "replacement worker"},
			failovers:  1,
			reassigned: 1,
		},
		{
			// Under the default abort policy the same kill fails the session
			// fast, attributing the dead worker.
			name:  "kill-aborts-under-abort-policy",
			nodes: 4,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 1, Target: 1, Action: ActKill,
				Trigger: Trigger{MsgType: transport.MsgCubeBlock, Phase: transport.PhaseItemCounts, Count: 1},
			}}},
			policy:  distmine.FailurePolicyAbort,
			wantErr: []string{"node 1"},
		},
		{
			// A wedged worker: alive at the TCP level, but its heartbeats
			// (and eventually its report) silently vanish. Detection is by
			// heartbeat timeout; recovery must still be byte-identical.
			name:  "dropped-heartbeats-4node",
			nodes: 4,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 2, Target: 2, Action: ActDropHeartbeats,
				Trigger: Trigger{Purpose: transport.PurposeControl, MsgType: transport.MsgHeartbeat, Dir: DirFromWorker, Count: 1},
			}}},
			policy:     distmine.FailurePolicyReassign,
			wantLog:    []string{"no heartbeat"},
			failovers:  1,
			reassigned: 1,
		},
		{
			// Delayed peer connections stress retries and timeouts without
			// any failure: no failover may be charged and the result must be
			// identical.
			name:  "delayed-peer-frames-4node",
			nodes: 4,
			plan: FaultPlan{Faults: []Fault{{
				Observe: 1, Target: 1, Action: ActDelay, Delay: 25 * time.Millisecond,
				Trigger: Trigger{Purpose: transport.PurposeCube, MsgType: transport.MsgCubeBlock, Count: 3},
			}}},
			policy:     distmine.FailurePolicyReassign,
			failovers:  0,
			reassigned: 0,
		},
		{
			// An organic straggler, no scripted fault at all: equal-count
			// chronological partitioning on the day-skewed corpus hands the
			// low-numbered nodes the long day-0 documents, so their counting
			// passes crawl while the light nodes sprint ahead. The armed
			// detector must notice the sustained pass lag in the heartbeats
			// and re-host the lagging partition — counted as rebalances,
			// never as failovers — and the recovered session must still be
			// byte-identical. Which heavy node trips the detector first
			// depends on scheduling, so the log assertions name the event,
			// not the node.
			name:          "straggler-rebalance-4node",
			nodes:         4,
			corpus:        stragglerCorpus(),
			policy:        distmine.FailurePolicyReassign,
			stragglerLag:  3,
			heartbeat:     5 * time.Millisecond,
			wantLog:       []string{"straggler: node ", "rebalanced node "},
			failovers:     0,
			reassigned:    0,
			rebalancedMin: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runFaultCase(t, tc)
		})
	}
	writeFaultSummary(t)
}

// stragglerCorpus is the day-skewed database the straggler case mines:
// the skewed preset, scaled up until the heavy day-0 partition keeps its
// node counting for hundreds of milliseconds while the light nodes
// finish in tens — enough real lag for the sustained-lag detector to
// fire well inside the session.
func stragglerCorpus() corpus.Config {
	cfg := corpus.CorpusSkewed(corpus.Small)
	cfg.Docs = 336
	return cfg
}

func runFaultCase(t *testing.T, tc faultCase) {
	var logMu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		logMu.Lock()
		logs = append(logs, line)
		logMu.Unlock()
		t.Log(line)
	}
	fc, err := StartFaultCluster(nodeBin, tc.nodes, tc.plan, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Stop()

	ccfg := tc.corpus
	if ccfg.Docs == 0 {
		ccfg = corpus.CorpusB(corpus.Small)
	}
	db := buildDB(t, ccfg)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: tc.nodes}, opts)
	if err != nil {
		t.Fatal(err)
	}

	cfg := distmine.ClusterConfig{
		Addrs:              fc.Addrs(),
		Retry:              faultRetry,
		FailurePolicy:      tc.policy,
		HeartbeatInterval:  50 * time.Millisecond,
		HeartbeatTimeout:   500 * time.Millisecond,
		MineTimeout:        2 * time.Minute,
		CheckpointDir:      t.TempDir(),
		StragglerLagPasses: tc.stragglerLag,
		Logf:               logf,
	}
	if tc.heartbeat > 0 {
		cfg.HeartbeatInterval = tc.heartbeat
	}
	if tc.respawn {
		cfg.Respawn = fc.SpawnReplacement
	}
	got, err := distmine.MineCluster(db, cfg, opts)

	rec := faultRecord{Name: tc.name, Nodes: tc.nodes, Policy: string(tc.policy), Failed: err != nil}
	if err != nil {
		rec.Error = err.Error()
	}
	defer func() { recordFault(rec) }()

	if len(tc.wantErr) > 0 {
		if err == nil {
			t.Fatal("expected the session to fail")
		}
		for _, want := range tc.wantErr {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not mention %q", err, want)
			}
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	rec.Failovers = got.Metrics.Failovers
	rec.Reassigned = got.Metrics.ReassignedPartitions
	rec.Rebalanced = got.Metrics.RebalancedPartitions
	rec.RecoverySeconds = got.Metrics.RecoverySeconds
	rec.WireRetries = got.Metrics.WireRetries

	// The core invariant: a recovered session is byte-identical to the
	// in-process miner — same itemsets, same exact counts, same order.
	want := ref.Result.Frequent
	if len(got.Frequent) != len(want) {
		t.Fatalf("frequent list length %d, want %d", len(got.Frequent), len(want))
	}
	for i := range want {
		if !want[i].Set.Equal(got.Frequent[i].Set) || want[i].Count != got.Frequent[i].Count {
			t.Fatalf("entry %d: got %v/%d, want %v/%d",
				i, got.Frequent[i].Set, got.Frequent[i].Count, want[i].Set, want[i].Count)
		}
	}
	rec.Identical = true

	if got.Metrics.Failovers != tc.failovers {
		t.Fatalf("failovers = %d, want %d", got.Metrics.Failovers, tc.failovers)
	}
	if got.Metrics.ReassignedPartitions != tc.reassigned {
		t.Fatalf("reassigned partitions = %d, want %d", got.Metrics.ReassignedPartitions, tc.reassigned)
	}
	if tc.rebalancedMin > 0 {
		if got.Metrics.RebalancedPartitions < tc.rebalancedMin {
			t.Fatalf("rebalanced partitions = %d, want >= %d", got.Metrics.RebalancedPartitions, tc.rebalancedMin)
		}
	} else if got.Metrics.RebalancedPartitions != tc.rebalanced {
		t.Fatalf("rebalanced partitions = %d, want %d", got.Metrics.RebalancedPartitions, tc.rebalanced)
	}
	if tc.failovers > 0 && got.Metrics.RecoverySeconds <= 0 {
		t.Fatalf("recovery time not accounted: %+v", got.Metrics)
	}
	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	for _, want := range tc.wantLog {
		if !strings.Contains(joined, want) {
			t.Fatalf("coordinator log does not mention %q:\n%s", want, joined)
		}
	}
}

// writeFaultSummary dumps the collected case records as JSON when
// PMIHP_FAULT_JSON names a file — the artifact the nightly CI job
// uploads.
func writeFaultSummary(t *testing.T) {
	path := os.Getenv("PMIHP_FAULT_JSON")
	if path == "" {
		return
	}
	faultRecMu.Lock()
	defer faultRecMu.Unlock()
	b, err := json.MarshalIndent(struct {
		Cases []faultRecord `json:"cases"`
	}{faultRecords}, "", "  ")
	if err != nil {
		t.Fatalf("marshal fault summary: %v", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatalf("write fault summary: %v", err)
	}
	t.Logf("fault summary written to %s", path)
}

package hashtree

import (
	"math/rand"
	"testing"

	"pmihp/internal/itemset"
)

// randItemset draws a sorted k-itemset over [0, universe).
func randItemset(rng *rand.Rand, k, universe int) itemset.Itemset {
	m := make(map[itemset.Item]struct{})
	for len(m) < k {
		m[itemset.Item(rng.Intn(universe))] = struct{}{}
	}
	items := make([]itemset.Item, 0, k)
	for it := range m {
		items = append(items, it)
	}
	return itemset.New(items...)
}

// TestCountMatchesBruteForce cross-checks hash-tree counting against direct
// subset tests across many random candidate sets and transactions, with a
// small universe so hash collisions are frequent (the regime where a
// suffix-only leaf check miscounts).
func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(4)
		universe := 12 + rng.Intn(30)
		nCands := 1 + rng.Intn(120)

		seen := itemset.NewSet()
		var cands []itemset.Itemset
		for len(cands) < nCands {
			c := randItemset(rng, k, universe)
			if !seen.Has(c) {
				seen.Add(c)
				cands = append(cands, c)
			}
		}
		tree := Build(k, cands)
		want := make([]int, len(cands))
		for tx := 0; tx < 60; tx++ {
			txLen := k + rng.Intn(universe-k)
			items := randItemset(rng, txLen, universe)
			got := make(map[int]int)
			tree.VisitTx(items, func(c int) { got[c]++ })
			for ci, c := range cands {
				contained := c.SubsetOf(items)
				switch {
				case contained && got[ci] != 1:
					t.Fatalf("trial %d: candidate %v in tx %v visited %d times",
						trial, c, items, got[ci])
				case !contained && got[ci] != 0:
					t.Fatalf("trial %d: candidate %v not in tx %v but visited",
						trial, c, items)
				}
				if contained {
					want[ci]++
				}
			}
			tree.CountTx(items)
		}
		for ci := range cands {
			if tree.Count(ci) != want[ci] {
				t.Fatalf("trial %d: candidate %v count %d, want %d",
					trial, cands[ci], tree.Count(ci), want[ci])
			}
		}
	}
}

func TestShortTransactionSkipped(t *testing.T) {
	cands := []itemset.Itemset{itemset.New(1, 2, 3)}
	tree := Build(3, cands)
	if n := tree.CountTx(itemset.New(1, 2)); n != 0 {
		t.Fatalf("short transaction matched %d candidates", n)
	}
}

func TestFrequentThreshold(t *testing.T) {
	cands := []itemset.Itemset{itemset.New(1, 2), itemset.New(2, 3)}
	tree := Build(2, cands)
	tree.CountTx(itemset.New(1, 2, 3)) // both
	tree.CountTx(itemset.New(1, 2))    // only {1,2}
	freq := tree.Frequent(2)
	if len(freq) != 1 || !freq[0].Set.Equal(itemset.New(1, 2)) || freq[0].Count != 2 {
		t.Fatalf("Frequent(2) = %v", freq)
	}
}

func TestSetCounts(t *testing.T) {
	cands := []itemset.Itemset{itemset.New(1, 2), itemset.New(2, 3)}
	tree := Build(2, cands)
	tree.SetCounts([]int{5, 7})
	if tree.Count(0) != 5 || tree.Count(1) != 7 {
		t.Fatalf("SetCounts not applied: %v", tree.Counts())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCounts with wrong length did not panic")
		}
	}()
	tree.SetCounts([]int{1})
}

func TestDeepSplitLargeLeafAtMaxDepth(t *testing.T) {
	// Force many candidates sharing a full hash path so leaves at depth k
	// exceed LeafCap and must not split further.
	var cands []itemset.Itemset
	for i := 0; i < LeafCap*3; i++ {
		cands = append(cands, itemset.New(
			itemset.Item(8*i), itemset.Item(8*i+1), // hashes 0 and 1 for all
		))
	}
	tree := Build(2, cands)
	tx := itemset.New(16, 17)
	n := tree.CountTx(tx)
	if n != 1 {
		t.Fatalf("expected exactly 1 match, got %d", n)
	}
	if tree.Count(2) != 1 {
		t.Fatalf("candidate {16,17} count = %d", tree.Count(2))
	}
}

func TestWalkCostAccounting(t *testing.T) {
	smallCands := []itemset.Itemset{itemset.New(1, 2), itemset.New(3, 4)}
	small := Build(2, smallCands)
	var bigCands []itemset.Itemset
	for i := 0; i < 400; i++ {
		bigCands = append(bigCands, itemset.New(itemset.Item(2*i), itemset.Item(2*i+1)))
	}
	big := Build(2, bigCands)

	tx := itemset.New(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	small.CountTx(tx)
	big.CountTx(tx)
	if small.WalkCost() <= 0 {
		t.Fatal("walk cost not accumulated")
	}
	// A bigger candidate structure must cost more to scan per transaction —
	// the structural effect the cost model depends on.
	if big.WalkCost() <= small.WalkCost() {
		t.Fatalf("walk costs: big %d <= small %d", big.WalkCost(), small.WalkCost())
	}
	// Cost accumulates across transactions.
	before := big.WalkCost()
	big.CountTx(tx)
	if big.WalkCost() <= before {
		t.Fatal("walk cost did not accumulate")
	}
}

package hashtree

import (
	"math/rand"
	"testing"

	"pmihp/internal/itemset"
)

func benchTree(b *testing.B, k, nCands int) (*Tree, []itemset.Itemset) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	seen := itemset.NewSet()
	var cands []itemset.Itemset
	for len(cands) < nCands {
		c := randItemset(rng, k, 3000)
		if !seen.Has(c) {
			seen.Add(c)
			cands = append(cands, c)
		}
	}
	var txs []itemset.Itemset
	for i := 0; i < 64; i++ {
		txs = append(txs, randItemset(rng, 80, 3000))
	}
	return Build(k, cands), txs
}

func BenchmarkCountTxK3Small(b *testing.B) {
	tree, txs := benchTree(b, 3, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.CountTx(txs[i%len(txs)])
	}
}

func BenchmarkCountTxK3Large(b *testing.B) {
	tree, txs := benchTree(b, 3, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.CountTx(txs[i%len(txs)])
	}
}

func BenchmarkBuildK3(b *testing.B) {
	_, _ = benchTree(b, 3, 1) // warm rand path
	rng := rand.New(rand.NewSource(2))
	var cands []itemset.Itemset
	seen := itemset.NewSet()
	for len(cands) < 20000 {
		c := randItemset(rng, 3, 3000)
		if !seen.Has(c) {
			seen.Add(c)
			cands = append(cands, c)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(3, cands)
	}
}

// Package hashtree implements the Apriori hash tree used to count the
// occurrences of candidate k-itemsets during a database scan (Agrawal &
// Srikant 1994, cited as the counting structure in the MIHP pseudo-code:
// "they can be stored in a hash tree where the hash value of each item
// occupies a level in the tree").
//
// Interior nodes hash one item per level; leaves hold small buckets of
// candidates. Counting a transaction visits only the subtrees reachable
// through the transaction's own items, so the cost per transaction is far
// below the naive |C_k| subset tests.
//
// After Build the tree is immutable, so concurrent scans are possible: the
// per-transaction bookkeeping (the visited-leaf guard and the structural
// walk cost) lives in a VisitState owned by each scanning goroutine rather
// than in the tree, and counters accumulate in caller-owned slices.
package hashtree

import (
	"pmihp/internal/itemset"
)

// Fanout is the branching factor of interior nodes.
const Fanout = 8

// LeafCap is the number of candidates a leaf holds before it is split into
// an interior node (leaves at depth k can never split and grow unbounded).
const LeafCap = 16

type node struct {
	// children is non-nil for interior nodes.
	children []*node
	// cands holds candidate indexes for leaf nodes.
	cands []int32
	// leafID indexes the leaf in VisitState.lastVisit (dense over live
	// leaves; ids of leaves retired by splits are simply never visited).
	leafID int32
}

// Tree is a hash tree over a fixed list of candidate k-itemsets. The
// candidates are stored as one flat stride-k item matrix (candidate i is
// flat[i*k : (i+1)*k]), so leaf verification walks contiguous memory
// instead of chasing per-candidate slice headers.
type Tree struct {
	k        int
	n        int            // number of candidates
	flat     []itemset.Item // stride-k candidate matrix, len n*k
	counts   []int
	root     *node
	numLeafs int32

	// state backs the serial VisitTx/CountTx entry points; concurrent scans
	// use private VisitStates instead.
	state VisitState

	// Build-time slabs: nodes, leaf candidate buckets, and child-pointer
	// arrays are carved from chunked arenas instead of being allocated
	// individually — a tree is built per counting pass, and per-node
	// allocations dominated its construction cost. Chunks are never grown
	// in place, so handed-out pointers and slices stay valid.
	nodeSlab  []node
	candSlab  []int32
	childSlab []*node

	// walkCost accumulates the structural work of serial counting scans: one
	// unit per interior node hop and per leaf candidate examined. It is the
	// quantity the cost model charges for tree-based counting — the cost
	// that blows up when a huge candidate set piles into the leaves, which
	// is the regime where the paper's Apriori drowns. Sharded scans
	// accumulate into their VisitState and fold back via AddWalkCost.
	walkCost int64
}

// VisitState is the per-goroutine scan state of a tree: a transaction serial
// per leaf guards against reporting a candidate twice when several item
// paths reach its leaf, and walkCost tallies the structural work of this
// state's scans. A zero VisitState is ready after Bind.
type VisitState struct {
	lastVisit []int64
	visit     int64
	walkCost  int64
}

// Bind prepares the state for scans over t, reusing its buffer when large
// enough. Any prior contents are discarded.
func (st *VisitState) Bind(t *Tree) {
	n := int(t.numLeafs)
	if cap(st.lastVisit) < n {
		st.lastVisit = make([]int64, n)
	} else {
		st.lastVisit = st.lastVisit[:n]
		clear(st.lastVisit)
	}
	st.visit = 0
	st.walkCost = 0
}

// WalkCost returns the structural work accumulated by this state's scans.
func (st *VisitState) WalkCost() int64 { return st.walkCost }

// Build constructs a hash tree over the candidates, which must all be
// k-itemsets of the same size k >= 1. The candidates are packed into the
// tree's flat matrix in one bulk copy; the argument is not referenced
// afterwards.
func Build(k int, cands []itemset.Itemset) *Tree {
	t := &Tree{
		k:      k,
		n:      len(cands),
		flat:   make([]itemset.Item, 0, k*len(cands)),
		counts: make([]int, len(cands)),
	}
	for _, c := range cands {
		if len(c) != k {
			panic("hashtree: candidate size mismatch")
		}
		t.flat = append(t.flat, c...)
	}
	t.root = t.newLeaf()
	for i := 0; i < t.n; i++ {
		t.insert(t.root, int32(i), 0)
	}
	t.state.Bind(t)
	return t
}

// cand returns candidate i as a view into the flat matrix.
func (t *Tree) cand(i int32) itemset.Itemset {
	lo := int(i) * t.k
	return itemset.Itemset(t.flat[lo : lo+t.k : lo+t.k])
}

// Slab chunk sizes (in nodes / leaves / interior splits per chunk).
const slabChunk = 64

func (t *Tree) allocNode() *node {
	if len(t.nodeSlab) == cap(t.nodeSlab) {
		size := slabChunk
		if want := t.n/LeafCap + 1; cap(t.nodeSlab) == 0 && want > size {
			size = want
		}
		t.nodeSlab = make([]node, 0, size)
	}
	t.nodeSlab = t.nodeSlab[:len(t.nodeSlab)+1]
	return &t.nodeSlab[len(t.nodeSlab)-1]
}

// allocCands carves a leaf bucket with room for the LeafCap+1 entries a
// leaf can hold before it splits. Depth-k leaves that grow beyond that
// spill to an ordinary heap reallocation, which is rare.
func (t *Tree) allocCands() []int32 {
	const bucket = LeafCap + 1
	if cap(t.candSlab)-len(t.candSlab) < bucket {
		t.candSlab = make([]int32, 0, slabChunk*bucket)
	}
	n := len(t.candSlab)
	t.candSlab = t.candSlab[:n+bucket]
	return t.candSlab[n : n : n+bucket]
}

func (t *Tree) allocChildren() []*node {
	if cap(t.childSlab)-len(t.childSlab) < Fanout {
		t.childSlab = make([]*node, 0, slabChunk*Fanout)
	}
	n := len(t.childSlab)
	t.childSlab = t.childSlab[:n+Fanout]
	return t.childSlab[n : n+Fanout : n+Fanout]
}

func (t *Tree) newLeaf() *node {
	n := t.allocNode()
	n.leafID = t.numLeafs
	n.cands = t.allocCands()
	t.numLeafs++
	return n
}

// Len returns the number of candidates in the tree.
func (t *Tree) Len() int { return t.n }

// K returns the candidate size the tree was built for.
func (t *Tree) K() int { return t.k }

func hash(it itemset.Item) int { return int(it) % Fanout }

func (t *Tree) insert(n *node, cand int32, depth int) {
	if n.children != nil {
		child := n.children[hash(t.flat[int(cand)*t.k+depth])]
		t.insert(child, cand, depth+1)
		return
	}
	n.cands = append(n.cands, cand)
	if len(n.cands) > LeafCap && depth < t.k {
		// Split: redistribute candidates one level deeper.
		old := n.cands
		n.cands = nil
		n.children = t.allocChildren()
		for i := range n.children {
			n.children[i] = t.newLeaf()
		}
		for _, c := range old {
			t.insert(n.children[hash(t.flat[int(c)*t.k+depth])], c, depth+1)
		}
	}
}

// CountTx adds 1 to the count of every candidate contained in items, which
// must be a sorted transaction. It returns the number of candidates matched.
func (t *Tree) CountTx(items itemset.Itemset) int {
	matched := 0
	t.VisitTx(items, func(cand int) {
		t.counts[cand]++
		matched++
	})
	return matched
}

// VisitTx calls fn with the index of every candidate contained in the sorted
// transaction items. Each contained candidate is reported exactly once. It
// uses the tree's own scan state and must not run concurrently with other
// scans; concurrent callers use VisitTxState.
func (t *Tree) VisitTx(items itemset.Itemset, fn func(cand int)) {
	before := t.state.walkCost
	t.VisitTxState(items, &t.state, fn)
	t.walkCost += t.state.walkCost - before
}

// VisitTxState is VisitTx with caller-owned scan state, safe to run
// concurrently with other VisitTxState calls on different states. The
// state must have been Bound to t. Structural work accrues on st, not on
// the tree; sharded scans fold it back with AddWalkCost.
func (t *Tree) VisitTxState(items itemset.Itemset, st *VisitState, fn func(cand int)) {
	if len(items) < t.k {
		return
	}
	st.visit++
	t.walk(t.root, items, items, 0, st, fn)
}

// walk descends the tree. depth is how many items of the candidate prefix
// have been consumed; items holds the transaction items still usable for
// deeper hashing, full the whole transaction. Leaves verify the *entire*
// candidate against the full transaction: different candidates sharing a
// hash path need not share actual prefix items, so a suffix-only check
// would miscount under collisions. The lastVisit guard keeps the exactly-
// once property when several paths reach the same leaf.
func (t *Tree) walk(n *node, items, full itemset.Itemset, depth int, st *VisitState, fn func(cand int)) {
	if n.children == nil {
		if st.lastVisit[n.leafID] == st.visit {
			return
		}
		st.lastVisit[n.leafID] = st.visit
		st.walkCost += int64(len(n.cands))
		for _, c := range n.cands {
			if t.cand(c).SubsetOf(full) {
				fn(int(c))
			}
		}
		return
	}
	// Need at least k-depth items remaining to complete a candidate.
	need := t.k - depth
	for i := 0; i+need <= len(items); i++ {
		st.walkCost++
		child := n.children[hash(items[i])]
		t.walk(child, items[i+1:], full, depth+1, st, fn)
	}
}

// WalkCost returns the accumulated structural counting work (interior hops
// plus leaf entries examined) across all CountTx/VisitTx calls plus
// whatever sharded scans folded back via AddWalkCost.
func (t *Tree) WalkCost() int64 { return t.walkCost }

// AddWalkCost folds the structural work of a sharded scan (the VisitStates'
// WalkCost sums) into the tree's total, keeping WalkCost equal to what a
// serial scan would have accumulated.
func (t *Tree) AddWalkCost(n int64) { t.walkCost += n }

// Count returns the accumulated count for candidate index i.
func (t *Tree) Count(i int) int { return t.counts[i] }

// Counts returns the full count slice, indexed like the candidate list
// passed to Build. The slice is owned by the tree.
func (t *Tree) Counts() []int { return t.counts }

// AddCounts adds per-candidate deltas (a sharded scan's private counters)
// into the tree's counts.
func (t *Tree) AddCounts(delta []int32) {
	if len(delta) != len(t.counts) {
		panic("hashtree: AddCounts length mismatch")
	}
	for i, d := range delta {
		t.counts[i] += int(d)
	}
}

// SetCounts overwrites the count slice (used by Count Distribution after the
// all-reduce merges per-node counts). The argument must have one entry per
// candidate.
func (t *Tree) SetCounts(counts []int) {
	if len(counts) != t.n {
		panic("hashtree: SetCounts length mismatch")
	}
	copy(t.counts, counts)
}

// Candidate returns candidate i.
func (t *Tree) Candidate(i int) itemset.Itemset { return t.cand(int32(i)) }

// Frequent returns, in lexicographic order, the (candidate, count) pairs
// whose count reaches minCount.
func (t *Tree) Frequent(minCount int) []itemset.Counted {
	var out []itemset.Counted
	for i, c := range t.counts {
		if c >= minCount {
			out = append(out, itemset.Counted{Set: t.cand(int32(i)), Count: c})
		}
	}
	// Candidates were inserted in caller order; normalize.
	itemset.SortCounted(out)
	return out
}

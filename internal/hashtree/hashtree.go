// Package hashtree implements the Apriori hash tree used to count the
// occurrences of candidate k-itemsets during a database scan (Agrawal &
// Srikant 1994, cited as the counting structure in the MIHP pseudo-code:
// "they can be stored in a hash tree where the hash value of each item
// occupies a level in the tree").
//
// Interior nodes hash one item per level; leaves hold small buckets of
// candidates. Counting a transaction visits only the subtrees reachable
// through the transaction's own items, so the cost per transaction is far
// below the naive |C_k| subset tests.
package hashtree

import (
	"pmihp/internal/itemset"
)

// Fanout is the branching factor of interior nodes.
const Fanout = 8

// LeafCap is the number of candidates a leaf holds before it is split into
// an interior node (leaves at depth k can never split and grow unbounded).
const LeafCap = 16

type node struct {
	// children is non-nil for interior nodes.
	children []*node
	// cands holds candidate indexes for leaf nodes.
	cands []int32
	// lastVisit guards against processing the same leaf twice for one
	// transaction (a leaf can be reachable through several item paths).
	lastVisit int64
}

// Tree is a hash tree over a fixed list of candidate k-itemsets.
type Tree struct {
	k      int
	cands  []itemset.Itemset
	counts []int
	root   *node
	visit  int64 // current transaction serial for lastVisit guarding

	// walkCost accumulates the structural work of counting scans: one unit
	// per interior node hop and per leaf candidate examined. It is the
	// quantity the cost model charges for tree-based counting — the cost
	// that blows up when a huge candidate set piles into the leaves, which
	// is the regime where the paper's Apriori drowns.
	walkCost int64
}

// Build constructs a hash tree over the candidates, which must all be
// k-itemsets of the same size k >= 1. The candidate slice is referenced, not
// copied.
func Build(k int, cands []itemset.Itemset) *Tree {
	t := &Tree{
		k:      k,
		cands:  cands,
		counts: make([]int, len(cands)),
		root:   &node{lastVisit: -1},
	}
	for i := range cands {
		t.insert(t.root, int32(i), 0)
	}
	return t
}

// Len returns the number of candidates in the tree.
func (t *Tree) Len() int { return len(t.cands) }

// K returns the candidate size the tree was built for.
func (t *Tree) K() int { return t.k }

func hash(it itemset.Item) int { return int(it) % Fanout }

func (t *Tree) insert(n *node, cand int32, depth int) {
	if n.children != nil {
		child := n.children[hash(t.cands[cand][depth])]
		t.insert(child, cand, depth+1)
		return
	}
	n.cands = append(n.cands, cand)
	if len(n.cands) > LeafCap && depth < t.k {
		// Split: redistribute candidates one level deeper.
		old := n.cands
		n.cands = nil
		n.children = make([]*node, Fanout)
		for i := range n.children {
			n.children[i] = &node{lastVisit: -1}
		}
		for _, c := range old {
			t.insert(n.children[hash(t.cands[c][depth])], c, depth+1)
		}
	}
}

// CountTx adds 1 to the count of every candidate contained in items, which
// must be a sorted transaction. It returns the number of candidates matched.
func (t *Tree) CountTx(items itemset.Itemset) int {
	matched := 0
	t.VisitTx(items, func(cand int) {
		t.counts[cand]++
		matched++
	})
	return matched
}

// VisitTx calls fn with the index of every candidate contained in the sorted
// transaction items. Each contained candidate is reported exactly once.
func (t *Tree) VisitTx(items itemset.Itemset, fn func(cand int)) {
	if len(items) < t.k {
		return
	}
	t.visit++
	t.walk(t.root, items, items, 0, fn)
}

// walk descends the tree. depth is how many items of the candidate prefix
// have been consumed; items holds the transaction items still usable for
// deeper hashing, full the whole transaction. Leaves verify the *entire*
// candidate against the full transaction: different candidates sharing a
// hash path need not share actual prefix items, so a suffix-only check
// would miscount under collisions. The lastVisit guard keeps the exactly-
// once property when several paths reach the same leaf.
func (t *Tree) walk(n *node, items, full itemset.Itemset, depth int, fn func(cand int)) {
	if n.children == nil {
		if n.lastVisit == t.visit {
			return
		}
		n.lastVisit = t.visit
		t.walkCost += int64(len(n.cands))
		for _, c := range n.cands {
			if t.cands[c].SubsetOf(full) {
				fn(int(c))
			}
		}
		return
	}
	// Need at least k-depth items remaining to complete a candidate.
	need := t.k - depth
	for i := 0; i+need <= len(items); i++ {
		t.walkCost++
		child := n.children[hash(items[i])]
		t.walk(child, items[i+1:], full, depth+1, fn)
	}
}

// WalkCost returns the accumulated structural counting work (interior hops
// plus leaf entries examined) across all CountTx/VisitTx calls so far.
func (t *Tree) WalkCost() int64 { return t.walkCost }

// Count returns the accumulated count for candidate index i.
func (t *Tree) Count(i int) int { return t.counts[i] }

// Counts returns the full count slice, indexed like the candidate list
// passed to Build. The slice is owned by the tree.
func (t *Tree) Counts() []int { return t.counts }

// SetCounts overwrites the count slice (used by Count Distribution after the
// all-reduce merges per-node counts). The argument must have one entry per
// candidate.
func (t *Tree) SetCounts(counts []int) {
	if len(counts) != len(t.cands) {
		panic("hashtree: SetCounts length mismatch")
	}
	copy(t.counts, counts)
}

// Candidate returns candidate i.
func (t *Tree) Candidate(i int) itemset.Itemset { return t.cands[i] }

// Frequent returns, in lexicographic order, the (candidate, count) pairs
// whose count reaches minCount.
func (t *Tree) Frequent(minCount int) []itemset.Counted {
	var out []itemset.Counted
	for i, c := range t.counts {
		if c >= minCount {
			out = append(out, itemset.Counted{Set: t.cands[i], Count: c})
		}
	}
	// Candidates were inserted in caller order; normalize.
	itemset.SortCounted(out)
	return out
}

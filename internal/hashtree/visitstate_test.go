package hashtree

import (
	"math/rand"
	"sort"
	"testing"

	"pmihp/internal/itemset"
)

// TestVisitTxStateMatchesVisitTx: scanning with caller-owned states must
// report the same candidates and accumulate the same structural walk cost
// as the serial entry point, and per-shard count deltas folded back with
// AddCounts must equal serial CountTx totals.
func TestVisitTxStateMatchesVisitTx(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	seen := itemset.NewSet()
	var cands []itemset.Itemset
	for len(cands) < 5000 {
		c := randItemset(rng, 3, 400)
		if !seen.Has(c) {
			seen.Add(c)
			cands = append(cands, c)
		}
	}
	var txs []itemset.Itemset
	for i := 0; i < 200; i++ {
		txs = append(txs, randItemset(rng, 30, 400))
	}

	serial := Build(3, cands)
	for _, tx := range txs {
		serial.CountTx(tx)
	}

	// Two states splitting the transactions, counting into private deltas.
	sharded := Build(3, cands)
	half := len(txs) / 2
	ranges := [][2]int{{0, half}, {half, len(txs)}}
	var walk int64
	for _, r := range ranges {
		var st VisitState
		st.Bind(sharded)
		delta := make([]int32, sharded.Len())
		for _, tx := range txs[r[0]:r[1]] {
			var got []int
			sharded.VisitTxState(tx, &st, func(c int) {
				delta[c]++
				got = append(got, c)
			})
			// Exactly-once per transaction.
			sort.Ints(got)
			for i := 1; i < len(got); i++ {
				if got[i] == got[i-1] {
					t.Fatalf("candidate %d reported twice for one transaction", got[i])
				}
			}
		}
		sharded.AddCounts(delta)
		walk += st.WalkCost()
	}
	sharded.AddWalkCost(walk)

	if serial.WalkCost() != sharded.WalkCost() {
		t.Fatalf("walk cost %d sharded vs %d serial", sharded.WalkCost(), serial.WalkCost())
	}
	for i := 0; i < serial.Len(); i++ {
		if serial.Count(i) != sharded.Count(i) {
			t.Fatalf("candidate %d: count %d sharded vs %d serial", i, sharded.Count(i), serial.Count(i))
		}
	}
}

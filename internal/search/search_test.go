package search

import (
	"math/rand"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// fixture corpus: four tiny documents with a B=>C structure ("futures"
// implies "market", and one document mentions futures without market).
func fixture() (*txdb.DB, *text.Vocabulary) {
	docs := []text.Document{
		{Day: 0, Words: []string{"bank", "market", "stock"}},
		{Day: 0, Words: []string{"futures", "market"}},
		{Day: 1, Words: []string{"futures", "market", "trading"}},
		{Day: 1, Words: []string{"futures", "trading"}},
	}
	return text.ToDB(docs, nil)
}

func TestPostingsAndDocFreq(t *testing.T) {
	db, vocab := fixture()
	idx := Build(db, vocab)
	if idx.Docs() != 4 {
		t.Fatalf("Docs = %d", idx.Docs())
	}
	if idx.DocFreq("market") != 3 || idx.DocFreq("bank") != 1 || idx.DocFreq("missing") != 0 {
		t.Fatalf("DocFreq wrong: market=%d bank=%d", idx.DocFreq("market"), idx.DocFreq("bank"))
	}
	p := idx.Postings("futures")
	if len(p) != 3 || p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatalf("Postings(futures) = %v", p)
	}
}

func TestSearchAll(t *testing.T) {
	db, vocab := fixture()
	idx := Build(db, vocab)
	got := idx.SearchAll("futures", "market")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("SearchAll = %v", got)
	}
	if idx.SearchAll("market", "missing") != nil {
		t.Fatal("unknown term should empty the conjunction")
	}
	if idx.SearchAll() != nil {
		t.Fatal("empty query should return nothing")
	}
}

func TestSearchAny(t *testing.T) {
	db, vocab := fixture()
	idx := Build(db, vocab)
	got := idx.SearchAny("bank", "trading")
	if len(got) != 3 { // docs 0, 2, 3
		t.Fatalf("SearchAny = %v", got)
	}
}

func TestExpansionFindsExtraDocuments(t *testing.T) {
	db, vocab := fixture()
	idx := Build(db, vocab)

	// Rule: futures => market (conf 2/3) — the paper's B => C example.
	fid, _ := vocab.ID("futures")
	mid, _ := vocab.ID("market")
	rs := []rules.Rule{{
		Antecedent: itemset.Itemset{fid},
		Consequent: itemset.Itemset{mid},
		Support:    2, Confidence: 2.0 / 3,
	}}
	exp := NewExpander(rs, vocab)

	expansions := exp.Expand(5, "market")
	if len(expansions) != 1 || len(expansions[0].Terms) != 1 || expansions[0].Terms[0].Word != "futures" {
		t.Fatalf("Expand = %+v", expansions)
	}

	all, extra := exp.ExpandedSearch(idx, 5, "market")
	// Direct: docs 0,1,2. Expansion adds doc 3 (futures-only).
	if len(all) != 4 {
		t.Fatalf("expanded search found %d docs", len(all))
	}
	if len(extra) != 1 || extra[0] != 3 {
		t.Fatalf("extra docs = %v", extra)
	}
}

func TestExpandUnknownWord(t *testing.T) {
	db, vocab := fixture()
	_ = Build(db, vocab)
	exp := NewExpander(nil, vocab)
	got := exp.Expand(3, "nonexistent")
	if len(got) != 1 || len(got[0].Terms) != 0 {
		t.Fatalf("Expand unknown = %+v", got)
	}
}

func TestExpandLimit(t *testing.T) {
	db, vocab := fixture()
	_ = db
	mid, _ := vocab.ID("market")
	var rs []rules.Rule
	for _, w := range []string{"bank", "futures", "stock", "trading"} {
		id, _ := vocab.ID(w)
		rs = append(rs, rules.Rule{
			Antecedent: itemset.Itemset{id},
			Consequent: itemset.Itemset{mid},
			Confidence: 0.9,
		})
	}
	exp := NewExpander(rs, vocab)
	got := exp.Expand(2, "market")
	if len(got[0].Terms) != 2 {
		t.Fatalf("limit ignored: %d terms", len(got[0].Terms))
	}
}

// TestExpandInputOrderIndependence: the Expander canonicalizes its rule
// set at construction, so shuffling the caller's slice — including ties
// in confidence and support — must not change a single expansion term.
func TestExpandInputOrderIndependence(t *testing.T) {
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	db, vocab := text.ToDB(docs, nil)
	res := mining.BruteForce(db, mining.Options{MinSupCount: 3, MaxK: 3})
	rs := rules.Generate(res.Frequent, db.Len(), 0.5)
	if len(rs) < 4 {
		t.Fatalf("fixture mined only %d rules", len(rs))
	}
	base := NewExpander(rs, vocab)
	queries := make([]string, vocab.Size())
	for i := range queries {
		queries[i] = vocab.Word(uint32(i))
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]rules.Rule(nil), rs...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		exp := NewExpander(shuffled, vocab)
		for _, q := range queries {
			want := base.Expand(3, q)
			got := exp.Expand(3, q)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %q: %d expansions, want %d", trial, q, len(got), len(want))
			}
			for i := range want {
				if len(got[i].Terms) != len(want[i].Terms) {
					t.Fatalf("trial %d query %q: %d terms, want %d", trial, q, len(got[i].Terms), len(want[i].Terms))
				}
				for j := range want[i].Terms {
					gt, wt := got[i].Terms[j], want[i].Terms[j]
					if gt.Word != wt.Word || rules.Canon(gt.Rule, wt.Rule) != 0 {
						t.Fatalf("trial %d query %q term %d: %+v, want %+v", trial, q, j, gt, wt)
					}
				}
			}
		}
	}
	// The caller's slice itself must be left untouched (Expander sorts a
	// copy).
	before := append([]rules.Rule(nil), rs...)
	NewExpander(rs, vocab)
	for i := range rs {
		if rules.Canon(rs[i], before[i]) != 0 {
			t.Fatal("NewExpander reordered the caller's slice")
		}
	}
}

func TestIndexAgainstBruteForce(t *testing.T) {
	// Postings-based conjunctive search must agree with scanning the raw
	// transactions, across many random queries.
	docs := corpus.MustGenerate(corpus.CorpusB(corpus.Small))
	db, vocab := text.ToDB(docs, nil)
	idx := Build(db, vocab)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(3)
		var words []string
		var ids itemset.Itemset
		for len(words) < n {
			id := itemset.Item(rng.Intn(vocab.Size()))
			words = append(words, vocab.Word(id))
			ids = itemset.Union(ids, itemset.Itemset{id})
		}
		got := idx.SearchAll(words...)
		var want []txdb.TID
		db.Each(func(tx *txdb.Transaction) {
			if ids.SubsetOf(tx.Items) {
				want = append(want, tx.TID)
			}
		})
		if len(got) != len(want) {
			t.Fatalf("query %v: %d hits, want %d", words, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %v: hit %d = %d, want %d", words, i, got[i], want[i])
			}
		}
	}
}

package search

import (
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/text"
)

// rankFixture: "futures market" is a genuine collocation (3 joint docs);
// "bank" co-occurs with nothing.
func rankFixture() (*Index, *text.Vocabulary) {
	docs := []text.Document{
		{Words: []string{"futures", "market"}},
		{Words: []string{"futures", "market", "trading"}},
		{Words: []string{"futures", "market"}},
		{Words: []string{"bank", "market"}},
		{Words: []string{"bank", "futures"}},
		{Words: []string{"bank"}},
		{Words: []string{"trading"}},
	}
	db, vocab := text.ToDB(docs, nil)
	return Build(db, vocab), vocab
}

func TestRankBaseIDF(t *testing.T) {
	idx, _ := rankFixture()
	got := idx.Rank([]string{"bank", "trading"}, nil, 0)
	if len(got) != 5 {
		t.Fatalf("ranked %d docs", len(got))
	}
	// Doc 1 holds "trading" only; docs 3,4,5 hold "bank" only; "trading"
	// (df 2) is rarer than "bank" (df 3) so idf ranks trading docs higher.
	if got[0].TID != 1 && got[0].TID != 6 {
		t.Fatalf("top doc = %d", got[0].TID)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("not sorted by score")
		}
	}
}

func TestRankItemsetBonus(t *testing.T) {
	idx, vocab := rankFixture()
	fid, _ := vocab.ID("futures")
	mid, _ := vocab.ID("market")
	frequent := []itemset.Counted{
		{Set: itemset.Itemset{fid, mid}, Count: 3},
	}
	// Query: futures, market, bank. Without the bonus, a {bank, market}
	// doc and a {futures, market} doc score similarly (bank and futures
	// have equal df). The itemset bonus must push joint futures+market
	// documents above the bank+market one.
	base := idx.Rank([]string{"futures", "market", "bank"}, nil, 0)
	boosted := idx.Rank([]string{"futures", "market", "bank"}, frequent, 0)

	pos := func(rs []RankedDoc, tid uint32) int {
		for i, r := range rs {
			if r.TID == tid {
				return i
			}
		}
		return -1
	}
	// Doc 0 ({futures, market}) must outrank doc 3 ({bank, market}) once
	// the collocation evidence is in.
	if pos(boosted, 0) > pos(boosted, 3) {
		t.Fatalf("bonus did not prefer the collocated doc: %v", boosted)
	}
	// The bonus only raises scores.
	for _, b := range boosted {
		if bs := scoreOf(base, b.TID); b.Score < bs {
			t.Fatalf("score of %d dropped: %g -> %g", b.TID, bs, b.Score)
		}
	}
}

func scoreOf(rs []RankedDoc, tid uint32) float64 {
	for _, r := range rs {
		if r.TID == tid {
			return r.Score
		}
	}
	return 0
}

func TestRankLimitsAndUnknowns(t *testing.T) {
	idx, _ := rankFixture()
	if got := idx.Rank([]string{"nonexistent"}, nil, 0); got != nil {
		t.Fatalf("unknown query ranked %v", got)
	}
	got := idx.Rank([]string{"market"}, nil, 2)
	if len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestRankDeterministicTies(t *testing.T) {
	idx, _ := rankFixture()
	a := idx.Rank([]string{"market"}, nil, 0)
	b := idx.Rank([]string{"market"}, nil, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic ranking")
		}
	}
	// Equal-scored docs in ascending TID order.
	for i := 1; i < len(a); i++ {
		if a[i].Score == a[i-1].Score && a[i].TID < a[i-1].TID {
			t.Fatal("tie order not by TID")
		}
	}
}

func TestIDF(t *testing.T) {
	idx, _ := rankFixture()
	if idx.IDF("nonexistent") != 0 {
		t.Fatal("idf of unknown word")
	}
	if idx.IDF("market") >= idx.IDF("trading") {
		t.Fatal("common word should have lower idf")
	}
}

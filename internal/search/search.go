// Package search implements the motivating application of the paper's
// introduction: text retrieval over the mined corpus, with query expansion
// driven by association rules. "Consider the case that we have an
// association rule B ⇒ C where B and C are words. A search for documents
// containing C can be expanded by including B. This expansion will allow
// for finding documents [relevant to] C that do not contain C as a term."
package search

import (
	"sort"

	"pmihp/internal/itemset"
	"pmihp/internal/rules"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

// Index is an inverted index over a transaction database: for every item,
// the ascending list of TIDs of the documents containing it.
type Index struct {
	postings map[itemset.Item][]txdb.TID
	vocab    *text.Vocabulary
	docs     int
}

// Build constructs the inverted index for the database, resolving words
// through vocab.
func Build(db *txdb.DB, vocab *text.Vocabulary) *Index {
	idx := &Index{
		postings: make(map[itemset.Item][]txdb.TID),
		vocab:    vocab,
		docs:     db.Len(),
	}
	db.Each(func(t *txdb.Transaction) {
		for _, it := range t.Items {
			idx.postings[it] = append(idx.postings[it], t.TID)
		}
	})
	return idx
}

// Docs returns the number of indexed documents.
func (idx *Index) Docs() int { return idx.docs }

// Postings returns the TIDs of documents containing the word, or nil for
// unknown words. The returned slice is owned by the index.
func (idx *Index) Postings(word string) []txdb.TID {
	id, ok := idx.vocab.ID(word)
	if !ok {
		return nil
	}
	return idx.postings[id]
}

// DocFreq returns the number of documents containing the word.
func (idx *Index) DocFreq(word string) int { return len(idx.Postings(word)) }

// SearchAll returns the TIDs of documents containing every query word
// (conjunctive boolean search), in ascending order.
func (idx *Index) SearchAll(words ...string) []txdb.TID {
	if len(words) == 0 {
		return nil
	}
	lists := make([][]txdb.TID, 0, len(words))
	for _, w := range words {
		p := idx.Postings(w)
		if p == nil {
			return nil
		}
		lists = append(lists, p)
	}
	// Intersect starting from the rarest term.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	acc := lists[0]
	for _, l := range lists[1:] {
		acc = intersect(acc, l)
		if len(acc) == 0 {
			break
		}
	}
	out := make([]txdb.TID, len(acc))
	copy(out, acc)
	return out
}

// SearchAny returns the TIDs of documents containing at least one query
// word (disjunctive search), in ascending order.
func (idx *Index) SearchAny(words ...string) []txdb.TID {
	seen := make(map[txdb.TID]struct{})
	for _, w := range words {
		for _, tid := range idx.Postings(w) {
			seen[tid] = struct{}{}
		}
	}
	out := make([]txdb.TID, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func intersect(a, b []txdb.TID) []txdb.TID {
	var out []txdb.TID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Expansion is a query word together with the expansion terms the rule base
// licenses for it.
type Expansion struct {
	Word  string
	Terms []ExpansionTerm
}

// ExpansionTerm is one expansion word and the rule that produced it.
type ExpansionTerm struct {
	Word string
	Rule rules.Rule
}

// Expander suggests query expansions from a mined rule set.
type Expander struct {
	vocab *text.Vocabulary
	rules []rules.Rule
}

// NewExpander returns an Expander over the rule set. The rules are
// copied and sorted into the canonical rules.Canon order, so expansions
// never depend on the order the caller assembled the rule set in — a
// rule set parsed back from a JSON export expands identically to the
// freshly generated one.
func NewExpander(rs []rules.Rule, vocab *text.Vocabulary) *Expander {
	sorted := append([]rules.Rule(nil), rs...)
	rules.SortCanonical(sorted)
	return &Expander{vocab: vocab, rules: sorted}
}

// Expand returns, for each query word C, the words B of rules B ⇒ C with
// single-item antecedents, strongest rules first (ties broken by support,
// then lexicographic sides — see rules.Canon), up to limit terms per
// word — the statistical-thesaurus expansion of the paper's introduction.
func (e *Expander) Expand(limit int, words ...string) []Expansion {
	var out []Expansion
	for _, w := range words {
		exp := Expansion{Word: w}
		id, ok := e.vocab.ID(w)
		if !ok {
			out = append(out, exp)
			continue
		}
		for _, r := range rules.WithConsequent(e.rules, id) {
			if len(r.Antecedent) != 1 {
				continue
			}
			exp.Terms = append(exp.Terms, ExpansionTerm{
				Word: e.vocab.Word(r.Antecedent[0]),
				Rule: r,
			})
			if limit > 0 && len(exp.Terms) >= limit {
				break
			}
		}
		out = append(out, exp)
	}
	return out
}

// ExpandedSearch runs a disjunctive search over the query words plus their
// expansions and reports which documents were only reachable through the
// expansion terms.
func (e *Expander) ExpandedSearch(idx *Index, limit int, words ...string) (all, viaExpansion []txdb.TID) {
	base := idx.SearchAny(words...)
	expanded := append([]string{}, words...)
	for _, exp := range e.Expand(limit, words...) {
		for _, t := range exp.Terms {
			expanded = append(expanded, t.Word)
		}
	}
	all = idx.SearchAny(expanded...)
	inBase := make(map[txdb.TID]struct{}, len(base))
	for _, tid := range base {
		inBase[tid] = struct{}{}
	}
	for _, tid := range all {
		if _, ok := inBase[tid]; !ok {
			viaExpansion = append(viaExpansion, tid)
		}
	}
	return all, viaExpansion
}
